// Direct tests for the answer-count distribution substrate (the "non-R
// side" structure of Section 5.1) and the shared DP utilities.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/data/database.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/answer_counts.h"
#include "shapcq/shapley/dp_util.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

// Brute-force answer-count distribution: enumerate subsets, evaluate.
AnswerCountMap BruteForceDistribution(const ConjunctiveQuery& q,
                                      const Database& db) {
  SubsetEvaluator evaluator(q, db);
  AnswerCountMap counts;
  int n = evaluator.num_players();
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    int k = __builtin_popcountll(mask);
    int answers = static_cast<int>(evaluator.AnswersFor(mask).size());
    counts[{k, answers}] += BigInt(1);
  }
  return counts;
}

void ExpectSameDistribution(const AnswerCountMap& a, const AnswerCountMap& b) {
  // Compare ignoring zero-valued entries.
  auto normalized = [](const AnswerCountMap& m) {
    AnswerCountMap out;
    for (const auto& [key, count] : m) {
      if (!count.is_zero()) out[key] = count;
    }
    return out;
  };
  AnswerCountMap na = normalized(a);
  AnswerCountMap nb = normalized(b);
  ASSERT_EQ(na.size(), nb.size());
  for (const auto& [key, count] : na) {
    auto it = nb.find(key);
    ASSERT_TRUE(it != nb.end()) << "(" << key.first << "," << key.second << ")";
    EXPECT_EQ(count, it->second)
        << "(" << key.first << "," << key.second << ")";
  }
}

TEST(AnswerCountsTest, MatchesBruteForceOnQHierarchicalQueries) {
  std::vector<const char*> queries = {
      "Q(x) <- R(x)",
      "Q(x, y) <- R(x, y)",
      "Q(x, y) <- R(x, y), S(y)",
      "Q(x) <- R(x), S(x, y)",
      "Q(x, z) <- R(x), T(z)",
      "Q() <- R(x, y), S(y)",
  };
  for (const char* text : queries) {
    ConjunctiveQuery q = MustParseQuery(text);
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      RandomDatabaseOptions options;
      options.facts_per_relation = 4;
      options.seed = seed;
      Database db = RandomDatabaseForQuery(q, options);
      Combinatorics comb;
      RelevanceSplit split = SplitRelevant(q, AllFacts(db));
      AnswerCountMap dp =
          AnswerCountDistribution(q, split.relevant, &comb);
      dp = PadAnswerCounts(dp, split.irrelevant_endogenous, &comb);
      AnswerCountMap expected = BruteForceDistribution(q, db);
      ExpectSameDistribution(dp, expected);
    }
  }
}

TEST(AnswerCountsTest, RowsSumToBinomials) {
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 5;
  options.seed = 3;
  Database db = RandomDatabaseForQuery(q, options);
  Combinatorics comb;
  RelevanceSplit split = SplitRelevant(q, AllFacts(db));
  AnswerCountMap dp = AnswerCountDistribution(q, split.relevant, &comb);
  dp = PadAnswerCounts(dp, split.irrelevant_endogenous, &comb);
  int n = db.num_endogenous();
  std::map<int, BigInt> per_k;
  for (const auto& [key, count] : dp) per_k[key.first] += count;
  for (int k = 0; k <= n; ++k) {
    EXPECT_EQ(per_k[k], comb.Binomial(n, k)) << "k=" << k;
  }
}

TEST(AnswerCountsTest, PadShiftsOnlyK) {
  Combinatorics comb;
  AnswerCountMap base = {{{0, 0}, BigInt(1)}, {{1, 2}, BigInt(3)}};
  AnswerCountMap padded = PadAnswerCounts(base, 2, &comb);
  EXPECT_EQ(padded[std::make_pair(0, 0)], BigInt(1));
  EXPECT_EQ(padded[std::make_pair(1, 0)], BigInt(2));  // C(2,1)
  EXPECT_EQ(padded[std::make_pair(2, 0)], BigInt(1));
  EXPECT_EQ(padded[std::make_pair(1, 2)], BigInt(3));
  EXPECT_EQ(padded[std::make_pair(2, 2)], BigInt(6));  // 3 * C(2,1)
  EXPECT_EQ(padded[std::make_pair(3, 2)], BigInt(3));
}

// ---------------------------------------------------------------------------
// dp_util
// ---------------------------------------------------------------------------

TEST(DpUtilTest, ConvolveBasics) {
  std::vector<BigInt> a = {BigInt(1), BigInt(2)};
  std::vector<BigInt> b = {BigInt(3), BigInt(4), BigInt(5)};
  std::vector<BigInt> c = Convolve(a, b);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0].ToInt64(), 3);
  EXPECT_EQ(c[1].ToInt64(), 10);
  EXPECT_EQ(c[2].ToInt64(), 13);
  EXPECT_EQ(c[3].ToInt64(), 10);
  EXPECT_TRUE(Convolve({}, b).empty());
}

TEST(DpUtilTest, BinomialVectorAndPad) {
  Combinatorics comb;
  std::vector<BigInt> row = BinomialVector(4, &comb);
  ASSERT_EQ(row.size(), 5u);
  EXPECT_EQ(row[2].ToInt64(), 6);
  // Padding [1] by m equals the binomial vector.
  EXPECT_EQ(PadCounts({BigInt(1)}, 4, &comb), row);
  // Padding by 0 is identity.
  EXPECT_EQ(PadCounts(row, 0, &comb), row);
}

TEST(DpUtilTest, VandermondeViaConvolution) {
  // Convolving binomial vectors: C(a+b, k) = Σ C(a,j)C(b,k−j).
  Combinatorics comb;
  EXPECT_EQ(Convolve(BinomialVector(5, &comb), BinomialVector(7, &comb)),
            BinomialVector(12, &comb));
}

TEST(DpUtilTest, SubtractCounts) {
  std::vector<BigInt> a = {BigInt(5), BigInt(3)};
  std::vector<BigInt> b = {BigInt(2), BigInt(3)};
  std::vector<BigInt> c = SubtractCounts(a, b);
  EXPECT_EQ(c[0].ToInt64(), 3);
  EXPECT_TRUE(c[1].is_zero());
}

}  // namespace
}  // namespace shapcq
