#include "shapcq/util/rational.h"

#include <random>

#include <gtest/gtest.h>

namespace shapcq {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(zero.is_integer());
  EXPECT_EQ(zero.ToString(), "0");
}

TEST(RationalTest, NormalizationReducesAndFixesSign) {
  Rational r(BigInt(4), BigInt(8));
  EXPECT_EQ(r.ToString(), "1/2");
  Rational negative_den(BigInt(3), BigInt(-6));
  EXPECT_EQ(negative_den.ToString(), "-1/2");
  Rational both_negative(BigInt(-3), BigInt(-6));
  EXPECT_EQ(both_negative.ToString(), "1/2");
  Rational zero(BigInt(0), BigInt(-17));
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.denominator().ToInt64(), 1);
}

TEST(RationalTest, ArithmeticBasics) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((-half).ToString(), "-1/2");
}

TEST(RationalTest, MixedIntegerArithmetic) {
  Rational x = Rational(3) + Rational(BigInt(1), BigInt(2));
  EXPECT_EQ(x.ToString(), "7/2");
  EXPECT_EQ((x * Rational(2)).ToString(), "7");
  EXPECT_TRUE((x - x).is_zero());
}

TEST(RationalTest, DivisionBySelfAliasing) {
  Rational x(BigInt(7), BigInt(3));
  x /= x;
  EXPECT_EQ(x.ToString(), "1");
}

TEST(RationalTest, Comparisons) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_LT(third, half);
  EXPECT_GT(half, third);
  EXPECT_LE(half, half);
  EXPECT_LT(Rational(-1), third);
  EXPECT_LT(Rational(BigInt(-1), BigInt(2)), Rational(BigInt(-1), BigInt(3)));
}

TEST(RationalTest, FromStringForms) {
  auto a = Rational::FromString("5");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->ToString(), "5");
  auto b = Rational::FromString("-3/9");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->ToString(), "-1/3");
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("abc").ok());
  EXPECT_FALSE(Rational::FromString("1/").ok());
}

TEST(RationalTest, FromDoubleIsExact) {
  EXPECT_EQ(Rational::FromDouble(0.5).ToString(), "1/2");
  EXPECT_EQ(Rational::FromDouble(-0.25).ToString(), "-1/4");
  EXPECT_EQ(Rational::FromDouble(3.0).ToString(), "3");
  EXPECT_EQ(Rational::FromDouble(0.0).ToString(), "0");
  // 0.1 is not exactly 1/10 in binary; conversion must reflect the double.
  Rational tenth = Rational::FromDouble(0.1);
  EXPECT_NE(tenth, Rational(BigInt(1), BigInt(10)));
  EXPECT_DOUBLE_EQ(tenth.ToDouble(), 0.1);
}

TEST(RationalTest, FloorAndCeil) {
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).Floor().ToInt64(), 3);
  EXPECT_EQ(Rational(BigInt(7), BigInt(2)).Ceil().ToInt64(), 4);
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).Floor().ToInt64(), -4);
  EXPECT_EQ(Rational(BigInt(-7), BigInt(2)).Ceil().ToInt64(), -3);
  EXPECT_EQ(Rational(6).Floor().ToInt64(), 6);
  EXPECT_EQ(Rational(6).Ceil().ToInt64(), 6);
  EXPECT_EQ(Rational(-6).Floor().ToInt64(), -6);
  EXPECT_EQ(Rational(-6).Ceil().ToInt64(), -6);
}

TEST(RationalTest, AbsoluteValue) {
  EXPECT_EQ(Rational::Abs(Rational(BigInt(-2), BigInt(3))).ToString(), "2/3");
  EXPECT_EQ(Rational::Abs(Rational(BigInt(2), BigInt(3))).ToString(), "2/3");
  EXPECT_TRUE(Rational::Abs(Rational()).is_zero());
}

TEST(RationalTest, HarmonicLikeAccumulationStaysNormalized) {
  // Sum of 1/k for k=1..20 — denominators must stay reduced.
  Rational sum;
  for (int k = 1; k <= 20; ++k) sum += Rational(BigInt(1), BigInt(k));
  EXPECT_EQ(sum.ToString(), "55835135/15519504");
}

TEST(RationalTest, RandomizedFieldAxioms) {
  std::mt19937_64 rng(11);
  auto random_rational = [&rng]() {
    int64_t num = static_cast<int64_t>(rng() % 2001) - 1000;
    int64_t den = static_cast<int64_t>(rng() % 1000) + 1;
    return Rational(BigInt(num), BigInt(den));
  };
  for (int trial = 0; trial < 300; ++trial) {
    Rational a = random_rational();
    Rational b = random_rational();
    Rational c = random_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_TRUE((a - a).is_zero());
    if (!b.is_zero()) {
      EXPECT_EQ(a / b * b, a);
    }
  }
}

}  // namespace
}  // namespace shapcq
