// Differential stress tests for FixedInt and CountValue against the BigInt
// oracle: random add/sub/mul chains, overflow detection at the 256-bit
// boundary (including exact ±2^(64k) edges), the CountValue escape
// protocol, and the binomial recurrence ops. The counting core routes all
// of its hot arithmetic through these types, so any divergence from BigInt
// would silently corrupt Shapley scores.

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/util/bigint.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/util/fixed_int.h"

namespace shapcq {
namespace {

// A random BigInt of roughly `bits` magnitude bits (possibly negative).
BigInt RandomBigInt(std::mt19937_64* rng, int bits) {
  BigInt value;
  for (int produced = 0; produced < bits; produced += 32) {
    value = value * BigInt::TwoPow(32) +
            BigInt(static_cast<int64_t>((*rng)() & 0xffffffffu));
  }
  if ((*rng)() & 1) value.Negate();
  return value;
}

// The oracle bound: a FixedInt holds magnitudes below 2^256.
const BigInt& FixedLimit() {
  static const BigInt limit = BigInt::TwoPow(64 * FixedInt::kLimbs);
  return limit;
}

bool FitsFixed(const BigInt& v) {
  return BigInt::Compare(v, FixedLimit()) < 0 &&
         BigInt::Compare(v, -FixedLimit()) > 0;
}

TEST(FixedIntStressTest, RoundTripThroughBigInt) {
  std::mt19937_64 rng(811);
  for (int trial = 0; trial < 2000; ++trial) {
    const int bits = static_cast<int>(rng() % 256);
    BigInt value = RandomBigInt(&rng, bits);
    FixedInt fixed;
    ASSERT_TRUE(FixedInt::FromBigInt(value, &fixed)) << value.ToString();
    EXPECT_EQ(fixed.ToBigInt(), value);
  }
}

TEST(FixedIntStressTest, FromBigIntRejectsOnlyOutOfRange) {
  std::mt19937_64 rng(822);
  for (int k = 1; k <= 2 * FixedInt::kLimbs + 2; ++k) {
    // Exact ±2^(64k) edges: 2^256 is the first magnitude that must fail.
    for (int sign : {1, -1}) {
      BigInt edge = BigInt::TwoPow(static_cast<uint64_t>(64 * k));
      if (sign < 0) edge.Negate();
      BigInt inside = sign > 0 ? edge - BigInt(1) : edge + BigInt(1);
      FixedInt fixed;
      EXPECT_EQ(FixedInt::FromBigInt(edge, &fixed), FitsFixed(edge))
          << "k=" << k << " sign=" << sign;
      ASSERT_TRUE(FitsFixed(inside) ==
                  FixedInt::FromBigInt(inside, &fixed));
      if (FitsFixed(inside)) EXPECT_EQ(fixed.ToBigInt(), inside);
    }
  }
  for (int trial = 0; trial < 500; ++trial) {
    BigInt big = RandomBigInt(&rng, 257 + static_cast<int>(rng() % 128));
    FixedInt fixed;
    EXPECT_EQ(FixedInt::FromBigInt(big, &fixed), FitsFixed(big));
  }
}

TEST(FixedIntStressTest, AddSubMulAgreeWithBigIntIncludingOverflow) {
  std::mt19937_64 rng(833);
  for (int trial = 0; trial < 4000; ++trial) {
    // Bias sizes toward the 256-bit boundary so overflow paths fire often.
    const int bits_a = static_cast<int>(rng() % 280);
    const int bits_b = static_cast<int>(rng() % 280);
    BigInt a = RandomBigInt(&rng, bits_a);
    BigInt b = RandomBigInt(&rng, bits_b);
    FixedInt fa;
    FixedInt fb;
    if (!FixedInt::FromBigInt(a, &fa) || !FixedInt::FromBigInt(b, &fb)) {
      continue;
    }
    FixedInt out;
    const BigInt sum = a + b;
    if (FixedInt::Add(fa, fb, &out)) {
      EXPECT_EQ(out.ToBigInt(), sum);
    } else {
      EXPECT_FALSE(FitsFixed(sum)) << a.ToString() << " + " << b.ToString();
    }
    const BigInt diff = a - b;
    if (FixedInt::Sub(fa, fb, &out)) {
      EXPECT_EQ(out.ToBigInt(), diff);
    } else {
      EXPECT_FALSE(FitsFixed(diff));
    }
    const BigInt product = a * b;
    if (FixedInt::Mul(fa, fb, &out)) {
      EXPECT_EQ(out.ToBigInt(), product);
    } else {
      EXPECT_FALSE(FitsFixed(product));
    }
  }
}

TEST(FixedIntStressTest, AliasingSafeInPlaceOps) {
  std::mt19937_64 rng(844);
  for (int trial = 0; trial < 2000; ++trial) {
    BigInt a = RandomBigInt(&rng, static_cast<int>(rng() % 250));
    BigInt b = RandomBigInt(&rng, static_cast<int>(rng() % 250));
    FixedInt fa;
    FixedInt fb;
    ASSERT_TRUE(FixedInt::FromBigInt(a, &fa));
    ASSERT_TRUE(FixedInt::FromBigInt(b, &fb));
    // out aliases the first, then the second operand.
    FixedInt alias = fa;
    if (FixedInt::Add(alias, fb, &alias)) {
      EXPECT_EQ(alias.ToBigInt(), a + b);
    }
    alias = fb;
    if (FixedInt::Sub(fa, alias, &alias)) {
      EXPECT_EQ(alias.ToBigInt(), a - b);
    }
    alias = fa;
    if (FixedInt::Mul(alias, alias, &alias)) {
      EXPECT_EQ(alias.ToBigInt(), a * a);
    }
  }
}

TEST(FixedIntStressTest, MulSmallAndExactDivision) {
  std::mt19937_64 rng(855);
  for (int trial = 0; trial < 2000; ++trial) {
    BigInt a = RandomBigInt(&rng, static_cast<int>(rng() % 260));
    const uint32_t m = static_cast<uint32_t>(rng() % 1000 + 1);
    FixedInt fa;
    if (!FixedInt::FromBigInt(a, &fa)) continue;
    FixedInt product;
    const BigInt expected = a * BigInt(static_cast<int64_t>(m));
    if (FixedInt::MulSmall(fa, m, &product)) {
      EXPECT_EQ(product.ToBigInt(), expected);
      // The product is divisible by m by construction; division must
      // invert the multiplication exactly.
      product.DivSmallExact(m);
      EXPECT_EQ(product.ToBigInt(), a);
    } else {
      EXPECT_FALSE(FitsFixed(expected));
    }
  }
}

// CountValue: long random accumulation chains crossing the escape
// boundary in both directions of magnitude, checked against a pure-BigInt
// shadow at every step.
TEST(CountValueStressTest, AccumulationChainsMatchBigIntOracle) {
  std::mt19937_64 rng(866);
  for (int chain = 0; chain < 200; ++chain) {
    CountValue acc;
    BigInt shadow;
    for (int step = 0; step < 60; ++step) {
      const int op = static_cast<int>(rng() % 4);
      // Operand sizes up to ~300 bits force escapes mid-chain.
      BigInt operand = RandomBigInt(&rng, static_cast<int>(rng() % 300));
      switch (op) {
        case 0:
          acc += CountValue(operand);
          shadow += operand;
          break;
        case 1:
          acc -= CountValue(operand);
          shadow -= operand;
          break;
        case 2: {
          BigInt factor = RandomBigInt(&rng, static_cast<int>(rng() % 150));
          acc.AddProduct(CountValue(operand), CountValue(factor));
          shadow += operand * factor;
          break;
        }
        case 3: {
          BigInt factor = RandomBigInt(&rng, static_cast<int>(rng() % 150));
          acc.AddProduct(CountValue(operand), factor);
          shadow += operand * factor;
          break;
        }
      }
      ASSERT_EQ(acc.ToBigInt(), shadow) << "chain " << chain << " step "
                                        << step;
    }
  }
}

TEST(CountValueStressTest, EscapeIsMonotoneAndExactAtTheBoundary) {
  // Walk an accumulator across 2^256 by repeated doubling: values stay
  // exact through the promotion, and the representation never demotes.
  CountValue acc(1);
  BigInt shadow(1);
  bool seen_big = false;
  for (int step = 0; step < 300; ++step) {
    acc.AddProduct(acc, CountValue(1));  // acc += acc  (doubling)
    shadow += shadow;
    ASSERT_EQ(acc.ToBigInt(), shadow);
    if (seen_big) EXPECT_TRUE(acc.is_big());
    seen_big = seen_big || acc.is_big();
  }
  EXPECT_TRUE(seen_big);
  // ±2^(64k) edges through the CountValue constructor.
  for (int k = 0; k <= 5; ++k) {
    BigInt edge = BigInt::TwoPow(static_cast<uint64_t>(64 * k));
    for (int sign : {1, -1}) {
      BigInt value = sign > 0 ? edge : -edge;
      CountValue cv(value);
      EXPECT_EQ(cv.ToBigInt(), value);
      EXPECT_EQ(cv.is_big(), k >= FixedInt::kLimbs);
    }
  }
}

TEST(CountValueStressTest, CountRowMatchesBinomialRow) {
  Combinatorics comb;
  // n = 300 crosses the 256-bit boundary near the middle of the row
  // (C(300, 150) has ~296 bits), so both representations are exercised.
  for (int64_t n : {0, 1, 2, 7, 33, 64, 257, 300}) {
    const std::vector<BigInt>& reference = comb.BinomialRow(n);
    const std::vector<CountValue>& row = comb.CountRow(n);
    ASSERT_EQ(row.size(), reference.size()) << "n=" << n;
    for (size_t k = 0; k < row.size(); ++k) {
      EXPECT_EQ(row[k].ToBigInt(), reference[k]) << "n=" << n << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace shapcq
