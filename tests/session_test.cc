// Differential tests for the SolverSession batching layer and the indexed
// evaluator.
//
// Two invariants are checked across randomized workloads from
// workload/generators:
//  1. ComputeAll (batched engines, shared fallbacks, thread pool) returns
//     exactly the results of calling Compute per fact — bitwise-identical
//     Rationals on exact paths, identical estimates on the sampling path.
//  2. The indexed EnumerateHomomorphisms returns the same homomorphism set
//     as the retained naive reference join.

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/session.h"
#include "shapcq/shapley/solver.h"
#include "shapcq/shapley/sum_count.h"
#include "shapcq/workload/generators.h"
#include "shapcq/workload/random_query.h"

namespace shapcq {
namespace {

// ---------------------------------------------------------------------------
// Indexed join vs. naive reference join
// ---------------------------------------------------------------------------

// Canonical, order-insensitive form of a homomorphism list.
std::set<std::pair<Tuple, std::vector<FactId>>> Canonical(
    const std::vector<Homomorphism>& homs) {
  std::set<std::pair<Tuple, std::vector<FactId>>> out;
  for (const Homomorphism& hom : homs) {
    out.emplace(hom.answer, hom.used_facts);
  }
  return out;
}

TEST(IndexedJoinTest, MatchesNaiveReferenceOnRandomWorkloads) {
  for (HierarchyClass target :
       {HierarchyClass::kSqHierarchical, HierarchyClass::kQHierarchical,
        HierarchyClass::kAllHierarchical, HierarchyClass::kExistsHierarchical,
        HierarchyClass::kGeneral}) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      RandomQueryOptions query_options;
      query_options.max_variables = 4;
      query_options.seed = seed;
      ConjunctiveQuery q = RandomQueryOfClass(target, query_options);
      RandomDatabaseOptions db_options;
      db_options.facts_per_relation = 6;
      db_options.seed = seed * 31 + 7;
      Database db = RandomDatabaseForQuery(q, db_options);
      std::vector<Homomorphism> indexed = EnumerateHomomorphisms(q, db);
      std::vector<Homomorphism> naive = EnumerateHomomorphismsNaive(q, db);
      EXPECT_EQ(indexed.size(), naive.size()) << q.ToString();
      EXPECT_EQ(Canonical(indexed), Canonical(naive)) << q.ToString();
    }
  }
}

TEST(IndexedJoinTest, MatchesNaiveWithConstantsAndRepeatedVariables) {
  std::vector<const char*> queries = {
      "Q(x) <- R(x, x)",
      "Q(x) <- R(x, y), S(y, 2)",
      "Q() <- R(x, 1), S(x, x)",
      "Q(x, y) <- R(x, y), S(y, x)",
  };
  Database db;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      db.AddEndogenous("R", {Value(i), Value(j)});
      db.AddFact("S", {Value(j), Value(i)}, /*endogenous=*/i % 2 == 0);
    }
  }
  for (const char* text : queries) {
    ConjunctiveQuery q = MustParseQuery(text);
    EXPECT_EQ(Canonical(EnumerateHomomorphisms(q, db)),
              Canonical(EnumerateHomomorphismsNaive(q, db)))
        << text;
  }
}

TEST(IndexedJoinTest, FactsWithProbesTheRightFacts) {
  Database db;
  FactId r0 = db.AddEndogenous("R", {Value(1), Value("a")});
  FactId r1 = db.AddEndogenous("R", {Value(1), Value("b")});
  FactId r2 = db.AddEndogenous("R", {Value(2), Value("a")});
  db.AddExogenous("S", {Value(1)});
  EXPECT_EQ(db.FactsWith("R", 0, Value(1)), (std::vector<FactId>{r0, r1}));
  EXPECT_EQ(db.FactsWith("R", 1, Value("a")), (std::vector<FactId>{r0, r2}));
  EXPECT_TRUE(db.FactsWith("R", 0, Value(7)).empty());
  EXPECT_TRUE(db.FactsWith("T", 0, Value(1)).empty());
  // Numeric cross-kind equality carries over to the index.
  EXPECT_EQ(db.FactsWith("R", 0, Value(1.0)), (std::vector<FactId>{r0, r1}));
}

// ---------------------------------------------------------------------------
// ComputeAll vs. per-fact Compute
// ---------------------------------------------------------------------------

struct AggCase {
  AggregateFunction alpha;
  HierarchyClass frontier;
};

std::vector<AggCase> AggCases() {
  return {
      {AggregateFunction::Sum(), HierarchyClass::kExistsHierarchical},
      {AggregateFunction::Count(), HierarchyClass::kExistsHierarchical},
      {AggregateFunction::Min(), HierarchyClass::kAllHierarchical},
      {AggregateFunction::Max(), HierarchyClass::kAllHierarchical},
      {AggregateFunction::CountDistinct(), HierarchyClass::kAllHierarchical},
      {AggregateFunction::Avg(), HierarchyClass::kQHierarchical},
      {AggregateFunction::Median(), HierarchyClass::kQHierarchical},
      {AggregateFunction::HasDuplicates(), HierarchyClass::kSqHierarchical},
  };
}

void ExpectAllMatchesPerFact(const AggregateQuery& a, const Database& db,
                             const SolverOptions& options,
                             const std::string& label) {
  ShapleySolver solver(a);
  auto all = solver.ComputeAll(db, options);
  ASSERT_TRUE(all.ok()) << label << ": " << all.status().ToString();
  ASSERT_EQ(all->size(), db.EndogenousFacts().size()) << label;
  size_t i = 0;
  for (FactId fact : db.EndogenousFacts()) {
    const auto& [batch_fact, batch] = (*all)[i++];
    EXPECT_EQ(batch_fact, fact) << label;
    auto single = solver.Compute(db, fact, options);
    ASSERT_TRUE(single.ok()) << label << ": " << single.status().ToString();
    EXPECT_EQ(batch.is_exact, single->is_exact) << label << " fact " << fact;
    if (batch.is_exact && single->is_exact) {
      EXPECT_EQ(batch.exact, single->exact)
          << label << " fact " << fact << " batch=" << batch.algorithm
          << " single=" << single->algorithm;
    }
    // The sampling path reuses the per-fact seeding, so even the estimates
    // must agree to the last bit.
    EXPECT_EQ(batch.approximation, single->approximation)
        << label << " fact " << fact;
  }
}

TEST(SessionDifferentialTest, ComputeAllMatchesPerFactAcrossAggregates) {
  for (const AggCase& c : AggCases()) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      RandomQueryOptions query_options;
      query_options.max_variables = 3;
      query_options.seed = seed * 13 + 1;
      ConjunctiveQuery q = RandomQueryOfClass(c.frontier, query_options);
      RandomDatabaseOptions db_options;
      db_options.facts_per_relation = 4;
      db_options.seed = seed * 7 + 3;
      Database db = RandomDatabaseForQuery(q, db_options);
      if (db.num_endogenous() == 0) continue;
      ValueFunctionPtr tau =
          q.arity() > 0 ? MakeTauId(0) : MakeConstantTau(Rational(1));
      AggregateQuery a{q, tau, c.alpha};
      ExpectAllMatchesPerFact(
          a, db, SolverOptions{},
          a.ToString() + " seed " + std::to_string(seed));
    }
  }
}

TEST(SessionDifferentialTest, WarmCacheComputeAllIsBitwiseIdenticalToCold) {
  // The façade routes through the global PlanCache: the first ComputeAll
  // compiles (or reuses) the plan, the second is guaranteed warm. Both must
  // match a cold, cache-bypassing compile bit for bit — values, exactness,
  // and engine choice.
  for (const AggCase& c : AggCases()) {
    RandomQueryOptions query_options;
    query_options.max_variables = 3;
    query_options.seed = 17;
    ConjunctiveQuery q = RandomQueryOfClass(c.frontier, query_options);
    RandomDatabaseOptions db_options;
    db_options.facts_per_relation = 4;
    db_options.seed = 23;
    Database db = RandomDatabaseForQuery(q, db_options);
    if (db.num_endogenous() == 0) continue;
    ValueFunctionPtr tau =
        q.arity() > 0 ? MakeTauId(0) : MakeConstantTau(Rational(1));
    AggregateQuery a{q, tau, c.alpha};
    std::string label = a.ToString();

    SolverSession cold_session(AttributionPlan::Compile(a), db);
    auto cold = cold_session.ComputeAll();
    ASSERT_TRUE(cold.ok()) << label << ": " << cold.status().ToString();

    ShapleySolver solver(a);
    auto first = solver.ComputeAll(db);
    auto second = solver.ComputeAll(db);  // warm: plan served from cache
    ASSERT_TRUE(first.ok()) << label;
    ASSERT_TRUE(second.ok()) << label;
    ASSERT_EQ(cold->size(), first->size()) << label;
    ASSERT_EQ(cold->size(), second->size()) << label;
    for (size_t i = 0; i < cold->size(); ++i) {
      const auto& [fact, result] = (*cold)[i];
      for (const auto* warm : {&first.value(), &second.value()}) {
        EXPECT_EQ((*warm)[i].first, fact) << label;
        EXPECT_EQ((*warm)[i].second.is_exact, result.is_exact) << label;
        EXPECT_EQ((*warm)[i].second.exact, result.exact) << label;
        EXPECT_EQ((*warm)[i].second.approximation, result.approximation)
            << label;
        EXPECT_EQ((*warm)[i].second.algorithm, result.algorithm) << label;
      }
    }
  }
}

TEST(SessionDifferentialTest, ComputeAllMatchesPerFactOutsideFrontier) {
  // General-class queries push Auto to the brute-force fallback, which
  // ComputeAll serves from a single shared subset sweep.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RandomQueryOptions query_options;
    query_options.max_variables = 3;
    query_options.seed = seed + 40;
    ConjunctiveQuery q =
        RandomQueryOfClass(HierarchyClass::kGeneral, query_options);
    RandomDatabaseOptions db_options;
    db_options.facts_per_relation = 3;
    db_options.seed = seed * 11 + 5;
    Database db = RandomDatabaseForQuery(q, db_options);
    if (db.num_endogenous() == 0 ||
        db.num_endogenous() > kBruteForceMaxPlayers) {
      continue;
    }
    ValueFunctionPtr tau =
        q.arity() > 0 ? MakeTauId(0) : MakeConstantTau(Rational(1));
    for (AggregateFunction alpha :
         {AggregateFunction::Avg(), AggregateFunction::Max()}) {
      AggregateQuery a{q, tau, alpha};
      ExpectAllMatchesPerFact(
          a, db, SolverOptions{},
          a.ToString() + " seed " + std::to_string(seed));
    }
  }
}

TEST(SessionDifferentialTest, ComputeAllMatchesPerFactForBanzhaf) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x), S(x, y), T(y)");
  RandomDatabaseOptions db_options;
  db_options.facts_per_relation = 5;
  db_options.seed = 17;
  Database db = RandomDatabaseForQuery(q, db_options);
  ASSERT_GT(db.num_endogenous(), 0);
  SolverOptions options;
  options.score = ScoreKind::kBanzhaf;
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
  ExpectAllMatchesPerFact(a, db, options, "banzhaf sum");
}

TEST(SessionDifferentialTest, MonteCarloComputeAllMatchesPerFact) {
  // Large intractable instance: Auto lands on Monte Carlo. The shared
  // support evaluator must reproduce the per-fact estimates exactly.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db;
  for (int i = 0; i < 30; ++i) {
    db.AddEndogenous("R", {Value(i), Value(i % 5)});
  }
  for (int j = 0; j < 5; ++j) db.AddEndogenous("S", {Value(j)});
  AggregateQuery a{q, MakeTauReLU(0), AggregateFunction::Avg()};
  SolverOptions options;
  options.monte_carlo.num_samples = 64;
  ExpectAllMatchesPerFact(a, db, options, "monte carlo");
}

TEST(SessionDifferentialTest, ThreadedComputeAllIsDeterministic) {
  // A workload with a batched engine (Sum) and one without (Median): the
  // thread count must never change any result.
  for (AggregateFunction alpha :
       {AggregateFunction::Sum(), AggregateFunction::Median()}) {
    ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
    RandomDatabaseOptions db_options;
    db_options.facts_per_relation = 5;
    db_options.seed = 23;
    Database db = RandomDatabaseForQuery(q, db_options);
    ShapleySolver solver(AggregateQuery{q, MakeTauId(0), alpha});
    SolverOptions one_thread;
    one_thread.num_threads = 1;
    SolverOptions three_threads;
    three_threads.num_threads = 3;
    auto sequential = solver.ComputeAll(db, one_thread);
    auto threaded = solver.ComputeAll(db, three_threads);
    ASSERT_TRUE(sequential.ok());
    ASSERT_TRUE(threaded.ok());
    ASSERT_EQ(sequential->size(), threaded->size());
    for (size_t i = 0; i < sequential->size(); ++i) {
      EXPECT_EQ((*sequential)[i].first, (*threaded)[i].first);
      EXPECT_EQ((*sequential)[i].second.is_exact,
                (*threaded)[i].second.is_exact);
      EXPECT_EQ((*sequential)[i].second.exact, (*threaded)[i].second.exact);
      EXPECT_EQ((*sequential)[i].second.algorithm,
                (*threaded)[i].second.algorithm);
    }
  }
}

// ---------------------------------------------------------------------------
// Batched Sum/Count engine against independent oracles
// ---------------------------------------------------------------------------

TEST(SumCountScoreAllTest, AgreesWithBruteForceSweep) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x), S(x, y), T(y)");
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RandomDatabaseOptions db_options;
    db_options.facts_per_relation = 4;
    db_options.seed = seed;
    Database db = RandomDatabaseForQuery(q, db_options);
    if (db.num_endogenous() == 0) continue;
    AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
    for (ScoreKind kind : {ScoreKind::kShapley, ScoreKind::kBanzhaf}) {
      SolverOptions batch_options;
      batch_options.score = kind;
      auto batched = SumCountScoreAll(a, db, batch_options);
      auto oracle = BruteForceScoreAll(a, db, kind);
      ASSERT_TRUE(batched.ok()) << batched.status().ToString();
      ASSERT_TRUE(oracle.ok());
      ASSERT_EQ(batched->size(), oracle->size());
      for (size_t i = 0; i < batched->size(); ++i) {
        EXPECT_EQ((*batched)[i].first, (*oracle)[i].first);
        EXPECT_EQ((*batched)[i].second, (*oracle)[i].second)
            << "seed " << seed << " fact " << (*batched)[i].first;
      }
    }
  }
}

TEST(SumCountScoreAllTest, RefusesOutsideTheFrontierLikeTheSeriesEngine) {
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x), S(x, y), T(y)");
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("S", {Value(1), Value(2)});
  db.AddEndogenous("T", {Value(2)});
  AggregateQuery a{q, MakeConstantTau(Rational(1)), AggregateFunction::Count()};
  auto batched = SumCountScoreAll(a, db);
  EXPECT_FALSE(batched.ok());
  auto series = SumCountSumK(a, db);
  EXPECT_FALSE(series.ok());
  EXPECT_EQ(batched.status().message(), series.status().message());
}

// ---------------------------------------------------------------------------
// Session reuse
// ---------------------------------------------------------------------------

TEST(SolverSessionTest, SharedSessionAnswersManyQueries) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x), S(x, y), T(y)");
  RandomDatabaseOptions db_options;
  db_options.facts_per_relation = 5;
  db_options.seed = 29;
  Database db = RandomDatabaseForQuery(q, db_options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
  SolverSession session(a, db);
  EXPECT_EQ(session.classification(), Classify(q));
  EXPECT_TRUE(session.inside_frontier());
  ASSERT_FALSE(session.engines().empty());
  EXPECT_EQ(*session.ExactAlgorithmName(), "sum-count/linearity");
  ShapleySolver solver(a);
  for (FactId fact : db.EndogenousFacts()) {
    auto via_session = session.Compute(fact);
    auto via_solver = solver.Compute(db, fact);
    ASSERT_TRUE(via_session.ok());
    ASSERT_TRUE(via_solver.ok());
    EXPECT_EQ(via_session->exact, via_solver->exact);
    EXPECT_EQ(via_session->algorithm, via_solver->algorithm);
  }
  // Exogenous facts are rejected just like by the façade.
  for (FactId fact : db.ExogenousFacts()) {
    EXPECT_FALSE(session.Compute(fact).ok());
    break;
  }
}

TEST(SolverSessionTest, ClosedFormFastPathServesSingleRelationInstances) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x)");
  Database db;
  db.AddEndogenous("R", {Value(5)});
  db.AddEndogenous("R", {Value(3)});
  db.AddEndogenous("R", {Value(2)});
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  SolverSession session(a, db);
  auto all = session.ComputeAll();
  ASSERT_TRUE(all.ok());
  for (const auto& [fact, result] : *all) {
    EXPECT_EQ(result.algorithm, "closed-form/single-relation");
    EXPECT_EQ(result.exact, *BruteForceScore(a, db, fact));
  }
  // Banzhaf has no closed form: the session must fall through to the DP
  // with identical values.
  SolverOptions banzhaf;
  banzhaf.score = ScoreKind::kBanzhaf;
  auto banzhaf_all = session.ComputeAll(banzhaf);
  ASSERT_TRUE(banzhaf_all.ok());
  for (const auto& [fact, result] : *banzhaf_all) {
    EXPECT_NE(result.algorithm, "closed-form/single-relation");
    EXPECT_EQ(result.exact,
              *BruteForceScore(a, db, fact, ScoreKind::kBanzhaf));
  }
}

// ---------------------------------------------------------------------------
// Structured exact-only failures and Monte Carlo telemetry
// ---------------------------------------------------------------------------

// A 35-player instance outside every exact engine: Avg over a
// non-q-hierarchical query (the paper's FP#P-hard side), too large for
// brute force, and not a linear aggregate so the lineage-circuit engine
// does not apply either.
Database ThirtyFivePlayerDb() {
  Database db;
  for (int i = 0; i < 30; ++i) {
    db.AddEndogenous("R", {Value(i), Value(i % 5)});
  }
  for (int j = 0; j < 5; ++j) db.AddEndogenous("S", {Value(j)});
  return db;
}

TEST(SolverSessionTest, ExactOnlyFailureNamesPlayersAndEngines) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db = ThirtyFivePlayerDb();
  AggregateQuery a{q, MakeTauReLU(0), AggregateFunction::Avg()};
  SolverSession session(a, db);
  SolverOptions exact_only;
  exact_only.method = SolveMethod::kExactOnly;
  auto all = session.ComputeAll(exact_only);
  ASSERT_FALSE(all.ok());
  const std::string& message = all.status().message();
  EXPECT_NE(message.find("35 endogenous facts"), std::string::npos)
      << message;
  EXPECT_NE(message.find("exceeds the brute-force limit of 26"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("engines consulted"), std::string::npos) << message;
  EXPECT_NE(message.find("avg-quantile"), std::string::npos) << message;
  // The per-fact path reports the same structured diagnosis.
  auto one = session.Compute(db.EndogenousFacts().front(), exact_only);
  ASSERT_FALSE(one.ok());
  EXPECT_NE(one.status().message().find("35 endogenous facts"),
            std::string::npos)
      << one.status().message();
  EXPECT_NE(one.status().message().find("engines consulted"),
            std::string::npos)
      << one.status().message();
}

TEST(SolverSessionTest, MonteCarloEstimatesCarrySeededConfidenceIntervals) {
  // The sampler takes seed and sample budget from SolverOptions, derives a
  // per-fact stream, and surfaces CLT telemetry: estimates are identical
  // across runs and thread counts, and every result carries its sample
  // count and standard error for the ±1.96·σ̂ interval the provenance
  // footer prints.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db = ThirtyFivePlayerDb();
  AggregateQuery a{q, MakeTauReLU(0), AggregateFunction::Avg()};
  SolverSession session(a, db);
  SolverOptions options;
  options.method = SolveMethod::kMonteCarlo;
  options.monte_carlo.num_samples = 128;
  options.monte_carlo.seed = 9;
  options.num_threads = 1;
  auto serial = session.ComputeAll(options);
  ASSERT_TRUE(serial.ok());
  options.num_threads = 8;
  auto wide = session.ComputeAll(options);
  ASSERT_TRUE(wide.ok());
  SolverSession fresh(a, db);
  auto rerun = fresh.ComputeAll(options);
  ASSERT_TRUE(rerun.ok());
  ASSERT_EQ(serial->size(), wide->size());
  ASSERT_EQ(serial->size(), rerun->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    const SolveResult& result = (*serial)[i].second;
    EXPECT_FALSE(result.is_exact);
    EXPECT_EQ(result.samples, 128);
    EXPECT_GE(result.std_error, 0.0);
    EXPECT_EQ(result.approximation, (*wide)[i].second.approximation);
    EXPECT_EQ(result.std_error, (*wide)[i].second.std_error);
    EXPECT_EQ(result.approximation, (*rerun)[i].second.approximation);
  }
  // A different seed samples different streams.
  options.monte_carlo.seed = 10;
  auto reseeded = fresh.ComputeAll(options);
  ASSERT_TRUE(reseeded.ok());
  bool any_difference = false;
  for (size_t i = 0; i < serial->size(); ++i) {
    if ((*serial)[i].second.approximation !=
        (*reseeded)[i].second.approximation) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace shapcq
