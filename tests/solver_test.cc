// Tests for the solver façade, the Prop 7.3 special cases, Monte Carlo, and
// the tractability-frontier table.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/monte_carlo.h"
#include "shapcq/shapley/solver.h"
#include "shapcq/shapley/special_cases.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }
Rational R(int64_t n, int64_t d) { return Rational(BigInt(n), BigInt(d)); }

// ---------------------------------------------------------------------------
// Tractability frontier table (the content of Figure 1)
// ---------------------------------------------------------------------------

TEST(FrontierTest, TableMatchesPaper) {
  EXPECT_EQ(TractabilityFrontier(AggregateFunction::Sum()),
            HierarchyClass::kExistsHierarchical);
  EXPECT_EQ(TractabilityFrontier(AggregateFunction::Count()),
            HierarchyClass::kExistsHierarchical);
  EXPECT_EQ(TractabilityFrontier(AggregateFunction::Min()),
            HierarchyClass::kAllHierarchical);
  EXPECT_EQ(TractabilityFrontier(AggregateFunction::Max()),
            HierarchyClass::kAllHierarchical);
  EXPECT_EQ(TractabilityFrontier(AggregateFunction::CountDistinct()),
            HierarchyClass::kAllHierarchical);
  EXPECT_EQ(TractabilityFrontier(AggregateFunction::Avg()),
            HierarchyClass::kQHierarchical);
  EXPECT_EQ(TractabilityFrontier(AggregateFunction::Median()),
            HierarchyClass::kQHierarchical);
  EXPECT_EQ(TractabilityFrontier(AggregateFunction::HasDuplicates()),
            HierarchyClass::kSqHierarchical);
}

TEST(FrontierTest, Figure1ExamplesClassifyAsAnnotated) {
  // Each Figure 1 example is inside the frontier of the aggregates its box
  // lists, and outside the frontier of the aggregates of inner boxes.
  ConjunctiveQuery sq = MustParseQuery("Q(x) <- R(x), S(x, y)");
  ConjunctiveQuery qh = MustParseQuery("Q(x, y) <- R(x), S(x, y)");
  ConjunctiveQuery all = MustParseQuery("Q(y) <- R(x), S(x, y)");
  ConjunctiveQuery exists = MustParseQuery("Q(x) <- R(x), S(x, y), T(y)");
  ConjunctiveQuery general = MustParseQuery("Q() <- R(x), S(x, y), T(y)");

  EXPECT_TRUE(IsInsideFrontier(AggregateFunction::HasDuplicates(), sq));
  EXPECT_FALSE(IsInsideFrontier(AggregateFunction::HasDuplicates(), qh));
  EXPECT_TRUE(IsInsideFrontier(AggregateFunction::Avg(), qh));
  EXPECT_FALSE(IsInsideFrontier(AggregateFunction::Avg(), all));
  EXPECT_TRUE(IsInsideFrontier(AggregateFunction::Max(), all));
  EXPECT_FALSE(IsInsideFrontier(AggregateFunction::Max(), exists));
  EXPECT_TRUE(IsInsideFrontier(AggregateFunction::Sum(), exists));
  EXPECT_FALSE(IsInsideFrontier(AggregateFunction::Sum(), general));
}

TEST(FrontierTest, SelfJoinsAreOutsideEveryFrontier) {
  ConjunctiveQuery self_join = MustParseQuery("Q(x) <- R(x, y), R(y, x)");
  EXPECT_FALSE(IsInsideFrontier(AggregateFunction::Sum(), self_join));
}

// ---------------------------------------------------------------------------
// Proposition 7.3 cases (1) and (2): gated products
// ---------------------------------------------------------------------------

TEST(GatedProductTest, AvgOnQxyyzMatchesBruteForce) {
  // Avg ∘ τ²_ReLU ∘ Q_xyyz(x, z) <- R(x, y), S(y), T(z): hard for τ¹,
  // tractable for τ² (localized on T).
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 3;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    AggregateQuery a{q, MakeTauReLU(1), AggregateFunction::Avg()};
    auto dp = GatedProductSumK(a, db);
    auto bf = BruteForceSumK(a, db);
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    ASSERT_TRUE(bf.ok());
    for (size_t k = 0; k < bf->size(); ++k) {
      EXPECT_EQ((*dp)[k], (*bf)[k]) << "seed " << seed << " k=" << k;
    }
  }
}

TEST(GatedProductTest, MedianOnQxyyzMatchesBruteForce) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 3;
  for (uint64_t seed = 6; seed <= 9; ++seed) {
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    AggregateQuery a{q, MakeTauGreaterThan(1, R(0)),
                     AggregateFunction::Median()};
    auto dp = GatedProductSumK(a, db);
    auto bf = BruteForceSumK(a, db);
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    for (size_t k = 0; k < bf->size(); ++k) {
      EXPECT_EQ((*dp)[k], (*bf)[k]) << "seed " << seed << " k=" << k;
    }
  }
}

TEST(GatedProductTest, RejectsHardLocalization) {
  // τ¹ is localized on R, whose component {R, S} is all-hierarchical but
  // not q-hierarchical: the Avg engine cannot solve Q1 and the gated
  // product must refuse rather than answer wrong.
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  Database db;
  db.AddEndogenous("R", {Value(1), Value(2)});
  db.AddEndogenous("S", {Value(2)});
  db.AddEndogenous("T", {Value(3)});
  AggregateQuery a{q, MakeTauReLU(0), AggregateFunction::Avg()};
  EXPECT_FALSE(GatedProductSumK(a, db).ok());
}

TEST(GatedProductTest, RejectsGeneralQuantile) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  Database db;
  db.AddEndogenous("T", {Value(3)});
  db.AddEndogenous("R", {Value(1), Value(2)});
  db.AddEndogenous("S", {Value(2)});
  AggregateQuery a{q, MakeTauId(1), AggregateFunction::Quantile(R(1, 4))};
  EXPECT_FALSE(GatedProductSumK(a, db).ok());
}

// ---------------------------------------------------------------------------
// Monte Carlo
// ---------------------------------------------------------------------------

TEST(MonteCarloTest, ConvergesToExactValue) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 5;
  options.seed = 17;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Avg()};
  FactId probe = db.EndogenousFacts().front();
  double exact = BruteForceScore(a, db, probe)->ToDouble();
  MonteCarloOptions mc;
  mc.num_samples = 60000;
  mc.seed = 3;
  auto estimate = MonteCarloShapley(a, db, probe, mc);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->estimate, exact,
              5 * estimate->std_error + 1e-9);
}

TEST(MonteCarloTest, ErrorShrinksWithSamples) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 6;
  options.seed = 23;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Median()};
  FactId probe = db.EndogenousFacts().front();
  double exact = BruteForceScore(a, db, probe)->ToDouble();
  double previous_error = 1e9;
  for (int64_t samples : {100, 10000}) {
    MonteCarloOptions mc;
    mc.num_samples = samples;
    mc.seed = 5;
    auto estimate = MonteCarloShapley(a, db, probe, mc);
    ASSERT_TRUE(estimate.ok());
    double error = std::abs(estimate->estimate - exact);
    // Not strictly monotone per-seed, but 100 -> 10000 should improve here.
    EXPECT_LE(error, previous_error + 1e-12);
    previous_error = error;
  }
}

TEST(MonteCarloTest, BanzhafSamplerConverges) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x)");
  Database db;
  db.AddEndogenous("R", {Value(5)});
  db.AddEndogenous("R", {Value(3)});
  db.AddEndogenous("R", {Value(2)});
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  FactId probe = 0;
  double exact =
      BruteForceScore(a, db, probe, ScoreKind::kBanzhaf)->ToDouble();
  MonteCarloOptions mc;
  mc.num_samples = 40000;
  mc.seed = 11;
  auto estimate = MonteCarloBanzhaf(a, db, probe, mc);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->estimate, exact, 5 * estimate->std_error + 1e-9);
}

TEST(MonteCarloTest, HoeffdingBoundIsSane) {
  int64_t m = HoeffdingSampleCount(/*range=*/1.0, /*epsilon=*/0.1,
                                   /*delta=*/0.05);
  EXPECT_GT(m, 100);
  EXPECT_LT(m, 100000);
  EXPECT_GT(HoeffdingSampleCount(1.0, 0.01, 0.05), m);
}

TEST(MonteCarloTest, WorksBeyondBruteForceLimit) {
  // 40 endogenous facts: brute force impossible, sampling fine.
  Database db;
  for (int i = 0; i < 40; ++i) {
    db.AddEndogenous("R", {Value(i % 7), Value(i)});
  }
  db.AddExogenous("S", {Value(0)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y)");
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  MonteCarloOptions mc;
  mc.num_samples = 200;
  auto estimate = MonteCarloShapley(a, db, 0, mc);
  ASSERT_TRUE(estimate.ok());
  EXPECT_EQ(estimate->samples, 200);
}

// ---------------------------------------------------------------------------
// Solver dispatch
// ---------------------------------------------------------------------------

TEST(SolverTest, DispatchesToExactEnginePerAggregate) {
  struct Case {
    AggregateFunction alpha;
    const char* query;
    const char* expected_algorithm;
  };
  std::vector<Case> cases = {
      {AggregateFunction::Sum(), "Q(x) <- R(x), S(x, y), T(y)",
       "sum-count/linearity"},
      {AggregateFunction::Max(), "Q(x) <- R(x, y), S(y)",
       "min-max/all-hierarchical-dp"},
      {AggregateFunction::CountDistinct(), "Q(x) <- R(x, y), S(y)",
       "count-distinct/boolean-reduction"},
      {AggregateFunction::Avg(), "Q(x, y) <- R(x, y), S(y)",
       "avg-quantile/q-hierarchical-dp"},
      {AggregateFunction::HasDuplicates(), "Q(x) <- R(x, y), S(x)",
       "has-duplicates/sq-hierarchical-dp"},
  };
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 2;
  for (const Case& c : cases) {
    ConjunctiveQuery q = MustParseQuery(c.query);
    Database db = RandomDatabaseForQuery(q, options);
    ShapleySolver solver(AggregateQuery{q, MakeTauId(0), c.alpha});
    FactId probe = db.EndogenousFacts().front();
    auto result = solver.Compute(db, probe);
    ASSERT_TRUE(result.ok()) << c.query;
    EXPECT_TRUE(result->is_exact);
    EXPECT_EQ(result->algorithm, c.expected_algorithm) << c.query;
    // And the exact value agrees with brute force.
    auto bf = BruteForceScore(AggregateQuery{q, MakeTauId(0), c.alpha}, db,
                              probe);
    EXPECT_EQ(result->exact, *bf) << c.query;
  }
}

TEST(SolverTest, FallsBackToBruteForceOutsideFrontier) {
  // Avg over Q_xyy: outside the q-hierarchical frontier; small database, so
  // Auto uses brute force.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 3;
  Database db = RandomDatabaseForQuery(q, options);
  ShapleySolver solver(
      AggregateQuery{q, MakeTauReLU(0), AggregateFunction::Avg()});
  FactId probe = db.EndogenousFacts().front();
  auto result = solver.Compute(db, probe);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->is_exact);
  EXPECT_EQ(result->algorithm, "brute-force");
}

TEST(SolverTest, FallsBackToMonteCarloOnLargeIntractableInstances) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db;
  for (int i = 0; i < 30; ++i) {
    db.AddEndogenous("R", {Value(i), Value(i % 5)});
  }
  for (int j = 0; j < 5; ++j) db.AddEndogenous("S", {Value(j)});
  ShapleySolver solver(
      AggregateQuery{q, MakeTauReLU(0), AggregateFunction::Avg()});
  SolverOptions options;
  options.monte_carlo.num_samples = 50;
  auto result = solver.Compute(db, 0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->is_exact);
  EXPECT_EQ(result->algorithm, "monte-carlo");
}

TEST(SolverTest, ExactOnlyFailsOutsideFrontier) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db;
  db.AddEndogenous("R", {Value(1), Value(2)});
  db.AddEndogenous("S", {Value(2)});
  ShapleySolver solver(
      AggregateQuery{q, MakeTauReLU(0), AggregateFunction::Avg()});
  SolverOptions options;
  options.method = SolveMethod::kExactOnly;
  EXPECT_FALSE(solver.Compute(db, 0, options).ok());
}

TEST(SolverTest, GatedProductIsReachableThroughAuto) {
  // Prop 7.3(1): primary Avg engine fails (not q-hierarchical), the gated
  // product succeeds — Auto must find it.
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 3;
  options.seed = 21;
  Database db = RandomDatabaseForQuery(q, options);
  ShapleySolver solver(
      AggregateQuery{q, MakeTauReLU(1), AggregateFunction::Avg()});
  FactId probe = db.EndogenousFacts().front();
  auto result = solver.Compute(db, probe);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->algorithm, "gated-product/prop-7.3");
}

TEST(SolverTest, ComputeAllSatisfiesEfficiency) {
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 5;
  options.seed = 13;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Median()};
  ShapleySolver solver(a);
  auto results = solver.ComputeAll(db);
  ASSERT_TRUE(results.ok());
  Rational total;
  for (const auto& [fact, result] : *results) {
    ASSERT_TRUE(result.is_exact);
    total += result.exact;
  }
  // ν(P) = A(D) − A(D_x).
  Database exo_only;
  for (FactId id = 0; id < db.num_facts(); ++id) {
    const Fact& fact = db.fact(id);
    if (!fact.endogenous) exo_only.AddExogenous(fact.relation, fact.args);
  }
  EXPECT_EQ(total, a.Evaluate(db) - a.Evaluate(exo_only));
}

TEST(SolverTest, BanzhafThroughSolver) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 19;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  ShapleySolver solver(a);
  SolverOptions options_banzhaf;
  options_banzhaf.score = ScoreKind::kBanzhaf;
  for (FactId f : db.EndogenousFacts()) {
    auto result = solver.Compute(db, f, options_banzhaf);
    ASSERT_TRUE(result.ok());
    auto bf = BruteForceScore(a, db, f, ScoreKind::kBanzhaf);
    EXPECT_EQ(result->exact, *bf);
  }
}

TEST(SolverTest, RejectsExogenousFact) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x)");
  Database db;
  FactId exo = db.AddExogenous("R", {Value(1)});
  db.AddEndogenous("R", {Value(2)});
  ShapleySolver solver(
      AggregateQuery{q, MakeTauId(0), AggregateFunction::Sum()});
  EXPECT_FALSE(solver.Compute(db, exo).ok());
}

}  // namespace
}  // namespace shapcq
