#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }
Rational R(int64_t n, int64_t d) { return Rational(BigInt(n), BigInt(d)); }

// ---------------------------------------------------------------------------
// Aggregate functions on explicit bags
// ---------------------------------------------------------------------------

TEST(AggregateTest, EmptyBagIsZeroForAllAggregates) {
  std::vector<Rational> empty;
  for (AggregateFunction alpha :
       {AggregateFunction::Sum(), AggregateFunction::Count(),
        AggregateFunction::CountDistinct(), AggregateFunction::Min(),
        AggregateFunction::Max(), AggregateFunction::Avg(),
        AggregateFunction::Median(), AggregateFunction::HasDuplicates()}) {
    EXPECT_TRUE(alpha.Apply(empty).is_zero()) << alpha.ToString();
  }
}

TEST(AggregateTest, SumCountBasics) {
  std::vector<Rational> bag = {R(1), R(2), R(2), R(5)};
  EXPECT_EQ(AggregateFunction::Sum().Apply(bag), R(10));
  EXPECT_EQ(AggregateFunction::Count().Apply(bag), R(4));
  EXPECT_EQ(AggregateFunction::CountDistinct().Apply(bag), R(3));
}

TEST(AggregateTest, MinMaxIncludingNegative) {
  std::vector<Rational> bag = {R(-3), R(7), R(0)};
  EXPECT_EQ(AggregateFunction::Min().Apply(bag), R(-3));
  EXPECT_EQ(AggregateFunction::Max().Apply(bag), R(7));
}

TEST(AggregateTest, AvgIsExact) {
  std::vector<Rational> bag = {R(1), R(2)};
  EXPECT_EQ(AggregateFunction::Avg().Apply(bag), R(3, 2));
}

TEST(AggregateTest, MedianOddAndEven) {
  EXPECT_EQ(AggregateFunction::Median().Apply({R(3), R(1), R(2)}), R(2));
  EXPECT_EQ(AggregateFunction::Median().Apply({R(4), R(1), R(2), R(3)}),
            R(5, 2));
  EXPECT_EQ(AggregateFunction::Median().Apply({R(9)}), R(9));
}

TEST(AggregateTest, GeneralQuantiles) {
  std::vector<Rational> bag = {R(10), R(20), R(30), R(40)};
  // q = 1/4: ⌈1⌉ = 1st, ⌊2⌋ = 2nd smallest -> (10+20)/2.
  EXPECT_EQ(AggregateFunction::Quantile(R(1, 4)).Apply(bag), R(15));
  // q = 3/4: ⌈3⌉ = 3rd, ⌊4⌋ = 4th -> (30+40)/2.
  EXPECT_EQ(AggregateFunction::Quantile(R(3, 4)).Apply(bag), R(35));
  // Non-integral q|B|: q = 1/3 on 4 elements: ⌈4/3⌉ = 2, ⌊7/3⌋ = 2 -> 20.
  EXPECT_EQ(AggregateFunction::Quantile(R(1, 3)).Apply(bag), R(20));
}

TEST(AggregateTest, HasDuplicates) {
  EXPECT_EQ(AggregateFunction::HasDuplicates().Apply({R(1), R(2)}), R(0));
  EXPECT_EQ(AggregateFunction::HasDuplicates().Apply({R(1), R(2), R(1)}),
            R(1));
  EXPECT_EQ(AggregateFunction::HasDuplicates().Apply({R(5)}), R(0));
}

TEST(AggregateTest, ConstantPerSingletonProperty) {
  EXPECT_TRUE(AggregateFunction::Min().IsConstantPerSingleton());
  EXPECT_TRUE(AggregateFunction::Max().IsConstantPerSingleton());
  EXPECT_TRUE(AggregateFunction::CountDistinct().IsConstantPerSingleton());
  EXPECT_TRUE(AggregateFunction::Avg().IsConstantPerSingleton());
  EXPECT_TRUE(AggregateFunction::Median().IsConstantPerSingleton());
  EXPECT_FALSE(AggregateFunction::Sum().IsConstantPerSingleton());
  EXPECT_FALSE(AggregateFunction::Count().IsConstantPerSingleton());
  EXPECT_FALSE(AggregateFunction::HasDuplicates().IsConstantPerSingleton());
}

// ---------------------------------------------------------------------------
// Value functions
// ---------------------------------------------------------------------------

TEST(ValueFunctionTest, BuiltinsMatchPaperDefinitions) {
  Tuple t = {Value(-2), Value(5)};
  EXPECT_EQ(MakeTauId(0)->Evaluate(t), R(-2));
  EXPECT_EQ(MakeTauId(1)->Evaluate(t), R(5));
  EXPECT_EQ(MakeTauReLU(0)->Evaluate(t), R(0));
  EXPECT_EQ(MakeTauReLU(1)->Evaluate(t), R(5));
  EXPECT_EQ(MakeTauGreaterThan(1, R(4))->Evaluate(t), R(1));
  EXPECT_EQ(MakeTauGreaterThan(1, R(5))->Evaluate(t), R(0));
  EXPECT_EQ(MakeConstantTau(R(7))->Evaluate(t), R(7));
}

TEST(ValueFunctionTest, DependsOnDeclarations) {
  EXPECT_TRUE(MakeConstantTau(R(1))->DependsOn().empty());
  EXPECT_EQ(MakeTauId(1)->DependsOn(), (std::vector<int>{1}));
  EXPECT_EQ(MakeTauReLU(0)->DependsOn(), (std::vector<int>{0}));
}

TEST(ValueFunctionTest, ComposedTau) {
  auto doubled = MakeComposedTau(
      [](const Rational& v) { return v * R(2); }, MakeTauId(0), "double");
  EXPECT_EQ(doubled->Evaluate({Value(21)}), R(42));
  EXPECT_EQ(doubled->DependsOn(), (std::vector<int>{0}));
}

TEST(ValueFunctionTest, LocalizationAtoms) {
  // Q(x, y) <- R(x, y), S(y): tau_id^1 (on x) localized on R only;
  // tau_id^2 (on y) localized on both; constants on both.
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  EXPECT_EQ(LocalizationAtoms(q, *MakeTauId(0)), (std::vector<int>{0}));
  EXPECT_EQ(LocalizationAtoms(q, *MakeTauId(1)), (std::vector<int>{0, 1}));
  EXPECT_EQ(LocalizationAtoms(q, *MakeConstantTau(R(3))),
            (std::vector<int>{0, 1}));
}

TEST(ValueFunctionTest, EvaluateTauOnFact) {
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  // R-fact (7, 9): tau_id^1 reads x -> 7.
  EXPECT_EQ(EvaluateTauOnFact(q, 0, *MakeTauId(0), {Value(7), Value(9)}),
            R(7));
  // S-fact (9): tau_id^2 reads y -> 9.
  EXPECT_EQ(EvaluateTauOnFact(q, 1, *MakeTauId(1), {Value(9)}), R(9));
  EXPECT_EQ(EvaluateTauOnFact(q, 1, *MakeConstantTau(R(5)), {Value(9)}),
            R(5));
}

// ---------------------------------------------------------------------------
// End-to-end aggregate query evaluation (Example 2.2 flavor)
// ---------------------------------------------------------------------------

TEST(AggregateQueryTest, AverageSalaryExample) {
  // Schema of Example 2.2: Earns(person, salary), Course(name, number),
  // Took(person, course).
  Database db;
  db.AddExogenous("Earns", {Value("ann"), Value(100)});
  db.AddExogenous("Earns", {Value("bob"), Value(50)});
  db.AddExogenous("Earns", {Value("eve"), Value(200)});
  db.AddEndogenous("Course", {Value("db"), Value(1)});
  db.AddEndogenous("Course", {Value("ai"), Value(2)});
  db.AddExogenous("Took", {Value("ann"), Value(1)});
  db.AddExogenous("Took", {Value("ann"), Value(2)});
  db.AddExogenous("Took", {Value("bob"), Value(1)});
  AggregateQuery avg_salary{
      MustParseQuery("Q(p, s) <- Earns(p, s), Took(p, c), Course(n, c)"),
      MakeTauId(1), AggregateFunction::Avg()};
  // ann (100) and bob (50) took courses; ann counted once despite 2 courses.
  EXPECT_EQ(avg_salary.Evaluate(db), R(75));
}

TEST(AggregateQueryTest, EvaluateHandlesEmptyResult) {
  Database db;
  db.AddEndogenous("R", {Value(1)});
  AggregateQuery a{MustParseQuery("Q(x) <- R(x), S(x)"), MakeTauId(0),
                   AggregateFunction::Sum()};
  EXPECT_TRUE(a.Evaluate(db).is_zero());
}

TEST(AggregateQueryTest, ToStringIsInformative) {
  AggregateQuery a{MustParseQuery("Q(x) <- R(x, y), S(y)"), MakeTauReLU(0),
                   AggregateFunction::Median()};
  EXPECT_EQ(a.ToString(), "Qnt_1/2 o tau_ReLU^1 o Q(x) <- R(x, y), S(y)");
}

}  // namespace
}  // namespace shapcq
