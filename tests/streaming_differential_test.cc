// Differential tests for the streaming path: random insert/delete/compact
// sequences against a StreamingSolver, checked after every mutation.
//
// Three-way agreement, all on exact rationals (canonical form — equality
// is bitwise identity):
//   1. StreamingSolver::ComputeAll == a fresh SolverSession on the mutated
//      database (id-aligned; this is the mutate-then-solve vs solve-fresh
//      oracle the incremental cache is gated on).
//   2. Fresh solve of the mutated database (FactId space with tombstone
//      holes) == fresh solve of a database REBUILT from scratch with only
//      the live facts (dense ids) — compared by fact content. This pins
//      every engine's tombstone handling, not just the streaming cache's.
//   3. Repeated across thread counts: the parity must hold for any
//      num_threads.
// Covers Sum/Count (incremental circuit-patching path) and
// Min/Max/Avg/Median (session fallback path over a tombstoned database).

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/session.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/stream/streaming.h"
#include "shapcq/workload/generators.h"
#include "shapcq/workload/random_query.h"

namespace shapcq {
namespace {

// Keep every instance brute-forceable so kAuto always lands on an exact
// engine (never Monte Carlo).
constexpr int kMaxPlayers = 12;

struct StreamingCase {
  AggregateFunction alpha;
  HierarchyClass target;  // query class (keeps the exact engines in play)
  uint64_t seed;
  int num_threads;
};

std::vector<StreamingCase> MakeCases() {
  std::vector<StreamingCase> cases;
  struct AlphaClass {
    AggregateFunction alpha;
    HierarchyClass target;
  };
  const std::vector<AlphaClass> alphas = {
      {AggregateFunction::Sum(), HierarchyClass::kGeneral},
      {AggregateFunction::Count(), HierarchyClass::kExistsHierarchical},
      {AggregateFunction::Min(), HierarchyClass::kAllHierarchical},
      {AggregateFunction::Max(), HierarchyClass::kAllHierarchical},
      {AggregateFunction::Avg(), HierarchyClass::kQHierarchical},
      {AggregateFunction::Median(), HierarchyClass::kQHierarchical},
  };
  for (const AlphaClass& ac : alphas) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      for (int threads : {1, 4}) {
        cases.push_back({ac.alpha, ac.target, seed, threads});
      }
    }
  }
  return cases;
}

// Rebuilds a dense database holding exactly the live facts of `db`.
Database RebuildLive(const Database& db) {
  Database fresh;
  for (FactId id = 0; id < db.num_facts(); ++id) {
    if (!db.live(id)) continue;
    const Fact& fact = db.fact(id);
    fresh.AddFact(fact.relation, fact.args, fact.endogenous);
  }
  return fresh;
}

using ContentKey = std::pair<std::string, Tuple>;

std::map<ContentKey, Rational> ByContent(
    const Database& db,
    const std::vector<std::pair<FactId, SolveResult>>& results) {
  std::map<ContentKey, Rational> scores;
  for (const auto& [id, result] : results) {
    const Fact& fact = db.fact(id);
    scores.emplace(ContentKey{fact.relation, fact.args}, result.exact);
  }
  return scores;
}

class StreamingDifferentialTest
    : public ::testing::TestWithParam<StreamingCase> {};

TEST_P(StreamingDifferentialTest, MutateThenSolveMatchesRebuild) {
  const StreamingCase& param = GetParam();
  RandomQueryOptions query_options;
  query_options.max_variables = 3;
  query_options.components = 1 + static_cast<int>(param.seed % 2);
  query_options.seed = param.seed;
  ConjunctiveQuery q = RandomQueryOfClass(param.target, query_options);

  RandomDatabaseOptions db_options;
  db_options.facts_per_relation = 3;
  db_options.domain_size = 3;
  db_options.seed = param.seed * 1000 + 7;
  Database db = RandomDatabaseForQuery(q, db_options);
  if (db.num_endogenous() == 0 || db.num_endogenous() > kMaxPlayers) {
    GTEST_SKIP();
  }

  ValueFunctionPtr tau =
      q.arity() > 0 ? MakeTauId(0) : MakeConstantTau(Rational(1));
  AggregateQuery a{q, tau, param.alpha};
  SolverOptions options;
  options.num_threads = param.num_threads;

  StreamingSolver solver(a, &db, options);
  std::mt19937_64 rng(param.seed * 7919 + 13);

  auto check_round = [&](const std::string& label) {
    StatusOr<std::vector<std::pair<FactId, SolveResult>>> streamed =
        solver.ComputeAll();
    ASSERT_TRUE(streamed.ok()) << label << ": " << streamed.status().ToString();

    // Oracle 1: fresh session on the mutated (tombstoned) database.
    SolverSession fresh(a, db);
    StatusOr<std::vector<std::pair<FactId, SolveResult>>> mutated =
        fresh.ComputeAll(options);
    ASSERT_TRUE(mutated.ok()) << label << ": " << mutated.status().ToString();
    ASSERT_EQ(streamed->size(), mutated->size()) << label;
    for (size_t i = 0; i < mutated->size(); ++i) {
      ASSERT_EQ((*streamed)[i].first, (*mutated)[i].first) << label;
      ASSERT_TRUE((*streamed)[i].second.is_exact) << label;
      ASSERT_TRUE((*mutated)[i].second.is_exact) << label;
      EXPECT_EQ((*streamed)[i].second.exact, (*mutated)[i].second.exact)
          << label << " fact " << (*mutated)[i].first << " of "
          << db.ToString();
    }

    // Oracle 2: rebuild-from-scratch (dense ids), compared by content.
    Database rebuilt = RebuildLive(db);
    SolverSession scratch(a, rebuilt);
    StatusOr<std::vector<std::pair<FactId, SolveResult>>> dense =
        scratch.ComputeAll(options);
    ASSERT_TRUE(dense.ok()) << label << ": " << dense.status().ToString();
    std::map<ContentKey, Rational> mutated_scores = ByContent(db, *mutated);
    std::map<ContentKey, Rational> dense_scores = ByContent(rebuilt, *dense);
    EXPECT_EQ(mutated_scores, dense_scores) << label;
  };

  check_round("initial");

  const std::vector<Atom>& atoms = q.atoms();
  for (int step = 0; step < 6; ++step) {
    const std::string label = "step " + std::to_string(step);
    bool mutated = false;
    if (rng() % 2 == 0) {
      // Random insert into a random query relation.
      const Atom& atom = atoms[rng() % atoms.size()];
      Tuple args;
      for (int i = 0; i < atom.arity(); ++i) {
        args.push_back(Value(static_cast<int64_t>(rng() % 4)));
      }
      bool endogenous =
          db.num_endogenous() < kMaxPlayers && rng() % 4 != 0;
      StatusOr<FactId> inserted =
          solver.InsertFact(atom.relation, std::move(args), endogenous);
      // Colliding with an existing fact is fine — just no mutation.
      mutated = inserted.ok();
    } else {
      std::vector<FactId> live;
      for (FactId id = 0; id < db.num_facts(); ++id) {
        if (db.live(id)) live.push_back(id);
      }
      if (!live.empty()) {
        FactId victim = live[rng() % live.size()];
        ASSERT_TRUE(solver.DeleteFact(victim).ok()) << label;
        mutated = true;
      }
    }
    if (step % 3 == 2) {
      solver.CompactTombstones();
      mutated = true;
    }
    if (!mutated) continue;
    check_round(label);
  }

  // The linear aggregates must actually have used the incremental path.
  if (param.alpha.kind() == AggKind::kSum ||
      param.alpha.kind() == AggKind::kCount) {
    EXPECT_TRUE(solver.incremental());
    EXPECT_GT(solver.stats().incremental_solves, 0u);
    EXPECT_EQ(solver.stats().fallback_solves, 0u);
    EXPECT_EQ(solver.stats().full_rebuilds, 1u);
  } else {
    EXPECT_GT(solver.stats().fallback_solves, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Streaming, StreamingDifferentialTest,
                         ::testing::ValuesIn(MakeCases()));

// --- Epoch regression tests ------------------------------------------------
//
// The streaming cache keys on Database::epoch(). Any semantic change the
// solver is not notified about must still be visible through the epoch so
// ComputeAll degrades to a full rebuild — never a stale answer. These pin
// the two historically silent mutations: SetEndogenous (partition change)
// and an external CompactTombstones the caller forgot to announce.

// Asserts solver.ComputeAll() is bitwise-identical to a fresh session on
// the current database state.
void ExpectMatchesFresh(StreamingSolver& solver, const AggregateQuery& a,
                        const Database& db, const SolverOptions& options,
                        const std::string& label) {
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> streamed =
      solver.ComputeAll();
  ASSERT_TRUE(streamed.ok()) << label << ": " << streamed.status().ToString();
  SolverSession fresh(a, db);
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> expected =
      fresh.ComputeAll(options);
  ASSERT_TRUE(expected.ok()) << label << ": " << expected.status().ToString();
  ASSERT_EQ(streamed->size(), expected->size()) << label;
  for (size_t i = 0; i < expected->size(); ++i) {
    ASSERT_EQ((*streamed)[i].first, (*expected)[i].first) << label;
    ASSERT_TRUE((*streamed)[i].second.is_exact) << label;
    EXPECT_EQ((*streamed)[i].second.exact, (*expected)[i].second.exact)
        << label << " fact " << (*expected)[i].first;
  }
}

struct EpochFixture {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db;
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};

  EpochFixture() {
    db.AddEndogenous("R", {Value(int64_t{1}), Value(int64_t{10})});
    db.AddEndogenous("R", {Value(int64_t{1}), Value(int64_t{11})});
    db.AddEndogenous("R", {Value(int64_t{2}), Value(int64_t{10})});
    db.AddEndogenous("S", {Value(int64_t{10})});
    db.AddEndogenous("S", {Value(int64_t{11})});
    db.AddExogenous("S", {Value(int64_t{12})});
  }
};

TEST(StreamingEpochTest, UnnotifiedSetEndogenousForcesRebuild) {
  EpochFixture f;
  SolverOptions options;
  StreamingSolver solver(f.a, &f.db, options);
  ExpectMatchesFresh(solver, f.a, f.db, options, "initial");
  ASSERT_EQ(solver.stats().full_rebuilds, 1u);

  // Flip a player exogenous behind the solver's back. The partition change
  // must bump the epoch, and the next solve must rebuild and agree with a
  // fresh session on the mutated database.
  const uint64_t before = f.db.epoch();
  f.db.SetEndogenous(0, false);
  EXPECT_EQ(f.db.epoch(), before + 1);
  ExpectMatchesFresh(solver, f.a, f.db, options, "after exogenous flip");
  EXPECT_EQ(solver.stats().full_rebuilds, 2u);

  // And back again: a second unnotified flip, a second detected rebuild.
  f.db.SetEndogenous(0, true);
  ExpectMatchesFresh(solver, f.a, f.db, options, "after endogenous flip");
  EXPECT_EQ(solver.stats().full_rebuilds, 3u);
}

TEST(StreamingEpochTest, NoOpSetEndogenousKeepsCache) {
  EpochFixture f;
  SolverOptions options;
  StreamingSolver solver(f.a, &f.db, options);
  ASSERT_TRUE(solver.ComputeAll().ok());
  ASSERT_EQ(solver.stats().full_rebuilds, 1u);

  // Re-asserting the current flag is not a semantic change: no epoch bump,
  // and the cache survives the next solve.
  const uint64_t before = f.db.epoch();
  f.db.SetEndogenous(0, true);
  EXPECT_EQ(f.db.epoch(), before);
  ExpectMatchesFresh(solver, f.a, f.db, options, "after no-op flip");
  EXPECT_EQ(solver.stats().full_rebuilds, 1u);
  EXPECT_EQ(solver.stats().incremental_solves, 2u);
}

TEST(StreamingEpochTest, UnnotifiedExternalCompactionForcesRebuild) {
  EpochFixture f;
  SolverOptions options;
  StreamingSolver solver(f.a, &f.db, options);
  ASSERT_TRUE(solver.ComputeAll().ok());
  ASSERT_TRUE(solver.DeleteFact(1).ok());
  ExpectMatchesFresh(solver, f.a, f.db, options, "after delete");
  ASSERT_EQ(solver.stats().full_rebuilds, 1u);

  // Compact the database directly, without OnCompact. The epoch moves past
  // what the cache recorded, so the next solve must detect it and rebuild
  // rather than trust posting lists whose rows were shuffled.
  f.db.CompactTombstones();
  ExpectMatchesFresh(solver, f.a, f.db, options, "after silent compaction");
  EXPECT_EQ(solver.stats().full_rebuilds, 2u);
}

TEST(StreamingEpochTest, NotifiedCompactionKeepsCache) {
  EpochFixture f;
  SolverOptions options;
  StreamingSolver solver(f.a, &f.db, options);
  ASSERT_TRUE(solver.ComputeAll().ok());
  ASSERT_TRUE(solver.DeleteFact(1).ok());

  // The solver's own CompactTombstones (and equivalently an external
  // compaction followed by OnCompact) absorbs the epoch bump: contents are
  // unchanged, so the cache stays warm.
  solver.CompactTombstones();
  ExpectMatchesFresh(solver, f.a, f.db, options, "after notified compaction");
  EXPECT_EQ(solver.stats().full_rebuilds, 1u);

  f.db.CompactTombstones();
  solver.OnCompact();
  ExpectMatchesFresh(solver, f.a, f.db, options, "after external OnCompact");
  EXPECT_EQ(solver.stats().full_rebuilds, 1u);
}

}  // namespace
}  // namespace shapcq
