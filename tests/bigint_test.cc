#include "shapcq/util/bigint.h"

#include <cstdint>
#include <random>
#include <string>

#include <gtest/gtest.h>

namespace shapcq {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.ToInt64(), 0);
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{42},
                    int64_t{-42}, int64_t{1} << 40, -(int64_t{1} << 40),
                    INT64_MAX, INT64_MIN}) {
    BigInt big(v);
    ASSERT_TRUE(big.FitsInInt64()) << v;
    EXPECT_EQ(big.ToInt64(), v);
  }
}

TEST(BigIntTest, Int64MinMaxStrings) {
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, FromStringParsesAndRoundTrips) {
  auto parsed = BigInt::FromString("123456789012345678901234567890");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), "123456789012345678901234567890");

  auto negative = BigInt::FromString("-987654321098765432109876543210");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative->ToString(), "-987654321098765432109876543210");

  auto plus = BigInt::FromString("+17");
  ASSERT_TRUE(plus.ok());
  EXPECT_EQ(plus->ToInt64(), 17);
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12x4").ok());
  EXPECT_FALSE(BigInt::FromString("0.5").ok());
}

TEST(BigIntTest, AdditionBasics) {
  EXPECT_EQ((BigInt(2) + BigInt(3)).ToInt64(), 5);
  EXPECT_EQ((BigInt(-2) + BigInt(3)).ToInt64(), 1);
  EXPECT_EQ((BigInt(2) + BigInt(-3)).ToInt64(), -1);
  EXPECT_EQ((BigInt(-2) + BigInt(-3)).ToInt64(), -5);
  EXPECT_TRUE((BigInt(7) + BigInt(-7)).is_zero());
}

TEST(BigIntTest, CarryPropagation) {
  BigInt almost = *BigInt::FromString("4294967295");  // 2^32 - 1
  EXPECT_EQ((almost + BigInt(1)).ToString(), "4294967296");
  BigInt big = *BigInt::FromString("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((big + BigInt(1)).ToString(), "18446744073709551616");
}

TEST(BigIntTest, SubtractionBasics) {
  EXPECT_EQ((BigInt(10) - BigInt(4)).ToInt64(), 6);
  EXPECT_EQ((BigInt(4) - BigInt(10)).ToInt64(), -6);
  BigInt x = *BigInt::FromString("100000000000000000000");
  BigInt y = *BigInt::FromString("99999999999999999999");
  EXPECT_EQ((x - y).ToInt64(), 1);
}

TEST(BigIntTest, SelfSubtractionIsZero) {
  BigInt x = *BigInt::FromString("123456789123456789");
  x -= x;
  EXPECT_TRUE(x.is_zero());
}

TEST(BigIntTest, MultiplicationBasics) {
  EXPECT_EQ((BigInt(6) * BigInt(7)).ToInt64(), 42);
  EXPECT_EQ((BigInt(-6) * BigInt(7)).ToInt64(), -42);
  EXPECT_EQ((BigInt(-6) * BigInt(-7)).ToInt64(), 42);
  EXPECT_TRUE((BigInt(0) * BigInt(12345)).is_zero());
}

TEST(BigIntTest, LargeMultiplication) {
  BigInt x = *BigInt::FromString("123456789012345678901234567890");
  BigInt y = *BigInt::FromString("987654321098765432109876543210");
  EXPECT_EQ((x * y).ToString(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, DivisionBasics) {
  EXPECT_EQ((BigInt(42) / BigInt(7)).ToInt64(), 6);
  EXPECT_EQ((BigInt(43) / BigInt(7)).ToInt64(), 6);
  EXPECT_EQ((BigInt(43) % BigInt(7)).ToInt64(), 1);
  // Truncated division semantics (like C++).
  EXPECT_EQ((BigInt(-43) / BigInt(7)).ToInt64(), -6);
  EXPECT_EQ((BigInt(-43) % BigInt(7)).ToInt64(), -1);
  EXPECT_EQ((BigInt(43) / BigInt(-7)).ToInt64(), -6);
  EXPECT_EQ((BigInt(43) % BigInt(-7)).ToInt64(), 1);
}

TEST(BigIntTest, DivisionByLargerYieldsZero) {
  EXPECT_TRUE((BigInt(3) / BigInt(7)).is_zero());
  EXPECT_EQ((BigInt(3) % BigInt(7)).ToInt64(), 3);
}

TEST(BigIntTest, MultiLimbDivisionIdentity) {
  std::mt19937_64 rng(20250916);
  for (int trial = 0; trial < 500; ++trial) {
    // Build random multi-limb values from products and sums of int64s.
    BigInt a = BigInt(static_cast<int64_t>(rng())) *
                   BigInt(static_cast<int64_t>(rng())) +
               BigInt(static_cast<int64_t>(rng()));
    BigInt b = BigInt(static_cast<int64_t>(rng() % 1000000007 + 1)) *
                   BigInt(static_cast<int64_t>(rng() % 97 + 1)) +
               BigInt(1);
    BigInt quotient, remainder;
    BigInt::DivMod(a, b, &quotient, &remainder);
    EXPECT_EQ(quotient * b + remainder, a);
    // |remainder| < |b|.
    BigInt abs_rem = remainder.is_negative() ? -remainder : remainder;
    BigInt abs_b = b.is_negative() ? -b : b;
    EXPECT_LT(abs_rem, abs_b);
  }
}

TEST(BigIntTest, KnuthDivisionHardCases) {
  // Exercise the add-back branch territory: dividends just below multiples.
  BigInt base = BigInt::TwoPow(96);
  for (int64_t delta : {-3, -2, -1, 0, 1, 2, 3}) {
    BigInt divisor = BigInt::TwoPow(64) + BigInt(delta);
    BigInt dividend = base * divisor + BigInt(delta * delta);
    BigInt quotient, remainder;
    BigInt::DivMod(dividend, divisor, &quotient, &remainder);
    EXPECT_EQ(quotient * divisor + remainder, dividend) << delta;
  }
}

TEST(BigIntTest, PowAndTwoPow) {
  EXPECT_EQ(BigInt::Pow(BigInt(2), 10).ToInt64(), 1024);
  EXPECT_EQ(BigInt::Pow(BigInt(0), 0).ToInt64(), 1);
  EXPECT_EQ(BigInt::Pow(BigInt(-3), 3).ToInt64(), -27);
  EXPECT_EQ(BigInt::Pow(BigInt(10), 30).ToString(),
            "1000000000000000000000000000000");
  EXPECT_EQ(BigInt::TwoPow(0).ToInt64(), 1);
  EXPECT_EQ(BigInt::TwoPow(32).ToString(), "4294967296");
  EXPECT_EQ(BigInt::TwoPow(100), BigInt::Pow(BigInt(2), 100));
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(5), BigInt(0)).ToInt64(), 5);
  EXPECT_TRUE(BigInt::Gcd(BigInt(0), BigInt(0)).is_zero());
  EXPECT_EQ(BigInt::Gcd(BigInt::Pow(BigInt(2), 100) * BigInt(9),
                        BigInt::Pow(BigInt(2), 90) * BigInt(15))
                .ToString(),
            (BigInt::Pow(BigInt(2), 90) * BigInt(3)).ToString());
}

TEST(BigIntTest, Comparisons) {
  EXPECT_LT(BigInt(-5), BigInt(3));
  EXPECT_LT(BigInt(-5), BigInt(-3));
  EXPECT_GT(BigInt(5), BigInt(3));
  EXPECT_LE(BigInt(3), BigInt(3));
  EXPECT_LT(*BigInt::FromString("99999999999999999999"),
            *BigInt::FromString("100000000000000000000"));
  EXPECT_GT(*BigInt::FromString("-99999999999999999999"),
            *BigInt::FromString("-100000000000000000000"));
}

TEST(BigIntTest, ToDouble) {
  EXPECT_DOUBLE_EQ(BigInt(123).ToDouble(), 123.0);
  EXPECT_DOUBLE_EQ(BigInt(-123).ToDouble(), -123.0);
  EXPECT_NEAR(BigInt::TwoPow(64).ToDouble(), 1.8446744073709552e19, 1e5);
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(0).BitLength(), 0);
  EXPECT_EQ(BigInt(1).BitLength(), 1);
  EXPECT_EQ(BigInt(255).BitLength(), 8);
  EXPECT_EQ(BigInt(256).BitLength(), 9);
  EXPECT_EQ(BigInt::TwoPow(100).BitLength(), 101);
}

TEST(BigIntTest, RandomizedStringRoundTrip) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    if (rng() % 2 == 0) text.push_back('-');
    int digits = 1 + static_cast<int>(rng() % 60);
    text.push_back(static_cast<char>('1' + rng() % 9));
    for (int i = 1; i < digits; ++i) {
      text.push_back(static_cast<char>('0' + rng() % 10));
    }
    auto parsed = BigInt::FromString(text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->ToString(), text);
  }
}

TEST(BigIntTest, RandomizedArithmeticMatchesInt64) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 1000; ++trial) {
    int64_t a = static_cast<int64_t>(rng() % 2000001) - 1000000;
    int64_t b = static_cast<int64_t>(rng() % 2000001) - 1000000;
    EXPECT_EQ((BigInt(a) + BigInt(b)).ToInt64(), a + b);
    EXPECT_EQ((BigInt(a) - BigInt(b)).ToInt64(), a - b);
    EXPECT_EQ((BigInt(a) * BigInt(b)).ToInt64(), a * b);
    if (b != 0) {
      EXPECT_EQ((BigInt(a) / BigInt(b)).ToInt64(), a / b);
      EXPECT_EQ((BigInt(a) % BigInt(b)).ToInt64(), a % b);
    }
  }
}

}  // namespace
}  // namespace shapcq
