// Differential tests for the interned + columnar data layer.
//
// The seed implementation indexed facts with per-(relation, position,
// value) hash maps; the column store replaces them with interned ValueIds,
// position-major columns, and dense posting lists. These tests rebuild the
// seed-style hash index from the raw facts and check the new layer against
// it — including mutation after interning (AddFact / SetEndogenous once
// queries have already interned values) — plus the galloping posting-list
// intersection and the id join against the naive oracle.

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/column_store.h"
#include "shapcq/data/database.h"
#include "shapcq/data/value_pool.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/sum_count.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

// Seed-style reference index: relation -> position -> value -> ascending
// fact ids, rebuilt by scanning the facts.
using ReferenceIndex =
    std::map<std::string,
             std::vector<std::map<Value, std::vector<FactId>>>>;

ReferenceIndex BuildReferenceIndex(const Database& db) {
  ReferenceIndex index;
  for (FactId id = 0; id < db.num_facts(); ++id) {
    const Fact& fact = db.fact(id);
    auto& by_position = index[fact.relation];
    if (by_position.size() < fact.args.size()) {
      by_position.resize(fact.args.size());
    }
    for (size_t position = 0; position < fact.args.size(); ++position) {
      by_position[position][fact.args[position]].push_back(id);
    }
  }
  return index;
}

void ExpectMatchesReference(const Database& db) {
  ReferenceIndex reference = BuildReferenceIndex(db);
  for (const auto& [relation, by_position] : reference) {
    RelationId relation_id = db.relation_id(relation);
    ASSERT_NE(relation_id, kNoRelationId);
    for (size_t position = 0; position < by_position.size(); ++position) {
      for (const auto& [value, expected] : by_position[position]) {
        // Value-based shim.
        EXPECT_EQ(db.FactsWith(relation, static_cast<int>(position), value),
                  expected)
            << relation << "[" << position << "] = " << value.ToString();
        // Id-based probe through the pool.
        ValueId value_id = db.pool().Find(value);
        ASSERT_NE(value_id, kNoValueId);
        EXPECT_EQ(
            db.FactsWith(relation_id, static_cast<int>(position), value_id),
            expected);
      }
    }
  }
}

Database MixedKindDb() {
  Database db;
  db.AddEndogenous("R", {Value(1), Value("a")});
  db.AddEndogenous("R", {Value(1), Value("b")});
  db.AddEndogenous("R", {Value(2.5), Value("a")});
  db.AddExogenous("R", {Value(-3), Value("c")});
  db.AddEndogenous("S", {Value("a")});
  db.AddEndogenous("S", {Value("c")});
  db.AddExogenous("T", {Value(2.5), Value(2.5)});
  db.AddEndogenous("T", {Value(1), Value(2.5)});
  return db;
}

TEST(ColumnStoreTest, FactsWithMatchesSeedHashIndex) {
  ExpectMatchesReference(MixedKindDb());
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y), T(y, z)");
  for (uint64_t seed : {1u, 7u, 23u}) {
    RandomDatabaseOptions options;
    options.facts_per_relation = 40;
    options.domain_size = 9;
    options.seed = seed;
    ExpectMatchesReference(RandomDatabaseForQuery(q, options));
  }
}

TEST(ColumnStoreTest, ProbesForAbsentValuesAreEmpty) {
  Database db = MixedKindDb();
  EXPECT_TRUE(db.FactsWith("R", 0, Value(999)).empty());
  EXPECT_TRUE(db.FactsWith("R", 1, Value("zzz")).empty());
  EXPECT_TRUE(db.FactsWith("Unknown", 0, Value(1)).empty());
  // Value interned elsewhere but not present in this column.
  EXPECT_TRUE(db.FactsWith("S", 0, Value("b")).empty());
}

TEST(ColumnStoreTest, InternCollapsesEqualNumericsAcrossKinds) {
  Database db;
  FactId int_fact = db.AddEndogenous("R", {Value(2)});
  db.AddEndogenous("R", {Value(3.5)});
  // int 2 and double 2.0 are equal Values, hence one interned id and the
  // same posting list.
  EXPECT_EQ(db.pool().Find(Value(2)), db.pool().Find(Value(2.0)));
  EXPECT_EQ(db.FactsWith("R", 0, Value(2.0)),
            (std::vector<FactId>{int_fact}));
}

TEST(ColumnStoreTest, PostingListsStaySortedAndDense) {
  Database db;
  for (int i = 0; i < 50; ++i) {
    db.AddFact("R", {Value(i % 5), Value(i)}, /*endogenous=*/i % 2 == 0);
  }
  for (int v = 0; v < 5; ++v) {
    const std::vector<FactId>& list = db.FactsWith("R", 0, Value(v));
    EXPECT_EQ(list.size(), 10u);
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
  }
}

TEST(IntersectPostingsTest, MatchesSetIntersection) {
  std::vector<FactId> a = {1, 4, 6, 9, 12, 40, 41, 42, 90};
  std::vector<FactId> b = {0, 4, 9, 10, 40, 42, 50, 60, 70, 80, 90, 100};
  std::vector<FactId> c = {4, 40, 90, 200};
  std::vector<FactId> expected_ab;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expected_ab));
  EXPECT_EQ(IntersectPostings({&a, &b}), expected_ab);
  std::vector<FactId> expected_abc;
  std::set_intersection(expected_ab.begin(), expected_ab.end(), c.begin(),
                        c.end(), std::back_inserter(expected_abc));
  EXPECT_EQ(IntersectPostings({&a, &b, &c}), expected_abc);
  // Skewed sizes exercise the galloping path.
  std::vector<FactId> dense;
  for (FactId i = 0; i < 2000; ++i) dense.push_back(i);
  std::vector<FactId> sparse = {0, 777, 1234, 1999};
  EXPECT_EQ(IntersectPostings({&dense, &sparse}), sparse);
  std::vector<FactId> empty;
  EXPECT_TRUE(IntersectPostings({&dense, &empty}).empty());
}

// Adversarial cases run against BOTH kernels: the dispatching
// IntersectPostings (SIMD when the build enables it) and the scalar
// galloping oracle must agree element-for-element on every shape that
// stresses a different code path — skewed lengths (galloping cutover),
// dense runs (block-of-4 advance), empty/singleton lists, all-match and
// no-match, and interleavings that alternate which stream advances.
TEST(IntersectPostingsTest, SimdAndScalarAgreeOnAdversarialShapes) {
  auto expect_both = [](std::vector<const std::vector<FactId>*> lists,
                        const char* label) {
    std::vector<FactId> simd = IntersectPostings(lists);
    std::vector<FactId> scalar = IntersectPostingsScalar(lists);
    EXPECT_EQ(simd, scalar) << label;
    EXPECT_TRUE(std::is_sorted(simd.begin(), simd.end())) << label;
  };

  std::vector<FactId> empty;
  std::vector<FactId> singleton = {7};
  std::vector<FactId> dense;
  for (FactId i = 0; i < 4096; ++i) dense.push_back(i);
  std::vector<FactId> evens;
  for (FactId i = 0; i < 4096; i += 2) evens.push_back(i);
  std::vector<FactId> odds;
  for (FactId i = 1; i < 4096; i += 2) odds.push_back(i);
  // Heavily skewed: 3 probes into 4096 elements (ratio past the SIMD
  // kernel's galloping cutover).
  std::vector<FactId> sparse = {5, 2047, 4095};
  // Just under / over the skew limit around a ragged tail.
  std::vector<FactId> mid;
  for (FactId i = 0; i < 4096; i += 31) mid.push_back(i);
  // Runs: long stretches present in both, separated by disjoint gaps.
  std::vector<FactId> runs_a;
  std::vector<FactId> runs_b;
  for (FactId block = 0; block < 16; ++block) {
    for (FactId i = 0; i < 64; ++i) {
      const FactId v = block * 256 + i;
      if (block % 2 == 0) runs_a.push_back(v);
      if (block % 3 != 1) runs_b.push_back(v);
    }
  }

  expect_both({&empty, &dense}, "empty vs dense");
  expect_both({&singleton, &dense}, "singleton hit");
  expect_both({&singleton, &odds}, "singleton miss");
  expect_both({&dense, &dense}, "all-match identical");
  expect_both({&evens, &odds}, "no-match interleaved");
  expect_both({&sparse, &dense}, "skewed 3 vs 4096");
  expect_both({&mid, &dense}, "moderate skew, ragged tail");
  expect_both({&runs_a, &runs_b}, "dense runs with gaps");
  expect_both({&evens, &dense, &mid}, "three-way");
  expect_both({&sparse, &evens, &runs_b, &dense}, "four-way mixed skew");

  // Randomized sweep over lengths straddling the 4-lane block width and
  // the galloping cutover, checked against std::set_intersection.
  std::mt19937 rng(4242);
  for (int trial = 0; trial < 300; ++trial) {
    auto random_list = [&rng](size_t max_len, int stride) {
      std::vector<FactId> list;
      FactId next = static_cast<FactId>(rng() % 8);
      const size_t len = rng() % (max_len + 1);
      for (size_t i = 0; i < len; ++i) {
        list.push_back(next);
        next += 1 + static_cast<FactId>(rng() % stride);
      }
      return list;
    };
    std::vector<FactId> a = random_list(rng() % 2 ? 9 : 600, 3);
    std::vector<FactId> b = random_list(600, 7);
    std::vector<FactId> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    EXPECT_EQ(IntersectPostings({&a, &b}), expected) << "trial " << trial;
    EXPECT_EQ(IntersectPostingsScalar({&a, &b}), expected)
        << "trial " << trial;
  }
}

// Shapes aimed at the 8-lane AVX2 widening: lengths straddling multiples
// of 8 (block boundary vs scalar tail), matches in every lane position of
// an 8-block, and a match sitting exactly on the last element before the
// tail. The scalar galloping path is the oracle throughout; on machines
// or builds without AVX2 the same cases exercise the 4-lane/NEON or
// scalar kernels, so the test is meaningful everywhere.
TEST(IntersectPostingsTest, WideBlockBoundariesMatchScalarOracle) {
  SCOPED_TRACE(std::string("kernel: ") + SimdIntersectionKernelName());
  auto expect_both = [](const std::vector<FactId>& a,
                        const std::vector<FactId>& b, const char* label) {
    std::vector<FactId> expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    EXPECT_EQ(IntersectPostings({&a, &b}), expected) << label;
    EXPECT_EQ(IntersectPostingsScalar({&a, &b}), expected) << label;
  };

  // One match per lane position of the first 8-block.
  for (FactId lane = 0; lane < 8; ++lane) {
    std::vector<FactId> b;
    for (FactId i = 0; i < 24; ++i) b.push_back(i * 2);
    std::vector<FactId> a = {static_cast<FactId>(lane * 2)};
    expect_both(a, b, "single match per lane");
  }
  // Lengths 1..26 cover |b| mod 8 in every residue, with the driving list
  // dense enough that the block path (not galloping) runs.
  for (size_t len = 1; len <= 26; ++len) {
    std::vector<FactId> b;
    for (size_t i = 0; i < len; ++i) b.push_back(static_cast<FactId>(3 * i));
    std::vector<FactId> a;
    for (size_t i = 0; i < len; ++i) a.push_back(static_cast<FactId>(2 * i));
    expect_both(a, b, "length sweep across block residues");
  }
  // Match exactly at the last in-block element and first tail element.
  std::vector<FactId> b17;
  for (FactId i = 0; i < 17; ++i) b17.push_back(i * 5);
  expect_both({b17[15]}, b17, "match at last block element");
  expect_both({b17[16]}, b17, "match in scalar tail");
}

TEST(ColumnStoreTest, SetEndogenousAfterInterningKeepsIndexes) {
  Database db = MixedKindDb();
  // Force interned lookups first.
  ExpectMatchesReference(db);
  std::vector<FactId> before = db.FactsWith("R", 0, Value(1));
  int endo_before = db.num_endogenous();
  db.SetEndogenous(0, false);
  EXPECT_EQ(db.num_endogenous(), endo_before - 1);
  // Posting lists are orthogonal to the endogenous flag.
  EXPECT_EQ(db.FactsWith("R", 0, Value(1)), before);
  std::vector<FactId> endo = db.EndogenousFacts();
  EXPECT_TRUE(std::find(endo.begin(), endo.end(), 0) == endo.end());
  db.SetEndogenous(0, true);
  EXPECT_EQ(db.num_endogenous(), endo_before);
  ExpectMatchesReference(db);
}

TEST(ColumnStoreTest, MutationAfterInternExtendsPostings) {
  Database db = MixedKindDb();
  // Interning happened; now add facts re-using old values and introducing
  // new ones, then re-check everything against the reference index.
  uint32_t pool_before = db.pool().size();
  EXPECT_EQ(db.FactsWith("R", 0, Value(1)).size(), 2u);
  FactId added = db.AddEndogenous("R", {Value(1), Value("zz")});
  EXPECT_EQ(db.pool().size(), pool_before + 1);  // only "zz" is new
  const std::vector<FactId>& probed = db.FactsWith("R", 0, Value(1));
  ASSERT_EQ(probed.size(), 3u);
  EXPECT_EQ(probed.back(), added);
  EXPECT_TRUE(std::is_sorted(probed.begin(), probed.end()));
  // A brand-new relation after queries ran.
  db.AddEndogenous("U", {Value("zz")});
  EXPECT_EQ(db.FactsWith("U", 0, Value("zz")).size(), 1u);
  ExpectMatchesReference(db);
}

// Canonical form of a homomorphism set for order-insensitive comparison.
std::set<std::pair<Tuple, std::vector<FactId>>> Canonical(
    const std::vector<Homomorphism>& homs) {
  std::set<std::pair<Tuple, std::vector<FactId>>> out;
  for (const Homomorphism& hom : homs) {
    out.emplace(hom.answer, hom.used_facts);
  }
  return out;
}

TEST(IdJoinTest, MatchesNaiveOracleOnMixedKindsAndConstants) {
  Database db = MixedKindDb();
  for (const char* text : {
           "Q(x) <- R(x, y), S(y)",
           "Q(x, z) <- R(x, y), S(y), T(x, z)",
           "Q(y) <- R(1, y)",            // constant probe
           "Q(x) <- T(x, x)",            // repeated variable in one atom
           "Q() <- R(x, 'a'), S('a')",   // string constants
           "Q(x) <- R(x, y), S('never')",  // constant absent from the pool
       }) {
    ConjunctiveQuery q = MustParseQuery(text);
    EXPECT_EQ(Canonical(EnumerateHomomorphisms(q, db)),
              Canonical(EnumerateHomomorphismsNaive(q, db)))
        << text;
  }
}

TEST(IdJoinTest, MatchesNaiveOracleOnRandomDatabases) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y), T(y)");
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    RandomDatabaseOptions options;
    options.facts_per_relation = 30;
    options.domain_size = 6;
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    EXPECT_EQ(Canonical(EnumerateHomomorphisms(q, db)),
              Canonical(EnumerateHomomorphismsNaive(q, db)))
        << "seed " << seed;
  }
}

TEST(IdJoinDeathTest, AbortsOnAtomArityConflictLikeTheNaiveJoin) {
  Database db;
  db.AddEndogenous("R", {Value(1), Value(2)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x)");
  EXPECT_DEATH(EnumerateHomomorphisms(q, db), "arity");
  EXPECT_DEATH(SplitRelevant(q, AllFacts(db)), "arity");
  EXPECT_DEATH(SplitRelevantIndexed(q, db), "arity");
}

TEST(IdJoinTest, SeesFactsAddedAfterInterning) {
  Database db = MixedKindDb();
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  size_t before = EnumerateHomomorphisms(q, db).size();
  db.AddEndogenous("R", {Value(7), Value("c")});  // joins with S('c')
  std::vector<Homomorphism> after = EnumerateHomomorphisms(q, db);
  EXPECT_EQ(after.size(), before + 1);
  EXPECT_EQ(Canonical(after), Canonical(EnumerateHomomorphismsNaive(q, db)));
}

TEST(SplitRelevantIndexedTest, MatchesScanningSplit) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y), T(y)");
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    RandomDatabaseOptions options;
    options.facts_per_relation = 25;
    options.domain_size = 5;
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    for (const Tuple& answer : Evaluate(q, db)) {
      ConjunctiveQuery q_t = q.Bind(q.head()[0], answer[0]);
      RelevanceSplit scan = SplitRelevant(q_t, AllFacts(db));
      RelevanceSplit indexed = SplitRelevantIndexed(q_t, db);
      EXPECT_EQ(indexed.relevant.facts, scan.relevant.facts);
      EXPECT_EQ(indexed.irrelevant_endogenous, scan.irrelevant_endogenous);
      EXPECT_EQ(indexed.irrelevant_exogenous, scan.irrelevant_exogenous);
    }
  }
}

TEST(SumCountScoreAllTest, UnchangedByEndogenousFlagCycle) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 20;
  options.domain_size = 5;
  options.seed = 3;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
  auto before = SumCountScoreAll(a, db);
  ASSERT_TRUE(before.ok());
  // Mutate flags after interning, then restore: scores must be identical.
  FactId f = db.EndogenousFacts().front();
  db.SetEndogenous(f, false);
  db.SetEndogenous(f, true);
  auto after = SumCountScoreAll(a, db);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  for (size_t i = 0; i < before->size(); ++i) {
    EXPECT_EQ((*before)[i].first, (*after)[i].first);
    EXPECT_EQ((*before)[i].second, (*after)[i].second);
  }
}

}  // namespace
}  // namespace shapcq
