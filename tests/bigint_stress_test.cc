// Differential stress tests for BigInt against native __int128 arithmetic,
// plus algebraic identities at sizes far beyond native integers. The DP
// engines lean entirely on this substrate, so it gets fuzz-level scrutiny.

#include <random>
#include <string>

#include <gtest/gtest.h>

#include "shapcq/util/bigint.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/util/rational.h"

namespace shapcq {
namespace {

BigInt FromInt128(__int128 v) {
  bool negative = v < 0;
  unsigned __int128 magnitude =
      negative ? -static_cast<unsigned __int128>(v)
               : static_cast<unsigned __int128>(v);
  BigInt result;
  for (int shift = 96; shift >= 0; shift -= 32) {
    result = result * BigInt::TwoPow(32) +
             BigInt(static_cast<int64_t>((magnitude >> shift) & 0xffffffffu));
  }
  return negative ? -result : result;
}

TEST(BigIntStressTest, AdditionSubtractionVsInt128) {
  std::mt19937_64 rng(101);
  for (int trial = 0; trial < 3000; ++trial) {
    __int128 a = static_cast<__int128>(static_cast<int64_t>(rng())) *
                 static_cast<int64_t>(rng() % 1000 + 1);
    __int128 b = static_cast<__int128>(static_cast<int64_t>(rng())) *
                 static_cast<int64_t>(rng() % 1000 + 1);
    EXPECT_EQ(FromInt128(a) + FromInt128(b), FromInt128(a + b));
    EXPECT_EQ(FromInt128(a) - FromInt128(b), FromInt128(a - b));
  }
}

TEST(BigIntStressTest, MultiplicationVsInt128) {
  std::mt19937_64 rng(202);
  for (int trial = 0; trial < 3000; ++trial) {
    int64_t a = static_cast<int64_t>(rng());
    int64_t b = static_cast<int64_t>(rng());
    __int128 product = static_cast<__int128>(a) * b;
    EXPECT_EQ(BigInt(a) * BigInt(b), FromInt128(product));
  }
}

TEST(BigIntStressTest, DivisionVsInt128) {
  std::mt19937_64 rng(303);
  for (int trial = 0; trial < 3000; ++trial) {
    __int128 a = static_cast<__int128>(static_cast<int64_t>(rng())) *
                 static_cast<int64_t>(rng() % 100000 + 1);
    int64_t b = static_cast<int64_t>(rng() % 2000000) - 1000000;
    if (b == 0) continue;
    EXPECT_EQ(FromInt128(a) / BigInt(b), FromInt128(a / b));
    EXPECT_EQ(FromInt128(a) % BigInt(b), FromInt128(a % b));
  }
}

TEST(BigIntStressTest, ComparisonVsInt128) {
  std::mt19937_64 rng(404);
  for (int trial = 0; trial < 3000; ++trial) {
    __int128 a = static_cast<__int128>(static_cast<int64_t>(rng())) *
                 static_cast<int64_t>(rng() % 97 - 48);
    __int128 b = static_cast<__int128>(static_cast<int64_t>(rng())) *
                 static_cast<int64_t>(rng() % 97 - 48);
    EXPECT_EQ(BigInt::Compare(FromInt128(a), FromInt128(b)),
              a < b ? -1 : (a > b ? 1 : 0));
  }
}

TEST(BigIntStressTest, HugeDivisionIdentity) {
  // Random 300-bit / 150-bit divisions: q*b + r == a, |r| < |b|.
  std::mt19937_64 rng(505);
  auto random_big = [&rng](int limbs) {
    BigInt out;
    for (int i = 0; i < limbs; ++i) {
      out = out * BigInt::TwoPow(32) +
            BigInt(static_cast<int64_t>(rng() & 0xffffffffu));
    }
    return out;
  };
  for (int trial = 0; trial < 300; ++trial) {
    BigInt a = random_big(10);
    BigInt b = random_big(5) + BigInt(1);
    if (rng() & 1) a.Negate();
    if (rng() & 1) b.Negate();
    BigInt quotient, remainder;
    BigInt::DivMod(a, b, &quotient, &remainder);
    EXPECT_EQ(quotient * b + remainder, a);
    BigInt abs_r = remainder.is_negative() ? -remainder : remainder;
    BigInt abs_b = b.is_negative() ? -b : b;
    EXPECT_LT(abs_r, abs_b);
  }
}

TEST(BigIntStressTest, PowAndStringRoundTripHuge) {
  BigInt big = BigInt::Pow(BigInt(7), 200);
  auto parsed = BigInt::FromString(big.ToString());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, big);
  EXPECT_EQ(BigInt::Pow(BigInt(7), 200),
            BigInt::Pow(BigInt(7), 100) * BigInt::Pow(BigInt(7), 100));
  EXPECT_EQ(big % BigInt(7), BigInt(0));
  EXPECT_EQ(big % BigInt(6), BigInt(1));  // 7 ≡ 1 (mod 6)
}

TEST(BigIntStressTest, FactorialRatios) {
  // n! / (n-1)! == n for large n: exercises multi-limb division.
  Combinatorics comb;
  for (int64_t n : {50, 100, 200, 400}) {
    EXPECT_EQ(comb.Factorial(n) / comb.Factorial(n - 1), BigInt(n));
    EXPECT_EQ(comb.Factorial(n) % comb.Factorial(n - 1), BigInt(0));
  }
}

TEST(BigIntStressTest, RationalTelescopingAtScale) {
  // Σ 1/(k(k+1)) = 1 − 1/(n+1): deep gcd normalization chains.
  Rational sum;
  const int64_t n = 500;
  for (int64_t k = 1; k <= n; ++k) {
    sum += Rational(BigInt(1), BigInt(k) * BigInt(k + 1));
  }
  EXPECT_EQ(sum, Rational(1) - Rational(BigInt(1), BigInt(n + 1)));
}

TEST(BigIntStressTest, ShapleyCoefficientsSumAtScale) {
  // Σ_k C(n−1,k) q_k = 1 for n = 150 (the identity the score extraction
  // relies on, at a size the engines actually reach).
  Combinatorics comb;
  const int64_t n = 150;
  Rational total;
  for (int64_t k = 0; k < n; ++k) {
    total += Rational(comb.Binomial(n - 1, k)) *
             comb.ShapleyCoefficient(n, k);
  }
  EXPECT_EQ(total, Rational(1));
}

}  // namespace
}  // namespace shapcq
