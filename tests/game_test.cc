// Tests for the cooperative-game abstraction, including the classic games
// used throughout the game-theory literature and the Set-Cover game of
// Lemma D.5 (tied back to the quantile reduction database).

#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/game.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }
Rational R(int64_t n, int64_t d) { return Rational(BigInt(n), BigInt(d)); }

TEST(GameTest, GloveGame) {
  // Players 0,1 hold left gloves, player 2 a right glove; a pair is worth 1.
  CooperativeGame game(3, [](uint64_t coalition) {
    bool left = (coalition & 0b011) != 0;
    bool right = (coalition & 0b100) != 0;
    return left && right ? R(1) : R(0);
  });
  // Classic result: Shapley = (1/6, 1/6, 4/6).
  EXPECT_EQ(*game.Score(0), R(1, 6));
  EXPECT_EQ(*game.Score(1), R(1, 6));
  EXPECT_EQ(*game.Score(2), R(2, 3));
  EXPECT_TRUE(*game.SatisfiesEfficiency());
  EXPECT_TRUE(*game.AreSymmetric(0, 1));
  EXPECT_FALSE(*game.AreSymmetric(0, 2));
}

TEST(GameTest, UnanimityGame) {
  // ν(C) = 1 iff C = P: all players symmetric, Shapley = 1/n each.
  for (int n : {1, 2, 4, 6}) {
    CooperativeGame game(n, [n](uint64_t coalition) {
      return coalition == (uint64_t{1} << n) - 1 ? R(1) : R(0);
    });
    for (int p = 0; p < n; ++p) {
      EXPECT_EQ(*game.Score(p), R(1, n)) << "n=" << n << " p=" << p;
    }
  }
}

TEST(GameTest, NonZeroEmptyUtilityIsShifted) {
  // utility(∅) = 5 must not leak into the scores.
  CooperativeGame game(2, [](uint64_t coalition) {
    return R(5) + R(static_cast<int64_t>(__builtin_popcountll(coalition)));
  });
  EXPECT_TRUE(game.Utility(0).is_zero());
  EXPECT_EQ(*game.Score(0), R(1));
  EXPECT_EQ(*game.Score(1), R(1));
}

TEST(GameTest, NullPlayerDetection) {
  CooperativeGame game(3, [](uint64_t coalition) {
    return (coalition & 0b001) != 0 ? R(7) : R(0);  // only player 0 matters
  });
  EXPECT_FALSE(*game.IsNullPlayer(0));
  EXPECT_TRUE(*game.IsNullPlayer(1));
  EXPECT_TRUE(*game.IsNullPlayer(2));
  EXPECT_TRUE(game.Score(1)->is_zero());
}

TEST(GameTest, BanzhafVsShapleyOnWeightedVoting) {
  // Weighted majority [3; 2, 1, 1]: ν = 1 iff weight ≥ 3.
  CooperativeGame game(3, [](uint64_t coalition) {
    int weight = 0;
    if (coalition & 1) weight += 2;
    if (coalition & 2) weight += 1;
    if (coalition & 4) weight += 1;
    return weight >= 3 ? R(1) : R(0);
  });
  // Shapley: big player 2/3, small players 1/6 each.
  EXPECT_EQ(*game.Score(0), R(2, 3));
  EXPECT_EQ(*game.Score(1), R(1, 6));
  // Banzhaf: big player swings in {10,01,11} -> 3/4; small in {10} -> 1/4.
  EXPECT_EQ(*game.Score(0, ScoreKind::kBanzhaf), R(3, 4));
  EXPECT_EQ(*game.Score(1, ScoreKind::kBanzhaf), R(1, 4));
}

TEST(GameTest, SetCoverGameMatchesQuantileReductionDatabase) {
  // Lemma D.5 ≅ Lemma D.4: the Shapley value of set i in the Set-Cover
  // game equals the Shapley value of S(i) in the quantile database.
  std::vector<std::vector<int>> sets = {{1, 2}, {2, 3}, {3}, {1}};
  CooperativeGame game = SetCoverGame(3, sets);
  Database db = SetCoverQuantileDatabase(
      SetCoverInstance{3, sets}, /*a=*/1, /*b=*/2);
  AggregateQuery a{MustParseQuery("Q(x) <- R(x, y), S(y)"),
                   MakeTauGreaterThan(0, R(0)), AggregateFunction::Median()};
  for (int i = 0; i < static_cast<int>(sets.size()); ++i) {
    FactId s_fact = *db.FindFact("S", {Value(i + 1)});
    EXPECT_EQ(*game.Score(i), *BruteForceScore(a, db, s_fact))
        << "set " << i + 1;
  }
}

TEST(GameTest, AllScoresAndSizeLimit) {
  CooperativeGame small(2, [](uint64_t c) {
    return R(static_cast<int64_t>(__builtin_popcountll(c)));
  });
  auto scores = small.AllScores();
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ((*scores)[0], R(1));
  EXPECT_EQ((*scores)[1], R(1));
  CooperativeGame big(27, [](uint64_t) { return R(0); });
  EXPECT_FALSE(big.Score(0).ok());
}

}  // namespace
}  // namespace shapcq
