// End-to-end daemon smoke: the acceptance loop from ISSUE 7 as a ctest.
//
// Starts the attribution server with journaling on, issues solve
// requests over the wire (three queries, mixed tenants, one Monte Carlo
// request), scrapes /metrics over HTTP, stops the server, replays the
// journal with ReplayJournal (warm + cold passes, bitwise-checked
// internally), and finally asserts the wire responses are bitwise
// identical to the replayed scores — daemon, journal, and direct
// SolverSession::ComputeAll all agree on every bit.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/data/db_io.h"
#include "shapcq/serve/client.h"
#include "shapcq/serve/journal.h"
#include "shapcq/serve/protocol.h"
#include "shapcq/serve/replay.h"
#include "shapcq/serve/server.h"

namespace shapcq {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

Database MustParseDb(const char* text) {
  auto db = ParseDatabase(text);
  SHAPCQ_CHECK(db.ok());
  return std::move(db).value();
}

TEST(DaemonSmokeTest, ServeScrapeReplayBitwiseParity) {
  const std::string journal_path = ::testing::TempDir() +
                                   "/daemon_smoke_journal_" +
                                   std::to_string(::getpid());

  const char* acme_text = "+R(1, 2)\n+R(2, 3)\n+S(2)\n+S(3)\n-S(4)\n";
  const char* globex_text = "+R(5, 6)\n+R(6, 6)\n+S(6)\n+T(5)\n";

  ServerOptions options;
  options.journal_path = journal_path;
  options.worker_threads = 2;
  AttributionServer server(options);
  server.RegisterTenant("acme", MustParseDb(acme_text));
  server.RegisterTenant("globex", MustParseDb(globex_text));
  Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  auto client = LineClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::vector<SolveRequest> requests;
  {
    SolveRequest request;
    request.id = 1;
    request.tenant = "acme";
    request.query = "Q(x) <- R(x, y), S(y)";
    requests.push_back(request);
    request.id = 2;
    request.tenant = "globex";
    request.query = "Q() <- R(x, y), S(y), T(x)";
    request.agg = "count";
    requests.push_back(request);
    request = SolveRequest{};
    request.id = 3;
    request.tenant = "acme";
    request.query = "Q(x) <- R(x, y), S(y)";
    request.method = "mc";
    request.samples = 250;
    request.seed = 11;
    requests.push_back(request);
  }

  std::map<uint64_t, SolveResponse> responses;
  for (const SolveRequest& request : requests) {
    auto reply = client->RoundTrip(SerializeSolveRequest(request));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    auto response = ParseResponseLine(*reply);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, "ok") << response->error;
    responses[request.id] = std::move(response).value();
  }

  // The daemon observed everything it served.
  auto metrics = HttpGet(server.metrics_port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("shapcq_requests_total{status=\"ok\"} 3"),
            std::string::npos)
      << *metrics;
  EXPECT_NE(metrics->find("shapcq_journal_records_total 3"),
            std::string::npos);
  EXPECT_NE(metrics->find("shapcq_engine_facts_total"), std::string::npos);
  EXPECT_NE(metrics->find("shapcq_plan_cache_hits_total"),
            std::string::npos);
  EXPECT_NE(metrics->find("shapcq_request_latency_p50_seconds"),
            std::string::npos);
  EXPECT_NE(metrics->find("shapcq_request_latency_p99_seconds"),
            std::string::npos);

  server.Stop();

  // Replay the journal against the same tenant data.
  auto records = ReadJournal(journal_path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), requests.size());

  std::map<std::string, std::shared_ptr<const Database>> tenants;
  tenants["acme"] = std::make_shared<const Database>(MustParseDb(acme_text));
  tenants["globex"] =
      std::make_shared<const Database>(MustParseDb(globex_text));
  auto replay = ReplayJournal(*records, tenants);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, requests.size());
  EXPECT_EQ(replay->fingerprint_matches, requests.size());

  // Wire responses vs. replayed scores: bitwise, field by field.
  for (size_t i = 0; i < records->size(); ++i) {
    const JournalRecord& record = (*records)[i];
    auto it = responses.find(record.request.id);
    ASSERT_NE(it, responses.end());
    const std::vector<FactScore>& wire = it->second.results;
    const auto& replayed = replay->results[i];
    ASSERT_EQ(wire.size(), replayed.size()) << "record " << i;
    EXPECT_EQ(it->second.fingerprint, record.fingerprint);
    for (size_t f = 0; f < replayed.size(); ++f) {
      const auto& [fact, result] = replayed[f];
      EXPECT_EQ(wire[f].fact, fact);
      EXPECT_EQ(wire[f].exact, result.is_exact);
      EXPECT_TRUE(SameBits(wire[f].value, result.approximation))
          << "record " << i << " fact " << fact;
      if (result.is_exact) {
        EXPECT_EQ(wire[f].exact_value, result.exact.ToString());
      } else {
        EXPECT_TRUE(SameBits(wire[f].std_error, result.std_error));
        EXPECT_EQ(wire[f].samples, result.samples);
      }
      EXPECT_EQ(wire[f].algorithm, result.algorithm);
    }
  }
  std::remove(journal_path.c_str());
}

}  // namespace
}  // namespace shapcq
