// End-to-end daemon smoke: the acceptance loop from ISSUE 7 as a ctest.
//
// Starts the attribution server with journaling on, issues solve
// requests over the wire (three queries, mixed tenants, one Monte Carlo
// request), scrapes /metrics over HTTP, stops the server, replays the
// journal with ReplayJournal (warm + cold passes, bitwise-checked
// internally), and finally asserts the wire responses are bitwise
// identical to the replayed scores — daemon, journal, and direct
// SolverSession::ComputeAll all agree on every bit.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/data/db_io.h"
#include "shapcq/lineage/circuit_cache.h"
#include "shapcq/obs/trace.h"
#include "shapcq/serve/client.h"
#include "shapcq/serve/journal.h"
#include "shapcq/serve/json.h"
#include "shapcq/serve/protocol.h"
#include "shapcq/serve/replay.h"
#include "shapcq/serve/server.h"
#include "shapcq/shapley/plan.h"

namespace shapcq {
namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

Database MustParseDb(const char* text) {
  auto db = ParseDatabase(text);
  SHAPCQ_CHECK(db.ok());
  return std::move(db).value();
}

TEST(DaemonSmokeTest, ServeScrapeReplayBitwiseParity) {
  const std::string journal_path = ::testing::TempDir() +
                                   "/daemon_smoke_journal_" +
                                   std::to_string(::getpid());

  const char* acme_text = "+R(1, 2)\n+R(2, 3)\n+S(2)\n+S(3)\n-S(4)\n";
  const char* globex_text = "+R(5, 6)\n+R(6, 6)\n+S(6)\n+T(5)\n";

  ServerOptions options;
  options.journal_path = journal_path;
  options.worker_threads = 2;
  AttributionServer server(options);
  server.RegisterTenant("acme", MustParseDb(acme_text));
  server.RegisterTenant("globex", MustParseDb(globex_text));
  Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  auto client = LineClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  std::vector<SolveRequest> requests;
  {
    SolveRequest request;
    request.id = 1;
    request.tenant = "acme";
    request.query = "Q(x) <- R(x, y), S(y)";
    requests.push_back(request);
    request.id = 2;
    request.tenant = "globex";
    request.query = "Q() <- R(x, y), S(y), T(x)";
    request.agg = "count";
    requests.push_back(request);
    request = SolveRequest{};
    request.id = 3;
    request.tenant = "acme";
    request.query = "Q(x) <- R(x, y), S(y)";
    request.method = "mc";
    request.samples = 250;
    request.seed = 11;
    requests.push_back(request);
  }

  std::map<uint64_t, SolveResponse> responses;
  for (const SolveRequest& request : requests) {
    auto reply = client->RoundTrip(SerializeSolveRequest(request));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    auto response = ParseResponseLine(*reply);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->status, "ok") << response->error;
    responses[request.id] = std::move(response).value();
  }

  // The daemon observed everything it served.
  auto metrics = HttpGet(server.metrics_port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("shapcq_requests_total{status=\"ok\"} 3"),
            std::string::npos)
      << *metrics;
  EXPECT_NE(metrics->find("shapcq_journal_records_total 3"),
            std::string::npos);
  EXPECT_NE(metrics->find("shapcq_engine_facts_total"), std::string::npos);
  EXPECT_NE(metrics->find("shapcq_plan_cache_hits_total"),
            std::string::npos);
  EXPECT_NE(metrics->find("shapcq_request_latency_p50_seconds"),
            std::string::npos);
  EXPECT_NE(metrics->find("shapcq_request_latency_p99_seconds"),
            std::string::npos);

  server.Stop();

  // Replay the journal against the same tenant data.
  auto records = ReadJournal(journal_path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), requests.size());

  std::map<std::string, std::shared_ptr<const Database>> tenants;
  tenants["acme"] = std::make_shared<const Database>(MustParseDb(acme_text));
  tenants["globex"] =
      std::make_shared<const Database>(MustParseDb(globex_text));
  auto replay = ReplayJournal(*records, tenants);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, requests.size());
  EXPECT_EQ(replay->fingerprint_matches, requests.size());

  // Wire responses vs. replayed scores: bitwise, field by field.
  for (size_t i = 0; i < records->size(); ++i) {
    const JournalRecord& record = (*records)[i];
    auto it = responses.find(record.request.id);
    ASSERT_NE(it, responses.end());
    const std::vector<FactScore>& wire = it->second.results;
    const auto& replayed = replay->results[i];
    ASSERT_EQ(wire.size(), replayed.size()) << "record " << i;
    EXPECT_EQ(it->second.fingerprint, record.fingerprint);
    for (size_t f = 0; f < replayed.size(); ++f) {
      const auto& [fact, result] = replayed[f];
      EXPECT_EQ(wire[f].fact, fact);
      EXPECT_EQ(wire[f].exact, result.is_exact);
      EXPECT_TRUE(SameBits(wire[f].value, result.approximation))
          << "record " << i << " fact " << fact;
      if (result.is_exact) {
        EXPECT_EQ(wire[f].exact_value, result.exact.ToString());
      } else {
        EXPECT_TRUE(SameBits(wire[f].std_error, result.std_error));
        EXPECT_EQ(wire[f].samples, result.samples);
      }
      EXPECT_EQ(wire[f].algorithm, result.algorithm);
    }
  }
  std::remove(journal_path.c_str());
}

// Concurrent mutation parity: several client threads hammer one tenant
// with insert_fact / delete_fact (each interleaved with solves whose
// responses are deliberately not compared — a concurrent solve races the
// mutations it overlaps), the journal rotates across size-bounded
// segments while they run, and afterwards the FINAL solve — issued once
// every mutation has been acknowledged — must match a ReadJournalChain +
// ReplayJournal reconstruction of the journal bit for bit. Runs under
// the TSan CI leg: the tenant shared_mutex, journal lock, and per-tenant
// metric counters all get real contention here.
TEST(DaemonSmokeTest, ConcurrentMutationsReplayBitwiseParity) {
  const std::string journal_path = ::testing::TempDir() +
                                   "/daemon_mutation_journal_" +
                                   std::to_string(::getpid());
  const char* seed_text = "+R(1, 2)\n+R(2, 3)\n+S(2)\n+S(3)\n";
  const std::string query = "Q(x) <- R(x, y), S(y)";

  ServerOptions options;
  options.journal_path = journal_path;
  options.journal_max_segment_bytes = 512;  // force rotation mid-run
  options.worker_threads = 2;
  AttributionServer server(options);
  server.RegisterTenant("acme", MustParseDb(seed_text));
  Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.ToString();

  constexpr int kThreads = 3;
  constexpr int kFactsPerThread = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = LineClient::Connect(server.port());
      if (!client.ok()) {
        failures.fetch_add(100);
        return;
      }
      uint64_t id = 1000 + static_cast<uint64_t>(t) * 100;
      for (int k = 0; k < kFactsPerThread; ++k) {
        // Unique per-thread facts: inserts never collide across threads.
        std::string fact_body =
            "R(" + std::to_string(100 + t * 10 + k) + ", 2)";
        auto reply = client->RoundTrip(
            SerializeInsertFact(++id, "acme", "+" + fact_body, query));
        auto response = reply.ok() ? ParseResponseLine(*reply)
                                   : StatusOr<SolveResponse>(reply.status());
        if (!response.ok() || response->status != "ok" ||
            !response->mutation || response->fact_id < 0 ||
            response->dirty_answers < 0) {
          failures.fetch_add(1);
        }
        // A solve raced against the other threads' mutations; only its
        // transport success is checked.
        SolveRequest solve;
        solve.id = ++id;
        solve.tenant = "acme";
        solve.query = query;
        if (!client->RoundTrip(SerializeSolveRequest(solve)).ok()) {
          failures.fetch_add(1);
        }
        if (k % 2 == 1) {
          auto del = client->RoundTrip(
              SerializeDeleteFact(++id, "acme", fact_body));
          auto del_response =
              del.ok() ? ParseResponseLine(*del)
                       : StatusOr<SolveResponse>(del.status());
          if (!del_response.ok() || del_response->status != "ok" ||
              !del_response->mutation) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // The final-state solve: every mutation above has been acknowledged, so
  // this is the last journal record and replays against the fully mutated
  // database.
  auto client = LineClient::Connect(server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  SolveRequest final_solve;
  final_solve.id = 7777;
  final_solve.tenant = "acme";
  final_solve.query = query;
  auto final_reply = client->RoundTrip(SerializeSolveRequest(final_solve));
  ASSERT_TRUE(final_reply.ok()) << final_reply.status().ToString();
  auto final_response = ParseResponseLine(*final_reply);
  ASSERT_TRUE(final_response.ok()) << final_response.status().ToString();
  ASSERT_EQ(final_response->status, "ok") << final_response->error;

  auto metrics = HttpGet(server.metrics_port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("shapcq_mutations_total{op=\"insert\"} 12"),
            std::string::npos)
      << *metrics;
  EXPECT_NE(metrics->find("shapcq_mutations_total{op=\"delete\"} 6"),
            std::string::npos);
  EXPECT_NE(metrics->find("shapcq_dirty_answers_last"), std::string::npos);
  EXPECT_NE(metrics->find("shapcq_tenant_requests_total{tenant=\"acme\""),
            std::string::npos);
  EXPECT_NE(metrics->find("shapcq_tenant_epoch{tenant=\"acme\"}"),
            std::string::npos);

  server.Stop();

  // The journal rotated: the base segment plus at least one numbered one.
  {
    FILE* segment = std::fopen((journal_path + ".1").c_str(), "rb");
    EXPECT_NE(segment, nullptr) << "journal never rotated";
    if (segment != nullptr) std::fclose(segment);
  }

  auto records = ReadJournalChain(journal_path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_FALSE(records->empty());
  EXPECT_EQ(records->back().op, JournalOp::kSolve);
  EXPECT_EQ(records->back().request.id, final_solve.id);

  std::map<std::string, std::shared_ptr<const Database>> tenants;
  tenants["acme"] = std::make_shared<const Database>(MustParseDb(seed_text));
  auto replay = ReplayJournal(*records, tenants);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->mutations,
            static_cast<uint64_t>(kThreads * (kFactsPerThread +
                                              kFactsPerThread / 2)));

  // Final wire response == replayed final record, bit for bit.
  const std::vector<FactScore>& wire = final_response->results;
  const auto& replayed = replay->results.back();
  ASSERT_EQ(wire.size(), replayed.size());
  for (size_t f = 0; f < replayed.size(); ++f) {
    const auto& [fact, result] = replayed[f];
    EXPECT_EQ(wire[f].fact, fact);
    EXPECT_EQ(wire[f].exact, result.is_exact);
    EXPECT_TRUE(SameBits(wire[f].value, result.approximation))
        << "fact " << fact;
    if (result.is_exact) {
      EXPECT_EQ(wire[f].exact_value, result.exact.ToString());
    }
    EXPECT_EQ(wire[f].algorithm, result.algorithm);
  }

  for (int segment = 0;; ++segment) {
    std::string path =
        segment == 0 ? journal_path
                     : journal_path + "." + std::to_string(segment);
    if (std::remove(path.c_str()) != 0) break;
  }
}

// Warm-restart parity: server A (cold, --artifact-dir set) serves a
// non-hierarchical workload across two tenants whose databases are
// renamed copies of each other, snapshots its compiled state on Stop;
// server B boots against the populated artifact directory, and the same
// requests — replayed from A's journal tail — must come back bitwise
// identical to A's cold answers, with every circuit served from the
// warm cache (zero misses) and zero artifact load errors.
TEST(DaemonSmokeTest, WarmRestartServesBitwiseIdenticalAnswers) {
  const std::string suffix = std::to_string(::getpid());
  const std::string artifact_dir =
      ::testing::TempDir() + "/daemon_artifacts_" + suffix;
  const std::string journal_a =
      ::testing::TempDir() + "/daemon_warm_journal_a_" + suffix;
  const std::string journal_b =
      ::testing::TempDir() + "/daemon_warm_journal_b_" + suffix;

  // Q() <- R(x, y), S(y), T(x) is non-hierarchical: the linearity DP
  // refuses it, so every exact answer goes through the lineage-circuit
  // engine — the compiled state the artifact store persists. Globex is
  // acme shifted by 100: same lineage shape, disjoint constants.
  const std::string query = "Q() <- R(x, y), S(y), T(x)";
  const char* acme_text =
      "+R(1, 2)\n+R(2, 3)\n+S(2)\n+S(3)\n+T(1)\n+T(2)\n";
  const char* globex_text =
      "+R(101, 102)\n+R(102, 103)\n+S(102)\n+S(103)\n+T(101)\n+T(102)\n";

  std::vector<SolveRequest> requests;
  for (const char* tenant : {"acme", "globex"}) {
    SolveRequest request;
    request.id = requests.size() + 1;
    request.tenant = tenant;
    request.query = query;
    request.agg = "count";
    requests.push_back(request);
  }

  auto run_server = [&](const std::string& journal_path,
                        std::map<uint64_t, SolveResponse>* responses,
                        std::string* metrics_text) {
    ServerOptions options;
    options.journal_path = journal_path;
    options.artifact_dir = artifact_dir;
    options.worker_threads = 2;
    AttributionServer server(options);
    server.RegisterTenant("acme", MustParseDb(acme_text));
    server.RegisterTenant("globex", MustParseDb(globex_text));
    Status started = server.Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    auto client = LineClient::Connect(server.port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (const SolveRequest& request : requests) {
      auto reply = client->RoundTrip(SerializeSolveRequest(request));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      auto response = ParseResponseLine(*reply);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_EQ(response->status, "ok") << response->error;
      (*responses)[request.id] = std::move(response).value();
    }
    auto metrics = HttpGet(server.metrics_port(), "/metrics");
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    *metrics_text = std::move(metrics).value();
    server.Stop();  // snapshots the caches into artifact_dir
  };

  // Cold pass: compiles everything, persists on Stop.
  std::map<uint64_t, SolveResponse> cold;
  std::string cold_metrics;
  run_server(journal_a, &cold, &cold_metrics);
  ASSERT_EQ(cold.size(), requests.size());
  // The second tenant's circuits were shared from the first one's even on
  // the cold pass (renamed copy ⇒ same canonical clause sets).
  EXPECT_NE(cold_metrics.find("shapcq_circuit_cache_hits_total"),
            std::string::npos);

  // Simulate a fresh process: the caches the artifact store exists to
  // repopulate start empty.
  PlanCache::Global().Clear();
  CircuitCache::Global().Clear();

  // Warm pass: same tenants, same requests (the journal tail of A).
  std::map<uint64_t, SolveResponse> warm;
  std::string warm_metrics;
  run_server(journal_b, &warm, &warm_metrics);
  ASSERT_EQ(warm.size(), requests.size());

  EXPECT_NE(warm_metrics.find("shapcq_artifact_load_errors_total 0"),
            std::string::npos)
      << warm_metrics;
  EXPECT_EQ(warm_metrics.find("shapcq_artifact_circuits_loaded_total 0"),
            std::string::npos)
      << "warm boot loaded no circuits:\n" << warm_metrics;
  EXPECT_EQ(warm_metrics.find("shapcq_artifact_plans_loaded_total 0"),
            std::string::npos)
      << "warm boot loaded no plans:\n" << warm_metrics;
  // Every circuit the warm pass needed was already resident: zero misses.
  EXPECT_NE(warm_metrics.find("shapcq_circuit_cache_misses_total 0"),
            std::string::npos)
      << warm_metrics;

  // Warm answers == cold answers, bit for bit.
  for (const SolveRequest& request : requests) {
    const SolveResponse& a = cold[request.id];
    const SolveResponse& b = warm[request.id];
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "request " << request.id;
    ASSERT_EQ(a.results.size(), b.results.size()) << "request " << request.id;
    for (size_t f = 0; f < a.results.size(); ++f) {
      EXPECT_EQ(a.results[f].fact, b.results[f].fact);
      EXPECT_EQ(a.results[f].exact, b.results[f].exact);
      EXPECT_TRUE(SameBits(a.results[f].value, b.results[f].value))
          << "request " << request.id << " fact " << a.results[f].fact;
      EXPECT_EQ(a.results[f].exact_value, b.results[f].exact_value);
    }
  }

  // And both agree with a direct replay of A's journal (cold oracle).
  auto records = ReadJournal(journal_a);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  std::map<std::string, std::shared_ptr<const Database>> tenants;
  tenants["acme"] = std::make_shared<const Database>(MustParseDb(acme_text));
  tenants["globex"] =
      std::make_shared<const Database>(MustParseDb(globex_text));
  auto replay = ReplayJournal(*records, tenants);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->fingerprint_matches, records->size());

  std::remove(journal_a.c_str());
  std::remove(journal_b.c_str());
  std::remove((artifact_dir + "/plans.shapcq").c_str());
  std::remove((artifact_dir + "/circuits.shapcq").c_str());
}

// Tracing parity: the same traffic — including a request whose deadline
// burns out in the queue and degrades to Monte Carlo — served once with
// tracing off and once at full verbosity must produce bitwise-identical
// scores. The full server's responses additionally carry trace ids,
// engine explanations, and a parseable span dump; /debug/traces returns
// well-formed JSON whose incident ring contains the degraded request;
// and the v3 journal round-trips every trace id through ReplayJournal
// (which can rebuild the explanations offline).
TEST(DaemonSmokeTest, TracingParityAndFlightRecorder) {
  const std::string suffix = std::to_string(::getpid());
  const char* acme_text = "+R(1, 2)\n+R(2, 3)\n+S(2)\n+S(3)\n-S(4)\n";
  const char* globex_text = "+R(5, 6)\n+R(6, 6)\n+S(6)\n+T(5)\n";

  std::vector<SolveRequest> requests;
  {
    SolveRequest request;
    request.id = 1;
    request.tenant = "acme";
    request.query = "Q(x) <- R(x, y), S(y)";
    requests.push_back(request);
    request = SolveRequest{};
    request.id = 2;
    request.tenant = "globex";
    request.query = "Q() <- R(x, y), S(y), T(x)";  // lineage-circuit path
    request.agg = "count";
    requests.push_back(request);
    request = SolveRequest{};
    request.id = 3;
    request.tenant = "acme";
    request.query = "Q(x) <- R(x, y), S(y)";
    request.method = "mc";
    request.samples = 250;
    request.seed = 11;
    requests.push_back(request);
    // The pre_solve_hook below outsleeps this deadline, so it expires in
    // the queue and the server degrades to the (deterministic) sampled
    // estimate on both servers.
    request = SolveRequest{};
    request.id = 4;
    request.tenant = "acme";
    request.query = "Q(x) <- R(x, y), S(y)";
    request.samples = 500;
    request.seed = 7;
    request.deadline_ms = 1;
    requests.push_back(request);
    // Per-request opt-in: asks for the trace summary even when the
    // server's level is off. Must not change the scores.
    request = SolveRequest{};
    request.id = 5;
    request.tenant = "acme";
    request.query = "Q(x) <- R(x, y), S(y)";
    request.trace = true;
    requests.push_back(request);
  }

  auto run_server = [&](TraceLevel level, const std::string& journal_path,
                        std::map<uint64_t, SolveResponse>* responses,
                        std::string* metrics_text, std::string* debug_json) {
    ServerOptions options;
    options.journal_path = journal_path;
    options.worker_threads = 1;  // keeps the deadline request queued
    options.trace_level = level;
    options.pre_solve_hook = [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    };
    AttributionServer server(options);
    server.RegisterTenant("acme", MustParseDb(acme_text));
    server.RegisterTenant("globex", MustParseDb(globex_text));
    Status started = server.Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
    auto client = LineClient::Connect(server.port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (const SolveRequest& request : requests) {
      auto reply = client->RoundTrip(SerializeSolveRequest(request));
      ASSERT_TRUE(reply.ok()) << reply.status().ToString();
      auto response = ParseResponseLine(*reply);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      ASSERT_EQ(response->status, "ok") << response->error;
      (*responses)[request.id] = std::move(response).value();
    }
    auto metrics = HttpGet(server.metrics_port(), "/metrics");
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    *metrics_text = std::move(metrics).value();
    auto debug = HttpGet(server.metrics_port(), "/debug/traces");
    ASSERT_TRUE(debug.ok()) << debug.status().ToString();
    *debug_json = std::move(debug).value();
    server.Stop();
  };

  const std::string journal_off =
      ::testing::TempDir() + "/daemon_trace_off_" + suffix;
  const std::string journal_full =
      ::testing::TempDir() + "/daemon_trace_full_" + suffix;
  std::map<uint64_t, SolveResponse> off, full;
  std::string off_metrics, full_metrics, off_debug, full_debug;
  run_server(TraceLevel::kOff, journal_off, &off, &off_metrics, &off_debug);
  run_server(TraceLevel::kFull, journal_full, &full, &full_metrics,
             &full_debug);
  ASSERT_EQ(off.size(), requests.size());
  ASSERT_EQ(full.size(), requests.size());

  // Scores are bitwise-identical with tracing off vs full.
  for (const SolveRequest& request : requests) {
    const SolveResponse& a = off[request.id];
    const SolveResponse& b = full[request.id];
    EXPECT_EQ(a.degraded, b.degraded) << "request " << request.id;
    ASSERT_EQ(a.results.size(), b.results.size()) << "request " << request.id;
    for (size_t f = 0; f < a.results.size(); ++f) {
      EXPECT_EQ(a.results[f].fact, b.results[f].fact);
      EXPECT_EQ(a.results[f].exact, b.results[f].exact);
      EXPECT_EQ(a.results[f].exact_value, b.results[f].exact_value);
      EXPECT_TRUE(SameBits(a.results[f].value, b.results[f].value))
          << "request " << request.id << " fact " << a.results[f].fact;
      EXPECT_TRUE(SameBits(a.results[f].std_error, b.results[f].std_error));
      EXPECT_EQ(a.results[f].samples, b.results[f].samples);
      EXPECT_EQ(a.results[f].algorithm, b.results[f].algorithm);
    }
  }
  ASSERT_TRUE(full[4].degraded) << "deadline_ms=1 request did not degrade";

  // Full-verbosity responses: trace id, explanation, parseable span dump.
  for (const SolveRequest& request : requests) {
    const SolveResponse& response = full[request.id];
    EXPECT_EQ(response.trace_id.size(), 16u) << "request " << request.id;
    EXPECT_FALSE(response.explain.empty()) << "request " << request.id;
    auto spans = ParseJson(response.trace);
    ASSERT_TRUE(spans.ok()) << response.trace;
    EXPECT_EQ(spans->GetString("trace_id"), response.trace_id);
    EXPECT_FALSE(spans->Find("spans")->array.empty());
  }
  EXPECT_NE(full[4].explain.find("degraded("), std::string::npos)
      << full[4].explain;
  // The circuit request's explanation names the engine that scored it.
  EXPECT_NE(full[2].explain.find("scored"), std::string::npos)
      << full[2].explain;
  // Tracing-off responses carry no span payloads unless asked: request 5
  // opted in and gets the explanation even at level off.
  EXPECT_TRUE(off[1].explain.empty());
  EXPECT_TRUE(off[1].trace.empty());
  EXPECT_FALSE(off[5].explain.empty());
  ASSERT_TRUE(ParseJson(off[5].trace).ok()) << off[5].trace;

  // Per-stage histograms only exist where tracing ran.
  EXPECT_NE(full_metrics.find("shapcq_stage_seconds_bucket{stage=\"solve\""),
            std::string::npos);
  EXPECT_NE(full_metrics.find("stage=\"queue_wait\""), std::string::npos);

  // /debug/traces: well-formed JSON; the degraded request is an incident.
  auto flight = ParseJson(full_debug);
  ASSERT_TRUE(flight.ok()) << full_debug;
  const JsonValue* incidents = flight->Find("incidents");
  ASSERT_NE(incidents, nullptr);
  bool found_degraded = false;
  for (const JsonValue& entry : incidents->array) {
    if (entry.GetString("trace_id") == full[4].trace_id) {
      found_degraded = true;
      EXPECT_EQ(entry.GetString("outcome"), "degraded");
      EXPECT_EQ(entry.GetString("tenant"), "acme");
      ASSERT_TRUE(ParseJson(entry.GetString("trace")).ok());
    }
  }
  EXPECT_TRUE(found_degraded) << full_debug;
  EXPECT_FALSE(flight->Find("slowest")->array.empty());

  // Journal v3: every record carries the id its response carried, and
  // replay rebuilds the explanations offline.
  auto records = ReadJournal(journal_full);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), requests.size());
  for (const JournalRecord& record : *records) {
    ASSERT_NE(record.trace_id, 0u);
    EXPECT_EQ(TraceIdHex(record.trace_id),
              full[record.request.id].trace_id);
  }
  std::map<std::string, std::shared_ptr<const Database>> tenants;
  tenants["acme"] = std::make_shared<const Database>(MustParseDb(acme_text));
  tenants["globex"] =
      std::make_shared<const Database>(MustParseDb(globex_text));
  ReplayOptions replay_options;
  replay_options.collect_explanations = true;
  auto replay = ReplayJournal(*records, tenants, replay_options);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->explanations.size(), records->size());
  for (const std::string& explanation : replay->explanations) {
    EXPECT_FALSE(explanation.empty());
    EXPECT_NE(explanation, "no solve recorded");
  }

  std::remove(journal_off.c_str());
  std::remove(journal_full.c_str());
}

// Backward compatibility: a version-2 journal (no trace ids) — encoded
// byte-for-byte here the way the PR 8 writer laid it out — still reads
// (trace_id decodes as 0) and still replays, explanations included (a
// pre-v3 record gets a fresh id).
TEST(DaemonSmokeTest, JournalV2ReadCompat) {
  const std::string path = ::testing::TempDir() + "/daemon_v2_journal_" +
                           std::to_string(::getpid());
  const char* acme_text = "+R(1, 2)\n+R(2, 3)\n+S(2)\n+S(3)\n";

  SolveRequest request;
  request.id = 9;
  request.tenant = "acme";
  request.query = "Q(x) <- R(x, y), S(y)";
  auto query = BuildAggregateQuery(request);
  ASSERT_TRUE(query.ok());
  auto solver = BuildSolverOptions(request);
  ASSERT_TRUE(solver.ok());
  const std::string fingerprint = PlanFingerprint(*query, solver->score);

  // The v2 layout: length-prefixed little-endian payload of
  //   sequence, timestamp, id, fingerprint, tenant, query, agg, tau,
  //   score, method, threads, samples, seed, deadline_ms, op, fact
  // — and nothing after `fact` (v3 appended the trace id there).
  std::string payload;
  auto put_u32 = [&](std::string* out, uint32_t v) {
    for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
  };
  auto put_u64 = [&](std::string* out, uint64_t v) {
    for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
  };
  auto put_str = [&](std::string* out, const std::string& s) {
    put_u32(out, static_cast<uint32_t>(s.size()));
    out->append(s);
  };
  put_u64(&payload, 0);    // sequence
  put_u64(&payload, 123);  // timestamp_ns
  put_u64(&payload, request.id);
  put_str(&payload, fingerprint);
  put_str(&payload, request.tenant);
  put_str(&payload, request.query);
  put_str(&payload, request.agg);
  put_str(&payload, request.tau);
  put_str(&payload, request.score);
  put_str(&payload, request.method);
  put_u32(&payload, static_cast<uint32_t>(request.threads));
  put_u64(&payload, static_cast<uint64_t>(request.samples));
  put_u64(&payload, request.seed);
  put_u64(&payload, static_cast<uint64_t>(request.deadline_ms));
  put_u32(&payload, 0);      // op = kSolve
  put_str(&payload, "");     // fact
  std::string file_bytes = "SHAPCQJL";
  put_u32(&file_bytes, 2);   // version 2
  put_u32(&file_bytes, static_cast<uint32_t>(payload.size()));
  file_bytes += payload;
  {
    FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fwrite(file_bytes.data(), 1, file_bytes.size(), file),
              file_bytes.size());
    std::fclose(file);
  }

  auto records = ReadJournal(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].trace_id, 0u);  // "no trace id"
  EXPECT_EQ((*records)[0].op, JournalOp::kSolve);
  EXPECT_EQ((*records)[0].request.query, request.query);
  EXPECT_EQ((*records)[0].fingerprint, fingerprint);

  std::map<std::string, std::shared_ptr<const Database>> tenants;
  tenants["acme"] = std::make_shared<const Database>(MustParseDb(acme_text));
  ReplayOptions replay_options;
  replay_options.collect_explanations = true;
  auto replay = ReplayJournal(*records, tenants, replay_options);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_EQ(replay->results.size(), 1u);
  EXPECT_FALSE(replay->results[0].empty());
  ASSERT_EQ(replay->explanations.size(), 1u);
  EXPECT_NE(replay->explanations[0], "no solve recorded");

  std::remove(path.c_str());
}

}  // namespace
}  // namespace shapcq
