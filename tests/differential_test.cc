// Differential testing harness: random queries of every hierarchy class ×
// random databases × every aggregate. Every engine that accepts an
// instance must agree exactly with brute force; engines must accept
// instances inside their frontier (for our standard localized τ).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/count_distinct.h"
#include "shapcq/shapley/has_duplicates.h"
#include "shapcq/shapley/min_max.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver.h"
#include "shapcq/shapley/sum_count.h"
#include "shapcq/workload/generators.h"
#include "shapcq/workload/random_query.h"

namespace shapcq {
namespace {

struct DifferentialCase {
  HierarchyClass target;
  uint64_t seed;
};

std::vector<DifferentialCase> MakeCases() {
  std::vector<DifferentialCase> cases;
  for (HierarchyClass target :
       {HierarchyClass::kSqHierarchical, HierarchyClass::kQHierarchical,
        HierarchyClass::kAllHierarchical,
        HierarchyClass::kExistsHierarchical, HierarchyClass::kGeneral}) {
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      cases.push_back({target, seed});
    }
  }
  return cases;
}

class DifferentialTest : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(DifferentialTest, GeneratedQueryHasRequestedClass) {
  const DifferentialCase& param = GetParam();
  RandomQueryOptions options;
  options.max_variables = 4;
  options.components = 1 + static_cast<int>(param.seed % 2);
  options.seed = param.seed;
  ConjunctiveQuery q = RandomQueryOfClass(param.target, options);
  EXPECT_EQ(Classify(q), param.target) << q.ToString();
  EXPECT_FALSE(q.HasSelfJoin());
}

TEST_P(DifferentialTest, AllApplicableEnginesAgreeWithBruteForce) {
  const DifferentialCase& param = GetParam();
  RandomQueryOptions query_options;
  query_options.max_variables = 3;
  query_options.components = 1 + static_cast<int>(param.seed % 2);
  query_options.seed = param.seed;
  ConjunctiveQuery q = RandomQueryOfClass(param.target, query_options);

  RandomDatabaseOptions db_options;
  db_options.facts_per_relation = 3;
  db_options.domain_size = 3;
  db_options.seed = param.seed * 1000 + 7;
  Database db = RandomDatabaseForQuery(q, db_options);
  if (db.num_endogenous() == 0 ||
      db.num_endogenous() > kBruteForceMaxPlayers) {
    GTEST_SKIP();
  }

  ValueFunctionPtr tau =
      q.arity() > 0 ? MakeTauId(0) : MakeConstantTau(Rational(1));
  struct EngineCase {
    AggregateFunction alpha;
    SumKEngine engine;
    HierarchyClass frontier;
  };
  std::vector<EngineCase> engines = {
      {AggregateFunction::Sum(), SumCountSumK,
       HierarchyClass::kExistsHierarchical},
      {AggregateFunction::Count(), SumCountSumK,
       HierarchyClass::kExistsHierarchical},
      {AggregateFunction::Max(), MinMaxSumK,
       HierarchyClass::kAllHierarchical},
      {AggregateFunction::Min(), MinMaxSumK,
       HierarchyClass::kAllHierarchical},
      {AggregateFunction::CountDistinct(), CountDistinctSumK,
       HierarchyClass::kAllHierarchical},
      {AggregateFunction::Avg(), AvgQuantileSumK,
       HierarchyClass::kQHierarchical},
      {AggregateFunction::Median(), AvgQuantileSumK,
       HierarchyClass::kQHierarchical},
      {AggregateFunction::HasDuplicates(), HasDuplicatesSumK,
       HierarchyClass::kSqHierarchical},
  };
  for (const EngineCase& engine_case : engines) {
    AggregateQuery a{q, tau, engine_case.alpha};
    StatusOr<SumKSeries> dp = engine_case.engine(a, db, SolverOptions{});
    bool inside = AtLeast(Classify(q), engine_case.frontier);
    if (inside) {
      // Inside the frontier with our localized τ the engine must accept.
      ASSERT_TRUE(dp.ok()) << q.ToString() << " "
                           << engine_case.alpha.ToString() << ": "
                           << dp.status().ToString();
    }
    if (!dp.ok()) continue;  // τ-specific refusals outside are fine
    StatusOr<SumKSeries> bf = BruteForceSumK(a, db);
    ASSERT_TRUE(bf.ok());
    ASSERT_EQ(dp->size(), bf->size());
    for (size_t k = 0; k < bf->size(); ++k) {
      ASSERT_EQ((*dp)[k], (*bf)[k])
          << q.ToString() << " " << engine_case.alpha.ToString() << " k="
          << k;
    }
  }
}

TEST_P(DifferentialTest, SolverAutoAgreesWithBruteForceOnOneFact) {
  const DifferentialCase& param = GetParam();
  RandomQueryOptions query_options;
  query_options.max_variables = 3;
  query_options.seed = param.seed + 500;
  ConjunctiveQuery q = RandomQueryOfClass(param.target, query_options);
  RandomDatabaseOptions db_options;
  db_options.facts_per_relation = 3;
  db_options.seed = param.seed * 77 + 1;
  Database db = RandomDatabaseForQuery(q, db_options);
  if (db.num_endogenous() == 0 ||
      db.num_endogenous() > kBruteForceMaxPlayers) {
    GTEST_SKIP();
  }
  ValueFunctionPtr tau =
      q.arity() > 0 ? MakeTauId(0) : MakeConstantTau(Rational(1));
  for (AggregateFunction alpha :
       {AggregateFunction::Max(), AggregateFunction::Avg()}) {
    AggregateQuery a{q, tau, alpha};
    ShapleySolver solver(a);
    FactId probe = db.EndogenousFacts().front();
    auto result = solver.Compute(db, probe);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->is_exact);  // brute-force fallback is exact too
    auto bf = BruteForceScore(a, db, probe);
    EXPECT_EQ(result->exact, *bf)
        << q.ToString() << " " << alpha.ToString() << " via "
        << result->algorithm;
  }
}

INSTANTIATE_TEST_SUITE_P(AllClasses, DifferentialTest,
                         ::testing::ValuesIn(MakeCases()));

}  // namespace
}  // namespace shapcq
