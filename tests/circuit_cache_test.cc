// Tests for the cross-tenant circuit cache (lineage/circuit_cache.h).
//
// The load-bearing property is bitwise safety: scores computed through a
// cached circuit must be identical — exact Rational equality, not epsilon —
// to scores computed with sharing disabled. Everything else (canonical
// form invariance, budget gating, FIFO bounds) supports that contract.

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/lineage/circuit.h"
#include "shapcq/lineage/circuit_cache.h"
#include "shapcq/lineage/engine.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/util/rational.h"

namespace shapcq {
namespace {

// --- Canonical form --------------------------------------------------------

TEST(CanonicalizeClausesTest, InvariantUnderMonotoneRenaming) {
  // The same minimized formula under two monotone labellings: dense player
  // indices and (shifted, sparse) FactIds — exactly the two labellings the
  // batched and streaming extractors produce.
  std::vector<std::vector<int>> dense = {{0, 1}, {1, 2}, {0, 2}};
  std::vector<std::vector<int>> sparse = {{10, 17}, {17, 40}, {10, 40}};
  CanonicalClauseForm a = CanonicalizeClauses(dense);
  CanonicalClauseForm b = CanonicalizeClauses(sparse);
  EXPECT_EQ(a.clauses, b.clauses);
  EXPECT_EQ(a.num_vars, b.num_vars);
  EXPECT_EQ(CanonicalClauseHash(a.clauses), CanonicalClauseHash(b.clauses));
  // The remap tables translate canonical slots back to each caller's own
  // literals.
  ASSERT_EQ(a.to_input.size(), b.to_input.size());
  std::map<int, int> dense_to_sparse = {{0, 10}, {1, 17}, {2, 40}};
  for (size_t v = 0; v < a.to_input.size(); ++v) {
    EXPECT_EQ(dense_to_sparse[a.to_input[v]], b.to_input[v]);
  }
}

TEST(CanonicalizeClausesTest, CanonicalFormIsAFixpoint) {
  std::vector<std::vector<int>> minimized = {{7, 3}, {3, 9, 11}, {2}};
  // CanonicalizeClauses wants sorted-clause minimized input.
  MinimizeClauses(&minimized);
  CanonicalClauseForm once = CanonicalizeClauses(minimized);
  CanonicalClauseForm twice = CanonicalizeClauses(once.clauses);
  EXPECT_EQ(once.clauses, twice.clauses);
  EXPECT_EQ(once.num_vars, twice.num_vars);
  // Re-canonicalizing an already-canonical set is the identity relabelling.
  for (int v = 0; v < twice.num_vars; ++v) {
    EXPECT_EQ(twice.to_input[static_cast<size_t>(v)], v);
  }
}

TEST(CanonicalizeClausesTest, DistinctShapesStayDistinct) {
  CanonicalClauseForm chain = CanonicalizeClauses({{0, 1}, {1, 2}});
  CanonicalClauseForm star = CanonicalizeClauses({{0, 1}, {0, 2}});
  // A chain and a star on three variables are non-isomorphic formulas;
  // sharing between them would be unsound, so they must not collide.
  EXPECT_NE(chain.clauses, star.clauses);
}

// --- Differential: cached vs uncached scoring ------------------------------

Database TenantDatabase(int64_t shift) {
  Database db;
  auto v = [shift](int64_t x) { return Value(x + shift); };
  // Two x-groups sharing S facts: per-answer lineages with real structure.
  db.AddEndogenous("R", {v(1), v(10)});
  db.AddEndogenous("R", {v(1), v(11)});
  db.AddEndogenous("R", {v(2), v(10)});
  db.AddEndogenous("R", {v(2), v(12)});
  db.AddEndogenous("S", {v(10)});
  db.AddEndogenous("S", {v(11)});
  db.AddEndogenous("S", {v(12)});
  return db;
}

AggregateQuery TenantQuery() {
  return AggregateQuery{MustParseQuery("Q(x) <- R(x, y), S(y)"), MakeTauId(0),
                        AggregateFunction::Count()};
}

using Scores = std::vector<std::pair<FactId, Rational>>;

Scores MustScoreAll(const AggregateQuery& a, const Database& db,
                    bool share_circuits,
                    CircuitCacheCounters* counters = nullptr) {
  SolverOptions options;
  options.lineage.share_circuits = share_circuits;
  options.lineage.cache_counters = counters;
  StatusOr<Scores> scores = LineageCircuitScoreAll(a, db, options);
  EXPECT_TRUE(scores.ok()) << scores.status().ToString();
  return scores.ok() ? *scores : Scores{};
}

TEST(CircuitCacheTest, CachedScoresBitwiseIdenticalToUncached) {
  CircuitCache::Global().Clear();
  AggregateQuery a = TenantQuery();
  Database db = TenantDatabase(0);

  Scores baseline = MustScoreAll(a, db, /*share_circuits=*/false);
  ASSERT_FALSE(baseline.empty());

  // Cold pass populates the cache, warm pass is served from it; both must
  // match the share-disabled baseline exactly.
  Scores cold = MustScoreAll(a, db, /*share_circuits=*/true);
  CircuitCache::Stats after_cold = CircuitCache::Global().stats();
  EXPECT_GT(after_cold.inserts, 0u);
  Scores warm = MustScoreAll(a, db, /*share_circuits=*/true);
  CircuitCache::Stats after_warm = CircuitCache::Global().stats();
  EXPECT_GT(after_warm.hits, after_cold.hits);

  ASSERT_EQ(cold.size(), baseline.size());
  ASSERT_EQ(warm.size(), baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(cold[i].first, baseline[i].first);
    EXPECT_EQ(cold[i].second, baseline[i].second);
    EXPECT_EQ(warm[i].first, baseline[i].first);
    EXPECT_EQ(warm[i].second, baseline[i].second);
  }
}

TEST(CircuitCacheTest, CrossTenantShiftedCopiesShareCircuits) {
  CircuitCache::Global().Clear();
  AggregateQuery a = TenantQuery();
  Database tenant_a = TenantDatabase(0);
  Database tenant_b = TenantDatabase(1000);  // same shape, disjoint constants

  MustScoreAll(a, tenant_a, /*share_circuits=*/true);
  CircuitCache::Stats after_a = CircuitCache::Global().stats();

  // Tenant B's lineages are a renaming of tenant A's: every circuit must
  // come from the cache, and the scores must still equal an unshared solve.
  CircuitCacheCounters counters;
  Scores shared = MustScoreAll(a, tenant_b, /*share_circuits=*/true,
                               &counters);
  CircuitCache::Stats after_b = CircuitCache::Global().stats();
  EXPECT_GT(after_b.hits, after_a.hits);
  EXPECT_EQ(after_b.inserts, after_a.inserts);  // nothing new to compile
  EXPECT_GT(counters.hits.load(), 0u);
  EXPECT_EQ(counters.misses.load(), 0u);

  Scores baseline = MustScoreAll(a, tenant_b, /*share_circuits=*/false);
  ASSERT_EQ(shared.size(), baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(shared[i].first, baseline[i].first);
    EXPECT_EQ(shared[i].second, baseline[i].second);
  }
}

// --- Budget gating ---------------------------------------------------------

std::shared_ptr<CircuitCacheEntry> MakeEntry(
    std::vector<std::vector<int>> clauses) {
  MinimizeClauses(&clauses);
  CanonicalClauseForm canonical = CanonicalizeClauses(clauses);
  auto entry = std::make_shared<CircuitCacheEntry>();
  entry->clauses = canonical.clauses;
  entry->num_vars = canonical.num_vars;
  StatusOr<LineageCircuit> circuit =
      CompileDnf(entry->clauses, entry->num_vars);
  EXPECT_TRUE(circuit.ok());
  entry->circuit = std::move(*circuit);
  Combinatorics comb;
  entry->counts = CountModelsBySize(entry->circuit, &comb);
  return entry;
}

TEST(CircuitCacheTest, LookupEnforcesCallerBudget) {
  CircuitCache cache;
  auto entry = MakeEntry({{0, 1}, {1, 2}, {0, 2}});
  std::vector<std::vector<int>> key = entry->clauses;
  cache.Insert(std::move(entry));

  CircuitBudget roomy;
  EXPECT_NE(cache.Lookup(key, roomy), nullptr);

  // A caller whose budget the resident circuit exceeds must observe a miss
  // (its own compile would fail with UNSUPPORTED; serving the big circuit
  // would silently widen its budget).
  CircuitBudget tight_nodes;
  tight_nodes.max_nodes = 1;
  EXPECT_EQ(cache.Lookup(key, tight_nodes), nullptr);
  CircuitBudget tight_vars;
  tight_vars.max_vars = 2;
  EXPECT_EQ(cache.Lookup(key, tight_vars), nullptr);
  CircuitBudget tight_clauses;
  tight_clauses.max_clauses = 2;
  EXPECT_EQ(cache.Lookup(key, tight_clauses), nullptr);

  CircuitCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
}

// --- Bounds and eviction ---------------------------------------------------

TEST(CircuitCacheTest, FifoEvictionRespectsEntryBound) {
  CircuitCache cache(/*max_entries=*/2, CircuitCache::kDefaultMaxBytes);
  auto first = MakeEntry({{0}});
  auto second = MakeEntry({{0, 1}});
  auto third = MakeEntry({{0}, {1}});
  std::vector<std::vector<int>> first_key = first->clauses;
  std::vector<std::vector<int>> second_key = second->clauses;
  std::vector<std::vector<int>> third_key = third->clauses;
  cache.Insert(std::move(first));
  cache.Insert(std::move(second));
  cache.Insert(std::move(third));

  CircuitCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_GT(stats.bytes, 0u);

  // FIFO: the oldest entry went, the newer two stayed.
  CircuitBudget budget;
  EXPECT_EQ(cache.Lookup(first_key, budget), nullptr);
  EXPECT_NE(cache.Lookup(second_key, budget), nullptr);
  EXPECT_NE(cache.Lookup(third_key, budget), nullptr);
  EXPECT_EQ(cache.Snapshot().size(), 2u);
}

TEST(CircuitCacheTest, OversizedEntryIsReturnedButNotResident) {
  // A byte budget smaller than any entry: Insert hands the entry back to
  // the caller (who still needs its circuit) without evicting the world.
  CircuitCache cache(/*max_entries=*/8, /*max_bytes=*/1);
  auto entry = MakeEntry({{0, 1}});
  std::vector<std::vector<int>> key = entry->clauses;
  std::shared_ptr<const CircuitCacheEntry> returned =
      cache.Insert(std::move(entry));
  ASSERT_NE(returned, nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.Lookup(key, CircuitBudget{}), nullptr);
}

TEST(CircuitCacheTest, FirstInsertWins) {
  CircuitCache cache;
  auto first = MakeEntry({{0, 1}, {1, 2}});
  auto second = MakeEntry({{0, 1}, {1, 2}});
  std::shared_ptr<const CircuitCacheEntry> resident =
      cache.Insert(std::move(first));
  std::shared_ptr<const CircuitCacheEntry> duplicate =
      cache.Insert(std::move(second));
  // Concurrent compilers of one formula all converge on a single resident
  // entry; the duplicate is dropped.
  EXPECT_EQ(resident.get(), duplicate.get());
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

}  // namespace
}  // namespace shapcq
