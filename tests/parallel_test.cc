// ParallelFor: exception propagation and scheduling invariants. The
// batched engines accumulate exact BigInt/Rational state inside workers,
// so a throwing iteration (e.g. std::bad_alloc) must surface on the
// calling thread instead of std::terminate-ing the process.

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/util/parallel.h"

namespace shapcq {
namespace {

TEST(EffectiveThreadCountTest, ClampsToCountAndHardware) {
  EXPECT_EQ(EffectiveThreadCount(4, 100), 4);
  EXPECT_EQ(EffectiveThreadCount(4, 2), 2);
  EXPECT_EQ(EffectiveThreadCount(8, 1), 1);
  EXPECT_GE(EffectiveThreadCount(0, 100), 1);   // hardware concurrency
  EXPECT_GE(EffectiveThreadCount(-3, 100), 1);  // negative = hardware
  EXPECT_EQ(EffectiveThreadCount(0, 0), 1);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(97);
    for (auto& h : hits) h.store(0);
    ParallelFor(
        97, [&](int64_t i) { hits[static_cast<size_t>(i)].fetch_add(1); },
        threads);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, RethrowsWorkerExceptionAfterJoin) {
  for (int threads : {2, 8}) {
    std::atomic<int> started{0};
    EXPECT_THROW(
        ParallelFor(
            64,
            [&](int64_t i) {
              started.fetch_add(1);
              if (i == 7) throw std::runtime_error("boom");
            },
            threads),
        std::runtime_error);
    // The abort flag stops workers early: not every iteration ran.
    EXPECT_GE(started.load(), 1);
  }
}

TEST(ParallelForTest, RethrowsFromTheInlineSingleThreadPath) {
  EXPECT_THROW(ParallelFor(
                   4,
                   [](int64_t i) {
                     if (i == 2) throw std::bad_alloc();
                   },
                   1),
               std::bad_alloc);
}

TEST(ParallelForTest, KeepsWorkingAfterACaughtException) {
  // The pool is per-call; a throw in one call must not poison the next.
  EXPECT_THROW(
      ParallelFor(
          8, [](int64_t) { throw std::runtime_error("boom"); }, 4),
      std::runtime_error);
  std::atomic<int64_t> sum{0};
  ParallelFor(8, [&](int64_t i) { sum.fetch_add(i); }, 4);
  EXPECT_EQ(sum.load(), 28);
}

}  // namespace
}  // namespace shapcq
