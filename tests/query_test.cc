#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/data/database.h"
#include "shapcq/query/cq.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/query/parser.h"

namespace shapcq {
namespace {

// ---------------------------------------------------------------------------
// Parser and representation
// ---------------------------------------------------------------------------

TEST(ParserTest, ParsesSimpleQuery) {
  auto q = ParseQuery("Q(x) <- R(x, y), S(y)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->name(), "Q");
  EXPECT_EQ(q->head(), (std::vector<std::string>{"x"}));
  ASSERT_EQ(q->atoms().size(), 2u);
  EXPECT_EQ(q->atoms()[0].relation, "R");
  EXPECT_EQ(q->atoms()[1].relation, "S");
  EXPECT_EQ(q->ToString(), "Q(x) <- R(x, y), S(y)");
}

TEST(ParserTest, ParsesBooleanAndConstantForms) {
  auto q = ParseQuery("Q() :- R(x, 'blue'), S(3), T(2.5, x)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->is_boolean());
  EXPECT_EQ(q->atoms()[0].terms[1].constant(), Value("blue"));
  EXPECT_EQ(q->atoms()[1].terms[0].constant(), Value(3));
  EXPECT_EQ(q->atoms()[2].terms[0].constant(), Value(2.5));
}

TEST(ParserTest, ParsesNegativeNumbers) {
  auto q = ParseQuery("Q() <- R(-5, x)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms()[0].terms[0].constant(), Value(-5));
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("Q(x)").ok());                 // no body
  EXPECT_FALSE(ParseQuery("Q(x) <- ").ok());             // empty body
  EXPECT_FALSE(ParseQuery("Q(x) <- R(x) garbage").ok()); // trailing junk
  EXPECT_FALSE(ParseQuery("Q(x) <- R(y)").ok());         // unsafe head
  EXPECT_FALSE(ParseQuery("Q(x <- R(x)").ok());          // broken head
  EXPECT_FALSE(ParseQuery("Q(x) <- R('unterminated)").ok());
}

TEST(CqTest, VariableAccessors) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  EXPECT_EQ(q.free_variables(), (std::vector<std::string>{"x", "z"}));
  EXPECT_EQ(q.existential_variables(), (std::vector<std::string>{"y"}));
  EXPECT_EQ(q.variables().size(), 3u);
  EXPECT_TRUE(q.IsFreeVariable("x"));
  EXPECT_FALSE(q.IsFreeVariable("y"));
  EXPECT_TRUE(q.HasVariable("y"));
  EXPECT_FALSE(q.HasVariable("w"));
}

TEST(CqTest, AtomsContaining) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y), T(x)");
  EXPECT_EQ(q.AtomsContaining("x"), (std::vector<int>{0, 2}));
  EXPECT_EQ(q.AtomsContaining("y"), (std::vector<int>{0, 1}));
}

TEST(CqTest, SelfJoinDetection) {
  EXPECT_TRUE(MustParseQuery("Q() <- R(x), R(y)").HasSelfJoin());
  EXPECT_FALSE(MustParseQuery("Q() <- R(x), S(y)").HasSelfJoin());
}

TEST(CqTest, AsBoolean) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y)").AsBoolean();
  EXPECT_TRUE(q.is_boolean());
  EXPECT_EQ(q.existential_variables().size(), 2u);
}

TEST(CqTest, BindFreeVariable) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  ConjunctiveQuery bound = q.Bind("x", Value(7));
  EXPECT_EQ(bound.head(), (std::vector<std::string>{"z"}));
  EXPECT_EQ(bound.atoms()[0].terms[0].constant(), Value(7));
  EXPECT_FALSE(bound.HasVariable("x"));
}

TEST(CqTest, BindExistentialVariable) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  ConjunctiveQuery bound = q.Bind("y", Value("b"));
  EXPECT_EQ(bound.head(), (std::vector<std::string>{"x"}));
  EXPECT_EQ(bound.atoms()[0].terms[1].constant(), Value("b"));
  EXPECT_EQ(bound.atoms()[1].terms[0].constant(), Value("b"));
}

TEST(CqTest, RepeatedHeadVariables) {
  auto q = ParseQuery("Q(x, x) <- R(x)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->arity(), 2);
  EXPECT_EQ(q->free_variables(), (std::vector<std::string>{"x"}));
}

TEST(CqTest, ProjectSubquery) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  std::vector<int> kept;
  ConjunctiveQuery sub = q.Project({0, 1}, &kept);
  EXPECT_EQ(sub.head(), (std::vector<std::string>{"x"}));
  EXPECT_EQ(kept, (std::vector<int>{0}));
  EXPECT_EQ(sub.atoms().size(), 2u);
  ConjunctiveQuery sub2 = q.Project({2}, &kept);
  EXPECT_EQ(sub2.head(), (std::vector<std::string>{"z"}));
  EXPECT_EQ(kept, (std::vector<int>{1}));
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

Database MakeSimpleDb() {
  Database db;
  db.AddEndogenous("R", {Value(1), Value(10)});
  db.AddEndogenous("R", {Value(2), Value(10)});
  db.AddEndogenous("R", {Value(2), Value(20)});
  db.AddEndogenous("S", {Value(10)});
  db.AddExogenous("S", {Value(30)});
  return db;
}

TEST(EvaluatorTest, BasicJoin) {
  Database db = MakeSimpleDb();
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  std::vector<Tuple> answers = Evaluate(q, db);
  ASSERT_EQ(answers.size(), 2u);
  EXPECT_EQ(answers[0], (Tuple{Value(1)}));
  EXPECT_EQ(answers[1], (Tuple{Value(2)}));
}

TEST(EvaluatorTest, BooleanQuery) {
  Database db = MakeSimpleDb();
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x, y), S(y)");
  std::vector<Tuple> answers = Evaluate(q, db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_TRUE(answers[0].empty());
}

TEST(EvaluatorTest, ConstantsInAtoms) {
  Database db = MakeSimpleDb();
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, 10)");
  std::vector<Tuple> answers = Evaluate(q, db);
  ASSERT_EQ(answers.size(), 2u);
}

TEST(EvaluatorTest, RepeatedVariablesInAtom) {
  Database db;
  db.AddEndogenous("R", {Value(1), Value(1)});
  db.AddEndogenous("R", {Value(1), Value(2)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, x)");
  std::vector<Tuple> answers = Evaluate(q, db);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], (Tuple{Value(1)}));
}

TEST(EvaluatorTest, CrossProductQuery) {
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("R", {Value(2)});
  db.AddEndogenous("T", {Value(7)});
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x), T(z)");
  std::vector<Tuple> answers = Evaluate(q, db);
  EXPECT_EQ(answers.size(), 2u);
}

TEST(EvaluatorTest, NoAnswersWhenJoinEmpty) {
  Database db;
  db.AddEndogenous("R", {Value(1), Value(99)});
  db.AddEndogenous("S", {Value(10)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  EXPECT_TRUE(Evaluate(q, db).empty());
}

TEST(EvaluatorTest, HomomorphismsTrackUsedFacts) {
  Database db = MakeSimpleDb();
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  std::vector<Homomorphism> homs = EnumerateHomomorphisms(q, db);
  ASSERT_EQ(homs.size(), 2u);
  for (const Homomorphism& hom : homs) {
    ASSERT_EQ(hom.used_facts.size(), 2u);
    EXPECT_EQ(db.fact(hom.used_facts[0]).relation, "R");
    EXPECT_EQ(db.fact(hom.used_facts[1]).relation, "S");
    EXPECT_EQ(hom.answer.size(), 1u);
  }
}

TEST(EvaluatorTest, SubsetEvaluatorMatchesFullEvaluation) {
  Database db = MakeSimpleDb();
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  SubsetEvaluator eval(q, db);
  ASSERT_EQ(eval.num_players(), 4);
  // Full mask: all endogenous facts present -> same as Evaluate.
  uint64_t full = (uint64_t{1} << 4) - 1;
  EXPECT_EQ(eval.AnswersFor(full).size(), 2u);
  // Empty mask: only exogenous S(30) is present; no R facts -> no answers.
  EXPECT_TRUE(eval.AnswersFor(0).empty());
}

TEST(EvaluatorTest, SubsetEvaluatorRespectsSupports) {
  Database db;
  FactId r1 = db.AddEndogenous("R", {Value(1), Value(10)});
  db.AddEndogenous("R", {Value(2), Value(10)});
  FactId s = db.AddEndogenous("S", {Value(10)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  SubsetEvaluator eval(q, db);
  uint64_t mask = (uint64_t{1} << eval.PlayerIndex(r1)) |
                  (uint64_t{1} << eval.PlayerIndex(s));
  std::vector<Tuple> answers = eval.AnswersFor(mask);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0], (Tuple{Value(1)}));
}

// ---------------------------------------------------------------------------
// Decomposition
// ---------------------------------------------------------------------------

TEST(DecompositionTest, RootVariables) {
  EXPECT_EQ(RootVariables(MustParseQuery("Q(x) <- R(x, y), S(y)")),
            (std::vector<std::string>{"y"}));
  EXPECT_EQ(RootVariables(MustParseQuery("Q(x) <- R(x, y), S(x)")),
            (std::vector<std::string>{"x"}));
  EXPECT_TRUE(RootVariables(MustParseQuery("Q() <- R(x), S(y)")).empty());
  // Ground atom blocks all root variables.
  EXPECT_TRUE(RootVariables(MustParseQuery("Q() <- R(x), S(3)")).empty());
  EXPECT_EQ(RootVariables(MustParseQuery("Q(x, y) <- R(x, y)")).size(), 2u);
}

TEST(DecompositionTest, ConnectedComponents) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  std::vector<std::vector<int>> components = ConnectedComponents(q);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(components[1], (std::vector<int>{2}));
}

TEST(DecompositionTest, GroundAtomsAreSingletonComponents) {
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x), S(3), T(x)");
  std::vector<std::vector<int>> components = ConnectedComponents(q);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(components[1], (std::vector<int>{1}));
}

TEST(DecompositionTest, CandidateValuesIntersectColumns) {
  Database db;
  db.AddEndogenous("R", {Value(1), Value(10)});
  db.AddEndogenous("R", {Value(2), Value(20)});
  db.AddEndogenous("S", {Value(10)});
  db.AddEndogenous("S", {Value(30)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  std::vector<Value> values = CandidateValues(q, "y", AllFacts(db));
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], Value(10));
  std::vector<Value> xs = CandidateValues(q, "x", AllFacts(db));
  EXPECT_EQ(xs.size(), 2u);
}

TEST(DecompositionTest, FactsConsistentWithBinding) {
  Database db;
  FactId r1 = db.AddEndogenous("R", {Value(1), Value(10)});
  db.AddEndogenous("R", {Value(2), Value(20)});
  FactId s1 = db.AddEndogenous("S", {Value(10)});
  db.AddEndogenous("S", {Value(20)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  std::vector<FactId> consistent =
      FactsConsistentWith(q, "y", Value(10), AllFacts(db));
  EXPECT_EQ(consistent, (std::vector<FactId>{r1, s1}));
}

TEST(DecompositionTest, SplitRelevantFiltersConstantMismatches) {
  Database db;
  FactId good = db.AddEndogenous("R", {Value(1), Value("blue")});
  db.AddEndogenous("R", {Value(2), Value("red")});   // constant mismatch
  db.AddEndogenous("T", {Value(5)});                  // relation not in Q
  db.AddExogenous("U", {Value(6)});                   // relation not in Q
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, 'blue')");
  RelevanceSplit split = SplitRelevant(q, AllFacts(db));
  EXPECT_EQ(split.relevant.facts, (std::vector<FactId>{good}));
  EXPECT_EQ(split.irrelevant_endogenous, 2);
  EXPECT_EQ(split.irrelevant_exogenous, 1);
}

TEST(DecompositionTest, RepeatedVariableInAtomFiltersFacts) {
  Database db;
  FactId diag = db.AddEndogenous("R", {Value(3), Value(3)});
  db.AddEndogenous("R", {Value(3), Value(4)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, x)");
  RelevanceSplit split = SplitRelevant(q, AllFacts(db));
  EXPECT_EQ(split.relevant.facts, (std::vector<FactId>{diag}));
  EXPECT_EQ(split.irrelevant_endogenous, 1);
}

TEST(DecompositionTest, FactsOfQueryRelations) {
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("T", {Value(2)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x)");
  FactSubset subset = FactsOfQueryRelations(q, AllFacts(db));
  EXPECT_EQ(subset.facts.size(), 1u);
  EXPECT_EQ(db.fact(subset.facts[0]).relation, "R");
}

TEST(DecompositionTest, IsGround) {
  EXPECT_TRUE(IsGround(MustParseQuery("Q() <- R(1), S('a')")));
  EXPECT_FALSE(IsGround(MustParseQuery("Q() <- R(x)")));
}

// ---------------------------------------------------------------------------
// AnswersTouching (the dirty-answer seed of the streaming path)
// ---------------------------------------------------------------------------

// Reference: the distinct answers with at least one homomorphism using
// `fact`, straight from the full homomorphism list.
std::vector<Tuple> TouchingByEnumeration(const ConjunctiveQuery& q,
                                         const Database& db, FactId fact) {
  std::vector<Tuple> touching;
  for (const Homomorphism& hom : EnumerateHomomorphisms(q, db)) {
    if (std::find(hom.used_facts.begin(), hom.used_facts.end(), fact) !=
        hom.used_facts.end()) {
      touching.push_back(hom.answer);
    }
  }
  std::sort(touching.begin(), touching.end());
  touching.erase(std::unique(touching.begin(), touching.end()),
                 touching.end());
  return touching;
}

TEST(AnswersTouchingTest, MatchesHomomorphismReference) {
  Database db;
  db.AddEndogenous("R", {Value(1), Value(2)});
  db.AddEndogenous("R", {Value(1), Value(3)});
  db.AddEndogenous("R", {Value(4), Value(2)});
  db.AddEndogenous("S", {Value(2)});
  db.AddEndogenous("S", {Value(3)});
  db.AddExogenous("S", {Value(5)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  for (FactId fact = 0; fact < db.num_facts(); ++fact) {
    EXPECT_EQ(AnswersTouching(q, db, fact),
              TouchingByEnumeration(q, db, fact))
        << "fact " << db.fact(fact).ToString();
  }
}

TEST(AnswersTouchingTest, SelfJoinPinsEveryAtomOccurrence) {
  // R appears twice: a fact can touch an answer through either atom.
  Database db;
  db.AddEndogenous("R", {Value(1), Value(2)});
  db.AddEndogenous("R", {Value(2), Value(3)});
  db.AddEndogenous("R", {Value(2), Value(2)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), R(y, z)");
  for (FactId fact = 0; fact < db.num_facts(); ++fact) {
    EXPECT_EQ(AnswersTouching(q, db, fact),
              TouchingByEnumeration(q, db, fact))
        << "fact " << db.fact(fact).ToString();
  }
}

TEST(AnswersTouchingTest, OneFactTouchesStrictlyFewerThanAllAnswers) {
  // The streaming claim in one unit: with many disjoint answers, a single
  // fact's dirty set must not sweep the whole answer space.
  Database db;
  for (int i = 0; i < 10; ++i) {
    db.AddEndogenous("R", {Value(i), Value(100 + i)});
    db.AddEndogenous("S", {Value(100 + i)});
  }
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  size_t all = Evaluate(q, db).size();
  ASSERT_EQ(all, 10u);
  std::vector<Tuple> dirty = AnswersTouching(q, db, /*fact=*/0);
  EXPECT_EQ(dirty.size(), 1u);
  EXPECT_LT(dirty.size(), all);
}

}  // namespace
}  // namespace shapcq
