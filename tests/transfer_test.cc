// Numeric validation of the paper's transfer constructions: Lemma 5.3
// (Q_xyy -> all-hierarchical-not-q-hierarchical CQs), Lemma E.4
// (Q^full_xyy -> q-hierarchical-not-sq-hierarchical CQs), and the monotone
// value-map machinery of Theorem 7.1 / Observation F.3. Each transfer must
// preserve the Shapley value of every endogenous fact EXACTLY.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/workload/generators.h"
#include "shapcq/workload/random_query.h"
#include "shapcq/workload/transfer.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }

Database SmallQxyyDb(uint64_t seed) {
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.domain_size = 3;
  options.seed = seed;
  return RandomDatabaseForQuery(MustParseQuery("Q(x) <- R(x, y), S(y)"),
                                options);
}

TEST(TransferQxyyTest, PreservesShapleyOnCanonicalTarget) {
  // Q0(y) <- R0(x), S0(x, y): all-hierarchical, not q-hierarchical
  // (free y dominated by existential x).
  ConjunctiveQuery q0 = MustParseQuery("Q0(y) <- R0(x), S0(x, y)");
  ConjunctiveQuery q_xyy = MustParseQuery("Q(x) <- R(x, y), S(y)");
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Database db = SmallQxyyDb(seed);
    for (AggregateFunction alpha :
         {AggregateFunction::Avg(), AggregateFunction::Median(),
          AggregateFunction::Max()}) {
      ValueFunctionPtr tau = MakeTauReLU(0);
      auto transfer = TransferQxyy(q0, db, tau);
      ASSERT_TRUE(transfer.ok()) << transfer.status().ToString();
      AggregateQuery source{q_xyy, tau, alpha};
      AggregateQuery target{q0, transfer->tau0, alpha};
      for (FactId f : db.EndogenousFacts()) {
        FactId image = transfer->fact_map[static_cast<size_t>(f)];
        ASSERT_GE(image, 0);
        EXPECT_EQ(*BruteForceScore(source, db, f),
                  *BruteForceScore(target, transfer->d0, image))
            << alpha.ToString() << " seed " << seed << " fact "
            << db.fact(f).ToString();
      }
    }
  }
}

TEST(TransferQxyyTest, PreservesShapleyOnWiderTarget) {
  // A larger target with an extra always-satisfied atom inside the
  // y0-dominated structure: Q0(z) <- A(w), B(w, z), C(w, z, u).
  // atoms(z) = {B, C} ⊊ atoms(w) = {A, B, C}; w existential, z free.
  ConjunctiveQuery q0 = MustParseQuery("Q0(z) <- A(w), B(w, z), C(w, z, u)");
  ASSERT_FALSE(IsQHierarchical(q0));
  ConjunctiveQuery q_xyy = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db = SmallQxyyDb(7);
  ValueFunctionPtr tau = MakeTauGreaterThan(0, R(0));
  auto transfer = TransferQxyy(q0, db, tau);
  ASSERT_TRUE(transfer.ok()) << transfer.status().ToString();
  AggregateQuery source{q_xyy, tau, AggregateFunction::Avg()};
  AggregateQuery target{q0, transfer->tau0, AggregateFunction::Avg()};
  for (FactId f : db.EndogenousFacts()) {
    FactId image = transfer->fact_map[static_cast<size_t>(f)];
    EXPECT_EQ(*BruteForceScore(source, db, f),
              *BruteForceScore(target, transfer->d0, image));
  }
}

TEST(TransferQxyyTest, RejectsWrongClass) {
  Database db = SmallQxyyDb(1);
  // q-hierarchical target: not a valid Lemma 5.3 destination.
  EXPECT_FALSE(
      TransferQxyy(MustParseQuery("Q0(x, y) <- R0(x, y), S0(y)"), db,
                   MakeTauId(0))
          .ok());
  // Non-all-hierarchical target.
  EXPECT_FALSE(
      TransferQxyy(MustParseQuery("Q0(x) <- R0(x), S0(x, y), T0(y)"), db,
                   MakeTauId(0))
          .ok());
}

TEST(TransferQxyyFullTest, PreservesShapleyOnCanonicalTarget) {
  // Q0(x, y) <- R0(x, y), S0(y): q-hierarchical, not sq-hierarchical.
  ConjunctiveQuery q0 = MustParseQuery("Q0(a, b) <- R0(a, b), S0(b)");
  ConjunctiveQuery q_full = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    Database db = SmallQxyyDb(seed);
    ValueFunctionPtr tau = MakeTauReLU(0);
    auto transfer = TransferQxyyFull(q0, db, tau);
    ASSERT_TRUE(transfer.ok()) << transfer.status().ToString();
    AggregateQuery source{q_full, tau, AggregateFunction::HasDuplicates()};
    AggregateQuery target{q0, transfer->tau0,
                          AggregateFunction::HasDuplicates()};
    for (FactId f : db.EndogenousFacts()) {
      FactId image = transfer->fact_map[static_cast<size_t>(f)];
      ASSERT_GE(image, 0);
      EXPECT_EQ(*BruteForceScore(source, db, f),
                *BruteForceScore(target, transfer->d0, image))
          << "seed " << seed;
    }
  }
}

TEST(TransferQxyyFullTest, RejectsWrongClass) {
  Database db = SmallQxyyDb(2);
  // sq-hierarchical target.
  EXPECT_FALSE(TransferQxyyFull(MustParseQuery("Q0(x) <- R0(x, y), S0(x)"),
                                db, MakeTauId(0))
                   .ok());
}

TEST(TransferQxyyTest, PreservesShapleyOnRandomTargets) {
  // Sweep random all-hierarchical-not-q-hierarchical targets from the
  // stratified query generator.
  ConjunctiveQuery q_xyy = MustParseQuery("Q(x) <- R(x, y), S(y)");
  for (uint64_t seed = 21; seed <= 26; ++seed) {
    RandomQueryOptions query_options;
    query_options.max_variables = 4;
    query_options.seed = seed;
    ConjunctiveQuery q0 =
        RandomQueryOfClass(HierarchyClass::kAllHierarchical, query_options);
    Database db = SmallQxyyDb(seed);
    ValueFunctionPtr tau = MakeTauReLU(0);
    auto transfer = TransferQxyy(q0, db, tau);
    ASSERT_TRUE(transfer.ok())
        << q0.ToString() << ": " << transfer.status().ToString();
    AggregateQuery source{q_xyy, tau, AggregateFunction::Median()};
    AggregateQuery target{q0, transfer->tau0, AggregateFunction::Median()};
    for (FactId f : db.EndogenousFacts()) {
      FactId image = transfer->fact_map[static_cast<size_t>(f)];
      ASSERT_GE(image, 0);
      EXPECT_EQ(*BruteForceScore(source, db, f),
                *BruteForceScore(target, transfer->d0, image))
          << q0.ToString() << " seed " << seed;
    }
  }
}

// ---------------------------------------------------------------------------
// Observation F.3 / Theorem 7.1
// ---------------------------------------------------------------------------

TEST(MonotoneMapTest, GammaComposedTauEqualsTauOnTransformedDb) {
  // γ(v) = 2v + 1 (monotone, injective). For every subset-level evaluation:
  // (γ ∘ τ_id ∘ Q)(D) = (τ_id ∘ Q)(π(D)), hence equal Shapley values.
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 33;
  Database db = RandomDatabaseForQuery(q, options);
  auto gamma_value = [](const Value& v) {
    return Value(2 * v.AsInt() + 1);
  };
  std::vector<FactId> fact_map;
  Database transformed = ApplyMonotoneMap(q, 0, gamma_value, db, &fact_map);
  ValueFunctionPtr gamma_tau = MakeComposedTau(
      [](const Rational& v) { return v * Rational(2) + Rational(1); },
      MakeTauId(0), "2v+1");
  for (AggregateFunction alpha :
       {AggregateFunction::Max(), AggregateFunction::Avg(),
        AggregateFunction::Median()}) {
    AggregateQuery lhs{q, gamma_tau, alpha};
    AggregateQuery rhs{q, MakeTauId(0), alpha};
    for (FactId f : db.EndogenousFacts()) {
      EXPECT_EQ(*BruteForceScore(lhs, db, f),
                *BruteForceScore(rhs, transformed,
                                 fact_map[static_cast<size_t>(f)]))
          << alpha.ToString();
    }
  }
}

TEST(MonotoneMapTest, JoinColumnsTransformConsistently) {
  // When the mapped head variable is also a join variable, all its columns
  // transform together, preserving the join structure.
  ConjunctiveQuery q = MustParseQuery("Q(y) <- R(x, y), S(y)");
  Database db;
  db.AddEndogenous("R", {Value(1), Value(5)});
  db.AddEndogenous("S", {Value(5)});
  db.AddEndogenous("S", {Value(6)});
  std::vector<FactId> fact_map;
  Database transformed = ApplyMonotoneMap(
      q, 0, [](const Value& v) { return Value(v.AsInt() * 10); }, db,
      &fact_map);
  EXPECT_TRUE(transformed.Contains("R", {Value(1), Value(50)}));
  EXPECT_TRUE(transformed.Contains("S", {Value(50)}));
  EXPECT_TRUE(transformed.Contains("S", {Value(60)}));
  // Same number of answers before and after.
  EXPECT_EQ(Evaluate(q, db).size(), Evaluate(q, transformed).size());
}

}  // namespace
}  // namespace shapcq
