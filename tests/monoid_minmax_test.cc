// Tests for the Section 7.3 extension: Min/Max with non-localized
// monotone-monoid value functions, plus the semivalue/expected-value
// additions to the sum_k framework.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/min_max.h"
#include "shapcq/shapley/min_max_monoid.h"
#include "shapcq/shapley/score.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }
Rational R(int64_t n, int64_t d) { return Rational(BigInt(n), BigInt(d)); }

TEST(MonoidTauTest, FoldsCorrectly) {
  Tuple t = {Value(3), Value(-1), Value(7)};
  EXPECT_EQ(MakeMonoidTau(MonoidKind::kPlus, {0, 1, 2})->Evaluate(t), R(9));
  EXPECT_EQ(MakeMonoidTau(MonoidKind::kMax, {0, 1})->Evaluate(t), R(3));
  EXPECT_EQ(MakeMonoidTau(MonoidKind::kMin, {0, 1})->Evaluate(t), R(-1));
  EXPECT_EQ(MakeMonoidTau(MonoidKind::kPlus, {2})->Evaluate(t), R(7));
}

// The paper's motivating example: Max(x1 + x2) over a Cartesian product —
// τ is NOT localized (x and z never share an atom), yet exact computation
// works through the monoid structure.
TEST(MonoidMinMaxTest, MaxOfSumOverCartesianProduct) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x), T(z)");
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    RandomDatabaseOptions options;
    options.facts_per_relation = 4;
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    AggregateQuery reference{q, MakeMonoidTau(MonoidKind::kPlus, {0, 1}),
                             AggregateFunction::Max()};
    auto dp = MonoidMinMaxSumK(q, MonoidKind::kPlus, {0, 1}, /*is_max=*/true,
                               db);
    auto bf = BruteForceSumK(reference, db);
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    ASSERT_TRUE(bf.ok());
    ASSERT_EQ(dp->size(), bf->size());
    for (size_t k = 0; k < bf->size(); ++k) {
      EXPECT_EQ((*dp)[k], (*bf)[k]) << "seed " << seed << " k=" << k;
    }
  }
}

TEST(MonoidMinMaxTest, MaxOfMaxOverCartesianProduct) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x), T(z)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 5;
  options.seed = 42;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery reference{q, MakeMonoidTau(MonoidKind::kMax, {0, 1}),
                           AggregateFunction::Max()};
  auto dp = MonoidMinMaxSumK(q, MonoidKind::kMax, {0, 1}, true, db);
  auto bf = BruteForceSumK(reference, db);
  ASSERT_TRUE(dp.ok());
  for (size_t k = 0; k < bf->size(); ++k) EXPECT_EQ((*dp)[k], (*bf)[k]);
}

TEST(MonoidMinMaxTest, ThreeComponentSum) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z, w) <- R(x), T(z), U(w)");
  for (uint64_t seed = 7; seed <= 9; ++seed) {
    RandomDatabaseOptions options;
    options.facts_per_relation = 3;
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    AggregateQuery reference{q, MakeMonoidTau(MonoidKind::kPlus, {0, 1, 2}),
                             AggregateFunction::Max()};
    auto dp =
        MonoidMinMaxSumK(q, MonoidKind::kPlus, {0, 1, 2}, true, db);
    auto bf = BruteForceSumK(reference, db);
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    for (size_t k = 0; k < bf->size(); ++k) {
      EXPECT_EQ((*dp)[k], (*bf)[k]) << "seed " << seed;
    }
  }
}

TEST(MonoidMinMaxTest, MixedConnectedAndProduct) {
  // Q(x, z) <- R(x, y), S(y), T(z): x and z in different components; the
  // sum x + z spans both.
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  for (uint64_t seed = 3; seed <= 6; ++seed) {
    RandomDatabaseOptions options;
    options.facts_per_relation = 3;
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    AggregateQuery reference{q, MakeMonoidTau(MonoidKind::kPlus, {0, 1}),
                             AggregateFunction::Max()};
    auto dp = MonoidMinMaxSumK(q, MonoidKind::kPlus, {0, 1}, true, db);
    auto bf = BruteForceSumK(reference, db);
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    for (size_t k = 0; k < bf->size(); ++k) {
      EXPECT_EQ((*dp)[k], (*bf)[k]) << "seed " << seed;
    }
  }
}

TEST(MonoidMinMaxTest, SinglePositionAgreesWithLocalizedEngine) {
  // With one position the monoid engine must match the localized Max DP.
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 5;
  options.seed = 17;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery localized{q, MakeTauId(0), AggregateFunction::Max()};
  auto monoid = MonoidMinMaxSumK(q, MonoidKind::kPlus, {0}, true, db);
  auto classic = MinMaxSumK(localized, db);
  ASSERT_TRUE(monoid.ok());
  ASSERT_TRUE(classic.ok());
  ASSERT_EQ(monoid->size(), classic->size());
  for (size_t k = 0; k < classic->size(); ++k) {
    EXPECT_EQ((*monoid)[k], (*classic)[k]) << "k=" << k;
  }
}

TEST(MonoidMinMaxTest, MinDuals) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x), T(z)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 23;
  Database db = RandomDatabaseForQuery(q, options);
  // Min(x + z) with the kPlus monoid.
  {
    AggregateQuery reference{q, MakeMonoidTau(MonoidKind::kPlus, {0, 1}),
                             AggregateFunction::Min()};
    auto dp = MonoidMinMaxSumK(q, MonoidKind::kPlus, {0, 1},
                               /*is_max=*/false, db);
    auto bf = BruteForceSumK(reference, db);
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    for (size_t k = 0; k < bf->size(); ++k) EXPECT_EQ((*dp)[k], (*bf)[k]);
  }
  // Min(min(x, z)) with the kMin monoid.
  {
    AggregateQuery reference{q, MakeMonoidTau(MonoidKind::kMin, {0, 1}),
                             AggregateFunction::Min()};
    auto dp = MonoidMinMaxSumK(q, MonoidKind::kMin, {0, 1}, false, db);
    auto bf = BruteForceSumK(reference, db);
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    for (size_t k = 0; k < bf->size(); ++k) EXPECT_EQ((*dp)[k], (*bf)[k]);
  }
}

TEST(MonoidMinMaxTest, RejectsInvalidCombos) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x), T(z)");
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("T", {Value(2)});
  // Max with a non-increasing monoid.
  EXPECT_FALSE(MonoidMinMaxSumK(q, MonoidKind::kMin, {0, 1}, true, db).ok());
  // Min with a non-decreasing-only monoid.
  EXPECT_FALSE(MonoidMinMaxSumK(q, MonoidKind::kMax, {0, 1}, false, db).ok());
  // Non-all-hierarchical query.
  ConjunctiveQuery rst = MustParseQuery("Q(x, y) <- R(x), S(x, y), T(y)");
  Database db2;
  db2.AddEndogenous("R", {Value(1)});
  db2.AddEndogenous("S", {Value(1), Value(2)});
  db2.AddEndogenous("T", {Value(2)});
  EXPECT_FALSE(MonoidMinMaxSumK(rst, MonoidKind::kPlus, {0, 1}, true, db2)
                   .ok());
}

TEST(MonoidMinMaxTest, ShapleyScoresThroughMonoidEngine) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x), T(z)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 31;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery reference{q, MakeMonoidTau(MonoidKind::kPlus, {0, 1}),
                           AggregateFunction::Max()};
  SumKEngine engine = [&q](const AggregateQuery&, const Database& d,
                           const SolverOptions&) {
    return MonoidMinMaxSumK(q, MonoidKind::kPlus, {0, 1}, true, d);
  };
  for (FactId f : db.EndogenousFacts()) {
    auto dp = ScoreViaSumK(reference, db, f, engine);
    auto bf = BruteForceScore(reference, db, f);
    ASSERT_TRUE(dp.ok());
    EXPECT_EQ(*dp, *bf);
  }
}

// ---------------------------------------------------------------------------
// Semivalues and expected values from sum_k
// ---------------------------------------------------------------------------

TEST(SemivalueTest, ShapleyAndBanzhafAreSpecialCases) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 5;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  FactId f = db.EndogenousFacts().front();
  Database with_f = db.WithFactExogenous(f);
  Database without_f = db.WithoutFact(f, nullptr);
  SumKSeries sf = *BruteForceSumK(a, with_f);
  SumKSeries sg = *BruteForceSumK(a, without_f);
  int64_t n = static_cast<int64_t>(sf.size());
  Combinatorics comb;
  std::vector<Rational> shapley_weights, banzhaf_weights;
  Rational banzhaf_w =
      Rational(BigInt(1), BigInt::TwoPow(static_cast<uint64_t>(n - 1)));
  for (int64_t k = 0; k < n; ++k) {
    shapley_weights.push_back(comb.ShapleyCoefficient(n, k));
    banzhaf_weights.push_back(banzhaf_w);
  }
  EXPECT_EQ(SemivalueFromSumK(sf, sg, shapley_weights),
            ScoreFromSumK(sf, sg, ScoreKind::kShapley));
  EXPECT_EQ(SemivalueFromSumK(sf, sg, banzhaf_weights),
            ScoreFromSumK(sf, sg, ScoreKind::kBanzhaf));
}

TEST(ExpectedValueTest, MatchesDirectEnumeration) {
  // E[A] over the uniform TID database with p = 1/3, by definition vs the
  // sum_k identity.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 3;
  options.seed = 9;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  SumKSeries series = *BruteForceSumK(a, db);
  Rational p = R(1, 3);
  Rational via_sumk = ExpectedValueFromSumK(series, p);
  // Direct: Σ_E p^|E| (1−p)^{n−|E|} A(E ∪ D_x) — regroup by |E| using the
  // same brute-force values, but compute independently from per-k data.
  int64_t n = static_cast<int64_t>(series.size()) - 1;
  Rational direct;
  for (int64_t k = 0; k <= n; ++k) {
    Rational weight(1);
    for (int64_t i = 0; i < k; ++i) weight *= p;
    for (int64_t i = 0; i < n - k; ++i) weight *= R(2, 3);
    direct += weight * series[static_cast<size_t>(k)];
  }
  EXPECT_EQ(via_sumk, direct);
  // Sanity: p = 1 gives A(D), p = 0 gives A(D_x).
  EXPECT_EQ(ExpectedValueFromSumK(series, R(1)), a.Evaluate(db));
  Database exo_only;
  for (FactId id = 0; id < db.num_facts(); ++id) {
    if (!db.fact(id).endogenous) {
      exo_only.AddExogenous(db.fact(id).relation, db.fact(id).args);
    }
  }
  EXPECT_EQ(ExpectedValueFromSumK(series, R(0)), a.Evaluate(exo_only));
}

}  // namespace
}  // namespace shapcq
