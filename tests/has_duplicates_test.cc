// Has-duplicates DP over sq-hierarchical CQs (Section 6 / Appendix E.2),
// cross-validated against brute force.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/has_duplicates.h"
#include "shapcq/shapley/score.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }

// sq-hierarchical query shapes (Section 6 examples included).
const char* kSqHierarchicalQueries[] = {
    "Q(x) <- R(x)",
    "Q(x, y) <- R(x, y)",
    "Q(x) <- R(x, y)",
    "Q(x) <- R(x, y), S(x)",
    "Q(x, y) <- R(x, y), S(x, y, z)",
    "Q(x, z) <- R(x, y), S(x), T(z)",
    "Q(x, z) <- R(x), T(z)",
    "Q(x) <- R(x, 1), S(x)",
};

struct SweepCase {
  std::string query;
  uint64_t seed;
};

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  for (const char* q : kSqHierarchicalQueries) {
    for (uint64_t seed = 1; seed <= 4; ++seed) cases.push_back({q, seed});
  }
  return cases;
}

class DupSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DupSweepTest, MatchesBruteForce) {
  const SweepCase& param = GetParam();
  ConjunctiveQuery q = MustParseQuery(param.query);
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.domain_size = 3;  // small domain: duplicates are common
  options.seed = param.seed;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::HasDuplicates()};
  auto dp = HasDuplicatesSumK(a, db);
  auto bf = BruteForceSumK(a, db);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  ASSERT_TRUE(bf.ok());
  ASSERT_EQ(dp->size(), bf->size());
  for (size_t k = 0; k < bf->size(); ++k) {
    EXPECT_EQ((*dp)[k], (*bf)[k]) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(SqHierarchicalSweep, DupSweepTest,
                         ::testing::ValuesIn(MakeSweep()));

TEST(HasDuplicatesTest, ShapleyScoresMatchBruteForce) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(x)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.domain_size = 3;
  options.seed = 6;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::HasDuplicates()};
  for (FactId f : db.EndogenousFacts()) {
    auto dp = ScoreViaSumK(a, db, f, HasDuplicatesSumK);
    auto bf = BruteForceScore(a, db, f);
    ASSERT_TRUE(dp.ok());
    EXPECT_EQ(*dp, *bf) << db.fact(f).ToString();
  }
}

TEST(HasDuplicatesTest, HandcraftedDuplicateScenario) {
  // Q(x) <- R(x, y): two R-facts with the same x produce ONE answer (set
  // semantics), so no duplicate; duplicates need τ-collisions across
  // different x. τ = x mod nothing... use τ_>0: x=1 and x=2 both map to 1.
  Database db;
  db.AddEndogenous("R", {Value(1), Value(5)});
  db.AddEndogenous("R", {Value(2), Value(6)});
  db.AddEndogenous("R", {Value(-1), Value(7)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y)");
  AggregateQuery a{q, MakeTauGreaterThan(0, R(0)),
                   AggregateFunction::HasDuplicates()};
  auto dp = HasDuplicatesSumK(a, db);
  auto bf = BruteForceSumK(a, db);
  ASSERT_TRUE(dp.ok());
  for (size_t k = 0; k < bf->size(); ++k) EXPECT_EQ((*dp)[k], (*bf)[k]);
  // Sanity: with both positive x present the bag is {1, 1, 0} -> Dup = 1.
  EXPECT_EQ(a.Evaluate(db), R(1));
}

TEST(HasDuplicatesTest, Proposition73ThirdCase) {
  // Dup ∘ τ²_id ∘ Q^full_xyy: q-hierarchical but NOT sq-hierarchical, yet
  // tractable because τ²_id depends on y, which occurs in every atom
  // (Proposition 7.3(3)). The engine must accept it and agree with brute
  // force.
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 5;
  options.domain_size = 3;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    AggregateQuery a{q, MakeTauId(1), AggregateFunction::HasDuplicates()};
    auto dp = HasDuplicatesSumK(a, db);
    auto bf = BruteForceSumK(a, db);
    ASSERT_TRUE(dp.ok()) << dp.status().ToString();
    for (size_t k = 0; k < bf->size(); ++k) {
      EXPECT_EQ((*dp)[k], (*bf)[k]) << "seed " << seed << " k=" << k;
    }
  }
}

TEST(HasDuplicatesTest, RejectsHardLocalization) {
  // Dup ∘ τ¹_id ∘ Q^full_xyy is the FP^#P-hard case of Lemma E.2(2):
  // τ depends on x, which is missing from the S atom.
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  Database db;
  db.AddEndogenous("R", {Value(1), Value(2)});
  db.AddEndogenous("S", {Value(2)});
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::HasDuplicates()};
  EXPECT_FALSE(HasDuplicatesSumK(a, db).ok());
}

TEST(HasDuplicatesTest, RejectsNonQHierarchical) {
  ConjunctiveQuery q_xyy = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db;
  db.AddEndogenous("R", {Value(1), Value(2)});
  db.AddEndogenous("S", {Value(2)});
  AggregateQuery a{q_xyy, MakeTauReLU(0), AggregateFunction::HasDuplicates()};
  EXPECT_FALSE(HasDuplicatesSumK(a, db).ok());
}

TEST(HasDuplicatesTest, ConstantTauOnCrossProduct) {
  // With τ ≡ c, Dup = [#answers >= 2]; exercised on a cross product where
  // the replication logic matters.
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x), T(z)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 44;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeConstantTau(R(9)),
                   AggregateFunction::HasDuplicates()};
  auto dp = HasDuplicatesSumK(a, db);
  auto bf = BruteForceSumK(a, db);
  ASSERT_TRUE(dp.ok());
  for (size_t k = 0; k < bf->size(); ++k) EXPECT_EQ((*dp)[k], (*bf)[k]);
}

TEST(HasDuplicatesTest, BooleanQueryNeverHasDuplicates) {
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 15;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeConstantTau(R(1)),
                   AggregateFunction::HasDuplicates()};
  auto dp = HasDuplicatesSumK(a, db);
  ASSERT_TRUE(dp.ok());
  for (const Rational& v : *dp) EXPECT_TRUE(v.is_zero());
}

}  // namespace
}  // namespace shapcq
