// Tests for the persistent compiled-artifact store (persist/artifact.h).
//
// Two properties carry the feature:
//   * round trip — a warm-started cache serves scores bitwise-identical to
//     cold compilation, and reloaded plans keep their fingerprints;
//   * fail-safety — a missing file is a clean first boot, and every flavor
//     of corruption (truncation, flipped payload byte, wrong version,
//     wrong magic, trailing garbage) is rejected with an error the caller
//     can count and ignore, leaving the caches empty, the process alive.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/lineage/circuit_cache.h"
#include "shapcq/lineage/engine.h"
#include "shapcq/persist/artifact.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/rational.h"

namespace shapcq {
namespace {

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "shapcq_artifact_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

Database WorkloadDatabase() {
  Database db;
  auto v = [](int64_t x) { return Value(x); };
  db.AddEndogenous("R", {v(1), v(10)});
  db.AddEndogenous("R", {v(1), v(11)});
  db.AddEndogenous("R", {v(2), v(10)});
  db.AddEndogenous("R", {v(2), v(12)});
  db.AddEndogenous("S", {v(10)});
  db.AddEndogenous("S", {v(11)});
  db.AddEndogenous("S", {v(12)});
  return db;
}

AggregateQuery WorkloadQuery() {
  return AggregateQuery{MustParseQuery("Q(x) <- R(x, y), S(y)"), MakeTauId(0),
                        AggregateFunction::Count()};
}

using Scores = std::vector<std::pair<FactId, Rational>>;

Scores MustScoreAll(const AggregateQuery& a, const Database& db,
                    bool share_circuits) {
  SolverOptions options;
  options.lineage.share_circuits = share_circuits;
  StatusOr<Scores> scores = LineageCircuitScoreAll(a, db, options);
  EXPECT_TRUE(scores.ok()) << scores.status().ToString();
  return scores.ok() ? *scores : Scores{};
}

// --- Round trip ------------------------------------------------------------

TEST(ArtifactTest, CircuitRoundTripServesBitwiseIdenticalScores) {
  const std::string dir = FreshDir("circuit_roundtrip");
  AggregateQuery a = WorkloadQuery();
  Database db = WorkloadDatabase();
  Scores baseline = MustScoreAll(a, db, /*share_circuits=*/false);
  ASSERT_FALSE(baseline.empty());

  // Populate, snapshot, persist.
  CircuitCache::Global().Clear();
  MustScoreAll(a, db, /*share_circuits=*/true);
  auto snapshot = CircuitCache::Global().Snapshot();
  ASSERT_FALSE(snapshot.empty());
  ArtifactWriter writer(dir);
  StatusOr<ArtifactWriteStats> written = writer.WriteCircuits(snapshot);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written->circuits, snapshot.size());
  EXPECT_GT(written->bytes, 0u);

  // Cold process: reload and verify every entry survives validation.
  CircuitCache::Global().Clear();
  ArtifactReader reader(dir);
  StatusOr<ArtifactLoadStats> loaded =
      reader.ReadCircuits(&CircuitCache::Global());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->found);
  EXPECT_EQ(loaded->circuits, snapshot.size());
  EXPECT_EQ(loaded->skipped, 0u);

  // The warm cache must serve everything (no new compilation) and the
  // scores must equal the share-disabled baseline bit for bit.
  CircuitCache::Stats before = CircuitCache::Global().stats();
  Scores warm = MustScoreAll(a, db, /*share_circuits=*/true);
  CircuitCache::Stats after = CircuitCache::Global().stats();
  EXPECT_EQ(after.inserts, before.inserts);
  EXPECT_GT(after.hits, before.hits);
  ASSERT_EQ(warm.size(), baseline.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(warm[i].first, baseline[i].first);
    EXPECT_EQ(warm[i].second, baseline[i].second);
  }
}

TEST(ArtifactTest, PlanRoundTripPreservesFingerprints) {
  const std::string dir = FreshDir("plan_roundtrip");
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  PlanCache source;
  source.GetOrCompile(
      AggregateQuery{q, MakeTauId(0), AggregateFunction::Sum()});
  source.GetOrCompile(
      AggregateQuery{q, MakeTauId(0), AggregateFunction::Count()},
      ScoreKind::kBanzhaf);
  source.GetOrCompile(AggregateQuery{
      q, MakeTauGreaterThan(0, Rational(3, 2)), AggregateFunction::Sum()});
  source.GetOrCompile(
      AggregateQuery{q, MakeTauReLU(0), AggregateFunction::Median()});
  source.GetOrCompile(AggregateQuery{
      q, MakeConstantTau(Rational(7)), AggregateFunction::Max()});
  auto plans = source.Snapshot();
  ASSERT_EQ(plans.size(), 5u);

  ArtifactWriter writer(dir);
  StatusOr<ArtifactWriteStats> written = writer.WritePlans(plans);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written->plans, plans.size());

  PlanCache restored;
  ArtifactReader reader(dir);
  StatusOr<ArtifactLoadStats> loaded = reader.ReadPlans(&restored);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->found);
  EXPECT_EQ(loaded->plans, plans.size());
  EXPECT_EQ(loaded->skipped, 0u);

  // Reconstructed plans recompiled from text carry the same fingerprints —
  // the loader's own verification, double-checked here from the outside.
  std::set<std::string> want, got;
  for (const auto& plan : plans) want.insert(plan->fingerprint());
  for (const auto& plan : restored.Snapshot()) got.insert(plan->fingerprint());
  EXPECT_EQ(want, got);
}

// --- Fail-safety -----------------------------------------------------------

TEST(ArtifactTest, MissingFilesAreACleanFirstBoot) {
  ArtifactReader reader(FreshDir("missing"));
  PlanCache plans;
  CircuitCache circuits;
  StatusOr<ArtifactLoadStats> p = reader.ReadPlans(&plans);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_FALSE(p->found);
  EXPECT_EQ(p->plans, 0u);
  StatusOr<ArtifactLoadStats> c = reader.ReadCircuits(&circuits);
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_FALSE(c->found);
  EXPECT_EQ(c->circuits, 0u);
}

// Writes a valid circuits artifact and returns its path.
std::string WriteCircuitArtifact(const std::string& dir) {
  CircuitCache::Global().Clear();
  AggregateQuery a = WorkloadQuery();
  Database db = WorkloadDatabase();
  MustScoreAll(a, db, /*share_circuits=*/true);
  ArtifactWriter writer(dir);
  StatusOr<ArtifactWriteStats> written =
      writer.WriteCircuits(CircuitCache::Global().Snapshot());
  EXPECT_TRUE(written.ok()) << written.status().ToString();
  return dir + "/" + kCircuitArtifactFile;
}

// Asserts a corrupted circuits file is rejected with an error and loads
// nothing.
void ExpectRejected(const std::string& dir, const std::string& what) {
  CircuitCache cache;
  ArtifactReader reader(dir);
  StatusOr<ArtifactLoadStats> loaded = reader.ReadCircuits(&cache);
  EXPECT_FALSE(loaded.ok()) << what << ": corruption must surface as an error";
  EXPECT_EQ(cache.stats().entries, 0u) << what;
}

TEST(ArtifactTest, TruncatedFileIsRejected) {
  const std::string dir = FreshDir("truncated");
  const std::string path = WriteCircuitArtifact(dir);
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 40u);

  WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));
  ExpectRejected(dir, "mid-payload truncation");
  WriteFileBytes(path, bytes.substr(0, 10));
  ExpectRejected(dir, "mid-header truncation");
}

TEST(ArtifactTest, FlippedPayloadByteIsRejected) {
  const std::string dir = FreshDir("flipped");
  const std::string path = WriteCircuitArtifact(dir);
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() - 1] ^= 0x01;  // checksum no longer matches
  WriteFileBytes(path, bytes);
  ExpectRejected(dir, "flipped payload byte");
}

TEST(ArtifactTest, WrongVersionIsRejected) {
  const std::string dir = FreshDir("version");
  const std::string path = WriteCircuitArtifact(dir);
  std::string bytes = ReadFileBytes(path);
  bytes[8] ^= 0x7f;  // the u32 version field follows the 8-byte magic
  WriteFileBytes(path, bytes);
  ExpectRejected(dir, "future format version");
}

TEST(ArtifactTest, WrongMagicIsRejected) {
  const std::string dir = FreshDir("magic");
  const std::string path = WriteCircuitArtifact(dir);
  std::string bytes = ReadFileBytes(path);
  bytes[0] ^= 0xff;
  WriteFileBytes(path, bytes);
  ExpectRejected(dir, "foreign magic");
}

TEST(ArtifactTest, TrailingGarbageIsRejected) {
  const std::string dir = FreshDir("trailing");
  const std::string path = WriteCircuitArtifact(dir);
  std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes + "extra");
  ExpectRejected(dir, "trailing garbage");
}

TEST(ArtifactTest, CorruptPlansFileIsRejectedIndependently) {
  // Plans and circuits are independent files: a rotten plans.shapcq must
  // not poison circuit loading.
  const std::string dir = FreshDir("independent");
  WriteCircuitArtifact(dir);
  WriteFileBytes(dir + "/" + kPlanArtifactFile, "not an artifact");

  CircuitCache circuits;
  PlanCache plans;
  ArtifactReader reader(dir);
  EXPECT_FALSE(reader.ReadPlans(&plans).ok());
  StatusOr<ArtifactLoadStats> c = reader.ReadCircuits(&circuits);
  EXPECT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_GT(c->circuits, 0u);
}

// --- Canonical τ token parser ----------------------------------------------

TEST(ParseCanonicalTauTokenTest, RoundTripsTheBuiltins) {
  std::vector<ValueFunctionPtr> taus = {
      MakeConstantTau(Rational(7)),
      MakeConstantTau(Rational(-3, 4)),
      MakeTauId(0),
      MakeTauId(2),
      MakeTauGreaterThan(1, Rational(5, 2)),
      MakeTauReLU(1),
  };
  Tuple sample = {Value(int64_t{-2}), Value(int64_t{3}), Value(int64_t{11})};
  for (const ValueFunctionPtr& tau : taus) {
    ASSERT_TRUE(tau->HasCanonicalFingerprint()) << tau->ToString();
    StatusOr<ValueFunctionPtr> parsed =
        ParseCanonicalTauToken(tau->FingerprintToken());
    ASSERT_TRUE(parsed.ok())
        << tau->FingerprintToken() << ": " << parsed.status().ToString();
    // Same token (so the same plan-cache key) and same semantics.
    EXPECT_EQ((*parsed)->FingerprintToken(), tau->FingerprintToken());
    EXPECT_EQ((*parsed)->Evaluate(sample), tau->Evaluate(sample));
    EXPECT_EQ((*parsed)->DependsOn(), tau->DependsOn());
  }
}

TEST(ParseCanonicalTauTokenTest, RejectsMalformedTokens) {
  const char* bad[] = {
      "",          "garbage",    "tau_id^0",  "tau_id^",    "tau_id^x",
      "const(1",   "const()",    "tau_>^2",   "tau_>1",     "tau_ReLU^-1",
      "tau_id^999999999",        "callback:anything#7",
  };
  for (const char* token : bad) {
    EXPECT_FALSE(ParseCanonicalTauToken(token).ok()) << token;
  }
}

}  // namespace
}  // namespace shapcq
