#include "shapcq/util/combinatorics.h"

#include <gtest/gtest.h>

namespace shapcq {
namespace {

TEST(CombinatoricsTest, FactorialBasics) {
  Combinatorics comb;
  EXPECT_EQ(comb.Factorial(0).ToInt64(), 1);
  EXPECT_EQ(comb.Factorial(1).ToInt64(), 1);
  EXPECT_EQ(comb.Factorial(5).ToInt64(), 120);
  EXPECT_EQ(comb.Factorial(20).ToString(), "2432902008176640000");
  EXPECT_EQ(comb.Factorial(25).ToString(), "15511210043330985984000000");
}

TEST(CombinatoricsTest, BinomialBasics) {
  Combinatorics comb;
  EXPECT_EQ(comb.Binomial(0, 0).ToInt64(), 1);
  EXPECT_EQ(comb.Binomial(5, 2).ToInt64(), 10);
  EXPECT_EQ(comb.Binomial(5, 0).ToInt64(), 1);
  EXPECT_EQ(comb.Binomial(5, 5).ToInt64(), 1);
  EXPECT_TRUE(comb.Binomial(5, 6).is_zero());
  EXPECT_TRUE(comb.Binomial(5, -1).is_zero());
  EXPECT_EQ(comb.Binomial(60, 30).ToString(), "118264581564861424");
}

TEST(CombinatoricsTest, PascalIdentity) {
  Combinatorics comb;
  for (int64_t n = 1; n <= 40; ++n) {
    for (int64_t k = 0; k <= n; ++k) {
      EXPECT_EQ(comb.Binomial(n, k),
                comb.Binomial(n - 1, k - 1) + comb.Binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CombinatoricsTest, BinomialRowSumsToTwoPow) {
  Combinatorics comb;
  for (int64_t n = 0; n <= 64; n += 16) {
    BigInt sum;
    for (int64_t k = 0; k <= n; ++k) sum += comb.Binomial(n, k);
    EXPECT_EQ(sum, BigInt::TwoPow(static_cast<uint64_t>(n)));
  }
}

TEST(CombinatoricsTest, ShapleyCoefficientsMatchFactorialFormula) {
  Combinatorics comb;
  for (int64_t n = 1; n <= 12; ++n) {
    for (int64_t k = 0; k < n; ++k) {
      Rational expected(comb.Factorial(k) * comb.Factorial(n - k - 1),
                        comb.Factorial(n));
      EXPECT_EQ(comb.ShapleyCoefficient(n, k), expected)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CombinatoricsTest, ShapleyCoefficientsSumToOneOverSizes) {
  // sum_k C(n-1,k) * q_k = 1: the coefficients are a probability
  // distribution over the possible coalition sizes before a fixed player.
  Combinatorics comb;
  for (int64_t n = 1; n <= 20; ++n) {
    Rational total;
    for (int64_t k = 0; k < n; ++k) {
      total += Rational(comb.Binomial(n - 1, k)) * comb.ShapleyCoefficient(n, k);
    }
    EXPECT_EQ(total, Rational(1)) << "n=" << n;
  }
}

TEST(CombinatoricsTest, HarmonicNumbers) {
  Combinatorics comb;
  EXPECT_EQ(comb.Harmonic(0), Rational(0));
  EXPECT_EQ(comb.Harmonic(1), Rational(1));
  EXPECT_EQ(comb.Harmonic(2), Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(comb.Harmonic(4), Rational(BigInt(25), BigInt(12)));
}

TEST(CombinatoricsTest, StatelessHelpersAgree) {
  Combinatorics comb;
  EXPECT_EQ(Factorial(10), comb.Factorial(10));
  EXPECT_EQ(Binomial(30, 12), comb.Binomial(30, 12));
}

}  // namespace
}  // namespace shapcq
