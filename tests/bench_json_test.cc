// The BENCH_JSON emitter must produce strictly valid JSON: CI scrapes the
// telemetry lines and pipes them through jq, so a control character in a
// query string or a NaN speedup must not corrupt the stream. This test
// round-trips JsonLine output through a minimal (but strict) JSON object
// parser.

#include <cmath>
#include <limits>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_util.h"

namespace shapcq {
namespace {

// A strict parser for the subset JsonLine emits: one flat object whose
// values are strings, numbers, booleans, or null. Fails the test on any
// syntax error; decodes \", \\ and \uXXXX escapes.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string text) : text_(std::move(text)) {}

  // Returns false on any deviation from strict JSON.
  bool Parse() {
    pos_ = 0;
    if (!Consume('{')) return false;
    bool first = true;
    while (true) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        break;
      }
      if (!first && !Consume(',')) return false;
      first = false;
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      if (!ParseValue(key)) return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

  const std::map<std::string, std::string>& strings() const {
    return strings_;
  }
  const std::map<std::string, double>& numbers() const { return numbers_; }
  const std::map<std::string, bool>& booleans() const { return booleans_; }
  bool IsNull(const std::string& key) const { return nulls_.count(key) > 0; }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      // Raw control characters are invalid inside JSON strings.
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char escape = text_[pos_++];
        if (escape == '"' || escape == '\\' || escape == '/') {
          out->push_back(escape);
        } else if (escape == 'n') {
          out->push_back('\n');
        } else if (escape == 't') {
          out->push_back('\t');
        } else if (escape == 'r') {
          out->push_back('\r');
        } else if (escape == 'b') {
          out->push_back('\b');
        } else if (escape == 'f') {
          out->push_back('\f');
        } else if (escape == 'u') {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          if (code > 0xFF) return false;  // emitter only escapes bytes
          out->push_back(static_cast<char>(code));
        } else {
          return false;
        }
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    return false;  // unterminated
  }
  bool ParseValue(const std::string& key) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '"') {
      std::string value;
      if (!ParseString(&value)) return false;
      strings_[key] = std::move(value);
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      booleans_[key] = true;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      booleans_[key] = false;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      nulls_[key] = true;
      return true;
    }
    // Number: [-] digits [. digits] [e[+-]digits] — strict JSON grammar.
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t int_digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      ++int_digits;
    }
    if (int_digits == 0) return false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac_digits = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        ++frac_digits;
      }
      if (frac_digits == 0) return false;
    }
    numbers_[key] = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  std::string text_;
  size_t pos_ = 0;
  std::map<std::string, std::string> strings_;
  std::map<std::string, double> numbers_;
  std::map<std::string, bool> booleans_;
  std::map<std::string, bool> nulls_;
};

TEST(JsonLineTest, RoundTripsPlainFields) {
  bench::JsonLine line("compute_all");
  line.Str("query", "Q(x) <- R(x), S(x, y)")
      .Int("facts", 240)
      .Num("ms", 304.125)
      .Bool("identical", true);
  FlatJsonParser parser(line.Json());
  ASSERT_TRUE(parser.Parse()) << line.Json();
  EXPECT_EQ(parser.strings().at("name"), "compute_all");
  EXPECT_EQ(parser.strings().at("query"), "Q(x) <- R(x), S(x, y)");
  EXPECT_EQ(parser.numbers().at("facts"), 240);
  EXPECT_DOUBLE_EQ(parser.numbers().at("ms"), 304.125);
  EXPECT_TRUE(parser.booleans().at("identical"));
}

TEST(JsonLineTest, EscapesControlCharactersAndRoundTrips) {
  const std::string nasty = "line1\nline2\ttab\rcr\x01\x1f end \"quoted\" \\";
  bench::JsonLine line("escapes");
  line.Str("s", nasty);
  std::string json = line.Json();
  // No raw control byte may survive into the emitted text.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << json;
  }
  FlatJsonParser parser(json);
  ASSERT_TRUE(parser.Parse()) << json;
  EXPECT_EQ(parser.strings().at("s"), nasty);
}

TEST(JsonLineTest, NonFiniteNumbersBecomeNull) {
  bench::JsonLine line("nonfinite");
  line.Num("nan", std::numeric_limits<double>::quiet_NaN())
      .Num("inf", std::numeric_limits<double>::infinity())
      .Num("ninf", -std::numeric_limits<double>::infinity())
      .Num("ok", 1.5);
  FlatJsonParser parser(line.Json());
  ASSERT_TRUE(parser.Parse()) << line.Json();
  EXPECT_TRUE(parser.IsNull("nan"));
  EXPECT_TRUE(parser.IsNull("inf"));
  EXPECT_TRUE(parser.IsNull("ninf"));
  EXPECT_DOUBLE_EQ(parser.numbers().at("ok"), 1.5);
}

TEST(JsonLineTest, HugeFiniteNumbersStayWellFormed) {
  bench::JsonLine line("huge");
  line.Num("big", 1e300).Num("tiny", -1e300);
  FlatJsonParser parser(line.Json());
  ASSERT_TRUE(parser.Parse()) << line.Json();
  EXPECT_DOUBLE_EQ(parser.numbers().at("big"), 1e300);
  EXPECT_DOUBLE_EQ(parser.numbers().at("tiny"), -1e300);
}

}  // namespace
}  // namespace shapcq
