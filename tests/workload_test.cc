// Tests for the workload generators, including numeric faithfulness of the
// paper's hardness-reduction constructions (Figure 3, Lemma D.4/D.5,
// Lemma E.2) on small instances.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }

TEST(RandomDatabaseTest, DeterministicPerSeed) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.seed = 5;
  Database a = RandomDatabaseForQuery(q, options);
  Database b = RandomDatabaseForQuery(q, options);
  EXPECT_EQ(a.ToString(), b.ToString());
  options.seed = 6;
  Database c = RandomDatabaseForQuery(q, options);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(RandomDatabaseTest, GeneratesRequestedShape) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 8;
  Database db = RandomDatabaseForQuery(q, options);
  EXPECT_GT(db.FactsOf("R").size(), 0u);
  EXPECT_GT(db.FactsOf("S").size(), 0u);
  EXPECT_LE(db.FactsOf("R").size(), 8u);
  EXPECT_EQ(db.Arity("R"), 2);
  EXPECT_EQ(db.Arity("S"), 1);
}

TEST(RandomSetCoverTest, ValidInstances) {
  SetCoverInstance instance = RandomSetCover(5, 7, 3, 42);
  EXPECT_EQ(instance.universe_size, 5);
  EXPECT_EQ(instance.sets.size(), 7u);
  for (const auto& set : instance.sets) {
    EXPECT_GE(set.size(), 1u);
    EXPECT_LE(set.size(), 3u);
    for (int element : set) {
      EXPECT_GE(element, 1);
      EXPECT_LE(element, 5);
    }
  }
}

// ---------------------------------------------------------------------------
// Figure 3: the Avg ∘ τ_ReLU ∘ Q_xyy reduction from #Set-Cover.
//
// We verify the construction's game semantics from first principles: with
// no r-padding selected before S(0), adding S(0) moves the average from 0
// to 1/(i + q + 2) where i is the number of covered elements (i covered
// answers + (q+1) ballast zeros + the single answer x = 1). Hence
//
//   Shapley(S(0)) = Σ_j Σ_i  j!(m+r−j)!/(m+r+1)! · Z_{i,j} / (i + q + 2)
//
// with Z_{i,j} = #{collections of j sets covering exactly i elements}.
// (The paper's prose says i+q+1; the constructed database has q+1 ballast
// rows plus the x=1 answer, giving i+q+2 — the shape of the linear system
// and the hardness argument are unaffected.)
// ---------------------------------------------------------------------------

TEST(SetCoverAvgTest, ShapleyMatchesCoverCountFormula) {
  SetCoverInstance instance;
  instance.universe_size = 3;
  instance.sets = {{1, 2}, {2, 3}, {3}};
  const int m = 3;
  for (int q = 0; q <= 2; ++q) {
    for (int r = 0; r <= 2; ++r) {
      FactId s_zero = -1;
      Database db = SetCoverAvgDatabase(instance, q, r, &s_zero);
      AggregateQuery a{MustParseQuery("Q(x) <- R(x, y), S(y)"),
                       MakeTauReLU(0), AggregateFunction::Avg()};
      auto brute = BruteForceScore(a, db, s_zero);
      ASSERT_TRUE(brute.ok());
      // Z_{i,j} by enumeration over collections of sets.
      Combinatorics comb;
      Rational expected;
      for (int mask = 0; mask < (1 << m); ++mask) {
        std::set<int> covered;
        int j = 0;
        for (int s = 0; s < m; ++s) {
          if (mask & (1 << s)) {
            ++j;
            covered.insert(instance.sets[static_cast<size_t>(s)].begin(),
                           instance.sets[static_cast<size_t>(s)].end());
          }
        }
        int i = static_cast<int>(covered.size());
        Rational coefficient(
            comb.Factorial(j) * comb.Factorial(m + r - j),
            comb.Factorial(m + r + 1));
        expected += coefficient / Rational(i + q + 2);
      }
      EXPECT_EQ(*brute, expected) << "q=" << q << " r=" << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Lemma D.4/D.5: the quantile game database simulates the Set-Cover game.
// ---------------------------------------------------------------------------

TEST(SetCoverQuantileTest, UtilityEqualsSetCoverGame) {
  SetCoverInstance instance;
  instance.universe_size = 3;
  instance.sets = {{1, 2}, {2, 3}, {1}, {3}};
  const int m = 4;
  const int qa = 1, qb = 2;  // median
  Database db = SetCoverQuantileDatabase(instance, qa, qb);
  AggregateQuery a{MustParseQuery("Q(x) <- R(x, y), S(y)"),
                   MakeTauGreaterThan(0, R(0)),
                   AggregateFunction::Quantile(Rational(BigInt(qa),
                                                        BigInt(qb)))};
  // Check A(C ∪ D_x) == [C covers X] for every coalition C of S-facts.
  std::vector<FactId> s_facts;
  for (FactId id : db.EndogenousFacts()) s_facts.push_back(id);
  ASSERT_EQ(s_facts.size(), static_cast<size_t>(m));
  for (int mask = 0; mask < (1 << m); ++mask) {
    Database sub;
    std::set<int> covered;
    for (FactId id = 0; id < db.num_facts(); ++id) {
      const Fact& fact = db.fact(id);
      if (!fact.endogenous) {
        sub.AddExogenous(fact.relation, fact.args);
      }
    }
    for (int s = 0; s < m; ++s) {
      if (mask & (1 << s)) {
        sub.AddEndogenous("S", db.fact(s_facts[static_cast<size_t>(s)]).args);
        covered.insert(instance.sets[static_cast<size_t>(s)].begin(),
                       instance.sets[static_cast<size_t>(s)].end());
      }
    }
    bool covers = static_cast<int>(covered.size()) == instance.universe_size;
    EXPECT_EQ(a.Evaluate(sub), covers ? R(1) : R(0)) << "mask " << mask;
  }
}

TEST(SetCoverQuantileTest, ShapleyEqualsSetCoverGameShapley) {
  SetCoverInstance instance;
  instance.universe_size = 2;
  instance.sets = {{1}, {2}, {1, 2}};
  const int m = 3;
  Database db = SetCoverQuantileDatabase(instance, 1, 2);
  AggregateQuery a{MustParseQuery("Q(x) <- R(x, y), S(y)"),
                   MakeTauGreaterThan(0, R(0)), AggregateFunction::Median()};
  // Direct Shapley of the set-cover game (ν = 1 iff coalition covers).
  Combinatorics comb;
  for (int target = 0; target < m; ++target) {
    Rational expected;
    for (int mask = 0; mask < (1 << m); ++mask) {
      if (mask & (1 << target)) continue;
      auto covers = [&instance](int bits) {
        std::set<int> covered;
        for (size_t s = 0; s < instance.sets.size(); ++s) {
          if (bits & (1 << s)) {
            covered.insert(instance.sets[s].begin(), instance.sets[s].end());
          }
        }
        return static_cast<int>(covered.size()) == instance.universe_size;
      };
      int delta = (covers(mask | (1 << target)) ? 1 : 0) -
                  (covers(mask) ? 1 : 0);
      if (delta != 0) {
        expected += comb.ShapleyCoefficient(m, __builtin_popcount(mask)) *
                    Rational(delta);
      }
    }
    // S(i) facts are endogenous in insertion order: S(1), S(2), S(3).
    FactId s_fact = *db.FindFact("S", {Value(target + 1)});
    auto brute = BruteForceScore(a, db, s_fact);
    ASSERT_TRUE(brute.ok());
    EXPECT_EQ(*brute, expected) << "set " << target + 1;
  }
}

// ---------------------------------------------------------------------------
// Lemma E.2: the Dup database counts pairwise-disjoint collections.
//
// We pair the D_r construction with Q^full_xyy(x, y) <- R(x, y), S(y) and
// τ¹_ReLU (the proof's case analysis: an intersecting pair yields two
// answers (i, j1), (i, j2) with equal τ-value i; the lemma's statement
// writes Q_xyy, under which answers are single x values and set semantics
// would collapse the duplicate — see DESIGN.md).
//
//   Shapley(S(0)) = Σ_j j!(m+r−j)!/(m+r+1)! · Z_j,
//   Z_j = #{j pairwise-disjoint sets}.
// ---------------------------------------------------------------------------

TEST(ExactCoverDupTest, ShapleyMatchesDisjointCollectionCounts) {
  SetCoverInstance instance;
  instance.universe_size = 4;
  instance.sets = {{1, 2}, {3, 4}, {2, 3}, {1, 4}};
  const int m = 4;
  for (int r = 0; r <= 2; ++r) {
    FactId s_zero = -1;
    Database db = ExactCoverDupDatabase(instance, r, &s_zero);
    AggregateQuery a{MustParseQuery("Q(x, y) <- R(x, y), S(y)"),
                     MakeTauReLU(0), AggregateFunction::HasDuplicates()};
    auto brute = BruteForceScore(a, db, s_zero);
    ASSERT_TRUE(brute.ok());
    Combinatorics comb;
    Rational expected;
    for (int mask = 0; mask < (1 << m); ++mask) {
      // Pairwise disjoint?
      std::vector<int> chosen;
      for (int s = 0; s < m; ++s) {
        if (mask & (1 << s)) chosen.push_back(s);
      }
      bool disjoint = true;
      for (size_t i = 0; i < chosen.size() && disjoint; ++i) {
        for (size_t j = i + 1; j < chosen.size() && disjoint; ++j) {
          for (int e : instance.sets[static_cast<size_t>(chosen[i])]) {
            const auto& other = instance.sets[static_cast<size_t>(chosen[j])];
            if (std::find(other.begin(), other.end(), e) != other.end()) {
              disjoint = false;
              break;
            }
          }
        }
      }
      if (!disjoint) continue;
      int j = static_cast<int>(chosen.size());
      expected += Rational(comb.Factorial(j) * comb.Factorial(m + r - j),
                           comb.Factorial(m + r + 1));
    }
    EXPECT_EQ(*brute, expected) << "r=" << r;
  }
}

}  // namespace
}  // namespace shapcq
