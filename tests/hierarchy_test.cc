#include "shapcq/hierarchy/classification.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/query/parser.h"

namespace shapcq {
namespace {

// ---------------------------------------------------------------------------
// The five example CQs of Figure 1 (each belongs to its class but not to the
// more restrictive one).
// ---------------------------------------------------------------------------

TEST(Figure1Test, SqHierarchicalExample) {
  // Q(x) <- R(x), S(x, y)
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x), S(x, y)");
  EXPECT_EQ(Classify(q), HierarchyClass::kSqHierarchical);
}

TEST(Figure1Test, QHierarchicalExample) {
  // Q(x, y) <- R(x), S(x, y): free y has atoms(y)={S} ⊊ atoms(x)={R,S}.
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x), S(x, y)");
  EXPECT_EQ(Classify(q), HierarchyClass::kQHierarchical);
  EXPECT_TRUE(IsQHierarchical(q));
  EXPECT_FALSE(IsSqHierarchical(q));
}

TEST(Figure1Test, AllHierarchicalExample) {
  // Q(y) <- R(x), S(x, y): existential x dominates free y.
  ConjunctiveQuery q = MustParseQuery("Q(y) <- R(x), S(x, y)");
  EXPECT_EQ(Classify(q), HierarchyClass::kAllHierarchical);
  EXPECT_TRUE(IsAllHierarchical(q));
  EXPECT_FALSE(IsQHierarchical(q));
}

TEST(Figure1Test, ExistsHierarchicalExample) {
  // Q(x) <- R(x), S(x, y), T(y): the classic non-hierarchical pattern on
  // {x, y}, but x is free so only y counts for ∃-hierarchy.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x), S(x, y), T(y)");
  EXPECT_EQ(Classify(q), HierarchyClass::kExistsHierarchical);
  EXPECT_TRUE(IsExistsHierarchical(q));
  EXPECT_FALSE(IsAllHierarchical(q));
}

TEST(Figure1Test, GeneralExample) {
  // Q() <- R(x), S(x, y), T(y): Boolean RST, not hierarchical at all.
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x), S(x, y), T(y)");
  EXPECT_EQ(Classify(q), HierarchyClass::kGeneral);
  EXPECT_FALSE(IsExistsHierarchical(q));
}

// ---------------------------------------------------------------------------
// The paper's running queries
// ---------------------------------------------------------------------------

TEST(ClassificationTest, QxyyIsAllHierarchicalNotQHierarchical) {
  // Q_xyy(x) <- R(x, y), S(y): Equation (7), the simplest all-hierarchical
  // CQ that is not q-hierarchical.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  EXPECT_EQ(Classify(q), HierarchyClass::kAllHierarchical);
}

TEST(ClassificationTest, QxyyFullIsQHierarchicalNotSq) {
  // Q^full_xyy(x, y) <- R(x, y), S(y): q-hierarchical, not sq-hierarchical
  // (free x has atoms(x)={R} ⊊ atoms(y)={R,S}).
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  EXPECT_EQ(Classify(q), HierarchyClass::kQHierarchical);
}

TEST(ClassificationTest, Qxyyz) {
  // Q_xyyz(x, z) <- R(x, y), S(y), T(z): Section 7.2.
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  EXPECT_EQ(Classify(q), HierarchyClass::kAllHierarchical);
}

TEST(ClassificationTest, PaperSqHierarchicalExamples) {
  // Section 6: Q1, Q2, Q3 are sq-hierarchical; Q4 is not.
  EXPECT_TRUE(IsSqHierarchical(MustParseQuery("Q1(x) <- R(x, y), S(x)")));
  EXPECT_TRUE(
      IsSqHierarchical(MustParseQuery("Q2(x, y) <- R(x, y), S(x, y, z)")));
  EXPECT_TRUE(
      IsSqHierarchical(MustParseQuery("Q3(x, z) <- R(x, y), S(x), T(z)")));
  ConjunctiveQuery q4 = MustParseQuery("Q4(x, y) <- R(x, y), S(x)");
  EXPECT_TRUE(IsQHierarchical(q4));
  EXPECT_FALSE(IsSqHierarchical(q4));
}

TEST(ClassificationTest, EducationalInstituteQuery) {
  // Example 2.2: Q(p, s) <- Earns(p, s), Took(p, c), Course(n, c).
  ConjunctiveQuery q =
      MustParseQuery("Q(p, s) <- Earns(p, s), Took(p, c), Course(n, c)");
  // p and c: atoms(p)={Earns,Took}, atoms(c)={Took,Course}: overlapping,
  // not nested -> not all-hierarchical. Existential vars {c, n}:
  // atoms(c)={Took,Course}, atoms(n)={Course} nested -> ∃-hierarchical.
  EXPECT_EQ(Classify(q), HierarchyClass::kExistsHierarchical);
}

// ---------------------------------------------------------------------------
// Containment chain and edge cases
// ---------------------------------------------------------------------------

TEST(ClassificationTest, BooleanClassesCoincide) {
  // Remark 2.1: for Boolean CQs, hierarchical == all classes.
  for (const char* text : {
           "Q() <- R(x, y), S(y)",
           "Q() <- R(x), S(x, y)",
           "Q() <- R(x)",
           "Q() <- R(x, y), S(y), T(y, z)",
       }) {
    ConjunctiveQuery q = MustParseQuery(text);
    ASSERT_TRUE(IsExistsHierarchical(q)) << text;
    EXPECT_EQ(Classify(q), HierarchyClass::kSqHierarchical) << text;
  }
}

TEST(ClassificationTest, ContainmentChainHolds) {
  // Every query classified as class C must satisfy all weaker predicates.
  std::vector<std::string> gallery = {
      "Q(x) <- R(x), S(x, y)",
      "Q(x, y) <- R(x), S(x, y)",
      "Q(y) <- R(x), S(x, y)",
      "Q(x) <- R(x), S(x, y), T(y)",
      "Q() <- R(x), S(x, y), T(y)",
      "Q(x) <- R(x, y), S(y)",
      "Q(x, y) <- R(x, y), S(y)",
      "Q(x, z) <- R(x, y), S(y), T(z)",
      "Q(x) <- R(x)",
      "Q(x, y) <- R(x, y)",
      "Q(p, s) <- Earns(p, s), Took(p, c), Course(n, c)",
      "Q(a, b, c) <- R(a, b, c), S(b, c), T(c)",
  };
  for (const std::string& text : gallery) {
    ConjunctiveQuery q = MustParseQuery(text);
    if (IsSqHierarchical(q)) {
      EXPECT_TRUE(IsQHierarchical(q)) << text;
    }
    if (IsQHierarchical(q)) {
      EXPECT_TRUE(IsAllHierarchical(q)) << text;
    }
    if (IsAllHierarchical(q)) {
      EXPECT_TRUE(IsExistsHierarchical(q)) << text;
    }
  }
}

TEST(ClassificationTest, SingleAtomQueriesAreSqHierarchical) {
  EXPECT_EQ(Classify(MustParseQuery("Q(x) <- R(x)")),
            HierarchyClass::kSqHierarchical);
  EXPECT_EQ(Classify(MustParseQuery("Q(x, y) <- R(x, y)")),
            HierarchyClass::kSqHierarchical);
  EXPECT_EQ(Classify(MustParseQuery("Q() <- R(x, y)")),
            HierarchyClass::kSqHierarchical);
}

TEST(ClassificationTest, CrossProductsClassifyComponentwise) {
  // Disjoint components: disjoint atom sets are fine for hierarchy.
  EXPECT_EQ(Classify(MustParseQuery("Q(x, z) <- R(x), T(z)")),
            HierarchyClass::kSqHierarchical);
  // A bad component poisons the product.
  EXPECT_EQ(Classify(MustParseQuery("Q(z) <- R(x), S(x, y), T(y), U(z)")),
            HierarchyClass::kGeneral);
}

TEST(ClassificationTest, ConstantsDoNotAffectHierarchy) {
  // Constants occupy positions but are not variables.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, 3), S(3)");
  EXPECT_EQ(Classify(q), HierarchyClass::kSqHierarchical);
}

TEST(ClassificationTest, AtLeastOrdering) {
  EXPECT_TRUE(AtLeast(HierarchyClass::kSqHierarchical,
                      HierarchyClass::kQHierarchical));
  EXPECT_TRUE(AtLeast(HierarchyClass::kQHierarchical,
                      HierarchyClass::kQHierarchical));
  EXPECT_FALSE(AtLeast(HierarchyClass::kAllHierarchical,
                       HierarchyClass::kQHierarchical));
  EXPECT_FALSE(
      AtLeast(HierarchyClass::kGeneral, HierarchyClass::kExistsHierarchical));
}

TEST(ClassificationTest, ClassNames) {
  EXPECT_STREQ(HierarchyClassName(HierarchyClass::kGeneral), "general");
  EXPECT_STREQ(HierarchyClassName(HierarchyClass::kSqHierarchical),
               "sq-hierarchical");
}

}  // namespace
}  // namespace shapcq
