// The paper's structural identities as executable tests.
//
//   * Proposition 3.2: for τ ≡ c and constant-per-singleton α,
//     Shapley(f, α ∘ τ ∘ Q) = α({{c}}) · Shapley(f, Q_bool).
//   * Lemma 4.3: Shapley(f, CDist ∘ τ ∘ Q)[D] = Σ_a Shapley(f, Q_bool)[D_a].
//   * Section 7.1: CDist ∘ τ_id ∘ Q ≡ Count ∘ τ ∘ Q for unary heads, which
//     makes CDist tractable on an ∃-hierarchical-but-not-all-hierarchical
//     query through the solver's rewrite.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/shapley/solver.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }

TEST(Proposition32Test, ConstantTauFactorsThroughBooleanGame) {
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  const Rational c(7);
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    AggregateQuery boolean_game{q.AsBoolean(), MakeConstantTau(R(1)),
                                AggregateFunction::Max()};
    for (AggregateFunction alpha :
         {AggregateFunction::Min(), AggregateFunction::Max(),
          AggregateFunction::CountDistinct(), AggregateFunction::Avg(),
          AggregateFunction::Median()}) {
      ASSERT_TRUE(alpha.IsConstantPerSingleton());
      Rational alpha_of_singleton = alpha.Apply({c});
      AggregateQuery a{q, MakeConstantTau(c), alpha};
      for (FactId f : db.EndogenousFacts()) {
        EXPECT_EQ(*BruteForceScore(a, db, f),
                  alpha_of_singleton * *BruteForceScore(boolean_game, db, f))
            << alpha.ToString() << " seed " << seed;
      }
    }
  }
}

TEST(Lemma43Test, CDistDecomposesIntoMembershipGames) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.domain_size = 3;
  for (uint64_t seed = 5; seed <= 8; ++seed) {
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    ValueFunctionPtr tau = MakeTauGreaterThan(0, R(0));
    AggregateQuery a{q, tau, AggregateFunction::CountDistinct()};
    // Values realized by answers.
    std::set<Rational> values;
    for (const Tuple& answer : Evaluate(q, db)) {
      values.insert(tau->Evaluate(answer));
    }
    for (FactId f : db.EndogenousFacts()) {
      Rational total;
      for (const Rational& value : values) {
        // D_a: remove R-facts whose τ-value differs (R is atom 0, the
        // localization atom of τ^1).
        Database d_value;
        FactId f_image = -1;
        for (FactId id = 0; id < db.num_facts(); ++id) {
          const Fact& fact = db.fact(id);
          if (fact.relation == "R" &&
              EvaluateTauOnFact(q, 0, *tau, fact.args) != value) {
            continue;
          }
          FactId image =
              d_value.AddFact(fact.relation, fact.args, fact.endogenous);
          if (id == f) f_image = image;
        }
        if (f_image < 0) continue;  // f removed: convention gives 0
        auto score = MembershipScore(q.AsBoolean(), d_value, f_image);
        ASSERT_TRUE(score.ok());
        total += *score;
      }
      EXPECT_EQ(total, *BruteForceScore(a, db, f)) << "seed " << seed;
    }
  }
}

TEST(Section71Test, InjectiveCDistRewriteUnlocksExistsHierarchical) {
  // Q(x) <- R(x), S(x, y), T(y): ∃-hierarchical, NOT all-hierarchical —
  // the primary CDist engine refuses, but τ_id is injective so the solver
  // rewrites to Count and stays exact.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x), S(x, y), T(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 9;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::CountDistinct()};
  ShapleySolver solver(a);
  SolverOptions exact_only;
  exact_only.method = SolveMethod::kExactOnly;
  for (FactId f : db.EndogenousFacts()) {
    auto result = solver.Compute(db, f, exact_only);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->algorithm, "count-distinct/injective-count-rewrite");
    EXPECT_EQ(result->exact, *BruteForceScore(a, db, f));
  }
  // With a NON-injective τ on the same query, exact-only must fail.
  AggregateQuery hard{q, MakeTauGreaterThan(0, R(0)),
                      AggregateFunction::CountDistinct()};
  ShapleySolver hard_solver(hard);
  EXPECT_FALSE(
      hard_solver.Compute(db, db.EndogenousFacts().front(), exact_only).ok());
}

TEST(Section71Test, RewriteAgreesWithPrimaryEngineInsideFrontier) {
  // On all-hierarchical unary-head queries both CDist paths apply and must
  // agree.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 11;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery cdist{q, MakeTauId(0), AggregateFunction::CountDistinct()};
  AggregateQuery count{q, MakeTauId(0), AggregateFunction::Count()};
  ShapleySolver cdist_solver(cdist);
  ShapleySolver count_solver(count);
  for (FactId f : db.EndogenousFacts()) {
    auto via_cdist = cdist_solver.Compute(db, f);
    auto via_count = count_solver.Compute(db, f);
    ASSERT_TRUE(via_cdist.ok());
    ASSERT_TRUE(via_count.ok());
    EXPECT_EQ(via_cdist->exact, via_count->exact);
  }
}

}  // namespace
}  // namespace shapcq
