// Tests for the sum_k framework, brute force, Boolean membership DP, and
// the Sum/Count engine.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/sum_count.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }
Rational R(int64_t n, int64_t d) { return Rational(BigInt(n), BigInt(d)); }

AggregateQuery Agg(const char* text, ValueFunctionPtr tau,
                   AggregateFunction alpha) {
  return AggregateQuery{MustParseQuery(text), std::move(tau),
                        std::move(alpha)};
}

// ---------------------------------------------------------------------------
// Brute force: sanity against hand-computed games and the permutation form
// ---------------------------------------------------------------------------

TEST(BruteForceTest, SingleFactSumGame) {
  Database db;
  FactId f = db.AddEndogenous("R", {Value(5)});
  AggregateQuery a = Agg("Q(x) <- R(x)", MakeTauId(0),
                         AggregateFunction::Sum());
  auto score = BruteForceScore(a, db, f);
  ASSERT_TRUE(score.ok());
  EXPECT_EQ(*score, R(5));
}

TEST(BruteForceTest, TwoFactsSumSplitsAdditively) {
  Database db;
  FactId f1 = db.AddEndogenous("R", {Value(5)});
  FactId f2 = db.AddEndogenous("R", {Value(3)});
  AggregateQuery a = Agg("Q(x) <- R(x)", MakeTauId(0),
                         AggregateFunction::Sum());
  EXPECT_EQ(*BruteForceScore(a, db, f1), R(5));
  EXPECT_EQ(*BruteForceScore(a, db, f2), R(3));
}

TEST(BruteForceTest, TwoFactsMaxGame) {
  // Max game over values {5, 3}: Shapley(5) = 4, Shapley(3) = 1.
  // Permutations: (5,3): 5 then +0; (3,5): 3 then +2. Avg: 5->(5+2)/2=7/2?
  // Compute exactly: Shapley(f5) = 1/2·[v({5})−v(∅)] + 1/2·[v({3,5})−v({3})]
  //                = 1/2·5 + 1/2·(5−3) = 7/2. Shapley(f3) = 1/2·3 + 0 = 3/2.
  Database db;
  FactId f5 = db.AddEndogenous("R", {Value(5)});
  FactId f3 = db.AddEndogenous("R", {Value(3)});
  AggregateQuery a = Agg("Q(x) <- R(x)", MakeTauId(0),
                         AggregateFunction::Max());
  EXPECT_EQ(*BruteForceScore(a, db, f5), R(7, 2));
  EXPECT_EQ(*BruteForceScore(a, db, f3), R(3, 2));
}

TEST(BruteForceTest, SubsetFormulaMatchesPermutationDefinition) {
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 42;
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db = RandomDatabaseForQuery(q, options);
  if (db.num_endogenous() == 0) GTEST_SKIP();
  for (AggregateFunction alpha :
       {AggregateFunction::Sum(), AggregateFunction::Max(),
        AggregateFunction::Avg(), AggregateFunction::Median(),
        AggregateFunction::CountDistinct()}) {
    AggregateQuery a{q, MakeTauId(0), alpha};
    for (FactId f : db.EndogenousFacts()) {
      auto by_subsets = BruteForceScore(a, db, f);
      auto by_permutations = BruteForceShapleyByPermutations(a, db, f);
      ASSERT_TRUE(by_subsets.ok());
      ASSERT_TRUE(by_permutations.ok());
      EXPECT_EQ(*by_subsets, *by_permutations)
          << alpha.ToString() << " fact " << db.fact(f).ToString();
    }
  }
}

TEST(BruteForceTest, ScoreViaSumKAgreesWithDirectScore) {
  RandomDatabaseOptions options;
  options.facts_per_relation = 5;
  options.seed = 7;
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauReLU(0), AggregateFunction::Avg()};
  for (FactId f : db.EndogenousFacts()) {
    auto direct = BruteForceScore(a, db, f);
    auto via_sumk = ScoreViaSumK(a, db, f, BruteForceSumK);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_sumk.ok());
    EXPECT_EQ(*direct, *via_sumk);
  }
}

TEST(BruteForceTest, EfficiencyAxiom) {
  // Sum of all Shapley values equals A(D) − A(D_x).
  RandomDatabaseOptions options;
  options.facts_per_relation = 5;
  options.endogenous_percent = 60;
  for (uint64_t seed : {1u, 2u, 3u}) {
    options.seed = seed;
    ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
    Database db = RandomDatabaseForQuery(q, options);
    for (AggregateFunction alpha :
         {AggregateFunction::Max(), AggregateFunction::Avg(),
          AggregateFunction::HasDuplicates()}) {
      AggregateQuery a{q, MakeTauId(0), alpha};
      auto scores = BruteForceScoreAll(a, db);
      ASSERT_TRUE(scores.ok());
      Rational total;
      for (const auto& [fact, score] : *scores) total += score;
      Database exo_only = db;
      for (FactId f : db.EndogenousFacts()) {
        exo_only = exo_only.WithoutFact(
            *exo_only.FindFact(db.fact(f).relation, db.fact(f).args),
            nullptr);
      }
      Rational expected = a.Evaluate(db) - a.Evaluate(exo_only);
      EXPECT_EQ(total, expected) << "seed " << seed << " " << alpha.ToString();
    }
  }
}

TEST(BruteForceTest, NullPlayerAxiom) {
  Database db;
  db.AddEndogenous("R", {Value(1), Value(10)});
  db.AddEndogenous("S", {Value(10)});
  // R fact with a dangling join value: a null player.
  FactId dangling = db.AddEndogenous("R", {Value(2), Value(99)});
  AggregateQuery a = Agg("Q(x) <- R(x, y), S(y)", MakeTauId(0),
                         AggregateFunction::Sum());
  EXPECT_TRUE(BruteForceScore(a, db, dangling)->is_zero());
}

TEST(BruteForceTest, SymmetryAxiom) {
  Database db;
  FactId f1 = db.AddEndogenous("R", {Value(1), Value(10)});
  FactId f2 = db.AddEndogenous("R", {Value(1), Value(20)});  // same x value
  db.AddEndogenous("S", {Value(10)});
  db.AddEndogenous("S", {Value(20)});
  // Interchangeable facts (same answer, symmetric supports).
  AggregateQuery a = Agg("Q(x) <- R(x, y), S(y)", MakeTauId(0),
                         AggregateFunction::Sum());
  EXPECT_EQ(*BruteForceScore(a, db, f1), *BruteForceScore(a, db, f2));
}

TEST(BruteForceTest, BanzhafMatchesHandComputation) {
  // Two-player Max game over {5, 3}: Banzhaf(f5) = (5 + 2)/2 = 7/2,
  // Banzhaf(f3) = (3 + 0)/2 = 3/2. (Coincides with Shapley for n = 2.)
  Database db;
  FactId f5 = db.AddEndogenous("R", {Value(5)});
  FactId f3 = db.AddEndogenous("R", {Value(3)});
  AggregateQuery a = Agg("Q(x) <- R(x)", MakeTauId(0),
                         AggregateFunction::Max());
  EXPECT_EQ(*BruteForceScore(a, db, f5, ScoreKind::kBanzhaf), R(7, 2));
  EXPECT_EQ(*BruteForceScore(a, db, f3, ScoreKind::kBanzhaf), R(3, 2));
}

TEST(BruteForceTest, RejectsOversizedInstances) {
  Database db;
  for (int i = 0; i < kBruteForceMaxPlayers + 1; ++i) {
    db.AddEndogenous("R", {Value(i)});
  }
  AggregateQuery a = Agg("Q(x) <- R(x)", MakeTauId(0),
                         AggregateFunction::Sum());
  EXPECT_FALSE(BruteForceSumK(a, db).ok());
}

// ---------------------------------------------------------------------------
// Membership DP (satisfaction counts)
// ---------------------------------------------------------------------------

// Counts from brute force: number of k-subsets where the Boolean query holds.
std::vector<BigInt> BruteForceSatCounts(const ConjunctiveQuery& q,
                                        const Database& db) {
  AggregateQuery a{q.AsBoolean(), MakeConstantTau(R(1)),
                   AggregateFunction::Max()};
  // Max of {1,...} = 1 iff nonempty: a 0/1 satisfaction aggregate.
  auto series = BruteForceSumK(a, db);
  std::vector<BigInt> counts;
  for (const Rational& v : *series) {
    counts.push_back(v.numerator());  // values are integers
  }
  return counts;
}

TEST(MembershipTest, SingleAtomCounts) {
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("R", {Value(2)});
  db.AddExogenous("R", {Value(3)});
  // Q() <- R(x): true whenever any R fact is present; exogenous R(3) is
  // always there, so every subset satisfies.
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x)");
  auto counts = SatisfactionCounts(q, db);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)[0].ToInt64(), 1);
  EXPECT_EQ((*counts)[1].ToInt64(), 2);
  EXPECT_EQ((*counts)[2].ToInt64(), 1);
}

TEST(MembershipTest, SingleAtomCountsNoExogenous) {
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("R", {Value(2)});
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x)");
  auto counts = SatisfactionCounts(q, db);
  ASSERT_TRUE(counts.ok());
  // k=0: empty subset unsatisfied; k=1: both satisfy; k=2: satisfies.
  EXPECT_EQ((*counts)[0].ToInt64(), 0);
  EXPECT_EQ((*counts)[1].ToInt64(), 2);
  EXPECT_EQ((*counts)[2].ToInt64(), 1);
}

TEST(MembershipTest, CountsMatchBruteForceOnRandomInstances) {
  std::vector<std::string> queries = {
      "Q() <- R(x)",
      "Q() <- R(x, y)",
      "Q() <- R(x, y), S(y)",
      "Q() <- R(x), S(x, y)",
      "Q() <- R(x), S(x, y), T(x, y, z)",
      "Q() <- R(x), T(z)",
      "Q() <- R(x, x)",
      "Q() <- R(x, 1), S(x)",
      "Q() <- R(3)",
      "Q() <- R(x, y), S(y), T(y, z)",
  };
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.domain_size = 3;
  for (const std::string& text : queries) {
    ConjunctiveQuery q = MustParseQuery(text);
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      options.seed = seed;
      Database db = RandomDatabaseForQuery(q, options);
      auto dp = SatisfactionCounts(q, db);
      ASSERT_TRUE(dp.ok()) << text << ": " << dp.status().ToString();
      std::vector<BigInt> expected = BruteForceSatCounts(q, db);
      ASSERT_EQ(dp->size(), expected.size()) << text << " seed " << seed;
      for (size_t k = 0; k < expected.size(); ++k) {
        EXPECT_EQ((*dp)[k], expected[k])
            << text << " seed " << seed << " k=" << k;
      }
    }
  }
}

TEST(MembershipTest, RejectsNonHierarchical) {
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("S", {Value(1), Value(2)});
  db.AddEndogenous("T", {Value(2)});
  ConjunctiveQuery rst = MustParseQuery("Q() <- R(x), S(x, y), T(y)");
  EXPECT_FALSE(SatisfactionCounts(rst, db).ok());
}

TEST(MembershipTest, MembershipScoreMatchesBruteForce) {
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 5;
  for (uint64_t seed = 10; seed <= 13; ++seed) {
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    AggregateQuery boolean_game{q, MakeConstantTau(R(1)),
                                AggregateFunction::Max()};
    for (FactId f : db.EndogenousFacts()) {
      auto dp = MembershipScore(q, db, f);
      auto bf = BruteForceScore(boolean_game, db, f);
      ASSERT_TRUE(dp.ok());
      ASSERT_TRUE(bf.ok());
      EXPECT_EQ(*dp, *bf) << "seed " << seed;
    }
  }
}

TEST(MembershipTest, BanzhafMembershipMatchesBruteForce) {
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 77;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery boolean_game{q, MakeConstantTau(R(1)),
                              AggregateFunction::Max()};
  for (FactId f : db.EndogenousFacts()) {
    auto dp = MembershipScore(q, db, f, ScoreKind::kBanzhaf);
    auto bf = BruteForceScore(boolean_game, db, f, ScoreKind::kBanzhaf);
    ASSERT_TRUE(dp.ok());
    ASSERT_TRUE(bf.ok());
    EXPECT_EQ(*dp, *bf);
  }
}

// ---------------------------------------------------------------------------
// Sum / Count over ∃-hierarchical CQs
// ---------------------------------------------------------------------------

TEST(SumCountTest, MatchesBruteForceOnExistsHierarchicalQueries) {
  std::vector<std::string> queries = {
      "Q(x) <- R(x)",
      "Q(x) <- R(x, y), S(y)",
      "Q(x, y) <- R(x, y), S(y)",
      "Q(x) <- R(x), S(x, y), T(y)",  // ∃-hierarchical only
      "Q(y) <- R(x), S(x, y)",
      "Q(x, z) <- R(x, y), S(y), T(z)",
  };
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  for (const std::string& text : queries) {
    ConjunctiveQuery q = MustParseQuery(text);
    for (uint64_t seed = 21; seed <= 23; ++seed) {
      options.seed = seed;
      Database db = RandomDatabaseForQuery(q, options);
      for (AggregateFunction alpha :
           {AggregateFunction::Sum(), AggregateFunction::Count()}) {
        AggregateQuery a{q, MakeTauId(0), alpha};
        auto dp_series = SumCountSumK(a, db);
        auto bf_series = BruteForceSumK(a, db);
        ASSERT_TRUE(dp_series.ok())
            << text << ": " << dp_series.status().ToString();
        ASSERT_TRUE(bf_series.ok());
        ASSERT_EQ(dp_series->size(), bf_series->size());
        for (size_t k = 0; k < bf_series->size(); ++k) {
          EXPECT_EQ((*dp_series)[k], (*bf_series)[k])
              << text << " " << alpha.ToString() << " seed " << seed
              << " k=" << k;
        }
      }
    }
  }
}

TEST(SumCountTest, WorksWithNonLocalizedTau) {
  // τ(x, y) = x + y depends on both head variables and is not localized on
  // a single atom of Q(x, y) <- R(x), T(y); Sum handles it anyway.
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x), T(y)");
  auto tau = MakeCallbackTau(
      [](const Tuple& t) {
        return t[0].AsRational() + t[1].AsRational();
      },
      {0, 1}, "x+y");
  EXPECT_TRUE(LocalizationAtoms(q, *tau).empty());
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("R", {Value(2)});
  db.AddEndogenous("T", {Value(10)});
  AggregateQuery a{q, tau, AggregateFunction::Sum()};
  for (FactId f : db.EndogenousFacts()) {
    auto dp = ScoreViaSumK(a, db, f, SumCountSumK);
    auto bf = BruteForceScore(a, db, f);
    ASSERT_TRUE(dp.ok());
    EXPECT_EQ(*dp, *bf);
  }
}

TEST(SumCountTest, RejectsNonExistsHierarchical) {
  ConjunctiveQuery rst = MustParseQuery("Q() <- R(x), S(x, y), T(y)");
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("S", {Value(1), Value(2)});
  db.AddEndogenous("T", {Value(2)});
  AggregateQuery a{rst, MakeConstantTau(R(1)), AggregateFunction::Count()};
  EXPECT_FALSE(SumCountSumK(a, db).ok());
}

TEST(SumCountTest, RejectsWrongAggregate) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x)");
  Database db;
  db.AddEndogenous("R", {Value(1)});
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  EXPECT_FALSE(SumCountSumK(a, db).ok());
}

}  // namespace
}  // namespace shapcq
