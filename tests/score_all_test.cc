// Differential tests for the batched all-facts scorers (ScoreAllFn).
//
// Every batched engine must reproduce the per-fact sum_k path bit for bit:
// exact rational arithmetic makes the batching a pure reordering of the
// same sums, so the comparisons below use operator== on Rational (canonical
// form — equality is bitwise identity). Also checked: thread-count
// invariance (the sharded accumulation merges per-worker state in
// deterministic order) and gate parity (a batched scorer fails with
// exactly the series engine's error).

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/session.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/min_max.h"
#include "shapcq/shapley/min_max_monoid.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/shapley/sum_count.h"
#include "shapcq/workload/generators.h"
#include "shapcq/workload/random_query.h"

namespace shapcq {
namespace {

SolverOptions Options(ScoreKind kind, int num_threads = 0) {
  SolverOptions options;
  options.score = kind;
  options.num_threads = num_threads;
  return options;
}

// Asserts that a batched result matches per-fact ScoreViaSumK over
// `engine` on every endogenous fact, bit for bit.
void ExpectMatchesPerFact(
    const StatusOr<std::vector<std::pair<FactId, Rational>>>& batched,
    const AggregateQuery& a, const Database& db, const SumKEngine& engine,
    ScoreKind kind, const std::string& label) {
  ASSERT_TRUE(batched.ok()) << label << ": " << batched.status().ToString();
  std::vector<FactId> endo = db.EndogenousFacts();
  ASSERT_EQ(batched->size(), endo.size()) << label;
  for (size_t i = 0; i < endo.size(); ++i) {
    EXPECT_EQ((*batched)[i].first, endo[i]) << label;
    StatusOr<Rational> single = ScoreViaSumK(a, db, endo[i], engine, kind);
    ASSERT_TRUE(single.ok()) << label << ": " << single.status().ToString();
    EXPECT_EQ((*batched)[i].second, *single)
        << label << " fact " << endo[i];
  }
}

// ---------------------------------------------------------------------------
// MinMaxScoreAll (localized Min/Max DP)
// ---------------------------------------------------------------------------

TEST(MinMaxScoreAllTest, MatchesPerFactOnRandomAllHierarchicalWorkloads) {
  for (AggregateFunction alpha :
       {AggregateFunction::Min(), AggregateFunction::Max()}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      RandomQueryOptions query_options;
      query_options.max_variables = 3;
      query_options.seed = seed * 17 + 2;
      ConjunctiveQuery q = RandomQueryOfClass(
          HierarchyClass::kAllHierarchical, query_options);
      RandomDatabaseOptions db_options;
      db_options.facts_per_relation = 4;
      db_options.seed = seed * 5 + 1;
      Database db = RandomDatabaseForQuery(q, db_options);
      if (db.num_endogenous() == 0) continue;
      ValueFunctionPtr tau =
          q.arity() > 0 ? MakeTauId(0) : MakeConstantTau(Rational(1));
      AggregateQuery a{q, tau, alpha};
      for (ScoreKind kind : {ScoreKind::kShapley, ScoreKind::kBanzhaf}) {
        ExpectMatchesPerFact(MinMaxScoreAll(a, db, Options(kind)), a, db,
                             MinMaxSumK, kind,
                             a.ToString() + " seed " + std::to_string(seed));
      }
    }
  }
}

TEST(MinMaxScoreAllTest, MatchesBruteForceOnSmallInstance) {
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  Database db;
  db.AddEndogenous("R", {Value(1), Value(10)});
  db.AddEndogenous("R", {Value(2), Value(10)});
  db.AddEndogenous("R", {Value(3), Value(20)});
  db.AddEndogenous("S", {Value(10)});
  db.AddExogenous("S", {Value(20)});
  db.AddEndogenous("T", {Value(99)});  // irrelevant endogenous fact
  for (AggregateFunction alpha :
       {AggregateFunction::Min(), AggregateFunction::Max()}) {
    AggregateQuery a{q, MakeTauId(0), alpha};
    auto batched = MinMaxScoreAll(a, db, Options(ScoreKind::kShapley));
    auto oracle = BruteForceScoreAll(a, db, ScoreKind::kShapley);
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    ASSERT_TRUE(oracle.ok());
    ASSERT_EQ(batched->size(), oracle->size());
    for (size_t i = 0; i < batched->size(); ++i) {
      EXPECT_EQ((*batched)[i].first, (*oracle)[i].first);
      EXPECT_EQ((*batched)[i].second, (*oracle)[i].second)
          << "fact " << (*batched)[i].first;
    }
  }
}

TEST(MinMaxScoreAllTest, ThreadCountNeverChangesAnyValue) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions db_options;
  db_options.facts_per_relation = 6;
  db_options.seed = 11;
  Database db = RandomDatabaseForQuery(q, db_options);
  ASSERT_GT(db.num_endogenous(), 0);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  auto reference = MinMaxScoreAll(a, db, Options(ScoreKind::kShapley, 1));
  ASSERT_TRUE(reference.ok());
  for (int threads : {2, 8}) {
    auto threaded =
        MinMaxScoreAll(a, db, Options(ScoreKind::kShapley, threads));
    ASSERT_TRUE(threaded.ok());
    ASSERT_EQ(reference->size(), threaded->size());
    for (size_t i = 0; i < reference->size(); ++i) {
      EXPECT_EQ((*reference)[i].first, (*threaded)[i].first);
      EXPECT_EQ((*reference)[i].second, (*threaded)[i].second)
          << "threads=" << threads;
    }
  }
}

TEST(MinMaxScoreAllTest, RefusesExactlyLikeTheSeriesEngine) {
  // Not all-hierarchical: R(x, y), S(y) with y shared but x free in one
  // atom only... use a genuinely non-all-hierarchical query.
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x), S(x, y), T(y)");
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("S", {Value(1), Value(2)});
  db.AddEndogenous("T", {Value(2)});
  AggregateQuery a{q, MakeConstantTau(Rational(1)), AggregateFunction::Max()};
  auto batched = MinMaxScoreAll(a, db);
  auto series = MinMaxSumK(a, db);
  ASSERT_FALSE(batched.ok());
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(batched.status().message(), series.status().message());
}

// ---------------------------------------------------------------------------
// MinMaxMonoidScoreAll (Section 7.3 monotone-monoid extension)
// ---------------------------------------------------------------------------

Database MonoidDb(int n) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value(i), Value(i % 5 - 2)});
    db.AddEndogenous("T", {Value(i), Value((i * 3) % 7 - 3)});
  }
  return db;
}

TEST(MinMaxMonoidScoreAllTest, MatchesPerFactOnCrossProduct) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(i, x), T(j, z)");
  for (int n : {3, 5}) {
    Database db = MonoidDb(n);
    struct Case {
      MonoidKind kind;
      bool is_max;
    };
    for (const Case& c : {Case{MonoidKind::kPlus, true},
                          Case{MonoidKind::kMax, true},
                          Case{MonoidKind::kPlus, false},
                          Case{MonoidKind::kMin, false}}) {
      SumKEngine engine = [&q, &c](const AggregateQuery&, const Database& d,
                                   const SolverOptions&) {
        return MonoidMinMaxSumK(q, c.kind, {0, 1}, c.is_max, d);
      };
      AggregateQuery reference{
          q, MakeMonoidTau(c.kind, {0, 1}),
          c.is_max ? AggregateFunction::Max() : AggregateFunction::Min()};
      for (ScoreKind kind : {ScoreKind::kShapley, ScoreKind::kBanzhaf}) {
        ExpectMatchesPerFact(
            MinMaxMonoidScoreAll(q, c.kind, {0, 1}, c.is_max, db,
                                 Options(kind)),
            reference, db, engine, kind,
            "monoid n=" + std::to_string(n));
      }
    }
  }
}

TEST(MinMaxMonoidScoreAllTest, MatchesPerFactOnConnectedQuery) {
  // Connected all-hierarchical query: the top level is a root split, not
  // a cross product, so this exercises the generic leave-one-out path
  // instead of the pushed-functional cross specialization.
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  Database db;
  for (int i = 0; i < 5; ++i) {
    db.AddEndogenous("R", {Value(i % 3), Value(i)});
    db.AddFact("S", {Value(i)}, /*endogenous=*/i % 2 == 0);
  }
  SumKEngine engine = [&q](const AggregateQuery&, const Database& d,
                           const SolverOptions&) {
    return MonoidMinMaxSumK(q, MonoidKind::kPlus, {0, 1}, /*is_max=*/true, d);
  };
  AggregateQuery reference{q, MakeMonoidTau(MonoidKind::kPlus, {0, 1}),
                           AggregateFunction::Max()};
  for (ScoreKind kind : {ScoreKind::kShapley, ScoreKind::kBanzhaf}) {
    ExpectMatchesPerFact(
        MinMaxMonoidScoreAll(q, MonoidKind::kPlus, {0, 1}, /*is_max=*/true,
                             db, Options(kind)),
        reference, db, engine, kind, "monoid connected");
  }
}

TEST(MinMaxMonoidScoreAllTest, MatchesBruteForceWithIrrelevantFacts) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(i, x), T(j, z)");
  Database db = MonoidDb(3);
  db.AddEndogenous("U", {Value(7)});  // never joins: exact-zero fast path
  AggregateQuery reference{q, MakeMonoidTau(MonoidKind::kPlus, {0, 1}),
                           AggregateFunction::Max()};
  auto batched = MinMaxMonoidScoreAll(q, MonoidKind::kPlus, {0, 1},
                                      /*is_max=*/true, db);
  auto oracle = BruteForceScoreAll(reference, db, ScoreKind::kShapley);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(batched->size(), oracle->size());
  for (size_t i = 0; i < batched->size(); ++i) {
    EXPECT_EQ((*batched)[i].first, (*oracle)[i].first);
    EXPECT_EQ((*batched)[i].second, (*oracle)[i].second)
        << "fact " << (*batched)[i].first;
  }
}

TEST(MinMaxMonoidScoreAllTest, RefusesExactlyLikeTheSeriesEngine) {
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(i, x), T(j, z)");
  Database db = MonoidDb(2);
  // Max with a non-decreasing monoid is required.
  auto batched = MinMaxMonoidScoreAll(q, MonoidKind::kMin, {0, 1},
                                      /*is_max=*/true, db);
  auto series = MonoidMinMaxSumK(q, MonoidKind::kMin, {0, 1},
                                 /*is_max=*/true, db);
  ASSERT_FALSE(batched.ok());
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(batched.status().message(), series.status().message());
}

// ---------------------------------------------------------------------------
// AvgQuantileScoreAll (quintuple DP)
// ---------------------------------------------------------------------------

TEST(AvgQuantileScoreAllTest, MatchesPerFactOnRandomQHierarchicalWorkloads) {
  for (AggregateFunction alpha :
       {AggregateFunction::Avg(), AggregateFunction::Median(),
        AggregateFunction::Quantile(Rational(BigInt(1), BigInt(4)))}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      RandomQueryOptions query_options;
      query_options.max_variables = 3;
      query_options.seed = seed * 19 + 3;
      ConjunctiveQuery q =
          RandomQueryOfClass(HierarchyClass::kQHierarchical, query_options);
      RandomDatabaseOptions db_options;
      db_options.facts_per_relation = 4;
      db_options.seed = seed * 3 + 2;
      Database db = RandomDatabaseForQuery(q, db_options);
      if (db.num_endogenous() == 0) continue;
      ValueFunctionPtr tau =
          q.arity() > 0 ? MakeTauId(0) : MakeConstantTau(Rational(1));
      AggregateQuery a{q, tau, alpha};
      for (ScoreKind kind : {ScoreKind::kShapley, ScoreKind::kBanzhaf}) {
        ExpectMatchesPerFact(AvgQuantileScoreAll(a, db, Options(kind)), a,
                             db, AvgQuantileSumK, kind,
                             a.ToString() + " seed " + std::to_string(seed));
      }
    }
  }
}

TEST(AvgQuantileScoreAllTest, ThreadCountNeverChangesAnyValue) {
  // q-hierarchical: the free variable dominates the existential one.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(x)");
  RandomDatabaseOptions db_options;
  db_options.facts_per_relation = 5;
  db_options.seed = 13;
  Database db = RandomDatabaseForQuery(q, db_options);
  ASSERT_GT(db.num_endogenous(), 0);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Avg()};
  auto reference = AvgQuantileScoreAll(a, db, Options(ScoreKind::kShapley, 1));
  ASSERT_TRUE(reference.ok());
  for (int threads : {2, 8}) {
    auto threaded =
        AvgQuantileScoreAll(a, db, Options(ScoreKind::kShapley, threads));
    ASSERT_TRUE(threaded.ok());
    ASSERT_EQ(reference->size(), threaded->size());
    for (size_t i = 0; i < reference->size(); ++i) {
      EXPECT_EQ((*reference)[i].first, (*threaded)[i].first);
      EXPECT_EQ((*reference)[i].second, (*threaded)[i].second)
          << "threads=" << threads;
    }
  }
}

TEST(AvgQuantileScoreAllTest, RefusesExactlyLikeTheSeriesEngine) {
  // ∃-hierarchical but not q-hierarchical: Q(x) with y joining two atoms.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x), S(x, y), T(y)");
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("S", {Value(1), Value(2)});
  db.AddEndogenous("T", {Value(2)});
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Avg()};
  auto batched = AvgQuantileScoreAll(a, db);
  auto series = AvgQuantileSumK(a, db);
  ASSERT_FALSE(batched.ok());
  ASSERT_FALSE(series.ok());
  EXPECT_EQ(batched.status().message(), series.status().message());
}

// ---------------------------------------------------------------------------
// SumCountScoreAll: sharded accumulation is thread-count invariant
// ---------------------------------------------------------------------------

TEST(SumCountScoreAllShardingTest, IdenticalAcrossThreadCounts) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x), S(x, y), T(y)");
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    RandomDatabaseOptions db_options;
    db_options.facts_per_relation = 8;
    db_options.domain_size = 6;
    db_options.seed = seed;
    Database db = RandomDatabaseForQuery(q, db_options);
    if (db.num_endogenous() == 0) continue;
    AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
    for (ScoreKind kind : {ScoreKind::kShapley, ScoreKind::kBanzhaf}) {
      auto reference = SumCountScoreAll(a, db, Options(kind, 1));
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      for (int threads : {2, 8}) {
        auto sharded = SumCountScoreAll(a, db, Options(kind, threads));
        ASSERT_TRUE(sharded.ok());
        ASSERT_EQ(reference->size(), sharded->size());
        for (size_t i = 0; i < reference->size(); ++i) {
          EXPECT_EQ((*reference)[i].first, (*sharded)[i].first);
          EXPECT_EQ((*reference)[i].second, (*sharded)[i].second)
              << "seed " << seed << " threads " << threads;
        }
      }
    }
  }
}

// A fractional-weight τ exercises the Rational half of the per-worker
// DeltaSeries merge (integer weights take the pure-BigInt half).
TEST(SumCountScoreAllShardingTest, FractionalWeightsIdenticalAcrossThreads) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x), S(x, y)");
  Database db;
  for (int i = 0; i < 6; ++i) {
    db.AddEndogenous("R", {Value(i)});
    db.AddEndogenous("S", {Value(i), Value(i % 3)});
  }
  ValueFunctionPtr tau = MakeCallbackTau(
      [](const Tuple& t) {
        return Rational(t[0].AsRational()) / Rational(3);
      },
      {0}, "third");
  AggregateQuery a{q, tau, AggregateFunction::Sum()};
  auto reference = SumCountScoreAll(a, db, Options(ScoreKind::kShapley, 1));
  ASSERT_TRUE(reference.ok());
  auto sharded = SumCountScoreAll(a, db, Options(ScoreKind::kShapley, 8));
  ASSERT_TRUE(sharded.ok());
  ASSERT_EQ(reference->size(), sharded->size());
  for (size_t i = 0; i < reference->size(); ++i) {
    EXPECT_EQ((*reference)[i].second, (*sharded)[i].second);
  }
}

// ---------------------------------------------------------------------------
// Warm-cache sessions reproduce the direct batched scorers bit for bit
// ---------------------------------------------------------------------------

TEST(ScoreAllWarmCacheTest, CachedPlanSessionsMatchDirectBatchedScorers) {
  struct Case {
    const char* label;
    const char* query;
    AggregateFunction alpha;
    std::function<StatusOr<std::vector<std::pair<FactId, Rational>>>(
        const AggregateQuery&, const Database&, const SolverOptions&)>
        direct;
  };
  std::vector<Case> cases = {
      {"sum", "Q(x) <- R(x), S(x, y), T(y)", AggregateFunction::Sum(),
       SumCountScoreAll},
      {"max", "Q(x, y) <- R(x, y), S(y)", AggregateFunction::Max(),
       MinMaxScoreAll},
      {"avg", "Q(x, y) <- R(x, y), S(y)", AggregateFunction::Avg(),
       AvgQuantileScoreAll},
  };
  for (const Case& c : cases) {
    ConjunctiveQuery q = MustParseQuery(c.query);
    RandomDatabaseOptions db_options;
    db_options.facts_per_relation = 5;
    db_options.seed = 41;
    Database db = RandomDatabaseForQuery(q, db_options);
    AggregateQuery a{q, MakeTauId(0), c.alpha};
    auto direct = c.direct(a, db, Options(ScoreKind::kShapley));
    ASSERT_TRUE(direct.ok()) << c.label << ": "
                             << direct.status().ToString();

    PlanCache cache;
    cache.GetOrCompile(a);  // cold compile
    bool hit = false;
    SolverSession warm(cache.GetOrCompile(a, ScoreKind::kShapley, &hit), db);
    EXPECT_TRUE(hit) << c.label;
    auto all = warm.ComputeAll();
    ASSERT_TRUE(all.ok()) << c.label << ": " << all.status().ToString();
    ASSERT_EQ(all->size(), direct->size()) << c.label;
    for (size_t i = 0; i < all->size(); ++i) {
      EXPECT_EQ((*all)[i].first, (*direct)[i].first) << c.label;
      EXPECT_TRUE((*all)[i].second.is_exact) << c.label;
      EXPECT_EQ((*all)[i].second.exact, (*direct)[i].second)
          << c.label << " fact " << (*all)[i].first;
    }
  }
}

}  // namespace
}  // namespace shapcq
