// Tests for the observability layer (src/shapcq/obs): trace contexts
// and RAII spans, trace-id generation, the rendered span JSON, the
// engine-decision explanation builder, the flight recorder's retention
// policy, and the structured logger's level gate. End-to-end behaviour
// (traced daemon responses, /debug/traces) lives in daemon_smoke.cc.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/obs/flight_recorder.h"
#include "shapcq/obs/log.h"
#include "shapcq/obs/trace.h"
#include "shapcq/serve/json.h"

namespace shapcq {
namespace {

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

TEST(TraceIdTest, NonZeroAndUnique) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t id = NextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate trace id";
  }
}

TEST(TraceIdTest, HexIsFixedWidthLowercase) {
  EXPECT_EQ(TraceIdHex(1), "0000000000000001");
  EXPECT_EQ(TraceIdHex(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(TraceIdHex(UINT64_MAX), "ffffffffffffffff");
  EXPECT_EQ(TraceIdHex(NextTraceId()).size(), 16u);
}

TEST(TraceLevelTest, ParseRoundTrip) {
  TraceLevel level;
  ASSERT_TRUE(ParseTraceLevel("off", &level));
  EXPECT_EQ(level, TraceLevel::kOff);
  ASSERT_TRUE(ParseTraceLevel("on", &level));
  EXPECT_EQ(level, TraceLevel::kOn);
  ASSERT_TRUE(ParseTraceLevel("full", &level));
  EXPECT_EQ(level, TraceLevel::kFull);
  EXPECT_FALSE(ParseTraceLevel("verbose", &level));
  EXPECT_STREQ(TraceLevelName(TraceLevel::kFull), "full");
}

// ---------------------------------------------------------------------------
// TraceContext / Span
// ---------------------------------------------------------------------------

TEST(TraceContextTest, SpansRecordStagesAndAnnotations) {
  TraceContext trace(42);
  {
    Span span(&trace, "solve");
    span.Annotate("players", static_cast<int64_t>(7));
    span.Annotate("hierarchy", std::string("hierarchical"));
  }
  ASSERT_EQ(trace.spans().size(), 1u);
  const TraceSpan& span = trace.spans()[0];
  EXPECT_EQ(span.stage, "solve");
  EXPECT_GE(span.end_ns, span.start_ns);
  ASSERT_EQ(span.annotations.size(), 2u);
  EXPECT_FALSE(span.annotations[0].is_text);
  EXPECT_EQ(span.annotations[0].number, 7);
  EXPECT_TRUE(span.annotations[1].is_text);
  EXPECT_EQ(span.annotations[1].text, "hierarchical");
}

TEST(TraceContextTest, NullTraceIsSafeEverywhere) {
  Span span(nullptr, "anything");
  span.Annotate("k", static_cast<int64_t>(1));
  span.Annotate("k", std::string("v"));
  span.End();
  span.End();  // idempotent
}

TEST(TraceContextTest, ExplicitEndIsIdempotent) {
  TraceContext trace(1);
  Span span(&trace, "stage");
  span.End();
  uint64_t first_end = trace.spans()[0].end_ns;
  span.End();  // no-op: already detached
  EXPECT_EQ(trace.spans()[0].end_ns, first_end);
}

TEST(TraceContextTest, AddSpanKeepsCallerBounds) {
  TraceContext trace(1);
  trace.AddSpan("queue_wait", 1000000, 4000000);
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].duration_micros(), 3000u);
}

TEST(TraceContextTest, RenderJsonParsesAndCarriesAnnotations) {
  TraceContext trace(0xABC);
  {
    Span span(&trace, "engine:frontier");
    span.Annotate("facts_solved", static_cast<int64_t>(12));
    span.Annotate("reject", std::string("non-hierarchical \"shape\""));
  }
  auto parsed = ParseJson(trace.RenderJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("trace_id"), TraceIdHex(0xABC));
  const JsonValue* spans = parsed->Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 1u);
  EXPECT_EQ(spans->array[0].GetString("stage"), "engine:frontier");
  EXPECT_EQ(spans->array[0].GetInt64("facts_solved"), 12);
  EXPECT_EQ(spans->array[0].GetString("reject"),
            "non-hierarchical \"shape\"");
}

// ---------------------------------------------------------------------------
// Engine-decision explanations
// ---------------------------------------------------------------------------

TEST(ExplanationTest, EmptyTraceSaysSo) {
  TraceContext trace(1);
  EXPECT_EQ(BuildEngineExplanation(trace), "no solve recorded");
}

TEST(ExplanationTest, NarratesSolveContextAndEngineChain) {
  TraceContext trace(1);
  {
    Span solve(&trace, "solve");
    solve.Annotate("players", static_cast<int64_t>(9));
    solve.Annotate("hierarchy", std::string("general"));
    solve.Annotate("method", std::string("auto"));
    Span frontier(&trace, "engine:frontier");
    frontier.Annotate("facts_solved", static_cast<int64_t>(0));
    frontier.Annotate("facts_open", static_cast<int64_t>(9));
    frontier.Annotate("reject", std::string("query is not hierarchical"));
    frontier.End();
    Span circuit(&trace, "engine:lineage-circuit");
    circuit.Annotate("facts_solved", static_cast<int64_t>(9));
    circuit.Annotate("facts_open", static_cast<int64_t>(0));
    circuit.Annotate("circuit_nodes", static_cast<int64_t>(311));
    circuit.End();
  }
  std::string text = BuildEngineExplanation(trace);
  EXPECT_NE(text.find("solve: 9 players class=general method=auto"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("frontier rejected: query is not hierarchical"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lineage-circuit scored 9 facts (311 circuit nodes)"),
            std::string::npos)
      << text;
}

TEST(ExplanationTest, DegradedSolveNamesTheReason) {
  TraceContext trace(1);
  {
    Span solve(&trace, "solve");
    solve.Annotate("degrade_reason", std::string("deadline expired in queue"));
    Span mc(&trace, "monte_carlo");
    mc.Annotate("facts", static_cast<int64_t>(4));
    mc.Annotate("samples", static_cast<int64_t>(10000));
    mc.End();
  }
  std::string text = BuildEngineExplanation(trace);
  EXPECT_NE(text.find("degraded(deadline expired in queue)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("monte_carlo scored 4 facts (10000 samples/fact)"),
            std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TraceRecord MakeRecord(uint64_t id, const std::string& outcome,
                       uint64_t total_micros) {
  TraceRecord record;
  record.trace_id = id;
  record.tenant = "acme";
  record.request_id = id;
  record.outcome = outcome;
  record.total_micros = total_micros;
  TraceContext trace(id);
  trace.AddSpan("solve", 0, total_micros * 1000);
  record.json = trace.RenderJson();
  return record;
}

TEST(FlightRecorderTest, KeepsTheSlowestOkRequests) {
  FlightRecorder recorder(3, 3);
  // 10 ok requests, total latency 1..10: only the three slowest survive.
  for (uint64_t i = 1; i <= 10; ++i) {
    recorder.Record(MakeRecord(i, "ok", i * 100));
  }
  EXPECT_EQ(recorder.slowest_size(), 3u);
  EXPECT_EQ(recorder.incident_size(), 0u);
  auto parsed = ParseJson(recorder.RenderJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* slowest = parsed->Find("slowest");
  ASSERT_NE(slowest, nullptr);
  ASSERT_EQ(slowest->array.size(), 3u);
  // Rendered slowest-first.
  EXPECT_EQ(slowest->array[0].GetInt64("total_us"), 1000);
  EXPECT_EQ(slowest->array[1].GetInt64("total_us"), 900);
  EXPECT_EQ(slowest->array[2].GetInt64("total_us"), 800);
  // The nested trace is itself valid JSON.
  auto nested = ParseJson(slowest->array[0].GetString("trace"));
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(nested->GetString("trace_id"), TraceIdHex(10));
}

TEST(FlightRecorderTest, IncidentRingKeepsTheMostRecent) {
  FlightRecorder recorder(2, 3);
  for (uint64_t i = 1; i <= 5; ++i) {
    recorder.Record(MakeRecord(i, i % 2 == 0 ? "error" : "degraded", i));
  }
  EXPECT_EQ(recorder.incident_size(), 3u);
  auto parsed = ParseJson(recorder.RenderJson());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* incidents = parsed->Find("incidents");
  ASSERT_NE(incidents, nullptr);
  ASSERT_EQ(incidents->array.size(), 3u);
  // Oldest-first after the ring wrapped: records 3, 4, 5 remain.
  EXPECT_EQ(incidents->array[0].GetString("trace_id"), TraceIdHex(3));
  EXPECT_EQ(incidents->array[1].GetString("trace_id"), TraceIdHex(4));
  EXPECT_EQ(incidents->array[2].GetString("trace_id"), TraceIdHex(5));
  EXPECT_EQ(incidents->array[0].GetString("outcome"), "degraded");
  EXPECT_EQ(incidents->array[1].GetString("outcome"), "error");
}

TEST(FlightRecorderTest, EmptyRecorderRendersWellFormedJson) {
  FlightRecorder recorder(4, 4);
  auto parsed = ParseJson(recorder.RenderJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("slowest")->array.size(), 0u);
  EXPECT_EQ(parsed->Find("incidents")->array.size(), 0u);
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

TEST(LogTest, ParseAndNames) {
  LogLevel level;
  ASSERT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  ASSERT_TRUE(ParseLogLevel("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_FALSE(ParseLogLevel("chatty", &level));
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "warn");
}

TEST(LogTest, ThresholdGatesLowerLevels) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(LogEnabled(LogLevel::kError));
  SetLogLevel(before);
}

}  // namespace
}  // namespace shapcq
