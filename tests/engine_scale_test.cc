// Cross-engine consistency at sizes far beyond the brute-force horizon.
//
// Each test exploits an algebraic identity that lets two INDEPENDENT
// engines compute the same quantity on databases with 50-150 endogenous
// facts, where no enumeration could confirm them:
//
//   * τ ≡ c collapses Max/Avg/CDist to c·[Q nonempty] and their sum_k
//     series to c · satisfaction counts (membership engine);
//   * Dup ∘ τ≡c = [#answers ≥ 2], matching the answer-count distribution;
//   * closed forms (Props 4.2/4.4/5.2) vs the generic DPs;
//   * Count == Sum with τ ≡ 1.

#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/answer_counts.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/closed_forms.h"
#include "shapcq/shapley/count_distinct.h"
#include "shapcq/shapley/has_duplicates.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/shapley/min_max.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/sum_count.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }

// 120 R-facts over 30 y-groups + 30 S-facts: 150 endogenous facts.
Database LargeDb() {
  Database db;
  const int groups = 30;
  for (int i = 0; i < 120; ++i) {
    db.AddEndogenous("R", {Value((i / groups) % 9 - 3), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  return db;
}

TEST(EngineScaleTest, ConstantTauCollapsesMaxToMembership) {
  Database db = LargeDb();
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  AggregateQuery max_c{q, MakeConstantTau(R(7)), AggregateFunction::Max()};
  auto series = MinMaxSumK(max_c, db);
  auto counts = SatisfactionCounts(q.AsBoolean(), db);
  ASSERT_TRUE(series.ok());
  ASSERT_TRUE(counts.ok());
  ASSERT_EQ(series->size(), counts->size());
  for (size_t k = 0; k < counts->size(); ++k) {
    EXPECT_EQ((*series)[k], R(7) * Rational((*counts)[k])) << "k=" << k;
  }
}

TEST(EngineScaleTest, ConstantTauCollapsesCDistToMembership) {
  Database db = LargeDb();
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  AggregateQuery cdist_c{q, MakeConstantTau(R(3)),
                         AggregateFunction::CountDistinct()};
  auto series = CountDistinctSumK(cdist_c, db);
  auto counts = SatisfactionCounts(q.AsBoolean(), db);
  ASSERT_TRUE(series.ok());
  for (size_t k = 0; k < counts->size(); ++k) {
    // CDist of a constant bag is 1 when nonempty.
    EXPECT_EQ((*series)[k], Rational((*counts)[k])) << "k=" << k;
  }
}

TEST(EngineScaleTest, ConstantTauCollapsesAvgToMembership) {
  // Smaller (the quintuple DP is the heavy one) but still beyond 2^n.
  Database db;
  const int groups = 12;
  for (int i = 0; i < 36; ++i) {
    db.AddEndogenous("R", {Value((i / groups) % 5 - 2), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  AggregateQuery avg_c{q, MakeConstantTau(R(5)), AggregateFunction::Avg()};
  auto series = AvgQuantileSumK(avg_c, db);
  auto counts = SatisfactionCounts(q.AsBoolean(), db);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  for (size_t k = 0; k < counts->size(); ++k) {
    EXPECT_EQ((*series)[k], R(5) * Rational((*counts)[k])) << "k=" << k;
  }
}

TEST(EngineScaleTest, ConstantTauDupMatchesAnswerCounts) {
  Database db = LargeDb();
  // sq-hierarchical so the Dup engine accepts any localized τ.
  ConjunctiveQuery q = MustParseQuery("Q(y) <- R(x, y), S(y)");
  ASSERT_TRUE(IsSqHierarchical(q));
  AggregateQuery dup_c{q, MakeConstantTau(R(2)),
                       AggregateFunction::HasDuplicates()};
  auto series = HasDuplicatesSumK(dup_c, db);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  Combinatorics comb;
  RelevanceSplit split = SplitRelevant(q, AllFacts(db));
  AnswerCountMap dist = AnswerCountDistribution(q, split.relevant, &comb);
  dist = PadAnswerCounts(dist, split.irrelevant_endogenous, &comb);
  int n = db.num_endogenous();
  // Dup ∘ const = [#answers >= 2]: counts per k of subsets with >= 2.
  std::vector<BigInt> at_least_two(static_cast<size_t>(n) + 1);
  for (const auto& [key, count] : dist) {
    if (key.second >= 2) at_least_two[static_cast<size_t>(key.first)] += count;
  }
  for (int k = 0; k <= n; ++k) {
    EXPECT_EQ((*series)[static_cast<size_t>(k)],
              Rational(at_least_two[static_cast<size_t>(k)]))
        << "k=" << k;
  }
}

TEST(EngineScaleTest, CountEqualsSumOfOnes) {
  Database db = LargeDb();
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  AggregateQuery count{q, MakeConstantTau(R(1)), AggregateFunction::Count()};
  AggregateQuery sum_ones{q, MakeConstantTau(R(1)), AggregateFunction::Sum()};
  auto count_series = SumCountSumK(count, db);
  auto sum_series = SumCountSumK(sum_ones, db);
  ASSERT_TRUE(count_series.ok());
  ASSERT_TRUE(sum_series.ok());
  for (size_t k = 0; k < sum_series->size(); ++k) {
    EXPECT_EQ((*count_series)[k], (*sum_series)[k]);
  }
}

TEST(EngineScaleTest, ClosedFormsAgreeWithDpAt200Facts) {
  Database db;
  for (int i = 0; i < 200; ++i) {
    db.AddEndogenous("R", {Value(i), Value((i * 37) % 41 - 13)});
  }
  ConjunctiveQuery q = MustParseQuery("Q(i, v) <- R(i, v)");
  AggregateQuery max_q{q, MakeTauId(1), AggregateFunction::Max()};
  AggregateQuery cd_q{q, MakeTauId(1), AggregateFunction::CountDistinct()};
  for (FactId probe : {FactId{0}, FactId{99}, FactId{199}}) {
    EXPECT_EQ(*ClosedFormMax(max_q, db, probe),
              *ScoreViaSumK(max_q, db, probe, MinMaxSumK));
    EXPECT_EQ(*ClosedFormCountDistinct(cd_q, db, probe),
              *ScoreViaSumK(cd_q, db, probe, CountDistinctSumK));
  }
}

TEST(EngineScaleTest, EfficiencyAxiomViaEnginesOnly) {
  // Σ_f Shapley(f) = A(D) − A(D_x) verified with the Max engine alone on a
  // 60-fact database (no brute force anywhere).
  Database db;
  const int groups = 15;
  for (int i = 0; i < 45; ++i) {
    db.AddEndogenous("R", {Value((i / groups) % 7 - 2), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  Rational total;
  for (FactId f : db.EndogenousFacts()) {
    total += *ScoreViaSumK(a, db, f, MinMaxSumK);
  }
  EXPECT_EQ(total, a.Evaluate(db));  // A(D_x) = 0: no exogenous facts
}

}  // namespace
}  // namespace shapcq
