// Tests for DaemonMetrics' Prometheus rendering: label escaping, the
// bounded per-tenant label space (the "__other__" fold and its cap
// boundary), histogram bucket well-formedness, and the per-stage
// latency family fed from request traces.

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/lineage/circuit_cache.h"
#include "shapcq/lineage/stats.h"
#include "shapcq/serve/metrics.h"
#include "shapcq/shapley/plan.h"

namespace shapcq {
namespace {

std::string Render(const DaemonMetrics& metrics) {
  return RenderPrometheus(metrics, PlanCache::Stats{}, CircuitCache::Stats{},
                          LineageStatsSnapshot{});
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// Label escaping
// ---------------------------------------------------------------------------

TEST(EscapeLabelTest, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(EscapeLabel("plain"), "plain");
  EXPECT_EQ(EscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(EscapeLabel("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabel("a\nb"), "a\\nb");
  EXPECT_EQ(EscapeLabel("\\\"\n"), "\\\\\\\"\\n");
}

TEST(MetricsRenderTest, HostileTenantNameIsEscapedInExposition) {
  DaemonMetrics metrics;
  metrics.CountTenantRequest("bad\"name\nhere", DaemonMetrics::Outcome::kOk);
  std::string text = Render(metrics);
  EXPECT_NE(text.find("tenant=\"bad\\\"name\\nhere\""), std::string::npos)
      << text;
  // The raw newline must never reach the exposition inside a label.
  for (const std::string& line : Lines(text)) {
    EXPECT_EQ(line.find("bad\"name"), std::string::npos) << line;
  }
}

TEST(MetricsRenderTest, HostileEngineNameIsEscaped) {
  DaemonMetrics metrics;
  metrics.CountEngineFacts("eng\"ine", 3);
  std::string text = Render(metrics);
  EXPECT_NE(text.find("engine=\"eng\\\"ine\""), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Tenant label cap and the __other__ fold
// ---------------------------------------------------------------------------

TEST(TenantFoldTest, PostCapTenantFoldsWithoutTransientLabel) {
  DaemonMetrics metrics;
  for (size_t i = 0; i < DaemonMetrics::kMaxTenantLabels; ++i) {
    metrics.CountTenantRequest("tenant" + std::to_string(i),
                               DaemonMetrics::Outcome::kOk);
  }
  // The boundary tenant (one past the cap) must fold, never claim a slot.
  metrics.CountTenantRequest("overflow", DaemonMetrics::Outcome::kError);
  metrics.TenantQueueDelta("overflow", 1);
  auto mix = metrics.TenantMix();
  EXPECT_EQ(mix.size(), DaemonMetrics::kMaxTenantLabels + 1);
  EXPECT_EQ(mix.count("overflow"), 0u);
  ASSERT_EQ(mix.count("__other__"), 1u);
  EXPECT_EQ(mix.at("__other__").error, 1u);
  EXPECT_EQ(mix.at("__other__").queue_depth, 1);
}

TEST(TenantFoldTest, StalenessGaugeNeverWritesTheFold) {
  DaemonMetrics metrics;
  for (size_t i = 0; i < DaemonMetrics::kMaxTenantLabels; ++i) {
    metrics.CountTenantRequest("tenant" + std::to_string(i),
                               DaemonMetrics::Outcome::kOk);
  }
  // Additive counters fold; a per-tenant gauge on the shared fold slot
  // would be last-writer-wins noise, so it must be dropped instead.
  metrics.CountTenantRequest("overflow", DaemonMetrics::Outcome::kOk);
  metrics.SetTenantStaleness("overflow", 99, 7);
  auto mix = metrics.TenantMix();
  ASSERT_EQ(mix.count("__other__"), 1u);
  EXPECT_EQ(mix.at("__other__").epoch, 0u);
  EXPECT_EQ(mix.at("__other__").tombstones, 0u);
  // A tenant with its own label still gets the gauge.
  metrics.SetTenantStaleness("tenant0", 5, 2);
  mix = metrics.TenantMix();
  EXPECT_EQ(mix.at("tenant0").epoch, 5u);
  EXPECT_EQ(mix.at("tenant0").tombstones, 2u);
}

TEST(TenantFoldTest, LiteralOtherTenantFoldsAndDoesNotCountTowardCap) {
  DaemonMetrics metrics;
  metrics.CountTenantRequest("__other__", DaemonMetrics::Outcome::kError);
  metrics.SetTenantStaleness("__other__", 42, 42);
  // Every real tenant can still claim its own label afterwards.
  for (size_t i = 0; i < DaemonMetrics::kMaxTenantLabels; ++i) {
    metrics.CountTenantRequest("tenant" + std::to_string(i),
                               DaemonMetrics::Outcome::kOk);
  }
  auto mix = metrics.TenantMix();
  EXPECT_EQ(mix.size(), DaemonMetrics::kMaxTenantLabels + 1);
  ASSERT_EQ(mix.count("__other__"), 1u);
  EXPECT_EQ(mix.at("__other__").error, 1u);
  // The gauge write targeted the fold, so it was dropped.
  EXPECT_EQ(mix.at("__other__").epoch, 0u);
  for (size_t i = 0; i < DaemonMetrics::kMaxTenantLabels; ++i) {
    EXPECT_EQ(mix.count("tenant" + std::to_string(i)), 1u);
  }
}

// ---------------------------------------------------------------------------
// Stage histograms
// ---------------------------------------------------------------------------

TEST(StageHistogramTest, OmittedWhenNoStagesRecorded) {
  DaemonMetrics metrics;
  EXPECT_EQ(Render(metrics).find("shapcq_stage_seconds"), std::string::npos);
}

TEST(StageHistogramTest, BucketsAreCumulativeAndLeAscending) {
  DaemonMetrics metrics;
  metrics.RecordStage("solve", 3);
  metrics.RecordStage("solve", 300);
  metrics.RecordStage("solve", 30000);
  metrics.RecordStage("queue_wait", 10);
  std::string text = Render(metrics);
  ASSERT_NE(text.find("# TYPE shapcq_stage_seconds histogram"),
            std::string::npos);

  uint64_t previous_count = 0;
  double previous_le = -1.0;
  bool saw_inf = false;
  size_t solve_buckets = 0;
  for (const std::string& line : Lines(text)) {
    const std::string prefix = "shapcq_stage_seconds_bucket{stage=\"solve\"";
    if (line.rfind(prefix, 0) != 0) continue;
    ++solve_buckets;
    EXPECT_FALSE(saw_inf) << "+Inf must be the last bucket: " << line;
    size_t le_pos = line.find("le=\"");
    ASSERT_NE(le_pos, std::string::npos);
    std::string le_text = line.substr(le_pos + 4, line.find('"', le_pos + 4) -
                                                      (le_pos + 4));
    uint64_t count = std::strtoull(
        line.substr(line.rfind(' ') + 1).c_str(), nullptr, 10);
    EXPECT_GE(count, previous_count) << "non-monotonic bucket: " << line;
    previous_count = count;
    if (le_text == "+Inf") {
      saw_inf = true;
      EXPECT_EQ(count, 3u);  // every sample lands somewhere
    } else {
      double le = std::strtod(le_text.c_str(), nullptr);
      EXPECT_GT(le, previous_le) << "le not ascending: " << line;
      previous_le = le;
    }
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(solve_buckets, static_cast<size_t>(LatencyHistogram::kBuckets));
  EXPECT_NE(text.find("shapcq_stage_seconds_count{stage=\"solve\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("shapcq_stage_seconds_count{stage=\"queue_wait\"} 1"),
            std::string::npos);
}

TEST(StageHistogramTest, StageMixSnapshotsEveryStage) {
  DaemonMetrics metrics;
  metrics.RecordStage("plan", 5);
  metrics.RecordStage("engine:frontier", 50);
  metrics.RecordStage("engine:frontier", 70);
  auto stages = metrics.StageMix();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages.at("plan").count, 1u);
  EXPECT_EQ(stages.at("engine:frontier").count, 2u);
  EXPECT_EQ(stages.at("engine:frontier").sum_micros, 120u);
}

}  // namespace
}  // namespace shapcq
