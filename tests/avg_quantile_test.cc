// Avg/Quantile DP over q-hierarchical CQs (Section 5.1), cross-validated
// against brute force, the closed form of Proposition 5.2, and the bag-level
// quantile semantics.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/closed_forms.h"
#include "shapcq/shapley/score.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }
Rational R(int64_t n, int64_t d) { return Rational(BigInt(n), BigInt(d)); }

// q-hierarchical query shapes for the sweeps.
const char* kQHierarchicalQueries[] = {
    "Q(x) <- R(x)",
    "Q(x, y) <- R(x, y)",
    "Q(x) <- R(x, y)",
    "Q(x, y) <- R(x, y), S(y)",      // q-hier, not sq-hier
    "Q(x) <- R(x), S(x, y)",         // sq-hier
    "Q(x, y) <- R(x), S(x, y)",      // q-hier (Figure 1 example)
    "Q(x, z) <- R(x), T(z)",         // cross product
    "Q(x, y, z) <- R(x, y), S(y), T(z)",  // disconnected + projection-free
    "Q(x) <- R(x, 1), S(x)",         // constants
};

struct SweepCase {
  std::string query;
  uint64_t seed;
};

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  for (const char* q : kQHierarchicalQueries) {
    for (uint64_t seed = 1; seed <= 4; ++seed) cases.push_back({q, seed});
  }
  return cases;
}

class AvgQntSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(AvgQntSweepTest, AvgMatchesBruteForce) {
  const SweepCase& param = GetParam();
  ConjunctiveQuery q = MustParseQuery(param.query);
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = param.seed;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Avg()};
  auto dp = AvgQuantileSumK(a, db);
  auto bf = BruteForceSumK(a, db);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  ASSERT_TRUE(bf.ok());
  ASSERT_EQ(dp->size(), bf->size());
  for (size_t k = 0; k < bf->size(); ++k) {
    EXPECT_EQ((*dp)[k], (*bf)[k]) << "k=" << k;
  }
}

TEST_P(AvgQntSweepTest, MedianMatchesBruteForce) {
  const SweepCase& param = GetParam();
  ConjunctiveQuery q = MustParseQuery(param.query);
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = param.seed + 50;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Median()};
  auto dp = AvgQuantileSumK(a, db);
  auto bf = BruteForceSumK(a, db);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  for (size_t k = 0; k < bf->size(); ++k) {
    EXPECT_EQ((*dp)[k], (*bf)[k]) << "k=" << k;
  }
}

TEST_P(AvgQntSweepTest, ThirdQuantileMatchesBruteForce) {
  const SweepCase& param = GetParam();
  ConjunctiveQuery q = MustParseQuery(param.query);
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = param.seed + 90;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0),
                   AggregateFunction::Quantile(R(1, 3))};
  auto dp = AvgQuantileSumK(a, db);
  auto bf = BruteForceSumK(a, db);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  for (size_t k = 0; k < bf->size(); ++k) {
    EXPECT_EQ((*dp)[k], (*bf)[k]) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(QHierarchicalSweep, AvgQntSweepTest,
                         ::testing::ValuesIn(MakeSweep()));

// ---------------------------------------------------------------------------
// Targeted cases
// ---------------------------------------------------------------------------

TEST(AvgQuantileTest, VariousValueFunctions) {
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 5;
  options.seed = 3;
  Database db = RandomDatabaseForQuery(q, options);
  for (ValueFunctionPtr tau :
       {MakeTauId(1), MakeTauReLU(0), MakeTauGreaterThan(1, R(0)),
        MakeConstantTau(R(2))}) {
    for (AggregateFunction alpha :
         {AggregateFunction::Avg(), AggregateFunction::Median()}) {
      AggregateQuery a{q, tau, alpha};
      auto dp = AvgQuantileSumK(a, db);
      auto bf = BruteForceSumK(a, db);
      ASSERT_TRUE(dp.ok()) << tau->ToString();
      for (size_t k = 0; k < bf->size(); ++k) {
        EXPECT_EQ((*dp)[k], (*bf)[k])
            << tau->ToString() << " " << alpha.ToString() << " k=" << k;
      }
    }
  }
}

TEST(AvgQuantileTest, ShapleyScoresMatchBruteForce) {
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 8;
  Database db = RandomDatabaseForQuery(q, options);
  for (AggregateFunction alpha :
       {AggregateFunction::Avg(), AggregateFunction::Median()}) {
    AggregateQuery a{q, MakeTauId(0), alpha};
    for (FactId f : db.EndogenousFacts()) {
      auto dp = ScoreViaSumK(a, db, f, AvgQuantileSumK);
      auto bf = BruteForceScore(a, db, f);
      ASSERT_TRUE(dp.ok());
      EXPECT_EQ(*dp, *bf) << alpha.ToString();
    }
  }
}

TEST(AvgQuantileTest, AgreesWithClosedFormAvg) {
  Database db;
  for (int i = 0; i < 30; ++i) {
    db.AddEndogenous("R", {Value(i), Value((i * 13) % 17 - 5)});
  }
  ConjunctiveQuery q = MustParseQuery("Q(i, v) <- R(i, v)");
  AggregateQuery a{q, MakeTauId(1), AggregateFunction::Avg()};
  for (FactId probe : {FactId{0}, FactId{11}, FactId{29}}) {
    auto closed = ClosedFormAvg(a, db, probe);
    auto dp = ScoreViaSumK(a, db, probe, AvgQuantileSumK);
    ASSERT_TRUE(closed.ok());
    ASSERT_TRUE(dp.ok());
    EXPECT_EQ(*closed, *dp);
  }
}

TEST(AvgQuantileTest, RejectsAllHierarchicalButNotQHierarchical) {
  // Q_xyy is the paper's canonical hard query for Avg (Lemma 5.4).
  ConjunctiveQuery q_xyy = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db;
  db.AddEndogenous("R", {Value(1), Value(2)});
  db.AddEndogenous("S", {Value(2)});
  AggregateQuery a{q_xyy, MakeTauReLU(0), AggregateFunction::Avg()};
  EXPECT_FALSE(AvgQuantileSumK(a, db).ok());
}

TEST(AvgQuantileTest, ExogenousOnlyRelationStillWorks) {
  Database db;
  db.AddExogenous("R", {Value(3), Value(1)});
  db.AddExogenous("R", {Value(5), Value(2)});
  db.AddEndogenous("S", {Value(1)});
  db.AddEndogenous("S", {Value(2)});
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Avg()};
  auto dp = AvgQuantileSumK(a, db);
  auto bf = BruteForceSumK(a, db);
  ASSERT_TRUE(dp.ok());
  for (size_t k = 0; k < bf->size(); ++k) EXPECT_EQ((*dp)[k], (*bf)[k]);
}

// The production path counts in CountValue (fixed-width with BigInt
// escape); the pure-BigInt instantiation is the differential oracle. Both
// are exact, so every series entry must agree bitwise.
TEST(AvgQuantileTest, CountValuePathMatchesBigIntOracleBitwise) {
  for (const char* query : kQHierarchicalQueries) {
    ConjunctiveQuery q = MustParseQuery(query);
    for (uint64_t seed : {7u, 21u}) {
      RandomDatabaseOptions options;
      options.facts_per_relation = 6;
      options.seed = seed;
      Database db = RandomDatabaseForQuery(q, options);
      for (AggregateFunction alpha :
           {AggregateFunction::Avg(), AggregateFunction::Median(),
            AggregateFunction::Quantile(R(1, 3))}) {
        AggregateQuery a{q, MakeTauId(0), alpha};
        auto fast = AvgQuantileSumK(a, db);
        auto oracle = AvgQuantileSumKBigInt(a, db);
        ASSERT_TRUE(fast.ok()) << fast.status().ToString();
        ASSERT_TRUE(oracle.ok());
        ASSERT_EQ(fast->size(), oracle->size());
        for (size_t k = 0; k < oracle->size(); ++k) {
          EXPECT_EQ((*fast)[k], (*oracle)[k])
              << query << " " << alpha.ToString() << " seed=" << seed
              << " k=" << k;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// f_q (QuantileContribution) unit behavior
// ---------------------------------------------------------------------------

TEST(QuantileContributionTest, MatchesDirectQuantileDecomposition) {
  // For any bag profile, summing value · f_q over the distinct values must
  // reproduce Qnt_q of the bag.
  std::vector<std::vector<int>> bags = {
      {1}, {1, 2}, {1, 1, 2}, {1, 2, 3, 4}, {2, 2, 2}, {1, 3, 3, 7, 9},
      {5, 4, 3, 2, 1, 0},
  };
  for (const Rational& q :
       {R(1, 2), R(1, 4), R(3, 4), R(1, 3), R(2, 3), R(9, 10)}) {
    for (const auto& bag : bags) {
      std::vector<Rational> values;
      for (int v : bag) values.push_back(R(v));
      Rational expected = AggregateFunction::Quantile(q).Apply(values);
      // Decompose: for each distinct value, count less/equal/greater.
      std::vector<Rational> distinct = values;
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      Rational reconstructed;
      for (const Rational& v : distinct) {
        int64_t less = 0, equal = 0, greater = 0;
        for (const Rational& w : values) {
          if (w < v) ++less;
          else if (w == v) ++equal;
          else ++greater;
        }
        reconstructed += v * QuantileContribution(q, less, equal, greater);
      }
      EXPECT_EQ(reconstructed, expected)
          << "q=" << q.ToString() << " bag size " << bag.size();
    }
  }
}

TEST(QuantileContributionTest, ZeroCases) {
  EXPECT_TRUE(QuantileContribution(R(1, 2), 0, 0, 0).is_zero());
  EXPECT_TRUE(QuantileContribution(R(1, 2), 3, 0, 2).is_zero());
  // Anchor below the median position.
  EXPECT_TRUE(QuantileContribution(R(1, 2), 0, 1, 4).is_zero());
}

}  // namespace
}  // namespace shapcq
