// Differential tests of the backtracking join evaluator against a naive
// reference implementation (enumerate ALL variable assignments over the
// active domain), on random queries of every hierarchy class.

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/data/database.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/query/parser.h"
#include "shapcq/workload/generators.h"
#include "shapcq/workload/random_query.h"

namespace shapcq {
namespace {

// Naive evaluation: try every mapping vars(Q) -> active domain.
std::set<Tuple> NaiveEvaluate(const ConjunctiveQuery& q, const Database& db) {
  // Active domain.
  std::vector<Value> domain;
  {
    std::set<Value> seen;
    for (FactId id = 0; id < db.num_facts(); ++id) {
      for (const Value& v : db.fact(id).args) seen.insert(v);
    }
    domain.assign(seen.begin(), seen.end());
  }
  const std::vector<std::string>& variables = q.variables();
  std::set<Tuple> answers;
  std::vector<size_t> choice(variables.size(), 0);
  if (domain.empty()) return answers;
  while (true) {
    Binding binding;
    for (size_t i = 0; i < variables.size(); ++i) {
      binding[variables[i]] = domain[choice[i]];
    }
    bool satisfied = true;
    for (const Atom& atom : q.atoms()) {
      Tuple expected;
      for (const Term& term : atom.terms) {
        expected.push_back(term.is_constant() ? term.constant()
                                              : binding[term.variable()]);
      }
      if (!db.Contains(atom.relation, expected)) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) {
      Tuple answer;
      for (const std::string& head_var : q.head()) {
        answer.push_back(binding[head_var]);
      }
      answers.insert(answer);
    }
    // Odometer increment.
    size_t position = 0;
    while (position < choice.size()) {
      if (++choice[position] < domain.size()) break;
      choice[position] = 0;
      ++position;
    }
    if (position == choice.size()) break;
    if (choice.empty()) break;
  }
  return answers;
}

TEST(EvaluatorReferenceTest, MatchesNaiveOnHandwrittenQueries) {
  std::vector<const char*> queries = {
      "Q(x) <- R(x, y), S(y)",
      "Q(x, y) <- R(x, y), S(y)",
      "Q() <- R(x, y), S(y), T(y, z)",
      "Q(x, z) <- R(x), T(z)",
      "Q(x) <- R(x, x)",
      "Q(x) <- R(x, 1), S(x)",
      "Q(y) <- R(x), S(x, y)",
  };
  for (const char* text : queries) {
    ConjunctiveQuery q = MustParseQuery(text);
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      RandomDatabaseOptions options;
      options.facts_per_relation = 4;
      options.domain_size = 3;
      options.seed = seed;
      Database db = RandomDatabaseForQuery(q, options);
      std::vector<Tuple> fast = Evaluate(q, db);
      std::set<Tuple> fast_set(fast.begin(), fast.end());
      EXPECT_EQ(fast_set.size(), fast.size()) << text << ": duplicates";
      EXPECT_EQ(fast_set, NaiveEvaluate(q, db)) << text << " seed " << seed;
    }
  }
}

TEST(EvaluatorReferenceTest, MatchesNaiveOnRandomQueries) {
  for (HierarchyClass target :
       {HierarchyClass::kSqHierarchical, HierarchyClass::kQHierarchical,
        HierarchyClass::kAllHierarchical, HierarchyClass::kGeneral}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      RandomQueryOptions query_options;
      query_options.max_variables = 3;
      query_options.seed = seed;
      ConjunctiveQuery q = RandomQueryOfClass(target, query_options);
      RandomDatabaseOptions db_options;
      db_options.facts_per_relation = 3;
      db_options.domain_size = 3;
      db_options.seed = seed * 13;
      Database db = RandomDatabaseForQuery(q, db_options);
      std::vector<Tuple> fast = Evaluate(q, db);
      std::set<Tuple> fast_set(fast.begin(), fast.end());
      EXPECT_EQ(fast_set, NaiveEvaluate(q, db))
          << q.ToString() << " seed " << seed;
    }
  }
}

TEST(EvaluatorReferenceTest, HomomorphismsAreExactlyTheSatisfyingMaps) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db;
  db.AddEndogenous("R", {Value(1), Value(10)});
  db.AddEndogenous("R", {Value(1), Value(20)});
  db.AddEndogenous("R", {Value(2), Value(10)});
  db.AddEndogenous("S", {Value(10)});
  db.AddEndogenous("S", {Value(20)});
  std::vector<Homomorphism> homs = EnumerateHomomorphisms(q, db);
  EXPECT_EQ(homs.size(), 3u);  // (1,10), (1,20), (2,10)
  std::set<std::pair<Value, Value>> images;
  for (const Homomorphism& hom : homs) {
    images.insert({hom.binding.at("x"), hom.binding.at("y")});
    // used_facts consistent with the binding.
    EXPECT_EQ(db.fact(hom.used_facts[0]).args[0], hom.binding.at("x"));
    EXPECT_EQ(db.fact(hom.used_facts[1]).args[0], hom.binding.at("y"));
  }
  EXPECT_EQ(images.size(), 3u);
}

}  // namespace
}  // namespace shapcq
