// Tests for the lineage-circuit subsystem (src/shapcq/lineage/):
//
//   * the decision-DNNF compiler and its size-stratified model counts,
//     differentially against 2^m truth-table enumeration;
//   * the formula-cache (compilation sharing) with counts still exact;
//   * the engine, bitwise-equal to brute force on randomized
//     non-hierarchical (and self-join) workloads, every score kind, thread
//     counts {1, 2, 8};
//   * exactness BEYOND the brute-force horizon (> 26 players), checked via
//     the Shapley efficiency identity Σ_f Shapley_f = A(D) − A(D_x);
//   * the compilation budget falling through to brute force / Monte Carlo;
//   * plan wiring: the engine chain, Explain(), fingerprints.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/lineage/circuit.h"
#include "shapcq/lineage/circuit_cache.h"
#include "shapcq/lineage/engine.h"
#include "shapcq/lineage/lineage.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/session.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

SolverOptions Options(ScoreKind kind, int num_threads = 0) {
  SolverOptions options;
  options.score = kind;
  options.num_threads = num_threads;
  return options;
}

bool ClauseSatisfied(const std::vector<int>& clause, uint64_t mask) {
  for (int v : clause) {
    if ((mask & (uint64_t{1} << v)) == 0) return false;
  }
  return true;
}

bool DnfSatisfied(const std::vector<std::vector<int>>& clauses,
                  uint64_t mask) {
  for (const std::vector<int>& clause : clauses) {
    if (ClauseSatisfied(clause, mask)) return true;
  }
  return false;
}

// Truth-table reference for CountModelsBySize.
CircuitModelCounts EnumerateCounts(
    const std::vector<std::vector<int>>& clauses, int num_vars) {
  CircuitModelCounts counts;
  counts.by_size.assign(static_cast<size_t>(num_vars) + 1, BigInt());
  counts.containing.assign(
      static_cast<size_t>(num_vars),
      std::vector<BigInt>(static_cast<size_t>(num_vars) + 1, BigInt()));
  for (uint64_t mask = 0; mask < (uint64_t{1} << num_vars); ++mask) {
    if (!DnfSatisfied(clauses, mask)) continue;
    int ones = __builtin_popcountll(mask);
    counts.by_size[static_cast<size_t>(ones)] += BigInt(1);
    for (int v = 0; v < num_vars; ++v) {
      if (mask & (uint64_t{1} << v)) {
        counts.containing[static_cast<size_t>(v)]
                         [static_cast<size_t>(ones)] += BigInt(1);
      }
    }
  }
  return counts;
}

void ExpectCountsMatch(const std::vector<std::vector<int>>& clauses,
                       int num_vars, const std::string& label) {
  StatusOr<LineageCircuit> circuit = CompileDnf(clauses, num_vars);
  ASSERT_TRUE(circuit.ok()) << label << ": " << circuit.status().ToString();
  Combinatorics comb;
  CircuitModelCounts actual = CountModelsBySize(*circuit, &comb);
  CircuitModelCounts expected = EnumerateCounts(clauses, num_vars);
  ASSERT_EQ(actual.by_size.size(), expected.by_size.size()) << label;
  for (size_t k = 0; k < expected.by_size.size(); ++k) {
    EXPECT_EQ(actual.by_size[k], expected.by_size[k])
        << label << " by_size[" << k << "]";
  }
  for (int v = 0; v < num_vars; ++v) {
    for (size_t k = 0; k <= static_cast<size_t>(num_vars); ++k) {
      EXPECT_EQ(actual.containing[static_cast<size_t>(v)][k],
                expected.containing[static_cast<size_t>(v)][k])
          << label << " containing[" << v << "][" << k << "]";
    }
  }
}

TEST(CircuitTest, ConstantsAndSingleClauses) {
  ExpectCountsMatch({}, 3, "constant false");
  ExpectCountsMatch({{}}, 3, "constant true");
  ExpectCountsMatch({{0}}, 1, "one literal");
  ExpectCountsMatch({{0}}, 4, "literal with free universe");
  ExpectCountsMatch({{0, 1, 2}}, 3, "single clause");
  ExpectCountsMatch({{0, 2}, {1}}, 4, "two clauses");
}

TEST(CircuitTest, CountsMatchEnumerationOnRandomDnfs) {
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int round = 0; round < 60; ++round) {
    int num_vars = 2 + static_cast<int>(next() % 9);  // 2..10
    int num_clauses = 1 + static_cast<int>(next() % 6);
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < num_clauses; ++c) {
      int len = 1 + static_cast<int>(next() % 4);
      std::vector<int> clause;
      for (int i = 0; i < len; ++i) {
        clause.push_back(static_cast<int>(next() % num_vars));
      }
      clauses.push_back(std::move(clause));
    }
    ExpectCountsMatch(clauses, num_vars,
                      "round " + std::to_string(round));
  }
}

TEST(CircuitTest, FormulaCacheSharesIndependentGroups) {
  // OR of independent blocks: branching stays in the first component, so
  // the trailing blocks compile once and are shared through the memo.
  std::vector<std::vector<int>> clauses = {
      {0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}, {7, 8}};
  StatusOr<LineageCircuit> circuit = CompileDnf(clauses, 9);
  ASSERT_TRUE(circuit.ok());
  EXPECT_GT(circuit->cache_hits, 0);
  ExpectCountsMatch(clauses, 9, "independent groups");
  // Sanity on size: additive in the blocks, far below the 2^9 table.
  EXPECT_LT(circuit->num_nodes(), 64);
}

TEST(CircuitTest, BudgetAborts) {
  CircuitBudget tiny;
  tiny.max_nodes = 2;  // just the constants
  StatusOr<LineageCircuit> circuit = CompileDnf({{0, 1}, {1, 2}}, 3, tiny);
  ASSERT_FALSE(circuit.ok());
  EXPECT_EQ(circuit.status().code(), StatusCode::kUnsupported);
  EXPECT_NE(circuit.status().message().find("budget"), std::string::npos);

  CircuitBudget narrow;
  narrow.max_vars = 2;
  EXPECT_FALSE(CompileDnf({{0, 1}, {1, 2}}, 3, narrow).ok());

  CircuitBudget few_clauses;
  few_clauses.max_clauses = 1;
  EXPECT_FALSE(CompileDnf({{0, 1}, {1, 2}}, 3, few_clauses).ok());
}

TEST(LineageExtractionTest, MinimalSupportsPerAnswer) {
  // R(1) is an endogenous shortcut to the same answer that also flows
  // through the exogenous R(2): the minimal support keeps only {S(1)} for
  // the exogenous path... spelled out: answer 1 is alive via
  // (R(1), S(1)) and via (R(2) exogenous, S(1)) — the second support is
  // {S(1)} alone, which subsumes the first.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(y), S(x)");
  Database db;
  FactId r1 = db.AddEndogenous("R", {Value(1)});
  db.AddExogenous("R", {Value(2)});
  FactId s1 = db.AddEndogenous("S", {Value(1)});
  (void)r1;
  LineageSet lineage = ExtractLineage(q, db);
  ASSERT_EQ(lineage.answers.size(), 1u);
  const AnswerLineage& answer = lineage.answers.front();
  ASSERT_EQ(answer.clauses.size(), 1u);
  ASSERT_EQ(answer.clauses.front().size(), 1u);
  EXPECT_EQ(lineage.players[static_cast<size_t>(
                answer.clauses.front().front())],
            s1);
}

// The differential workhorse: lineage-circuit == brute force, bit for
// bit, on every endogenous fact.
void ExpectMatchesBruteForce(const AggregateQuery& a, const Database& db,
                             const std::string& label) {
  ASSERT_LE(db.num_endogenous(), kBruteForceMaxPlayers) << label;
  for (ScoreKind kind : {ScoreKind::kShapley, ScoreKind::kBanzhaf}) {
    auto brute = BruteForceScoreAll(a, db, kind);
    ASSERT_TRUE(brute.ok()) << label;
    for (int threads : {1, 2, 8}) {
      auto circuit = LineageCircuitScoreAll(a, db, Options(kind, threads));
      ASSERT_TRUE(circuit.ok())
          << label << ": " << circuit.status().ToString();
      ASSERT_EQ(circuit->size(), brute->size()) << label;
      for (size_t i = 0; i < brute->size(); ++i) {
        EXPECT_EQ((*circuit)[i].first, (*brute)[i].first) << label;
        EXPECT_EQ((*circuit)[i].second, (*brute)[i].second)
            << label << " kind "
            << (kind == ScoreKind::kShapley ? "shapley" : "banzhaf")
            << " threads " << threads << " fact " << (*brute)[i].first;
      }
    }
    // Per-fact entry point agrees with the batch.
    auto batch = LineageCircuitScoreAll(a, db, Options(kind, 1));
    ASSERT_TRUE(batch.ok()) << label;
    for (const auto& [fact, score] : *batch) {
      auto one = LineageCircuitScoreOne(a, db, fact, Options(kind));
      ASSERT_TRUE(one.ok()) << label;
      EXPECT_EQ(*one, score) << label << " fact " << fact;
    }
  }
}

TEST(LineageEngineTest, MatchesBruteForceOnNonHierarchicalWorkloads) {
  struct Case {
    std::string query;
    AggregateFunction alpha;
    ValueFunctionPtr tau;
    std::string label;
  };
  const std::vector<Case> cases = {
      {"Q() <- R(x), S(x, y), T(y)", AggregateFunction::Count(),
       MakeConstantTau(Rational(1)), "boolean membership count"},
      {"Q(z) <- R(z, x), S(x, y), T(y)", AggregateFunction::Sum(),
       MakeTauId(0), "chain sum tau_id"},
      {"Q(z) <- R(z, x), S(x, y), T(y)", AggregateFunction::Sum(),
       MakeTauReLU(0), "chain sum tau_relu"},
      {"Q(z) <- R(z, x), S(x, y), T(y)", AggregateFunction::Count(),
       MakeConstantTau(Rational(1)), "chain count"},
      {"Q(x) <- R(x, y), R(y, z)", AggregateFunction::Sum(), MakeTauId(0),
       "self-join sum"},
      {"Q(x) <- R(x, y), S(y)", AggregateFunction::Sum(), MakeTauId(0),
       "exists-hierarchical sum (agrees with the linearity engine too)"},
  };
  for (const Case& c : cases) {
    ConjunctiveQuery q = MustParseQuery(c.query);
    for (uint64_t seed : {1, 7, 23}) {
      RandomDatabaseOptions options;
      options.facts_per_relation = 5;
      options.endogenous_percent = 80;
      options.seed = seed;
      Database db = RandomDatabaseForQuery(q, options);
      if (db.num_endogenous() == 0 ||
          db.num_endogenous() > kBruteForceMaxPlayers) {
        continue;
      }
      AggregateQuery a{q, c.tau, c.alpha};
      ExpectMatchesBruteForce(
          a, db, c.label + " seed " + std::to_string(seed));
    }
  }
}

TEST(LineageEngineTest, SumKSeriesMatchesBruteForce) {
  ConjunctiveQuery q = MustParseQuery("Q(z) <- R(z, x), S(x, y), T(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 11;
  Database db = RandomDatabaseForQuery(q, options);
  ASSERT_GT(db.num_endogenous(), 0);
  ASSERT_LE(db.num_endogenous(), kBruteForceMaxPlayers);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
  auto brute = BruteForceSumK(a, db);
  ASSERT_TRUE(brute.ok());
  auto circuit = LineageCircuitSumK(a, db);
  ASSERT_TRUE(circuit.ok()) << circuit.status().ToString();
  ASSERT_EQ(circuit->size(), brute->size());
  for (size_t k = 0; k < brute->size(); ++k) {
    EXPECT_EQ((*circuit)[k], (*brute)[k]) << "k = " << k;
  }
}

TEST(LineageEngineTest, SumKRespectsConfiguredLineageBudget) {
  // Regression: SolverOptions now flows through SumKEngine, so a
  // starved budget must make LineageCircuitSumK refuse — it used to
  // silently compile under the defaults.
  ConjunctiveQuery q = MustParseQuery("Q(z) <- R(z, x), S(x, y), T(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 11;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
  SolverOptions starved;
  starved.lineage.max_answer_vars = 1;
  auto refused = LineageCircuitSumK(a, db, starved);
  EXPECT_FALSE(refused.ok());
  auto defaulted = LineageCircuitSumK(a, db);
  ASSERT_TRUE(defaulted.ok()) << defaulted.status().ToString();
}

// BlockChainDatabase (workload/generators.h): per-answer lineage splits
// into 7-fact blocks behind the non-∃-hierarchical chain query, so brute
// force needs 2^(7·groups) subsets while the circuits stay tiny.

TEST(LineageEngineTest, ExactBeyondTheBruteForceHorizon) {
  ConjunctiveQuery q = MustParseQuery("Q(z) <- R(z, x), S(x, y), T(y)");
  Database db = BlockChainDatabase(6);  // 42 endogenous facts
  ASSERT_GT(db.num_endogenous(), kBruteForceMaxPlayers);
  EXPECT_FALSE(IsExistsHierarchical(q));
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
  SolverSession session(a, db);
  auto results = session.ComputeAll(Options(ScoreKind::kShapley, 0));
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  Rational total;
  for (const auto& [fact, result] : *results) {
    EXPECT_TRUE(result.is_exact);
    EXPECT_EQ(result.algorithm, "lineage-circuit");
    total += result.exact;
  }
  // Shapley efficiency: the scores partition A(D) − A(D_x) = A(D).
  EXPECT_EQ(total, a.Evaluate(db));
  // Thread-count invariance, bit for bit, past the horizon too.
  auto serial = session.ComputeAll(Options(ScoreKind::kShapley, 1));
  auto wide = session.ComputeAll(Options(ScoreKind::kShapley, 8));
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(wide.ok());
  ASSERT_EQ(serial->size(), wide->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*serial)[i].second.exact, (*wide)[i].second.exact);
    EXPECT_EQ((*serial)[i].second.exact, (*results)[i].second.exact);
  }
}

TEST(LineageEngineTest, BudgetFallsThroughToMonteCarlo) {
  ConjunctiveQuery q = MustParseQuery("Q(z) <- R(z, x), S(x, y), T(y)");
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
  LineageStats::Global().Reset();

  // Past the horizon with a starved budget: the only remaining road is
  // Monte Carlo.
  Database big = BlockChainDatabase(6);
  SolverSession big_session(a, big);
  SolverOptions starved = Options(ScoreKind::kShapley, 2);
  starved.lineage.max_circuit_nodes = 2;
  starved.monte_carlo.num_samples = 64;
  auto sampled = big_session.ComputeAll(starved);
  ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
  for (const auto& [fact, result] : *sampled) {
    EXPECT_FALSE(result.is_exact);
    EXPECT_EQ(result.algorithm, "monte-carlo");
    EXPECT_EQ(result.samples, 64);
  }
  EXPECT_GT(LineageStats::Global().Snapshot().budget_fallbacks, 0u);

  // Within the horizon the same starved budget lands in brute force and
  // stays exact.
  Database small = BlockChainDatabase(2);  // 14 facts
  SolverSession small_session(a, small);
  auto brute = small_session.ComputeAll(starved);
  ASSERT_TRUE(brute.ok());
  for (const auto& [fact, result] : *brute) {
    EXPECT_TRUE(result.is_exact);
    EXPECT_EQ(result.algorithm, "brute-force");
  }
}

TEST(LineageEngineTest, RefusesNonLinearAggregates) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  Database db = BlockChainDatabase(1);
  AggregateQuery avg{q, MakeTauId(0), AggregateFunction::Avg()};
  EXPECT_FALSE(LineageCircuitScoreAll(avg, db, Options(ScoreKind::kShapley))
                   .ok());
}

TEST(LineagePlanTest, EngineChainAndFingerprints) {
  ConjunctiveQuery q = MustParseQuery("Q(z) <- R(z, x), S(x, y), T(y)");
  AggregateQuery sum{q, MakeTauId(0), AggregateFunction::Sum()};
  auto plan = AttributionPlan::Compile(sum);
  // The chain holds the linearity DP first and the circuit engine as the
  // exact backstop; Explain surfaces it with all three entry points.
  bool found = false;
  for (const EngineProvider* engine : plan->engines()) {
    if (engine->name == "lineage-circuit") {
      found = true;
      EXPECT_TRUE(engine->score_all != nullptr);
      EXPECT_TRUE(engine->score_one != nullptr);
      EXPECT_TRUE(engine->sum_k != nullptr);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(plan->Explain().find("lineage-circuit"), std::string::npos);
  // The chain order puts the frontier DP ahead of the circuit backstop.
  ASSERT_FALSE(plan->engines().empty());
  EXPECT_EQ(plan->engines().front()->name, "sum-count/linearity");
  EXPECT_EQ(plan->engines().back()->name, "lineage-circuit");
  // Fingerprint sensitivity: the plans around the new engine chain stay
  // distinct per aggregate and score kind (cache keys never collide).
  AggregateQuery count{q, MakeTauId(0), AggregateFunction::Count()};
  EXPECT_NE(plan->fingerprint(),
            AttributionPlan::Compile(count)->fingerprint());
  EXPECT_NE(plan->fingerprint(),
            AttributionPlan::Compile(sum, ScoreKind::kBanzhaf)
                ->fingerprint());
  // Min over the same query never gets the circuit engine (non-linear α).
  AggregateQuery min_a{q, MakeTauId(0), AggregateFunction::Min()};
  auto min_plan = AttributionPlan::Compile(min_a);
  for (const EngineProvider* engine : min_plan->engines()) {
    EXPECT_NE(engine->name, "lineage-circuit");
  }
}

TEST(LineageStatsTest, CountersAccumulateAndReset) {
  LineageStats::Global().Reset();
  // A shape another test already solved would be served from the shared
  // CircuitCache without compiling anything; start cold.
  CircuitCache::Global().Clear();
  ConjunctiveQuery q = MustParseQuery("Q(z) <- R(z, x), S(x, y), T(y)");
  Database db = BlockChainDatabase(3);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
  auto scores = LineageCircuitScoreAll(a, db, Options(ScoreKind::kShapley));
  ASSERT_TRUE(scores.ok());
  LineageStatsSnapshot snapshot = LineageStats::Global().Snapshot();
  EXPECT_GT(snapshot.circuits_compiled, 0u);
  EXPECT_GT(snapshot.circuit_nodes, 0u);
  EXPECT_GE(snapshot.cache_lookups, snapshot.cache_hits);
  LineageStats::Global().Reset();
  EXPECT_EQ(LineageStats::Global().Snapshot().circuits_compiled, 0u);
}

}  // namespace
}  // namespace shapcq
