// Min/Max DP (Section 4.2), CountDistinct reduction (Lemma 4.3), and the
// single-relation closed forms (Propositions 4.2, 4.4, 5.2), all
// cross-validated against brute force.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/closed_forms.h"
#include "shapcq/shapley/count_distinct.h"
#include "shapcq/shapley/min_max.h"
#include "shapcq/shapley/score.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }
Rational R(int64_t n, int64_t d) { return Rational(BigInt(n), BigInt(d)); }

// All all-hierarchical query shapes used for DP-vs-brute-force sweeps.
const char* kAllHierarchicalQueries[] = {
    "Q(x) <- R(x)",
    "Q(x, y) <- R(x, y)",
    "Q(x) <- R(x, y)",
    "Q(x) <- R(x, y), S(y)",        // Q_xyy: all-hier, not q-hier
    "Q(x, y) <- R(x, y), S(y)",     // Q_xyy^full: q-hier, not sq-hier
    "Q(x) <- R(x), S(x, y)",        // sq-hier
    "Q(y) <- R(x), S(x, y)",        // all-hier, not q-hier
    "Q(x, z) <- R(x, y), S(y), T(z)",  // disconnected, Section 7.2
    "Q(x, z) <- R(x), T(z)",        // pure cross product
    "Q(x) <- R(x, 1), S(x)",        // constants in atoms
};

struct SweepCase {
  std::string query;
  uint64_t seed;
};

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  for (const char* q : kAllHierarchicalQueries) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      cases.push_back({q, seed});
    }
  }
  return cases;
}

class MinMaxSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MinMaxSweepTest, MaxMatchesBruteForce) {
  const SweepCase& param = GetParam();
  ConjunctiveQuery q = MustParseQuery(param.query);
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = param.seed;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  auto dp = MinMaxSumK(a, db);
  auto bf = BruteForceSumK(a, db);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  ASSERT_TRUE(bf.ok());
  ASSERT_EQ(dp->size(), bf->size());
  for (size_t k = 0; k < bf->size(); ++k) {
    EXPECT_EQ((*dp)[k], (*bf)[k]) << "k=" << k;
  }
}

TEST_P(MinMaxSweepTest, MinMatchesBruteForce) {
  const SweepCase& param = GetParam();
  ConjunctiveQuery q = MustParseQuery(param.query);
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = param.seed + 100;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Min()};
  auto dp = MinMaxSumK(a, db);
  auto bf = BruteForceSumK(a, db);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  ASSERT_TRUE(bf.ok());
  for (size_t k = 0; k < bf->size(); ++k) {
    EXPECT_EQ((*dp)[k], (*bf)[k]) << "k=" << k;
  }
}

TEST_P(MinMaxSweepTest, CountDistinctMatchesBruteForce) {
  const SweepCase& param = GetParam();
  ConjunctiveQuery q = MustParseQuery(param.query);
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = param.seed + 200;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::CountDistinct()};
  auto dp = CountDistinctSumK(a, db);
  auto bf = BruteForceSumK(a, db);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  ASSERT_TRUE(bf.ok());
  for (size_t k = 0; k < bf->size(); ++k) {
    EXPECT_EQ((*dp)[k], (*bf)[k]) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(AllHierarchicalSweep, MinMaxSweepTest,
                         ::testing::ValuesIn(MakeSweep()));

// ---------------------------------------------------------------------------
// Targeted Min/Max cases
// ---------------------------------------------------------------------------

TEST(MinMaxTest, DifferentValueFunctions) {
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 5;
  options.seed = 5;
  Database db = RandomDatabaseForQuery(q, options);
  for (ValueFunctionPtr tau :
       {MakeTauId(1), MakeTauReLU(0), MakeTauGreaterThan(0, R(0)),
        MakeConstantTau(R(3))}) {
    AggregateQuery a{q, tau, AggregateFunction::Max()};
    auto dp = MinMaxSumK(a, db);
    auto bf = BruteForceSumK(a, db);
    ASSERT_TRUE(dp.ok()) << tau->ToString() << ": " << dp.status().ToString();
    for (size_t k = 0; k < bf->size(); ++k) {
      EXPECT_EQ((*dp)[k], (*bf)[k]) << tau->ToString() << " k=" << k;
    }
  }
}

TEST(MinMaxTest, ShapleyScoresMatchBruteForce) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 9;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  for (FactId f : db.EndogenousFacts()) {
    auto dp = ScoreViaSumK(a, db, f, MinMaxSumK);
    auto bf = BruteForceScore(a, db, f);
    ASSERT_TRUE(dp.ok());
    EXPECT_EQ(*dp, *bf) << db.fact(f).ToString();
  }
}

TEST(MinMaxTest, ExogenousHeavyDatabase) {
  // Mostly exogenous facts: answers exist even for the empty coalition.
  Database db;
  db.AddExogenous("R", {Value(5), Value(1)});
  db.AddExogenous("S", {Value(1)});
  db.AddEndogenous("R", {Value(9), Value(2)});
  db.AddEndogenous("S", {Value(2)});
  db.AddEndogenous("R", {Value(-2), Value(1)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  auto dp = MinMaxSumK(a, db);
  auto bf = BruteForceSumK(a, db);
  ASSERT_TRUE(dp.ok());
  for (size_t k = 0; k < bf->size(); ++k) EXPECT_EQ((*dp)[k], (*bf)[k]);
}

TEST(MinMaxTest, RejectsNonAllHierarchical) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x), S(x, y), T(y)");
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("S", {Value(1), Value(2)});
  db.AddEndogenous("T", {Value(2)});
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  EXPECT_FALSE(MinMaxSumK(a, db).ok());
}

TEST(MinMaxTest, RejectsNonLocalizedTau) {
  // τ depends on both x and z, which never share an atom.
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(x), T(z)");
  auto tau = MakeCallbackTau(
      [](const Tuple& t) { return t[0].AsRational() + t[1].AsRational(); },
      {0, 1}, "x+z");
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("T", {Value(2)});
  AggregateQuery a{q, tau, AggregateFunction::Max()};
  EXPECT_FALSE(MinMaxSumK(a, db).ok());
}

// ---------------------------------------------------------------------------
// CountDistinct specifics
// ---------------------------------------------------------------------------

TEST(CountDistinctTest, ScoresMatchBruteForce) {
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 31;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery a{q, MakeTauId(1), AggregateFunction::CountDistinct()};
  for (FactId f : db.EndogenousFacts()) {
    auto dp = ScoreViaSumK(a, db, f, CountDistinctSumK);
    auto bf = BruteForceScore(a, db, f);
    ASSERT_TRUE(dp.ok());
    EXPECT_EQ(*dp, *bf);
  }
}

TEST(CountDistinctTest, ConstantTauBehavesLikeMembership) {
  // With τ ≡ c, CDist is the 0/1 non-emptiness indicator.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 12;
  Database db = RandomDatabaseForQuery(q, options);
  AggregateQuery cdist{q, MakeConstantTau(R(7)),
                       AggregateFunction::CountDistinct()};
  auto dp = CountDistinctSumK(cdist, db);
  auto bf = BruteForceSumK(cdist, db);
  ASSERT_TRUE(dp.ok());
  for (size_t k = 0; k < bf->size(); ++k) EXPECT_EQ((*dp)[k], (*bf)[k]);
}

// ---------------------------------------------------------------------------
// Closed forms (Propositions 4.2, 4.4, 5.2)
// ---------------------------------------------------------------------------

Database SingleRelationDb(const std::vector<int>& values) {
  Database db;
  for (size_t i = 0; i < values.size(); ++i) {
    db.AddEndogenous("R", {Value(static_cast<int64_t>(i)),
                           Value(values[i])});
  }
  return db;
}

TEST(ClosedFormTest, AppliesDetection) {
  Database db = SingleRelationDb({1, 2});
  AggregateQuery good{MustParseQuery("Q(i, v) <- R(i, v)"), MakeTauId(1),
                      AggregateFunction::Max()};
  EXPECT_TRUE(ClosedFormApplies(good, db));
  AggregateQuery projected{MustParseQuery("Q(i) <- R(i, v)"), MakeTauId(0),
                           AggregateFunction::Max()};
  EXPECT_FALSE(ClosedFormApplies(projected, db));
  Database with_exo = SingleRelationDb({1});
  with_exo.AddExogenous("R", {Value(9), Value(9)});
  EXPECT_FALSE(ClosedFormApplies(good, with_exo));
}

TEST(ClosedFormTest, CountDistinctFormula) {
  Database db = SingleRelationDb({5, 5, 7});
  AggregateQuery a{MustParseQuery("Q(i, v) <- R(i, v)"), MakeTauId(1),
                   AggregateFunction::CountDistinct()};
  EXPECT_EQ(*ClosedFormCountDistinct(a, db, 0), R(1, 2));
  EXPECT_EQ(*ClosedFormCountDistinct(a, db, 1), R(1, 2));
  EXPECT_EQ(*ClosedFormCountDistinct(a, db, 2), R(1));
}

TEST(ClosedFormTest, FormulasMatchBruteForce) {
  std::vector<std::vector<int>> datasets = {
      {5}, {5, 3}, {5, 5}, {1, 2, 3}, {4, 4, 2, 2}, {-1, 0, 2, 2, 7},
      {3, 1, 4, 1, 5, 9},
  };
  ConjunctiveQuery q = MustParseQuery("Q(i, v) <- R(i, v)");
  for (const auto& values : datasets) {
    Database db = SingleRelationDb(values);
    AggregateQuery max_q{q, MakeTauId(1), AggregateFunction::Max()};
    AggregateQuery min_q{q, MakeTauId(1), AggregateFunction::Min()};
    AggregateQuery avg_q{q, MakeTauId(1), AggregateFunction::Avg()};
    AggregateQuery cd_q{q, MakeTauId(1),
                        AggregateFunction::CountDistinct()};
    for (FactId f = 0; f < db.num_facts(); ++f) {
      EXPECT_EQ(*ClosedFormMax(max_q, db, f), *BruteForceScore(max_q, db, f));
      EXPECT_EQ(*ClosedFormMin(min_q, db, f), *BruteForceScore(min_q, db, f));
      EXPECT_EQ(*ClosedFormAvg(avg_q, db, f), *BruteForceScore(avg_q, db, f));
      EXPECT_EQ(*ClosedFormCountDistinct(cd_q, db, f),
                *BruteForceScore(cd_q, db, f));
    }
  }
}

TEST(ClosedFormTest, AgreesWithGenericDp) {
  // The closed forms and the DP engines must agree on larger instances
  // where brute force is too slow.
  Database db;
  for (int i = 0; i < 40; ++i) {
    db.AddEndogenous("R", {Value(i), Value((i * 7) % 11 - 3)});
  }
  ConjunctiveQuery q = MustParseQuery("Q(i, v) <- R(i, v)");
  AggregateQuery a{q, MakeTauId(1), AggregateFunction::Max()};
  FactId probe = 17;
  auto closed = ClosedFormMax(a, db, probe);
  auto dp = ScoreViaSumK(a, db, probe, MinMaxSumK);
  ASSERT_TRUE(closed.ok());
  ASSERT_TRUE(dp.ok());
  EXPECT_EQ(*closed, *dp);
}

TEST(ClosedFormTest, EfficiencyOfAvgFormula) {
  // Σ_t Shapley(t) must equal Avg(D): validates the sign fix vs the paper's
  // body statement (see header comment of closed_forms.h).
  Database db = SingleRelationDb({10, 20, 60});
  ConjunctiveQuery q = MustParseQuery("Q(i, v) <- R(i, v)");
  AggregateQuery a{q, MakeTauId(1), AggregateFunction::Avg()};
  Rational total;
  for (FactId f = 0; f < db.num_facts(); ++f) {
    total += *ClosedFormAvg(a, db, f);
  }
  EXPECT_EQ(total, R(30));
}

}  // namespace
}  // namespace shapcq
