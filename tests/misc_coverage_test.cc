// Coverage for smaller public APIs: Schema, database serialization,
// per-answer membership scores, the (ε,δ) Monte Carlo wrapper, parser and
// CSV edge cases.

#include <string>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/csv.h"
#include "shapcq/data/database.h"
#include "shapcq/data/db_io.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/shapley/monte_carlo.h"
#include "shapcq/shapley/solver.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

Rational R(int64_t n) { return Rational(n); }

TEST(SchemaTest, BasicOperations) {
  Schema schema({{"R", 2}, {"S", 1}});
  EXPECT_TRUE(schema.HasRelation("R"));
  EXPECT_FALSE(schema.HasRelation("T"));
  EXPECT_EQ(schema.Arity("R"), 2);
  EXPECT_EQ(schema.relations().size(), 2u);
  schema.AddRelation("T", 3);
  EXPECT_EQ(schema.Arity("T"), 3);
}

TEST(DbIoTest, RoundTripPreservesEverything) {
  Database db;
  db.AddEndogenous("R", {Value(1), Value("hello world")});
  db.AddExogenous("S", {Value(-5)});
  db.AddEndogenous("R", {Value(2), Value("x")});
  std::string text = SerializeDatabase(db);
  auto reloaded = ParseDatabase(text);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_facts(), 3);
  EXPECT_EQ(reloaded->num_endogenous(), 2);
  for (FactId id = 0; id < db.num_facts(); ++id) {
    EXPECT_EQ(reloaded->fact(id).relation, db.fact(id).relation);
    EXPECT_EQ(reloaded->fact(id).args, db.fact(id).args);
    EXPECT_EQ(reloaded->fact(id).endogenous, db.fact(id).endogenous);
  }
  // Serialize again: byte-identical.
  EXPECT_EQ(SerializeDatabase(*reloaded), text);
}

TEST(DbIoTest, ParsesCommentsAndRejectsGarbage) {
  auto ok = ParseDatabase("# header\n+R(1)\n\n-S('a')\n");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_facts(), 2);
  // A bare fact (no +/- marker) parses as endogenous — the relaxation
  // the daemon's delete_fact journal records rely on.
  auto bare = ParseDatabase("R(1)\n");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->num_endogenous(), 1);
  EXPECT_FALSE(ParseDatabase("+R(x)\n").ok());          // variable
  EXPECT_FALSE(ParseDatabase("+R(1)\n+R(1)\n").ok());   // duplicate
  EXPECT_FALSE(ParseDatabase("+R(1\n").ok());           // malformed
}

TEST(DbIoTest, FileRoundTrip) {
  Database db;
  db.AddEndogenous("R", {Value(42)});
  std::string path = ::testing::TempDir() + "/shapcq_dbio_test.txt";
  ASSERT_TRUE(SaveDatabaseToFile(db, path).ok());
  auto reloaded = LoadDatabaseFromFile(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(reloaded->Contains("R", {Value(42)}));
  EXPECT_FALSE(LoadDatabaseFromFile("/nonexistent/nope.txt").ok());
}

TEST(AnswerMembershipTest, MatchesBooleanGamePerAnswer) {
  // Contribution of facts to a SPECIFIC answer (the paper's "membership").
  Database db;
  FactId r1 = db.AddEndogenous("R", {Value(1), Value(10)});
  FactId r2 = db.AddEndogenous("R", {Value(2), Value(10)});
  FactId s = db.AddEndogenous("S", {Value(10)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  // Answer (1): supported by {r1, s}; r2 is a null player for it.
  auto score_r1 = AnswerMembershipScore(q, db, {Value(1)}, r1);
  auto score_r2 = AnswerMembershipScore(q, db, {Value(1)}, r2);
  auto score_s = AnswerMembershipScore(q, db, {Value(1)}, s);
  ASSERT_TRUE(score_r1.ok());
  EXPECT_EQ(*score_r1, Rational(BigInt(1), BigInt(2)));
  EXPECT_TRUE(score_r2->is_zero());
  EXPECT_EQ(*score_s, Rational(BigInt(1), BigInt(2)));
  // Cross-check against the brute-force membership game for answer (2).
  ConjunctiveQuery bound = q.Bind("x", Value(2));
  AggregateQuery boolean_game{bound, MakeConstantTau(R(1)),
                              AggregateFunction::Max()};
  for (FactId f : db.EndogenousFacts()) {
    EXPECT_EQ(*AnswerMembershipScore(q, db, {Value(2)}, f),
              *BruteForceScore(boolean_game, db, f));
  }
}

TEST(AnswerMembershipTest, RejectsArityMismatch) {
  Database db;
  db.AddEndogenous("R", {Value(1), Value(2)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y)");
  EXPECT_FALSE(AnswerMembershipScore(q, db, {Value(1), Value(2)}, 0).ok());
}

TEST(MonteCarloGuaranteeTest, RunsHoeffdingManySamples) {
  Database db;
  db.AddEndogenous("R", {Value(5)});
  db.AddEndogenous("R", {Value(3)});
  db.AddEndogenous("R", {Value(2)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x)");
  AggregateQuery a{q, MakeTauGreaterThan(0, R(0)), AggregateFunction::Max()};
  // Marginal contributions in [-1, 1]; ask for eps = 0.1, delta = 0.1.
  auto result = MonteCarloShapleyWithGuarantee(a, db, 0, /*range=*/1.0,
                                               /*epsilon=*/0.1,
                                               /*delta=*/0.1, /*seed=*/3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->samples, HoeffdingSampleCount(1.0, 0.1, 0.1));
  double exact = BruteForceScore(a, db, 0)->ToDouble();
  EXPECT_NEAR(result->estimate, exact, 0.1);
}

TEST(ParserEdgeTest, WhitespaceAndIdentifiers) {
  auto q = ParseQuery("  Q_1 ( x1 , y_2 )   :-   R2 ( x1 ,y_2 ) ");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->name(), "Q_1");
  EXPECT_EQ(q->head(), (std::vector<std::string>{"x1", "y_2"}));
  EXPECT_EQ(q->atoms()[0].relation, "R2");
}

TEST(ParserEdgeTest, BothQuoteStyles) {
  auto q = ParseQuery("Q() <- R(\"double\", 'single')");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->atoms()[0].terms[0].constant(), Value("double"));
  EXPECT_EQ(q->atoms()[0].terms[1].constant(), Value("single"));
}

TEST(CsvEdgeTest, NoTrailingNewlineAndSpaces) {
  auto rows = ParseCsv(" 1 , 2.5 ,  text");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value(1));
  EXPECT_EQ((*rows)[0][1], Value(2.5));
  EXPECT_EQ((*rows)[0][2], Value("text"));
}

TEST(ValueEdgeTest, MixedKindOrderingInContainers) {
  std::vector<Value> values = {Value("b"), Value(3), Value(1.5), Value("a"),
                               Value(-2)};
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values[0], Value(-2));
  EXPECT_EQ(values[1], Value(1.5));
  EXPECT_EQ(values[2], Value(3));
  EXPECT_EQ(values[3], Value("a"));
  EXPECT_EQ(values[4], Value("b"));
}

TEST(EdgeComboTest, RepeatedHeadVariablesThroughEveryEngine) {
  // Q(x, x) <- R(x, y): sq-hierarchical with a duplicated head variable;
  // the head-binding machinery must fill both positions.
  ConjunctiveQuery q = MustParseQuery("Q(x, x) <- R(x, y)");
  Database db;
  db.AddEndogenous("R", {Value(1), Value(10)});
  db.AddEndogenous("R", {Value(1), Value(20)});
  db.AddEndogenous("R", {Value(-2), Value(10)});
  db.AddEndogenous("R", {Value(3), Value(30)});
  for (int position : {0, 1}) {
    for (AggregateFunction alpha :
         {AggregateFunction::Max(), AggregateFunction::Avg(),
          AggregateFunction::Median(), AggregateFunction::CountDistinct(),
          AggregateFunction::HasDuplicates(), AggregateFunction::Sum()}) {
      AggregateQuery a{q, MakeTauId(position), alpha};
      ShapleySolver solver(a);
      SolverOptions exact_only;
      exact_only.method = SolveMethod::kExactOnly;
      for (FactId f : db.EndogenousFacts()) {
        auto exact = solver.Compute(db, f, exact_only);
        ASSERT_TRUE(exact.ok())
            << alpha.ToString() << " pos " << position << ": "
            << exact.status().ToString();
        auto bf = BruteForceScore(a, db, f);
        EXPECT_EQ(exact->exact, *bf)
            << alpha.ToString() << " position " << position;
      }
    }
  }
}

TEST(EdgeComboTest, StringJoinColumnsWithNumericTau) {
  // Join on strings, aggregate over numbers: Q(n, v) <- R(n, v), S(n).
  ConjunctiveQuery q = MustParseQuery("Q(n, v) <- R(n, v), S(n)");
  Database db;
  db.AddEndogenous("R", {Value("alpha"), Value(4)});
  db.AddEndogenous("R", {Value("beta"), Value(7)});
  db.AddEndogenous("R", {Value("gamma"), Value(-1)});
  db.AddEndogenous("S", {Value("alpha")});
  db.AddEndogenous("S", {Value("beta")});
  for (AggregateFunction alpha :
       {AggregateFunction::Max(), AggregateFunction::Avg(),
        AggregateFunction::Median()}) {
    AggregateQuery a{q, MakeTauId(1), alpha};
    ShapleySolver solver(a);
    SolverOptions exact_only;
    exact_only.method = SolveMethod::kExactOnly;
    for (FactId f : db.EndogenousFacts()) {
      auto exact = solver.Compute(db, f, exact_only);
      ASSERT_TRUE(exact.ok()) << alpha.ToString();
      EXPECT_EQ(exact->exact, *BruteForceScore(a, db, f)) << alpha.ToString();
    }
  }
}

TEST(EdgeComboTest, AllExogenousRelationWithConstants) {
  // Constants in atoms + a relation that is entirely exogenous.
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, 'tag'), S(x)");
  Database db;
  db.AddExogenous("R", {Value(1), Value("tag")});
  db.AddExogenous("R", {Value(2), Value("other")});
  db.AddEndogenous("S", {Value(1)});
  db.AddEndogenous("S", {Value(2)});
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
  ShapleySolver solver(a);
  SolverOptions exact_only;
  exact_only.method = SolveMethod::kExactOnly;
  for (FactId f : db.EndogenousFacts()) {
    auto exact = solver.Compute(db, f, exact_only);
    ASSERT_TRUE(exact.ok());
    EXPECT_EQ(exact->exact, *BruteForceScore(a, db, f));
  }
}

TEST(GeneratorEdgeTest, EndogenousFractionRespectedRoughly) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  RandomDatabaseOptions options;
  options.facts_per_relation = 50;
  options.endogenous_percent = 0;
  options.seed = 4;
  Database all_exo = RandomDatabaseForQuery(q, options);
  EXPECT_EQ(all_exo.num_endogenous(), 0);
  options.endogenous_percent = 100;
  Database all_endo = RandomDatabaseForQuery(q, options);
  EXPECT_EQ(all_endo.num_endogenous(), all_endo.num_facts());
}

}  // namespace
}  // namespace shapcq
