#include "shapcq/util/status.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace shapcq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorConstructors) {
  Status s = InvalidArgumentError("bad query");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad query");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad query");

  EXPECT_EQ(UnsupportedError("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = InvalidArgumentError("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "nope");
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(5));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 5);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result(std::string("hello"));
  EXPECT_EQ(result->size(), 5u);
}

}  // namespace
}  // namespace shapcq
