#include "shapcq/shapley/report.h"

#include <string>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"

namespace shapcq {
namespace {

std::vector<std::pair<FactId, SolveResult>> MakeResults(const Database& db) {
  AggregateQuery a{MustParseQuery("Q(x) <- R(x)"), MakeTauId(0),
                   AggregateFunction::Sum()};
  ShapleySolver solver(a);
  auto results = solver.ComputeAll(db);
  return *results;
}

Database MakeDb() {
  Database db;
  db.AddEndogenous("R", {Value(30)});
  db.AddEndogenous("R", {Value(10)});
  db.AddEndogenous("R", {Value(60)});
  return db;
}

TEST(ReportTest, SortsByScoreAndShowsShares) {
  Database db = MakeDb();
  std::string report = FormatAttributionReport(db, MakeResults(db));
  // Sum attribution of R(v) is v; descending order expected.
  size_t p60 = report.find("R(60)");
  size_t p30 = report.find("R(30)");
  size_t p10 = report.find("R(10)");
  ASSERT_NE(p60, std::string::npos);
  EXPECT_LT(p60, p30);
  EXPECT_LT(p30, p10);
  EXPECT_NE(report.find("60.0%"), std::string::npos);  // 60/100
  EXPECT_NE(report.find("[sum-count/linearity]"), std::string::npos);
}

TEST(ReportTest, FactOrderWithoutSorting) {
  Database db = MakeDb();
  ReportOptions options;
  options.sort_by_score = false;
  std::string report = FormatAttributionReport(db, MakeResults(db), options);
  EXPECT_LT(report.find("R(30)"), report.find("R(10)"));
}

TEST(ReportTest, MaxRowsTruncates) {
  Database db = MakeDb();
  ReportOptions options;
  options.max_rows = 1;
  std::string report = FormatAttributionReport(db, MakeResults(db), options);
  EXPECT_NE(report.find("2 more rows"), std::string::npos);
  EXPECT_EQ(report.find("R(10)"), std::string::npos);
}

TEST(ReportTest, RelationTotals) {
  Database db;
  db.AddEndogenous("R", {Value(5)});
  db.AddEndogenous("R", {Value(15)});
  ReportOptions options;
  options.show_relation_totals = true;
  std::string report =
      FormatAttributionReport(db, MakeResults(db), options);
  EXPECT_NE(report.find("per-relation totals:"), std::string::npos);
  EXPECT_NE(report.find("R: 20.000000"), std::string::npos);
}

TEST(ReportTest, Summary) {
  Database db = MakeDb();
  std::string summary = SummarizeAttribution(db, MakeResults(db));
  EXPECT_NE(summary.find("3 facts"), std::string::npos);
  EXPECT_NE(summary.find("top: R(60)"), std::string::npos);
  EXPECT_EQ(SummarizeAttribution(db, {}), "no endogenous facts");
}

}  // namespace
}  // namespace shapcq
