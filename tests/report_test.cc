#include "shapcq/shapley/report.h"

#include <string>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"

namespace shapcq {
namespace {

std::vector<std::pair<FactId, SolveResult>> MakeResults(const Database& db) {
  AggregateQuery a{MustParseQuery("Q(x) <- R(x)"), MakeTauId(0),
                   AggregateFunction::Sum()};
  ShapleySolver solver(a);
  auto results = solver.ComputeAll(db);
  return *results;
}

Database MakeDb() {
  Database db;
  db.AddEndogenous("R", {Value(30)});
  db.AddEndogenous("R", {Value(10)});
  db.AddEndogenous("R", {Value(60)});
  return db;
}

TEST(ReportTest, SortsByScoreAndShowsShares) {
  Database db = MakeDb();
  std::string report = FormatAttributionReport(db, MakeResults(db));
  // Sum attribution of R(v) is v; descending order expected.
  size_t p60 = report.find("R(60)");
  size_t p30 = report.find("R(30)");
  size_t p10 = report.find("R(10)");
  ASSERT_NE(p60, std::string::npos);
  EXPECT_LT(p60, p30);
  EXPECT_LT(p30, p10);
  EXPECT_NE(report.find("60.0%"), std::string::npos);  // 60/100
  EXPECT_NE(report.find("[sum-count/linearity]"), std::string::npos);
}

TEST(ReportTest, FactOrderWithoutSorting) {
  Database db = MakeDb();
  ReportOptions options;
  options.sort_by_score = false;
  std::string report = FormatAttributionReport(db, MakeResults(db), options);
  EXPECT_LT(report.find("R(30)"), report.find("R(10)"));
}

TEST(ReportTest, MaxRowsTruncates) {
  Database db = MakeDb();
  ReportOptions options;
  options.max_rows = 1;
  std::string report = FormatAttributionReport(db, MakeResults(db), options);
  EXPECT_NE(report.find("2 more rows"), std::string::npos);
  EXPECT_EQ(report.find("R(10)"), std::string::npos);
}

TEST(ReportTest, RelationTotals) {
  Database db;
  db.AddEndogenous("R", {Value(5)});
  db.AddEndogenous("R", {Value(15)});
  ReportOptions options;
  options.show_relation_totals = true;
  std::string report =
      FormatAttributionReport(db, MakeResults(db), options);
  EXPECT_NE(report.find("per-relation totals:"), std::string::npos);
  EXPECT_NE(report.find("R: 20.000000"), std::string::npos);
}

TEST(ReportTest, Summary) {
  Database db = MakeDb();
  std::string summary = SummarizeAttribution(db, MakeResults(db));
  EXPECT_NE(summary.find("3 facts"), std::string::npos);
  EXPECT_NE(summary.find("top: R(60)"), std::string::npos);
  EXPECT_EQ(SummarizeAttribution(db, {}), "no endogenous facts");
}

TEST(ReportTest, ProvenanceFooterSurfacesSamplingAndLineageTelemetry) {
  AggregateQuery a{MustParseQuery("Q(x) <- R(x)"), MakeTauId(0),
                   AggregateFunction::Sum()};
  auto plan = AttributionPlan::Compile(a);
  std::vector<std::pair<FactId, SolveResult>> results;
  SolveResult exact;
  exact.is_exact = true;
  exact.exact = Rational(3);
  exact.approximation = 3.0;
  exact.algorithm = "lineage-circuit";
  results.emplace_back(0, exact);
  SolveResult sampled;
  sampled.is_exact = false;
  sampled.approximation = 1.5;
  sampled.std_error = 0.25;
  sampled.samples = 128;
  sampled.algorithm = "monte-carlo";
  results.emplace_back(1, sampled);

  SolverOptions options;
  options.monte_carlo.seed = 42;
  LineageStatsSnapshot lineage;
  lineage.circuits_compiled = 5;
  lineage.circuit_nodes = 77;
  lineage.cache_lookups = 20;
  lineage.cache_hits = 9;
  std::string footer = FormatPlanProvenance(*plan, results,
                                            /*cache_hit=*/false, &options,
                                            &lineage);
  // 1.96 * 0.25 = 0.49: the CLT 95% half-width replaces the bare estimate.
  EXPECT_NE(footer.find("monte carlo : 1 fact"), std::string::npos) << footer;
  EXPECT_NE(footer.find("+-0.490000"), std::string::npos) << footer;
  EXPECT_NE(footer.find("128 samples/fact"), std::string::npos) << footer;
  EXPECT_NE(footer.find("seed 42"), std::string::npos) << footer;
  EXPECT_NE(footer.find("lineage     : 5 circuits, 77 nodes"),
            std::string::npos)
      << footer;
  EXPECT_NE(footer.find("9/20 compiler cache hits"), std::string::npos)
      << footer;
  // Without telemetry pointers the footer stays as before.
  std::string plain = FormatPlanProvenance(*plan, results,
                                           /*cache_hit=*/true);
  EXPECT_EQ(plain.find("seed"), std::string::npos);
  EXPECT_EQ(plain.find("lineage     :"), std::string::npos);
  EXPECT_NE(plain.find("monte carlo : 1 fact"), std::string::npos);
}

}  // namespace
}  // namespace shapcq
