#include <algorithm>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/data/csv.h"
#include "shapcq/data/database.h"
#include "shapcq/data/db_io.h"
#include "shapcq/data/value.h"

namespace shapcq {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  Value i(42);
  Value d(2.5);
  Value s("hello");
  EXPECT_EQ(i.kind(), Value::Kind::kInt);
  EXPECT_EQ(d.kind(), Value::Kind::kDouble);
  EXPECT_EQ(s.kind(), Value::Kind::kString);
  EXPECT_EQ(i.AsInt(), 42);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 2.5);
  EXPECT_EQ(s.AsString(), "hello");
  EXPECT_TRUE(i.is_numeric());
  EXPECT_TRUE(d.is_numeric());
  EXPECT_FALSE(s.is_numeric());
}

TEST(ValueTest, CrossKindNumericEquality) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_NE(Value(2), Value(2.5));
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.5), Value(2));
  EXPECT_LT(Value(-1), Value("a"));  // numbers before strings
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(1000000), Value("0"));
}

TEST(ValueTest, AsRationalExact) {
  EXPECT_EQ(Value(7).AsRational(), Rational(7));
  EXPECT_EQ(Value(0.5).AsRational(), Rational(BigInt(1), BigInt(2)));
  EXPECT_EQ(Value(-3).AsRational(), Rational(-3));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value(5).ToString(), "5");
  EXPECT_EQ(Value("x").ToString(), "'x'");
  EXPECT_EQ(TupleToString({Value(1), Value("a")}), "(1, 'a')");
}

TEST(DatabaseTest, AddAndLookup) {
  Database db;
  FactId f1 = db.AddEndogenous("R", {Value(1), Value(2)});
  FactId f2 = db.AddExogenous("S", {Value(3)});
  EXPECT_EQ(db.num_facts(), 2);
  EXPECT_EQ(db.num_endogenous(), 1);
  EXPECT_EQ(db.fact(f1).relation, "R");
  EXPECT_TRUE(db.fact(f1).endogenous);
  EXPECT_FALSE(db.fact(f2).endogenous);
  EXPECT_TRUE(db.Contains("R", {Value(1), Value(2)}));
  EXPECT_FALSE(db.Contains("R", {Value(1), Value(3)}));
  EXPECT_FALSE(db.Contains("T", {Value(1)}));
  auto found = db.FindFact("S", {Value(3)});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, f2);
}

TEST(DatabaseTest, RelationIndexesAndArity) {
  Database db;
  db.AddEndogenous("R", {Value(1), Value(2)});
  db.AddEndogenous("R", {Value(2), Value(3)});
  db.AddEndogenous("S", {Value(5)});
  EXPECT_EQ(db.FactsOf("R").size(), 2u);
  EXPECT_EQ(db.FactsOf("S").size(), 1u);
  EXPECT_TRUE(db.FactsOf("T").empty());
  EXPECT_EQ(db.Arity("R"), 2);
  EXPECT_EQ(db.Arity("S"), 1);
  std::vector<std::string> names = db.relation_names();
  EXPECT_EQ(names, (std::vector<std::string>{"R", "S"}));
}

TEST(DatabaseTest, EndogenousExogenousPartition) {
  Database db;
  db.AddEndogenous("R", {Value(1)});
  db.AddExogenous("R", {Value(2)});
  db.AddEndogenous("R", {Value(3)});
  std::vector<FactId> endo = db.EndogenousFacts();
  std::vector<FactId> exo = db.ExogenousFacts();
  EXPECT_EQ(endo.size(), 2u);
  EXPECT_EQ(exo.size(), 1u);
  std::unordered_set<FactId> all(endo.begin(), endo.end());
  all.insert(exo.begin(), exo.end());
  EXPECT_EQ(all.size(), 3u);
}

TEST(DatabaseTest, WithFactExogenousPreservesIds) {
  Database db;
  FactId f = db.AddEndogenous("R", {Value(1)});
  db.AddEndogenous("R", {Value(2)});
  Database modified = db.WithFactExogenous(f);
  EXPECT_EQ(modified.num_endogenous(), 1);
  EXPECT_FALSE(modified.fact(f).endogenous);
  EXPECT_EQ(modified.fact(f).args, db.fact(f).args);
  // Original untouched.
  EXPECT_TRUE(db.fact(f).endogenous);
}

TEST(DatabaseTest, WithoutFactRemapsIds) {
  Database db;
  FactId a = db.AddEndogenous("R", {Value(1)});
  FactId b = db.AddEndogenous("R", {Value(2)});
  FactId c = db.AddExogenous("S", {Value(3)});
  std::vector<FactId> old_to_new;
  Database without = db.WithoutFact(b, &old_to_new);
  EXPECT_EQ(without.num_facts(), 2);
  EXPECT_EQ(old_to_new[static_cast<size_t>(b)], -1);
  EXPECT_EQ(without.fact(old_to_new[static_cast<size_t>(a)]).args,
            db.fact(a).args);
  EXPECT_EQ(without.fact(old_to_new[static_cast<size_t>(c)]).relation, "S");
  EXPECT_FALSE(without.Contains("R", {Value(2)}));
}

TEST(DatabaseTest, FactToString) {
  Database db;
  FactId f = db.AddEndogenous("Earns", {Value("ann"), Value(100)});
  EXPECT_EQ(db.fact(f).ToString(), "Earns('ann', 100)");
}

TEST(CsvTest, ParsesTypedFields) {
  auto rows = ParseCsv("1,2.5,hello\n-3,x,\"quoted, comma\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0], Value(1));
  EXPECT_EQ((*rows)[0][1], Value(2.5));
  EXPECT_EQ((*rows)[0][2], Value("hello"));
  EXPECT_EQ((*rows)[1][0], Value(-3));
  EXPECT_EQ((*rows)[1][2], Value("quoted, comma"));
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  auto rows = ParseCsv("# header comment\n1,2\n\n3,4\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(CsvTest, QuotedEscapes) {
  auto row = ParseCsvLine("\"he said \"\"hi\"\"\",2");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value("he said \"hi\""));
  EXPECT_EQ((*row)[1], Value(2));
}

TEST(CsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCsv("1,2\n3\n").ok());          // ragged rows
  EXPECT_FALSE(ParseCsvLine("\"unterminated").ok());
  EXPECT_FALSE(ParseCsvLine("\"x\" garbage").ok());
}

TEST(CsvTest, NumericParsingIsRestrictedToFiniteDecimalForms) {
  // strtod extensions must stay strings: a NaN Value would break Value
  // equality and therefore ValuePool interning and fact deduplication.
  auto row = ParseCsvLine(
      "nan,NaN,inf,Infinity,-inf,0x10,0X1p4,1e999,-1e999,1e-999,nan(0x1)");
  ASSERT_TRUE(row.ok());
  for (const Value& v : *row) {
    EXPECT_EQ(v.kind(), Value::Kind::kString) << v.ToString();
  }
  // Finite decimal forms still parse to numbers.
  auto numeric = ParseCsvLine("-7,+42,3.25,.5,2.,1e3,-2.5E-2,+0.125e+1");
  ASSERT_TRUE(numeric.ok());
  EXPECT_EQ((*numeric)[0], Value(-7));
  EXPECT_EQ((*numeric)[1], Value(42));
  EXPECT_EQ((*numeric)[2], Value(3.25));
  EXPECT_EQ((*numeric)[3], Value(0.5));
  EXPECT_EQ((*numeric)[4], Value(2.0));
  EXPECT_EQ((*numeric)[5], Value(1000.0));
  EXPECT_EQ((*numeric)[6], Value(-0.025));
  EXPECT_EQ((*numeric)[7], Value(1.25));
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ((*numeric)[i].kind(), Value::Kind::kInt);
  }
  for (size_t i = 2; i < numeric->size(); ++i) {
    EXPECT_EQ((*numeric)[i].kind(), Value::Kind::kDouble);
  }
}

TEST(CsvTest, OverflowingIntegersFallBackToFiniteDoubles) {
  // Beyond int64 but still a finite decimal literal: keep the numeric
  // interpretation as a double instead of routing through strtod's
  // anything-goes parsing.
  auto row = ParseCsvLine("99999999999999999999999,-99999999999999999999999");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].kind(), Value::Kind::kDouble);
  EXPECT_EQ((*row)[1].kind(), Value::Kind::kDouble);
  EXPECT_DOUBLE_EQ((*row)[0].AsDouble(), 1e23);
  EXPECT_DOUBLE_EQ((*row)[1].AsDouble(), -1e23);
  // Malformed near-numbers stay strings.
  auto strings = ParseCsvLine("1.2.3,1e,e5,+,-,.,++3,12a");
  ASSERT_TRUE(strings.ok());
  for (const Value& v : *strings) {
    EXPECT_EQ(v.kind(), Value::Kind::kString) << v.ToString();
  }
}

TEST(CsvTest, NanFieldsInternSafelyIntoADatabase) {
  // The regression this guards: "nan" fields became NaN doubles, and
  // NaN != NaN poisoned the value pool's equality-based interning —
  // lookups of a just-inserted fact missed, and duplicate detection never
  // fired.
  Database db;
  Status s = LoadCsvIntoDatabase(&db, "R", "nan,1\nnan,2\ninf,3\n",
                                 /*endogenous=*/true);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(db.Contains("R", {Value("nan"), Value(1)}));
  EXPECT_TRUE(db.Contains("R", {Value("inf"), Value(3)}));
  EXPECT_EQ(db.FactsWith("R", 0, Value("nan")).size(), 2u);
}

TEST(CsvTest, LoadsIntoDatabase) {
  Database db;
  Status s = LoadCsvIntoDatabase(&db, "Earns", "ann,100\nbob,90\n",
                                 /*endogenous=*/false);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(db.FactsOf("Earns").size(), 2u);
  EXPECT_TRUE(db.Contains("Earns", {Value("ann"), Value(100)}));
  EXPECT_EQ(db.num_endogenous(), 0);
}

TEST(DatabaseMutationTest, InsertValidatesAndBumpsEpoch) {
  Database db;
  db.AddEndogenous("R", {Value(1), Value(2)});
  uint64_t epoch = db.epoch();

  auto inserted = db.InsertFact("R", {Value(3), Value(4)});
  ASSERT_TRUE(inserted.ok());
  EXPECT_GT(db.epoch(), epoch);
  EXPECT_TRUE(db.live(*inserted));

  // Duplicate live fact and arity conflicts are structured errors, not
  // aborts (AddFact's contract), and a failed insert leaves epoch alone.
  epoch = db.epoch();
  EXPECT_EQ(db.InsertFact("R", {Value(3), Value(4)}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(db.InsertFact("R", {Value(1)}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.epoch(), epoch);
}

TEST(DatabaseMutationTest, DeleteTombstonesAndIdsNeverComeBack) {
  Database db;
  FactId a = db.AddEndogenous("R", {Value(1)});
  FactId b = db.AddEndogenous("R", {Value(2)});

  ASSERT_TRUE(db.DeleteFact(a).ok());
  EXPECT_FALSE(db.live(a));
  EXPECT_TRUE(db.live(b));
  EXPECT_EQ(db.num_live(), 1);
  EXPECT_EQ(db.num_facts(), 2);
  EXPECT_TRUE(db.has_tombstones());
  // Deleting again (or out of range) is NOT_FOUND.
  EXPECT_EQ(db.DeleteFact(a).code(), StatusCode::kNotFound);
  EXPECT_EQ(db.DeleteFact(99).code(), StatusCode::kNotFound);
  // The content key is free again, but under a FRESH id: ids ascend
  // forever, and the dead id stays dead.
  auto again = db.InsertFact("R", {Value(1)});
  ASSERT_TRUE(again.ok());
  EXPECT_GT(*again, b);
  EXPECT_FALSE(db.live(a));
  // FindFact resolves live content only.
  auto found = db.FindFact("R", {Value(1)});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *again);
}

TEST(DatabaseMutationTest, CompactionPreservesIdsAndContents) {
  Database db;
  std::vector<FactId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(db.AddEndogenous("R", {Value(i), Value(i + 1)}));
  }
  ASSERT_TRUE(db.DeleteFact(ids[2]).ok());
  ASSERT_TRUE(db.DeleteFact(ids[5]).ok());
  uint64_t epoch = db.epoch();

  db.CompactTombstones();
  EXPECT_GT(db.epoch(), epoch);
  EXPECT_FALSE(db.has_tombstones() && db.num_live() != db.num_facts() - 2);
  for (int i = 0; i < 8; ++i) {
    bool deleted = i == 2 || i == 5;
    EXPECT_EQ(db.live(ids[i]), !deleted) << "fact " << i;
    if (!deleted) {
      EXPECT_EQ(db.fact(ids[i]).args[0], Value(i));
    }
  }
  // Posting lists no longer carry the dead rows.
  EXPECT_EQ(db.FactsWith("R", 0, Value(2)).size(), 0u);
  EXPECT_EQ(db.FactsWith("R", 0, Value(3)).size(), 1u);
}

TEST(ParseFactLineTest, MarkerIsOptionalAndDefaultsEndogenous) {
  auto endo = ParseFactLine("+R(1, 'a')");
  ASSERT_TRUE(endo.ok());
  EXPECT_TRUE(endo->endogenous);
  auto exo = ParseFactLine("-R(1, 'a')");
  ASSERT_TRUE(exo.ok());
  EXPECT_FALSE(exo->endogenous);
  auto bare = ParseFactLine("R(2, 'b')");
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->endogenous);
  EXPECT_EQ(bare->relation, "R");
  ASSERT_EQ(bare->args.size(), 2u);
  EXPECT_EQ(bare->args[0], Value(2));
  EXPECT_FALSE(ParseFactLine("").ok());
  EXPECT_FALSE(ParseFactLine("R(x)").ok());  // not ground
}

}  // namespace
}  // namespace shapcq
