// Tests for the serving stack: JSON, protocol, journal, histogram,
// admission control, deadline cancellation, and the live server
// (sockets on loopback, ephemeral ports). The heavier end-to-end pass —
// daemon + journal replay + bitwise parity — lives in daemon_smoke.cc.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/spec.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/db_io.h"
#include "shapcq/query/parser.h"
#include "shapcq/serve/admission.h"
#include "shapcq/serve/client.h"
#include "shapcq/serve/journal.h"
#include "shapcq/serve/json.h"
#include "shapcq/serve/metrics.h"
#include "shapcq/serve/protocol.h"
#include "shapcq/serve/replay.h"
#include "shapcq/serve/server.h"
#include "shapcq/shapley/session.h"
#include "shapcq/util/histogram.h"

namespace shapcq {
namespace {

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(JsonTest, ParsesScalarsAndStructure) {
  auto parsed = ParseJson(
      R"({"a":1,"b":-2.5,"c":"x\ny","d":true,"e":null,"f":[1,2],"g":{}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetInt64("a"), 1);
  EXPECT_DOUBLE_EQ(parsed->GetNumber("b"), -2.5);
  EXPECT_EQ(parsed->GetString("c"), "x\ny");
  EXPECT_TRUE(parsed->GetBool("d"));
  ASSERT_NE(parsed->Find("f"), nullptr);
  EXPECT_EQ(parsed->Find("f")->array.size(), 2u);
}

TEST(JsonTest, Uint64SurvivesRoundTrip) {
  JsonWriter w;
  w.BeginObject().Uint("seed", UINT64_MAX).EndObject();
  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetUint64("seed"), UINT64_MAX);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(JsonTest, DecodesSurrogatePairsAsUtf8) {
  // \ud83d\ude00 is U+1F600 (😀): one 4-byte UTF-8 sequence, not two
  // 3-byte CESU-8 halves.
  auto parsed = ParseJson("{\"s\":\"\\ud83d\\ude00\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->GetString("s"), "\xF0\x9F\x98\x80");

  // Lone or mismatched surrogates are rejected rather than emitted as
  // invalid UTF-8.
  EXPECT_FALSE(ParseJson("{\"s\":\"\\ud83d\"}").ok());        // lone high
  EXPECT_FALSE(ParseJson("{\"s\":\"\\ud83dx\"}").ok());       // high + text
  EXPECT_FALSE(ParseJson("{\"s\":\"\\ud83d\\u0041\"}").ok()); // high + BMP
  EXPECT_FALSE(ParseJson("{\"s\":\"\\ude00\"}").ok());        // lone low
}

TEST(JsonTest, DoubleRoundTripsBitwise) {
  double value = 0.1 + 0.2;  // not representable exactly
  JsonWriter w;
  w.BeginObject().Num("v", value).EndObject();
  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetNumber("v"), value);  // %.17g is lossless
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, QuantilesBracketSamples) {
  LatencyHistogram h;
  for (uint64_t i = 0; i < 100; ++i) h.Record(100);  // bucket le=128
  h.Record(1000000);                                 // one outlier
  auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 101u);
  EXPECT_EQ(snap.QuantileMicros(0.5), 128u);
  EXPECT_GE(snap.QuantileMicros(0.999), 1000000u);
}

TEST(HistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.snapshot().QuantileMicros(0.99), 0u);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(ProtocolTest, SolveRequestRoundTrips) {
  SolveRequest request;
  request.id = 42;
  request.tenant = "acme";
  request.query = "Q(x) <- R(x, y), S(y)";
  request.method = "mc";
  request.samples = 500;
  request.seed = 99;
  request.deadline_ms = 250;
  auto parsed = ParseRequestLine(SerializeSolveRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->op, RequestEnvelope::Op::kSolve);
  EXPECT_EQ(parsed->solve.id, 42u);
  EXPECT_EQ(parsed->solve.tenant, "acme");
  EXPECT_EQ(parsed->solve.query, request.query);
  EXPECT_EQ(parsed->solve.method, "mc");
  EXPECT_EQ(parsed->solve.samples, 500);
  EXPECT_EQ(parsed->solve.seed, 99u);
  EXPECT_EQ(parsed->solve.deadline_ms, 250);
}

TEST(ProtocolTest, ValidatesRequests) {
  EXPECT_FALSE(ParseRequestLine(R"({"op":"solve","tenant":"t"})").ok());
  EXPECT_FALSE(
      ParseRequestLine(R"js({"op":"solve","query":"Q() <- R(x)"})js").ok());
  EXPECT_FALSE(ParseRequestLine(R"({"op":"warp"})").ok());
  EXPECT_FALSE(
      ParseRequestLine(
          R"({"op":"solve","tenant":"t","query":"q","samples":0})")
          .ok());
  EXPECT_FALSE(
      ParseRequestLine(
          R"({"op":"solve","tenant":"t","query":"q","deadline_ms":-1})")
          .ok());
}

TEST(ProtocolTest, BuildsQueryAndOptions) {
  SolveRequest request;
  request.tenant = "t";
  request.query = "Q(x) <- R(x, y), S(y)";
  request.agg = "count";
  request.score = "banzhaf";
  request.method = "exact";
  auto query = BuildAggregateQuery(request);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto options = BuildSolverOptions(request);
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->score, ScoreKind::kBanzhaf);
  EXPECT_EQ(options->method, SolveMethod::kExactOnly);

  request.agg = "frobnicate";
  EXPECT_FALSE(BuildAggregateQuery(request).ok());
  request.agg = "sum";
  request.method = "warp";
  EXPECT_FALSE(BuildSolverOptions(request).ok());
}

TEST(ProtocolTest, ResponseRoundTrips) {
  SolveResponse response;
  response.id = 7;
  response.status = "ok";
  response.degraded = true;
  response.fingerprint = "fp";
  FactScore fact;
  fact.fact = 3;
  fact.fact_text = "R(1, 2)";
  fact.exact = true;
  fact.exact_value = "1/3";
  fact.value = 1.0 / 3.0;
  fact.algorithm = "test-engine";
  response.results.push_back(fact);
  auto parsed = ParseResponseLine(SerializeResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, 7u);
  EXPECT_TRUE(parsed->degraded);
  ASSERT_EQ(parsed->results.size(), 1u);
  EXPECT_EQ(parsed->results[0].fact, 3);
  EXPECT_EQ(parsed->results[0].exact_value, "1/3");
  EXPECT_EQ(parsed->results[0].value, 1.0 / 3.0);  // bitwise via %.17g
}

TEST(ProtocolTest, MutationRequestsRoundTrip) {
  auto insert = ParseRequestLine(
      SerializeInsertFact(4, "acme", "+R(3, 4)", "Q(x) <- R(x, y)"));
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_EQ(insert->op, RequestEnvelope::Op::kInsertFact);
  EXPECT_EQ(insert->id, 4u);
  EXPECT_EQ(insert->tenant, "acme");
  EXPECT_EQ(insert->fact, "+R(3, 4)");
  EXPECT_EQ(insert->dirty_query, "Q(x) <- R(x, y)");

  auto del = ParseRequestLine(SerializeDeleteFact(5, "acme", "R(3, 4)"));
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del->op, RequestEnvelope::Op::kDeleteFact);
  EXPECT_EQ(del->fact, "R(3, 4)");
  EXPECT_EQ(del->fact_id, -1);
  EXPECT_EQ(del->dirty_query, "");

  auto by_id = ParseRequestLine(
      R"({"op":"delete_fact","id":6,"tenant":"acme","fact_id":8})");
  ASSERT_TRUE(by_id.ok()) << by_id.status().ToString();
  EXPECT_EQ(by_id->fact_id, 8);

  // tenant and a fact (or fact_id) are mandatory.
  EXPECT_FALSE(
      ParseRequestLine(R"({"op":"insert_fact","tenant":"acme"})").ok());
  EXPECT_FALSE(
      ParseRequestLine(R"js({"op":"insert_fact","fact":"+R(1)"})js").ok());
  EXPECT_FALSE(
      ParseRequestLine(R"({"op":"delete_fact","tenant":"acme"})").ok());
}

TEST(ProtocolTest, MutationResponseRoundTrips) {
  SolveResponse response;
  response.id = 9;
  response.status = "ok";
  response.mutation = true;
  response.fact_id = 42;
  response.epoch = 7;
  response.tombstones = 3;
  response.dirty_answers = 2;
  response.compacted = true;
  auto parsed = ParseResponseLine(SerializeResponse(response));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->mutation);
  EXPECT_EQ(parsed->fact_id, 42);
  EXPECT_EQ(parsed->epoch, 7u);
  EXPECT_EQ(parsed->tombstones, 3);
  EXPECT_EQ(parsed->dirty_answers, 2);
  EXPECT_TRUE(parsed->compacted);
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/shapcq_" + name + "_" +
         std::to_string(::getpid());
}

JournalRecord MakeRecord(uint64_t id, const std::string& tenant) {
  JournalRecord record;
  record.timestamp_ns = 123456789 + id;
  record.fingerprint = "fp-" + std::to_string(id);
  record.request.id = id;
  record.request.tenant = tenant;
  record.request.query = "Q(x) <- R(x, y), S(y)";
  record.request.samples = 1000;
  record.request.seed = id * 17;
  record.request.deadline_ms = 50;
  return record;
}

TEST(JournalTest, RoundTripsRecords) {
  std::string path = TempPath("journal_roundtrip");
  {
    auto writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (uint64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*writer)->Append(MakeRecord(i, "acme")).ok());
    }
    EXPECT_EQ((*writer)->records_written(), 5u);
  }
  auto records = ReadJournal(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    const JournalRecord& record = (*records)[i];
    EXPECT_EQ(record.sequence, i);
    EXPECT_EQ(record.request.id, i);
    EXPECT_EQ(record.fingerprint, "fp-" + std::to_string(i));
    EXPECT_EQ(record.request.seed, i * 17);
    EXPECT_EQ(record.request.deadline_ms, 50);
  }
  std::remove(path.c_str());
}

TEST(JournalTest, ReportsTruncationWithOffset) {
  std::string path = TempPath("journal_truncated");
  {
    auto writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord(0, "acme")).ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord(1, "acme")).ok());
  }
  // Chop the tail off the second record.
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  long size = std::ftell(file);
  ASSERT_EQ(::ftruncate(fileno(file), size - 5), 0);
  std::fclose(file);

  auto records = ReadJournal(path);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(records.status().message().find("1 intact records"),
            std::string::npos)
      << records.status().message();
  std::remove(path.c_str());
}

TEST(JournalTest, RejectsBadMagic) {
  std::string path = TempPath("journal_magic");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  std::fputs("not a journal at all", file);
  std::fclose(file);
  EXPECT_FALSE(ReadJournal(path).ok());
  std::remove(path.c_str());
}

TEST(JournalTest, MutationRecordsRoundTrip) {
  std::string path = TempPath("journal_mutations");
  {
    auto writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    JournalRecord insert = MakeRecord(0, "acme");
    insert.op = JournalOp::kInsertFact;
    insert.fact = "+R(7, 'x')";
    ASSERT_TRUE((*writer)->Append(insert).ok());
    JournalRecord del = MakeRecord(1, "acme");
    del.op = JournalOp::kDeleteFact;
    del.fact = "R(7, 'x')";
    ASSERT_TRUE((*writer)->Append(del).ok());
    ASSERT_TRUE((*writer)->Append(MakeRecord(2, "acme")).ok());
  }
  auto records = ReadJournal(path);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].op, JournalOp::kInsertFact);
  EXPECT_EQ((*records)[0].fact, "+R(7, 'x')");
  EXPECT_EQ((*records)[1].op, JournalOp::kDeleteFact);
  EXPECT_EQ((*records)[1].fact, "R(7, 'x')");
  EXPECT_EQ((*records)[2].op, JournalOp::kSolve);
  EXPECT_EQ((*records)[2].fact, "");
  std::remove(path.c_str());
}

TEST(JournalTest, RotatesBySizeAndChainReadsAllSegments) {
  std::string path = TempPath("journal_rotation");
  constexpr uint64_t kMaxSegmentBytes = 200;
  uint64_t segments = 0;
  {
    auto writer = JournalWriter::Open(path, kMaxSegmentBytes);
    ASSERT_TRUE(writer.ok());
    for (uint64_t i = 0; i < 12; ++i) {
      ASSERT_TRUE((*writer)->Append(MakeRecord(i, "acme")).ok());
    }
    segments = (*writer)->segments();
    EXPECT_GT(segments, 1u) << "journal never rotated";
  }
  // Each segment individually is a valid journal whose sequences continue
  // where the previous segment stopped...
  uint64_t next_sequence = 0;
  for (uint64_t segment = 0; segment < segments; ++segment) {
    std::string segment_path =
        segment == 0 ? path : path + "." + std::to_string(segment);
    auto part = ReadJournal(segment_path);
    ASSERT_TRUE(part.ok()) << part.status().ToString();
    ASSERT_FALSE(part->empty()) << "empty segment " << segment;
    EXPECT_EQ(part->front().sequence, next_sequence);
    next_sequence = part->back().sequence + 1;
  }
  EXPECT_EQ(next_sequence, 12u);
  // ...and the chain reader stitches them back into one contiguous run.
  auto all = ReadJournalChain(path);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), 12u);
  for (uint64_t i = 0; i < 12; ++i) {
    EXPECT_EQ((*all)[i].sequence, i);
    EXPECT_EQ((*all)[i].request.id, i);
  }
  for (uint64_t segment = 0; segment < segments; ++segment) {
    std::string segment_path =
        segment == 0 ? path : path + "." + std::to_string(segment);
    std::remove(segment_path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(AdmissionTest, RejectsOverQueueLimit) {
  AdmissionController admission(TenantLimits{2, 3});
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(admission.TryAdmit("acme").ok()) << i;
  }
  Status rejected = admission.TryAdmit("acme");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  // Structured like ExactUnavailableStatus: names the tenant, the
  // observed depths, the limits, and what to do about it.
  EXPECT_NE(rejected.message().find("'acme'"), std::string::npos);
  EXPECT_NE(rejected.message().find("3 queued (limit 3)"),
            std::string::npos);
  EXPECT_NE(rejected.message().find("retry with backoff"),
            std::string::npos);

  // Other tenants are unaffected.
  EXPECT_TRUE(admission.TryAdmit("globex").ok());
}

TEST(AdmissionTest, CompletionFreesCapacity) {
  AdmissionController admission(TenantLimits{1, 1});
  ASSERT_TRUE(admission.TryAdmit("t").ok());
  admission.OnDequeue("t");  // queued 0, in flight 1
  ASSERT_TRUE(admission.TryAdmit("t").ok());  // queued 1
  EXPECT_FALSE(admission.TryAdmit("t").ok());
  admission.OnDequeue("t");
  admission.OnComplete("t");
  admission.OnComplete("t");
  auto depths = admission.TenantDepths("t");
  EXPECT_EQ(depths.queued, 0);
  EXPECT_EQ(depths.in_flight, 0);
  EXPECT_TRUE(admission.TryAdmit("t").ok());
}

// ---------------------------------------------------------------------------
// Deadline cancellation in the session
// ---------------------------------------------------------------------------

AggregateQuery TestQuery() {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  return AggregateQuery{q, MakeTauId(0), AggregateFunction::Sum()};
}

Database TestDatabase() {
  auto db = ParseDatabase("+R(1, 2)\n+R(2, 3)\n+S(2)\n+S(3)\n");
  SHAPCQ_CHECK(db.ok());
  return std::move(db).value();
}

TEST(DeadlineTest, FiredCancellationReturnsDeadlineExceeded) {
  Database db = TestDatabase();
  SolverSession session(TestQuery(), db);
  SolverOptions options;
  options.cancelled = [] { return true; };
  auto results = session.ComputeAll(options);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(results.status().message().find("retry with method=mc"),
            std::string::npos);
}

TEST(DeadlineTest, UnfiredCancellationIsHarmless) {
  Database db = TestDatabase();
  SolverSession session(TestQuery(), db);
  SolverOptions plain;
  auto expected = session.ComputeAll(plain);
  ASSERT_TRUE(expected.ok());

  SolverOptions cancellable;
  cancellable.cancelled = [] { return false; };
  auto actual = session.ComputeAll(cancellable);
  ASSERT_TRUE(actual.ok());
  ASSERT_EQ(actual->size(), expected->size());
  for (size_t i = 0; i < actual->size(); ++i) {
    EXPECT_EQ((*actual)[i].second.exact, (*expected)[i].second.exact);
  }
}

TEST(DeadlineTest, DegradedMonteCarloIsDeterministic) {
  Database db = TestDatabase();
  SolverSession session(TestQuery(), db);
  SolverOptions mc;
  mc.method = SolveMethod::kMonteCarlo;
  mc.monte_carlo.num_samples = 200;
  auto first = session.ComputeAll(mc);
  auto second = session.ComputeAll(mc);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].second.approximation,
              (*second)[i].second.approximation);
    EXPECT_EQ((*first)[i].second.std_error, (*second)[i].second.std_error);
  }
}

// ---------------------------------------------------------------------------
// Live server
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options) {
    server_ = std::make_unique<AttributionServer>(std::move(options));
    server_->RegisterTenant("acme", TestDatabase());
    Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  SolveResponse MustRoundTrip(LineClient& client, const std::string& line) {
    auto reply = client.RoundTrip(line);
    EXPECT_TRUE(reply.ok()) << reply.status().ToString();
    auto response = ParseResponseLine(*reply);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return std::move(response).value();
  }

  std::unique_ptr<AttributionServer> server_;
};

TEST_F(ServerTest, ServesSolvePingMetricsAndErrors) {
  StartServer(ServerOptions{});
  auto client = LineClient::Connect(server_->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  SolveResponse pong = MustRoundTrip(*client, SerializePing(1));
  EXPECT_TRUE(pong.pong);

  SolveRequest request;
  request.id = 2;
  request.tenant = "acme";
  request.query = "Q(x) <- R(x, y), S(y)";
  SolveResponse solved =
      MustRoundTrip(*client, SerializeSolveRequest(request));
  EXPECT_EQ(solved.status, "ok");
  EXPECT_FALSE(solved.degraded);
  EXPECT_FALSE(solved.results.empty());
  EXPECT_TRUE(solved.results[0].exact);
  EXPECT_NE(solved.fingerprint.find("score=shapley"), std::string::npos);
  EXPECT_NE(solved.footer.find("plan provenance"), std::string::npos);

  // Same request again: the plan cache serves it.
  request.id = 3;
  SolveResponse again =
      MustRoundTrip(*client, SerializeSolveRequest(request));
  EXPECT_TRUE(again.plan_cache_hit);
  ASSERT_EQ(again.results.size(), solved.results.size());
  for (size_t i = 0; i < again.results.size(); ++i) {
    EXPECT_EQ(again.results[i].exact_value, solved.results[i].exact_value);
  }

  request.id = 4;
  request.tenant = "nobody";
  SolveResponse missing =
      MustRoundTrip(*client, SerializeSolveRequest(request));
  EXPECT_EQ(missing.status, "error");
  EXPECT_EQ(missing.code, "NOT_FOUND");

  SolveResponse garbage = MustRoundTrip(*client, "this is not json");
  EXPECT_EQ(garbage.status, "error");
  EXPECT_EQ(garbage.code, "INVALID_ARGUMENT");

  SolveResponse metrics = MustRoundTrip(*client, SerializeMetricsRequest(5));
  EXPECT_NE(metrics.metrics.find("shapcq_requests_total"),
            std::string::npos);

  // HTTP endpoint agrees.
  auto scraped = HttpGet(server_->metrics_port(), "/metrics");
  ASSERT_TRUE(scraped.ok()) << scraped.status().ToString();
  EXPECT_NE(scraped->find("shapcq_requests_total{status=\"ok\"} 2"),
            std::string::npos)
      << *scraped;
  EXPECT_NE(scraped->find("shapcq_engine_facts_total"), std::string::npos);
  EXPECT_NE(scraped->find("shapcq_request_latency_p99_seconds"),
            std::string::npos);
  auto health = HttpGet(server_->metrics_port(), "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_FALSE(HttpGet(server_->metrics_port(), "/nope").ok());
}

TEST_F(ServerTest, DisconnectedClientsAreReaped) {
  // A long-running daemon must reclaim the fd and reader thread of
  // every disconnected client, not hold them until Stop().
  StartServer(ServerOptions{});
  for (int i = 0; i < 4; ++i) {
    auto client = LineClient::Connect(server_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    SolveResponse pong = MustRoundTrip(*client, SerializePing(1));
    EXPECT_TRUE(pong.pong);
  }  // ~LineClient closes the socket; the reader notices and exits.
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->live_connections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server_->live_connections(), 0u);
  EXPECT_EQ(server_->metrics().connections_opened.load(), 4u);
  EXPECT_EQ(server_->metrics().connections_closed.load(), 4u);
}

TEST_F(ServerTest, LoadTenantOverTheWire) {
  StartServer(ServerOptions{});
  auto client = LineClient::Connect(server_->port());
  ASSERT_TRUE(client.ok());

  SolveResponse loaded = MustRoundTrip(
      *client, SerializeLoadTenant(1, "globex", "+R(7, 8)\n+S(8)\n"));
  EXPECT_EQ(loaded.status, "ok");

  SolveRequest request;
  request.id = 2;
  request.tenant = "globex";
  request.query = "Q(x) <- R(x, y), S(y)";
  SolveResponse solved =
      MustRoundTrip(*client, SerializeSolveRequest(request));
  EXPECT_EQ(solved.status, "ok");
  ASSERT_EQ(solved.results.size(), 2u);
  EXPECT_EQ(solved.results[0].exact_value, "1/2");

  SolveResponse bad = MustRoundTrip(
      *client, SerializeLoadTenant(3, "broken", "not a database"));
  EXPECT_EQ(bad.status, "error");
}

TEST_F(ServerTest, SaturatedTenantIsRejectedStructurally) {
  // One worker, capacity 1+1. The hook holds the worker on the first
  // request until the test has observed the rejection, making the
  // saturation deterministic.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  ServerOptions options;
  options.worker_threads = 1;
  options.limits = TenantLimits{1, 1};
  options.pre_solve_hook = [&] {
    if (entered.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
  };
  StartServer(std::move(options));
  auto client = LineClient::Connect(server_->port());
  ASSERT_TRUE(client.ok());

  SolveRequest request;
  request.tenant = "acme";
  request.query = "Q(x) <- R(x, y), S(y)";

  // First request: admitted, dequeued, parked in the hook.
  request.id = 1;
  ASSERT_TRUE(client->SendLine(SerializeSolveRequest(request)).ok());
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Second request: fills the queue (the only worker is parked).
  request.id = 2;
  ASSERT_TRUE(client->SendLine(SerializeSolveRequest(request)).ok());
  while (server_->admission().TenantDepths("acme").queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Third request: over the queue limit — rejected immediately.
  request.id = 3;
  auto reply = client->RoundTrip(SerializeSolveRequest(request));
  ASSERT_TRUE(reply.ok());
  auto rejected = ParseResponseLine(*reply);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->id, 3u);
  EXPECT_EQ(rejected->status, "error");
  EXPECT_EQ(rejected->code, "RESOURCE_EXHAUSTED");
  EXPECT_NE(rejected->error.find("'acme'"), std::string::npos);
  EXPECT_NE(rejected->error.find("retry with backoff"), std::string::npos);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  // The parked requests complete normally.
  for (int i = 0; i < 2; ++i) {
    auto line = client->ReadLine();
    ASSERT_TRUE(line.ok());
    auto response = ParseResponseLine(*line);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, "ok") << response->error;
  }
  EXPECT_EQ(server_->metrics().requests_rejected.load(), 1u);
}

TEST_F(ServerTest, ExpiredDeadlineDegradesDeterministically) {
  // The hook outlives the 1 ms deadline, so by solve time the deadline
  // has passed and the server goes straight to bounded Monte Carlo.
  ServerOptions options;
  options.worker_threads = 1;
  options.pre_solve_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  };
  StartServer(std::move(options));
  auto client = LineClient::Connect(server_->port());
  ASSERT_TRUE(client.ok());

  SolveRequest request;
  request.tenant = "acme";
  request.query = "Q(x) <- R(x, y), S(y)";
  request.deadline_ms = 1;
  request.samples = 300;
  request.seed = 7;

  request.id = 1;
  SolveResponse first = MustRoundTrip(*client, SerializeSolveRequest(request));
  EXPECT_EQ(first.status, "ok");
  EXPECT_TRUE(first.degraded);
  ASSERT_FALSE(first.results.empty());
  EXPECT_FALSE(first.results[0].exact);
  EXPECT_GT(first.results[0].samples, 0);
  // The degraded response still reports its uncertainty (the CI line).
  EXPECT_NE(first.footer.find("95% CI half-width"), std::string::npos)
      << first.footer;

  // Degradation is deterministic: same request, same estimates, bitwise.
  request.id = 2;
  SolveResponse second =
      MustRoundTrip(*client, SerializeSolveRequest(request));
  EXPECT_TRUE(second.degraded);
  ASSERT_EQ(second.results.size(), first.results.size());
  for (size_t i = 0; i < first.results.size(); ++i) {
    EXPECT_EQ(second.results[i].value, first.results[i].value);
    EXPECT_EQ(second.results[i].std_error, first.results[i].std_error);
  }
  EXPECT_GE(server_->metrics().requests_degraded.load(), 2u);
}

TEST_F(ServerTest, MidSolveDeadlineDegradesViaCancellation) {
  // No hook delay: the deadline is wired into options.cancelled and a
  // 0 ms... actually 1 ms deadline fires at a phase boundary mid-solve
  // (or before the sweep), and the server reruns as Monte Carlo either
  // way. Exercised mainly under TSan for the cancellation plumbing.
  StartServer(ServerOptions{});
  auto client = LineClient::Connect(server_->port());
  ASSERT_TRUE(client.ok());

  SolveRequest request;
  request.id = 1;
  request.tenant = "acme";
  request.query = "Q(x) <- R(x, y), S(y)";
  request.deadline_ms = 1;
  request.samples = 100;
  // Let the deadline pass before the server even dequeues: send a burst
  // so later requests expire in the queue.
  std::vector<uint64_t> ids;
  for (uint64_t i = 1; i <= 8; ++i) {
    request.id = i;
    ids.push_back(i);
    ASSERT_TRUE(client->SendLine(SerializeSolveRequest(request)).ok());
  }
  int ok_count = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto line = client->ReadLine();
    ASSERT_TRUE(line.ok());
    auto response = ParseResponseLine(*line);
    ASSERT_TRUE(response.ok());
    if (response->status == "ok") ++ok_count;
  }
  EXPECT_EQ(ok_count, 8);
}

TEST(ReplayTest, RoundTripsThroughJournalFile) {
  std::string path = TempPath("replay_journal");
  {
    auto writer = JournalWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (uint64_t i = 0; i < 3; ++i) {
      JournalRecord record;
      record.timestamp_ns = i;
      record.request.id = i + 1;
      record.request.tenant = "acme";
      record.request.query = "Q(x) <- R(x, y), S(y)";
      auto a = BuildAggregateQuery(record.request);
      ASSERT_TRUE(a.ok());
      record.fingerprint = PlanFingerprint(*a, ScoreKind::kShapley);
      ASSERT_TRUE((*writer)->Append(record).ok());
    }
  }
  auto records = ReadJournal(path);
  ASSERT_TRUE(records.ok());
  std::map<std::string, std::shared_ptr<const Database>> tenants;
  tenants["acme"] = std::make_shared<const Database>(TestDatabase());
  auto replay = ReplayJournal(*records, tenants);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->records, 3u);
  EXPECT_EQ(replay->plan_cache_hits, 2u);  // one compile, two hits
  EXPECT_EQ(replay->fingerprint_matches, 3u);
  ASSERT_EQ(replay->results.size(), 3u);
  std::remove(path.c_str());
}

TEST(ReplayTest, MissingTenantIsNotFound) {
  JournalRecord record;
  record.request.tenant = "ghost";
  record.request.query = "Q(x) <- R(x, y), S(y)";
  auto replay = ReplayJournal({record}, {});
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace shapcq
