// Tests for the compiled-plan layer (shapley/plan.h): canonical
// fingerprints, AttributionPlan compilation, PlanCache behavior (including
// concurrent access), warm-vs-cold ComputeAll equivalence, and the
// per-fact engine fallback in the executor.

#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/cq.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/session.h"
#include "shapcq/shapley/solver.h"
#include "shapcq/util/parallel.h"
#include "shapcq/workload/generators.h"

namespace shapcq {
namespace {

AggregateQuery Agg(const char* query, AggregateFunction alpha,
                   ValueFunctionPtr tau) {
  return AggregateQuery{MustParseQuery(query), std::move(tau),
                        std::move(alpha)};
}

// ---------------------------------------------------------------------------
// Canonical query keys and plan fingerprints
// ---------------------------------------------------------------------------

TEST(CanonicalQueryKeyTest, InvariantUnderVariableRenamingAndQueryName) {
  ConjunctiveQuery q1 = MustParseQuery("Q(x) <- R(x, y), S(y)");
  ConjunctiveQuery q2 = MustParseQuery("P(u) <- R(u, w), S(w)");
  EXPECT_EQ(CanonicalQueryKey(q1), CanonicalQueryKey(q2));
  EXPECT_EQ(CanonicalQueryKey(q1), "(v0)<-1:R(v0,v1),1:S(v1)");
}

TEST(CanonicalQueryKeyTest, SensitiveToStructureAndConstants) {
  std::string base = CanonicalQueryKey(MustParseQuery("Q(x) <- R(x, y), S(y)"));
  // A different join shape, a repeated variable, a constant, and a
  // different constant are all distinct keys.
  EXPECT_NE(base, CanonicalQueryKey(MustParseQuery("Q(x) <- R(x, y), S(x)")));
  EXPECT_NE(base, CanonicalQueryKey(MustParseQuery("Q(x) <- R(x, x), S(x)")));
  std::string c1 = CanonicalQueryKey(MustParseQuery("Q(x) <- R(x, 1), S(x)"));
  std::string c2 = CanonicalQueryKey(MustParseQuery("Q(x) <- R(x, 2), S(x)"));
  EXPECT_NE(c1, c2);
}

TEST(CanonicalQueryKeyTest, StringConstantsCannotForgeKeyStructure) {
  // A malicious string constant that spells out an atom boundary must not
  // collide with the genuinely two-atom query: string constants are
  // length-prefixed in the key, never spliced in raw.
  Atom forged{"R", {Term::Variable("x"), Term::Constant(Value("a),S(b"))}};
  ConjunctiveQuery q1 = *ConjunctiveQuery::Create("Q", {"x"}, {forged});
  ConjunctiveQuery q2 = MustParseQuery("Q(x) <- R(x, 'a'), S('b')");
  EXPECT_NE(CanonicalQueryKey(q1), CanonicalQueryKey(q2));
  // And equal string constants still produce equal keys.
  Atom same{"R", {Term::Variable("y"), Term::Constant(Value("a),S(b"))}};
  ConjunctiveQuery q3 = *ConjunctiveQuery::Create("P", {"y"}, {same});
  EXPECT_EQ(CanonicalQueryKey(q1), CanonicalQueryKey(q3));
}

TEST(CanonicalQueryKeyTest, RelationNamesCannotForgeKeyStructure) {
  // Relation names come from the programmatic API and are validated only
  // as non-empty; one spelling out an atom boundary must not collide with
  // the genuinely two-atom query.
  Atom forged{"A(v0),B", {}};
  ConjunctiveQuery q1 = *ConjunctiveQuery::Create("Q", {}, {forged});
  ConjunctiveQuery q2 =
      *ConjunctiveQuery::Create("Q", {}, {Atom{"A", {Term::Variable("x")}},
                                          Atom{"B", {}}});
  EXPECT_NE(CanonicalQueryKey(q1), CanonicalQueryKey(q2));
}

TEST(CanonicalQueryKeyTest, NonFiniteDoubleAndStringNanStayDistinct) {
  // The double nan and the string "nan" are unequal Values, so their keys
  // must differ (the non-finite fallback is "d:"-prefixed, strings are
  // length-prefixed).
  Atom with_double{"R", {Term::Constant(Value(std::nan("")))}};
  Atom with_string{"R", {Term::Constant(Value("nan"))}};
  ConjunctiveQuery q1 = *ConjunctiveQuery::Create("Q", {}, {with_double});
  ConjunctiveQuery q2 = *ConjunctiveQuery::Create("Q", {}, {with_string});
  EXPECT_NE(CanonicalQueryKey(q1), CanonicalQueryKey(q2));
}

TEST(CanonicalQueryKeyTest, NumericConstantsFollowValueEquality) {
  // int 2 and double 2.0 are equal Values, so they canonicalize equally.
  Atom r1{"R", {Term::Variable("x"), Term::Constant(Value(int64_t{2}))}};
  Atom r2{"R", {Term::Variable("x"), Term::Constant(Value(2.0))}};
  ConjunctiveQuery q1 = *ConjunctiveQuery::Create("Q", {"x"}, {r1});
  ConjunctiveQuery q2 = *ConjunctiveQuery::Create("Q", {"x"}, {r2});
  EXPECT_EQ(CanonicalQueryKey(q1), CanonicalQueryKey(q2));
}

TEST(PlanFingerprintTest, EquatesAlphaRenamedQueries) {
  AggregateQuery a1 =
      Agg("Q(x) <- R(x, y), S(y)", AggregateFunction::Sum(), MakeTauId(0));
  AggregateQuery a2 =
      Agg("P(a) <- R(a, b), S(b)", AggregateFunction::Sum(), MakeTauId(0));
  EXPECT_EQ(PlanFingerprint(a1, ScoreKind::kShapley),
            PlanFingerprint(a2, ScoreKind::kShapley));
}

TEST(PlanFingerprintTest, DistinguishesConstantAlphaTauAndScoreKind) {
  AggregateQuery base =
      Agg("Q(x) <- R(x, y), S(y)", AggregateFunction::Sum(), MakeTauId(0));
  std::string fp = PlanFingerprint(base, ScoreKind::kShapley);

  // A constant in the body.
  EXPECT_NE(fp, PlanFingerprint(Agg("Q(x) <- R(x, 1), S(x)",
                                    AggregateFunction::Sum(), MakeTauId(0)),
                                ScoreKind::kShapley));
  // The aggregate, including quantile parameters.
  EXPECT_NE(fp, PlanFingerprint(Agg("Q(x) <- R(x, y), S(y)",
                                    AggregateFunction::Count(), MakeTauId(0)),
                                ScoreKind::kShapley));
  AggregateQuery qnt3 = Agg("Q(x) <- R(x, y), S(y)",
                            AggregateFunction::Quantile(
                                Rational(BigInt(1), BigInt(3))),
                            MakeTauId(0));
  AggregateQuery qnt2 = Agg("Q(x) <- R(x, y), S(y)",
                            AggregateFunction::Median(), MakeTauId(0));
  EXPECT_NE(PlanFingerprint(qnt3, ScoreKind::kShapley),
            PlanFingerprint(qnt2, ScoreKind::kShapley));
  // The value function and its parameters.
  EXPECT_NE(fp, PlanFingerprint(Agg("Q(x) <- R(x, y), S(y)",
                                    AggregateFunction::Sum(),
                                    MakeConstantTau(Rational(1))),
                                ScoreKind::kShapley));
  EXPECT_NE(
      PlanFingerprint(Agg("Q(x) <- R(x, y), S(y)", AggregateFunction::Sum(),
                          MakeConstantTau(Rational(1))),
                      ScoreKind::kShapley),
      PlanFingerprint(Agg("Q(x) <- R(x, y), S(y)", AggregateFunction::Sum(),
                          MakeConstantTau(Rational(2))),
                      ScoreKind::kShapley));
  // The score kind.
  EXPECT_NE(fp, PlanFingerprint(base, ScoreKind::kBanzhaf));
}

TEST(PlanFingerprintTest, OpaqueCallbackTausNeverShareFingerprints) {
  auto fn = [](const Tuple&) { return Rational(1); };
  ValueFunctionPtr t1 = MakeCallbackTau(fn, {}, "same-name");
  ValueFunctionPtr t2 = MakeCallbackTau(fn, {}, "same-name");
  AggregateQuery a1 = Agg("Q(x) <- R(x)", AggregateFunction::Sum(), t1);
  AggregateQuery a2 = Agg("Q(x) <- R(x)", AggregateFunction::Sum(), t2);
  // Identity-based tokens: distinct objects get distinct fingerprints even
  // with identical display names, while the same object equals itself.
  EXPECT_NE(PlanFingerprint(a1, ScoreKind::kShapley),
            PlanFingerprint(a2, ScoreKind::kShapley));
  EXPECT_EQ(PlanFingerprint(a1, ScoreKind::kShapley),
            PlanFingerprint(a1, ScoreKind::kShapley));
}

// ---------------------------------------------------------------------------
// AttributionPlan compilation
// ---------------------------------------------------------------------------

TEST(AttributionPlanTest, CompilePopulatesTheDatabaseIndependentLayer) {
  AggregateQuery a =
      Agg("Q(x, y) <- R(x, y), S(y)", AggregateFunction::Max(), MakeTauId(0));
  auto plan = AttributionPlan::Compile(a);
  EXPECT_EQ(plan->fingerprint(), PlanFingerprint(a, ScoreKind::kShapley));
  EXPECT_EQ(plan->classification(), Classify(a.query));
  EXPECT_TRUE(plan->inside_frontier());
  EXPECT_FALSE(plan->has_self_join());
  ASSERT_FALSE(plan->engines().empty());
  EXPECT_EQ(*plan->ExactAlgorithmName(), plan->engines()[0]->name);
  // τ reads head position 0 (= x), which only atom R contains.
  EXPECT_EQ(plan->localization_atoms(), std::vector<int>{0});
  EXPECT_EQ(plan->connected_components().size(), 1u);

  std::string explain = plan->Explain();
  EXPECT_NE(explain.find(plan->fingerprint()), std::string::npos);
  EXPECT_NE(explain.find(HierarchyClassName(plan->classification())),
            std::string::npos);
  for (const EngineProvider* engine : plan->engines()) {
    EXPECT_NE(explain.find(engine->name), std::string::npos);
  }
  EXPECT_NE(explain.find("batched"), std::string::npos);
}

TEST(AttributionPlanTest, SessionDelegatesToThePlan) {
  AggregateQuery a =
      Agg("Q(x) <- R(x), S(x, y), T(y)", AggregateFunction::Sum(),
          MakeTauId(0));
  RandomDatabaseOptions options;
  options.facts_per_relation = 4;
  options.seed = 11;
  Database db = RandomDatabaseForQuery(a.query, options);
  SolverSession session(a, db);
  EXPECT_EQ(session.plan().fingerprint(),
            PlanFingerprint(a, ScoreKind::kShapley));
  EXPECT_EQ(session.classification(), session.plan().classification());
  EXPECT_EQ(session.inside_frontier(), session.plan().inside_frontier());
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

TEST(PlanCacheTest, HitsMissesAndClear) {
  PlanCache cache;
  AggregateQuery a =
      Agg("Q(x) <- R(x, y), S(y)", AggregateFunction::Sum(), MakeTauId(0));
  bool hit = true;
  auto p1 = cache.GetOrCompile(a, ScoreKind::kShapley, &hit);
  EXPECT_FALSE(hit);
  auto p2 = cache.GetOrCompile(a, ScoreKind::kShapley, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p1.get(), p2.get());

  // An alpha-renamed query shares the plan; a different score kind does not.
  AggregateQuery renamed =
      Agg("P(u) <- R(u, w), S(w)", AggregateFunction::Sum(), MakeTauId(0));
  auto p3 = cache.GetOrCompile(renamed, ScoreKind::kShapley, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(p1.get(), p3.get());
  auto p4 = cache.GetOrCompile(a, ScoreKind::kBanzhaf, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(p1.get(), p4.get());

  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);

  cache.Clear();
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
  // The plan survives the clear through its shared_ptr.
  EXPECT_EQ(p1->fingerprint(), PlanFingerprint(a, ScoreKind::kShapley));
}

TEST(PlanCacheTest, FifoEvictionBoundsTheCache) {
  PlanCache cache(2);
  AggregateQuery a1 =
      Agg("Q(x) <- R(x, 1)", AggregateFunction::Sum(), MakeTauId(0));
  AggregateQuery a2 =
      Agg("Q(x) <- R(x, 2)", AggregateFunction::Sum(), MakeTauId(0));
  AggregateQuery a3 =
      Agg("Q(x) <- R(x, 3)", AggregateFunction::Sum(), MakeTauId(0));
  cache.GetOrCompile(a1);
  cache.GetOrCompile(a2);
  EXPECT_EQ(cache.stats().entries, 2u);
  cache.GetOrCompile(a3);  // evicts a1, the oldest entry
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  bool hit = false;
  cache.GetOrCompile(a3, ScoreKind::kShapley, &hit);
  EXPECT_TRUE(hit);
  cache.GetOrCompile(a1, ScoreKind::kShapley, &hit);
  EXPECT_FALSE(hit);  // was evicted; recompiled
}

TEST(PlanCacheTest, OpaqueTausCompileFreshAndNeverGrowTheCache) {
  PlanCache cache;
  ValueFunctionPtr tau =
      MakeCallbackTau([](const Tuple&) { return Rational(1); }, {}, "cb");
  AggregateQuery a = Agg("Q(x) <- R(x)", AggregateFunction::Sum(), tau);
  bool hit = true;
  auto p1 = cache.GetOrCompile(a, ScoreKind::kShapley, &hit);
  EXPECT_FALSE(hit);
  auto p2 = cache.GetOrCompile(a, ScoreKind::kShapley, &hit);
  EXPECT_FALSE(hit);
  EXPECT_NE(p1.get(), p2.get());  // compiled fresh each time
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);  // never inserted
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST(PlanCacheTest, ConcurrentGetOrCompileFromParallelForWorkers) {
  PlanCache cache;
  constexpr int kQueries = 4;
  constexpr int kCalls = 96;
  const char* queries[kQueries] = {
      "Q(x) <- R(x, y), S(y)",
      "Q(x) <- R(x, y), S(x)",
      "Q(x, y) <- R(x, y)",
      "Q(x) <- R(x), S(x, y), T(y)",
  };
  std::vector<const AttributionPlan*> seen(kCalls, nullptr);
  ParallelFor(
      kCalls,
      [&](int64_t i) {
        AggregateQuery a =
            Agg(queries[i % kQueries], AggregateFunction::Sum(), MakeTauId(0));
        seen[static_cast<size_t>(i)] = cache.GetOrCompile(a).get();
      },
      8);
  // Every call for one fingerprint observed the same plan object.
  for (int q = 0; q < kQueries; ++q) {
    for (int i = q + kQueries; i < kCalls; i += kQueries) {
      EXPECT_EQ(seen[static_cast<size_t>(i)], seen[static_cast<size_t>(q)]);
    }
  }
  PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kCalls));
  EXPECT_GE(stats.misses, static_cast<uint64_t>(kQueries));
}

// ---------------------------------------------------------------------------
// Warm-vs-cold ComputeAll equivalence across the engine spectrum
// ---------------------------------------------------------------------------

struct Workload {
  const char* label;
  const char* query;
  AggregateFunction alpha;
};

TEST(PlanCacheTest, WarmAndColdComputeAllAreBitwiseIdentical) {
  std::vector<Workload> workloads = {
      {"sum", "Q(x) <- R(x), S(x, y), T(y)", AggregateFunction::Sum()},
      {"max", "Q(x, y) <- R(x, y), S(y)", AggregateFunction::Max()},
      {"avg", "Q(x, y) <- R(x, y), S(y)", AggregateFunction::Avg()},
      {"cdist", "Q(x) <- R(x, y), S(y)", AggregateFunction::CountDistinct()},
      {"dup", "Q(x, y) <- R(x, y)", AggregateFunction::HasDuplicates()},
  };
  for (const Workload& workload : workloads) {
    AggregateQuery a = Agg(workload.query, workload.alpha, MakeTauId(0));
    RandomDatabaseOptions options;
    options.facts_per_relation = 4;
    options.seed = 97;
    Database db = RandomDatabaseForQuery(a.query, options);

    // Cold: a freshly compiled plan, bypassing every cache.
    SolverSession cold_session(AttributionPlan::Compile(a), db);
    auto cold = cold_session.ComputeAll();
    ASSERT_TRUE(cold.ok()) << workload.label << ": "
                           << cold.status().ToString();

    // Warm: the same plan served twice from a cache.
    PlanCache cache;
    bool hit = false;
    SolverSession first(cache.GetOrCompile(a), db);
    auto warm_first = first.ComputeAll();
    SolverSession second(cache.GetOrCompile(a, ScoreKind::kShapley, &hit),
                         db);
    auto warm_second = second.ComputeAll();
    EXPECT_TRUE(hit) << workload.label;
    ASSERT_TRUE(warm_first.ok()) << workload.label;
    ASSERT_TRUE(warm_second.ok()) << workload.label;

    ASSERT_EQ(cold->size(), warm_first.value().size()) << workload.label;
    ASSERT_EQ(cold->size(), warm_second.value().size()) << workload.label;
    for (size_t i = 0; i < cold->size(); ++i) {
      const auto& [fact, result] = (*cold)[i];
      for (const auto* warm : {&warm_first.value(), &warm_second.value()}) {
        EXPECT_EQ((*warm)[i].first, fact) << workload.label;
        EXPECT_EQ((*warm)[i].second.is_exact, result.is_exact)
            << workload.label;
        EXPECT_EQ((*warm)[i].second.exact, result.exact) << workload.label;
        EXPECT_EQ((*warm)[i].second.algorithm, result.algorithm)
            << workload.label;
      }
      // And both match the pre-plan reference: per-fact Compute.
      auto per_fact = cold_session.Compute(fact);
      ASSERT_TRUE(per_fact.ok()) << workload.label;
      EXPECT_EQ(per_fact->exact, result.exact) << workload.label;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-fact engine fallback (the former ComputeAll divergence)
// ---------------------------------------------------------------------------

// A deliberately flaky engine: first in the chain for queries over the
// marker relation "PzR", correct (brute-force) values for every fact except
// the smallest endogenous FactId, where it fails. The executor must keep
// its successes and move only the failing fact to the next engine — exactly
// what per-fact Compute calls do.
void RegisterPoisonEngineOnce() {
  static bool registered = [] {
    EngineProvider provider;
    provider.name = "poison/partial-failure";
    provider.priority = 0;  // ahead of every built-in
    provider.applies = [](const AggregateQuery& a) {
      return !a.query.AtomsOf("PzR").empty();
    };
    provider.score_one = [](const AggregateQuery& a, const Database& db,
                            FactId fact,
                            const SolverOptions& options)
        -> StatusOr<Rational> {
      if (fact == db.EndogenousFacts().front()) {
        return UnsupportedError("poisoned fact");
      }
      return BruteForceScore(a, db, fact, options.score);
    };
    EngineRegistry::Global().Register(std::move(provider));
    return true;
  }();
  (void)registered;
}

TEST(ExactSweepTest, EngineFailingForSomeFactsKeepsItsSuccesses) {
  RegisterPoisonEngineOnce();
  AggregateQuery a = Agg("Q(x) <- PzR(x, y)", AggregateFunction::Sum(),
                         MakeTauId(0));
  Database db;
  for (int i = 1; i <= 5; ++i) {
    db.AddEndogenous("PzR", {Value(i), Value(i + 10)});
  }
  SolverSession session(AttributionPlan::Compile(a), db);
  auto all = session.ComputeAll();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), 5u);
  FactId poisoned = db.EndogenousFacts().front();
  int poison_engine_facts = 0;
  for (const auto& [fact, result] : *all) {
    // ComputeAll must match the per-fact path in value AND engine choice.
    auto per_fact = session.Compute(fact);
    ASSERT_TRUE(per_fact.ok());
    EXPECT_EQ(result.exact, per_fact->exact);
    EXPECT_EQ(result.algorithm, per_fact->algorithm);
    if (result.algorithm == "poison/partial-failure") ++poison_engine_facts;
    if (fact == poisoned) {
      EXPECT_NE(result.algorithm, "poison/partial-failure");
    }
  }
  // Only the poisoned fact moved on; the other four kept the first engine.
  EXPECT_EQ(poison_engine_facts, 4);
}

}  // namespace
}  // namespace shapcq
