// shapcq_cli: command-line Shapley attribution over CSV data.
//
// Usage:
//   shapcq_cli --query 'Q(p, s) <- Earns(p, s), Took(p, c)'
//              --agg avg --tau id:2
//              --endo Took=took.csv --exo Earns=earns.csv
//              [--score banzhaf] [--method auto|exact|brute|mc]
//              [--threads <n>]    (worker threads for the all-facts batch;
//                                  0 = hardware concurrency)
//              [--expected <p>]   (also print E[A] over the uniform
//                                  tuple-independent DB with probability p)
//              [--explain]        (print the compiled AttributionPlan:
//                                  canonical fingerprint, hierarchy class,
//                                  engine chain with batched-scorer
//                                  availability, PlanCache counters, and
//                                  lineage-circuit telemetry)
//              [--repeat <n>]     (serving loop: run the all-facts solve n
//                                  times, re-fetching the plan from the
//                                  PlanCache each round to exercise the
//                                  warm path; prints the initial plan
//                                  compile/fetch time and the average warm
//                                  round)
//
// Aggregates: sum count cdist min max avg median qnt:<a>/<b> dup
// Value functions: id:<i>  relu:<i>  gt:<i>:<b>  const:<c>   (i is 1-based)
//
// Prints the classification of the query, the tractability verdict, the
// attribution of every endogenous fact, and a plan-provenance footer.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/spec.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/csv.h"
#include "shapcq/data/database.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/lineage/engine.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/report.h"
#include "shapcq/shapley/session.h"
#include "shapcq/shapley/solver.h"

using namespace shapcq;  // NOLINT: example brevity

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "shapcq_cli: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string query_text;
  std::string agg_text = "sum";
  std::string tau_text = "const:1";
  std::string score_text = "shapley";
  std::string method_text = "auto";
  std::string expected_text;
  int threads = 0;
  bool explain = false;
  int repeat = 1;
  std::vector<std::pair<std::string, bool>> loads;  // "Rel=path", endogenous
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return Fail("--query needs a value");
      query_text = v;
    } else if (arg == "--agg") {
      const char* v = next();
      if (v == nullptr) return Fail("--agg needs a value");
      agg_text = v;
    } else if (arg == "--tau") {
      const char* v = next();
      if (v == nullptr) return Fail("--tau needs a value");
      tau_text = v;
    } else if (arg == "--endo" || arg == "--exo") {
      const char* v = next();
      if (v == nullptr) return Fail(arg + " needs Rel=path");
      loads.emplace_back(v, arg == "--endo");
    } else if (arg == "--score") {
      const char* v = next();
      if (v == nullptr) return Fail("--score needs a value");
      score_text = v;
    } else if (arg == "--method") {
      const char* v = next();
      if (v == nullptr) return Fail("--method needs a value");
      method_text = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Fail("--threads needs a count");
      char* end = nullptr;
      long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0 || parsed > 4096) {
        return Fail("--threads needs a count in [0, 4096], got: " +
                    std::string(v));
      }
      threads = static_cast<int>(parsed);
    } else if (arg == "--expected") {
      const char* v = next();
      if (v == nullptr) return Fail("--expected needs a probability");
      expected_text = v;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--repeat") {
      const char* v = next();
      if (v == nullptr) return Fail("--repeat needs a count");
      char* end = nullptr;
      long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 1 || parsed > 1000000) {
        return Fail("--repeat needs a count in [1, 1000000], got: " +
                    std::string(v));
      }
      repeat = static_cast<int>(parsed);
    } else {
      return Fail("unknown argument: " + arg);
    }
  }
  if (query_text.empty()) return Fail("--query is required");

  StatusOr<ConjunctiveQuery> query = ParseQuery(query_text);
  if (!query.ok()) return Fail(query.status().ToString());
  StatusOr<AggregateFunction> alpha = ParseAggregateSpec(agg_text);
  if (!alpha.ok()) return Fail(alpha.status().ToString());
  StatusOr<ValueFunctionPtr> tau = ParseTauSpec(tau_text);
  if (!tau.ok()) return Fail(tau.status().ToString());

  Database db;
  for (const auto& [spec, endogenous] : loads) {
    size_t eq = spec.find('=');
    if (eq == std::string::npos) return Fail("expected Rel=path: " + spec);
    Status loaded = LoadCsvFileIntoDatabase(&db, spec.substr(0, eq),
                                            spec.substr(eq + 1), endogenous);
    if (!loaded.ok()) return Fail(loaded.ToString());
  }
  if (db.num_endogenous() == 0) return Fail("no endogenous facts loaded");

  SolverOptions options;
  if (score_text == "banzhaf") {
    options.score = ScoreKind::kBanzhaf;
  } else if (score_text != "shapley") {
    return Fail("unknown score: " + score_text);
  }
  std::map<std::string, SolveMethod> methods = {
      {"auto", SolveMethod::kAuto},
      {"exact", SolveMethod::kExactOnly},
      {"brute", SolveMethod::kBruteForce},
      {"mc", SolveMethod::kMonteCarlo},
  };
  auto method = methods.find(method_text);
  if (method == methods.end()) return Fail("unknown method: " + method_text);
  options.method = method->second;
  options.num_threads = threads;

  AggregateQuery a{*query, *tau, *alpha};
  // The one plan acquisition of this process: timed, and its hit/miss is
  // what the provenance footer reports.
  bool cache_hit = false;
  auto plan_start = std::chrono::steady_clock::now();
  auto plan = PlanCache::Global().GetOrCompile(a, options.score, &cache_hit);
  double plan_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - plan_start)
                       .count();
  std::printf("aggregate query : %s\n", a.ToString().c_str());
  std::printf("query class     : %s\n",
              HierarchyClassName(plan->classification()));
  std::printf("frontier verdict: %s\n\n",
              FrontierVerdictName(plan->inside_frontier()));
  if (explain) {
    std::fputs(plan->Explain().c_str(), stdout);
    std::putchar('\n');
  }
  std::printf("A(D) = %s\n\n", a.Evaluate(db).ToString().c_str());

  ShapleySolver solver(a);
  if (!expected_text.empty()) {
    StatusOr<Rational> p = Rational::FromString(expected_text);
    if (!p.ok()) return Fail(p.status().ToString());
    if (*p < Rational(0) || *p > Rational(1)) {
      return Fail("--expected probability must be in [0, 1]");
    }
    auto series = solver.ComputeSumKSeries(db);
    if (!series.ok()) return Fail(series.status().ToString());
    Rational expected = ExpectedValueFromSumK(*series, *p);
    std::printf("E[A] over uniform TID with p = %s: %s (= %.6f)\n\n",
                p->ToString().c_str(), expected.ToString().c_str(),
                expected.ToDouble());
  }

  // The serving loop: every round re-fetches the plan from the cache
  // (warm — the compile above was this process's only miss) and binds a
  // fresh session, like one request in a compile-once/execute-many
  // deployment.
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> results =
      UnsupportedError("no round ran");
  double rounds_ms = 0;
  for (int round = 0; round < repeat; ++round) {
    auto start = std::chrono::steady_clock::now();
    SolverSession session(
        PlanCache::Global().GetOrCompile(a, options.score), db);
    results = session.ComputeAll(options);
    rounds_ms += std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
    if (!results.ok()) return Fail(results.status().ToString());
  }
  if (repeat > 1) {
    std::printf(
        "serving loop    : plan %s in %.3f ms; %d warm rounds, "
        "avg %.3f ms\n\n",
        cache_hit ? "cached" : "compiled", plan_ms, repeat,
        rounds_ms / repeat);
  }

  ReportOptions report;
  report.show_relation_totals = true;
  std::fputs(FormatAttributionReport(db, *results, report).c_str(), stdout);
  std::printf("\n%s\n", SummarizeAttribution(db, *results).c_str());
  std::putchar('\n');
  // The footer gets the solve options (Monte Carlo seed for the CI line)
  // and the lineage-circuit telemetry accumulated by this process.
  LineageStatsSnapshot lineage = LineageStats::Global().Snapshot();
  std::fputs(
      FormatPlanProvenance(*plan, *results, cache_hit, &options, &lineage)
          .c_str(),
      stdout);
  if (explain) {
    PlanCache::Stats stats = PlanCache::Global().stats();
    std::printf("plan cache      : %llu hits, %llu misses, %llu plans\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.entries));
    std::printf(
        "lineage stats   : %llu circuits, %llu nodes, %llu/%llu compiler "
        "cache hits, %llu budget fallbacks\n",
        static_cast<unsigned long long>(lineage.circuits_compiled),
        static_cast<unsigned long long>(lineage.circuit_nodes),
        static_cast<unsigned long long>(lineage.cache_hits),
        static_cast<unsigned long long>(lineage.cache_lookups),
        static_cast<unsigned long long>(lineage.budget_fallbacks));
  }
  return 0;
}
