// Supply-chain scenario at a scale only the exact engines can handle.
//
// 60 endogenous shipment facts over Ships(supplier, part): which shipment
// contributes most to the number of DISTINCT part categories available
// (CountDistinct), and to the maximum shipped unit price (Max)? The query
//
//   Q(s, p, cat, price) <- Ships(s, p), Part(p, cat, price)
//
// is q-hierarchical (every variable is free; atoms(p) = {Ships, Part}
// dominates atoms(s), atoms(cat), atoms(price)), so the value functions are
// localized on Part through the join on p. With 60 players, 2^60
// enumeration is absurd; the exact DPs answer in seconds. The example also
// saves/loads the database through the text serialization round-trip.

#include <cstdio>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/data/db_io.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/report.h"
#include "shapcq/shapley/solver.h"

using namespace shapcq;  // NOLINT: example brevity

int main() {
  Database db;
  // 24 parts in 6 categories with prices; exogenous catalog.
  const int kParts = 12;
  for (int p = 0; p < kParts; ++p) {
    db.AddExogenous("Part", {Value(p), Value("cat" + std::to_string(p % 6)),
                             Value((p * 37) % 90 + 10)});
  }
  // 60 endogenous shipments: 5 suppliers × 12 parts.
  for (int s = 0; s < 5; ++s) {
    for (int p = 0; p < kParts; ++p) {
      db.AddEndogenous("Ships", {Value("sup" + std::to_string(s)), Value(p)});
    }
  }
  std::printf("database: %d facts (%d endogenous shipments)\n\n",
              db.num_facts(), db.num_endogenous());

  ConjunctiveQuery q =
      MustParseQuery("Q(s, p, cat, price) <- Ships(s, p), Part(p, cat, price)");

  // τ reads the price (4th head position): localized on Part.
  AggregateQuery max_price{q, MakeTauId(3), AggregateFunction::Max()};
  ShapleySolver max_solver(max_price);
  auto max_scores = max_solver.ComputeAll(db);
  if (!max_scores.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 max_scores.status().ToString().c_str());
    return 1;
  }
  std::printf("Max shipped price attribution (exact, %s):\n",
              (*max_scores)[0].second.algorithm.c_str());
  ReportOptions top5;
  top5.max_rows = 5;
  std::fputs(FormatAttributionReport(db, *max_scores, top5).c_str(), stdout);
  std::printf("%s\n\n", SummarizeAttribution(db, *max_scores).c_str());

  // CountDistinct over categories: τ maps the category string to a numeric
  // code via a callback localized on Part (position 3 of the head).
  auto category_code = MakeCallbackTau(
      [](const Tuple& answer) {
        const std::string& cat = answer[2].AsString();
        return Rational(static_cast<int64_t>(cat.back() - '0'));
      },
      {2}, "category-code");
  AggregateQuery distinct_cats{q, category_code,
                               AggregateFunction::CountDistinct()};
  ShapleySolver cdist_solver(distinct_cats);
  auto cdist_scores = cdist_solver.ComputeAll(db);
  if (!cdist_scores.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 cdist_scores.status().ToString().c_str());
    return 1;
  }
  std::printf("Distinct-category attribution (exact, %s):\n",
              (*cdist_scores)[0].second.algorithm.c_str());
  std::fputs(FormatAttributionReport(db, *cdist_scores, top5).c_str(),
             stdout);

  // Round-trip the database through the text format.
  std::string serialized = SerializeDatabase(db);
  auto reloaded = ParseDatabase(serialized);
  std::printf("\nserialization round-trip: %s (%zu bytes)\n",
              reloaded.ok() && reloaded->num_facts() == db.num_facts()
                  ? "ok"
                  : "FAILED",
              serialized.size());
  return 0;
}
