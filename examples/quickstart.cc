// Quickstart: Example 2.2/2.3 of the paper.
//
// The educational institute offers individual courses; we ask how much each
// course contributes to the average salary of people who took courses:
//
//   A = Avg ∘ s ∘ ( Q(p, s) <- Earns(p, s), Took(p, c), Course(n, c) )
//
// Course facts are endogenous (the players); Earns and Took are exogenous.
// The query is ∃-hierarchical but not all-hierarchical, so exact Avg
// computation is outside the tractable frontier — the solver transparently
// falls back to brute force at this size (and Monte Carlo at scale). For
// Sum, the exact linearity-based engine applies.

#include <cstdio>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/solver.h"

using namespace shapcq;  // NOLINT: example brevity

int main() {
  // --- Build the database -------------------------------------------------
  Database db;
  db.AddExogenous("Earns", {Value("ann"), Value(95000)});
  db.AddExogenous("Earns", {Value("bob"), Value(61000)});
  db.AddExogenous("Earns", {Value("carol"), Value(120000)});
  db.AddExogenous("Earns", {Value("dave"), Value(52000)});
  db.AddExogenous("Earns", {Value("eve"), Value(88000)});

  db.AddEndogenous("Course", {Value("databases"), Value(101)});
  db.AddEndogenous("Course", {Value("ai"), Value(102)});
  db.AddEndogenous("Course", {Value("theory"), Value(103)});

  db.AddExogenous("Took", {Value("ann"), Value(101)});
  db.AddExogenous("Took", {Value("ann"), Value(102)});
  db.AddExogenous("Took", {Value("bob"), Value(101)});
  db.AddExogenous("Took", {Value("carol"), Value(102)});
  db.AddExogenous("Took", {Value("dave"), Value(103)});

  // --- The aggregate query ------------------------------------------------
  ConjunctiveQuery q =
      MustParseQuery("Q(p, s) <- Earns(p, s), Took(p, c), Course(n, c)");
  AggregateQuery avg_salary{q, MakeTauId(1), AggregateFunction::Avg()};

  std::printf("Aggregate query:  %s\n", avg_salary.ToString().c_str());
  std::printf("Full result A(D): %s\n\n",
              avg_salary.Evaluate(db).ToString().c_str());

  // --- Shapley contribution of every course -------------------------------
  ShapleySolver solver(avg_salary);
  auto scores = solver.ComputeAll(db);
  if (!scores.ok()) {
    std::fprintf(stderr, "error: %s\n", scores.status().ToString().c_str());
    return 1;
  }
  std::printf("%-28s %-18s %-14s %s\n", "course", "Shapley value",
              "(approx)", "algorithm");
  for (const auto& [fact, result] : *scores) {
    std::printf("%-28s %-18s %-14.2f %s\n", db.fact(fact).ToString().c_str(),
                result.exact.ToString().c_str(), result.approximation,
                result.algorithm.c_str());
  }

  // --- Compare: Sum instead of Avg uses the exact linearity engine --------
  AggregateQuery sum_salary{q, MakeTauId(1), AggregateFunction::Sum()};
  ShapleySolver sum_solver(sum_salary);
  std::printf("\nSame attribution with Sum (exact, polynomial engine):\n");
  auto sum_scores = sum_solver.ComputeAll(db);
  for (const auto& [fact, result] : *sum_scores) {
    std::printf("%-28s %-18s %s\n", db.fact(fact).ToString().c_str(),
                result.exact.ToString().c_str(), result.algorithm.c_str());
  }
  return 0;
}
