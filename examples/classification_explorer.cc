// Classification explorer: the Figure 1 experience as a tool.
//
// Prints, for a gallery of CQs (or queries passed on the command line), the
// hierarchy classification and the per-aggregate tractability verdicts with
// a short explanation. Usage:
//
//   classification_explorer                      # built-in gallery
//   classification_explorer 'Q(x) <- R(x, y), S(y)' ...

#include <cstdio>
#include <string>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/solver.h"

using namespace shapcq;  // NOLINT: example brevity

namespace {

void Explain(const std::string& text) {
  StatusOr<ConjunctiveQuery> parsed = ParseQuery(text);
  if (!parsed.ok()) {
    std::printf("%s\n  parse error: %s\n\n", text.c_str(),
                parsed.status().ToString().c_str());
    return;
  }
  const ConjunctiveQuery& q = *parsed;
  std::printf("%s\n", q.ToString().c_str());
  if (q.HasSelfJoin()) {
    std::printf("  has a self-join: outside the scope of the paper's "
                "dichotomies (brute force / Monte Carlo only)\n\n");
    return;
  }
  HierarchyClass c = Classify(q);
  std::printf("  class: %s", HierarchyClassName(c));
  std::printf("  [chain: ");
  std::printf("exists=%s", IsExistsHierarchical(q) ? "yes" : "no");
  std::printf(", all=%s", IsAllHierarchical(q) ? "yes" : "no");
  std::printf(", q=%s", IsQHierarchical(q) ? "yes" : "no");
  std::printf(", sq=%s]\n", IsSqHierarchical(q) ? "yes" : "no");

  struct Row {
    AggregateFunction alpha;
    const char* frontier;
  };
  std::vector<Row> rows = {
      {AggregateFunction::Sum(), "exists-hierarchical"},
      {AggregateFunction::Count(), "exists-hierarchical"},
      {AggregateFunction::Min(), "all-hierarchical"},
      {AggregateFunction::Max(), "all-hierarchical"},
      {AggregateFunction::CountDistinct(), "all-hierarchical"},
      {AggregateFunction::Avg(), "q-hierarchical"},
      {AggregateFunction::Median(), "q-hierarchical"},
      {AggregateFunction::HasDuplicates(), "sq-hierarchical"},
  };
  for (const Row& row : rows) {
    bool tractable = IsInsideFrontier(row.alpha, q);
    std::printf("    %-14s -> %s (frontier: %s)\n",
                row.alpha.ToString().c_str(),
                tractable ? "PTIME for every localized tau"
                          : "FP^#P-hard for some localized tau",
                row.frontier);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> queries;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) queries.push_back(argv[i]);
  } else {
    // The Figure 1 gallery plus the paper's running examples.
    queries = {
        "Q(x) <- R(x), S(x, y)",            // sq-hierarchical
        "Q(x, y) <- R(x), S(x, y)",         // q-hierarchical
        "Q(y) <- R(x), S(x, y)",            // all-hierarchical
        "Q(x) <- R(x), S(x, y), T(y)",      // exists-hierarchical
        "Q() <- R(x), S(x, y), T(y)",       // general
        "Q(x) <- R(x, y), S(y)",            // Q_xyy (Equation 7)
        "Q(x, y) <- R(x, y), S(y)",         // Q_xyy^full
        "Q(x, z) <- R(x, y), S(y), T(z)",   // Q_xyyz (Section 7.2)
        "Q(p, s) <- Earns(p, s), Took(p, c), Course(n, c)",  // Example 2.2
        "Q(x) <- R(x, y), R(y, x)",         // self-join
    };
  }
  std::printf("shapcq classification explorer — Figure 1 of Standke & "
              "Kimelfeld (PODS 2025)\n\n");
  for (const std::string& text : queries) Explain(text);
  return 0;
}
