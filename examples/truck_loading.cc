// The paper's SECOND Example 2.2 query: a non-localized value function.
//
//   A' = Max ∘ (w_c + w_t) ∘ ( Q(c, t, wc, wt) <-
//            Cargo(c, wc), Carries(t, c), Truck(t, wt) )
//
// "the maximal weight of a truck loaded with cargo": τ adds attributes of
// Cargo AND Truck, so it is localized on no single atom, and the query is
// not even all-hierarchical (c and t overlap without nesting) — the solver
// falls back to brute force.
//
// The Section 7.3 extension handles the monotone-monoid core of this τ:
// on the all-hierarchical fleet-planning variant
//
//   Q2(wc, wt) <- CargoW(wc), TruckW(wt)        (any cargo on any truck)
//
// Max(wc + wt) is computed exactly in polynomial time by the monoid engine,
// which this example also demonstrates (validated against brute force).

#include <cstdio>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/min_max_monoid.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver.h"

using namespace shapcq;  // NOLINT: example brevity

int main() {
  // --- Part 1: the paper's trucking query, non-localized τ ---------------
  Database db;
  db.AddEndogenous("Cargo", {Value("pipes"), Value(12)});
  db.AddEndogenous("Cargo", {Value("sand"), Value(30)});
  db.AddEndogenous("Cargo", {Value("tools"), Value(5)});
  db.AddEndogenous("Truck", {Value("t1"), Value(40)});
  db.AddEndogenous("Truck", {Value("t2"), Value(25)});
  db.AddExogenous("Carries", {Value("t1"), Value("pipes")});
  db.AddExogenous("Carries", {Value("t1"), Value("sand")});
  db.AddExogenous("Carries", {Value("t2"), Value("tools")});

  ConjunctiveQuery q = MustParseQuery(
      "Q(c, t, wc, wt) <- Cargo(c, wc), Carries(t, c), Truck(t, wt)");
  // τ(c, t, wc, wt) = wc + wt: depends on positions 3 and 4.
  auto tau = MakeCallbackTau(
      [](const Tuple& answer) {
        return answer[2].AsRational() + answer[3].AsRational();
      },
      {2, 3}, "wc+wt");
  AggregateQuery a{q, tau, AggregateFunction::Max()};
  std::printf("Paper Example 2.2 (second query):\n  %s\n", a.ToString().c_str());
  std::printf("  localized: %s;  class: not all-hierarchical\n",
              LocalizationAtoms(q, *tau).empty() ? "no" : "yes");
  std::printf("  A(D) = %s (heaviest loaded truck)\n\n",
              a.Evaluate(db).ToString().c_str());
  ShapleySolver solver(a);
  auto scores = solver.ComputeAll(db);
  if (!scores.ok()) {
    std::fprintf(stderr, "error: %s\n", scores.status().ToString().c_str());
    return 1;
  }
  for (const auto& [fact, result] : *scores) {
    std::printf("  %-26s %10.4f   [%s]\n", db.fact(fact).ToString().c_str(),
                result.approximation, result.algorithm.c_str());
  }

  // --- Part 2: the monoid-tractable fleet-planning variant ----------------
  std::printf("\nFleet planning variant (Section 7.3 monoid extension):\n");
  Database fleet;
  for (int w : {12, 30, 5, 18}) {
    fleet.AddEndogenous("CargoW", {Value(w)});
  }
  for (int w : {40, 25, 33}) {
    fleet.AddEndogenous("TruckW", {Value(w)});
  }
  ConjunctiveQuery q2 = MustParseQuery("Q2(wc, wt) <- CargoW(wc), TruckW(wt)");
  std::printf("  Max o (wc+wt) o %s\n", q2.ToString().c_str());
  SumKEngine monoid_engine = [&q2](const AggregateQuery&, const Database& d,
                                   const SolverOptions&) {
    return MonoidMinMaxSumK(q2, MonoidKind::kPlus, {0, 1}, /*is_max=*/true, d);
  };
  AggregateQuery a2{q2, MakeMonoidTau(MonoidKind::kPlus, {0, 1}),
                    AggregateFunction::Max()};
  std::printf("  %-20s %16s %16s\n", "fact", "monoid engine",
              "brute force");
  for (FactId f : fleet.EndogenousFacts()) {
    auto exact = ScoreViaSumK(a2, fleet, f, monoid_engine);
    auto brute = BruteForceScore(a2, fleet, f);
    std::printf("  %-20s %16.4f %16.4f%s\n",
                fleet.fact(f).ToString().c_str(), exact->ToDouble(),
                brute->ToDouble(), *exact == *brute ? "" : "  MISMATCH");
  }
  std::printf("\nThe monoid engine runs in polynomial time; brute force is "
              "shown only to confirm the values at this toy size.\n");
  return 0;
}
