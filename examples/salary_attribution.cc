// HR analytics scenario: one database, every aggregate function side by
// side, exact engines vs Monte Carlo.
//
// Departments nominate employees for a company-wide program; each
// nomination fact Nominated(person, dept) is endogenous (the unit of
// attribution), salaries are exogenous. The query
//
//   Q(p, s) <- Salary(p, s), Nominated(p, d)
//
// is q-hierarchical: atoms(p) = {Salary, Nominated} contains atoms(s) =
// {Salary} and atoms(d) = {Nominated}, and no free variable's atom set is
// strictly contained in an existential variable's. (It is not
// sq-hierarchical: the free s is dominated by the free p.) Avg and Median
// are therefore exactly solvable, as are Sum/Count/Min/Max/CDist.

#include <cstdio>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/monte_carlo.h"
#include "shapcq/shapley/solver.h"

using namespace shapcq;  // NOLINT: example brevity

int main() {
  Database db;
  struct Person {
    const char* name;
    int salary;
  };
  const std::vector<Person> people = {
      {"ann", 95}, {"bob", 61}, {"carol", 120}, {"dave", 52},
      {"eve", 88}, {"frank", 77}, {"grace", 102},
  };
  for (const Person& person : people) {
    db.AddExogenous("Salary", {Value(person.name), Value(person.salary)});
  }
  // Nominations (endogenous players). Ann is nominated twice.
  db.AddEndogenous("Nominated", {Value("ann"), Value("eng")});
  db.AddEndogenous("Nominated", {Value("ann"), Value("research")});
  db.AddEndogenous("Nominated", {Value("bob"), Value("eng")});
  db.AddEndogenous("Nominated", {Value("carol"), Value("research")});
  db.AddEndogenous("Nominated", {Value("dave"), Value("sales")});
  db.AddEndogenous("Nominated", {Value("grace"), Value("eng")});

  ConjunctiveQuery q =
      MustParseQuery("Q(p, s) <- Salary(p, s), Nominated(p, d)");
  std::printf("Query: %s   (class: q-hierarchical)\n\n", q.ToString().c_str());

  std::vector<AggregateFunction> aggregates = {
      AggregateFunction::Sum(),       AggregateFunction::Count(),
      AggregateFunction::Min(),       AggregateFunction::Max(),
      AggregateFunction::Avg(),       AggregateFunction::Median(),
      AggregateFunction::CountDistinct(),
  };

  // Header row.
  std::printf("%-34s", "nomination");
  for (const AggregateFunction& alpha : aggregates) {
    std::printf(" %12s", alpha.ToString().c_str());
  }
  std::printf("\n");

  std::vector<FactId> players = db.EndogenousFacts();
  for (FactId fact : players) {
    std::printf("%-34s", db.fact(fact).ToString().c_str());
    for (const AggregateFunction& alpha : aggregates) {
      AggregateQuery a{q, MakeTauId(1), alpha};
      ShapleySolver solver(a);
      auto result = solver.Compute(db, fact);
      if (!result.ok()) {
        std::printf(" %12s", "error");
      } else {
        std::printf(" %12.4f", result->approximation);
      }
    }
    std::printf("\n");
  }

  // Exact vs Monte Carlo on the Median attribution.
  std::printf("\nExact vs Monte Carlo (Median, 20000 permutations):\n");
  AggregateQuery median{q, MakeTauId(1), AggregateFunction::Median()};
  ShapleySolver solver(median);
  for (FactId fact : players) {
    auto exact = solver.Compute(db, fact);
    MonteCarloOptions mc;
    mc.num_samples = 20000;
    mc.seed = 7;
    auto sampled = MonteCarloShapley(median, db, fact, mc);
    std::printf("  %-32s exact %10.4f   sampled %10.4f (+-%.4f)\n",
                db.fact(fact).ToString().c_str(), exact->approximation,
                sampled->estimate, 2 * sampled->std_error);
  }

  // Banzhaf comparison (Shapley-like scores from the same machinery).
  std::printf("\nShapley vs Banzhaf (Max aggregate):\n");
  AggregateQuery max_q{q, MakeTauId(1), AggregateFunction::Max()};
  ShapleySolver max_solver(max_q);
  SolverOptions banzhaf;
  banzhaf.score = ScoreKind::kBanzhaf;
  for (FactId fact : players) {
    auto shapley = max_solver.Compute(db, fact);
    auto banzhaf_result = max_solver.Compute(db, fact, banzhaf);
    std::printf("  %-32s Shapley %10.4f   Banzhaf %10.4f\n",
                db.fact(fact).ToString().c_str(), shapley->approximation,
                banzhaf_result->approximation);
  }
  return 0;
}
