// Sensor network scenario: Min/Max and CountDistinct attribution.
//
// Readings(sensor, value) are endogenous (each reading is a player);
// Mounted(sensor, zone) and Zone(zone) are exogenous infrastructure. We ask
// which reading is responsible for the maximum reported value in monitored
// zones, for the minimum, and for the number of distinct alarm codes:
//
//   Q(r, v) <- Readings(r, v), Mounted(r, z), Zone(z)
//
// atoms(z) = {Mounted, Zone} overlaps atoms(r) = {Readings, Mounted}
// without nesting, so the query is ∃-hierarchical (z is the only
// existential variable) but not all-hierarchical: Min/Max are OUTSIDE
// their frontier and the solver falls back to brute force. Dropping the
// Zone atom gives an all-hierarchical query where the exact DP runs. The
// example shows both, plus a null player (an unmounted sensor's reading).

#include <cstdio>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/solver.h"

using namespace shapcq;  // NOLINT: example brevity

int main() {
  Database db;
  // Readings: sensor id, value (endogenous).
  const std::vector<std::pair<int, int>> readings = {
      {1, 20}, {1, 35}, {2, 35}, {2, 80}, {3, -5}, {3, 12}, {4, 80},
  };
  for (const auto& [sensor, value] : readings) {
    db.AddEndogenous("Readings", {Value(sensor), Value(value)});
  }
  // Infrastructure (exogenous): sensor 4 is unmounted.
  db.AddExogenous("Mounted", {Value(1), Value("north")});
  db.AddExogenous("Mounted", {Value(2), Value("north")});
  db.AddExogenous("Mounted", {Value(3), Value("south")});
  db.AddExogenous("Zone", {Value("north")});
  db.AddExogenous("Zone", {Value("south")});

  ConjunctiveQuery monitored =
      MustParseQuery("Q(r, v) <- Readings(r, v), Mounted(r, z), Zone(z)");
  ConjunctiveQuery all_readings =
      MustParseQuery("Q(r, v) <- Readings(r, v), Mounted(r, z)");

  auto report = [&db](const char* title, const ConjunctiveQuery& q,
                      AggregateFunction alpha) {
    AggregateQuery a{q, MakeTauId(1), alpha};
    ShapleySolver solver(a);
    std::printf("%s\n  %s\n  A(D) = %s\n", title, a.ToString().c_str(),
                a.Evaluate(db).ToString().c_str());
    auto scores = solver.ComputeAll(db);
    if (!scores.ok()) {
      std::printf("  error: %s\n\n", scores.status().ToString().c_str());
      return;
    }
    for (const auto& [fact, result] : *scores) {
      std::printf("  %-24s %12.5f   [%s]\n",
                  db.fact(fact).ToString().c_str(), result.approximation,
                  result.algorithm.c_str());
    }
    std::printf("\n");
  };

  report("Max over monitored readings (not all-hierarchical -> fallback):",
         monitored, AggregateFunction::Max());
  report("Max over mounted readings (all-hierarchical -> exact DP):",
         all_readings, AggregateFunction::Max());
  report("Min over mounted readings:", all_readings,
         AggregateFunction::Min());
  report("Distinct reported values (CountDistinct):", all_readings,
         AggregateFunction::CountDistinct());

  // A has-duplicates check on an sq-hierarchical variant: do two sensors
  // report the same value?
  ConjunctiveQuery per_reading = MustParseQuery("Q(r, v) <- Readings(r, v)");
  report("Has-duplicates over raw readings (sq-hierarchical):", per_reading,
         AggregateFunction::HasDuplicates());
  return 0;
}
