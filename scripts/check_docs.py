#!/usr/bin/env python3
"""Documentation link-check and lint for the shapcq repo.

Walks every Markdown file (excluding build trees), and fails on:

  * relative links or images whose target does not exist on disk
    (anchors are stripped; http(s)/mailto links are not fetched);
  * unbalanced fenced code blocks (an odd number of ``` fences);
  * a required doc that is missing, or not linked from README.md
    (docs/ARCHITECTURE.md, docs/METRICS.md, docs/OPERATIONS.md,
    docs/TRACING.md);
  * a Prometheus series name (shapcq_*) that the exposition code in
    src/shapcq/serve/metrics.cc emits but docs/METRICS.md never
    mentions — every series must be documented.

Run from the repo root (CI and the docs_check ctest target do):

    python3 scripts/check_docs.py
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
FENCE_RE = re.compile(r"^\s*```")
SKIP_DIRS = {".git", ".github", "third_party"}
REQUIRED_DOCS = [
    "docs/ARCHITECTURE.md",
    "docs/METRICS.md",
    "docs/OPERATIONS.md",
    "docs/TRACING.md",
]
METRICS_SOURCE = "src/shapcq/serve/metrics.cc"
METRICS_DOC = "docs/METRICS.md"
METRIC_NAME_RE = re.compile(r"shapcq_[a-z0-9_]+")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in sorted(filenames):
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def strip_code(text):
    """Remove fenced code blocks and inline code spans before link
    extraction, so example snippets can't trip the checker."""
    out, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(re.sub(r"`[^`]*`", "", line))
    return "\n".join(out)


def check_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as f:
        text = f.read()

    fences = sum(1 for line in text.splitlines() if FENCE_RE.match(line))
    if fences % 2 != 0:
        errors.append(f"{path}: unbalanced ``` code fences ({fences})")

    for target in LINK_RE.findall(strip_code(text)):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = target.split("#", 1)[0]
        if not resolved:
            continue
        if resolved.startswith("/"):
            candidate = os.path.join(root, resolved.lstrip("/"))
        else:
            candidate = os.path.join(os.path.dirname(path), resolved)
        if not os.path.exists(candidate):
            errors.append(f"{path}: broken link '{target}'")
    return errors


def check_metrics_documented(root):
    """Every shapcq_* series name the exposition code emits must appear
    in docs/METRICS.md. Names built by concatenation (histogram
    _bucket/_sum/_count suffixes, quantile gauges) are covered by the
    substring test: the source fragment is a prefix of the documented
    full name."""
    source_path = os.path.join(root, METRICS_SOURCE)
    doc_path = os.path.join(root, METRICS_DOC)
    if not os.path.exists(source_path) or not os.path.exists(doc_path):
        return []  # missing-required-doc errors already cover this
    with open(source_path, encoding="utf-8") as f:
        names = sorted(set(METRIC_NAME_RE.findall(f.read())))
    with open(doc_path, encoding="utf-8") as f:
        doc = f.read()
    return [
        f"{METRICS_DOC}: undocumented metric series '{name}'"
        f" (emitted by {METRICS_SOURCE})"
        for name in names
        if name not in doc
    ]


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    errors = []

    for doc in REQUIRED_DOCS:
        if not os.path.exists(os.path.join(root, doc)):
            errors.append(f"missing required doc: {doc}")

    readme_path = os.path.join(root, "README.md")
    if os.path.exists(readme_path):
        with open(readme_path, encoding="utf-8") as f:
            readme = f.read()
        for doc in REQUIRED_DOCS:
            if doc not in readme:
                errors.append(f"README.md does not link {doc}")
    else:
        errors.append("missing README.md")

    errors.extend(check_metrics_documented(root))

    count = 0
    for path in markdown_files(root):
        count += 1
        errors.extend(check_file(path, root))

    if errors:
        for error in errors:
            print(f"check_docs: {error}", file=sys.stderr)
        return 1
    print(f"check_docs: {count} markdown files OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
