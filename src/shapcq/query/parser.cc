#include "shapcq/query/parser.h"

#include <cctype>
#include <cstdlib>
#include <string>

#include "shapcq/util/check.h"

namespace shapcq {

namespace {

// Hand-written recursive-descent parser over a string view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<ConjunctiveQuery> Parse() {
    SkipSpace();
    StatusOr<std::string> name = ParseIdentifier("query name");
    if (!name.ok()) return name.status();
    StatusOr<std::vector<std::string>> head = ParseHead();
    if (!head.ok()) return head.status();
    SkipSpace();
    if (!ConsumeArrow()) {
      return Error("expected '<-' or ':-' after the query head");
    }
    std::vector<Atom> atoms;
    while (true) {
      SkipSpace();
      StatusOr<Atom> atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      atoms.push_back(std::move(atom).value());
      SkipSpace();
      if (!Consume(',')) break;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return ConjunctiveQuery::Create(std::move(name).value(),
                                    std::move(head).value(),
                                    std::move(atoms));
  }

 private:
  Status Error(const std::string& message) const {
    return InvalidArgumentError(message + " (at offset " +
                                std::to_string(pos_) + " of \"" +
                                std::string(text_) + "\")");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeArrow() {
    if (pos_ + 1 < text_.size() &&
        (text_[pos_] == '<' || text_[pos_] == ':') &&
        text_[pos_ + 1] == '-') {
      pos_ += 2;
      return true;
    }
    return false;
  }

  static bool IsIdentifierStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsIdentifierChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  StatusOr<std::string> ParseIdentifier(const std::string& what) {
    SkipSpace();
    if (pos_ >= text_.size() || !IsIdentifierStart(text_[pos_])) {
      return Error("expected " + what);
    }
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentifierChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  StatusOr<std::vector<std::string>> ParseHead() {
    SkipSpace();
    if (!Consume('(')) return Error("expected '(' after the query name");
    std::vector<std::string> head;
    SkipSpace();
    if (Consume(')')) return head;
    while (true) {
      StatusOr<std::string> var = ParseIdentifier("head variable");
      if (!var.ok()) return var.status();
      head.push_back(std::move(var).value());
      SkipSpace();
      if (Consume(')')) return head;
      if (!Consume(',')) return Error("expected ',' or ')' in the head");
    }
  }

  StatusOr<Atom> ParseAtom() {
    StatusOr<std::string> relation = ParseIdentifier("relation name");
    if (!relation.ok()) return relation.status();
    SkipSpace();
    if (!Consume('(')) return Error("expected '(' after relation name");
    Atom atom;
    atom.relation = std::move(relation).value();
    SkipSpace();
    if (Consume(')')) return atom;
    while (true) {
      StatusOr<Term> term = ParseTerm();
      if (!term.ok()) return term.status();
      atom.terms.push_back(std::move(term).value());
      SkipSpace();
      if (Consume(')')) return atom;
      if (!Consume(',')) return Error("expected ',' or ')' in an atom");
    }
  }

  StatusOr<Term> ParseTerm() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("expected a term");
    char c = text_[pos_];
    if (c == '\'' || c == '"') return ParseStringConstant(c);
    if (c == '-' || c == '+' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumberConstant();
    }
    if (IsIdentifierStart(c)) {
      StatusOr<std::string> name = ParseIdentifier("variable");
      if (!name.ok()) return name.status();
      return Term::Variable(std::move(name).value());
    }
    return Error("expected a variable or constant");
  }

  StatusOr<Term> ParseStringConstant(char quote) {
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      value.push_back(text_[pos_]);
      ++pos_;
    }
    if (pos_ >= text_.size()) return Error("unterminated string constant");
    ++pos_;  // closing quote
    return Term::Constant(Value(std::move(value)));
  }

  StatusOr<Term> ParseNumberConstant() {
    size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    bool saw_digit = false;
    bool saw_dot = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        saw_digit = true;
        ++pos_;
      } else if (c == '.' && !saw_dot) {
        saw_dot = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (!saw_digit) return Error("malformed number");
    std::string literal(text_.substr(start, pos_ - start));
    if (saw_dot) {
      return Term::Constant(Value(std::strtod(literal.c_str(), nullptr)));
    }
    return Term::Constant(
        Value(static_cast<int64_t>(std::strtoll(literal.c_str(), nullptr, 10))));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ConjunctiveQuery> ParseQuery(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

ConjunctiveQuery MustParseQuery(std::string_view text) {
  StatusOr<ConjunctiveQuery> query = ParseQuery(text);
  if (!query.ok()) {
    std::fprintf(stderr, "MustParseQuery: %s\n",
                 query.status().ToString().c_str());
    std::abort();
  }
  return std::move(query).value();
}

}  // namespace shapcq
