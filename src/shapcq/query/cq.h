// Conjunctive queries.
//
// A CQ has the form  Q(x1,...,xk) <- R1(z1), ..., Rq(zq)  where the head
// lists free variables and each body atom mixes variables and constants.
// This module provides the representation plus the structural accessors the
// paper's algorithms need: vars(Q), varsF(Q), vars∃(Q), atoms(Q, x),
// self-join detection, safety (range restriction), and residual queries
// Q_{x -> a}.

#ifndef SHAPCQ_QUERY_CQ_H_
#define SHAPCQ_QUERY_CQ_H_

#include <optional>
#include <string>
#include <vector>

#include "shapcq/data/value.h"
#include "shapcq/util/status.h"

namespace shapcq {

// One position in an atom: either a variable (by name) or a constant.
class Term {
 public:
  static Term Variable(std::string name);
  static Term Constant(Value value);

  bool is_variable() const { return is_variable_; }
  bool is_constant() const { return !is_variable_; }
  const std::string& variable() const;  // requires is_variable()
  const Value& constant() const;        // requires is_constant()

  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    if (a.is_variable_ != b.is_variable_) return false;
    return a.is_variable_ ? a.name_ == b.name_ : a.value_ == b.value_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

 private:
  Term() = default;
  bool is_variable_ = false;
  std::string name_;
  Value value_;
};

// One body atom R(z1,...,zm).
struct Atom {
  std::string relation;
  std::vector<Term> terms;

  int arity() const { return static_cast<int>(terms.size()); }
  bool ContainsVariable(const std::string& name) const;
  // Positions (0-based) where `name` occurs.
  std::vector<int> PositionsOf(const std::string& name) const;
  bool is_ground() const;  // no variables
  std::string ToString() const;
};

class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  // Builds a CQ; returns an error if the query is unsafe (a head variable
  // missing from the body) or malformed (empty body, head constants are not
  // supported: the head is a list of variable names, possibly repeated).
  static StatusOr<ConjunctiveQuery> Create(std::string name,
                                           std::vector<std::string> head,
                                           std::vector<Atom> body);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& head() const { return head_; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  int arity() const { return static_cast<int>(head_.size()); }
  bool is_boolean() const { return head_.empty(); }

  // All variables, in first-occurrence order (head first, then body).
  const std::vector<std::string>& variables() const { return variables_; }
  // Free (head) variables, deduplicated, in head order.
  const std::vector<std::string>& free_variables() const {
    return free_variables_;
  }
  // Existential variables, in first-occurrence order.
  const std::vector<std::string>& existential_variables() const {
    return existential_variables_;
  }
  bool IsFreeVariable(const std::string& name) const;
  bool HasVariable(const std::string& name) const;

  // Indices into atoms() of the atoms containing `name` (the paper's
  // atoms(Q, x)).
  std::vector<int> AtomsContaining(const std::string& name) const;

  // True if some relation name repeats in the body.
  bool HasSelfJoin() const;

  // Indices of atoms over `relation` (0 or 1 entries when self-join-free).
  std::vector<int> AtomsOf(const std::string& relation) const;

  // The Boolean version of this query (all variables existential).
  ConjunctiveQuery AsBoolean() const;

  // The residual query Q_{x -> a}: every body occurrence of `x` becomes the
  // constant `a`; if `x` is free it is removed from the head. Requires that
  // `x` is a variable of the query.
  ConjunctiveQuery Bind(const std::string& name, const Value& a) const;

  // Builds a sub-query from a subset of atoms. Head variables that occur in
  // the kept atoms stay in the head (in original order); others are dropped.
  // `kept_head_positions`, if non-null, receives the original head positions
  // that survive.
  ConjunctiveQuery Project(const std::vector<int>& atom_indices,
                           std::vector<int>* kept_head_positions) const;

  // Renders "Q(x, y) <- R(x, y), S(y)".
  std::string ToString() const;

 private:
  void RebuildCaches();

  std::string name_ = "Q";
  std::vector<std::string> head_;
  std::vector<Atom> atoms_;
  // Caches (derived from head_/atoms_).
  std::vector<std::string> variables_;
  std::vector<std::string> free_variables_;
  std::vector<std::string> existential_variables_;
};

// Canonical structural key of a query, used as the query part of plan
// fingerprints (shapley/plan.h). Variables are renamed to v0, v1, ... in
// first-occurrence order (head positions left to right, then body atoms
// left to right, positions left to right) and the query name is dropped,
// so two queries get equal keys iff they differ only by a variable
// renaming. Atom order stays significant (reordered bodies are distinct
// keys). The key is injective up to that renaming: relation names are
// length-prefixed ("1:R(...)") and constants rendered unforgeably —
// numerics through their canonical rational form (int 2 and double 2.0
// agree, like Value equality), strings length-prefixed ("s3:abc"),
// non-finite doubles "d:"-prefixed — so neither names nor constant
// content can imitate the key's structural delimiters.
std::string CanonicalQueryKey(const ConjunctiveQuery& q);

}  // namespace shapcq

#endif  // SHAPCQ_QUERY_CQ_H_
