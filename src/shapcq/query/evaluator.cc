#include "shapcq/query/evaluator.h"

#include <algorithm>
#include <map>
#include <set>

#include "shapcq/util/check.h"

namespace shapcq {

bool MatchesAtom(const Atom& atom, const Tuple& fact_args,
                 const Binding& binding) {
  Binding scratch = binding;
  return MatchAtom(atom, fact_args, &scratch);
}

bool MatchAtom(const Atom& atom, const Tuple& fact_args, Binding* binding) {
  SHAPCQ_CHECK(static_cast<int>(fact_args.size()) == atom.arity());
  // Record locally-introduced bindings so we can roll back on mismatch.
  std::vector<std::string> introduced;
  for (int i = 0; i < atom.arity(); ++i) {
    const Term& term = atom.terms[static_cast<size_t>(i)];
    const Value& value = fact_args[static_cast<size_t>(i)];
    if (term.is_constant()) {
      if (term.constant() != value) {
        for (const std::string& name : introduced) binding->erase(name);
        return false;
      }
      continue;
    }
    auto [it, inserted] = binding->emplace(term.variable(), value);
    if (inserted) {
      introduced.push_back(term.variable());
    } else if (it->second != value) {
      for (const std::string& name : introduced) binding->erase(name);
      return false;
    }
  }
  return true;
}

namespace {

// Candidate facts for `atom` under `binding`: probe the per-(relation,
// position, value) hash index for every constant or already-bound-variable
// position and keep the smallest candidate list. Falls back to the full
// relation when no position is determined.
const std::vector<FactId>& CandidateFacts(const Database& db, const Atom& atom,
                                          const Binding& binding) {
  const std::vector<FactId>* best = &db.FactsOf(atom.relation);
  if (best->empty()) return *best;
  for (int i = 0; i < atom.arity(); ++i) {
    const Term& term = atom.terms[static_cast<size_t>(i)];
    const Value* value = nullptr;
    if (term.is_constant()) {
      value = &term.constant();
    } else {
      auto it = binding.find(term.variable());
      if (it != binding.end()) value = &it->second;
    }
    if (value == nullptr) continue;
    const std::vector<FactId>& probed = db.FactsWith(atom.relation, i, *value);
    if (probed.size() < best->size()) best = &probed;
    if (best->empty()) break;
  }
  return *best;
}

// Backtracking join over the database's hash indexes. Atom order: greedily
// pick the atom with the fewest index-probed candidates times unbound
// variables first, so selective (bound) atoms run before cross products.
class BacktrackingJoin {
 public:
  BacktrackingJoin(const ConjunctiveQuery& q, const Database& db,
                   bool use_indexes)
      : q_(q), db_(db), use_indexes_(use_indexes) {}

  std::vector<Homomorphism> Run() {
    results_.clear();
    Binding binding;
    std::vector<FactId> used(q_.atoms().size(), -1);
    std::vector<bool> done(q_.atoms().size(), false);
    Recurse(&binding, &used, &done, 0);
    return std::move(results_);
  }

 private:
  const std::vector<FactId>& Candidates(const Atom& atom,
                                        const Binding& binding) const {
    return use_indexes_ ? CandidateFacts(db_, atom, binding)
                        : db_.FactsOf(atom.relation);
  }

  int PickNextAtom(const Binding& binding, const std::vector<bool>& done) {
    int best = -1;
    long best_score = -1;
    for (int i = 0; i < static_cast<int>(q_.atoms().size()); ++i) {
      if (done[static_cast<size_t>(i)]) continue;
      const Atom& atom = q_.atoms()[static_cast<size_t>(i)];
      long unbound = 0;
      for (const Term& term : atom.terms) {
        if (term.is_variable() && binding.count(term.variable()) == 0) {
          ++unbound;
        }
      }
      long candidates = static_cast<long>(Candidates(atom, binding).size());
      long score = candidates * (unbound + 1);
      if (best == -1 || score < best_score) {
        best = i;
        best_score = score;
      }
    }
    return best;
  }

  void Recurse(Binding* binding, std::vector<FactId>* used,
               std::vector<bool>* done, size_t depth) {
    if (depth == q_.atoms().size()) {
      Homomorphism hom;
      hom.binding = *binding;
      hom.answer.reserve(q_.head().size());
      for (const std::string& head_var : q_.head()) {
        auto it = binding->find(head_var);
        SHAPCQ_CHECK(it != binding->end());
        hom.answer.push_back(it->second);
      }
      hom.used_facts = *used;
      results_.push_back(std::move(hom));
      return;
    }
    int atom_index = PickNextAtom(*binding, *done);
    SHAPCQ_CHECK(atom_index >= 0);
    const Atom& atom = q_.atoms()[static_cast<size_t>(atom_index)];
    (*done)[static_cast<size_t>(atom_index)] = true;
    // The candidate list stays valid across recursion: indexes are immutable
    // while the join runs, and deeper levels only extend the binding.
    for (FactId fact_id : Candidates(atom, *binding)) {
      Binding saved = *binding;
      if (MatchAtom(atom, db_.fact(fact_id).args, binding)) {
        (*used)[static_cast<size_t>(atom_index)] = fact_id;
        Recurse(binding, used, done, depth + 1);
        (*used)[static_cast<size_t>(atom_index)] = -1;
      }
      *binding = std::move(saved);
    }
    (*done)[static_cast<size_t>(atom_index)] = false;
  }

  const ConjunctiveQuery& q_;
  const Database& db_;
  bool use_indexes_;
  std::vector<Homomorphism> results_;
};

}  // namespace

std::vector<Homomorphism> EnumerateHomomorphisms(const ConjunctiveQuery& q,
                                                 const Database& db) {
  BacktrackingJoin join(q, db, /*use_indexes=*/true);
  return join.Run();
}

std::vector<Homomorphism> EnumerateHomomorphismsNaive(
    const ConjunctiveQuery& q, const Database& db) {
  BacktrackingJoin join(q, db, /*use_indexes=*/false);
  return join.Run();
}

std::vector<Tuple> Evaluate(const ConjunctiveQuery& q, const Database& db) {
  std::set<Tuple> distinct;
  for (const Homomorphism& hom : EnumerateHomomorphisms(q, db)) {
    distinct.insert(hom.answer);
  }
  return std::vector<Tuple>(distinct.begin(), distinct.end());
}

SubsetEvaluator::SubsetEvaluator(const ConjunctiveQuery& q,
                                 const Database& db) {
  players_ = db.EndogenousFacts();
  num_players_ = static_cast<int>(players_.size());
  SHAPCQ_CHECK(num_players_ <= 62 &&
               "SubsetEvaluator is for brute-force-sized instances");
  player_index_.assign(static_cast<size_t>(db.num_facts()), -1);
  for (int i = 0; i < num_players_; ++i) {
    player_index_[static_cast<size_t>(players_[static_cast<size_t>(i)])] = i;
  }
  // Group homomorphisms by answer; collect minimal endogenous support masks.
  std::map<Tuple, std::vector<uint64_t>> masks_by_answer;
  for (const Homomorphism& hom : EnumerateHomomorphisms(q, db)) {
    uint64_t mask = 0;
    for (FactId fact_id : hom.used_facts) {
      int player = player_index_[static_cast<size_t>(fact_id)];
      if (player >= 0) mask |= uint64_t{1} << player;
    }
    masks_by_answer[hom.answer].push_back(mask);
  }
  for (auto& [answer, masks] : masks_by_answer) {
    // Keep only minimal masks (drop supersets) to speed up subset checks.
    std::sort(masks.begin(), masks.end(),
              [](uint64_t a, uint64_t b) {
                int pa = __builtin_popcountll(a);
                int pb = __builtin_popcountll(b);
                return pa != pb ? pa < pb : a < b;
              });
    std::vector<uint64_t> minimal;
    for (uint64_t mask : masks) {
      bool dominated = false;
      for (uint64_t kept : minimal) {
        if ((kept & mask) == kept) {
          dominated = true;
          break;
        }
      }
      if (!dominated) minimal.push_back(mask);
    }
    answers_.push_back(AnswerInfo{answer, std::move(minimal)});
  }
}

int SubsetEvaluator::PlayerIndex(FactId id) const {
  SHAPCQ_CHECK(id >= 0 && id < static_cast<FactId>(player_index_.size()));
  return player_index_[static_cast<size_t>(id)];
}

std::vector<Tuple> SubsetEvaluator::AnswersFor(uint64_t mask) const {
  std::vector<Tuple> out;
  for (const AnswerInfo& info : answers_) {
    for (uint64_t support : info.supports) {
      if ((support & mask) == support) {
        out.push_back(info.answer);
        break;
      }
    }
  }
  return out;
}

}  // namespace shapcq
