#include "shapcq/query/evaluator.h"

#include <algorithm>
#include <map>
#include <set>

#include "shapcq/util/check.h"

namespace shapcq {

bool MatchesAtom(const Atom& atom, const Tuple& fact_args,
                 const Binding& binding) {
  Binding scratch = binding;
  return MatchAtom(atom, fact_args, &scratch);
}

bool MatchAtom(const Atom& atom, const Tuple& fact_args, Binding* binding) {
  SHAPCQ_CHECK(static_cast<int>(fact_args.size()) == atom.arity());
  // Record locally-introduced bindings so we can roll back on mismatch.
  std::vector<std::string> introduced;
  for (int i = 0; i < atom.arity(); ++i) {
    const Term& term = atom.terms[static_cast<size_t>(i)];
    const Value& value = fact_args[static_cast<size_t>(i)];
    if (term.is_constant()) {
      if (term.constant() != value) {
        for (const std::string& name : introduced) binding->erase(name);
        return false;
      }
      continue;
    }
    auto [it, inserted] = binding->emplace(term.variable(), value);
    if (inserted) {
      introduced.push_back(term.variable());
    } else if (it->second != value) {
      for (const std::string& name : introduced) binding->erase(name);
      return false;
    }
  }
  return true;
}

namespace {

const std::vector<FactId> kNoCandidates;

// One atom compiled against a database's interned ids: each position is
// either a variable slot or a pre-resolved constant ValueId.
struct CompiledAtom {
  RelationId relation = kNoRelationId;
  // A constant that was never interned (or an unknown relation) can match
  // no fact at all.
  bool impossible = false;
  std::vector<int> var_slot;      // per position; -1 when constant
  std::vector<ValueId> const_id;  // per position; set when var_slot < 0
};

// Backtracking join over interned ids. Candidates for an atom are the
// galloping intersection of the dense posting lists of its determined
// (constant or already-bound) positions; the per-candidate match step only
// binds the atom's still-unbound variable slots. Atom order is greedy:
// fewest candidates (cheapest posting list) times unbound variables first.
class IdJoin {
 public:
  IdJoin(const ConjunctiveQuery& q, const Database& db)
      : q_(q), db_(db), has_tombstones_(db.has_tombstones()) {
    const std::vector<std::string>& vars = q.variables();
    for (size_t i = 0; i < vars.size(); ++i) {
      slot_of_.emplace(vars[i], static_cast<int>(i));
    }
    atoms_.reserve(q.atoms().size());
    for (const Atom& atom : q.atoms()) {
      CompiledAtom compiled;
      compiled.relation = db.relation_id(atom.relation);
      if (compiled.relation == kNoRelationId) {
        compiled.impossible = true;
      } else {
        // The naive join aborts fact-by-fact on arity conflicts (MatchAtom);
        // the id join validates once against the relation's stored arity.
        SHAPCQ_CHECK(db.columns().arity(compiled.relation) == atom.arity() &&
                     "query atom arity conflicts with relation arity");
      }
      compiled.var_slot.reserve(atom.terms.size());
      compiled.const_id.reserve(atom.terms.size());
      for (const Term& term : atom.terms) {
        if (term.is_variable()) {
          compiled.var_slot.push_back(slot_of_.at(term.variable()));
          compiled.const_id.push_back(kNoValueId);
        } else {
          ValueId id = db.pool().Find(term.constant());
          compiled.var_slot.push_back(-1);
          compiled.const_id.push_back(id);
          if (id == kNoValueId) compiled.impossible = true;
        }
      }
      atoms_.push_back(std::move(compiled));
    }
  }

  // Pins `atom_index` to the single candidate `fact`: Run() then
  // enumerates exactly the homomorphisms that map that atom to that fact
  // (the delta-seeded join behind AnswersTouching). The fact must belong
  // to the atom's relation.
  void Pin(size_t atom_index, FactId fact) {
    SHAPCQ_CHECK(atom_index < atoms_.size());
    SHAPCQ_CHECK(db_.fact_relation(fact) == atoms_[atom_index].relation);
    pinned_atom_ = static_cast<int>(atom_index);
    pinned_fact_ = fact;
  }

  IdHomomorphisms Run() {
    IdHomomorphisms out;
    out.slot_names = q_.variables();
    out.head_slots.reserve(q_.head().size());
    for (const std::string& head_var : q_.head()) {
      out.head_slots.push_back(slot_of_.at(head_var));
    }
    binding_.assign(out.slot_names.size(), kNoValueId);
    used_.assign(atoms_.size(), -1);
    done_.assign(atoms_.size(), false);
    scratch_.resize(atoms_.size());
    Recurse(0, &out);
    return out;
  }

 private:
  // The determined value at an atom position under the current binding;
  // kNoValueId when the position is an unbound variable.
  ValueId DeterminedAt(const CompiledAtom& atom, size_t position) const {
    int slot = atom.var_slot[position];
    return slot < 0 ? atom.const_id[position]
                    : binding_[static_cast<size_t>(slot)];
  }

  // Cheap selectivity estimate (no intersection): smallest determined
  // posting list times the number of unbound variable occurrences.
  long Estimate(size_t atom_index) const {
    const CompiledAtom& atom = atoms_[atom_index];
    if (atom.impossible) return 0;
    // A pinned atom has exactly one candidate: take it first so the join
    // is seeded from the delta fact.
    if (static_cast<int>(atom_index) == pinned_atom_) return 1;
    long best = static_cast<long>(db_.FactsOf(atom.relation).size());
    long unbound = 0;
    for (size_t position = 0; position < atom.var_slot.size(); ++position) {
      ValueId value = DeterminedAt(atom, position);
      if (value == kNoValueId) {
        ++unbound;
        continue;
      }
      long probed = static_cast<long>(
          db_.FactsWith(atom.relation, static_cast<int>(position), value)
              .size());
      best = std::min(best, probed);
    }
    return best * (unbound + 1);
  }

  // Candidates for an atom: intersection of all determined posting lists
  // (they verify the constants and bound variables in one pass), or the
  // full relation when nothing is determined. The returned reference stays
  // valid through deeper recursion: posting lists are immutable and
  // scratch_[atom_index] is not reused while the atom is active.
  const std::vector<FactId>& Candidates(size_t atom_index) {
    const CompiledAtom& atom = atoms_[atom_index];
    if (atom.impossible) return kNoCandidates;
    if (static_cast<int>(atom_index) == pinned_atom_) {
      // The single pinned candidate, after verifying every currently
      // determined position against the fact (the posting-list
      // intersection would have done this on the unpinned path).
      for (size_t position = 0; position < atom.var_slot.size();
           ++position) {
        ValueId value = DeterminedAt(atom, position);
        if (value == kNoValueId) continue;
        if (db_.ArgId(pinned_fact_, static_cast<int>(position)) != value) {
          return kNoCandidates;
        }
      }
      scratch_[atom_index].assign(1, pinned_fact_);
      return scratch_[atom_index];
    }
    lists_.clear();
    for (size_t position = 0; position < atom.var_slot.size(); ++position) {
      ValueId value = DeterminedAt(atom, position);
      if (value == kNoValueId) continue;
      lists_.push_back(
          &db_.FactsWith(atom.relation, static_cast<int>(position), value));
      if (lists_.back()->empty()) return kNoCandidates;
    }
    if (lists_.empty()) return db_.FactsOf(atom.relation);
    if (lists_.size() == 1) return *lists_[0];
    scratch_[atom_index] = has_tombstones_
                               ? IntersectPostingsLive(lists_, db_.dead())
                               : IntersectPostings(lists_);
    return scratch_[atom_index];
  }

  // Binds the atom's unbound slots against `fact`; returns false (leaving
  // newly introduced slots in `introduced` for the caller to roll back) on
  // a repeated-variable mismatch. Determined positions were already
  // verified by the posting-list intersection.
  bool Match(size_t atom_index, FactId fact, std::vector<int>* introduced) {
    const CompiledAtom& atom = atoms_[atom_index];
    for (size_t position = 0; position < atom.var_slot.size(); ++position) {
      int slot = atom.var_slot[position];
      if (slot < 0) continue;
      ValueId value = db_.ArgId(fact, static_cast<int>(position));
      ValueId& bound = binding_[static_cast<size_t>(slot)];
      if (bound == kNoValueId) {
        bound = value;
        introduced->push_back(slot);
      } else if (bound != value) {
        return false;
      }
    }
    return true;
  }

  void Recurse(size_t depth, IdHomomorphisms* out) {
    if (depth == atoms_.size()) {
      out->bindings.push_back(binding_);
      out->used_facts.push_back(used_);
      return;
    }
    int atom_index = -1;
    long best_score = -1;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (done_[i]) continue;
      long score = Estimate(i);
      if (atom_index == -1 || score < best_score) {
        atom_index = static_cast<int>(i);
        best_score = score;
      }
    }
    SHAPCQ_CHECK(atom_index >= 0);
    const size_t chosen = static_cast<size_t>(atom_index);
    const std::vector<FactId>& candidates = Candidates(chosen);
    done_[chosen] = true;
    std::vector<int> introduced;
    for (FactId fact : candidates) {
      // Posting lists keep tombstoned ids until compaction; skip them.
      if (has_tombstones_ && !db_.live(fact)) continue;
      introduced.clear();
      if (Match(chosen, fact, &introduced)) {
        used_[chosen] = fact;
        Recurse(depth + 1, out);
        used_[chosen] = -1;
      }
      for (int slot : introduced) {
        binding_[static_cast<size_t>(slot)] = kNoValueId;
      }
    }
    done_[chosen] = false;
  }

  const ConjunctiveQuery& q_;
  const Database& db_;
  const bool has_tombstones_;
  int pinned_atom_ = -1;
  FactId pinned_fact_ = -1;
  std::unordered_map<std::string, int> slot_of_;
  std::vector<CompiledAtom> atoms_;
  std::vector<ValueId> binding_;               // slot -> value id
  std::vector<FactId> used_;                   // atom -> fact
  std::vector<bool> done_;
  std::vector<std::vector<FactId>> scratch_;   // per-atom intersections
  std::vector<const std::vector<FactId>*> lists_;
};

// The original unindexed backtracking join over Values, retained verbatim
// as the differential-testing oracle for the id join.
class NaiveJoin {
 public:
  NaiveJoin(const ConjunctiveQuery& q, const Database& db) : q_(q), db_(db) {}

  std::vector<Homomorphism> Run() {
    results_.clear();
    Binding binding;
    std::vector<FactId> used(q_.atoms().size(), -1);
    std::vector<bool> done(q_.atoms().size(), false);
    Recurse(&binding, &used, &done, 0);
    return std::move(results_);
  }

 private:
  int PickNextAtom(const Binding& binding, const std::vector<bool>& done) {
    int best = -1;
    long best_score = -1;
    for (int i = 0; i < static_cast<int>(q_.atoms().size()); ++i) {
      if (done[static_cast<size_t>(i)]) continue;
      const Atom& atom = q_.atoms()[static_cast<size_t>(i)];
      long unbound = 0;
      for (const Term& term : atom.terms) {
        if (term.is_variable() && binding.count(term.variable()) == 0) {
          ++unbound;
        }
      }
      long candidates =
          static_cast<long>(db_.FactsOf(atom.relation).size());
      long score = candidates * (unbound + 1);
      if (best == -1 || score < best_score) {
        best = i;
        best_score = score;
      }
    }
    return best;
  }

  void Recurse(Binding* binding, std::vector<FactId>* used,
               std::vector<bool>* done, size_t depth) {
    if (depth == q_.atoms().size()) {
      Homomorphism hom;
      hom.binding = *binding;
      hom.answer.reserve(q_.head().size());
      for (const std::string& head_var : q_.head()) {
        auto it = binding->find(head_var);
        SHAPCQ_CHECK(it != binding->end());
        hom.answer.push_back(it->second);
      }
      hom.used_facts = *used;
      results_.push_back(std::move(hom));
      return;
    }
    int atom_index = PickNextAtom(*binding, *done);
    SHAPCQ_CHECK(atom_index >= 0);
    const Atom& atom = q_.atoms()[static_cast<size_t>(atom_index)];
    (*done)[static_cast<size_t>(atom_index)] = true;
    for (FactId fact_id : db_.FactsOf(atom.relation)) {
      if (!db_.live(fact_id)) continue;
      Binding saved = *binding;
      if (MatchAtom(atom, db_.fact(fact_id).args, binding)) {
        (*used)[static_cast<size_t>(atom_index)] = fact_id;
        Recurse(binding, used, done, depth + 1);
        (*used)[static_cast<size_t>(atom_index)] = -1;
      }
      *binding = std::move(saved);
    }
    (*done)[static_cast<size_t>(atom_index)] = false;
  }

  const ConjunctiveQuery& q_;
  const Database& db_;
  std::vector<Homomorphism> results_;
};

}  // namespace

IdHomomorphisms EnumerateHomomorphismIds(const ConjunctiveQuery& q,
                                         const Database& db) {
  IdJoin join(q, db);
  return join.Run();
}

std::vector<Homomorphism> EnumerateHomomorphisms(const ConjunctiveQuery& q,
                                                 const Database& db) {
  IdHomomorphisms ids = EnumerateHomomorphismIds(q, db);
  std::vector<Homomorphism> out;
  out.reserve(ids.bindings.size());
  for (size_t h = 0; h < ids.bindings.size(); ++h) {
    Homomorphism hom;
    const std::vector<ValueId>& slots = ids.bindings[h];
    for (size_t s = 0; s < ids.slot_names.size(); ++s) {
      SHAPCQ_CHECK(slots[s] != kNoValueId);
      hom.binding.emplace(ids.slot_names[s], db.pool().value(slots[s]));
    }
    hom.answer.reserve(ids.head_slots.size());
    for (int slot : ids.head_slots) {
      hom.answer.push_back(db.pool().value(slots[static_cast<size_t>(slot)]));
    }
    hom.used_facts = std::move(ids.used_facts[h]);
    out.push_back(std::move(hom));
  }
  return out;
}

std::vector<Homomorphism> EnumerateHomomorphismsNaive(
    const ConjunctiveQuery& q, const Database& db) {
  NaiveJoin join(q, db);
  return join.Run();
}

std::vector<Tuple> Evaluate(const ConjunctiveQuery& q, const Database& db) {
  IdHomomorphisms ids = EnumerateHomomorphismIds(q, db);
  // Distinct answers over ids first (id equality <=> Value equality), then
  // materialize and sort by Tuple for the historical deterministic order.
  std::vector<std::vector<ValueId>> answers;
  answers.reserve(ids.bindings.size());
  for (const std::vector<ValueId>& slots : ids.bindings) {
    std::vector<ValueId> answer;
    answer.reserve(ids.head_slots.size());
    for (int slot : ids.head_slots) {
      answer.push_back(slots[static_cast<size_t>(slot)]);
    }
    answers.push_back(std::move(answer));
  }
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  std::vector<Tuple> out;
  out.reserve(answers.size());
  for (const std::vector<ValueId>& answer : answers) {
    Tuple tuple;
    tuple.reserve(answer.size());
    for (ValueId id : answer) tuple.push_back(db.pool().value(id));
    out.push_back(std::move(tuple));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Tuple> AnswersTouching(const ConjunctiveQuery& q,
                                   const Database& db, FactId fact) {
  SHAPCQ_CHECK(db.live(fact));
  const RelationId relation = db.fact_relation(fact);
  std::vector<std::vector<ValueId>> answers;
  for (size_t atom_index = 0; atom_index < q.atoms().size(); ++atom_index) {
    if (db.relation_id(q.atoms()[atom_index].relation) != relation) {
      continue;
    }
    IdJoin join(q, db);
    join.Pin(atom_index, fact);
    IdHomomorphisms ids = join.Run();
    for (const std::vector<ValueId>& slots : ids.bindings) {
      std::vector<ValueId> answer;
      answer.reserve(ids.head_slots.size());
      for (int slot : ids.head_slots) {
        answer.push_back(slots[static_cast<size_t>(slot)]);
      }
      answers.push_back(std::move(answer));
    }
  }
  std::sort(answers.begin(), answers.end());
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  std::vector<Tuple> out;
  out.reserve(answers.size());
  for (const std::vector<ValueId>& answer : answers) {
    Tuple tuple;
    tuple.reserve(answer.size());
    for (ValueId id : answer) tuple.push_back(db.pool().value(id));
    out.push_back(std::move(tuple));
  }
  std::sort(out.begin(), out.end());
  return out;
}

SubsetEvaluator::SubsetEvaluator(const ConjunctiveQuery& q,
                                 const Database& db) {
  players_ = db.EndogenousFacts();
  num_players_ = static_cast<int>(players_.size());
  SHAPCQ_CHECK(num_players_ <= 62 &&
               "SubsetEvaluator is for brute-force-sized instances");
  player_index_.assign(static_cast<size_t>(db.num_facts()), -1);
  for (int i = 0; i < num_players_; ++i) {
    player_index_[static_cast<size_t>(players_[static_cast<size_t>(i)])] = i;
  }
  // Group homomorphisms by answer (over ids: no Value materialization in
  // the loop); collect minimal endogenous support masks.
  IdHomomorphisms ids = EnumerateHomomorphismIds(q, db);
  std::map<std::vector<ValueId>, std::vector<uint64_t>> masks_by_answer;
  for (size_t h = 0; h < ids.bindings.size(); ++h) {
    uint64_t mask = 0;
    for (FactId fact_id : ids.used_facts[h]) {
      int player = player_index_[static_cast<size_t>(fact_id)];
      if (player >= 0) mask |= uint64_t{1} << player;
    }
    std::vector<ValueId> answer;
    answer.reserve(ids.head_slots.size());
    for (int slot : ids.head_slots) {
      answer.push_back(ids.bindings[h][static_cast<size_t>(slot)]);
    }
    masks_by_answer[std::move(answer)].push_back(mask);
  }
  for (auto& [answer_ids, masks] : masks_by_answer) {
    // Keep only minimal masks (drop supersets) to speed up subset checks.
    std::sort(masks.begin(), masks.end(),
              [](uint64_t a, uint64_t b) {
                int pa = __builtin_popcountll(a);
                int pb = __builtin_popcountll(b);
                return pa != pb ? pa < pb : a < b;
              });
    std::vector<uint64_t> minimal;
    for (uint64_t mask : masks) {
      bool dominated = false;
      for (uint64_t kept : minimal) {
        if ((kept & mask) == kept) {
          dominated = true;
          break;
        }
      }
      if (!dominated) minimal.push_back(mask);
    }
    Tuple answer;
    answer.reserve(answer_ids.size());
    for (ValueId id : answer_ids) answer.push_back(db.pool().value(id));
    answers_.push_back(AnswerInfo{std::move(answer), std::move(minimal)});
  }
  // Id order is not Value order; restore the historical sort by answer.
  std::sort(answers_.begin(), answers_.end(),
            [](const AnswerInfo& a, const AnswerInfo& b) {
              return a.answer < b.answer;
            });
}

int SubsetEvaluator::PlayerIndex(FactId id) const {
  SHAPCQ_CHECK(id >= 0 && id < static_cast<FactId>(player_index_.size()));
  return player_index_[static_cast<size_t>(id)];
}

std::vector<Tuple> SubsetEvaluator::AnswersFor(uint64_t mask) const {
  std::vector<Tuple> out;
  for (const AnswerInfo& info : answers_) {
    for (uint64_t support : info.supports) {
      if ((support & mask) == support) {
        out.push_back(info.answer);
        break;
      }
    }
  }
  return out;
}

}  // namespace shapcq
