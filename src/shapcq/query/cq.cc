#include "shapcq/query/cq.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "shapcq/util/check.h"

namespace shapcq {

Term Term::Variable(std::string name) {
  SHAPCQ_CHECK(!name.empty());
  Term t;
  t.is_variable_ = true;
  t.name_ = std::move(name);
  return t;
}

Term Term::Constant(Value value) {
  Term t;
  t.is_variable_ = false;
  t.value_ = std::move(value);
  return t;
}

const std::string& Term::variable() const {
  SHAPCQ_CHECK(is_variable_);
  return name_;
}

const Value& Term::constant() const {
  SHAPCQ_CHECK(!is_variable_);
  return value_;
}

std::string Term::ToString() const {
  return is_variable_ ? name_ : value_.ToString();
}

bool Atom::ContainsVariable(const std::string& name) const {
  for (const Term& term : terms) {
    if (term.is_variable() && term.variable() == name) return true;
  }
  return false;
}

std::vector<int> Atom::PositionsOf(const std::string& name) const {
  std::vector<int> positions;
  for (int i = 0; i < arity(); ++i) {
    if (terms[static_cast<size_t>(i)].is_variable() &&
        terms[static_cast<size_t>(i)].variable() == name) {
      positions.push_back(i);
    }
  }
  return positions;
}

bool Atom::is_ground() const {
  for (const Term& term : terms) {
    if (term.is_variable()) return false;
  }
  return true;
}

std::string Atom::ToString() const {
  std::string out = relation + "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i].ToString();
  }
  out += ")";
  return out;
}

StatusOr<ConjunctiveQuery> ConjunctiveQuery::Create(
    std::string name, std::vector<std::string> head, std::vector<Atom> body) {
  if (body.empty()) {
    return InvalidArgumentError("a conjunctive query needs at least one atom");
  }
  std::unordered_set<std::string> body_variables;
  for (const Atom& atom : body) {
    if (atom.relation.empty()) {
      return InvalidArgumentError("atom with empty relation name");
    }
    for (const Term& term : atom.terms) {
      if (term.is_variable()) body_variables.insert(term.variable());
    }
  }
  for (const std::string& head_var : head) {
    if (head_var.empty()) {
      return InvalidArgumentError("empty head variable name");
    }
    if (body_variables.count(head_var) == 0) {
      return InvalidArgumentError("unsafe query: head variable '" + head_var +
                                  "' does not occur in the body");
    }
  }
  ConjunctiveQuery q;
  q.name_ = std::move(name);
  q.head_ = std::move(head);
  q.atoms_ = std::move(body);
  q.RebuildCaches();
  return q;
}

bool ConjunctiveQuery::IsFreeVariable(const std::string& name) const {
  return std::find(head_.begin(), head_.end(), name) != head_.end();
}

bool ConjunctiveQuery::HasVariable(const std::string& name) const {
  return std::find(variables_.begin(), variables_.end(), name) !=
         variables_.end();
}

std::vector<int> ConjunctiveQuery::AtomsContaining(
    const std::string& name) const {
  std::vector<int> indices;
  for (int i = 0; i < static_cast<int>(atoms_.size()); ++i) {
    if (atoms_[static_cast<size_t>(i)].ContainsVariable(name)) {
      indices.push_back(i);
    }
  }
  return indices;
}

bool ConjunctiveQuery::HasSelfJoin() const {
  std::unordered_set<std::string> seen;
  for (const Atom& atom : atoms_) {
    if (!seen.insert(atom.relation).second) return true;
  }
  return false;
}

std::vector<int> ConjunctiveQuery::AtomsOf(const std::string& relation) const {
  std::vector<int> indices;
  for (int i = 0; i < static_cast<int>(atoms_.size()); ++i) {
    if (atoms_[static_cast<size_t>(i)].relation == relation) {
      indices.push_back(i);
    }
  }
  return indices;
}

ConjunctiveQuery ConjunctiveQuery::AsBoolean() const {
  ConjunctiveQuery q = *this;
  q.head_.clear();
  q.RebuildCaches();
  return q;
}

ConjunctiveQuery ConjunctiveQuery::Bind(const std::string& name,
                                        const Value& a) const {
  SHAPCQ_CHECK(HasVariable(name));
  ConjunctiveQuery q;
  q.name_ = name_;
  for (const std::string& head_var : head_) {
    if (head_var != name) q.head_.push_back(head_var);
  }
  q.atoms_ = atoms_;
  for (Atom& atom : q.atoms_) {
    for (Term& term : atom.terms) {
      if (term.is_variable() && term.variable() == name) {
        term = Term::Constant(a);
      }
    }
  }
  q.RebuildCaches();
  return q;
}

ConjunctiveQuery ConjunctiveQuery::Project(
    const std::vector<int>& atom_indices,
    std::vector<int>* kept_head_positions) const {
  SHAPCQ_CHECK(!atom_indices.empty());
  ConjunctiveQuery q;
  q.name_ = name_;
  std::unordered_set<std::string> kept_variables;
  for (int index : atom_indices) {
    SHAPCQ_CHECK(index >= 0 && index < static_cast<int>(atoms_.size()));
    const Atom& atom = atoms_[static_cast<size_t>(index)];
    q.atoms_.push_back(atom);
    for (const Term& term : atom.terms) {
      if (term.is_variable()) kept_variables.insert(term.variable());
    }
  }
  if (kept_head_positions != nullptr) kept_head_positions->clear();
  for (int position = 0; position < static_cast<int>(head_.size());
       ++position) {
    const std::string& head_var = head_[static_cast<size_t>(position)];
    if (kept_variables.count(head_var) > 0) {
      q.head_.push_back(head_var);
      if (kept_head_positions != nullptr) {
        kept_head_positions->push_back(position);
      }
    }
  }
  q.RebuildCaches();
  return q;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_[i];
  }
  out += ") <- ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms_[i].ToString();
  }
  return out;
}

namespace {

// Constants in canonical form: numerically equal values (int 2, double 2.0)
// must render identically, matching Value equality, and distinct Values
// must render distinctly. Strings are length-prefixed ("s3:abc") so
// constant content cannot forge the key's structural delimiters; the
// non-finite doubles, which have no rational form, get their own "d:"
// prefix so the double nan never collides with the string "nan".
std::string CanonicalConstantKey(const Value& v) {
  if (v.is_numeric()) {
    if (v.kind() != Value::Kind::kDouble || std::isfinite(v.AsDouble())) {
      return v.AsRational().ToString();
    }
    return "d:" + v.ToString();
  }
  const std::string& text = v.AsString();
  return "s" + std::to_string(text.size()) + ":" + text;
}

}  // namespace

std::string CanonicalQueryKey(const ConjunctiveQuery& q) {
  std::unordered_map<std::string, std::string> renaming;
  auto canonical_name = [&renaming](const std::string& variable) {
    auto [it, inserted] = renaming.emplace(
        variable, "v" + std::to_string(renaming.size()));
    (void)inserted;
    return it->second;
  };
  std::string out = "(";
  for (size_t i = 0; i < q.head().size(); ++i) {
    if (i > 0) out += ',';
    out += canonical_name(q.head()[i]);
  }
  out += ")<-";
  for (size_t a = 0; a < q.atoms().size(); ++a) {
    const Atom& atom = q.atoms()[a];
    if (a > 0) out += ',';
    // Relation names are programmatic input validated only as non-empty;
    // the length prefix keeps a name containing '(' / ')' / ',' from
    // forging atom boundaries, like the constant rendering above.
    out += std::to_string(atom.relation.size());
    out += ':';
    out += atom.relation;
    out += '(';
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& term = atom.terms[i];
      if (i > 0) out += ',';
      out += term.is_variable() ? canonical_name(term.variable())
                                : CanonicalConstantKey(term.constant());
    }
    out += ')';
  }
  return out;
}

void ConjunctiveQuery::RebuildCaches() {
  variables_.clear();
  free_variables_.clear();
  existential_variables_.clear();
  std::unordered_set<std::string> seen;
  auto add_variable = [this, &seen](const std::string& name) {
    if (seen.insert(name).second) variables_.push_back(name);
  };
  for (const std::string& head_var : head_) add_variable(head_var);
  for (const Atom& atom : atoms_) {
    for (const Term& term : atom.terms) {
      if (term.is_variable()) add_variable(term.variable());
    }
  }
  std::unordered_set<std::string> head_set(head_.begin(), head_.end());
  std::unordered_set<std::string> added_free;
  for (const std::string& head_var : head_) {
    if (added_free.insert(head_var).second) {
      free_variables_.push_back(head_var);
    }
  }
  for (const std::string& variable : variables_) {
    if (head_set.count(variable) == 0) {
      existential_variables_.push_back(variable);
    }
  }
}

}  // namespace shapcq
