// CQ evaluation: answers and homomorphisms.
//
// The evaluator computes Q(D) under standard CQ semantics and can also
// enumerate all homomorphisms together with the facts they use. The Shapley
// brute-force engine relies on the homomorphism list: an answer is alive in
// a sub-database E ∪ D_x iff some homomorphism producing it uses only facts
// of E ∪ D_x, which reduces to a subset check over endogenous fact sets.

#ifndef SHAPCQ_QUERY_EVALUATOR_H_
#define SHAPCQ_QUERY_EVALUATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "shapcq/data/database.h"
#include "shapcq/data/value.h"
#include "shapcq/query/cq.h"

namespace shapcq {

// Variable binding built during evaluation.
using Binding = std::unordered_map<std::string, Value>;

// One homomorphism from a CQ to a database.
struct Homomorphism {
  Binding binding;
  Tuple answer;                  // head variables under `binding`
  std::vector<FactId> used_facts;  // one per atom, in atom order
};

// Tests whether `fact_args` matches `atom` under (and extending) `binding`:
// constants must equal, repeated variables must agree, and variables bound
// in `binding` must agree with their values. On success, returns true and
// extends `binding` with the atom's newly bound variables.
bool MatchAtom(const Atom& atom, const Tuple& fact_args, Binding* binding);

// Read-only variant: no binding extension.
bool MatchesAtom(const Atom& atom, const Tuple& fact_args,
                 const Binding& binding);

// Computes the answer set Q(D) (distinct tuples, in some deterministic
// order).
std::vector<Tuple> Evaluate(const ConjunctiveQuery& q, const Database& db);

// The dirty-answer set of a mutation: the distinct answers of Q with at
// least one homomorphism that uses `fact`. Computed by re-running the
// indexed join once per atom of the fact's relation with that atom pinned
// to the single candidate `fact` (the join is seeded from the delta fact;
// the full answer set is never re-enumerated). For deletions call this
// BEFORE tombstoning the fact — the pinned join needs it live. Same
// ordering semantics as Evaluate (sorted distinct tuples).
std::vector<Tuple> AnswersTouching(const ConjunctiveQuery& q,
                                   const Database& db, FactId fact);

// Id-level enumeration result: every homomorphism as a dense ValueId
// binding (one slot per query variable) plus the facts it uses. This is
// the raw output of the interned join; consumers that only need answers or
// used-fact sets (SupportEvaluator, SubsetEvaluator, the batch engines)
// work on it directly and skip the string-keyed Binding materialization.
struct IdHomomorphisms {
  std::vector<std::string> slot_names;          // slot -> variable name
  std::vector<int> head_slots;                  // head position -> slot
  std::vector<std::vector<ValueId>> bindings;   // per hom, by slot
  std::vector<std::vector<FactId>> used_facts;  // per hom, in atom order
};

// Enumerates all homomorphisms from Q to D over interned ids: candidates
// per atom come from galloping intersection of the database's dense
// posting lists over the atom's determined (constant or already-bound)
// positions; Values are never touched during the join.
IdHomomorphisms EnumerateHomomorphismIds(const ConjunctiveQuery& q,
                                         const Database& db);

// Enumerates all homomorphisms from Q to D (id join underneath; bindings
// are materialized back to Values at the end).
std::vector<Homomorphism> EnumerateHomomorphisms(const ConjunctiveQuery& q,
                                                 const Database& db);

// Reference implementation of EnumerateHomomorphisms: the original
// unindexed backtracking join that scans every fact of an atom's relation.
// Retained as the differential-testing oracle for the indexed join; both
// must produce the same homomorphism set (possibly in different order).
std::vector<Homomorphism> EnumerateHomomorphismsNaive(
    const ConjunctiveQuery& q, const Database& db);

// Evaluates Q over the sub-database D_x ∪ E where E is given as a set of
// endogenous fact ids (bitmask over `endo_index`, see below). Exogenous
// facts of `db` are always available. `endo_position[fact_id]` gives the
// bit position of an endogenous fact or -1. Used by brute-force engines.
class SubsetEvaluator {
 public:
  SubsetEvaluator(const ConjunctiveQuery& q, const Database& db);

  // Number of endogenous facts (bit positions).
  int num_players() const { return num_players_; }
  // The bit position of endogenous fact `id` in masks; -1 for exogenous.
  int PlayerIndex(FactId id) const;
  // Fact id of a player bit.
  FactId PlayerFact(int player) const { return players_[static_cast<size_t>(player)]; }

  // Distinct answers of Q over D_x ∪ E for the player subset `mask`.
  // Deterministic order (by answer tuple).
  std::vector<Tuple> AnswersFor(uint64_t mask) const;

  struct AnswerInfo {
    Tuple answer;
    // Minimal endogenous-support masks: the answer is alive iff some mask
    // is a subset of the player mask.
    std::vector<uint64_t> supports;
  };

  // All potential answers with their minimal supports (for engines that
  // precompute per-answer data, e.g. τ values).
  const std::vector<AnswerInfo>& answers() const { return answers_; }

 private:
  int num_players_ = 0;
  std::vector<FactId> players_;
  std::vector<int> player_index_;  // by fact id
  std::vector<AnswerInfo> answers_;
};

}  // namespace shapcq

#endif  // SHAPCQ_QUERY_EVALUATOR_H_
