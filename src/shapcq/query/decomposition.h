// Decomposition machinery for the paper's generic algorithm (Figure 2).
//
// The dynamic programs for hierarchical CQs recurse on the structure of the
// query: pick a root variable x (one occurring in every atom), split the
// database by the value of x, or split a disconnected query into a cross
// product of components. This module provides those structural steps over
// (query, fact-subset) pairs so the per-aggregate algorithms only implement
// their combine_∪ / combine_× logic.

#ifndef SHAPCQ_QUERY_DECOMPOSITION_H_
#define SHAPCQ_QUERY_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "shapcq/data/database.h"
#include "shapcq/query/cq.h"

namespace shapcq {

// A sub-database: a subset of the facts of `db`, by id.
struct FactSubset {
  const Database* db = nullptr;
  std::vector<FactId> facts;

  int CountEndogenous() const;
  std::vector<FactId> EndogenousFacts() const;
};

// All of db's facts as a FactSubset.
FactSubset AllFacts(const Database& db);

// Variables occurring in every atom of `q` (the paper's root variables).
// Empty if any atom is ground or the query has no variables.
std::vector<std::string> RootVariables(const ConjunctiveQuery& q);

// Partitions atom indices into connected components (atoms connected iff
// they share a variable). Ground atoms form singleton components. The result
// is ordered by smallest atom index.
std::vector<std::vector<int>> ConnectedComponents(const ConjunctiveQuery& q);

// True iff all atoms of `q` are ground (no variables anywhere).
bool IsGround(const ConjunctiveQuery& q);

// The index of the unique atom over `relation`; -1 if the relation does not
// occur. Aborts on self-joins.
int AtomIndexOf(const ConjunctiveQuery& q, const std::string& relation);

// The values the root variable `x` can take: constants of `subset` that
// occur, for every (atom, position) where x occurs in q, in that column of
// the corresponding relation. Sorted ascending, distinct.
std::vector<Value> CandidateValues(const ConjunctiveQuery& q,
                                   const std::string& x,
                                   const FactSubset& subset);

// Facts of `subset` consistent with x -> a: fact f of relation R matches R's
// atom after substituting a for x (constants agree, repeated variables
// agree). Requires self-join-free q.
std::vector<FactId> FactsConsistentWith(const ConjunctiveQuery& q,
                                        const std::string& x, const Value& a,
                                        const FactSubset& subset);

// Splits `subset` into facts that match their relation's atom in `q`
// (relevant: they can participate in a homomorphism at this level) and the
// rest (irrelevant: padding for subset counting). Facts whose relation does
// not occur in `q` are irrelevant. Requires self-join-free q.
struct RelevanceSplit {
  FactSubset relevant;
  int irrelevant_endogenous = 0;
  int irrelevant_exogenous = 0;
};
RelevanceSplit SplitRelevant(const ConjunctiveQuery& q,
                             const FactSubset& subset);

// Relevance split over the whole database without scanning it: candidates
// per atom come from intersecting the dense posting lists of the atom's
// constant positions, and the union over atoms is accumulated as bitset
// operations over dense fact ids. Equivalent to
// SplitRelevant(q, AllFacts(db)) for self-join-free q (relevant facts
// ascending), but costs O(matching facts) instead of O(|db|) per call —
// the batched engines call it once per answer.
RelevanceSplit SplitRelevantIndexed(const ConjunctiveQuery& q,
                                    const Database& db);

// The facts of `subset` whose relation occurs in `q` (used to route facts to
// cross-product components). Requires self-join-free q.
FactSubset FactsOfQueryRelations(const ConjunctiveQuery& q,
                                 const FactSubset& subset);

}  // namespace shapcq

#endif  // SHAPCQ_QUERY_DECOMPOSITION_H_
