// Text syntax for conjunctive queries.
//
// Grammar (whitespace-insensitive):
//
//   query  := head ("<-" | ":-") atom ("," atom)*
//   head   := NAME "(" [ VAR ("," VAR)* ] ")"
//   atom   := NAME "(" [ term ("," term)* ] ")"
//   term   := VAR | NUMBER | STRING
//
// NAME and VAR are identifiers ([A-Za-z_][A-Za-z0-9_]*); every bare
// identifier in a body position is a variable (Datalog convention).
// NUMBER is an optionally signed integer or decimal; STRING is single- or
// double-quoted. Examples:
//
//   Q(x) <- R(x, y), S(y)
//   Q() <- R(x), S(x, 'blue'), T(3)

#ifndef SHAPCQ_QUERY_PARSER_H_
#define SHAPCQ_QUERY_PARSER_H_

#include <string_view>

#include "shapcq/query/cq.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Parses `text` into a ConjunctiveQuery; returns INVALID_ARGUMENT with a
// position-annotated message on malformed input.
StatusOr<ConjunctiveQuery> ParseQuery(std::string_view text);

// Parses or aborts; for tests and examples with known-good literals.
ConjunctiveQuery MustParseQuery(std::string_view text);

}  // namespace shapcq

#endif  // SHAPCQ_QUERY_PARSER_H_
