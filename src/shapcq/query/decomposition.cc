#include "shapcq/query/decomposition.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "shapcq/query/evaluator.h"
#include "shapcq/util/bitset.h"
#include "shapcq/util/check.h"

namespace shapcq {

namespace {

// One atom compiled to interned-id checks: required (position, id) pairs
// for constants (and optionally one fixed variable binding) plus
// repeated-variable position groups. Matching a fact is then a handful of
// integer compares — no Binding map, no Value dispatch.
struct AtomIdMatcher {
  bool impossible = false;  // a required constant was never interned
  std::vector<std::pair<int, ValueId>> required;
  std::vector<std::vector<int>> var_groups;  // positions sharing a variable

  bool Matches(const Database& db, FactId fact) const {
    if (impossible) return false;
    for (const auto& [position, id] : required) {
      if (db.ArgId(fact, position) != id) return false;
    }
    for (const std::vector<int>& group : var_groups) {
      ValueId first = db.ArgId(fact, group[0]);
      for (size_t i = 1; i < group.size(); ++i) {
        if (db.ArgId(fact, group[i]) != first) return false;
      }
    }
    return true;
  }
};

// Compiles `atom`; when `fixed_var` is non-null its positions must equal
// `fixed_id` (the binding x -> a of the hierarchical recursion).
AtomIdMatcher CompileAtom(const Atom& atom, const Database& db,
                          const std::string* fixed_var, ValueId fixed_id) {
  AtomIdMatcher matcher;
  std::unordered_map<std::string, std::vector<int>> positions_of_var;
  for (int i = 0; i < atom.arity(); ++i) {
    const Term& term = atom.terms[static_cast<size_t>(i)];
    if (term.is_constant()) {
      ValueId id = db.pool().Find(term.constant());
      if (id == kNoValueId) {
        matcher.impossible = true;
        return matcher;
      }
      matcher.required.emplace_back(i, id);
    } else if (fixed_var != nullptr && term.variable() == *fixed_var) {
      matcher.required.emplace_back(i, fixed_id);
    } else {
      positions_of_var[term.variable()].push_back(i);
    }
  }
  for (auto& [var, positions] : positions_of_var) {
    if (positions.size() > 1) matcher.var_groups.push_back(positions);
  }
  return matcher;
}

// Matchers for every atom of self-join-free `q`, addressable by the
// RelationId of a fact; entries are -1 for relations not in `q`.
struct QueryIdMatchers {
  std::vector<int> atom_of_relation;  // by RelationId; -1 when absent
  std::vector<AtomIdMatcher> matchers;  // by atom index

  const AtomIdMatcher* ForFact(const Database& db, FactId fact) const {
    RelationId relation = db.fact_relation(fact);
    int atom = atom_of_relation[static_cast<size_t>(relation)];
    return atom < 0 ? nullptr : &matchers[static_cast<size_t>(atom)];
  }
};

QueryIdMatchers CompileQuery(const ConjunctiveQuery& q, const Database& db,
                             const std::string* fixed_var, ValueId fixed_id) {
  SHAPCQ_CHECK(!q.HasSelfJoin());
  QueryIdMatchers out;
  out.atom_of_relation.assign(static_cast<size_t>(db.num_relations()), -1);
  out.matchers.reserve(q.atoms().size());
  for (size_t i = 0; i < q.atoms().size(); ++i) {
    const Atom& atom = q.atoms()[i];
    out.matchers.push_back(CompileAtom(atom, db, fixed_var, fixed_id));
    RelationId relation = db.relation_id(atom.relation);
    if (relation != kNoRelationId) {
      SHAPCQ_CHECK(db.columns().arity(relation) == atom.arity() &&
                   "query atom arity conflicts with relation arity");
      out.atom_of_relation[static_cast<size_t>(relation)] =
          static_cast<int>(i);
    }
  }
  return out;
}

}  // namespace

int FactSubset::CountEndogenous() const {
  int count = 0;
  for (FactId id : facts) {
    if (db->fact(id).endogenous) ++count;
  }
  return count;
}

std::vector<FactId> FactSubset::EndogenousFacts() const {
  std::vector<FactId> out;
  for (FactId id : facts) {
    if (db->fact(id).endogenous) out.push_back(id);
  }
  return out;
}

FactSubset AllFacts(const Database& db) {
  FactSubset subset;
  subset.db = &db;
  subset.facts.reserve(static_cast<size_t>(db.num_live()));
  for (FactId id = 0; id < db.num_facts(); ++id) {
    if (db.live(id)) subset.facts.push_back(id);
  }
  return subset;
}

std::vector<std::string> RootVariables(const ConjunctiveQuery& q) {
  std::vector<std::string> roots;
  int num_atoms = static_cast<int>(q.atoms().size());
  for (const std::string& variable : q.variables()) {
    if (static_cast<int>(q.AtomsContaining(variable).size()) == num_atoms) {
      roots.push_back(variable);
    }
  }
  return roots;
}

std::vector<std::vector<int>> ConnectedComponents(const ConjunctiveQuery& q) {
  int n = static_cast<int>(q.atoms().size());
  // Union-find over atoms.
  std::vector<int> parent(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int a, int b) {
    parent[static_cast<size_t>(find(a))] = find(b);
  };
  for (const std::string& variable : q.variables()) {
    std::vector<int> touching = q.AtomsContaining(variable);
    for (size_t i = 1; i < touching.size(); ++i) {
      unite(touching[0], touching[i]);
    }
  }
  std::unordered_map<int, std::vector<int>> groups;
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    int root = find(i);
    if (groups.find(root) == groups.end()) order.push_back(root);
    groups[root].push_back(i);
  }
  std::vector<std::vector<int>> components;
  components.reserve(order.size());
  for (int root : order) components.push_back(std::move(groups[root]));
  return components;
}

bool IsGround(const ConjunctiveQuery& q) { return q.variables().empty(); }

int AtomIndexOf(const ConjunctiveQuery& q, const std::string& relation) {
  std::vector<int> indices = q.AtomsOf(relation);
  SHAPCQ_CHECK(indices.size() <= 1 && "self-join encountered");
  return indices.empty() ? -1 : indices[0];
}

std::vector<Value> CandidateValues(const ConjunctiveQuery& q,
                                   const std::string& x,
                                   const FactSubset& subset) {
  SHAPCQ_CHECK(q.HasVariable(x));
  const Database& db = *subset.db;
  // Group subset facts by relation id once.
  std::vector<std::vector<FactId>> by_relation(
      static_cast<size_t>(db.num_relations()));
  for (FactId id : subset.facts) {
    by_relation[static_cast<size_t>(db.fact_relation(id))].push_back(id);
  }
  // Intersect the interned column values over every (atom, position) where
  // x occurs; Values are materialized (and ordered) only at the end.
  bool first = true;
  std::unordered_set<ValueId> candidates;
  for (const Atom& atom : q.atoms()) {
    std::vector<int> positions = atom.PositionsOf(x);
    if (positions.empty()) continue;
    RelationId relation = db.relation_id(atom.relation);
    for (int position : positions) {
      std::unordered_set<ValueId> column;
      if (relation != kNoRelationId) {
        for (FactId id : by_relation[static_cast<size_t>(relation)]) {
          column.insert(db.ArgId(id, position));
        }
      }
      if (first) {
        candidates = std::move(column);
        first = false;
      } else {
        std::unordered_set<ValueId> intersection;
        for (ValueId id : candidates) {
          if (column.count(id) > 0) intersection.insert(id);
        }
        candidates = std::move(intersection);
      }
      if (candidates.empty()) return {};
    }
  }
  SHAPCQ_CHECK(!first && "variable does not occur in the query body");
  std::vector<Value> out;
  out.reserve(candidates.size());
  for (ValueId id : candidates) out.push_back(db.pool().value(id));
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<FactId> FactsConsistentWith(const ConjunctiveQuery& q,
                                        const std::string& x, const Value& a,
                                        const FactSubset& subset) {
  const Database& db = *subset.db;
  ValueId a_id = db.pool().Find(a);
  if (a_id == kNoValueId) return {};  // no fact argument can equal a
  QueryIdMatchers matchers = CompileQuery(q, db, &x, a_id);
  std::vector<FactId> out;
  for (FactId id : subset.facts) {
    const AtomIdMatcher* matcher = matchers.ForFact(db, id);
    if (matcher != nullptr && matcher->Matches(db, id)) out.push_back(id);
  }
  return out;
}

RelevanceSplit SplitRelevant(const ConjunctiveQuery& q,
                             const FactSubset& subset) {
  const Database& db = *subset.db;
  QueryIdMatchers matchers = CompileQuery(q, db, nullptr, kNoValueId);
  RelevanceSplit split;
  split.relevant.db = subset.db;
  for (FactId id : subset.facts) {
    const AtomIdMatcher* matcher = matchers.ForFact(db, id);
    if (matcher != nullptr && matcher->Matches(db, id)) {
      split.relevant.facts.push_back(id);
    } else if (db.fact(id).endogenous) {
      ++split.irrelevant_endogenous;
    } else {
      ++split.irrelevant_exogenous;
    }
  }
  return split;
}

RelevanceSplit SplitRelevantIndexed(const ConjunctiveQuery& q,
                                    const Database& db) {
  QueryIdMatchers matchers = CompileQuery(q, db, nullptr, kNoValueId);
  DenseBitset relevant(static_cast<size_t>(db.num_facts()));
  for (size_t atom_index = 0; atom_index < q.atoms().size(); ++atom_index) {
    const AtomIdMatcher& matcher = matchers.matchers[atom_index];
    if (matcher.impossible) continue;
    RelationId relation = db.relation_id(q.atoms()[atom_index].relation);
    if (relation == kNoRelationId) continue;
    // Candidates: intersection of the posting lists of the constant
    // positions (one galloping pass), or the whole relation when the atom
    // has no constants.
    std::vector<const std::vector<FactId>*> lists;
    for (const auto& [position, id] : matcher.required) {
      lists.push_back(&db.FactsWith(relation, position, id));
    }
    std::vector<FactId> intersected;
    const std::vector<FactId>* candidates;
    if (lists.empty()) {
      candidates = &db.FactsOf(relation);
    } else if (lists.size() == 1) {
      candidates = lists[0];
    } else {
      intersected = IntersectPostings(std::move(lists));
      candidates = &intersected;
    }
    for (FactId id : *candidates) {
      if (!db.live(id)) continue;  // tombstones linger until compaction
      bool consistent = true;
      for (const std::vector<int>& group : matcher.var_groups) {
        ValueId first = db.ArgId(id, group[0]);
        for (size_t i = 1; i < group.size(); ++i) {
          if (db.ArgId(id, group[i]) != first) {
            consistent = false;
            break;
          }
        }
        if (!consistent) break;
      }
      if (consistent) relevant.Set(static_cast<size_t>(id));
    }
  }
  RelevanceSplit split;
  split.relevant.db = &db;
  split.relevant.facts.reserve(relevant.Count());
  int relevant_endogenous = 0;
  relevant.ForEach([&](size_t id) {
    split.relevant.facts.push_back(static_cast<FactId>(id));
    if (db.fact(static_cast<FactId>(id)).endogenous) ++relevant_endogenous;
  });
  split.irrelevant_endogenous = db.num_endogenous() - relevant_endogenous;
  split.irrelevant_exogenous =
      (db.num_live() - db.num_endogenous()) -
      (static_cast<int>(split.relevant.facts.size()) - relevant_endogenous);
  return split;
}

FactSubset FactsOfQueryRelations(const ConjunctiveQuery& q,
                                 const FactSubset& subset) {
  SHAPCQ_CHECK(!q.HasSelfJoin());
  const Database& db = *subset.db;
  std::vector<char> wanted(static_cast<size_t>(db.num_relations()), 0);
  for (const Atom& atom : q.atoms()) {
    RelationId relation = db.relation_id(atom.relation);
    if (relation != kNoRelationId) {
      wanted[static_cast<size_t>(relation)] = 1;
    }
  }
  FactSubset out;
  out.db = subset.db;
  for (FactId id : subset.facts) {
    if (wanted[static_cast<size_t>(db.fact_relation(id))] != 0) {
      out.facts.push_back(id);
    }
  }
  return out;
}

}  // namespace shapcq
