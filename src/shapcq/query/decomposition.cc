#include "shapcq/query/decomposition.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "shapcq/query/evaluator.h"
#include "shapcq/util/check.h"

namespace shapcq {

int FactSubset::CountEndogenous() const {
  int count = 0;
  for (FactId id : facts) {
    if (db->fact(id).endogenous) ++count;
  }
  return count;
}

std::vector<FactId> FactSubset::EndogenousFacts() const {
  std::vector<FactId> out;
  for (FactId id : facts) {
    if (db->fact(id).endogenous) out.push_back(id);
  }
  return out;
}

FactSubset AllFacts(const Database& db) {
  FactSubset subset;
  subset.db = &db;
  subset.facts.reserve(static_cast<size_t>(db.num_facts()));
  for (FactId id = 0; id < db.num_facts(); ++id) subset.facts.push_back(id);
  return subset;
}

std::vector<std::string> RootVariables(const ConjunctiveQuery& q) {
  std::vector<std::string> roots;
  int num_atoms = static_cast<int>(q.atoms().size());
  for (const std::string& variable : q.variables()) {
    if (static_cast<int>(q.AtomsContaining(variable).size()) == num_atoms) {
      roots.push_back(variable);
    }
  }
  return roots;
}

std::vector<std::vector<int>> ConnectedComponents(const ConjunctiveQuery& q) {
  int n = static_cast<int>(q.atoms().size());
  // Union-find over atoms.
  std::vector<int> parent(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) parent[static_cast<size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int a, int b) {
    parent[static_cast<size_t>(find(a))] = find(b);
  };
  for (const std::string& variable : q.variables()) {
    std::vector<int> touching = q.AtomsContaining(variable);
    for (size_t i = 1; i < touching.size(); ++i) {
      unite(touching[0], touching[i]);
    }
  }
  std::unordered_map<int, std::vector<int>> groups;
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    int root = find(i);
    if (groups.find(root) == groups.end()) order.push_back(root);
    groups[root].push_back(i);
  }
  std::vector<std::vector<int>> components;
  components.reserve(order.size());
  for (int root : order) components.push_back(std::move(groups[root]));
  return components;
}

bool IsGround(const ConjunctiveQuery& q) { return q.variables().empty(); }

int AtomIndexOf(const ConjunctiveQuery& q, const std::string& relation) {
  std::vector<int> indices = q.AtomsOf(relation);
  SHAPCQ_CHECK(indices.size() <= 1 && "self-join encountered");
  return indices.empty() ? -1 : indices[0];
}

std::vector<Value> CandidateValues(const ConjunctiveQuery& q,
                                   const std::string& x,
                                   const FactSubset& subset) {
  SHAPCQ_CHECK(q.HasVariable(x));
  // Group subset facts by relation once.
  std::unordered_map<std::string, std::vector<FactId>> by_relation;
  for (FactId id : subset.facts) {
    by_relation[subset.db->fact(id).relation].push_back(id);
  }
  bool first = true;
  std::set<Value> candidates;
  for (const Atom& atom : q.atoms()) {
    std::vector<int> positions = atom.PositionsOf(x);
    for (int position : positions) {
      std::set<Value> column;
      auto it = by_relation.find(atom.relation);
      if (it != by_relation.end()) {
        for (FactId id : it->second) {
          column.insert(
              subset.db->fact(id).args[static_cast<size_t>(position)]);
        }
      }
      if (first) {
        candidates = std::move(column);
        first = false;
      } else {
        std::set<Value> intersection;
        std::set_intersection(candidates.begin(), candidates.end(),
                              column.begin(), column.end(),
                              std::inserter(intersection,
                                            intersection.begin()));
        candidates = std::move(intersection);
      }
      if (candidates.empty()) return {};
    }
  }
  SHAPCQ_CHECK(!first && "variable does not occur in the query body");
  return std::vector<Value>(candidates.begin(), candidates.end());
}

std::vector<FactId> FactsConsistentWith(const ConjunctiveQuery& q,
                                        const std::string& x, const Value& a,
                                        const FactSubset& subset) {
  SHAPCQ_CHECK(!q.HasSelfJoin());
  Binding binding;
  binding.emplace(x, a);
  std::vector<FactId> out;
  for (FactId id : subset.facts) {
    const Fact& fact = subset.db->fact(id);
    int atom_index = AtomIndexOf(q, fact.relation);
    if (atom_index < 0) continue;
    const Atom& atom = q.atoms()[static_cast<size_t>(atom_index)];
    if (MatchesAtom(atom, fact.args, binding)) out.push_back(id);
  }
  return out;
}

RelevanceSplit SplitRelevant(const ConjunctiveQuery& q,
                             const FactSubset& subset) {
  SHAPCQ_CHECK(!q.HasSelfJoin());
  RelevanceSplit split;
  split.relevant.db = subset.db;
  Binding empty;
  for (FactId id : subset.facts) {
    const Fact& fact = subset.db->fact(id);
    int atom_index = AtomIndexOf(q, fact.relation);
    bool relevant = false;
    if (atom_index >= 0) {
      const Atom& atom = q.atoms()[static_cast<size_t>(atom_index)];
      relevant = MatchesAtom(atom, fact.args, empty);
    }
    if (relevant) {
      split.relevant.facts.push_back(id);
    } else if (fact.endogenous) {
      ++split.irrelevant_endogenous;
    } else {
      ++split.irrelevant_exogenous;
    }
  }
  return split;
}

FactSubset FactsOfQueryRelations(const ConjunctiveQuery& q,
                                 const FactSubset& subset) {
  SHAPCQ_CHECK(!q.HasSelfJoin());
  std::unordered_set<std::string> relations;
  for (const Atom& atom : q.atoms()) relations.insert(atom.relation);
  FactSubset out;
  out.db = subset.db;
  for (FactId id : subset.facts) {
    if (relations.count(subset.db->fact(id).relation) > 0) {
      out.facts.push_back(id);
    }
  }
  return out;
}

}  // namespace shapcq
