// CountDistinct over all-hierarchical CQs (Section 4.1, Lemma 4.3).
//
// CDist decomposes into indicator games: CDist(B) = Σ_a χ_a(B), and the
// indicator game for value a is the Boolean membership game over the
// database D_a obtained by deleting the facts of the localization relation
// whose τ-value differs from a. Hence
//
//   sum_k(CDist ∘ τ ∘ Q, D) = Σ_a pad(c(Q_bool, D_a), removed_a)[k],
//
// where c are satisfaction counts and pad re-inserts the removed endogenous
// facts as never-satisfying padding.

#ifndef SHAPCQ_SHAPLEY_COUNT_DISTINCT_H_
#define SHAPCQ_SHAPLEY_COUNT_DISTINCT_H_

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

// sum_k series for A = CDist ∘ τ ∘ Q. Returns UNSUPPORTED unless the
// aggregate is CountDistinct, the query is self-join-free and
// all-hierarchical, and τ is localized on some atom of Q.
StatusOr<SumKSeries> CountDistinctSumK(const AggregateQuery& a,
                                       const Database& db,
                                       const SolverOptions& options = {});

class EngineRegistry;

// Registers "count-distinct/boolean-reduction" plus the Section 7.1
// "count-distinct/injective-count-rewrite" fallback (unary head, injective
// τ: CDist coincides with Count on the larger ∃-hierarchical class).
void RegisterCountDistinctEngines(EngineRegistry& registry);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_COUNT_DISTINCT_H_
