// Min/Max with NON-localized monotone-monoid value functions (Section 7.3).
//
// The paper observes that the all-hierarchical Min/Max algorithm extends
// beyond localized τ when τ is a fold x_{p1} ⊗ x_{p2} ⊗ ... of numeric head
// variables under a monotone (non-decreasing) monoid ⊗ — e.g.
// Max(x1 + x2) or Max(max(x1, x2)) over a cross product — because
//
//   max over Q1 × Q2 of (v1 ⊗ v2) = (max v1) ⊗ (max v2),
//
// so cross products combine by a ⊗-convolution of per-side maxima instead
// of requiring the whole value inside one atom. (The same section shows
// that SOME restriction on τ is necessary: a poly-time but non-monotone τ
// makes even Max over a Cartesian product FP^#P-hard.) This module
// implements that extension, promised by the paper for its extended
// version.

#ifndef SHAPCQ_SHAPLEY_MIN_MAX_MONOID_H_
#define SHAPCQ_SHAPLEY_MIN_MAX_MONOID_H_

#include <utility>
#include <vector>

#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/cq.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

// The supported monotone monoids over rationals.
enum class MonoidKind {
  kPlus,  // a ⊗ b = a + b   (identity 0; non-decreasing)
  kMax,   // a ⊗ b = max(a,b) (non-decreasing)
  kMin,   // a ⊗ b = min(a,b) (non-increasing: valid for Min aggregation)
};

// τ(t) = t[p1] ⊗ t[p2] ⊗ ... over the given (possibly non-localized) head
// positions; used for evaluation and brute-force cross-checks.
ValueFunctionPtr MakeMonoidTau(MonoidKind kind, std::vector<int> positions);

// sum_k series for Max ∘ (⊗ over positions) ∘ Q (is_max) or the dual
// Min ∘ (⊗ over positions) ∘ Q. Requirements: Q self-join-free and
// all-hierarchical; positions non-empty head indices; for Max the monoid
// must be non-decreasing (kPlus or kMax), for Min non-increasing in the
// dual sense (kPlus or kMin).
StatusOr<SumKSeries> MonoidMinMaxSumK(const ConjunctiveQuery& q,
                                      MonoidKind kind,
                                      std::vector<int> positions, bool is_max,
                                      const Database& db);

// Batched all-facts scorer for the monoid engine, with the same gates as
// MonoidMinMaxSumK. Mirrors SumCountScoreAll's batching: the relevance
// split and (for Min) the value-negated dual database are built once, and
// each fact's derived databases F (fact exogenous) / G (fact removed) are
// an endogenous-flag flip and a subset drop on a worker-private copy —
// the per-fact path instead copies and (for Min) re-negates the database
// 2n times. Query-irrelevant facts score an exact 0 without running the
// DP. Shards over options.num_threads (options.score selects
// Shapley/Banzhaf); values are bitwise-identical to per-fact ScoreViaSumK
// over MonoidMinMaxSumK for every thread count.
StatusOr<std::vector<std::pair<FactId, Rational>>> MinMaxMonoidScoreAll(
    const ConjunctiveQuery& q, MonoidKind kind, std::vector<int> positions,
    bool is_max, const Database& db, const SolverOptions& options = {});

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_MIN_MAX_MONOID_H_
