// Answer-count distributions for q-hierarchical CQs.
//
// For a sub-problem (Q', D') of the generic algorithm, computes the map
//
//   N(k, ℓ) = #{ E ⊆ D'_n, |E| = k : |Q'(E ∪ D'_x)| = ℓ },
//
// the "non-R side" data structure of Section 5.1. The recursion prefers
// free root variables (answer sets of the slices are disjoint, so sizes
// add); once the head is fully bound the query is Boolean and the
// distribution collapses to satisfaction counts; cross products multiply
// answer counts. This is exactly where the q-hierarchical property is
// needed: it guarantees a free root variable exists whenever the connected
// query is non-Boolean.

#ifndef SHAPCQ_SHAPLEY_ANSWER_COUNTS_H_
#define SHAPCQ_SHAPLEY_ANSWER_COUNTS_H_

#include <map>
#include <utility>

#include "shapcq/query/cq.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/util/bigint.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

// Sparse (k, ℓ) -> count map. Entries with zero counts are absent; for each
// k the entries sum to C(m, k).
using AnswerCountMap = std::map<std::pair<int, int>, BigInt>;

// Computes the distribution for `q` over the facts of `facts` (which must
// all match their atoms). Requires q self-join-free and q-hierarchical;
// aborts otherwise (callers validate first).
AnswerCountMap AnswerCountDistribution(const ConjunctiveQuery& q,
                                       const FactSubset& facts,
                                       Combinatorics* comb);

// Adds `pad` endogenous facts that never affect answers (k-convolution).
AnswerCountMap PadAnswerCounts(const AnswerCountMap& counts, int pad,
                               Combinatorics* comb);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_ANSWER_COUNTS_H_
