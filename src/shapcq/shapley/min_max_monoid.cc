#include "shapcq/shapley/min_max_monoid.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>

#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/shapley/dp_util.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

namespace {

// A partial monoid value: nullopt is the fold identity (no positions in
// scope contributed yet).
using PartialValue = std::optional<Rational>;

Rational Combine(MonoidKind kind, const Rational& a, const Rational& b) {
  switch (kind) {
    case MonoidKind::kPlus:
      return a + b;
    case MonoidKind::kMax:
      return a > b ? a : b;
    case MonoidKind::kMin:
      return a < b ? a : b;
  }
  SHAPCQ_UNREACHABLE();
}

PartialValue Fold(MonoidKind kind, const PartialValue& a,
                  const PartialValue& b) {
  if (!a.has_value()) return b;
  if (!b.has_value()) return a;
  return Combine(kind, *a, *b);
}

// Rows keyed by the maximum partial value over the sub-problem's answers;
// subsets with no answers are implicit (C(m,k) − Σ rows).
struct MonoidStructure {
  std::map<PartialValue, std::vector<BigInt>> rows;
  int num_endogenous = 0;
};

class MonoidSolver {
 public:
  MonoidSolver(const ConjunctiveQuery& original, MonoidKind kind,
               const std::vector<int>& positions, Combinatorics* comb)
      : kind_(kind), comb_(comb) {
    for (int position : positions) {
      SHAPCQ_CHECK(position >= 0 && position < original.arity());
      positions_of_var_[original.head()[static_cast<size_t>(position)]]
          .push_back(position);
    }
  }

  // `scope`: the monoid head variables still unbound in this sub-problem
  // (with multiplicity via positions); `acc`: the fold of already-bound
  // scope values.
  MonoidStructure Solve(const ConjunctiveQuery& q, const FactSubset& facts,
                        std::set<std::string> scope, PartialValue acc) {
    if (scope.empty()) return SolveScopeDone(q, facts, acc);
    std::vector<std::string> roots = RootVariables(q);
    if (!roots.empty()) {
      return SolveRoot(q, roots[0], facts, std::move(scope), std::move(acc));
    }
    std::vector<std::vector<int>> components = ConnectedComponents(q);
    SHAPCQ_CHECK(components.size() > 1);
    return SolveCrossProduct(q, components, facts, scope, std::move(acc));
  }

  MonoidStructure Pad(MonoidStructure s, int pad) const {
    if (pad == 0) return s;
    for (auto& [key, row] : s.rows) row = PadCounts(row, pad, comb_);
    s.num_endogenous += pad;
    return s;
  }

  // combine_∪ over disjoint sub-databases: the union's max is a iff both
  // sides ≤ a (or empty) and one side attains a — generalized from the
  // localized Max DP to arbitrary key sets.
  MonoidStructure CombineUnion(const MonoidStructure& lhs,
                               const MonoidStructure& rhs) const {
    MonoidStructure out;
    out.num_endogenous = lhs.num_endogenous + rhs.num_endogenous;
    // Merged ascending key list; PartialValue keys must be homogeneous
    // (all identity or all proper) within a scope, so the std::optional
    // order (nullopt first) never actually mixes.
    std::set<PartialValue> keys;
    for (const auto& [key, row] : lhs.rows) keys.insert(key);
    for (const auto& [key, row] : rhs.rows) keys.insert(key);
    size_t lhs_width = static_cast<size_t>(lhs.num_endogenous) + 1;
    size_t rhs_width = static_cast<size_t>(rhs.num_endogenous) + 1;
    auto row_of = [](const MonoidStructure& s, const PartialValue& key,
                     size_t width) {
      auto it = s.rows.find(key);
      return it != s.rows.end() ? it->second : std::vector<BigInt>(width);
    };
    // Running ≤-prefix (plus empties) per side.
    std::vector<BigInt> lhs_le(lhs_width);
    std::vector<BigInt> rhs_le(rhs_width);
    std::vector<BigInt> lhs_total(lhs_width);
    std::vector<BigInt> rhs_total(rhs_width);
    for (const auto& [key, row] : lhs.rows) {
      for (size_t k = 0; k < lhs_width; ++k) lhs_total[k] += row[k];
    }
    for (const auto& [key, row] : rhs.rows) {
      for (size_t k = 0; k < rhs_width; ++k) rhs_total[k] += row[k];
    }
    // Empty-answer counts.
    std::vector<BigInt> lhs_empty(lhs_width);
    std::vector<BigInt> rhs_empty(rhs_width);
    for (size_t k = 0; k < lhs_width; ++k) {
      lhs_empty[k] = comb_->Binomial(lhs.num_endogenous,
                                     static_cast<int64_t>(k)) -
                     lhs_total[k];
    }
    for (size_t k = 0; k < rhs_width; ++k) {
      rhs_empty[k] = comb_->Binomial(rhs.num_endogenous,
                                     static_cast<int64_t>(k)) -
                     rhs_total[k];
    }
    lhs_le = lhs_empty;
    rhs_le = rhs_empty;
    for (const PartialValue& key : keys) {
      std::vector<BigInt> lhs_eq = row_of(lhs, key, lhs_width);
      std::vector<BigInt> rhs_eq = row_of(rhs, key, rhs_width);
      // lhs_lt = current lhs_le (before adding eq).
      std::vector<BigInt> part1 = Convolve(lhs_eq, rhs_le);   // pre-update
      for (size_t k = 0; k < rhs_width; ++k) rhs_le[k] += rhs_eq[k];
      std::vector<BigInt> part2 = Convolve(lhs_le, rhs_eq);
      for (size_t k = 0; k < lhs_width; ++k) lhs_le[k] += lhs_eq[k];
      std::vector<BigInt> row(static_cast<size_t>(out.num_endogenous) + 1);
      // part1: lhs = key, rhs < key or empty... careful: rhs_le before
      // adding rhs_eq excludes key itself, so part1 = (lhs=key)·(rhs<key or
      // empty) and part2 = (lhs≤key or empty, pre-update incl. key? No:
      // lhs_le updated after part2) — part2 = (lhs<key or empty)·(rhs=key).
      // Missing: (lhs=key)·(rhs=key). Add it explicitly.
      std::vector<BigInt> both = Convolve(lhs_eq, rhs_eq);
      for (size_t k = 0; k < row.size(); ++k) {
        if (k < part1.size()) row[k] += part1[k];
        if (k < part2.size()) row[k] += part2[k];
        if (k < both.size()) row[k] += both[k];
      }
      bool nonzero = false;
      for (const BigInt& v : row) {
        if (!v.is_zero()) {
          nonzero = true;
          break;
        }
      }
      if (nonzero) out.rows[key] = std::move(row);
    }
    return out;
  }

 private:
  // All scope variables bound: every answer of q carries the same value
  // `acc`; the structure is satisfaction counts under that key.
  MonoidStructure SolveScopeDone(const ConjunctiveQuery& q,
                                 const FactSubset& facts,
                                 const PartialValue& acc) {
    std::vector<BigInt> sat = SatisfactionCountsOnSubset(q, facts, comb_);
    MonoidStructure out;
    out.num_endogenous = static_cast<int>(sat.size()) - 1;
    bool nonzero = false;
    for (const BigInt& v : sat) {
      if (!v.is_zero()) {
        nonzero = true;
        break;
      }
    }
    if (nonzero) out.rows[acc] = std::move(sat);
    return out;
  }

  MonoidStructure SolveRoot(const ConjunctiveQuery& q, const std::string& x,
                            const FactSubset& facts,
                            std::set<std::string> scope, PartialValue acc) {
    int total_endogenous = facts.CountEndogenous();
    MonoidStructure result;
    result.num_endogenous = 0;
    int covered_endogenous = 0;
    bool first = true;
    // Binding x folds its value into acc once per occurrence position.
    std::set<std::string> child_scope = scope;
    int x_position_count = 0;
    auto it = positions_of_var_.find(x);
    if (scope.count(x) > 0) {
      SHAPCQ_CHECK(it != positions_of_var_.end());
      x_position_count = static_cast<int>(it->second.size());
      child_scope.erase(x);
    }
    for (const Value& a : CandidateValues(q, x, facts)) {
      FactSubset sub;
      sub.db = facts.db;
      sub.facts = FactsConsistentWith(q, x, a, facts);
      covered_endogenous += sub.CountEndogenous();
      PartialValue child_acc = acc;
      for (int occurrence = 0; occurrence < x_position_count; ++occurrence) {
        child_acc = Fold(kind_, child_acc, a.AsRational());
      }
      MonoidStructure child =
          Solve(q.Bind(x, a), sub, child_scope, std::move(child_acc));
      if (first) {
        result = std::move(child);
        first = false;
      } else {
        result = CombineUnion(result, child);
      }
    }
    return Pad(std::move(result), total_endogenous - covered_endogenous);
  }

  // combine_×: max over the product of (v1 ⊗ v2) = (max v1) ⊗ (max v2)
  // by monotonicity; empty sides empty the product.
  MonoidStructure SolveCrossProduct(
      const ConjunctiveQuery& q, const std::vector<std::vector<int>>& components,
      const FactSubset& facts, const std::set<std::string>& scope,
      PartialValue acc) {
    MonoidStructure result;
    // Identity element: one "answer" with the identity value over zero
    // facts (folded into real components below).
    result.num_endogenous = 0;
    result.rows[PartialValue()] = {BigInt(1)};
    int covered_endogenous = 0;
    for (const std::vector<int>& component : components) {
      ConjunctiveQuery sub_q = q.Project(component, nullptr);
      FactSubset sub = FactsOfQueryRelations(sub_q, facts);
      covered_endogenous += sub.CountEndogenous();
      std::set<std::string> sub_scope;
      for (const std::string& variable : scope) {
        if (sub_q.HasVariable(variable)) sub_scope.insert(variable);
      }
      MonoidStructure child =
          Solve(sub_q, sub, std::move(sub_scope), PartialValue());
      result = CombineCross(result, child);
    }
    SHAPCQ_CHECK(covered_endogenous == facts.CountEndogenous());
    // Fold the externally accumulated value into every key (a monotone
    // shift that preserves key order).
    if (acc.has_value()) {
      // Monotone shift; keys may collide (e.g. max(acc, ·) saturating), so
      // rows merge additively.
      MonoidStructure shifted;
      shifted.num_endogenous = result.num_endogenous;
      for (auto& [key, row] : result.rows) {
        std::vector<BigInt>& target = shifted.rows[Fold(kind_, acc, key)];
        if (target.empty()) {
          target = std::move(row);
        } else {
          for (size_t k = 0; k < target.size(); ++k) target[k] += row[k];
        }
      }
      result = std::move(shifted);
    }
    return result;
  }

  MonoidStructure CombineCross(const MonoidStructure& lhs,
                               const MonoidStructure& rhs) const {
    MonoidStructure out;
    out.num_endogenous = lhs.num_endogenous + rhs.num_endogenous;
    for (const auto& [lkey, lrow] : lhs.rows) {
      for (const auto& [rkey, rrow] : rhs.rows) {
        PartialValue key = Fold(kind_, lkey, rkey);
        std::vector<BigInt> product = Convolve(lrow, rrow);
        std::vector<BigInt>& row = out.rows[key];
        row.resize(static_cast<size_t>(out.num_endogenous) + 1);
        for (size_t k = 0; k < product.size(); ++k) row[k] += product[k];
      }
    }
    // Prune all-zero rows and fix row widths.
    for (auto it = out.rows.begin(); it != out.rows.end();) {
      it->second.resize(static_cast<size_t>(out.num_endogenous) + 1);
      bool nonzero = false;
      for (const BigInt& v : it->second) {
        if (!v.is_zero()) {
          nonzero = true;
          break;
        }
      }
      it = nonzero ? std::next(it) : out.rows.erase(it);
    }
    return out;
  }

  MonoidKind kind_;
  Combinatorics* comb_;
  std::unordered_map<std::string, std::vector<int>> positions_of_var_;
};

}  // namespace

ValueFunctionPtr MakeMonoidTau(MonoidKind kind, std::vector<int> positions) {
  SHAPCQ_CHECK(!positions.empty());
  std::string name;
  switch (kind) {
    case MonoidKind::kPlus:
      name = "plus";
      break;
    case MonoidKind::kMax:
      name = "max";
      break;
    case MonoidKind::kMin:
      name = "min";
      break;
  }
  std::vector<int> captured = positions;
  return MakeCallbackTau(
      [kind, captured](const Tuple& t) {
        PartialValue acc;
        for (int position : captured) {
          acc = Fold(kind, acc,
                     t[static_cast<size_t>(position)].AsRational());
        }
        return *acc;
      },
      std::move(positions), "monoid-" + name);
}

StatusOr<SumKSeries> MonoidMinMaxSumK(const ConjunctiveQuery& q,
                                      MonoidKind kind,
                                      std::vector<int> positions, bool is_max,
                                      const Database& db) {
  if (positions.empty()) {
    return InvalidArgumentError("monoid value function needs positions");
  }
  if (q.HasSelfJoin()) {
    return UnsupportedError("monoid Min/Max requires a self-join-free CQ");
  }
  if (!IsAllHierarchical(q)) {
    return UnsupportedError("monoid Min/Max requires an all-hierarchical CQ: " +
                            q.ToString());
  }
  if (is_max && kind == MonoidKind::kMin) {
    return UnsupportedError("Max aggregation needs a non-decreasing monoid");
  }
  if (!is_max && kind == MonoidKind::kMax) {
    return UnsupportedError("Min aggregation needs a non-increasing monoid");
  }
  if (!is_max) {
    // Min(⊗ values) = −Max(⊗' negated values): negating every input value
    // turns kPlus into kPlus and kMin into kMax. Apply to a value-negated
    // copy of the database columns via the monotone-map trick — equivalent
    // and simpler: recurse on the negated-value database is invasive, so
    // instead we exploit duality directly below.
    MonoidKind dual = kind == MonoidKind::kMin ? MonoidKind::kMax : kind;
    // Negate values of the positions' columns.
    Database negated;
    for (FactId id = 0; id < db.num_facts(); ++id) {
      const Fact& fact = db.fact(id);
      Tuple args = fact.args;
      int atom_index = -1;
      for (int i = 0; i < static_cast<int>(q.atoms().size()); ++i) {
        if (q.atoms()[static_cast<size_t>(i)].relation == fact.relation) {
          atom_index = i;
          break;
        }
      }
      if (atom_index >= 0) {
        const Atom& atom = q.atoms()[static_cast<size_t>(atom_index)];
        for (int position : positions) {
          const std::string& variable =
              q.head()[static_cast<size_t>(position)];
          for (int atom_pos : atom.PositionsOf(variable)) {
            Value& v = args[static_cast<size_t>(atom_pos)];
            if (v.kind() == Value::Kind::kInt) {
              v = Value(-v.AsInt());
            } else if (v.kind() == Value::Kind::kDouble) {
              v = Value(-v.AsDouble());
            }
          }
        }
      }
      negated.AddFact(fact.relation, std::move(args), fact.endogenous);
    }
    StatusOr<SumKSeries> series =
        MonoidMinMaxSumK(q, dual, std::move(positions), /*is_max=*/true,
                         negated);
    if (!series.ok()) return series.status();
    for (Rational& value : *series) value = -value;
    return series;
  }
  // Max path.
  Combinatorics comb;
  MonoidSolver solver(q, kind, positions, &comb);
  RelevanceSplit split = SplitRelevant(q, AllFacts(db));
  std::set<std::string> scope;
  for (int position : positions) {
    SHAPCQ_CHECK(position >= 0 && position < q.arity());
    scope.insert(q.head()[static_cast<size_t>(position)]);
  }
  FactSubset relevant = split.relevant;
  MonoidStructure top =
      solver.Solve(q, relevant, std::move(scope), std::nullopt);
  top = solver.Pad(std::move(top), split.irrelevant_endogenous);
  int n = db.num_endogenous();
  SHAPCQ_CHECK(top.num_endogenous == n);
  SumKSeries series(static_cast<size_t>(n) + 1);
  for (const auto& [key, row] : top.rows) {
    SHAPCQ_CHECK(key.has_value());  // every scope position binds by a leaf
    for (int k = 0; k <= n; ++k) {
      const BigInt& count = row[static_cast<size_t>(k)];
      if (!count.is_zero()) {
        series[static_cast<size_t>(k)] += *key * Rational(count);
      }
    }
  }
  return series;
}

}  // namespace shapcq
