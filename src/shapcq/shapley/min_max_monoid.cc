#include "shapcq/shapley/min_max_monoid.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/shapley/dp_util.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/util/parallel.h"

namespace shapcq {

namespace {

// A partial monoid value: nullopt is the fold identity (no positions in
// scope contributed yet).
using PartialValue = std::optional<Rational>;

Rational Combine(MonoidKind kind, const Rational& a, const Rational& b) {
  switch (kind) {
    case MonoidKind::kPlus:
      return a + b;
    case MonoidKind::kMax:
      return a > b ? a : b;
    case MonoidKind::kMin:
      return a < b ? a : b;
  }
  SHAPCQ_UNREACHABLE();
}

PartialValue Fold(MonoidKind kind, const PartialValue& a,
                  const PartialValue& b) {
  if (!a.has_value()) return b;
  if (!b.has_value()) return a;
  return Combine(kind, *a, *b);
}

// Rows keyed by the maximum partial value over the sub-problem's answers;
// subsets with no answers are implicit (C(m,k) − Σ rows).
struct MonoidStructure {
  std::map<PartialValue, std::vector<BigInt>> rows;
  int num_endogenous = 0;
};

// Leave-one-out bundle: the structure of the full fact subset plus, for
// every endogenous fact f in it, the structure with f exogenous (the
// derived database F_f, one row narrower). Built in one recursive pass
// with prefix/suffix-combined siblings at every combine node, so a
// fact's variant costs one combine per ancestor instead of a full
// re-solve. Combines count subsets with exact integers, so any combine
// grouping yields the identical structure.
struct MonoidLOO {
  MonoidStructure full;
  std::unordered_map<FactId, MonoidStructure> minus;
};

class MonoidSolver {
 public:
  MonoidSolver(const ConjunctiveQuery& original, MonoidKind kind,
               const std::vector<int>& positions, Combinatorics* comb)
      : kind_(kind), comb_(comb) {
    for (int position : positions) {
      SHAPCQ_CHECK(position >= 0 && position < original.arity());
      positions_of_var_[original.head()[static_cast<size_t>(position)]]
          .push_back(position);
    }
  }

  // `scope`: the monoid head variables still unbound in this sub-problem
  // (with multiplicity via positions); `acc`: the fold of already-bound
  // scope values.
  MonoidStructure Solve(const ConjunctiveQuery& q, const FactSubset& facts,
                        std::set<std::string> scope, PartialValue acc) {
    if (scope.empty()) return SolveScopeDone(q, facts, acc);
    std::vector<std::string> roots = RootVariables(q);
    if (!roots.empty()) {
      return SolveRoot(q, roots[0], facts, std::move(scope), std::move(acc));
    }
    std::vector<std::vector<int>> components = ConnectedComponents(q);
    SHAPCQ_CHECK(components.size() > 1);
    return SolveCrossProduct(q, components, facts, scope, std::move(acc));
  }

  // One pass computing the full structure and every endogenous fact's
  // F-variant. `work` must be the (mutable) database all fact subsets
  // point into; leaf variants are realized as transient flag flips on it.
  // Every flag is restored before returning.
  MonoidLOO SolveLeaveOneOut(const ConjunctiveQuery& q,
                             const FactSubset& facts,
                             std::set<std::string> scope, PartialValue acc,
                             Database* work) {
    loo_db_ = work;
    MonoidLOO out = SolveLOO(q, facts, std::move(scope), std::move(acc));
    loo_db_ = nullptr;
    return out;
  }

  // Specialization for a top-level cross product: evaluates the linear
  // functional <w, sum_k-series of F_f> for every endogenous fact without
  // materializing any per-fact top structure. The functional pushes
  // through the cross combine: <w, series(variant x ctx)> decomposes into
  // BigInt dot products of the variant's rows against weight vectors
  // precomputed from the partner context, one per context key. The
  // weights are integer numerators over the single shared denominator
  // `den` (n! for Shapley, 2^(n-1) for Banzhaf), so the hot loop never
  // normalizes a big-denominator rational. `w_num` must have one weight
  // numerator per coalition size k = 0..m-1 of the padded (m = facts +
  // pad endogenous) leave-one-out problems; `full_out` receives the
  // unpadded full structure. Exact arithmetic throughout: the result
  // equals <w, series(Pad(F_f-structure))> term for term.
  std::unordered_map<FactId, Rational> CrossScoreFunctional(
      const ConjunctiveQuery& q,
      const std::vector<std::vector<int>>& components, const FactSubset& facts,
      const std::set<std::string>& scope, int pad,
      const std::vector<BigInt>& w_num, const BigInt& den, Database* work,
      MonoidStructure* full_out) {
    loo_db_ = work;
    std::vector<MonoidLOO> parts;
    int covered_endogenous = 0;
    for (const std::vector<int>& component : components) {
      ConjunctiveQuery sub_q = q.Project(component, nullptr);
      FactSubset sub = FactsOfQueryRelations(sub_q, facts);
      covered_endogenous += sub.CountEndogenous();
      std::set<std::string> sub_scope;
      for (const std::string& variable : scope) {
        if (sub_q.HasVariable(variable)) sub_scope.insert(variable);
      }
      parts.push_back(
          SolveLOO(sub_q, sub, std::move(sub_scope), PartialValue()));
    }
    loo_db_ = nullptr;
    SHAPCQ_CHECK(covered_endogenous == facts.CountEndogenous());
    MonoidStructure identity;
    identity.num_endogenous = 0;
    identity.rows[PartialValue()] = {BigInt(1)};
    const size_t num_parts = parts.size();
    std::vector<MonoidStructure> prefix(num_parts + 1);
    prefix[0] = identity;
    for (size_t i = 0; i < num_parts; ++i) {
      prefix[i + 1] = CombineCross(prefix[i], parts[i].full);
    }
    std::vector<MonoidStructure> suffix(num_parts + 1);
    suffix[num_parts] = identity;
    for (size_t i = num_parts; i-- > 0;) {
      suffix[i] = CombineCross(parts[i].full, suffix[i + 1]);
    }
    *full_out = prefix[num_parts];
    // Padded weights: <w, PadCounts(row, pad)> = <w_pad, row> with
    // w_pad[j] = sum_e C(pad, e) * w[j+e].
    const size_t variant_width =
        static_cast<size_t>(full_out->num_endogenous);  // m - pad entries
    SHAPCQ_CHECK(w_num.size() == variant_width + static_cast<size_t>(pad));
    std::vector<BigInt> w_pad(variant_width);
    for (size_t j = 0; j < variant_width; ++j) {
      for (int e = 0; e <= pad; ++e) {
        const BigInt& weight = w_num[j + static_cast<size_t>(e)];
        if (weight.is_zero()) continue;
        w_pad[j] += weight * comb_->Binomial(pad, e);
      }
    }
    std::unordered_map<FactId, Rational> out;
    for (size_t i = 0; i < num_parts; ++i) {
      if (parts[i].minus.empty()) continue;
      MonoidStructure ctx = CombineCross(prefix[i], suffix[i + 1]);
      // Per context key rk: B_rk[j] = sum_m w_pad[j+m] * ctx_rk[m] (pure
      // BigInt). Then <w, series(variant x ctx)> =
      //   sum_{lk, rk} fold(lk, rk) * <B_rk, variant_row_lk> / den.
      // Variant keys are a subset of the component's full keys (an
      // exogenous fact only removes realizations), so the fold table
      // covers them.
      const size_t vi = static_cast<size_t>(parts[i].full.num_endogenous);
      std::vector<std::vector<BigInt>> b_weights;
      std::vector<PartialValue> ctx_keys;
      for (const auto& [rk, rrow] : ctx.rows) {
        std::vector<BigInt> b(vi);
        for (size_t m = 0; m < rrow.size(); ++m) {
          if (rrow[m].is_zero()) continue;
          for (size_t j = 0; j < vi; ++j) {
            SHAPCQ_CHECK(j + m < w_pad.size());
            b[j] += w_pad[j + m] * rrow[m];
          }
        }
        ctx_keys.push_back(rk);
        b_weights.push_back(std::move(b));
      }
      // Fold-value table per (component key, context key) pair.
      std::map<PartialValue, std::vector<Rational>> fold_of;
      for (const auto& [lk, lrow] : parts[i].full.rows) {
        (void)lrow;
        std::vector<Rational> folds;
        folds.reserve(ctx_keys.size());
        for (const PartialValue& rk : ctx_keys) {
          PartialValue folded = Fold(kind_, lk, rk);
          SHAPCQ_CHECK(folded.has_value());
          folds.push_back(*folded);
        }
        fold_of.emplace(lk, std::move(folds));
      }
      for (const auto& [f, variant] : parts[i].minus) {
        Rational score;
        for (const auto& [lk, lrow] : variant.rows) {
          auto fit = fold_of.find(lk);
          SHAPCQ_CHECK(fit != fold_of.end());
          for (size_t r = 0; r < b_weights.size(); ++r) {
            BigInt dot;
            const std::vector<BigInt>& b = b_weights[r];
            for (size_t j = 0; j < lrow.size(); ++j) {
              if (!lrow[j].is_zero() && !b[j].is_zero()) {
                dot += b[j] * lrow[j];
              }
            }
            if (!dot.is_zero()) {
              score += fit->second[r] * Rational(std::move(dot));
            }
          }
        }
        out.emplace(f, score / Rational(den));
      }
    }
    return out;
  }

  MonoidStructure Pad(MonoidStructure s, int pad) const {
    if (pad == 0) return s;
    for (auto& [key, row] : s.rows) row = PadCounts(row, pad, comb_);
    s.num_endogenous += pad;
    return s;
  }

  // combine_∪ over disjoint sub-databases: the union's max is a iff both
  // sides ≤ a (or empty) and one side attains a — generalized from the
  // localized Max DP to arbitrary key sets.
  MonoidStructure CombineUnion(const MonoidStructure& lhs,
                               const MonoidStructure& rhs) const {
    MonoidStructure out;
    out.num_endogenous = lhs.num_endogenous + rhs.num_endogenous;
    // Merged ascending key list; PartialValue keys must be homogeneous
    // (all identity or all proper) within a scope, so the std::optional
    // order (nullopt first) never actually mixes.
    std::set<PartialValue> keys;
    for (const auto& [key, row] : lhs.rows) keys.insert(key);
    for (const auto& [key, row] : rhs.rows) keys.insert(key);
    size_t lhs_width = static_cast<size_t>(lhs.num_endogenous) + 1;
    size_t rhs_width = static_cast<size_t>(rhs.num_endogenous) + 1;
    auto row_of = [](const MonoidStructure& s, const PartialValue& key,
                     size_t width) {
      auto it = s.rows.find(key);
      return it != s.rows.end() ? it->second : std::vector<BigInt>(width);
    };
    // Running ≤-prefix (plus empties) per side.
    std::vector<BigInt> lhs_le(lhs_width);
    std::vector<BigInt> rhs_le(rhs_width);
    std::vector<BigInt> lhs_total(lhs_width);
    std::vector<BigInt> rhs_total(rhs_width);
    for (const auto& [key, row] : lhs.rows) {
      for (size_t k = 0; k < lhs_width; ++k) lhs_total[k] += row[k];
    }
    for (const auto& [key, row] : rhs.rows) {
      for (size_t k = 0; k < rhs_width; ++k) rhs_total[k] += row[k];
    }
    // Empty-answer counts.
    std::vector<BigInt> lhs_empty(lhs_width);
    std::vector<BigInt> rhs_empty(rhs_width);
    for (size_t k = 0; k < lhs_width; ++k) {
      lhs_empty[k] = comb_->Binomial(lhs.num_endogenous,
                                     static_cast<int64_t>(k)) -
                     lhs_total[k];
    }
    for (size_t k = 0; k < rhs_width; ++k) {
      rhs_empty[k] = comb_->Binomial(rhs.num_endogenous,
                                     static_cast<int64_t>(k)) -
                     rhs_total[k];
    }
    lhs_le = lhs_empty;
    rhs_le = rhs_empty;
    for (const PartialValue& key : keys) {
      std::vector<BigInt> lhs_eq = row_of(lhs, key, lhs_width);
      std::vector<BigInt> rhs_eq = row_of(rhs, key, rhs_width);
      // lhs_lt = current lhs_le (before adding eq).
      std::vector<BigInt> part1 = Convolve(lhs_eq, rhs_le);   // pre-update
      for (size_t k = 0; k < rhs_width; ++k) rhs_le[k] += rhs_eq[k];
      std::vector<BigInt> part2 = Convolve(lhs_le, rhs_eq);
      for (size_t k = 0; k < lhs_width; ++k) lhs_le[k] += lhs_eq[k];
      std::vector<BigInt> row(static_cast<size_t>(out.num_endogenous) + 1);
      // part1: lhs = key, rhs < key or empty... careful: rhs_le before
      // adding rhs_eq excludes key itself, so part1 = (lhs=key)·(rhs<key or
      // empty) and part2 = (lhs≤key or empty, pre-update incl. key? No:
      // lhs_le updated after part2) — part2 = (lhs<key or empty)·(rhs=key).
      // Missing: (lhs=key)·(rhs=key). Add it explicitly.
      std::vector<BigInt> both = Convolve(lhs_eq, rhs_eq);
      for (size_t k = 0; k < row.size(); ++k) {
        if (k < part1.size()) row[k] += part1[k];
        if (k < part2.size()) row[k] += part2[k];
        if (k < both.size()) row[k] += both[k];
      }
      bool nonzero = false;
      for (const BigInt& v : row) {
        if (!v.is_zero()) {
          nonzero = true;
          break;
        }
      }
      if (nonzero) out.rows[key] = std::move(row);
    }
    return out;
  }

 private:
  // All scope variables bound: every answer of q carries the same value
  // `acc`; the structure is satisfaction counts under that key.
  MonoidStructure SolveScopeDone(const ConjunctiveQuery& q,
                                 const FactSubset& facts,
                                 const PartialValue& acc) {
    std::vector<BigInt> sat = SatisfactionCountsOnSubset(q, facts, comb_);
    MonoidStructure out;
    out.num_endogenous = static_cast<int>(sat.size()) - 1;
    bool nonzero = false;
    for (const BigInt& v : sat) {
      if (!v.is_zero()) {
        nonzero = true;
        break;
      }
    }
    if (nonzero) out.rows[acc] = std::move(sat);
    return out;
  }

  MonoidStructure SolveRoot(const ConjunctiveQuery& q, const std::string& x,
                            const FactSubset& facts,
                            std::set<std::string> scope, PartialValue acc) {
    int total_endogenous = facts.CountEndogenous();
    MonoidStructure result;
    result.num_endogenous = 0;
    int covered_endogenous = 0;
    bool first = true;
    // Binding x folds its value into acc once per occurrence position.
    std::set<std::string> child_scope = scope;
    int x_position_count = 0;
    auto it = positions_of_var_.find(x);
    if (scope.count(x) > 0) {
      SHAPCQ_CHECK(it != positions_of_var_.end());
      x_position_count = static_cast<int>(it->second.size());
      child_scope.erase(x);
    }
    for (const Value& a : CandidateValues(q, x, facts)) {
      FactSubset sub;
      sub.db = facts.db;
      sub.facts = FactsConsistentWith(q, x, a, facts);
      covered_endogenous += sub.CountEndogenous();
      PartialValue child_acc = acc;
      for (int occurrence = 0; occurrence < x_position_count; ++occurrence) {
        child_acc = Fold(kind_, child_acc, a.AsRational());
      }
      MonoidStructure child =
          Solve(q.Bind(x, a), sub, child_scope, std::move(child_acc));
      if (first) {
        result = std::move(child);
        first = false;
      } else {
        result = CombineUnion(result, child);
      }
    }
    return Pad(std::move(result), total_endogenous - covered_endogenous);
  }

  // combine_×: max over the product of (v1 ⊗ v2) = (max v1) ⊗ (max v2)
  // by monotonicity; empty sides empty the product.
  MonoidStructure SolveCrossProduct(
      const ConjunctiveQuery& q, const std::vector<std::vector<int>>& components,
      const FactSubset& facts, const std::set<std::string>& scope,
      PartialValue acc) {
    MonoidStructure result;
    // Identity element: one "answer" with the identity value over zero
    // facts (folded into real components below).
    result.num_endogenous = 0;
    result.rows[PartialValue()] = {BigInt(1)};
    int covered_endogenous = 0;
    for (const std::vector<int>& component : components) {
      ConjunctiveQuery sub_q = q.Project(component, nullptr);
      FactSubset sub = FactsOfQueryRelations(sub_q, facts);
      covered_endogenous += sub.CountEndogenous();
      std::set<std::string> sub_scope;
      for (const std::string& variable : scope) {
        if (sub_q.HasVariable(variable)) sub_scope.insert(variable);
      }
      MonoidStructure child =
          Solve(sub_q, sub, std::move(sub_scope), PartialValue());
      result = CombineCross(result, child);
    }
    SHAPCQ_CHECK(covered_endogenous == facts.CountEndogenous());
    // Fold the externally accumulated value into every key.
    return ShiftByAcc(std::move(result), acc);
  }

  // Folds an externally accumulated value into every key (a monotone
  // shift that preserves key order). Keys may collide (e.g. max(acc, ·)
  // saturating), so rows merge additively.
  MonoidStructure ShiftByAcc(MonoidStructure result,
                             const PartialValue& acc) const {
    if (!acc.has_value()) return result;
    MonoidStructure shifted;
    shifted.num_endogenous = result.num_endogenous;
    for (auto& [key, row] : result.rows) {
      std::vector<BigInt>& target = shifted.rows[Fold(kind_, acc, key)];
      if (target.empty()) {
        target = std::move(row);
      } else {
        for (size_t k = 0; k < target.size(); ++k) target[k] += row[k];
      }
    }
    return shifted;
  }

  MonoidLOO SolveLOO(const ConjunctiveQuery& q, const FactSubset& facts,
                     std::set<std::string> scope, PartialValue acc) {
    if (scope.empty()) return SolveScopeDoneLOO(q, facts, acc);
    std::vector<std::string> roots = RootVariables(q);
    if (!roots.empty()) {
      return SolveRootLOO(q, roots[0], facts, std::move(scope),
                          std::move(acc));
    }
    std::vector<std::vector<int>> components = ConnectedComponents(q);
    SHAPCQ_CHECK(components.size() > 1);
    return SolveCrossProductLOO(q, components, facts, scope, std::move(acc));
  }

  // Leaf: the variant of each fact is a direct re-count with its flag
  // flipped — the one place the leave-one-out pass still recomputes.
  MonoidLOO SolveScopeDoneLOO(const ConjunctiveQuery& q,
                              const FactSubset& facts,
                              const PartialValue& acc) {
    MonoidLOO out;
    out.full = SolveScopeDone(q, facts, acc);
    for (FactId f : facts.EndogenousFacts()) {
      loo_db_->SetEndogenous(f, false);
      out.minus.emplace(f, SolveScopeDone(q, facts, acc));
      loo_db_->SetEndogenous(f, true);
    }
    return out;
  }

  // Root split: each fact lives in exactly one branch (self-join-free
  // consistency is a partition), so its variant combines the shared
  // prefix/suffix siblings with the branch variant. Uncovered endogenous
  // facts are pure padding: one padding row fewer.
  MonoidLOO SolveRootLOO(const ConjunctiveQuery& q, const std::string& x,
                         const FactSubset& facts, std::set<std::string> scope,
                         PartialValue acc) {
    int total_endogenous = facts.CountEndogenous();
    std::set<std::string> child_scope = scope;
    int x_position_count = 0;
    auto it = positions_of_var_.find(x);
    if (scope.count(x) > 0) {
      SHAPCQ_CHECK(it != positions_of_var_.end());
      x_position_count = static_cast<int>(it->second.size());
      child_scope.erase(x);
    }
    std::vector<MonoidLOO> branches;
    int covered_endogenous = 0;
    std::unordered_set<FactId> covered_endo;
    for (const Value& a : CandidateValues(q, x, facts)) {
      FactSubset sub;
      sub.db = facts.db;
      sub.facts = FactsConsistentWith(q, x, a, facts);
      covered_endogenous += sub.CountEndogenous();
      for (FactId f : sub.EndogenousFacts()) covered_endo.insert(f);
      PartialValue child_acc = acc;
      for (int occurrence = 0; occurrence < x_position_count; ++occurrence) {
        child_acc = Fold(kind_, child_acc, a.AsRational());
      }
      branches.push_back(
          SolveLOO(q.Bind(x, a), sub, child_scope, std::move(child_acc)));
    }
    const int pad = total_endogenous - covered_endogenous;
    const size_t num_branches = branches.size();
    // prefix[i] = branches[0..i) folded left (the running accumulator of
    // SolveRoot); suffix[i] = branches[i..B) folded right. A default
    // structure (no rows, zero facts) is the CombineUnion identity.
    std::vector<MonoidStructure> prefix(num_branches + 1);
    for (size_t i = 0; i < num_branches; ++i) {
      prefix[i + 1] = i == 0 ? branches[0].full
                             : CombineUnion(prefix[i], branches[i].full);
    }
    std::vector<MonoidStructure> suffix(num_branches + 1);
    for (size_t i = num_branches; i-- > 0;) {
      suffix[i] = i + 1 == num_branches
                      ? branches[i].full
                      : CombineUnion(branches[i].full, suffix[i + 1]);
    }
    MonoidLOO out;
    out.full = Pad(prefix[num_branches], pad);
    for (size_t i = 0; i < num_branches; ++i) {
      for (auto& [f, variant] : branches[i].minus) {
        MonoidStructure combined =
            i == 0 ? variant : CombineUnion(prefix[i], variant);
        if (i + 1 < num_branches) {
          combined = CombineUnion(combined, suffix[i + 1]);
        }
        out.minus.emplace(f, Pad(std::move(combined), pad));
      }
    }
    if (pad > 0) {
      for (FactId f : facts.EndogenousFacts()) {
        if (covered_endo.count(f) == 0) {
          out.minus.emplace(f, Pad(prefix[num_branches], pad - 1));
        }
      }
    }
    return out;
  }

  // Cross product: prefix/suffix over the components' structures, then
  // the same external-accumulator shift as SolveCrossProduct applied to
  // the full structure and every variant.
  MonoidLOO SolveCrossProductLOO(
      const ConjunctiveQuery& q, const std::vector<std::vector<int>>& components,
      const FactSubset& facts, const std::set<std::string>& scope,
      PartialValue acc) {
    std::vector<MonoidLOO> parts;
    int covered_endogenous = 0;
    for (const std::vector<int>& component : components) {
      ConjunctiveQuery sub_q = q.Project(component, nullptr);
      FactSubset sub = FactsOfQueryRelations(sub_q, facts);
      covered_endogenous += sub.CountEndogenous();
      std::set<std::string> sub_scope;
      for (const std::string& variable : scope) {
        if (sub_q.HasVariable(variable)) sub_scope.insert(variable);
      }
      parts.push_back(
          SolveLOO(sub_q, sub, std::move(sub_scope), PartialValue()));
    }
    SHAPCQ_CHECK(covered_endogenous == facts.CountEndogenous());
    MonoidStructure identity;
    identity.num_endogenous = 0;
    identity.rows[PartialValue()] = {BigInt(1)};
    const size_t num_parts = parts.size();
    std::vector<MonoidStructure> prefix(num_parts + 1);
    prefix[0] = identity;
    for (size_t i = 0; i < num_parts; ++i) {
      prefix[i + 1] = CombineCross(prefix[i], parts[i].full);
    }
    std::vector<MonoidStructure> suffix(num_parts + 1);
    suffix[num_parts] = identity;
    for (size_t i = num_parts; i-- > 0;) {
      suffix[i] = CombineCross(parts[i].full, suffix[i + 1]);
    }
    MonoidLOO out;
    out.full = ShiftByAcc(prefix[num_parts], acc);
    for (size_t i = 0; i < num_parts; ++i) {
      for (auto& [f, variant] : parts[i].minus) {
        out.minus.emplace(
            f, ShiftByAcc(CombineCross(CombineCross(prefix[i], variant),
                                       suffix[i + 1]),
                          acc));
      }
    }
    return out;
  }

  MonoidStructure CombineCross(const MonoidStructure& lhs,
                               const MonoidStructure& rhs) const {
    MonoidStructure out;
    out.num_endogenous = lhs.num_endogenous + rhs.num_endogenous;
    for (const auto& [lkey, lrow] : lhs.rows) {
      for (const auto& [rkey, rrow] : rhs.rows) {
        PartialValue key = Fold(kind_, lkey, rkey);
        std::vector<BigInt> product = Convolve(lrow, rrow);
        std::vector<BigInt>& row = out.rows[key];
        row.resize(static_cast<size_t>(out.num_endogenous) + 1);
        for (size_t k = 0; k < product.size(); ++k) row[k] += product[k];
      }
    }
    // Prune all-zero rows and fix row widths.
    for (auto it = out.rows.begin(); it != out.rows.end();) {
      it->second.resize(static_cast<size_t>(out.num_endogenous) + 1);
      bool nonzero = false;
      for (const BigInt& v : it->second) {
        if (!v.is_zero()) {
          nonzero = true;
          break;
        }
      }
      it = nonzero ? std::next(it) : out.rows.erase(it);
    }
    return out;
  }

  MonoidKind kind_;
  Combinatorics* comb_;
  std::unordered_map<std::string, std::vector<int>> positions_of_var_;
  // Set only during SolveLeaveOneOut: the mutable database the fact
  // subsets point into, used for transient leaf flag flips.
  Database* loo_db_ = nullptr;
};

// The value-negated copy of `db` realizing the Min → Max duality:
// Min(⊗ values) = −Max(⊗' negated values), where negating every input at
// the monoid positions turns kPlus into kPlus and kMin into kMax. Fact
// order and endogenous flags are preserved. Tombstoned facts are skipped,
// so the copy is dense: when `db` has tombstones the copy's FactId k is
// the k-th live fact of `db` (callers remap scores back by that rank).
Database NegateMonoidPositions(const ConjunctiveQuery& q,
                               const std::vector<int>& positions,
                               const Database& db) {
  Database negated;
  for (FactId id = 0; id < db.num_facts(); ++id) {
    if (!db.live(id)) continue;
    const Fact& fact = db.fact(id);
    Tuple args = fact.args;
    int atom_index = -1;
    for (int i = 0; i < static_cast<int>(q.atoms().size()); ++i) {
      if (q.atoms()[static_cast<size_t>(i)].relation == fact.relation) {
        atom_index = i;
        break;
      }
    }
    if (atom_index >= 0) {
      const Atom& atom = q.atoms()[static_cast<size_t>(atom_index)];
      for (int position : positions) {
        const std::string& variable =
            q.head()[static_cast<size_t>(position)];
        for (int atom_pos : atom.PositionsOf(variable)) {
          Value& v = args[static_cast<size_t>(atom_pos)];
          if (v.kind() == Value::Kind::kInt) {
            v = Value(-v.AsInt());
          } else if (v.kind() == Value::Kind::kDouble) {
            v = Value(-v.AsDouble());
          }
        }
      }
    }
    negated.AddFact(fact.relation, std::move(args), fact.endogenous);
  }
  return negated;
}

// sum_k series of a padded MonoidStructure: Σ_rows key · count over the
// ascending key map — the exact accumulation order of MonoidMinMaxSumK's
// tail, shared with the batched scorer so both produce identical bits.
SumKSeries SeriesFromMonoidStructure(const MonoidStructure& top) {
  SumKSeries series(static_cast<size_t>(top.num_endogenous) + 1);
  for (const auto& [key, row] : top.rows) {
    SHAPCQ_CHECK(key.has_value());  // every scope position binds by a leaf
    for (size_t k = 0; k < series.size(); ++k) {
      if (!row[k].is_zero()) series[k] += *key * Rational(row[k]);
    }
  }
  return series;
}

}  // namespace

ValueFunctionPtr MakeMonoidTau(MonoidKind kind, std::vector<int> positions) {
  SHAPCQ_CHECK(!positions.empty());
  std::string name;
  switch (kind) {
    case MonoidKind::kPlus:
      name = "plus";
      break;
    case MonoidKind::kMax:
      name = "max";
      break;
    case MonoidKind::kMin:
      name = "min";
      break;
  }
  std::vector<int> captured = positions;
  return MakeCallbackTau(
      [kind, captured](const Tuple& t) {
        PartialValue acc;
        for (int position : captured) {
          acc = Fold(kind, acc,
                     t[static_cast<size_t>(position)].AsRational());
        }
        return *acc;
      },
      std::move(positions), "monoid-" + name);
}

StatusOr<SumKSeries> MonoidMinMaxSumK(const ConjunctiveQuery& q,
                                      MonoidKind kind,
                                      std::vector<int> positions, bool is_max,
                                      const Database& db) {
  if (positions.empty()) {
    return InvalidArgumentError("monoid value function needs positions");
  }
  if (q.HasSelfJoin()) {
    return UnsupportedError("monoid Min/Max requires a self-join-free CQ");
  }
  if (!IsAllHierarchical(q)) {
    return UnsupportedError("monoid Min/Max requires an all-hierarchical CQ: " +
                            q.ToString());
  }
  if (is_max && kind == MonoidKind::kMin) {
    return UnsupportedError("Max aggregation needs a non-decreasing monoid");
  }
  if (!is_max && kind == MonoidKind::kMax) {
    return UnsupportedError("Min aggregation needs a non-increasing monoid");
  }
  if (!is_max) {
    // Min(⊗ values) = −Max(⊗' negated values): solve the dual Max problem
    // over the value-negated database and negate the series.
    MonoidKind dual = kind == MonoidKind::kMin ? MonoidKind::kMax : kind;
    Database negated = NegateMonoidPositions(q, positions, db);
    StatusOr<SumKSeries> series =
        MonoidMinMaxSumK(q, dual, std::move(positions), /*is_max=*/true,
                         negated);
    if (!series.ok()) return series.status();
    for (Rational& value : *series) value = -value;
    return series;
  }
  // Max path.
  Combinatorics comb;
  MonoidSolver solver(q, kind, positions, &comb);
  RelevanceSplit split = SplitRelevant(q, AllFacts(db));
  std::set<std::string> scope;
  for (int position : positions) {
    SHAPCQ_CHECK(position >= 0 && position < q.arity());
    scope.insert(q.head()[static_cast<size_t>(position)]);
  }
  FactSubset relevant = split.relevant;
  MonoidStructure top =
      solver.Solve(q, relevant, std::move(scope), std::nullopt);
  top = solver.Pad(std::move(top), split.irrelevant_endogenous);
  int n = db.num_endogenous();
  SHAPCQ_CHECK(top.num_endogenous == n);
  return SeriesFromMonoidStructure(top);
}

StatusOr<std::vector<std::pair<FactId, Rational>>> MinMaxMonoidScoreAll(
    const ConjunctiveQuery& q, MonoidKind kind, std::vector<int> positions,
    bool is_max, const Database& db, const SolverOptions& options) {
  // The gates of MonoidMinMaxSumK, in the same order, so the batch fails
  // exactly where the per-fact path would.
  if (positions.empty()) {
    return InvalidArgumentError("monoid value function needs positions");
  }
  if (q.HasSelfJoin()) {
    return UnsupportedError("monoid Min/Max requires a self-join-free CQ");
  }
  if (!IsAllHierarchical(q)) {
    return UnsupportedError("monoid Min/Max requires an all-hierarchical CQ: " +
                            q.ToString());
  }
  if (is_max && kind == MonoidKind::kMin) {
    return UnsupportedError("Max aggregation needs a non-decreasing monoid");
  }
  if (!is_max && kind == MonoidKind::kMax) {
    return UnsupportedError("Min aggregation needs a non-increasing monoid");
  }
  if (!is_max) {
    // Min duality, once for the whole batch: the per-fact Min score is
    // the negated Max score over the negated database (the score
    // combination is linear in the series, and fact ids line up 1:1).
    MonoidKind dual = kind == MonoidKind::kMin ? MonoidKind::kMax : kind;
    Database negated = NegateMonoidPositions(q, positions, db);
    StatusOr<std::vector<std::pair<FactId, Rational>>> scores =
        MinMaxMonoidScoreAll(q, dual, std::move(positions), /*is_max=*/true,
                             negated, options);
    if (!scores.ok()) return scores.status();
    for (auto& [fact, score] : *scores) score = -score;
    if (db.has_tombstones()) {
      // The negated copy is dense; map its ids back to the original id
      // space by endogenous rank (order is preserved).
      const std::vector<FactId> endo = db.EndogenousFacts();
      SHAPCQ_CHECK(endo.size() == scores->size());
      for (size_t i = 0; i < endo.size(); ++i) (*scores)[i].first = endo[i];
    }
    return scores;
  }
  // Max path. Equivalence with per-fact ScoreViaSumK(MonoidMinMaxSumK):
  //  * F_f structures come from one leave-one-out DP pass over the
  //    relevant subset — exact subset counting, identical integers to a
  //    from-scratch solve of F_f.
  //  * G_f follows from the partition identity
  //      sum_k(A, D) = sum_k(A, G_f) + sum_{k−1}(A, F_f)
  //    (split the k-subsets of D_n by membership of f): exact rational
  //    subtraction on canonical forms, so no G solve runs at all.
  //  * Facts irrelevant to Q leave every answer set unchanged, so F and G
  //    series coincide and the score is an exact 0.
  const std::vector<FactId> endo = db.EndogenousFacts();
  const int n = db.num_endogenous();
  if (n == 0) return std::vector<std::pair<FactId, Rational>>{};
  std::set<std::string> scope;
  for (int position : positions) {
    SHAPCQ_CHECK(position >= 0 && position < q.arity());
    scope.insert(q.head()[static_cast<size_t>(position)]);
  }
  RelevanceSplit split = SplitRelevantIndexed(q, db);
  std::vector<char> is_relevant(static_cast<size_t>(db.num_facts()), 0);
  bool any_relevant_endogenous = false;
  for (FactId id : split.relevant.facts) {
    is_relevant[static_cast<size_t>(id)] = 1;
    if (db.fact(id).endogenous) any_relevant_endogenous = true;
  }
  std::vector<std::pair<FactId, Rational>> all_zero(endo.size());
  for (size_t i = 0; i < endo.size(); ++i) all_zero[i] = {endo[i], Rational()};
  if (!any_relevant_endogenous) return all_zero;
  Database work = db;
  Combinatorics comb;
  MonoidSolver solver(q, kind, positions, &comb);
  FactSubset relevant;
  relevant.db = &work;
  relevant.facts = split.relevant.facts;
  // Top-level cross product (the monoid engine's motivating shape): the
  // per-fact series never materialize — the score functional pushes
  // through the cross combine, so each fact is an O(keys · width) inner
  // product.
  if (RootVariables(q).empty()) {
    std::vector<std::vector<int>> components = ConnectedComponents(q);
    if (components.size() > 1) {
      // Coefficients of the closed score form: with G_f eliminated by the
      // partition identity, score(f) = Σ_k w[k]·F_f[k] − Σ_k c_k·S[k]
      // where c_k is the Shapley (k!(n−1−k)!/n!) or Banzhaf (2^{1−n})
      // coalition weight and w[k] = c_k + c_{k+1}.
      std::vector<Rational> score_coeff(static_cast<size_t>(n));
      for (int k = 0; k < n; ++k) {
        score_coeff[static_cast<size_t>(k)] =
            options.score == ScoreKind::kShapley
                ? comb.ShapleyCoefficient(n, k)
                : (n > 1 ? Rational(BigInt(1), BigInt::TwoPow(
                                                   static_cast<uint64_t>(
                                                       n - 1)))
                         : Rational(1));
      }
      // Integer weight numerators over one shared denominator, so the
      // functional's hot loop stays in BigInt: Shapley
      // c_k = k!(n−1−k)!/n!, Banzhaf c_k = 2^{1−n}.
      const BigInt den = options.score == ScoreKind::kShapley
                             ? comb.Factorial(n)
                             : (n > 1 ? BigInt::TwoPow(
                                            static_cast<uint64_t>(n - 1))
                                      : BigInt(1));
      std::vector<BigInt> w_num(static_cast<size_t>(n));
      for (int k = 0; k < n; ++k) {
        if (options.score == ScoreKind::kShapley) {
          w_num[static_cast<size_t>(k)] =
              comb.Factorial(k) * comb.Factorial(n - 1 - k);
          if (k + 1 < n) {
            w_num[static_cast<size_t>(k)] +=
                comb.Factorial(k + 1) * comb.Factorial(n - 2 - k);
          }
        } else {
          w_num[static_cast<size_t>(k)] = BigInt(k + 1 < n ? 2 : 1);
        }
      }
      MonoidStructure full_unpadded;
      std::unordered_map<FactId, Rational> functional =
          solver.CrossScoreFunctional(q, components, relevant, scope,
                                      split.irrelevant_endogenous, w_num, den,
                                      &work, &full_unpadded);
      MonoidStructure full = solver.Pad(std::move(full_unpadded),
                                        split.irrelevant_endogenous);
      SHAPCQ_CHECK(full.num_endogenous == n);
      const SumKSeries full_series = SeriesFromMonoidStructure(full);
      Rational shared;  // Σ_k c_k·S[k], identical for every fact
      for (int k = 0; k < n; ++k) {
        if (!full_series[static_cast<size_t>(k)].is_zero()) {
          shared += score_coeff[static_cast<size_t>(k)] *
                    full_series[static_cast<size_t>(k)];
        }
      }
      std::vector<std::pair<FactId, Rational>> scores(endo.size());
      for (size_t i = 0; i < endo.size(); ++i) {
        const FactId f = endo[i];
        if (!is_relevant[static_cast<size_t>(f)]) {
          scores[i] = {f, Rational()};
          continue;
        }
        auto it = functional.find(f);
        SHAPCQ_CHECK(it != functional.end());
        scores[i] = {f, it->second - shared};
      }
      return scores;
    }
  }
  // General shape: one leave-one-out pass over the relevant subset.
  MonoidLOO loo =
      solver.SolveLeaveOneOut(q, relevant, scope, std::nullopt, &work);
  MonoidStructure full =
      solver.Pad(std::move(loo.full), split.irrelevant_endogenous);
  SHAPCQ_CHECK(full.num_endogenous == n);
  const SumKSeries full_series = SeriesFromMonoidStructure(full);
  // Per-fact assembly shards over contiguous fact chunks (worker-private
  // binomial caches; slot i holds fact endo[i], so the fan-out is
  // deterministic and thread-count invariant).
  std::vector<std::pair<FactId, Rational>> scores(endo.size());
  const int num_chunks =
      EffectiveThreadCount(options.num_threads, static_cast<int64_t>(n));
  ParallelFor(
      num_chunks,
      [&](int64_t c) {
        const auto [chunk_begin, chunk_end] =
            ChunkBounds(static_cast<int64_t>(endo.size()), num_chunks, c);
        const size_t begin = static_cast<size_t>(chunk_begin);
        const size_t end = static_cast<size_t>(chunk_end);
        Combinatorics worker_comb;
        for (size_t i = begin; i < end; ++i) {
          const FactId f = endo[i];
          if (!is_relevant[static_cast<size_t>(f)]) {
            scores[i] = {f, Rational()};
            continue;
          }
          auto it = loo.minus.find(f);
          SHAPCQ_CHECK(it != loo.minus.end());
          MonoidStructure padded;
          padded.num_endogenous =
              it->second.num_endogenous + split.irrelevant_endogenous;
          for (const auto& [key, row] : it->second.rows) {
            padded.rows[key] =
                split.irrelevant_endogenous == 0
                    ? row
                    : PadCounts(row, split.irrelevant_endogenous,
                                &worker_comb);
          }
          SHAPCQ_CHECK(padded.num_endogenous == n - 1);
          SumKSeries series_f = SeriesFromMonoidStructure(padded);
          SumKSeries series_g =
              RemovedSeriesFromIdentity(full_series, series_f);
          scores[i] = {f, ScoreFromSumK(series_f, series_g, options.score)};
        }
      },
      num_chunks);
  return scores;
}

}  // namespace shapcq
