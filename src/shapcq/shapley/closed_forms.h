// Closed-form Shapley values for single-relation queries Q(x⃗) <- R(x⃗)
// with all facts endogenous (Propositions 4.2, 4.4 and 5.2).
//
// These are both fast paths and independent test oracles for the generic
// dynamic programs. Note on Prop. 5.2: the statement in the paper's body
// shows "+" on the second term, but the derivation in Appendix D (and the
// efficiency axiom) give "−"; we implement the derived formula
//
//   Shapley(R(t), Avg ∘ τ ∘ Q)
//     = H(n)/n · τ(t) − (H(n) − 1)/(n(n−1)) · Σ_{t' ≠ t} τ(t').

#ifndef SHAPCQ_SHAPLEY_CLOSED_FORMS_H_
#define SHAPCQ_SHAPLEY_CLOSED_FORMS_H_

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/util/rational.h"
#include "shapcq/util/status.h"

namespace shapcq {

// True iff `a` has the shape required by the closed forms: a single atom
// whose terms are distinct variables listed verbatim in the head, and all
// facts of `db` are endogenous facts of that relation.
bool ClosedFormApplies(const AggregateQuery& a, const Database& db);

// The database-independent part of ClosedFormApplies: a single atom whose
// terms are distinct variables listed verbatim in the head.
bool ClosedFormQueryShape(const ConjunctiveQuery& q);

// Proposition 4.2: Shapley(R(t), CDist ∘ τ ∘ Q) = 1/#{t' : τ(t') = τ(t)}.
StatusOr<Rational> ClosedFormCountDistinct(const AggregateQuery& a,
                                           const Database& db, FactId fact);

// Proposition 4.4 (Max) and its negation-dual for Min.
StatusOr<Rational> ClosedFormMax(const AggregateQuery& a, const Database& db,
                                 FactId fact);
StatusOr<Rational> ClosedFormMin(const AggregateQuery& a, const Database& db,
                                 FactId fact);

// Proposition 5.2 (Avg), as derived in the appendix (see header comment).
StatusOr<Rational> ClosedFormAvg(const AggregateQuery& a, const Database& db,
                                 FactId fact);

class EngineRegistry;

// Registers the "closed-form/single-relation" provider: a direct per-fact
// fast path (Shapley only) tried before the generic dynamic programs on
// single-relation all-endogenous instances.
void RegisterClosedFormEngines(EngineRegistry& registry);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_CLOSED_FORMS_H_
