// Avg and Qnt_q over q-hierarchical CQs (Section 5.1, Appendix D).
//
// Instantiates the generic algorithm with the quintuple data structure
//
//   P[Q', D'](a, k, ℓ<, ℓ=, ℓ>) = #{ E ∈ (D'_n choose k) :
//       the bag (τ ∘ Q')(E ∪ D'_x) has exactly ℓ= copies of a,
//       ℓ< elements < a and ℓ> elements > a },
//
// for anchors a over the τ-values of the full query's answers. Free root
// variables keep the answer sets of the slices disjoint (the quintuples
// add); cross products multiply the bag by the partner's answer count; the
// "non-R" side uses answer-count distributions (answer_counts.h). The final
// series follow the paper's formulas:
//
//   sum_k(Avg)   = Σ_a Σ_ℓ  a · ℓ= / (ℓ< + ℓ= + ℓ>) · P(a, k, ℓ)
//   sum_k(Qnt_q) = Σ_a Σ_ℓ  a · f_q(ℓ<, ℓ=, ℓ>)      · P(a, k, ℓ).

#ifndef SHAPCQ_SHAPLEY_AVG_QUANTILE_H_
#define SHAPCQ_SHAPLEY_AVG_QUANTILE_H_

#include <utility>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

// sum_k series for A = Avg ∘ τ ∘ Q or Qnt_q ∘ τ ∘ Q. Returns UNSUPPORTED
// unless the query is self-join-free and q-hierarchical and τ is localized
// on some atom of Q. The quintuple counts run on CountValue (fixed-width
// fast path, escaping to BigInt on overflow); arithmetic is exact in
// either representation, so results are bitwise-identical to the BigInt
// oracle below.
StatusOr<SumKSeries> AvgQuantileSumK(const AggregateQuery& a,
                                     const Database& db,
                                     const SolverOptions& options = {});

// The same DP instantiated on pure BigInt counts — the differential oracle
// for the CountValue production path. Tests compare the two series element
// for element; production callers should use AvgQuantileSumK.
StatusOr<SumKSeries> AvgQuantileSumKBigInt(const AggregateQuery& a,
                                           const Database& db,
                                           const SolverOptions& options = {});

// Batched all-facts scorer with the same gates as AvgQuantileSumK. The
// reduction state shared across facts — the anchor vector, the relevance
// split, the binomial caches — is built once; each fact's derived
// databases F/G are an endogenous-flag flip and a subset drop on a
// worker-private copy, and query-irrelevant facts score an exact 0 without
// running the quintuple DP. Shards over options.num_threads
// (options.score selects Shapley/Banzhaf); values are bitwise-identical
// to per-fact ScoreViaSumK for every thread count.
StatusOr<std::vector<std::pair<FactId, Rational>>> AvgQuantileScoreAll(
    const AggregateQuery& a, const Database& db,
    const SolverOptions& options = {});

// The paper's f_q(ℓ<, ℓ=, ℓ>): the contribution (0, 1/2 or 1) of the anchor
// to the q-quantile of a bag with that profile. Exposed for testing.
Rational QuantileContribution(const Rational& q, int64_t less, int64_t equal,
                              int64_t greater);

class EngineRegistry;

// Registers the "avg-quantile/q-hierarchical-dp" provider (with the
// batched scorer).
void RegisterAvgQuantileEngine(EngineRegistry& registry);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_AVG_QUANTILE_H_
