#include "shapcq/shapley/game.h"

#include <set>

#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

CooperativeGame::CooperativeGame(int num_players,
                                 std::function<Rational(uint64_t)> utility)
    : num_players_(num_players), utility_(std::move(utility)) {
  SHAPCQ_CHECK(num_players >= 0);
  empty_value_ = utility_(0);
}

Rational CooperativeGame::Utility(uint64_t coalition) const {
  return utility_(coalition) - empty_value_;
}

StatusOr<Rational> CooperativeGame::Score(int player, ScoreKind kind) const {
  if (num_players_ > 26) {
    return UnsupportedError("game enumeration limited to 26 players");
  }
  SHAPCQ_CHECK(player >= 0 && player < num_players_);
  Combinatorics comb;
  uint64_t player_bit = uint64_t{1} << player;
  Rational score;
  for (uint64_t mask = 0; mask < (uint64_t{1} << num_players_); ++mask) {
    if (mask & player_bit) continue;
    Rational delta = Utility(mask | player_bit) - Utility(mask);
    if (delta.is_zero()) continue;
    switch (kind) {
      case ScoreKind::kShapley:
        score += comb.ShapleyCoefficient(num_players_,
                                         __builtin_popcountll(mask)) *
                 delta;
        break;
      case ScoreKind::kBanzhaf:
        score += delta;
        break;
    }
  }
  if (kind == ScoreKind::kBanzhaf && num_players_ > 1) {
    score /= Rational(BigInt::TwoPow(static_cast<uint64_t>(num_players_ - 1)));
  }
  return score;
}

StatusOr<std::vector<Rational>> CooperativeGame::AllScores(
    ScoreKind kind) const {
  std::vector<Rational> scores;
  scores.reserve(static_cast<size_t>(num_players_));
  for (int p = 0; p < num_players_; ++p) {
    StatusOr<Rational> score = Score(p, kind);
    if (!score.ok()) return score.status();
    scores.push_back(std::move(score).value());
  }
  return scores;
}

StatusOr<bool> CooperativeGame::SatisfiesEfficiency() const {
  StatusOr<std::vector<Rational>> scores = AllScores();
  if (!scores.ok()) return scores.status();
  Rational total;
  for (const Rational& score : *scores) total += score;
  uint64_t grand = num_players_ == 0
                       ? 0
                       : (uint64_t{1} << num_players_) - 1;
  return total == Utility(grand);
}

StatusOr<bool> CooperativeGame::IsNullPlayer(int player) const {
  if (num_players_ > 26) {
    return UnsupportedError("game enumeration limited to 26 players");
  }
  uint64_t player_bit = uint64_t{1} << player;
  for (uint64_t mask = 0; mask < (uint64_t{1} << num_players_); ++mask) {
    if (mask & player_bit) continue;
    if (Utility(mask | player_bit) != Utility(mask)) return false;
  }
  return true;
}

StatusOr<bool> CooperativeGame::AreSymmetric(int p, int q) const {
  if (num_players_ > 26) {
    return UnsupportedError("game enumeration limited to 26 players");
  }
  SHAPCQ_CHECK(p != q);
  uint64_t p_bit = uint64_t{1} << p;
  uint64_t q_bit = uint64_t{1} << q;
  for (uint64_t mask = 0; mask < (uint64_t{1} << num_players_); ++mask) {
    if ((mask & p_bit) || (mask & q_bit)) continue;
    if (Utility(mask | p_bit) != Utility(mask | q_bit)) return false;
  }
  return true;
}

CooperativeGame SetCoverGame(int universe_size,
                             const std::vector<std::vector<int>>& sets) {
  SHAPCQ_CHECK(universe_size >= 1);
  std::vector<std::vector<int>> sets_copy = sets;
  int n = static_cast<int>(sets.size());
  return CooperativeGame(
      n, [universe_size, sets_copy](uint64_t coalition) {
        std::set<int> covered;
        for (size_t s = 0; s < sets_copy.size(); ++s) {
          if (coalition & (uint64_t{1} << s)) {
            covered.insert(sets_copy[s].begin(), sets_copy[s].end());
          }
        }
        return static_cast<int>(covered.size()) == universe_size
                   ? Rational(1)
                   : Rational(0);
      });
}

}  // namespace shapcq
