#include "shapcq/shapley/count_distinct.h"

#include <set>

#include "shapcq/agg/value_function.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/shapley/dp_util.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/shapley/sum_count.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

StatusOr<SumKSeries> CountDistinctSumK(const AggregateQuery& a,
                                       const Database& db,
                                       const SolverOptions& options) {
  if (a.alpha.kind() != AggKind::kCountDistinct) {
    return UnsupportedError("CountDistinctSumK handles CountDistinct only");
  }
  if (a.query.HasSelfJoin()) {
    return UnsupportedError("CountDistinct requires a self-join-free CQ");
  }
  if (!IsAllHierarchical(a.query)) {
    return UnsupportedError("CountDistinct requires an all-hierarchical CQ: " +
                            a.query.ToString());
  }
  std::vector<int> localization = LocalizationAtoms(a.query, *a.tau);
  if (localization.empty()) {
    return UnsupportedError("value function is not localized on any atom of " +
                            a.query.ToString());
  }
  const std::string& relation =
      a.query.atoms()[static_cast<size_t>(localization[0])].relation;
  const int atom_index = localization[0];

  // The distinct values actually realized by answers.
  std::set<Rational> values;
  for (const Tuple& answer : Evaluate(a.query, db)) {
    values.insert(a.tau->Evaluate(answer));
  }

  Combinatorics comb;
  int n = db.num_endogenous();
  SumKSeries series(static_cast<size_t>(n) + 1);
  ConjunctiveQuery q_bool = a.query.AsBoolean();
  for (const Rational& value : values) {
    // D_value: remove localization-relation facts with a different τ-value.
    Database d_value;
    int removed_endogenous = 0;
    for (FactId id = 0; id < db.num_facts(); ++id) {
      if (!db.live(id)) continue;
      const Fact& fact = db.fact(id);
      if (fact.relation == relation &&
          EvaluateTauOnFact(a.query, atom_index, *a.tau, fact.args) != value) {
        if (fact.endogenous) ++removed_endogenous;
        continue;
      }
      d_value.AddFact(fact.relation, fact.args, fact.endogenous);
    }
    StatusOr<std::vector<BigInt>> counts = SatisfactionCounts(q_bool, d_value);
    if (!counts.ok()) return counts.status();
    std::vector<BigInt> padded =
        PadCounts(*counts, removed_endogenous, &comb);
    SHAPCQ_CHECK(static_cast<int>(padded.size()) == n + 1);
    for (int k = 0; k <= n; ++k) {
      series[static_cast<size_t>(k)] += Rational(padded[static_cast<size_t>(k)]);
    }
  }
  return series;
}

void RegisterCountDistinctEngines(EngineRegistry& registry) {
  EngineProvider primary;
  primary.name = "count-distinct/boolean-reduction";
  primary.priority = 10;
  primary.applies = [](const AggregateQuery& a) {
    return a.alpha.kind() == AggKind::kCountDistinct;
  };
  primary.sum_k = CountDistinctSumK;
  registry.Register(std::move(primary));

  // Section 7.1: with a unary head and an injective tau, distinct answers
  // have distinct values, so CDist coincides with Count -- which is
  // tractable on the strictly larger exists-hierarchical class.
  EngineProvider rewrite;
  rewrite.name = "count-distinct/injective-count-rewrite";
  rewrite.priority = 20;
  rewrite.applies = [](const AggregateQuery& a) {
    return a.alpha.kind() == AggKind::kCountDistinct && a.query.arity() == 1 &&
           a.tau->is_injective() && a.tau->DependsOn() == std::vector<int>{0};
  };
  rewrite.sum_k = [](const AggregateQuery& a, const Database& db,
                     const SolverOptions& options) {
    AggregateQuery as_count{a.query, a.tau, AggregateFunction::Count()};
    return SumCountSumK(as_count, db, options);
  };
  rewrite.score_all = [](const AggregateQuery& a, const Database& db,
                         const SolverOptions& options) {
    AggregateQuery as_count{a.query, a.tau, AggregateFunction::Count()};
    return SumCountScoreAll(as_count, db, options);
  };
  registry.Register(std::move(rewrite));
}

}  // namespace shapcq
