#include "shapcq/shapley/avg_quantile.h"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "shapcq/agg/value_function.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/shapley/answer_counts.h"
#include "shapcq/shapley/dp_util.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/util/fixed_int.h"
#include "shapcq/util/parallel.h"

namespace shapcq {

namespace {

// The quintuple DP runs on either counting representation behind this
// interface: CountValue (fixed-width, escaping to BigInt on overflow) is
// the production path, and the pure-BigInt instantiation is retained as
// the differential oracle — both are exact, so their series agree bitwise
// (tests compare them element for element).
template <typename Count>
struct CountOps;

template <>
struct CountOps<BigInt> {
  static BigInt FromBigInt(const BigInt& value) { return value; }
  static void AddProduct(BigInt& acc, const BigInt& a, const BigInt& b) {
    acc += a * b;
  }
  // a · b with a BigInt partner count (the non-R side's distributions stay
  // BigInt in both instantiations).
  static void AddProductBig(BigInt& acc, const BigInt& a, const BigInt& b) {
    acc += a * b;
  }
  static BigInt Binomial(Combinatorics* comb, int64_t n, int64_t k) {
    return comb->Binomial(n, k);
  }
  static BigInt ToBigInt(const BigInt& value) { return value; }
};

template <>
struct CountOps<CountValue> {
  static CountValue FromBigInt(const BigInt& value) {
    return CountValue(value);
  }
  static void AddProduct(CountValue& acc, const CountValue& a,
                         const CountValue& b) {
    acc.AddProduct(a, b);
  }
  static void AddProductBig(CountValue& acc, const CountValue& a,
                            const BigInt& b) {
    acc.AddProduct(a, b);
  }
  static CountValue Binomial(Combinatorics* comb, int64_t n, int64_t k) {
    return comb->CountRow(n)[static_cast<size_t>(k)];
  }
  static BigInt ToBigInt(const CountValue& value) { return value.ToBigInt(); }
};

// (k, ℓ<, ℓ=, ℓ>) -> count, sparse.
template <typename Count>
using QuintupleMap = std::map<std::array<int, 4>, Count>;

// The R-side structure: one quintuple map per anchor.
template <typename Count>
struct AvgQntStructure {
  std::vector<QuintupleMap<Count>> by_anchor;
  int num_endogenous = 0;
};

template <typename Count>
class AvgQntSolver {
 public:
  using Ops = CountOps<Count>;
  using Structure = AvgQntStructure<Count>;

  AvgQntSolver(const ConjunctiveQuery& original, const ValueFunction& tau,
               const std::string& relation, std::vector<Rational> anchors,
               Combinatorics* comb)
      : tau_(tau), relation_(relation), anchors_(std::move(anchors)),
        comb_(comb), head_arity_(original.arity()) {
    for (int position = 0; position < original.arity(); ++position) {
      positions_of_head_var_[original.head()[static_cast<size_t>(position)]]
          .push_back(position);
    }
    depends_on_ = tau_.DependsOn();
  }

  using PartialHead = std::vector<std::optional<Value>>;

  PartialHead EmptyHead() const {
    return PartialHead(static_cast<size_t>(head_arity_));
  }

  Structure Solve(const ConjunctiveQuery& q, const FactSubset& facts,
                  const PartialHead& head) {
    SHAPCQ_CHECK(AtomIndexOf(q, relation_) >= 0);
    if (AllDependedBound(head)) return SolveValueFixed(q, facts, head);
    // A depended head variable is still unbound, so q is non-Boolean; pick a
    // free root variable if connected, else split the cross product.
    std::vector<std::string> free_roots;
    for (const std::string& root : RootVariables(q)) {
      if (q.IsFreeVariable(root)) free_roots.push_back(root);
    }
    if (!free_roots.empty()) return SolveRoot(q, free_roots[0], facts, head);
    std::vector<std::vector<int>> components = ConnectedComponents(q);
    SHAPCQ_CHECK(components.size() > 1 &&
                 "q-hierarchy guarantees a free root for connected "
                 "non-Boolean sub-queries");
    return SolveCrossProduct(q, components, facts, head);
  }

  Structure Pad(Structure s, int pad) const {
    if (pad == 0) return s;
    std::vector<Count> row;
    row.reserve(static_cast<size_t>(pad) + 1);
    for (int extra = 0; extra <= pad; ++extra) {
      row.push_back(Ops::Binomial(comb_, pad, extra));
    }
    for (QuintupleMap<Count>& per_anchor : s.by_anchor) {
      QuintupleMap<Count> padded;
      for (const auto& [key, count] : per_anchor) {
        for (int extra = 0; extra <= pad; ++extra) {
          Ops::AddProduct(
              padded[{key[0] + extra, key[1], key[2], key[3]}], count,
              row[static_cast<size_t>(extra)]);
        }
      }
      per_anchor = std::move(padded);
    }
    s.num_endogenous += pad;
    return s;
  }

 private:
  bool AllDependedBound(const PartialHead& head) const {
    for (int position : depends_on_) {
      if (!head[static_cast<size_t>(position)].has_value()) return false;
    }
    return true;
  }

  int AnchorIndexOf(const Rational& value) const {
    auto it = std::lower_bound(anchors_.begin(), anchors_.end(), value);
    if (it == anchors_.end() || *it != value) return -1;
    return static_cast<int>(it - anchors_.begin());
  }

  // All τ-relevant positions bound: every answer of this sub-problem has the
  // same τ-value a0, so the structure is determined by the answer-count
  // distribution: ℓ answers put ℓ in the component of a0's comparison.
  Structure SolveValueFixed(const ConjunctiveQuery& q, const FactSubset& facts,
                            const PartialHead& head) {
    Tuple answer(static_cast<size_t>(head_arity_), Value(0));
    for (int position : depends_on_) {
      answer[static_cast<size_t>(position)] =
          *head[static_cast<size_t>(position)];
    }
    Rational value = tau_.Evaluate(answer);
    AnswerCountMap counts = AnswerCountDistribution(q, facts, comb_);
    Structure out;
    out.num_endogenous = facts.CountEndogenous();
    out.by_anchor.assign(anchors_.size(), QuintupleMap<Count>());
    int anchor = AnchorIndexOf(value);
    if (anchor < 0) {
      // Never realized in the full database: no subset can have answers.
      for (const auto& [key, count] : counts) {
        SHAPCQ_CHECK(key.second == 0);
        (void)count;
      }
    }
    for (size_t i = 0; i < anchors_.size(); ++i) {
      int comparison =
          anchor < 0 ? 0 : Rational::Compare(value, anchors_[i]);
      for (const auto& [key, count] : counts) {
        int k = key.first;
        int answers = key.second;
        std::array<int, 4> quintuple = {k, 0, 0, 0};
        if (comparison < 0) {
          quintuple[1] = answers;
        } else if (comparison == 0) {
          quintuple[2] = answers;
        } else {
          quintuple[3] = answers;
        }
        out.by_anchor[i][quintuple] += Ops::FromBigInt(count);
      }
    }
    return out;
  }

  Structure SolveRoot(const ConjunctiveQuery& q, const std::string& x,
                      const FactSubset& facts, const PartialHead& head) {
    int total_endogenous = facts.CountEndogenous();
    Structure acc;
    acc.num_endogenous = 0;
    acc.by_anchor.assign(anchors_.size(), QuintupleMap<Count>());
    for (QuintupleMap<Count>& per_anchor : acc.by_anchor) {
      per_anchor[{0, 0, 0, 0}] = Count(1);
    }
    int covered_endogenous = 0;
    for (const Value& a : CandidateValues(q, x, facts)) {
      FactSubset sub;
      sub.db = facts.db;
      sub.facts = FactsConsistentWith(q, x, a, facts);
      covered_endogenous += sub.CountEndogenous();
      PartialHead sub_head = head;
      auto it = positions_of_head_var_.find(x);
      if (it != positions_of_head_var_.end()) {
        for (int position : it->second) {
          sub_head[static_cast<size_t>(position)] = a;
        }
      }
      acc = CombineUnion(acc, Solve(q.Bind(x, a), sub, sub_head));
    }
    return Pad(std::move(acc), total_endogenous - covered_endogenous);
  }

  // combine_∪ at a free root: disjoint answer sets, quintuples add.
  Structure CombineUnion(const Structure& lhs, const Structure& rhs) const {
    Structure out;
    out.num_endogenous = lhs.num_endogenous + rhs.num_endogenous;
    out.by_anchor.assign(anchors_.size(), QuintupleMap<Count>());
    for (size_t i = 0; i < anchors_.size(); ++i) {
      for (const auto& [lkey, lcount] : lhs.by_anchor[i]) {
        for (const auto& [rkey, rcount] : rhs.by_anchor[i]) {
          Ops::AddProduct(
              out.by_anchor[i][{lkey[0] + rkey[0], lkey[1] + rkey[1],
                                lkey[2] + rkey[2], lkey[3] + rkey[3]}],
              lcount, rcount);
        }
      }
    }
    return out;
  }

  // combine_×: the R-side bag is replicated once per answer of the other
  // components (multiplicities multiply; an empty side empties the bag).
  Structure SolveCrossProduct(const ConjunctiveQuery& q,
                              const std::vector<std::vector<int>>& components,
                              const FactSubset& facts,
                              const PartialHead& head) {
    int r_atom = AtomIndexOf(q, relation_);
    Structure value_side;
    AnswerCountMap other = {{{0, 1}, BigInt(1)}};
    int covered_endogenous = 0;
    bool found = false;
    for (const std::vector<int>& component : components) {
      ConjunctiveQuery sub_q = q.Project(component, nullptr);
      FactSubset sub = FactsOfQueryRelations(sub_q, facts);
      covered_endogenous += sub.CountEndogenous();
      bool holds_r = std::find(component.begin(), component.end(), r_atom) !=
                     component.end();
      if (holds_r) {
        found = true;
        value_side = Solve(sub_q, sub, head);
      } else {
        // Fold the component into the partner answer-count distribution.
        AnswerCountMap dist = AnswerCountDistribution(sub_q, sub, comb_);
        AnswerCountMap folded;
        for (const auto& [lkey, lcount] : other) {
          for (const auto& [rkey, rcount] : dist) {
            folded[{lkey.first + rkey.first, lkey.second * rkey.second}] +=
                lcount * rcount;
          }
        }
        other = std::move(folded);
      }
    }
    SHAPCQ_CHECK(found);
    SHAPCQ_CHECK(covered_endogenous == facts.CountEndogenous());
    Structure out;
    out.num_endogenous = facts.CountEndogenous();
    out.by_anchor.assign(anchors_.size(), QuintupleMap<Count>());
    for (size_t i = 0; i < anchors_.size(); ++i) {
      for (const auto& [lkey, lcount] : value_side.by_anchor[i]) {
        bool value_empty = lkey[1] == 0 && lkey[2] == 0 && lkey[3] == 0;
        for (const auto& [rkey, rcount] : other) {
          int multiplier = rkey.second;
          std::array<int, 4> key;
          if (value_empty || multiplier == 0) {
            key = {lkey[0] + rkey.first, 0, 0, 0};
          } else {
            key = {lkey[0] + rkey.first, lkey[1] * multiplier,
                   lkey[2] * multiplier, lkey[3] * multiplier};
          }
          Ops::AddProductBig(out.by_anchor[i][key], lcount, rcount);
        }
      }
    }
    return out;
  }

  const ValueFunction& tau_;
  const std::string& relation_;
  std::vector<Rational> anchors_;  // ascending
  Combinatorics* comb_;
  int head_arity_;
  std::vector<int> depends_on_;
  std::unordered_map<std::string, std::vector<int>> positions_of_head_var_;
};

// sum_k series of a padded quintuple structure: the paper's Avg / Qnt_q
// formulas, accumulated in ascending anchor order — the exact order of
// AvgQuantileSumK's tail, shared with the batched scorer so both produce
// identical bits. The count-to-Rational conversion goes through the
// canonical ToBigInt, so both Count instantiations produce the same bits.
template <typename Count>
SumKSeries SeriesFromAvgQntStructure(const AvgQntStructure<Count>& top,
                                     const std::vector<Rational>& anchors,
                                     const AggregateFunction& alpha) {
  SumKSeries series(static_cast<size_t>(top.num_endogenous) + 1);
  const bool is_avg = alpha.kind() == AggKind::kAvg;
  for (size_t i = 0; i < anchors.size(); ++i) {
    for (const auto& [key, count] : top.by_anchor[i]) {
      int k = key[0];
      int64_t less = key[1], equal = key[2], greater = key[3];
      if (equal == 0 || count.is_zero()) continue;
      Rational weight;
      if (is_avg) {
        weight = Rational(equal) / Rational(less + equal + greater);
      } else {
        weight = QuantileContribution(alpha.quantile(), less, equal, greater);
      }
      if (weight.is_zero()) continue;
      series[static_cast<size_t>(k)] +=
          anchors[i] * weight * Rational(CountOps<Count>::ToBigInt(count));
    }
  }
  return series;
}

template <typename Count>
StatusOr<SumKSeries> AvgQuantileSumKImpl(const AggregateQuery& a,
                                         const Database& db) {
  if (a.alpha.kind() != AggKind::kAvg &&
      a.alpha.kind() != AggKind::kQuantile) {
    return UnsupportedError("AvgQuantileSumK handles Avg and Qnt_q only");
  }
  if (a.query.HasSelfJoin()) {
    return UnsupportedError("Avg/Qnt requires a self-join-free CQ");
  }
  if (!IsQHierarchical(a.query)) {
    return UnsupportedError("Avg/Qnt requires a q-hierarchical CQ: " +
                            a.query.ToString());
  }
  std::vector<int> localization = LocalizationAtoms(a.query, *a.tau);
  if (localization.empty()) {
    return UnsupportedError("value function is not localized on any atom of " +
                            a.query.ToString());
  }
  const std::string relation =
      a.query.atoms()[static_cast<size_t>(localization[0])].relation;
  std::set<Rational> anchor_set;
  for (const Tuple& answer : Evaluate(a.query, db)) {
    anchor_set.insert(a.tau->Evaluate(answer));
  }
  int n = db.num_endogenous();
  SumKSeries series(static_cast<size_t>(n) + 1);
  if (anchor_set.empty()) return series;
  std::vector<Rational> anchors(anchor_set.begin(), anchor_set.end());
  Combinatorics comb;
  AvgQntSolver<Count> solver(a.query, *a.tau, relation, anchors, &comb);
  RelevanceSplit split = SplitRelevant(a.query, AllFacts(db));
  AvgQntStructure<Count> top =
      solver.Solve(a.query, split.relevant, solver.EmptyHead());
  top = solver.Pad(std::move(top), split.irrelevant_endogenous);
  SHAPCQ_CHECK(top.num_endogenous == n);
  return SeriesFromAvgQntStructure(top, anchors, a.alpha);
}

}  // namespace

Rational QuantileContribution(const Rational& q, int64_t less, int64_t equal,
                              int64_t greater) {
  int64_t total = less + equal + greater;
  if (total == 0 || equal == 0) return Rational(0);
  Rational qn = q * Rational(total);
  int64_t i1 = qn.Ceil().ToInt64();                   // ⌈q·|B|⌉
  int64_t i2 = (qn + Rational(1)).Floor().ToInt64();  // ⌊q·|B|+1⌋
  Rational contribution;
  if (less < i1 && less + equal >= i1) contribution += Rational(1);
  if (less < i2 && less + equal >= i2) contribution += Rational(1);
  return contribution / Rational(2);
}

StatusOr<SumKSeries> AvgQuantileSumK(const AggregateQuery& a,
                                     const Database& db,
                                     const SolverOptions& /*options*/) {
  return AvgQuantileSumKImpl<CountValue>(a, db);
}

StatusOr<SumKSeries> AvgQuantileSumKBigInt(const AggregateQuery& a,
                                           const Database& db,
                                           const SolverOptions& /*options*/) {
  return AvgQuantileSumKImpl<BigInt>(a, db);
}

StatusOr<std::vector<std::pair<FactId, Rational>>> AvgQuantileScoreAll(
    const AggregateQuery& a, const Database& db,
    const SolverOptions& options) {
  // The gates of AvgQuantileSumK, in the same order, so the batch fails
  // exactly where the per-fact path would.
  if (a.alpha.kind() != AggKind::kAvg &&
      a.alpha.kind() != AggKind::kQuantile) {
    return UnsupportedError("AvgQuantileSumK handles Avg and Qnt_q only");
  }
  if (a.query.HasSelfJoin()) {
    return UnsupportedError("Avg/Qnt requires a self-join-free CQ");
  }
  if (!IsQHierarchical(a.query)) {
    return UnsupportedError("Avg/Qnt requires a q-hierarchical CQ: " +
                            a.query.ToString());
  }
  std::vector<int> localization = LocalizationAtoms(a.query, *a.tau);
  if (localization.empty()) {
    return UnsupportedError("value function is not localized on any atom of " +
                            a.query.ToString());
  }
  const std::string relation =
      a.query.atoms()[static_cast<size_t>(localization[0])].relation;
  const std::vector<FactId> endo = db.EndogenousFacts();
  const int n = db.num_endogenous();
  if (n == 0) return std::vector<std::pair<FactId, Rational>>{};
  // Shared reduction state: anchors over the full database's answers.
  // F_f has exactly D's facts, hence D's answers and anchors; G_f's
  // answers are a subset (CQs are monotone), and anchors unrealized in
  // G_f only produce quintuples with ℓ= 0, which the series formulas
  // skip — so solving every derived database against the one shared
  // anchor vector reproduces the per-fact series bit for bit.
  std::set<Rational> anchor_set;
  for (const Tuple& answer : Evaluate(a.query, db)) {
    anchor_set.insert(a.tau->Evaluate(answer));
  }
  std::vector<std::pair<FactId, Rational>> scores(endo.size());
  if (anchor_set.empty()) {
    // No answers over the full database: every F/G series is zero.
    for (size_t i = 0; i < endo.size(); ++i) scores[i] = {endo[i], Rational()};
    return scores;
  }
  const std::vector<Rational> anchors(anchor_set.begin(), anchor_set.end());
  // Relevance is independent of endogenous flags and every scored fact is
  // itself relevant (irrelevant ones short-circuit to an exact 0), so one
  // split serves every derived database.
  RelevanceSplit split = SplitRelevantIndexed(a.query, db);
  std::vector<char> is_relevant(static_cast<size_t>(db.num_facts()), 0);
  for (FactId id : split.relevant.facts) {
    is_relevant[static_cast<size_t>(id)] = 1;
  }
  // The full database's series, once: G_f then follows from the partition
  // identity sum_k(A, D) = sum_k(A, G_f) + sum_{k−1}(A, F_f) (split the
  // k-subsets of D_n by membership of f) — exact rational subtraction on
  // canonical forms, so no G solve runs at all.
  SumKSeries full_series;
  {
    Database work = db;
    Combinatorics comb;
    AvgQntSolver<CountValue> solver(a.query, *a.tau, relation, anchors, &comb);
    FactSubset relevant;
    relevant.db = &work;
    relevant.facts = split.relevant.facts;
    AvgQntStructure<CountValue> top =
        solver.Solve(a.query, relevant, solver.EmptyHead());
    top = solver.Pad(std::move(top), split.irrelevant_endogenous);
    SHAPCQ_CHECK(top.num_endogenous == n);
    full_series = SeriesFromAvgQntStructure(top, anchors, a.alpha);
  }
  // Worker c owns the contiguous fact chunk [c·n/C, (c+1)·n/C) plus a
  // private database copy (the F_f flag flip must not race), binomial
  // cache, and solver; slot i holds fact endo[i], so the fan-out is
  // deterministic.
  const int num_chunks =
      EffectiveThreadCount(options.num_threads, static_cast<int64_t>(n));
  ParallelFor(
      num_chunks,
      [&](int64_t c) {
        const auto [chunk_begin, chunk_end] =
            ChunkBounds(static_cast<int64_t>(endo.size()), num_chunks, c);
        const size_t begin = static_cast<size_t>(chunk_begin);
        const size_t end = static_cast<size_t>(chunk_end);
        Database work = db;
        Combinatorics comb;
        AvgQntSolver<CountValue> solver(a.query, *a.tau, relation, anchors,
                                        &comb);
        FactSubset relevant;
        relevant.db = &work;
        relevant.facts = split.relevant.facts;
        for (size_t i = begin; i < end; ++i) {
          const FactId f = endo[i];
          if (!is_relevant[static_cast<size_t>(f)]) {
            scores[i] = {f, Rational()};
            continue;
          }
          // F_f: flag flip; same relevant subset.
          work.SetEndogenous(f, false);
          AvgQntStructure<CountValue> top_f =
              solver.Solve(a.query, relevant, solver.EmptyHead());
          top_f = solver.Pad(std::move(top_f), split.irrelevant_endogenous);
          SHAPCQ_CHECK(top_f.num_endogenous == n - 1);
          SumKSeries series_f =
              SeriesFromAvgQntStructure(top_f, anchors, a.alpha);
          work.SetEndogenous(f, true);
          SumKSeries series_g =
              RemovedSeriesFromIdentity(full_series, series_f);
          scores[i] = {f, ScoreFromSumK(series_f, series_g, options.score)};
        }
      },
      num_chunks);
  return scores;
}

void RegisterAvgQuantileEngine(EngineRegistry& registry) {
  EngineProvider provider;
  provider.name = "avg-quantile/q-hierarchical-dp";
  provider.priority = 10;
  provider.applies = [](const AggregateQuery& a) {
    return a.alpha.kind() == AggKind::kAvg ||
           a.alpha.kind() == AggKind::kQuantile;
  };
  provider.sum_k = AvgQuantileSumK;
  provider.score_all = AvgQuantileScoreAll;
  registry.Register(std::move(provider));
}

}  // namespace shapcq
