// ShapleySolver: the public façade of the library.
//
// Given an aggregate query A = α ∘ τ ∘ Q, the solver classifies Q against
// the paper's tractability frontiers (Figure 1), dispatches to the matching
// exact dynamic program, and falls back to brute force (small instances) or
// Monte Carlo sampling (approximation) outside the frontiers:
//
//   α               frontier (tractable for every localized τ)
//   ─────────────── ─────────────────────────────────────────
//   Sum, Count      ∃-hierarchical     [Livshits et al.]
//   Min, Max, CDist all-hierarchical   [Theorem 4.1]
//   Avg, Qnt_q      q-hierarchical     [Theorem 5.1]
//   Dup             sq-hierarchical    [Theorem 6.1]
//
// Localization-sensitive special cases (Proposition 7.3) are attempted
// before giving up: specific τ may be tractable outside the frontier.
//
// Dispatch is driven by the EngineRegistry (engine_registry.h): each exact
// algorithm registers a provider, so new engines plug in without touching
// this façade. The database-independent layer — classification, frontier
// verdict, engine chain — is compiled once per query into an
// AttributionPlan and reused across databases and calls through the
// fingerprint-keyed PlanCache (plan.h); a SolverSession (session.h) binds
// the plan to a database per call. Hold a session yourself to also
// amortize per-database state over many calls, or use ComputeAll, which
// batches all facts through one session.

#ifndef SHAPCQ_SHAPLEY_SOLVER_H_
#define SHAPCQ_SHAPLEY_SOLVER_H_

#include <string>
#include <utility>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/shapley/monte_carlo.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/session.h"
#include "shapcq/util/status.h"

namespace shapcq {

// The most general hierarchy class on which `alpha` is tractable for every
// localized value function (Figure 1).
HierarchyClass TractabilityFrontier(const AggregateFunction& alpha);

// True iff `q` lies inside alpha's frontier (no self-joins and the required
// hierarchy property holds) — i.e., the Shapley value is polynomial-time
// for every localized τ.
bool IsInsideFrontier(const AggregateFunction& alpha,
                      const ConjunctiveQuery& q);

class ShapleySolver {
 public:
  explicit ShapleySolver(AggregateQuery a) : a_(std::move(a)) {}

  const AggregateQuery& aggregate_query() const { return a_; }

  // Name of the exact engine that Auto would try first, if any.
  StatusOr<std::string> ExactAlgorithmName() const;

  // Score of one endogenous fact.
  StatusOr<SolveResult> Compute(const Database& db, FactId fact,
                                const SolverOptions& options = {}) const;

  // Scores of all endogenous facts: one SolverSession batches the shared
  // work (classification, engine selection, homomorphism supports, DP
  // scaffolding) across facts instead of rebuilding it n times.
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> ComputeAll(
      const Database& db, const SolverOptions& options = {}) const;

  // The raw sum_k series of the aggregate query over `db`, from the first
  // applicable exact engine (brute force as last resort). Feeds
  // ExpectedValueFromSumK and SemivalueFromSumK.
  StatusOr<SumKSeries> ComputeSumKSeries(
      const Database& db, const SolverOptions& options = {}) const;

 private:
  AggregateQuery a_;
};

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_SOLVER_H_
