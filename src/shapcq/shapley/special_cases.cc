#include "shapcq/shapley/special_cases.h"

#include <algorithm>
#include <vector>

#include "shapcq/agg/value_function.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/util/check.h"

namespace shapcq {

StatusOr<SumKSeries> GatedProductSumK(const AggregateQuery& a,
                                      const Database& db,
                                      const SolverOptions& options) {
  bool is_median = a.alpha.kind() == AggKind::kQuantile &&
                   a.alpha.quantile() == Rational(BigInt(1), BigInt(2));
  if (a.alpha.kind() != AggKind::kAvg && !is_median) {
    return UnsupportedError(
        "GatedProductSumK applies to Avg and Median only (replication "
        "invariance)");
  }
  if (a.query.HasSelfJoin()) {
    return UnsupportedError("GatedProductSumK requires a self-join-free CQ");
  }
  std::vector<int> localization = LocalizationAtoms(a.query, *a.tau);
  if (localization.empty()) {
    return UnsupportedError("value function is not localized on any atom of " +
                            a.query.ToString());
  }
  std::vector<std::vector<int>> components = ConnectedComponents(a.query);
  if (components.size() < 2) {
    return UnsupportedError("GatedProductSumK requires a disconnected CQ");
  }
  // The component holding the (first) localization atom becomes Q1.
  int r_atom = localization[0];
  std::vector<int> q1_atoms;
  std::vector<int> q2_atoms;
  for (const std::vector<int>& component : components) {
    if (std::find(component.begin(), component.end(), r_atom) !=
        component.end()) {
      q1_atoms = component;
    } else {
      q2_atoms.insert(q2_atoms.end(), component.begin(), component.end());
    }
  }
  SHAPCQ_CHECK(!q1_atoms.empty() && !q2_atoms.empty());
  std::vector<int> kept_positions;
  ConjunctiveQuery q1 = a.query.Project(q1_atoms, &kept_positions);
  ConjunctiveQuery q2 = a.query.Project(q2_atoms, nullptr);
  // Remap τ onto Q1's (shorter) head. Every depended position must survive
  // the projection (it does: the localization atom is inside Q1).
  std::vector<int> new_depends;
  int full_arity = a.query.arity();
  for (int position : a.tau->DependsOn()) {
    auto it = std::find(kept_positions.begin(), kept_positions.end(),
                        position);
    SHAPCQ_CHECK(it != kept_positions.end());
    new_depends.push_back(static_cast<int>(it - kept_positions.begin()));
  }
  ValueFunctionPtr original_tau = a.tau;
  std::vector<int> kept_copy = kept_positions;
  ValueFunctionPtr remapped_tau = MakeCallbackTau(
      [original_tau, kept_copy, full_arity](const Tuple& t1) {
        Tuple full(static_cast<size_t>(full_arity), Value(0));
        for (size_t i = 0; i < kept_copy.size(); ++i) {
          full[static_cast<size_t>(kept_copy[i])] = t1[i];
        }
        return original_tau->Evaluate(full);
      },
      new_depends, a.tau->ToString() + "|Q1");
  // Split the database: D1 (Q1's relations), D2 (Q2's), padding (the rest).
  Database d1, d2;
  int pad = 0;
  auto in_query = [](const ConjunctiveQuery& q, const std::string& relation) {
    for (const Atom& atom : q.atoms()) {
      if (atom.relation == relation) return true;
    }
    return false;
  };
  for (FactId id = 0; id < db.num_facts(); ++id) {
    if (!db.live(id)) continue;
    const Fact& fact = db.fact(id);
    if (in_query(q1, fact.relation)) {
      d1.AddFact(fact.relation, fact.args, fact.endogenous);
    } else if (in_query(q2, fact.relation)) {
      d2.AddFact(fact.relation, fact.args, fact.endogenous);
    } else if (fact.endogenous) {
      ++pad;
    }
  }
  AggregateQuery a1{q1, remapped_tau, a.alpha};
  StatusOr<SumKSeries> value_series = AvgQuantileSumK(a1, d1, options);
  if (!value_series.ok()) return value_series.status();
  StatusOr<std::vector<BigInt>> gate_counts =
      SatisfactionCounts(q2.AsBoolean(), d2);
  if (!gate_counts.ok()) return gate_counts.status();
  int m1 = d1.num_endogenous();
  int m2 = d2.num_endogenous();
  int n = db.num_endogenous();
  SHAPCQ_CHECK(m1 + m2 + pad == n);
  SumKSeries combined(static_cast<size_t>(m1 + m2) + 1);
  for (int l = 0; l <= m1; ++l) {
    const Rational& value = (*value_series)[static_cast<size_t>(l)];
    if (value.is_zero()) continue;
    for (int k2 = 0; k2 <= m2; ++k2) {
      const BigInt& gate = (*gate_counts)[static_cast<size_t>(k2)];
      if (gate.is_zero()) continue;
      combined[static_cast<size_t>(l + k2)] += value * Rational(gate);
    }
  }
  // Pad with the endogenous facts of unrelated relations.
  Combinatorics comb;
  SumKSeries series(static_cast<size_t>(n) + 1);
  for (int k = 0; k <= m1 + m2; ++k) {
    const Rational& value = combined[static_cast<size_t>(k)];
    if (value.is_zero()) continue;
    for (int extra = 0; extra <= pad; ++extra) {
      series[static_cast<size_t>(k + extra)] +=
          value * Rational(comb.Binomial(pad, extra));
    }
  }
  return series;
}

void RegisterGatedProductEngine(EngineRegistry& registry) {
  EngineProvider provider;
  provider.name = "gated-product/prop-7.3";
  provider.priority = 20;
  provider.applies = [](const AggregateQuery& a) {
    return a.alpha.kind() == AggKind::kAvg ||
           a.alpha.kind() == AggKind::kQuantile;
  };
  provider.sum_k = GatedProductSumK;
  registry.Register(std::move(provider));
}

}  // namespace shapcq
