#include "shapcq/shapley/score.h"

#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

Rational ScoreFromSumK(const SumKSeries& series_f_exogenous,
                       const SumKSeries& series_f_removed, ScoreKind kind) {
  SHAPCQ_CHECK(series_f_exogenous.size() == series_f_removed.size());
  SHAPCQ_CHECK(!series_f_exogenous.empty());
  int64_t n = static_cast<int64_t>(series_f_exogenous.size());  // players
  Combinatorics comb;
  Rational score;
  for (int64_t k = 0; k < n; ++k) {
    Rational delta = series_f_exogenous[static_cast<size_t>(k)] -
                     series_f_removed[static_cast<size_t>(k)];
    if (delta.is_zero()) continue;
    switch (kind) {
      case ScoreKind::kShapley:
        score += comb.ShapleyCoefficient(n, k) * delta;
        break;
      case ScoreKind::kBanzhaf:
        score += delta;
        break;
    }
  }
  if (kind == ScoreKind::kBanzhaf && n > 1) {
    score /= Rational(BigInt::TwoPow(static_cast<uint64_t>(n - 1)));
  }
  return score;
}

SumKSeries RemovedSeriesFromIdentity(const SumKSeries& full_series,
                                     const SumKSeries& series_f_exogenous) {
  SHAPCQ_CHECK(full_series.size() == series_f_exogenous.size() + 1);
  SHAPCQ_CHECK(!series_f_exogenous.empty());
  const size_t n = series_f_exogenous.size();
  SumKSeries series_g(n);
  series_g[0] = full_series[0];  // the k = −1 term of F is zero
  for (size_t k = 1; k < n; ++k) {
    series_g[k] = full_series[k] - series_f_exogenous[k - 1];
  }
  return series_g;
}

Rational SemivalueFromSumK(const SumKSeries& series_f_exogenous,
                           const SumKSeries& series_f_removed,
                           const std::vector<Rational>& weights) {
  SHAPCQ_CHECK(series_f_exogenous.size() == series_f_removed.size());
  SHAPCQ_CHECK(weights.size() >= series_f_exogenous.size());
  Rational score;
  for (size_t k = 0; k < series_f_exogenous.size(); ++k) {
    if (weights[k].is_zero()) continue;
    score += weights[k] * (series_f_exogenous[k] - series_f_removed[k]);
  }
  return score;
}

Rational ExpectedValueFromSumK(const SumKSeries& series, const Rational& p) {
  SHAPCQ_CHECK(p >= Rational(0) && p <= Rational(1));
  SHAPCQ_CHECK(!series.empty());
  int64_t n = static_cast<int64_t>(series.size()) - 1;
  Rational expected;
  Rational one_minus_p = Rational(1) - p;
  for (int64_t k = 0; k <= n; ++k) {
    const Rational& value = series[static_cast<size_t>(k)];
    if (value.is_zero()) continue;
    // p^k (1−p)^{n−k}: exact rational powers.
    Rational weight(1);
    for (int64_t i = 0; i < k; ++i) weight *= p;
    for (int64_t i = 0; i < n - k; ++i) weight *= one_minus_p;
    expected += weight * value;
  }
  return expected;
}

StatusOr<Rational> ScoreViaSumK(const AggregateQuery& a, const Database& db,
                                FactId fact, const SumKEngine& engine,
                                const SolverOptions& options) {
  SHAPCQ_CHECK(db.fact(fact).endogenous);
  Database with_f_exogenous = db.WithFactExogenous(fact);
  Database without_f = db.WithoutFact(fact, /*old_to_new=*/nullptr);
  StatusOr<SumKSeries> series_f = engine(a, with_f_exogenous, options);
  if (!series_f.ok()) return series_f.status();
  StatusOr<SumKSeries> series_g = engine(a, without_f, options);
  if (!series_g.ok()) return series_g.status();
  return ScoreFromSumK(*series_f, *series_g, options.score);
}

StatusOr<Rational> ScoreViaSumK(const AggregateQuery& a, const Database& db,
                                FactId fact, const SumKEngine& engine,
                                ScoreKind kind) {
  SolverOptions options;
  options.score = kind;
  return ScoreViaSumK(a, db, fact, engine, options);
}

StatusOr<std::vector<std::pair<FactId, Rational>>> ScoreAllViaSumK(
    const AggregateQuery& a, const Database& db, const SumKEngine& engine,
    const SolverOptions& options) {
  std::vector<std::pair<FactId, Rational>> scores;
  for (FactId fact : db.EndogenousFacts()) {
    StatusOr<Rational> score = ScoreViaSumK(a, db, fact, engine, options);
    if (!score.ok()) return score.status();
    scores.emplace_back(fact, std::move(score).value());
  }
  return scores;
}

StatusOr<std::vector<std::pair<FactId, Rational>>> ScoreAllViaSumK(
    const AggregateQuery& a, const Database& db, const SumKEngine& engine,
    ScoreKind kind) {
  SolverOptions options;
  options.score = kind;
  return ScoreAllViaSumK(a, db, engine, options);
}

}  // namespace shapcq
