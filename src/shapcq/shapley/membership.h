// Satisfaction-count dynamic program for Boolean hierarchical CQs.
//
// For a Boolean self-join-free hierarchical CQ Q and a database D, computes
//
//   c_k = #{ E ⊆ D_n, |E| = k : Q(E ∪ D_x) is true },   k = 0..|D_n|,
//
// by the classic hierarchical recursion (root-variable split / cross
// product / ground base case) — the algorithm of Livshits, Bertossi,
// Kimelfeld and Sebag underlying the paper's Theorem 3.1 and reused by the
// CDist reduction (Lemma 4.3) and the Sum/Count engine.
//
// The Shapley value of a fact for *membership* (the Boolean query as a 0/1
// utility) follows from the counts of F (f exogenous) and G (f removed).

#ifndef SHAPCQ_SHAPLEY_MEMBERSHIP_H_
#define SHAPCQ_SHAPLEY_MEMBERSHIP_H_

#include <vector>

#include "shapcq/data/database.h"
#include "shapcq/query/cq.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/shapley/score.h"
#include "shapcq/util/bigint.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Counts over ALL endogenous facts of `db` (irrelevant facts pad the counts
// binomially). Requires: q Boolean (or treated as Boolean), self-join-free,
// hierarchical w.r.t. all its variables. Returns UNSUPPORTED otherwise.
StatusOr<std::vector<BigInt>> SatisfactionCounts(const ConjunctiveQuery& q,
                                                 const Database& db);

// Low-level entry point used by the per-aggregate dynamic programs: counts
// over exactly the endogenous facts of `facts`, which must all match their
// atom of `q` (no relevance splitting, no padding). `q` is treated as
// Boolean and must be self-join-free and hierarchical; aborts otherwise.
std::vector<BigInt> SatisfactionCountsOnSubset(const ConjunctiveQuery& q,
                                               const FactSubset& facts,
                                               Combinatorics* comb);

// Shapley/Banzhaf value of `fact` for the Boolean membership game of `q`.
StatusOr<Rational> MembershipScore(const ConjunctiveQuery& q,
                                   const Database& db, FactId fact,
                                   ScoreKind kind = ScoreKind::kShapley);

// The paper's original "membership" task (Figure 1, outermost box): the
// contribution of `fact` to a specific answer tuple of a non-Boolean query.
// Binds the head of `q` to `answer` and scores the resulting Boolean game;
// polynomial exactly when q is ∃-hierarchical. `answer` must have arity
// ar(q).
StatusOr<Rational> AnswerMembershipScore(const ConjunctiveQuery& q,
                                         const Database& db,
                                         const Tuple& answer, FactId fact,
                                         ScoreKind kind = ScoreKind::kShapley);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_MEMBERSHIP_H_
