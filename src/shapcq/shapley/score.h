// The sum_k framework (Section 3.2 of the paper).
//
// Every exact engine in this library computes, for a database D' and an
// aggregate query A, the series
//
//   sum_k(A, D') = Σ_{E ∈ (D'_n choose k)} A(E ∪ D'_x),   k = 0..|D'_n|.
//
// The Shapley value of a fact f in D follows from the series of two derived
// databases (F: f made exogenous; G: f removed):
//
//   Shapley(f, A) = Σ_k q_k · (sum_k(A, F) − sum_k(A, G)),
//   q_k = k!(n−k−1)!/n!,  n = |D_n|.
//
// The same differences yield the Banzhaf score with uniform weights
// 2^{−(n−1)} — the paper's remark that sum_k-based algorithms extend to all
// Shapley-like scores.

#ifndef SHAPCQ_SHAPLEY_SCORE_H_
#define SHAPCQ_SHAPLEY_SCORE_H_

#include <functional>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/util/rational.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Declared in solver_options.h (which includes this header); passed through
// SumKEngine so engines see the configured budgets and thread counts.
struct SolverOptions;

enum class ScoreKind { kShapley, kBanzhaf };

// sum_k(A, D) for k = 0..|D_n| (length |D_n| + 1).
using SumKSeries = std::vector<Rational>;

// An exact engine: computes the sum_k series of A over a database, under
// the given solver options (budgets, thread counts). Every built-in engine
// also defaults the options parameter, so direct 2-argument calls work.
using SumKEngine = std::function<StatusOr<SumKSeries>(
    const AggregateQuery&, const Database&, const SolverOptions&)>;

// Combines the series of F (f exogenous) and G (f removed) into the score of
// f in the original n-player game. Both series must have length n (entries
// k = 0..n−1).
Rational ScoreFromSumK(const SumKSeries& series_f_exogenous,
                       const SumKSeries& series_f_removed, ScoreKind kind);

// The series of G (f removed) derived from the full database's series and
// F's via the partition identity — split the k-subsets of D_n by
// membership of f:
//   sum_k(A, D) = sum_k(A, G_f) + sum_{k−1}(A, F_f).
// `full_series` must have length n+1 and `series_f_exogenous` length n;
// exact rational subtraction on canonical forms makes the result value-
// and representation-identical to solving G directly. The batched engine
// scorers use this so no G solve ever runs.
SumKSeries RemovedSeriesFromIdentity(const SumKSeries& full_series,
                                     const SumKSeries& series_f_exogenous);

// Runs `engine` on F and G and combines. `fact` must be endogenous in `db`.
// The ScoreKind form runs the engine under default solver options; the
// SolverOptions overload forwards the full options (score kind included)
// into every engine call.
StatusOr<Rational> ScoreViaSumK(const AggregateQuery& a, const Database& db,
                                FactId fact, const SumKEngine& engine,
                                ScoreKind kind = ScoreKind::kShapley);
StatusOr<Rational> ScoreViaSumK(const AggregateQuery& a, const Database& db,
                                FactId fact, const SumKEngine& engine,
                                const SolverOptions& options);

// Scores every endogenous fact (same engine, 2·n engine runs).
StatusOr<std::vector<std::pair<FactId, Rational>>> ScoreAllViaSumK(
    const AggregateQuery& a, const Database& db, const SumKEngine& engine,
    ScoreKind kind = ScoreKind::kShapley);
StatusOr<std::vector<std::pair<FactId, Rational>>> ScoreAllViaSumK(
    const AggregateQuery& a, const Database& db, const SumKEngine& engine,
    const SolverOptions& options);

// General semivalue: Σ_k weights[k] · (sum_k(A,F) − sum_k(A,G)) for a
// caller-supplied coefficient vector over coalition sizes k = 0..n−1
// (the paper's "Shapley-like scores" in full generality). Shapley uses
// weights q_k = 1/(n·C(n−1,k)); Banzhaf uses 2^{−(n−1)} uniformly. The
// weights of a probabilistic semivalue should satisfy
// Σ_k C(n−1,k)·weights[k] = 1, but this is not enforced.
Rational SemivalueFromSumK(const SumKSeries& series_f_exogenous,
                           const SumKSeries& series_f_removed,
                           const std::vector<Rational>& weights);

// Expected query result over the uniform tuple-independent probabilistic
// database in which every endogenous fact is present independently with
// probability p (exogenous facts are certain):
//   E[A] = Σ_k p^k (1−p)^{n−k} · sum_k(A, D).
// This is the bridge to expected Shapley-like scores over probabilistic
// databases discussed in the paper's Section 8.
Rational ExpectedValueFromSumK(const SumKSeries& series, const Rational& p);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_SCORE_H_
