// Compiled attribution plans: the database-independent layer of a solve.
//
// The paper's dichotomies (Figure 1; Theorems 4.1, 5.1, 6.1) are properties
// of the query alone — classification, frontier verdict, and engine choice
// never look at the database. An AttributionPlan captures that layer once
// per aggregate query:
//
//   * the canonical fingerprint (PlanFingerprint below),
//   * the hierarchy class and tractability-frontier verdict,
//   * the ordered engine-provider chain from the EngineRegistry,
//   * the query-side structural analysis the engines re-derive today
//     (τ localization atoms, root variables, connected components,
//     self-join flag),
//
// and a SolverSession (session.h) binds the plan to a Database to execute.
// Plans are immutable and shared via shared_ptr, so a serving loop that
// answers the same query against thousands of per-tenant databases compiles
// once and executes many times.
//
// PlanCache is the thread-safe fingerprint-keyed cache behind
// ShapleySolver, the CLI, and the serving benchmark. The fingerprint is
// variable-renaming-invariant and sensitive to constants, atom structure,
// the aggregate α (including quantile parameters), τ (via
// ValueFunction::FingerprintToken — opaque callbacks never share plans),
// and the score kind; see CanonicalQueryKey (query/cq.h) for the query
// part. Concurrent GetOrCompile calls are safe: compilation runs outside
// the cache lock and the first inserted plan wins, so every caller of one
// fingerprint observes the same plan object. Engines registered with
// EngineRegistry::Global() after a plan was compiled are not retrofitted
// into it; call Clear() to recompile against the grown registry.

#ifndef SHAPCQ_SHAPLEY_PLAN_H_
#define SHAPCQ_SHAPLEY_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Canonical fingerprint of (A, score): equal fingerprints mean the compiled
// plans are interchangeable. Format (human-readable by design):
//   Q<canonical query key>|alpha=<α>|tau=<τ token>|score=<shapley|banzhaf>
std::string PlanFingerprint(const AggregateQuery& a, ScoreKind score);

// "shapley" / "banzhaf".
const char* ScoreKindName(ScoreKind score);

// The user-visible frontier verdict, shared by Explain() and the CLI:
// "inside (PTIME for every localized tau)" / "outside (...)".
const char* FrontierVerdictName(bool inside_frontier);

class AttributionPlan {
 public:
  // Compiles the database-independent layer. Never fails: a query no exact
  // engine supports still compiles (empty chain; execution falls back to
  // brute force / Monte Carlo).
  static std::shared_ptr<const AttributionPlan> Compile(
      AggregateQuery a, ScoreKind score = ScoreKind::kShapley);

  const AggregateQuery& aggregate_query() const { return a_; }
  // The score kind the plan was keyed under. Purely a cache discriminator
  // today (every engine chain serves both kinds; options.score selects at
  // execution time), kept in the fingerprint so kind-specific chains can
  // diverge later without invalidating cached plans.
  ScoreKind score_kind() const { return score_; }
  const std::string& fingerprint() const { return fingerprint_; }

  // Hierarchy class of the query (Figure 1).
  HierarchyClass classification() const { return classification_; }
  // Whether the query lies inside the aggregate's tractability frontier.
  bool inside_frontier() const { return inside_frontier_; }
  bool has_self_join() const { return has_self_join_; }

  // Applicable engine providers, in preference order. Pointers stay valid
  // for the registry's lifetime.
  const std::vector<const EngineProvider*>& engines() const {
    return engines_;
  }
  // Name of the exact engine tried first, if any.
  StatusOr<std::string> ExactAlgorithmName() const;

  // Indices of the atoms τ is localized on (agg/value_function.h); empty
  // means τ is not localized and only the linearity/brute-force paths can
  // apply.
  const std::vector<int>& localization_atoms() const {
    return localization_atoms_;
  }
  // Variables occurring in every atom (the DP recursion roots).
  const std::vector<std::string>& root_variables() const {
    return root_variables_;
  }
  // Atom indices grouped into connected components of the join graph.
  const std::vector<std::vector<int>>& connected_components() const {
    return connected_components_;
  }

  // Human-readable rendering: fingerprint, hierarchy class, frontier
  // verdict, structural analysis, and the engine chain with each
  // provider's entry points (batched / per-fact / sum_k).
  std::string Explain() const;

 private:
  friend class PlanCache;  // reuses its already-computed fingerprint

  AttributionPlan(AggregateQuery a, ScoreKind score)
      : a_(std::move(a)), score_(score) {}

  // Compile with the fingerprint precomputed by the caller, sparing the
  // second canonicalization pass on every cache miss.
  static std::shared_ptr<const AttributionPlan> CompileWithFingerprint(
      AggregateQuery a, ScoreKind score, std::string fingerprint);

  AggregateQuery a_;
  ScoreKind score_;
  std::string fingerprint_;
  HierarchyClass classification_ = HierarchyClass::kGeneral;
  bool inside_frontier_ = false;
  bool has_self_join_ = false;
  std::vector<int> localization_atoms_;
  std::vector<std::string> root_variables_;
  std::vector<std::vector<int>> connected_components_;
  std::vector<const EngineProvider*> engines_;
};

// Thread-safe fingerprint-keyed plan cache, bounded by FIFO eviction so a
// serving workload whose queries embed per-request constants (distinct
// fingerprints forever) cannot grow it without limit. Evicted plans stay
// alive through any outstanding shared_ptrs.
class PlanCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 1024;

  // The process-wide cache used by ShapleySolver, SolverSession's
  // (query, db) constructor, and the CLI.
  static PlanCache& Global();

  explicit PlanCache(size_t max_entries = kDefaultMaxEntries)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  // The cached plan for PlanFingerprint(a, score), compiling on miss.
  // `cache_hit`, if non-null, receives whether the plan was reused. Safe to
  // call concurrently; a lost compile race still returns the winning plan
  // (and counts as a miss — the compile work happened). A τ without a
  // canonical fingerprint (opaque callbacks) compiles fresh and is never
  // inserted: its identity-based key could not be looked up again, and
  // per-request callback τs must not grow the cache without bound.
  std::shared_ptr<const AttributionPlan> GetOrCompile(
      const AggregateQuery& a, ScoreKind score = ScoreKind::kShapley,
      bool* cache_hit = nullptr);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const;

  // The cached plans in insertion (FIFO) order — the order eviction would
  // drop them, so a bounded persistence pass that writes front-to-back and
  // truncates keeps the entries that would survive longest. Snapshot, not a
  // view: concurrent GetOrCompile/Clear calls do not invalidate the result.
  std::vector<std::shared_ptr<const AttributionPlan>> Snapshot() const;

  // Drops every cached plan and resets the counters. Outstanding
  // shared_ptrs keep their plans alive.
  void Clear();

 private:
  const size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const AttributionPlan>>
      plans_;
  // Insertion order of the fingerprints in plans_, the FIFO eviction queue.
  std::deque<std::string> insertion_order_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_PLAN_H_
