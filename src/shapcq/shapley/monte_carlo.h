// Monte Carlo approximation of the Shapley value by permutation sampling.
//
// The Shapley value is the expectation of a fact's marginal contribution
// over a uniformly random permutation of the endogenous facts; sampling
// permutations gives an unbiased estimator whose error obeys Hoeffding
// bounds. This is the practical fallback for AggCQs outside the tractable
// frontiers (and the subject of experiment E6). Unlike the exact engines it
// places no restriction on the query (self-joins and non-localized value
// functions are fine) and no player-count limit.

#ifndef SHAPCQ_SHAPLEY_MONTE_CARLO_H_
#define SHAPCQ_SHAPLEY_MONTE_CARLO_H_

#include <cstdint>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/util/status.h"

namespace shapcq {

struct MonteCarloOptions {
  int64_t num_samples = 10000;
  uint64_t seed = 1;
};

struct MonteCarloResult {
  double estimate = 0.0;
  // Sample standard error of the mean (σ̂ / √samples).
  double std_error = 0.0;
  int64_t samples = 0;
};

// Estimates Shapley(fact, a)[db] from `options.num_samples` random
// permutations.
StatusOr<MonteCarloResult> MonteCarloShapley(const AggregateQuery& a,
                                             const Database& db, FactId fact,
                                             const MonteCarloOptions& options);

// Estimates Banzhaf(fact, a)[db] by sampling uniform subsets of the other
// endogenous facts.
StatusOr<MonteCarloResult> MonteCarloBanzhaf(const AggregateQuery& a,
                                             const Database& db, FactId fact,
                                             const MonteCarloOptions& options);

// Number of samples for an additive (epsilon, delta) guarantee via
// Hoeffding, when each marginal contribution lies in [-range, range].
int64_t HoeffdingSampleCount(double range, double epsilon, double delta);

// Convenience: runs MonteCarloShapley with the Hoeffding sample count for
// the requested guarantee: P(|estimate − Shapley| ≥ epsilon) ≤ delta,
// assuming marginal contributions lie in [−range, range].
StatusOr<MonteCarloResult> MonteCarloShapleyWithGuarantee(
    const AggregateQuery& a, const Database& db, FactId fact, double range,
    double epsilon, double delta, uint64_t seed = 1);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_MONTE_CARLO_H_
