// Monte Carlo approximation of the Shapley value by permutation sampling.
//
// The Shapley value is the expectation of a fact's marginal contribution
// over a uniformly random permutation of the endogenous facts; sampling
// permutations gives an unbiased estimator whose error obeys Hoeffding
// bounds. This is the practical fallback for AggCQs outside the tractable
// frontiers (and the subject of experiment E6). Unlike the exact engines it
// places no restriction on the query (self-joins and non-localized value
// functions are fine) and no player-count limit.

#ifndef SHAPCQ_SHAPLEY_MONTE_CARLO_H_
#define SHAPCQ_SHAPLEY_MONTE_CARLO_H_

#include <cstdint>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Homomorphism supports over an arbitrary number of players (no 64-player
// mask limit): an answer is alive iff some minimal support is fully
// present. Construction enumerates homomorphisms once; SolverSession builds
// one instance per (query, database) and shares it across every per-fact
// sampling run. Construction is deterministic, so sampling through a shared
// instance gives bitwise-identical estimates to per-fact construction.
class SupportEvaluator {
 public:
  SupportEvaluator(const AggregateQuery& a, const Database& db);

  int num_players() const { return num_players_; }
  // Player bit of an endogenous fact; -1 for exogenous facts.
  int PlayerIndex(FactId id) const {
    return player_index_[static_cast<size_t>(id)];
  }

  // A(E ∪ D_x) where `present[p]` says whether player p is in E, in double
  // precision (exactness is not needed for an estimator).
  double Evaluate(const std::vector<char>& present) const;

 private:
  struct AnswerEntry {
    double tau;
    std::vector<std::vector<int>> supports;
  };

  AggregateFunction alpha_;
  int num_players_ = 0;
  std::vector<int> player_index_;
  std::vector<AnswerEntry> answers_;
};

struct MonteCarloOptions {
  int64_t num_samples = 10000;
  uint64_t seed = 1;
};

// The sampling options the solver stack uses for one fact: the caller's
// seed and sample budget with the fact id mixed into the seed (SplitMix64
// finalizer), so every fact samples a decorrelated stream while the whole
// run stays deterministic — for a fixed (options, fact) the estimate is
// identical across runs, thread counts, and per-fact vs batched paths.
inline MonteCarloOptions PerFactMonteCarloOptions(MonteCarloOptions options,
                                                  FactId fact) {
  uint64_t z = options.seed +
               0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(fact) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  options.seed = z ^ (z >> 31);
  return options;
}

struct MonteCarloResult {
  double estimate = 0.0;
  // Sample standard error of the mean (σ̂ / √samples).
  double std_error = 0.0;
  int64_t samples = 0;
};

// Estimates Shapley(fact, a)[db] from `options.num_samples` random
// permutations.
StatusOr<MonteCarloResult> MonteCarloShapley(const AggregateQuery& a,
                                             const Database& db, FactId fact,
                                             const MonteCarloOptions& options);

// Estimates Banzhaf(fact, a)[db] by sampling uniform subsets of the other
// endogenous facts.
StatusOr<MonteCarloResult> MonteCarloBanzhaf(const AggregateQuery& a,
                                             const Database& db, FactId fact,
                                             const MonteCarloOptions& options);

// Sampler variants over a prebuilt evaluator: identical estimates to the
// (a, db) overloads, minus the per-call support precomputation. `fact` must
// be endogenous in the database the evaluator was built from.
StatusOr<MonteCarloResult> MonteCarloShapley(const SupportEvaluator& evaluator,
                                             FactId fact,
                                             const MonteCarloOptions& options);
StatusOr<MonteCarloResult> MonteCarloBanzhaf(const SupportEvaluator& evaluator,
                                             FactId fact,
                                             const MonteCarloOptions& options);

// Number of samples for an additive (epsilon, delta) guarantee via
// Hoeffding, when each marginal contribution lies in [-range, range].
int64_t HoeffdingSampleCount(double range, double epsilon, double delta);

// Convenience: runs MonteCarloShapley with the Hoeffding sample count for
// the requested guarantee: P(|estimate − Shapley| ≥ epsilon) ≤ delta,
// assuming marginal contributions lie in [−range, range].
StatusOr<MonteCarloResult> MonteCarloShapleyWithGuarantee(
    const AggregateQuery& a, const Database& db, FactId fact, double range,
    double epsilon, double delta, uint64_t seed = 1);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_MONTE_CARLO_H_
