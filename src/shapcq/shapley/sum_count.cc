#include "shapcq/shapley/sum_count.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/shapley/dp_util.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/util/fixed_int.h"
#include "shapcq/util/parallel.h"

namespace shapcq {

namespace {

// The gate of SumCountSumK, shared with the batched scorer so both fail
// identically.
Status CheckSumCountShape(const AggregateQuery& a) {
  if (a.alpha.kind() != AggKind::kSum && a.alpha.kind() != AggKind::kCount) {
    return UnsupportedError("SumCountSumK handles Sum and Count only");
  }
  if (a.query.HasSelfJoin()) {
    return UnsupportedError("SumCountSumK requires a self-join-free CQ");
  }
  if (!IsExistsHierarchical(a.query)) {
    return UnsupportedError("Sum/Count requires an exists-hierarchical CQ: " +
                            a.query.ToString());
  }
  return Status::Ok();
}

// Binds the head variables of `a.query` to `answer`, yielding the Boolean
// query "answer still present". Repeated head variables bind once.
ConjunctiveQuery BindAnswer(const ConjunctiveQuery& q, const Tuple& answer) {
  ConjunctiveQuery q_t = q;
  for (size_t i = 0; i < answer.size(); ++i) {
    const std::string& head_var = q.head()[i];
    if (q_t.IsFreeVariable(head_var)) {
      q_t = q_t.Bind(head_var, answer[i]);
    }
  }
  SHAPCQ_CHECK(q_t.is_boolean());
  return q_t;
}

}  // namespace

StatusOr<SumKSeries> SumCountSumK(const AggregateQuery& a, const Database& db,
                                  const SolverOptions& /*options*/) {
  Status shape = CheckSumCountShape(a);
  if (!shape.ok()) return shape;
  int n = db.num_endogenous();
  SumKSeries series(static_cast<size_t>(n) + 1);
  for (const Tuple& answer : Evaluate(a.query, db)) {
    ConjunctiveQuery q_t = BindAnswer(a.query, answer);
    StatusOr<std::vector<BigInt>> counts = SatisfactionCounts(q_t, db);
    if (!counts.ok()) return counts.status();
    Rational weight = a.alpha.kind() == AggKind::kCount
                          ? Rational(1)
                          : a.tau->Evaluate(answer);
    if (weight.is_zero()) continue;
    for (int k = 0; k <= n; ++k) {
      series[static_cast<size_t>(k)] +=
          weight * Rational((*counts)[static_cast<size_t>(k)]);
    }
  }
  return series;
}

StatusOr<std::vector<std::pair<FactId, Rational>>> SumCountScoreAll(
    const AggregateQuery& a, const Database& db,
    const SolverOptions& options) {
  const ScoreKind kind = options.score;
  Status shape = CheckSumCountShape(a);
  if (!shape.ok()) return shape;
  const int64_t n = db.num_endogenous();
  std::vector<FactId> endo = db.EndogenousFacts();
  if (n == 0) return std::vector<std::pair<FactId, Rational>>{};

  // Equivalence with the per-fact path (ScoreViaSumK over SumCountSumK):
  // by linearity, Shapley(f) = Σ_t w(t) · ScoreFromSumK(c(Q_t, F_f),
  // c(Q_t, G_f)). Answers of F_f equal the answers of D (same fact set);
  // answers of G_f are a subset, and for the missing ones c(Q_t, G_f) ≡ 0,
  // so iterating over answers of D covers both series. Facts irrelevant to
  // Q_t yield identical F/G counts, hence an exact zero term — they are
  // skipped. All arithmetic is exact, so the reordering is value-preserving.
  //
  // The cheap per-answer work (binding, gates, weights) runs serially so
  // the batch fails on exactly the answer the serial path would; the
  // expensive accumulation shards over contiguous answer chunks below.
  struct AnswerTask {
    ConjunctiveQuery q_t;
    Rational weight;
  };
  std::vector<AnswerTask> tasks;
  for (const Tuple& answer : Evaluate(a.query, db)) {
    ConjunctiveQuery q_t = BindAnswer(a.query, answer);
    // Mirror the SatisfactionCounts gates so the batch fails exactly where
    // the per-fact path would.
    if (q_t.HasSelfJoin()) {
      return UnsupportedError(
          "satisfaction counts require a self-join-free CQ");
    }
    if (!IsAllHierarchical(q_t)) {
      return UnsupportedError(
          "satisfaction counts require a hierarchical CQ: " + q_t.ToString());
    }
    Rational weight = a.alpha.kind() == AggKind::kCount
                          ? Rational(1)
                          : a.tau->Evaluate(answer);
    if (weight.is_zero()) continue;
    tasks.push_back(AnswerTask{std::move(q_t), std::move(weight)});
  }

  // Accumulated per-fact delta series: delta[f][k] =
  //   Σ_t w(t) · (c_k(Q_t, F_f) − c_k(Q_t, G_f)),  k = 0..n−1.
  // Integer answer weights (the common case) accumulate in fixed-width
  // CountValue arithmetic (escaping to BigInt on overflow, still exact);
  // fractional weights go to a separate Rational series. The split keeps
  // gcd normalization and heap allocation out of the hot accumulation loop
  // without changing the exact value of the sum.
  struct DeltaSeries {
    std::vector<CountValue> integral;  // Σ over integer-weight answers
    SumKSeries fractional;             // Σ over fractional-weight answers
  };
  using DeltaMap = std::unordered_map<FactId, DeltaSeries>;

  // Shard the per-answer accumulation: worker c owns the contiguous answer
  // chunk [c·size/C, (c+1)·size/C), a private mutable database copy (the
  // per-fact F_f flag flip must not race), a private Combinatorics cache,
  // and a private delta map. Chunk boundaries depend only on the answer
  // count, never on scheduling.
  const int num_chunks = EffectiveThreadCount(
      options.num_threads, static_cast<int64_t>(tasks.size()));
  std::vector<DeltaMap> chunk_delta(static_cast<size_t>(num_chunks));
  ParallelFor(
      num_chunks,
      [&](int64_t c) {
        const auto [chunk_begin, chunk_end] =
            ChunkBounds(static_cast<int64_t>(tasks.size()), num_chunks, c);
        const size_t begin = static_cast<size_t>(chunk_begin);
        const size_t end = static_cast<size_t>(chunk_end);
        Database work = db;  // F_f is an O(1) flag flip on the private copy
        Combinatorics comb;
        DeltaMap& delta = chunk_delta[static_cast<size_t>(c)];
        for (size_t t = begin; t < end; ++t) {
          const ConjunctiveQuery& q_t = tasks[t].q_t;
          const Rational& weight = tasks[t].weight;
          // Hoisted once per answer: the integral-path weight factor in the
          // fixed-width representation.
          const CountValue weight_cv = weight.is_integer()
                                           ? CountValue(weight.numerator())
                                           : CountValue();
          // Bitset relevance split over dense fact ids via the posting
          // lists — O(matching facts) per answer, not a database scan.
          RelevanceSplit split = SplitRelevantIndexed(q_t, work);
          const int pad = split.irrelevant_endogenous;
          for (FactId f : split.relevant.EndogenousFacts()) {
            // F_f: f exogenous; same relevant subset, one flag flipped.
            work.SetEndogenous(f, false);
            std::vector<BigInt> counts_f =
                SatisfactionCountsOnSubset(q_t, split.relevant, &comb);
            // G_f: f removed; the flag no longer matters, only the subset.
            FactSubset without;
            without.db = &work;
            without.facts.reserve(split.relevant.facts.size() - 1);
            for (FactId id : split.relevant.facts) {
              if (id != f) without.facts.push_back(id);
            }
            std::vector<BigInt> counts_g =
                SatisfactionCountsOnSubset(q_t, without, &comb);
            work.SetEndogenous(f, true);
            std::vector<BigInt> diff = SubtractCounts(counts_f, counts_g);
            diff = PadCounts(diff, pad, &comb);
            SHAPCQ_CHECK(static_cast<int64_t>(diff.size()) == n);
            DeltaSeries& acc = delta[f];
            if (weight.is_integer()) {
              if (acc.integral.empty()) {
                acc.integral.assign(static_cast<size_t>(n), CountValue());
              }
              for (size_t k = 0; k < diff.size(); ++k) {
                if (!diff[k].is_zero()) {
                  acc.integral[k].AddProduct(weight_cv, diff[k]);
                }
              }
            } else {
              if (acc.fractional.empty()) {
                acc.fractional.assign(static_cast<size_t>(n), Rational());
              }
              for (size_t k = 0; k < diff.size(); ++k) {
                if (!diff[k].is_zero()) {
                  acc.fractional[k] += weight * Rational(diff[k]);
                }
              }
            }
          }
        }
      },
      num_chunks);

  // Merge the per-worker maps in chunk (= answer) order. Exact rational /
  // BigInt addition makes the merge value-preserving: any grouping of the
  // same terms produces the same canonical Rational, so the result is
  // bitwise-identical to the serial accumulation for every thread count.
  DeltaMap delta;
  if (num_chunks == 1) {
    delta = std::move(chunk_delta[0]);
  } else {
    for (DeltaMap& part : chunk_delta) {
      for (auto& [f, d] : part) {
        DeltaSeries& acc = delta[f];
        if (!d.integral.empty()) {
          if (acc.integral.empty()) {
            acc.integral = std::move(d.integral);
          } else {
            for (size_t k = 0; k < acc.integral.size(); ++k) {
              acc.integral[k] += d.integral[k];
            }
          }
        }
        if (!d.fractional.empty()) {
          if (acc.fractional.empty()) {
            acc.fractional = std::move(d.fractional);
          } else {
            for (size_t k = 0; k < acc.fractional.size(); ++k) {
              acc.fractional[k] += d.fractional[k];
            }
          }
        }
      }
    }
  }

  // Shapley: Σ_k q_k·d[k] with q_k = k!(n−k−1)!/n!. Summing the numerators
  // k!(n−k−1)!·d[k] over the common denominator n! needs one normalization
  // per fact instead of one per (fact, k) term; the value is unchanged
  // (exact arithmetic, same sum).
  Combinatorics comb;
  std::vector<BigInt> shapley_numerator(static_cast<size_t>(n));
  if (kind == ScoreKind::kShapley) {
    for (int64_t k = 0; k < n; ++k) {
      shapley_numerator[static_cast<size_t>(k)] =
          comb.Factorial(k) * comb.Factorial(n - 1 - k);
    }
  }
  const BigInt denominator = kind == ScoreKind::kShapley
                                 ? comb.Factorial(n)
                                 : BigInt::TwoPow(static_cast<uint64_t>(
                                       n > 1 ? n - 1 : 0));
  // Per-fact scoring reads the merged map and the precomputed coefficient
  // tables only — slot i writes fact endo[i], so the fan-out is
  // deterministic.
  std::vector<std::pair<FactId, Rational>> scores(endo.size());
  ParallelFor(
      static_cast<int64_t>(endo.size()),
      [&](int64_t i) {
        FactId f = endo[static_cast<size_t>(i)];
        Rational score;
        auto it = delta.find(f);
        if (it != delta.end()) {
          const DeltaSeries& d = it->second;
          CountValue numerator;
          Rational fractional_sum;
          for (int64_t k = 0; k < n; ++k) {
            const size_t uk = static_cast<size_t>(k);
            const BigInt& coeff = kind == ScoreKind::kShapley
                                      ? shapley_numerator[uk]
                                      : denominator;  // unused for Banzhaf
            if (!d.integral.empty() && !d.integral[uk].is_zero()) {
              if (kind == ScoreKind::kShapley) {
                numerator.AddProduct(d.integral[uk], coeff);
              } else {
                numerator += d.integral[uk];
              }
            }
            if (!d.fractional.empty() && !d.fractional[uk].is_zero()) {
              fractional_sum += kind == ScoreKind::kShapley
                                    ? Rational(coeff) * d.fractional[uk]
                                    : d.fractional[uk];
            }
          }
          score = Rational(numerator.ToBigInt(), denominator);
          if (!fractional_sum.is_zero()) {
            score += fractional_sum / Rational(denominator);
          }
        }
        scores[static_cast<size_t>(i)] = {f, std::move(score)};
      },
      options.num_threads);
  return scores;
}

void RegisterSumCountEngine(EngineRegistry& registry) {
  EngineProvider provider;
  provider.name = "sum-count/linearity";
  provider.priority = 10;
  provider.applies = [](const AggregateQuery& a) {
    return a.alpha.kind() == AggKind::kSum ||
           a.alpha.kind() == AggKind::kCount;
  };
  provider.sum_k = SumCountSumK;
  provider.score_all = SumCountScoreAll;
  registry.Register(std::move(provider));
}

}  // namespace shapcq
