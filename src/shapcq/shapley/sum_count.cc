#include "shapcq/shapley/sum_count.h"

#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/util/check.h"

namespace shapcq {

StatusOr<SumKSeries> SumCountSumK(const AggregateQuery& a,
                                  const Database& db) {
  if (a.alpha.kind() != AggKind::kSum && a.alpha.kind() != AggKind::kCount) {
    return UnsupportedError("SumCountSumK handles Sum and Count only");
  }
  if (a.query.HasSelfJoin()) {
    return UnsupportedError("SumCountSumK requires a self-join-free CQ");
  }
  if (!IsExistsHierarchical(a.query)) {
    return UnsupportedError("Sum/Count requires an exists-hierarchical CQ: " +
                            a.query.ToString());
  }
  int n = db.num_endogenous();
  SumKSeries series(static_cast<size_t>(n) + 1);
  for (const Tuple& answer : Evaluate(a.query, db)) {
    // Bind the head variables to this answer to get the Boolean query
    // "answer still present". Repeated head variables bind once.
    ConjunctiveQuery q_t = a.query;
    for (size_t i = 0; i < answer.size(); ++i) {
      const std::string& head_var =
          a.query.head()[i];  // name in the original head
      if (q_t.IsFreeVariable(head_var)) {
        q_t = q_t.Bind(head_var, answer[i]);
      }
    }
    SHAPCQ_CHECK(q_t.is_boolean());
    StatusOr<std::vector<BigInt>> counts = SatisfactionCounts(q_t, db);
    if (!counts.ok()) return counts.status();
    Rational weight = a.alpha.kind() == AggKind::kCount
                          ? Rational(1)
                          : a.tau->Evaluate(answer);
    if (weight.is_zero()) continue;
    for (int k = 0; k <= n; ++k) {
      series[static_cast<size_t>(k)] +=
          weight * Rational((*counts)[static_cast<size_t>(k)]);
    }
  }
  return series;
}

}  // namespace shapcq
