// Min and Max over all-hierarchical CQs (Section 4.2, Appendix C).
//
// Instantiates the generic algorithm of Figure 2 with the data structure
// P[Q', D'](a, k) = number of k-subsets E of D'_n such that
// max (τ ∘ Q')(E ∪ D'_x) = a, for anchors a drawn from the τ-values of the
// full query's answers. Sub-problems without the localization relation use
// plain satisfaction counts; combine_∪ composes maxima over disjoint
// sub-databases and combine_× gates by non-emptiness of the other factors.
// Min runs Max on the negated value function.

#ifndef SHAPCQ_SHAPLEY_MIN_MAX_H_
#define SHAPCQ_SHAPLEY_MIN_MAX_H_

#include <utility>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

// sum_k series for A = Min ∘ τ ∘ Q or Max ∘ τ ∘ Q. Returns UNSUPPORTED
// unless the query is self-join-free and all-hierarchical and τ is
// localized on some atom of Q.
StatusOr<SumKSeries> MinMaxSumK(const AggregateQuery& a, const Database& db,
                                const SolverOptions& options = {});

// Batched all-facts scorer with the same gates as MinMaxSumK. The shared
// per-(query, database) state — anchor set, relevance split, binomial
// caches — is computed once; each fact's derived databases F (fact
// exogenous) and G (fact removed) are realized as an endogenous-flag flip
// and a subset drop on a per-worker database copy instead of 2n full
// copies, and facts irrelevant to the query score an exact 0 without
// running the DP. Shards over options.num_threads (options.score selects
// Shapley/Banzhaf); values are bitwise-identical to per-fact ScoreViaSumK
// for every thread count.
StatusOr<std::vector<std::pair<FactId, Rational>>> MinMaxScoreAll(
    const AggregateQuery& a, const Database& db,
    const SolverOptions& options = {});

class EngineRegistry;

// Registers the "min-max/all-hierarchical-dp" provider (with the batched
// scorer).
void RegisterMinMaxEngine(EngineRegistry& registry);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_MIN_MAX_H_
