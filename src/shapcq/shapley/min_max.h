// Min and Max over all-hierarchical CQs (Section 4.2, Appendix C).
//
// Instantiates the generic algorithm of Figure 2 with the data structure
// P[Q', D'](a, k) = number of k-subsets E of D'_n such that
// max (τ ∘ Q')(E ∪ D'_x) = a, for anchors a drawn from the τ-values of the
// full query's answers. Sub-problems without the localization relation use
// plain satisfaction counts; combine_∪ composes maxima over disjoint
// sub-databases and combine_× gates by non-emptiness of the other factors.
// Min runs Max on the negated value function.

#ifndef SHAPCQ_SHAPLEY_MIN_MAX_H_
#define SHAPCQ_SHAPLEY_MIN_MAX_H_

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/score.h"
#include "shapcq/util/status.h"

namespace shapcq {

// sum_k series for A = Min ∘ τ ∘ Q or Max ∘ τ ∘ Q. Returns UNSUPPORTED
// unless the query is self-join-free and all-hierarchical and τ is
// localized on some atom of Q.
StatusOr<SumKSeries> MinMaxSumK(const AggregateQuery& a, const Database& db);

class EngineRegistry;

// Registers the "min-max/all-hierarchical-dp" provider.
void RegisterMinMaxEngine(EngineRegistry& registry);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_MIN_MAX_H_
