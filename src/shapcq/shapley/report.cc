#include "shapcq/shapley/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace shapcq {

namespace {

std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6f", v);
  return buffer;
}

std::string FormatPercent(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%5.1f%%", 100.0 * v);
  return buffer;
}

}  // namespace

std::string FormatAttributionReport(
    const Database& db,
    const std::vector<std::pair<FactId, SolveResult>>& results,
    const ReportOptions& options) {
  std::vector<std::pair<FactId, SolveResult>> rows = results;
  if (options.sort_by_score) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                       return a.second.approximation > b.second.approximation;
                     });
  }
  double total = 0;
  for (const auto& [fact, result] : rows) total += result.approximation;
  bool share = options.show_share && std::abs(total) > 1e-12;

  // Column widths.
  size_t fact_width = 4;
  size_t value_width = 5;
  for (const auto& [fact, result] : rows) {
    fact_width = std::max(fact_width, db.fact(fact).ToString().size());
    std::string value = result.is_exact ? result.exact.ToString()
                                        : FormatDouble(result.approximation);
    value_width = std::max(value_width, value.size());
  }

  std::string out;
  auto append_row = [&](const std::string& fact, const std::string& value,
                        const std::string& approx, const std::string& pct,
                        const std::string& algorithm) {
    out += fact;
    out.append(fact_width + 2 - fact.size(), ' ');
    out.append(value_width > value.size() ? value_width - value.size() : 0,
               ' ');
    out += value;
    out += "  ";
    out += approx;
    if (share) {
      out += "  ";
      out += pct;
    }
    if (!algorithm.empty()) {
      out += "  [";
      out += algorithm;
      out += "]";
    }
    out += "\n";
  };
  append_row("fact", "score", "  (approx)", share ? "  share" : "", "");
  int printed = 0;
  for (const auto& [fact, result] : rows) {
    if (options.max_rows > 0 && printed >= options.max_rows) {
      out += "... (" + std::to_string(rows.size() - static_cast<size_t>(printed)) +
             " more rows)\n";
      break;
    }
    std::string value = result.is_exact ? result.exact.ToString()
                                        : FormatDouble(result.approximation);
    append_row(db.fact(fact).ToString(), value,
               FormatDouble(result.approximation),
               share ? FormatPercent(result.approximation / total) : "",
               result.algorithm);
    ++printed;
  }
  if (options.show_relation_totals) {
    std::map<std::string, double> per_relation;
    for (const auto& [fact, result] : rows) {
      per_relation[db.fact(fact).relation] += result.approximation;
    }
    out += "\nper-relation totals:\n";
    for (const auto& [relation, subtotal] : per_relation) {
      out += "  " + relation + ": " + FormatDouble(subtotal);
      if (share) out += " (" + FormatPercent(subtotal / total) + ")";
      out += "\n";
    }
  }
  return out;
}

std::string SummarizeAttribution(
    const Database& db,
    const std::vector<std::pair<FactId, SolveResult>>& results) {
  if (results.empty()) return "no endogenous facts";
  double total = 0;
  const std::pair<FactId, SolveResult>* top = &results.front();
  for (const auto& row : results) {
    total += row.second.approximation;
    if (row.second.approximation > top->second.approximation) top = &row;
  }
  std::string out = std::to_string(results.size()) + " facts, total score " +
                    FormatDouble(total) + ", top: " +
                    db.fact(top->first).ToString();
  if (std::abs(total) > 1e-12) {
    out += " (" + FormatPercent(top->second.approximation / total) + ")";
  }
  return out;
}

std::string FormatPlanProvenance(
    const AttributionPlan& plan,
    const std::vector<std::pair<FactId, SolveResult>>& results,
    bool cache_hit, const SolverOptions* options,
    const LineageStatsSnapshot* lineage) {
  std::string out = "plan provenance:\n";
  out += "  fingerprint : " + plan.fingerprint() + "\n";
  out += "  class       : ";
  out += HierarchyClassName(plan.classification());
  out += plan.inside_frontier() ? " (inside frontier)" : " (outside frontier)";
  out += "\n";
  out += "  plan cache  : ";
  out += cache_hit ? "hit" : "miss (compiled)";
  out += "\n";
  // Engines in first-use order, each with how many facts it scored.
  std::vector<std::pair<std::string, int>> engines;
  for (const auto& [fact, result] : results) {
    auto it = std::find_if(engines.begin(), engines.end(),
                           [&result](const auto& entry) {
                             return entry.first == result.algorithm;
                           });
    if (it == engines.end()) {
      engines.emplace_back(result.algorithm, 1);
    } else {
      ++it->second;
    }
  }
  out += "  engines     : ";
  if (engines.empty()) {
    out += "none (no endogenous facts)";
  } else {
    for (size_t i = 0; i < engines.size(); ++i) {
      if (i > 0) out += ", ";
      out += engines[i].first + " (" + std::to_string(engines[i].second) +
             (engines[i].second == 1 ? " fact)" : " facts)");
    }
  }
  out += "\n";
  // Sampled results are not bare point estimates: surface the CLT-based
  // 95% interval (worst fact) and the sampling parameters.
  int sampled = 0;
  double max_half_width = 0;
  int64_t samples = 0;
  for (const auto& [fact, result] : results) {
    if (result.is_exact) continue;
    ++sampled;
    max_half_width = std::max(max_half_width, 1.96 * result.std_error);
    samples = std::max(samples, result.samples);
  }
  if (sampled > 0) {
    out += "  monte carlo : " + std::to_string(sampled) +
           (sampled == 1 ? " fact" : " facts") + ", 95% CI half-width <= +-" +
           FormatDouble(max_half_width) + ", " + std::to_string(samples) +
           " samples/fact";
    if (options != nullptr) {
      out += ", seed " + std::to_string(options->monte_carlo.seed);
    }
    out += "\n";
  }
  if (lineage != nullptr && (lineage->circuits_compiled > 0 ||
                             lineage->budget_fallbacks > 0)) {
    out += "  lineage     : " + std::to_string(lineage->circuits_compiled) +
           " circuits, " + std::to_string(lineage->circuit_nodes) +
           " nodes, " + std::to_string(lineage->cache_hits) + "/" +
           std::to_string(lineage->cache_lookups) + " compiler cache hits, " +
           std::to_string(lineage->budget_fallbacks) + " budget fallbacks\n";
  }
  return out;
}

}  // namespace shapcq
