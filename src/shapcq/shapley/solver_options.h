// Options shared by the solver façade, SolverSession, and the batched
// engine scorers.
//
// SolverOptions used to live in session.h, but the batched ScoreAllFn
// entry points (engine_registry.h) now receive the session's options so
// engines can parallelize internally (num_threads) without the registry
// depending on the session layer. This header is the dependency-free
// meeting point: engine_registry.h and session.h both include it.

#ifndef SHAPCQ_SHAPLEY_SOLVER_OPTIONS_H_
#define SHAPCQ_SHAPLEY_SOLVER_OPTIONS_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "shapcq/shapley/monte_carlo.h"
#include "shapcq/shapley/score.h"

namespace shapcq {

class TraceContext;  // obs/trace.h — forward-declared to stay dependency-free

enum class SolveMethod {
  kAuto,        // exact DP, else brute force (small), else Monte Carlo
  kExactOnly,   // exact DP or error
  kBruteForce,  // force subset enumeration
  kMonteCarlo,  // force sampling
};

// Per-request circuit-cache attribution sink (lineage/circuit_cache.h).
// The lineage engine shards answers over a thread pool, so a request that
// wants its own hit/miss split (the daemon's per-tenant metrics) passes a
// pointer here and the shards add into it with relaxed atomics.
struct CircuitCacheCounters {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
};

// Compilation budget of the lineage-circuit engine (lineage/engine.h).
// Exceeding any limit makes the engine fail with UNSUPPORTED for the
// offending computation, and the session falls through to brute force
// (small instances) or Monte Carlo — approximate, but never wrong.
struct LineageOptions {
  // Maximum decision-DNNF nodes per answer circuit.
  int64_t max_circuit_nodes = int64_t{1} << 17;
  // Maximum lineage variables (endogenous facts) per answer.
  int max_answer_vars = 256;
  // Maximum DNF clauses (homomorphisms) per answer before compilation.
  int64_t max_answer_clauses = 8192;
  // Consult the process-wide cross-tenant CircuitCache for each answer's
  // compiled circuit (scores are bitwise-identical either way; off means
  // every answer compiles privately).
  bool share_circuits = true;
  // Optional per-request hit/miss sink; null means only the cache's own
  // global counters record the traffic. Borrowed, not owned.
  CircuitCacheCounters* cache_counters = nullptr;
};

struct SolverOptions {
  ScoreKind score = ScoreKind::kShapley;
  SolveMethod method = SolveMethod::kAuto;
  MonteCarloOptions monte_carlo;
  LineageOptions lineage;
  // Worker threads for batched computations: the per-fact fan-out in
  // ComputeAll and the internal sharding of the batched engine scorers
  // (ScoreAllFn); < 1 means hardware concurrency. Exact results are
  // bitwise-identical regardless of the thread count.
  int num_threads = 0;
  // Cooperative cancellation for serving deadlines (serve/server.h). When
  // set, the session polls it on the solving thread at coarse phase
  // boundaries — before the exact sweep, between engines, and before the
  // brute-force/Monte-Carlo fallback — and a true return makes the call
  // fail with StatusCode::kDeadlineExceeded instead of starting the next
  // phase. Work already in flight (one engine's batch) runs to completion:
  // cancellation never tears down worker threads mid-accumulation, so
  // results that do complete stay bitwise-deterministic. Null means never
  // cancelled.
  std::function<bool()> cancelled;
  // Optional per-request trace sink (obs/trace.h). Borrowed, not owned,
  // and NOT thread-safe: span sites record on the calling thread only —
  // the session strips this pointer from the option copies it hands to
  // per-fact ParallelFor shards, so tracing can never race or perturb
  // results. Null means no span collection (one pointer test per site).
  TraceContext* trace = nullptr;
};

// True when options carry a cancellation hook and it reports expiry.
inline bool SolveCancelled(const SolverOptions& options) {
  return options.cancelled && options.cancelled();
}

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_SOLVER_OPTIONS_H_
