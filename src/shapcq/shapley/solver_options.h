// Options shared by the solver façade, SolverSession, and the batched
// engine scorers.
//
// SolverOptions used to live in session.h, but the batched ScoreAllFn
// entry points (engine_registry.h) now receive the session's options so
// engines can parallelize internally (num_threads) without the registry
// depending on the session layer. This header is the dependency-free
// meeting point: engine_registry.h and session.h both include it.

#ifndef SHAPCQ_SHAPLEY_SOLVER_OPTIONS_H_
#define SHAPCQ_SHAPLEY_SOLVER_OPTIONS_H_

#include "shapcq/shapley/monte_carlo.h"
#include "shapcq/shapley/score.h"

namespace shapcq {

enum class SolveMethod {
  kAuto,        // exact DP, else brute force (small), else Monte Carlo
  kExactOnly,   // exact DP or error
  kBruteForce,  // force subset enumeration
  kMonteCarlo,  // force sampling
};

struct SolverOptions {
  ScoreKind score = ScoreKind::kShapley;
  SolveMethod method = SolveMethod::kAuto;
  MonteCarloOptions monte_carlo;
  // Worker threads for batched computations: the per-fact fan-out in
  // ComputeAll and the internal sharding of the batched engine scorers
  // (ScoreAllFn); < 1 means hardware concurrency. Exact results are
  // bitwise-identical regardless of the thread count.
  int num_threads = 0;
};

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_SOLVER_OPTIONS_H_
