#include "shapcq/shapley/plan.h"

#include <utility>

#include "shapcq/agg/value_function.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/shapley/solver.h"

namespace shapcq {

const char* ScoreKindName(ScoreKind score) {
  return score == ScoreKind::kShapley ? "shapley" : "banzhaf";
}

const char* FrontierVerdictName(bool inside_frontier) {
  return inside_frontier ? "inside (PTIME for every localized tau)"
                         : "outside (hard for some tau; exact may still "
                           "apply for this tau, else fallback)";
}

std::string PlanFingerprint(const AggregateQuery& a, ScoreKind score) {
  return "Q" + CanonicalQueryKey(a.query) + "|alpha=" + a.alpha.ToString() +
         "|tau=" + a.tau->FingerprintToken() +
         "|score=" + ScoreKindName(score);
}

std::shared_ptr<const AttributionPlan> AttributionPlan::Compile(
    AggregateQuery a, ScoreKind score) {
  std::string fingerprint = PlanFingerprint(a, score);
  return CompileWithFingerprint(std::move(a), score, std::move(fingerprint));
}

std::shared_ptr<const AttributionPlan> AttributionPlan::CompileWithFingerprint(
    AggregateQuery a, ScoreKind score, std::string fingerprint) {
  auto plan =
      std::shared_ptr<AttributionPlan>(new AttributionPlan(std::move(a), score));
  plan->fingerprint_ = std::move(fingerprint);
  const ConjunctiveQuery& q = plan->a_.query;
  plan->classification_ = Classify(q);
  plan->has_self_join_ = q.HasSelfJoin();
  plan->inside_frontier_ =
      !plan->has_self_join_ &&
      AtLeast(plan->classification_, TractabilityFrontier(plan->a_.alpha));
  plan->localization_atoms_ = LocalizationAtoms(q, *plan->a_.tau);
  plan->root_variables_ = RootVariables(q);
  plan->connected_components_ = ConnectedComponents(q);
  plan->engines_ = EngineRegistry::Global().CandidatesFor(plan->a_);
  return plan;
}

StatusOr<std::string> AttributionPlan::ExactAlgorithmName() const {
  if (engines_.empty()) return UnsupportedError("no exact engine");
  return engines_[0]->name;
}

std::string AttributionPlan::Explain() const {
  std::string out;
  out += "fingerprint     : " + fingerprint_ + "\n";
  out += "hierarchy class : ";
  out += HierarchyClassName(classification_);
  if (has_self_join_) out += " (self-join)";
  out += "\n";
  out += "frontier        : ";
  out += FrontierVerdictName(inside_frontier_);
  out += "\n";
  out += "tau localization: ";
  if (localization_atoms_.empty()) {
    out += "not localized";
  } else {
    out += "atoms {";
    for (size_t i = 0; i < localization_atoms_.size(); ++i) {
      if (i > 0) out += ", ";
      out += a_.query.atoms()[static_cast<size_t>(localization_atoms_[i])]
                 .ToString();
    }
    out += "}";
  }
  out += "\n";
  out += "root variables  : ";
  if (root_variables_.empty()) {
    out += "none";
  } else {
    for (size_t i = 0; i < root_variables_.size(); ++i) {
      if (i > 0) out += ", ";
      out += root_variables_[i];
    }
  }
  out += "\n";
  out += "components      : " + std::to_string(connected_components_.size()) +
         "\n";
  out += "engine chain    : ";
  if (engines_.empty()) {
    out += "none (brute force / Monte Carlo fallback only)\n";
  } else {
    out += "\n";
    for (size_t i = 0; i < engines_.size(); ++i) {
      const EngineProvider& engine = *engines_[i];
      out += "  " + std::to_string(i + 1) + ". " + engine.name + "  [";
      bool first = true;
      auto entry = [&out, &first](const char* name) {
        if (!first) out += ", ";
        out += name;
        first = false;
      };
      if (engine.score_all != nullptr) entry("batched");
      if (engine.score_one != nullptr) entry("per-fact");
      if (engine.sum_k != nullptr) entry("sum_k");
      out += "]\n";
    }
  }
  return out;
}

PlanCache& PlanCache::Global() {
  static PlanCache* cache = new PlanCache();
  return *cache;
}

std::shared_ptr<const AttributionPlan> PlanCache::GetOrCompile(
    const AggregateQuery& a, ScoreKind score, bool* cache_hit) {
  if (cache_hit != nullptr) *cache_hit = false;
  // Identity-based τ tokens can never be looked up again under an equal
  // key, so caching them would only grow the map — one dead entry per
  // per-request callback τ in a serving loop. Compile and stay out of the
  // cache (counted as a miss).
  if (!a.tau->HasCanonicalFingerprint()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++misses_;
    }
    return AttributionPlan::Compile(a, score);
  }
  std::string fingerprint = PlanFingerprint(a, score);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(fingerprint);
    if (it != plans_.end()) {
      ++hits_;
      if (cache_hit != nullptr) *cache_hit = true;
      return it->second;
    }
  }
  // Compile outside the lock so slow compilations don't serialize unrelated
  // queries; on a lost race the first inserted plan wins.
  std::shared_ptr<const AttributionPlan> plan =
      AttributionPlan::CompileWithFingerprint(a, score, fingerprint);
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  auto [it, inserted] = plans_.emplace(fingerprint, plan);
  if (!inserted) return it->second;
  insertion_order_.push_back(std::move(fingerprint));
  while (plans_.size() > max_entries_) {
    plans_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++evictions_;
  }
  return plan;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.entries = plans_.size();
  stats.evictions = evictions_;
  return stats;
}

std::vector<std::shared_ptr<const AttributionPlan>> PlanCache::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const AttributionPlan>> plans;
  plans.reserve(insertion_order_.size());
  for (const std::string& fingerprint : insertion_order_) {
    auto it = plans_.find(fingerprint);
    if (it != plans_.end()) plans.push_back(it->second);
  }
  return plans;
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  insertion_order_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

}  // namespace shapcq
