#include "shapcq/shapley/session.h"

#include <atomic>

#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/solver.h"
#include "shapcq/util/check.h"
#include "shapcq/util/parallel.h"

namespace shapcq {

namespace {

constexpr const char* kNoEngineMessage = "no exact engine applies";

SolveResult ExactResult(Rational value, std::string algorithm) {
  SolveResult result;
  result.is_exact = true;
  result.exact = std::move(value);
  result.approximation = result.exact.ToDouble();
  result.algorithm = std::move(algorithm);
  return result;
}

SolveResult ApproximateResult(double estimate, std::string algorithm) {
  SolveResult result;
  result.is_exact = false;
  result.approximation = estimate;
  result.algorithm = std::move(algorithm);
  return result;
}

// One engine's per-fact score: the direct scorer when the provider has
// one, the sum_k framework otherwise.
StatusOr<Rational> ScoreOneWith(const EngineProvider& engine,
                                const AggregateQuery& a, const Database& db,
                                FactId fact, ScoreKind kind) {
  if (engine.score_one != nullptr) {
    return engine.score_one(a, db, fact, kind);
  }
  if (engine.sum_k != nullptr) {
    return ScoreViaSumK(a, db, fact, engine.sum_k, kind);
  }
  return UnsupportedError("engine '" + engine.name +
                          "' has no per-fact entry point");
}

}  // namespace

SolverSession::SolverSession(AggregateQuery a, const Database& db)
    : a_(std::move(a)),
      db_(db),
      engines_(EngineRegistry::Global().CandidatesFor(a_)) {}

HierarchyClass SolverSession::classification() const {
  if (!classification_.has_value()) {
    classification_ = Classify(a_.query);
  }
  return *classification_;
}

bool SolverSession::inside_frontier() const {
  if (a_.query.HasSelfJoin()) return false;
  return AtLeast(classification(), TractabilityFrontier(a_.alpha));
}

StatusOr<std::string> SolverSession::ExactAlgorithmName() const {
  if (engines_.empty()) return UnsupportedError("no exact engine");
  return engines_[0]->name;
}

const SupportEvaluator& SolverSession::support_evaluator() {
  if (support_evaluator_ == nullptr) {
    support_evaluator_ = std::make_unique<SupportEvaluator>(a_, db_);
  }
  return *support_evaluator_;
}

StatusOr<SolveResult> SolverSession::ComputeExact(FactId fact,
                                                  const SolverOptions& options,
                                                  Status* first_failure) const {
  Status failure = UnsupportedError(kNoEngineMessage);
  for (const EngineProvider* engine : engines_) {
    StatusOr<Rational> score =
        ScoreOneWith(*engine, a_, db_, fact, options.score);
    if (score.ok()) {
      return ExactResult(std::move(score).value(), engine->name);
    }
    if (failure.message() == kNoEngineMessage) failure = score.status();
  }
  if (first_failure != nullptr) *first_failure = failure;
  return failure;
}

StatusOr<SolveResult> SolverSession::Compute(FactId fact,
                                             const SolverOptions& options) {
  if (!db_.fact(fact).endogenous) {
    return InvalidArgumentError("fact is exogenous: " +
                                db_.fact(fact).ToString());
  }
  switch (options.method) {
    case SolveMethod::kExactOnly:
      return ComputeExact(fact, options, nullptr);
    case SolveMethod::kBruteForce: {
      StatusOr<Rational> score =
          BruteForceScore(a_, db_, fact, options.score);
      if (!score.ok()) return score.status();
      return ExactResult(std::move(score).value(), "brute-force");
    }
    case SolveMethod::kMonteCarlo: {
      const SupportEvaluator& evaluator = support_evaluator();
      StatusOr<MonteCarloResult> mc =
          options.score == ScoreKind::kShapley
              ? MonteCarloShapley(evaluator, fact, options.monte_carlo)
              : MonteCarloBanzhaf(evaluator, fact, options.monte_carlo);
      if (!mc.ok()) return mc.status();
      return ApproximateResult(mc->estimate, "monte-carlo");
    }
    case SolveMethod::kAuto: {
      StatusOr<SolveResult> exact = ComputeExact(fact, options, nullptr);
      if (exact.ok()) return exact;
      SolverOptions forced = options;
      forced.method = db_.num_endogenous() <= kBruteForceMaxPlayers
                          ? SolveMethod::kBruteForce
                          : SolveMethod::kMonteCarlo;
      return Compute(fact, forced);
    }
  }
  SHAPCQ_UNREACHABLE();
}

StatusOr<std::vector<std::pair<FactId, SolveResult>>>
SolverSession::ComputeAllExact(const SolverOptions& options,
                               Status* first_failure) const {
  Status failure = UnsupportedError(kNoEngineMessage);
  std::vector<FactId> facts = db_.EndogenousFacts();
  for (const EngineProvider* engine : engines_) {
    if (engine->score_all != nullptr) {
      StatusOr<std::vector<std::pair<FactId, Rational>>> batch =
          engine->score_all(a_, db_, options);
      if (batch.ok()) {
        std::vector<std::pair<FactId, SolveResult>> results;
        results.reserve(batch->size());
        for (auto& [fact, score] : *batch) {
          results.emplace_back(fact,
                               ExactResult(std::move(score), engine->name));
        }
        return results;
      }
      if (failure.message() == kNoEngineMessage) failure = batch.status();
      continue;
    }
    if (engine->score_one == nullptr && engine->sum_k == nullptr) continue;
    // Per-fact sweep with this engine, fanned out over the thread pool.
    // Slot i holds fact i's result, so the output order is deterministic.
    std::vector<StatusOr<Rational>> scores(
        facts.size(), StatusOr<Rational>(UnsupportedError("unset")));
    std::atomic<bool> failed{false};
    ParallelFor(
        static_cast<int64_t>(facts.size()),
        [&](int64_t i) {
          if (failed.load(std::memory_order_relaxed)) return;
          FactId fact = facts[static_cast<size_t>(i)];
          scores[static_cast<size_t>(i)] =
              ScoreOneWith(*engine, a_, db_, fact, options.score);
          if (!scores[static_cast<size_t>(i)].ok()) {
            failed.store(true, std::memory_order_relaxed);
          }
        },
        options.num_threads);
    bool all_ok = true;
    for (const StatusOr<Rational>& score : scores) {
      if (score.ok()) continue;
      all_ok = false;
      // Slots skipped by the early abort keep the "unset" sentinel; record
      // the first genuine engine failure instead.
      if (failure.message() == kNoEngineMessage &&
          score.status().message() != "unset") {
        failure = score.status();
      }
    }
    if (all_ok) {
      std::vector<std::pair<FactId, SolveResult>> results;
      results.reserve(facts.size());
      for (size_t i = 0; i < facts.size(); ++i) {
        results.emplace_back(
            facts[i],
            ExactResult(std::move(scores[i]).value(), engine->name));
      }
      return results;
    }
  }
  if (first_failure != nullptr) *first_failure = failure;
  return failure;
}

StatusOr<std::vector<std::pair<FactId, SolveResult>>>
SolverSession::BruteForceAll(const SolverOptions& options) const {
  StatusOr<std::vector<std::pair<FactId, Rational>>> scores =
      BruteForceScoreAll(a_, db_, options.score);
  if (!scores.ok()) return scores.status();
  std::vector<std::pair<FactId, SolveResult>> results;
  results.reserve(scores->size());
  for (auto& [fact, score] : *scores) {
    results.emplace_back(fact, ExactResult(std::move(score), "brute-force"));
  }
  return results;
}

StatusOr<std::vector<std::pair<FactId, SolveResult>>>
SolverSession::MonteCarloAll(const SolverOptions& options) {
  const SupportEvaluator& evaluator = support_evaluator();
  std::vector<FactId> facts = db_.EndogenousFacts();
  std::vector<StatusOr<MonteCarloResult>> estimates(
      facts.size(), StatusOr<MonteCarloResult>(UnsupportedError("unset")));
  // Each per-fact run seeds its own generator (exactly like the per-fact
  // path), so the fan-out changes nothing about the estimates.
  ParallelFor(
      static_cast<int64_t>(facts.size()),
      [&](int64_t i) {
        FactId fact = facts[static_cast<size_t>(i)];
        estimates[static_cast<size_t>(i)] =
            options.score == ScoreKind::kShapley
                ? MonteCarloShapley(evaluator, fact, options.monte_carlo)
                : MonteCarloBanzhaf(evaluator, fact, options.monte_carlo);
      },
      options.num_threads);
  std::vector<std::pair<FactId, SolveResult>> results;
  results.reserve(facts.size());
  for (size_t i = 0; i < facts.size(); ++i) {
    if (!estimates[i].ok()) return estimates[i].status();
    results.emplace_back(
        facts[i], ApproximateResult(estimates[i]->estimate, "monte-carlo"));
  }
  return results;
}

StatusOr<std::vector<std::pair<FactId, SolveResult>>> SolverSession::ComputeAll(
    const SolverOptions& options) {
  switch (options.method) {
    case SolveMethod::kBruteForce:
      return BruteForceAll(options);
    case SolveMethod::kMonteCarlo:
      return MonteCarloAll(options);
    case SolveMethod::kExactOnly:
      return ComputeAllExact(options, nullptr);
    case SolveMethod::kAuto: {
      StatusOr<std::vector<std::pair<FactId, SolveResult>>> exact =
          ComputeAllExact(options, nullptr);
      if (exact.ok()) return exact;
      if (db_.num_endogenous() <= kBruteForceMaxPlayers) {
        return BruteForceAll(options);
      }
      return MonteCarloAll(options);
    }
  }
  SHAPCQ_UNREACHABLE();
}

StatusOr<SumKSeries> SolverSession::ComputeSumKSeries() const {
  Status failure = UnsupportedError(kNoEngineMessage);
  for (const EngineProvider* engine : engines_) {
    if (engine->sum_k == nullptr) continue;
    StatusOr<SumKSeries> series = engine->sum_k(a_, db_);
    if (series.ok()) return series;
    if (failure.message() == kNoEngineMessage) failure = series.status();
  }
  StatusOr<SumKSeries> brute = BruteForceSumK(a_, db_);
  if (brute.ok()) return brute;
  return failure;
}

}  // namespace shapcq
