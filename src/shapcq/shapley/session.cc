#include "shapcq/shapley/session.h"

#include "shapcq/lineage/engine.h"
#include "shapcq/obs/trace.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/solver.h"
#include "shapcq/util/check.h"
#include "shapcq/util/parallel.h"

namespace shapcq {

namespace {

constexpr const char* kNoEngineMessage = "no exact engine applies";

SolveResult ExactResult(Rational value, std::string algorithm) {
  SolveResult result;
  result.is_exact = true;
  result.exact = std::move(value);
  result.approximation = result.exact.ToDouble();
  result.algorithm = std::move(algorithm);
  return result;
}

SolveResult ApproximateResult(const MonteCarloResult& mc,
                              std::string algorithm) {
  SolveResult result;
  result.is_exact = false;
  result.approximation = mc.estimate;
  result.std_error = mc.std_error;
  result.samples = mc.samples;
  result.algorithm = std::move(algorithm);
  return result;
}

// One engine's per-fact score: the direct scorer when the provider has
// one, the sum_k framework otherwise.
StatusOr<Rational> ScoreOneWith(const EngineProvider& engine,
                                const AggregateQuery& a, const Database& db,
                                FactId fact, const SolverOptions& options) {
  if (engine.score_one != nullptr) {
    return engine.score_one(a, db, fact, options);
  }
  if (engine.sum_k != nullptr) {
    return ScoreViaSumK(a, db, fact, engine.sum_k, options);
  }
  return UnsupportedError("engine '" + engine.name +
                          "' has no per-fact entry point");
}

// The structured kExactOnly failure: names the player count, whether it is
// past the brute-force horizon, and the engines consulted, so callers see
// WHY nothing exact ran instead of one engine's shape complaint.
Status ExactUnavailableStatus(const AttributionPlan& plan, int players,
                              const Status& first_failure) {
  std::string message = "no exact engine solved the query over " +
                        std::to_string(players) + " endogenous facts";
  if (players > kBruteForceMaxPlayers) {
    message += " (exceeds the brute-force limit of " +
               std::to_string(kBruteForceMaxPlayers) + " players)";
  }
  message += "; engines consulted: ";
  if (plan.engines().empty()) {
    message += "none";
  } else {
    message += "[";
    for (size_t i = 0; i < plan.engines().size(); ++i) {
      if (i > 0) message += ", ";
      message += plan.engines()[i]->name;
    }
    message += "]";
  }
  message += "; first failure: " + first_failure.message();
  return UnsupportedError(message);
}

// The structured deadline failure: how far the exact solve got before the
// cancellation hook fired, plus the bounded-time way out — callers (e.g.
// serve/server.h) degrade to method=kMonteCarlo, whose cost is capped by
// the sample budget.
Status DeadlineStatus(size_t engines_tried, size_t engines_total,
                      size_t facts_solved, size_t facts_total) {
  return DeadlineExceededError(
      "deadline exceeded during exact solve: " +
      std::to_string(engines_tried) + "/" + std::to_string(engines_total) +
      " engines tried, " + std::to_string(facts_solved) + "/" +
      std::to_string(facts_total) +
      " facts solved; retry with method=mc for a bounded-time estimate");
}

}  // namespace

SolverSession::SolverSession(std::shared_ptr<const AttributionPlan> plan,
                             const Database& db)
    : plan_(std::move(plan)), db_(db) {
  SHAPCQ_CHECK(plan_ != nullptr);
}

SolverSession::SolverSession(AggregateQuery a, const Database& db)
    : SolverSession(PlanCache::Global().GetOrCompile(a), db) {}

const SupportEvaluator& SolverSession::support_evaluator() {
  if (support_evaluator_ == nullptr) {
    support_evaluator_ = std::make_unique<SupportEvaluator>(a(), db_);
  }
  return *support_evaluator_;
}

StatusOr<SolveResult> SolverSession::ComputeExact(FactId fact,
                                                  const SolverOptions& options,
                                                  Status* first_failure) const {
  Status failure = UnsupportedError(kNoEngineMessage);
  size_t engines_tried = 0;
  for (const EngineProvider* engine : plan_->engines()) {
    if (SolveCancelled(options)) {
      Status deadline =
          DeadlineStatus(engines_tried, plan_->engines().size(), 0, 1);
      if (first_failure != nullptr) *first_failure = deadline;
      return deadline;
    }
    ++engines_tried;
    StatusOr<Rational> score =
        ScoreOneWith(*engine, a(), db_, fact, options);
    if (score.ok()) {
      return ExactResult(std::move(score).value(), engine->name);
    }
    if (failure.message() == kNoEngineMessage) failure = score.status();
  }
  if (first_failure != nullptr) *first_failure = failure;
  return failure;
}

StatusOr<SolveResult> SolverSession::Compute(FactId fact,
                                             const SolverOptions& options) {
  if (!db_.fact(fact).endogenous) {
    return InvalidArgumentError("fact is exogenous: " +
                                db_.fact(fact).ToString());
  }
  switch (options.method) {
    case SolveMethod::kExactOnly: {
      StatusOr<SolveResult> exact = ComputeExact(fact, options, nullptr);
      if (exact.ok()) return exact;
      return ExactUnavailableStatus(*plan_, db_.num_endogenous(),
                                    exact.status());
    }
    case SolveMethod::kBruteForce: {
      StatusOr<Rational> score =
          BruteForceScore(a(), db_, fact, options.score);
      if (!score.ok()) return score.status();
      return ExactResult(std::move(score).value(), "brute-force");
    }
    case SolveMethod::kMonteCarlo: {
      const SupportEvaluator& evaluator = support_evaluator();
      // Per-fact seed derivation: deterministic, decorrelated across
      // facts, and shared with the batched path (MonteCarloFor).
      MonteCarloOptions mc_options =
          PerFactMonteCarloOptions(options.monte_carlo, fact);
      StatusOr<MonteCarloResult> mc =
          options.score == ScoreKind::kShapley
              ? MonteCarloShapley(evaluator, fact, mc_options)
              : MonteCarloBanzhaf(evaluator, fact, mc_options);
      if (!mc.ok()) return mc.status();
      return ApproximateResult(*mc, "monte-carlo");
    }
    case SolveMethod::kAuto: {
      StatusOr<SolveResult> exact = ComputeExact(fact, options, nullptr);
      if (exact.ok()) return exact;
      // A deadline cancellation surfaces as-is: the caller decides whether
      // to degrade to a bounded Monte Carlo run, and the brute-force
      // fallback below is exactly the unbounded work the deadline forbids.
      if (exact.status().code() == StatusCode::kDeadlineExceeded) {
        return exact.status();
      }
      SolverOptions forced = options;
      forced.method = db_.num_endogenous() <= kBruteForceMaxPlayers
                          ? SolveMethod::kBruteForce
                          : SolveMethod::kMonteCarlo;
      return Compute(fact, forced);
    }
  }
  SHAPCQ_UNREACHABLE();
}

std::vector<size_t> SolverSession::ExactSweep(
    const std::vector<FactId>& facts, const SolverOptions& options,
    std::vector<SolveResult>* results, Status* first_failure) const {
  SHAPCQ_CHECK(results->size() == facts.size());
  Status failure = UnsupportedError(kNoEngineMessage);
  auto note_failure = [&failure](const Status& status) {
    if (failure.message() == kNoEngineMessage) failure = status;
  };
  std::vector<size_t> remaining(facts.size());
  for (size_t i = 0; i < facts.size(); ++i) remaining[i] = i;
  size_t engines_tried = 0;
  for (const EngineProvider* engine : plan_->engines()) {
    if (remaining.empty()) break;
    // Deadline poll between engines (on the calling thread only, so the
    // sweep stays deterministic): a fired cancellation stops the chain and
    // surfaces as the kDeadlineExceeded failure ComputeAll propagates.
    if (SolveCancelled(options)) {
      failure = DeadlineStatus(engines_tried, plan_->engines().size(),
                               facts.size() - remaining.size(), facts.size());
      if (first_failure != nullptr) *first_failure = failure;
      return remaining;
    }
    ++engines_tried;
    // One span per engine attempt, recorded on the calling thread only.
    // The lineage-stats delta attributes circuit work (nodes compiled,
    // budget fallbacks) to the engine that caused it; `reject` keeps this
    // engine's own failure even when an earlier engine owns first_failure.
    const size_t open_before = remaining.size();
    std::string reject;
    LineageStatsSnapshot lineage_before;
    if (options.trace != nullptr) {
      lineage_before = LineageStats::Global().Snapshot();
    }
    Span engine_span(options.trace, "engine:" + engine->name);
    auto finish_span = [&]() {
      if (options.trace == nullptr) return;
      engine_span.Annotate("facts_solved",
                           static_cast<int64_t>(open_before - remaining.size()));
      engine_span.Annotate("facts_open",
                           static_cast<int64_t>(remaining.size()));
      if (!reject.empty()) engine_span.Annotate("reject", reject);
      const LineageStatsSnapshot delta = LineageStatsDelta(
          LineageStats::Global().Snapshot(), lineage_before);
      if (delta.circuit_nodes > 0) {
        engine_span.Annotate("circuit_nodes",
                             static_cast<int64_t>(delta.circuit_nodes));
      }
      if (delta.budget_fallbacks > 0) {
        engine_span.Annotate("budget_fallbacks",
                             static_cast<int64_t>(delta.budget_fallbacks));
      }
      engine_span.End();
    };
    bool batch_failed = false;
    if (engine->score_all != nullptr) {
      // The batched scorer covers every endogenous fact in one run, so it
      // serves leftover subsets too (one batch beats a per-fact sweep of
      // the leftovers whenever more than a handful of facts remain, and
      // its values are the per-fact values by contract). The per-fact
      // sweep below stays as the fallback for batch failures.
      StatusOr<std::vector<std::pair<FactId, Rational>>> batch =
          engine->score_all(a(), db_, options);
      if (batch.ok()) {
        // The contract guarantees one entry per endogenous fact,
        // ascending — aligned with `facts`. Guard anyway so a misbehaving
        // custom engine degrades to "failed" instead of mixing up facts.
        bool aligned = batch->size() == facts.size();
        for (size_t i = 0; aligned && i < facts.size(); ++i) {
          aligned = (*batch)[i].first == facts[i];
        }
        if (aligned) {
          for (size_t idx : remaining) {
            (*results)[idx] = ExactResult(std::move((*batch)[idx].second),
                                          engine->name);
          }
          remaining.clear();
          finish_span();
          break;
        }
        Status misaligned = InternalError("engine '" + engine->name +
                                          "' returned a misaligned batch");
        reject = misaligned.message();
        note_failure(misaligned);
        batch_failed = true;
      } else {
        reject = batch.status().message();
        note_failure(batch.status());
        batch_failed = true;
      }
    }
    if (engine->score_one == nullptr && engine->sum_k == nullptr) {
      finish_span();
      continue;
    }
    // A per-fact scorer that merely reruns the batch would repeat the
    // failing computation once per open fact for the same outcome.
    if (batch_failed && engine->score_one_reruns_batch) {
      finish_span();
      continue;
    }
    // Per-fact sweep with this engine over the still-open facts, fanned out
    // over the thread pool. Slot i holds remaining[i]'s outcome, so the
    // result is independent of scheduling; failing facts stay open for the
    // next engine instead of dragging the successes along.
    std::vector<StatusOr<Rational>> scores(
        remaining.size(), StatusOr<Rational>(UnsupportedError("unset")));
    // Shards must never see the trace sink: TraceContext is single-owner
    // and records on the sweep's thread only (see solver_options.h).
    SolverOptions shard_options = options;
    shard_options.trace = nullptr;
    ParallelFor(
        static_cast<int64_t>(remaining.size()),
        [&](int64_t i) {
          FactId fact = facts[remaining[static_cast<size_t>(i)]];
          scores[static_cast<size_t>(i)] =
              ScoreOneWith(*engine, a(), db_, fact, shard_options);
        },
        options.num_threads);
    std::vector<size_t> still_open;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (scores[i].ok()) {
        (*results)[remaining[i]] =
            ExactResult(std::move(scores[i]).value(), engine->name);
      } else {
        if (reject.empty()) reject = scores[i].status().message();
        note_failure(scores[i].status());
        still_open.push_back(remaining[i]);
      }
    }
    remaining = std::move(still_open);
    finish_span();
  }
  if (first_failure != nullptr && !remaining.empty()) *first_failure = failure;
  return remaining;
}

StatusOr<std::vector<std::pair<FactId, SolveResult>>>
SolverSession::BruteForceAll(const SolverOptions& options) const {
  StatusOr<std::vector<std::pair<FactId, Rational>>> scores =
      BruteForceScoreAll(a(), db_, options.score);
  if (!scores.ok()) return scores.status();
  std::vector<std::pair<FactId, SolveResult>> results;
  results.reserve(scores->size());
  for (auto& [fact, score] : *scores) {
    results.emplace_back(fact, ExactResult(std::move(score), "brute-force"));
  }
  return results;
}

Status SolverSession::MonteCarloFor(const std::vector<FactId>& facts,
                                    const std::vector<size_t>& indices,
                                    const SolverOptions& options,
                                    std::vector<SolveResult>* results) {
  const SupportEvaluator& evaluator = support_evaluator();
  std::vector<StatusOr<MonteCarloResult>> estimates(
      indices.size(), StatusOr<MonteCarloResult>(UnsupportedError("unset")));
  // Each per-fact run derives its own seed from (options.seed, fact) —
  // exactly like the per-fact path — so the fan-out changes nothing about
  // the estimates and the thread count never does either.
  ParallelFor(
      static_cast<int64_t>(indices.size()),
      [&](int64_t i) {
        FactId fact = facts[indices[static_cast<size_t>(i)]];
        MonteCarloOptions mc_options =
            PerFactMonteCarloOptions(options.monte_carlo, fact);
        estimates[static_cast<size_t>(i)] =
            options.score == ScoreKind::kShapley
                ? MonteCarloShapley(evaluator, fact, mc_options)
                : MonteCarloBanzhaf(evaluator, fact, mc_options);
      },
      options.num_threads);
  for (size_t i = 0; i < indices.size(); ++i) {
    if (!estimates[i].ok()) return estimates[i].status();
    (*results)[indices[i]] =
        ApproximateResult(*estimates[i], "monte-carlo");
  }
  return Status::Ok();
}

StatusOr<std::vector<std::pair<FactId, SolveResult>>>
SolverSession::MonteCarloAll(const SolverOptions& options) {
  std::vector<FactId> facts = db_.EndogenousFacts();
  std::vector<size_t> all(facts.size());
  for (size_t i = 0; i < facts.size(); ++i) all[i] = i;
  std::vector<SolveResult> solved(facts.size());
  Status status = MonteCarloFor(facts, all, options, &solved);
  if (!status.ok()) return status;
  std::vector<std::pair<FactId, SolveResult>> results;
  results.reserve(facts.size());
  for (size_t i = 0; i < facts.size(); ++i) {
    results.emplace_back(facts[i], std::move(solved[i]));
  }
  return results;
}

StatusOr<std::vector<std::pair<FactId, SolveResult>>> SolverSession::ComputeAll(
    const SolverOptions& options) {
  switch (options.method) {
    case SolveMethod::kBruteForce: {
      Span span(options.trace, "brute_force");
      StatusOr<std::vector<std::pair<FactId, SolveResult>>> brute =
          BruteForceAll(options);
      if (brute.ok()) {
        span.Annotate("facts", static_cast<int64_t>(brute->size()));
      }
      return brute;
    }
    case SolveMethod::kMonteCarlo: {
      Span span(options.trace, "monte_carlo");
      StatusOr<std::vector<std::pair<FactId, SolveResult>>> mc =
          MonteCarloAll(options);
      if (mc.ok()) {
        span.Annotate("facts", static_cast<int64_t>(mc->size()));
        span.Annotate("samples", options.monte_carlo.num_samples);
      }
      return mc;
    }
    case SolveMethod::kExactOnly:
    case SolveMethod::kAuto: {
      std::vector<FactId> facts = db_.EndogenousFacts();
      std::vector<SolveResult> solved(facts.size());
      Status failure = UnsupportedError(kNoEngineMessage);
      std::vector<size_t> remaining =
          ExactSweep(facts, options, &solved, &failure);
      if (!remaining.empty()) {
        if (failure.code() == StatusCode::kDeadlineExceeded) return failure;
        if (options.method == SolveMethod::kExactOnly) {
          return ExactUnavailableStatus(*plan_, db_.num_endogenous(),
                                        failure);
        }
        // Last deadline poll before committing to a fallback, whose cost
        // (a full lattice sweep, or the sample budget) the caller then
        // pays in full.
        if (SolveCancelled(options)) {
          return DeadlineStatus(plan_->engines().size(),
                                plan_->engines().size(),
                                facts.size() - remaining.size(),
                                facts.size());
        }
        // Fallback for the unsolved facts only — engine successes stay,
        // exactly like per-fact kAuto calls.
        if (db_.num_endogenous() <= kBruteForceMaxPlayers) {
          Span span(options.trace, "brute_force");
          span.Annotate("facts", static_cast<int64_t>(remaining.size()));
          // One shared lattice sweep covers every fact (ascending, aligned
          // with `facts`); the open ones take its values.
          StatusOr<std::vector<std::pair<FactId, Rational>>> brute =
              BruteForceScoreAll(a(), db_, options.score);
          if (!brute.ok()) return brute.status();
          SHAPCQ_CHECK(brute->size() == facts.size());
          for (size_t idx : remaining) {
            SHAPCQ_CHECK((*brute)[idx].first == facts[idx]);
            solved[idx] = ExactResult(std::move((*brute)[idx].second),
                                      "brute-force");
          }
        } else {
          Span span(options.trace, "monte_carlo");
          span.Annotate("facts", static_cast<int64_t>(remaining.size()));
          span.Annotate("samples", options.monte_carlo.num_samples);
          Status status = MonteCarloFor(facts, remaining, options, &solved);
          if (!status.ok()) return status;
        }
      }
      std::vector<std::pair<FactId, SolveResult>> results;
      results.reserve(facts.size());
      for (size_t i = 0; i < facts.size(); ++i) {
        results.emplace_back(facts[i], std::move(solved[i]));
      }
      return results;
    }
  }
  SHAPCQ_UNREACHABLE();
}

StatusOr<SumKSeries> SolverSession::ComputeSumKSeries(
    const SolverOptions& options) const {
  Status failure = UnsupportedError(kNoEngineMessage);
  for (const EngineProvider* engine : plan_->engines()) {
    if (engine->sum_k == nullptr) continue;
    StatusOr<SumKSeries> series = engine->sum_k(a(), db_, options);
    if (series.ok()) return series;
    if (failure.message() == kNoEngineMessage) failure = series.status();
  }
  StatusOr<SumKSeries> brute = BruteForceSumK(a(), db_, options);
  if (brute.ok()) return brute;
  return failure;
}

}  // namespace shapcq
