// Cooperative games (Section 2 of the paper) as a standalone abstraction.
//
// A cooperative game is (P, ν) with ν(∅) = 0. The database setting
// instantiates P with the endogenous facts and ν(C) = A(C ∪ D_x) − A(D_x);
// the hardness proofs instantiate it with e.g. the Set-Cover game. This
// module provides exact Shapley/Banzhaf values for arbitrary small games by
// enumeration — the reference semantics every reduction is checked against —
// plus the axioms as predicates for property tests.

#ifndef SHAPCQ_SHAPLEY_GAME_H_
#define SHAPCQ_SHAPLEY_GAME_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "shapcq/shapley/score.h"
#include "shapcq/util/rational.h"
#include "shapcq/util/status.h"

namespace shapcq {

// A cooperative game over players 0..num_players−1 with a set-function
// utility given on bitmasks. The implementation enforces ν(∅) = 0 by
// shifting: effective ν(C) = utility(C) − utility(∅).
class CooperativeGame {
 public:
  // `utility` is called with a bitmask over players; must be deterministic.
  CooperativeGame(int num_players, std::function<Rational(uint64_t)> utility);

  int num_players() const { return num_players_; }
  // Effective utility (shifted so that ν(∅) = 0).
  Rational Utility(uint64_t coalition) const;

  // Exact score by enumeration over the 2^(n−1) coalitions avoiding the
  // player. Requires num_players <= 26.
  StatusOr<Rational> Score(int player,
                           ScoreKind kind = ScoreKind::kShapley) const;
  StatusOr<std::vector<Rational>> AllScores(
      ScoreKind kind = ScoreKind::kShapley) const;

  // Axiom predicates (enumeration-based; same size limits).
  // Σ_p Shapley(p) == ν(P).
  StatusOr<bool> SatisfiesEfficiency() const;
  // ν(C ∪ {p}) == ν(C) for all C implies Shapley(p) == 0.
  StatusOr<bool> IsNullPlayer(int player) const;
  // Players p, q interchangeable w.r.t. ν.
  StatusOr<bool> AreSymmetric(int p, int q) const;

 private:
  int num_players_;
  std::function<Rational(uint64_t)> utility_;
  Rational empty_value_;
};

// The Set-Cover game of Lemma D.5: players are sets, ν(C) = 1 iff the
// chosen sets cover {1..universe_size}.
CooperativeGame SetCoverGame(int universe_size,
                             const std::vector<std::vector<int>>& sets);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_GAME_H_
