// Sum and Count over ∃-hierarchical CQs (Livshits et al., reused as the
// baseline "prior work" engine; Theorem 3.1 context).
//
// By linearity, sum_k(Sum ∘ τ ∘ Q, D) = Σ_{t ∈ Q(D)} τ(t) · c_k(Q_t, D)
// where Q_t is the Boolean query asking whether t remains an answer, and
// c_k are its satisfaction counts. Q_t is hierarchical exactly when Q is
// ∃-hierarchical, so each term is polynomial-time. Count is Sum with τ ≡ 1.
// Unlike the other engines, this one supports arbitrary (non-localized)
// polynomial-time value functions (Section 7.3).

#ifndef SHAPCQ_SHAPLEY_SUM_COUNT_H_
#define SHAPCQ_SHAPLEY_SUM_COUNT_H_

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/score.h"
#include "shapcq/util/status.h"

namespace shapcq {

// sum_k series for A = Sum ∘ τ ∘ Q or Count ∘ τ ∘ Q. Returns UNSUPPORTED if
// the aggregate is neither, the query has self-joins, or the query is not
// ∃-hierarchical.
StatusOr<SumKSeries> SumCountSumK(const AggregateQuery& a, const Database& db);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_SUM_COUNT_H_
