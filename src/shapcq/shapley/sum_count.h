// Sum and Count over ∃-hierarchical CQs (Livshits et al., reused as the
// baseline "prior work" engine; Theorem 3.1 context).
//
// By linearity, sum_k(Sum ∘ τ ∘ Q, D) = Σ_{t ∈ Q(D)} τ(t) · c_k(Q_t, D)
// where Q_t is the Boolean query asking whether t remains an answer, and
// c_k are its satisfaction counts. Q_t is hierarchical exactly when Q is
// ∃-hierarchical, so each term is polynomial-time. Count is Sum with τ ≡ 1.
// Unlike the other engines, this one supports arbitrary (non-localized)
// polynomial-time value functions (Section 7.3).

#ifndef SHAPCQ_SHAPLEY_SUM_COUNT_H_
#define SHAPCQ_SHAPLEY_SUM_COUNT_H_

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

// sum_k series for A = Sum ∘ τ ∘ Q or Count ∘ τ ∘ Q. Returns UNSUPPORTED if
// the aggregate is neither, the query has self-joins, or the query is not
// ∃-hierarchical.
StatusOr<SumKSeries> SumCountSumK(const AggregateQuery& a, const Database& db,
                                  const SolverOptions& options = {});

// Batched all-facts scorer: the value every endogenous fact gets from the
// per-fact sum_k path, but with the per-answer work shared. Each answer t
// is bound to its Boolean query Q_t once, its relevance split is computed
// once, and the two derived databases per fact (F: f exogenous, G: f
// removed) are realized as an O(1) endogenous-flag flip / subset drop
// instead of full database copies. Facts irrelevant to Q_t contribute an
// exact 0 and are skipped. The per-answer accumulation shards over
// options.num_threads workers (contiguous answer chunks, per-worker delta
// maps merged in answer order). Results are identical to the per-fact path
// and invariant under the thread count (exact rational arithmetic; only
// the summation order differs).
StatusOr<std::vector<std::pair<FactId, Rational>>> SumCountScoreAll(
    const AggregateQuery& a, const Database& db,
    const SolverOptions& options = {});

class EngineRegistry;

// Registers the "sum-count/linearity" provider (with the batched scorer).
void RegisterSumCountEngine(EngineRegistry& registry);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_SUM_COUNT_H_
