// Has-duplicates (Dup) over sq-hierarchical CQs (Section 6, Appendix E.2).
//
// For a connected sq-hierarchical CQ every free variable occurs in every
// atom, so each fact determines the τ-value of any answer it can
// participate in. Partitioning the facts by that value makes the groups
// independent: the bag has no duplicate iff every group contributes at most
// one answer, which the P0/P1 answer-count machinery counts per group
// (Figure 5). For a disconnected query Q = Q1 × Q2 with τ localized in the
// connected Q1, the bag is Q1's bag replicated |Q2| times, so (App. E.2.3)
//
//   Dup = (Q1 nonempty ∧ |Q2| ≥ 2)  ∨  (Q1 has duplicates ∧ |Q2| = 1).
//
// The structural requirement actually used is that every head position τ
// depends on occurs in every atom of the localization component; for
// sq-hierarchical queries this holds for EVERY localized τ (Theorem 6.1),
// and for some q-hierarchical queries it holds for specific τ — e.g.
// Dup ∘ τ²_id ∘ Q^full_xyy of Proposition 7.3(3), which this engine
// therefore also solves.

#ifndef SHAPCQ_SHAPLEY_HAS_DUPLICATES_H_
#define SHAPCQ_SHAPLEY_HAS_DUPLICATES_H_

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

// sum_k series for A = Dup ∘ τ ∘ Q. Returns UNSUPPORTED unless the query is
// self-join-free and q-hierarchical, τ is localized, and every τ-relevant
// head variable occurs in every atom of the localization component (always
// true when Q is sq-hierarchical).
StatusOr<SumKSeries> HasDuplicatesSumK(const AggregateQuery& a,
                                       const Database& db,
                                       const SolverOptions& options = {});

class EngineRegistry;

// Registers the "has-duplicates/sq-hierarchical-dp" provider.
void RegisterHasDuplicatesEngine(EngineRegistry& registry);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_HAS_DUPLICATES_H_
