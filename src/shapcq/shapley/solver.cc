#include "shapcq/shapley/solver.h"

#include "shapcq/shapley/plan.h"
#include "shapcq/util/check.h"

namespace shapcq {

HierarchyClass TractabilityFrontier(const AggregateFunction& alpha) {
  switch (alpha.kind()) {
    case AggKind::kSum:
    case AggKind::kCount:
      return HierarchyClass::kExistsHierarchical;
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kCountDistinct:
      return HierarchyClass::kAllHierarchical;
    case AggKind::kAvg:
    case AggKind::kQuantile:
      return HierarchyClass::kQHierarchical;
    case AggKind::kHasDuplicates:
      return HierarchyClass::kSqHierarchical;
  }
  SHAPCQ_UNREACHABLE();
}

bool IsInsideFrontier(const AggregateFunction& alpha,
                      const ConjunctiveQuery& q) {
  if (q.HasSelfJoin()) return false;
  return AtLeast(Classify(q), TractabilityFrontier(alpha));
}

StatusOr<std::string> ShapleySolver::ExactAlgorithmName() const {
  return PlanCache::Global().GetOrCompile(a_)->ExactAlgorithmName();
}

StatusOr<SolveResult> ShapleySolver::Compute(const Database& db, FactId fact,
                                             const SolverOptions& options) const {
  SolverSession session(PlanCache::Global().GetOrCompile(a_, options.score),
                        db);
  return session.Compute(fact, options);
}

StatusOr<std::vector<std::pair<FactId, SolveResult>>>
ShapleySolver::ComputeAll(const Database& db,
                          const SolverOptions& options) const {
  SolverSession session(PlanCache::Global().GetOrCompile(a_, options.score),
                        db);
  return session.ComputeAll(options);
}

StatusOr<SumKSeries> ShapleySolver::ComputeSumKSeries(
    const Database& db, const SolverOptions& options) const {
  SolverSession session(PlanCache::Global().GetOrCompile(a_), db);
  return session.ComputeSumKSeries(options);
}

}  // namespace shapcq
