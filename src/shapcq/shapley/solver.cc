#include "shapcq/shapley/solver.h"

#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/count_distinct.h"
#include "shapcq/shapley/has_duplicates.h"
#include "shapcq/shapley/min_max.h"
#include "shapcq/shapley/special_cases.h"
#include "shapcq/shapley/sum_count.h"
#include "shapcq/util/check.h"

namespace shapcq {

HierarchyClass TractabilityFrontier(const AggregateFunction& alpha) {
  switch (alpha.kind()) {
    case AggKind::kSum:
    case AggKind::kCount:
      return HierarchyClass::kExistsHierarchical;
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kCountDistinct:
      return HierarchyClass::kAllHierarchical;
    case AggKind::kAvg:
    case AggKind::kQuantile:
      return HierarchyClass::kQHierarchical;
    case AggKind::kHasDuplicates:
      return HierarchyClass::kSqHierarchical;
  }
  SHAPCQ_UNREACHABLE();
}

bool IsInsideFrontier(const AggregateFunction& alpha,
                      const ConjunctiveQuery& q) {
  if (q.HasSelfJoin()) return false;
  return AtLeast(Classify(q), TractabilityFrontier(alpha));
}

std::vector<ShapleySolver::Engine> ShapleySolver::CandidateEngines() const {
  switch (a_.alpha.kind()) {
    case AggKind::kSum:
    case AggKind::kCount:
      return {{"sum-count/linearity", SumCountSumK}};
    case AggKind::kMin:
    case AggKind::kMax:
      return {{"min-max/all-hierarchical-dp", MinMaxSumK}};
    case AggKind::kCountDistinct:
      // Section 7.1: with a unary head and an injective τ, distinct answers
      // have distinct values, so CDist coincides with Count — which is
      // tractable on the strictly larger ∃-hierarchical class.
      if (a_.query.arity() == 1 && a_.tau->is_injective() &&
          a_.tau->DependsOn() == std::vector<int>{0}) {
        return {{"count-distinct/boolean-reduction", CountDistinctSumK},
                {"count-distinct/injective-count-rewrite",
                 [](const AggregateQuery& a, const Database& db) {
                   AggregateQuery as_count{a.query, a.tau,
                                           AggregateFunction::Count()};
                   return SumCountSumK(as_count, db);
                 }}};
      }
      return {{"count-distinct/boolean-reduction", CountDistinctSumK}};
    case AggKind::kAvg:
    case AggKind::kQuantile:
      return {{"avg-quantile/q-hierarchical-dp", AvgQuantileSumK},
              {"gated-product/prop-7.3", GatedProductSumK}};
    case AggKind::kHasDuplicates:
      return {{"has-duplicates/sq-hierarchical-dp", HasDuplicatesSumK}};
  }
  SHAPCQ_UNREACHABLE();
}

StatusOr<std::string> ShapleySolver::ExactAlgorithmName() const {
  std::vector<Engine> engines = CandidateEngines();
  if (engines.empty()) return UnsupportedError("no exact engine");
  return engines[0].name;
}

StatusOr<SolveResult> ShapleySolver::ComputeExact(const Database& db,
                                                  FactId fact,
                                                  const SolverOptions& options,
                                                  Status* first_failure) const {
  Status failure = UnsupportedError("no exact engine applies");
  for (const Engine& engine : CandidateEngines()) {
    StatusOr<Rational> score =
        ScoreViaSumK(a_, db, fact, engine.fn, options.score);
    if (score.ok()) {
      SolveResult result;
      result.is_exact = true;
      result.exact = std::move(score).value();
      result.approximation = result.exact.ToDouble();
      result.algorithm = engine.name;
      return result;
    }
    if (failure.message() == "no exact engine applies") {
      failure = score.status();
    }
  }
  if (first_failure != nullptr) *first_failure = failure;
  return failure;
}

StatusOr<SolveResult> ShapleySolver::Compute(const Database& db, FactId fact,
                                             const SolverOptions& options) const {
  if (!db.fact(fact).endogenous) {
    return InvalidArgumentError("fact is exogenous: " +
                                db.fact(fact).ToString());
  }
  switch (options.method) {
    case SolveMethod::kExactOnly:
      return ComputeExact(db, fact, options, nullptr);
    case SolveMethod::kBruteForce: {
      StatusOr<Rational> score =
          BruteForceScore(a_, db, fact, options.score);
      if (!score.ok()) return score.status();
      SolveResult result;
      result.is_exact = true;
      result.exact = std::move(score).value();
      result.approximation = result.exact.ToDouble();
      result.algorithm = "brute-force";
      return result;
    }
    case SolveMethod::kMonteCarlo: {
      StatusOr<MonteCarloResult> mc =
          options.score == ScoreKind::kShapley
              ? MonteCarloShapley(a_, db, fact, options.monte_carlo)
              : MonteCarloBanzhaf(a_, db, fact, options.monte_carlo);
      if (!mc.ok()) return mc.status();
      SolveResult result;
      result.is_exact = false;
      result.approximation = mc->estimate;
      result.algorithm = "monte-carlo";
      return result;
    }
    case SolveMethod::kAuto: {
      Status exact_failure = Status::Ok();
      StatusOr<SolveResult> exact =
          ComputeExact(db, fact, options, &exact_failure);
      if (exact.ok()) return exact;
      if (db.num_endogenous() <= kBruteForceMaxPlayers) {
        SolverOptions forced = options;
        forced.method = SolveMethod::kBruteForce;
        return Compute(db, fact, forced);
      }
      SolverOptions forced = options;
      forced.method = SolveMethod::kMonteCarlo;
      return Compute(db, fact, forced);
    }
  }
  SHAPCQ_UNREACHABLE();
}

StatusOr<SumKSeries> ShapleySolver::ComputeSumKSeries(
    const Database& db) const {
  Status failure = UnsupportedError("no exact engine applies");
  for (const Engine& engine : CandidateEngines()) {
    StatusOr<SumKSeries> series = engine.fn(a_, db);
    if (series.ok()) return series;
    if (failure.message() == "no exact engine applies") {
      failure = series.status();
    }
  }
  StatusOr<SumKSeries> brute = BruteForceSumK(a_, db);
  if (brute.ok()) return brute;
  return failure;
}

StatusOr<std::vector<std::pair<FactId, SolveResult>>>
ShapleySolver::ComputeAll(const Database& db,
                          const SolverOptions& options) const {
  std::vector<std::pair<FactId, SolveResult>> results;
  for (FactId fact : db.EndogenousFacts()) {
    StatusOr<SolveResult> result = Compute(db, fact, options);
    if (!result.ok()) return result.status();
    results.emplace_back(fact, std::move(result).value());
  }
  return results;
}

}  // namespace shapcq
