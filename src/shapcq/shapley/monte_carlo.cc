#include "shapcq/shapley/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <random>
#include <vector>

#include "shapcq/query/evaluator.h"
#include "shapcq/util/check.h"

namespace shapcq {

namespace {

// Double-precision aggregate evaluation over a bag (fast path for
// sampling; exactness is not needed for an estimator).
double ApplyDouble(const AggregateFunction& alpha, std::vector<double>* bag) {
  if (bag->empty()) return 0.0;
  switch (alpha.kind()) {
    case AggKind::kSum:
      return std::accumulate(bag->begin(), bag->end(), 0.0);
    case AggKind::kCount:
      return static_cast<double>(bag->size());
    case AggKind::kCountDistinct: {
      std::sort(bag->begin(), bag->end());
      double distinct = 1;
      for (size_t i = 1; i < bag->size(); ++i) {
        if ((*bag)[i] != (*bag)[i - 1]) ++distinct;
      }
      return distinct;
    }
    case AggKind::kMin:
      return *std::min_element(bag->begin(), bag->end());
    case AggKind::kMax:
      return *std::max_element(bag->begin(), bag->end());
    case AggKind::kAvg:
      return std::accumulate(bag->begin(), bag->end(), 0.0) /
             static_cast<double>(bag->size());
    case AggKind::kQuantile: {
      std::sort(bag->begin(), bag->end());
      double q = alpha.quantile().ToDouble();
      int64_t n = static_cast<int64_t>(bag->size());
      int64_t i1 = static_cast<int64_t>(
          std::ceil(q * static_cast<double>(n) - 1e-12));
      int64_t i2 = static_cast<int64_t>(
          std::floor(q * static_cast<double>(n) + 1.0 + 1e-12));
      i1 = std::clamp<int64_t>(i1, 1, n);
      i2 = std::clamp<int64_t>(i2, 1, n);
      return ((*bag)[static_cast<size_t>(i1 - 1)] +
              (*bag)[static_cast<size_t>(i2 - 1)]) /
             2.0;
    }
    case AggKind::kHasDuplicates: {
      std::sort(bag->begin(), bag->end());
      for (size_t i = 1; i < bag->size(); ++i) {
        if ((*bag)[i] == (*bag)[i - 1]) return 1.0;
      }
      return 0.0;
    }
  }
  SHAPCQ_UNREACHABLE();
}

}  // namespace

SupportEvaluator::SupportEvaluator(const AggregateQuery& a, const Database& db)
    : alpha_(a.alpha) {
  std::vector<FactId> players = db.EndogenousFacts();
  player_index_.assign(static_cast<size_t>(db.num_facts()), -1);
  for (size_t i = 0; i < players.size(); ++i) {
    player_index_[static_cast<size_t>(players[i])] = static_cast<int>(i);
  }
  num_players_ = static_cast<int>(players.size());
  // Group supports by answer over interned ids (no Value materialization
  // per homomorphism); answers are materialized once per distinct answer
  // and sorted by Tuple below, preserving the historical entry order.
  IdHomomorphisms ids = EnumerateHomomorphismIds(a.query, db);
  std::map<std::vector<ValueId>, std::vector<std::vector<int>>>
      supports_by_answer;
  for (size_t h = 0; h < ids.bindings.size(); ++h) {
    std::vector<int> support;
    for (FactId id : ids.used_facts[h]) {
      int player = player_index_[static_cast<size_t>(id)];
      if (player >= 0) support.push_back(player);
    }
    std::sort(support.begin(), support.end());
    support.erase(std::unique(support.begin(), support.end()),
                  support.end());
    std::vector<ValueId> answer_ids;
    answer_ids.reserve(ids.head_slots.size());
    for (int slot : ids.head_slots) {
      answer_ids.push_back(ids.bindings[h][static_cast<size_t>(slot)]);
    }
    supports_by_answer[std::move(answer_ids)].push_back(std::move(support));
  }
  std::vector<std::pair<Tuple, std::vector<std::vector<int>>>> entries;
  entries.reserve(supports_by_answer.size());
  for (auto& [answer_ids, supports] : supports_by_answer) {
    Tuple answer;
    answer.reserve(answer_ids.size());
    for (ValueId id : answer_ids) answer.push_back(db.pool().value(id));
    entries.emplace_back(std::move(answer), std::move(supports));
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  for (auto& [answer, supports] : entries) {
    // Keep minimal supports only.
    std::sort(supports.begin(), supports.end(),
              [](const std::vector<int>& x, const std::vector<int>& y) {
                return x.size() != y.size() ? x.size() < y.size() : x < y;
              });
    std::vector<std::vector<int>> minimal;
    for (const std::vector<int>& support : supports) {
      bool dominated = false;
      for (const std::vector<int>& kept : minimal) {
        if (std::includes(support.begin(), support.end(), kept.begin(),
                          kept.end())) {
          dominated = true;
          break;
        }
      }
      if (!dominated) minimal.push_back(support);
    }
    answers_.push_back({a.tau->Evaluate(answer).ToDouble(),
                        std::move(minimal)});
  }
}

double SupportEvaluator::Evaluate(const std::vector<char>& present) const {
  std::vector<double> bag;
  for (const AnswerEntry& entry : answers_) {
    for (const std::vector<int>& support : entry.supports) {
      bool alive = true;
      for (int p : support) {
        if (!present[static_cast<size_t>(p)]) {
          alive = false;
          break;
        }
      }
      if (alive) {
        bag.push_back(entry.tau);
        break;
      }
    }
  }
  return ApplyDouble(alpha_, &bag);
}

StatusOr<MonteCarloResult> MonteCarloShapley(const AggregateQuery& a,
                                             const Database& db, FactId fact,
                                             const MonteCarloOptions& options) {
  if (options.num_samples <= 0) {
    return InvalidArgumentError("num_samples must be positive");
  }
  SHAPCQ_CHECK(db.fact(fact).endogenous);
  SupportEvaluator evaluator(a, db);
  return MonteCarloShapley(evaluator, fact, options);
}

StatusOr<MonteCarloResult> MonteCarloShapley(const SupportEvaluator& evaluator,
                                             FactId fact,
                                             const MonteCarloOptions& options) {
  if (options.num_samples <= 0) {
    return InvalidArgumentError("num_samples must be positive");
  }
  int n = evaluator.num_players();
  int target = evaluator.PlayerIndex(fact);
  SHAPCQ_CHECK(target >= 0);
  std::mt19937_64 rng(options.seed);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  double sum = 0.0;
  double sum_squares = 0.0;
  std::vector<char> present(static_cast<size_t>(n), 0);
  for (int64_t sample = 0; sample < options.num_samples; ++sample) {
    std::shuffle(order.begin(), order.end(), rng);
    std::fill(present.begin(), present.end(), 0);
    for (int p : order) {
      if (p == target) break;
      present[static_cast<size_t>(p)] = 1;
    }
    double before = evaluator.Evaluate(present);
    present[static_cast<size_t>(target)] = 1;
    double after = evaluator.Evaluate(present);
    double delta = after - before;
    sum += delta;
    sum_squares += delta * delta;
  }
  MonteCarloResult result;
  result.samples = options.num_samples;
  double samples = static_cast<double>(options.num_samples);
  result.estimate = sum / samples;
  if (options.num_samples > 1) {
    double variance =
        (sum_squares - sum * sum / samples) / (samples - 1.0);
    result.std_error = std::sqrt(std::max(0.0, variance) / samples);
  }
  return result;
}

StatusOr<MonteCarloResult> MonteCarloBanzhaf(const AggregateQuery& a,
                                             const Database& db, FactId fact,
                                             const MonteCarloOptions& options) {
  if (options.num_samples <= 0) {
    return InvalidArgumentError("num_samples must be positive");
  }
  SHAPCQ_CHECK(db.fact(fact).endogenous);
  SupportEvaluator evaluator(a, db);
  return MonteCarloBanzhaf(evaluator, fact, options);
}

StatusOr<MonteCarloResult> MonteCarloBanzhaf(const SupportEvaluator& evaluator,
                                             FactId fact,
                                             const MonteCarloOptions& options) {
  if (options.num_samples <= 0) {
    return InvalidArgumentError("num_samples must be positive");
  }
  int n = evaluator.num_players();
  int target = evaluator.PlayerIndex(fact);
  SHAPCQ_CHECK(target >= 0);
  std::mt19937_64 rng(options.seed);
  double sum = 0.0;
  double sum_squares = 0.0;
  std::vector<char> present(static_cast<size_t>(n), 0);
  for (int64_t sample = 0; sample < options.num_samples; ++sample) {
    for (int p = 0; p < n; ++p) {
      present[static_cast<size_t>(p)] = p != target && (rng() & 1) != 0;
    }
    double before = evaluator.Evaluate(present);
    present[static_cast<size_t>(target)] = 1;
    double after = evaluator.Evaluate(present);
    double delta = after - before;
    sum += delta;
    sum_squares += delta * delta;
  }
  MonteCarloResult result;
  result.samples = options.num_samples;
  double samples = static_cast<double>(options.num_samples);
  result.estimate = sum / samples;
  if (options.num_samples > 1) {
    double variance =
        (sum_squares - sum * sum / samples) / (samples - 1.0);
    result.std_error = std::sqrt(std::max(0.0, variance) / samples);
  }
  return result;
}

StatusOr<MonteCarloResult> MonteCarloShapleyWithGuarantee(
    const AggregateQuery& a, const Database& db, FactId fact, double range,
    double epsilon, double delta, uint64_t seed) {
  MonteCarloOptions options;
  options.num_samples = HoeffdingSampleCount(range, epsilon, delta);
  options.seed = seed;
  return MonteCarloShapley(a, db, fact, options);
}

int64_t HoeffdingSampleCount(double range, double epsilon, double delta) {
  SHAPCQ_CHECK(range > 0 && epsilon > 0 && delta > 0 && delta < 1);
  // P(|mean - mu| >= eps) <= 2 exp(-2 m eps^2 / (2 range)^2) <= delta.
  double m = std::log(2.0 / delta) * 2.0 * range * range / (epsilon * epsilon);
  return static_cast<int64_t>(std::ceil(m));
}

}  // namespace shapcq
