#include "shapcq/shapley/engine_registry.h"

#include <algorithm>

#include "shapcq/lineage/engine.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/closed_forms.h"
#include "shapcq/shapley/count_distinct.h"
#include "shapcq/shapley/has_duplicates.h"
#include "shapcq/shapley/min_max.h"
#include "shapcq/shapley/special_cases.h"
#include "shapcq/shapley/sum_count.h"
#include "shapcq/util/check.h"

namespace shapcq {

EngineRegistry& EngineRegistry::Global() {
  // The manifest of built-in engines. Adding an engine means registering it
  // here (or from user code via Register); the solver façade never changes.
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    RegisterClosedFormEngines(*r);
    RegisterSumCountEngine(*r);
    RegisterMinMaxEngine(*r);
    RegisterCountDistinctEngines(*r);
    RegisterAvgQuantileEngine(*r);
    RegisterGatedProductEngine(*r);
    RegisterHasDuplicatesEngine(*r);
    // The knowledge-compilation engine for the hard side of the frontier:
    // slots after every frontier DP and before the brute-force / Monte
    // Carlo fallback (priority 60).
    RegisterLineageCircuitEngine(*r);
    return r;
  }();
  return *registry;
}

void EngineRegistry::Register(EngineProvider provider) {
  SHAPCQ_CHECK(!provider.name.empty());
  SHAPCQ_CHECK(provider.applies != nullptr);
  SHAPCQ_CHECK(provider.sum_k != nullptr || provider.score_one != nullptr ||
               provider.score_all != nullptr);
  providers_.push_back(
      std::make_unique<EngineProvider>(std::move(provider)));
}

std::vector<const EngineProvider*> EngineRegistry::CandidatesFor(
    const AggregateQuery& a) const {
  std::vector<const EngineProvider*> candidates;
  for (const auto& provider : providers_) {
    if (provider->applies(a)) candidates.push_back(provider.get());
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const EngineProvider* x, const EngineProvider* y) {
                     return x->priority < y->priority;
                   });
  return candidates;
}

}  // namespace shapcq
