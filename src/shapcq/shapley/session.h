// SolverSession: a reusable per-(query, database) solving context.
//
// The solver façade used to rebuild everything per fact: re-classify the
// query, re-select engines, re-enumerate homomorphisms, and re-run the DP
// scaffolding from scratch for each of the n endogenous facts — making
// all-facts attribution (the paper's headline operation) n× the cost of a
// single fact. A SolverSession computes the shared parts once:
//
//   * query classification and frontier verdict,
//   * the applicable engine providers (EngineRegistry),
//   * the homomorphism-support structure for sampling (SupportEvaluator),
//
// and answers per-fact Shapley/Banzhaf queries against that state.
// ComputeAll additionally batches across facts: engines with a batched
// scorer (e.g. Sum/Count) share per-answer work across every fact; the
// brute-force fallback sweeps the subset lattice once for all facts; the
// Monte Carlo fallback samples through the shared support structure; and
// per-fact engine runs fan out over a thread pool with deterministic
// result order.
//
// Equivalence contract: ComputeAll produces exactly the values of calling
// Compute per fact. Exact paths are bitwise-identical (exact rational
// arithmetic; batching only reorders summations), and the Monte Carlo path
// reuses the per-fact seeding, so even estimates match. The one divergence:
// an engine that fails for SOME facts but not others makes ComputeAll move
// every fact to the next engine/fallback, whereas per-fact calls switch
// only the failing facts — values stay equal whenever the fallback is
// exact. No built-in engine behaves that way on self-join-free inputs.
//
// A session borrows the database: it must outlive the session, and facts
// must not be added while the session is in use.

#ifndef SHAPCQ_SHAPLEY_SESSION_H_
#define SHAPCQ_SHAPLEY_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/shapley/monte_carlo.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

struct SolveResult {
  bool is_exact = false;
  Rational exact;            // meaningful iff is_exact
  double approximation = 0;  // always set (exact value as double otherwise)
  std::string algorithm;     // human-readable engine name
};

class SolverSession {
 public:
  // Engines come from EngineRegistry::Global().
  SolverSession(AggregateQuery a, const Database& db);

  const AggregateQuery& aggregate_query() const { return a_; }
  const Database& database() const { return db_; }

  // Hierarchy class of the query (computed once per session).
  HierarchyClass classification() const;
  // Whether the query lies inside the aggregate's tractability frontier.
  bool inside_frontier() const;
  // Applicable engine providers, in preference order.
  const std::vector<const EngineProvider*>& engines() const {
    return engines_;
  }
  // Name of the exact engine tried first, if any.
  StatusOr<std::string> ExactAlgorithmName() const;

  // The shared homomorphism-support structure (built on first use).
  const SupportEvaluator& support_evaluator();

  // Score of one endogenous fact.
  StatusOr<SolveResult> Compute(FactId fact, const SolverOptions& options = {});

  // Scores of all endogenous facts, ascending by FactId. The fast path:
  // batched engines, shared fallbacks, thread-pool fan-out.
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> ComputeAll(
      const SolverOptions& options = {});

  // The raw sum_k series of the aggregate query over the database, from the
  // first applicable exact engine (brute force as last resort).
  StatusOr<SumKSeries> ComputeSumKSeries() const;

 private:
  StatusOr<SolveResult> ComputeExact(FactId fact, const SolverOptions& options,
                                     Status* first_failure) const;
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> ComputeAllExact(
      const SolverOptions& options, Status* first_failure) const;
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> BruteForceAll(
      const SolverOptions& options) const;
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> MonteCarloAll(
      const SolverOptions& options);

  AggregateQuery a_;
  const Database& db_;
  std::vector<const EngineProvider*> engines_;
  mutable std::optional<HierarchyClass> classification_;
  std::unique_ptr<SupportEvaluator> support_evaluator_;
};

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_SESSION_H_
