// SolverSession: executes a compiled AttributionPlan against one Database.
//
// The solving stack is split in two layers (plan.h):
//
//   * AttributionPlan — the immutable, database-independent layer compiled
//     once per query: classification, frontier verdict, the ordered engine
//     chain, and the query-side structural analysis. Shared across
//     databases and sessions through the fingerprint-keyed PlanCache.
//   * SolverSession — the thin executor binding a plan to a Database. It
//     owns only the per-(plan, db) state: the homomorphism-support
//     structure for sampling (SupportEvaluator), built on first use.
//
// ComputeAll batches across facts: engines with a batched scorer (e.g.
// Sum/Count) share per-answer work across every fact; the brute-force
// fallback sweeps the subset lattice once for all facts; the Monte Carlo
// fallback samples through the shared support structure; and per-fact
// engine runs fan out over a thread pool with deterministic result order.
//
// Equivalence contract: ComputeAll produces exactly the values of calling
// Compute per fact. Exact paths are bitwise-identical (exact rational
// arithmetic; batching only reorders summations), the Monte Carlo path
// reuses the per-fact seeding, so even estimates match, and an engine that
// fails for some facts keeps its successes — only the failing facts move
// to the next engine or fallback, exactly like per-fact calls. One carve-
// out: a custom engine registering ONLY a batched scorer (no score_one /
// sum_k) is reachable from ComputeAll but not from per-fact Compute; every
// built-in engine has a per-fact entry point, so the paths agree for all
// of them.
//
// A session borrows the database: it must outlive the session, and facts
// must not be added while the session is in use.

#ifndef SHAPCQ_SHAPLEY_SESSION_H_
#define SHAPCQ_SHAPLEY_SESSION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/shapley/monte_carlo.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

struct SolveResult {
  bool is_exact = false;
  Rational exact;            // meaningful iff is_exact
  double approximation = 0;  // always set (exact value as double otherwise)
  std::string algorithm;     // human-readable engine name
  // Sampling telemetry, set by the Monte Carlo paths (0 when exact):
  // std_error is the sample standard error of the mean, so
  // approximation ± 1.96·std_error is the CLT 95% confidence interval the
  // provenance footer (report.h) prints.
  double std_error = 0;
  int64_t samples = 0;
};

class SolverSession {
 public:
  // Binds a precompiled plan to `db` (the serving path: compile once,
  // execute against many databases).
  SolverSession(std::shared_ptr<const AttributionPlan> plan,
                const Database& db);
  // Convenience: fetches (or compiles) the Shapley-keyed plan through
  // PlanCache::Global().
  SolverSession(AggregateQuery a, const Database& db);

  const AttributionPlan& plan() const { return *plan_; }
  const AggregateQuery& aggregate_query() const {
    return plan_->aggregate_query();
  }
  const Database& database() const { return db_; }

  // Hierarchy class of the query (from the compiled plan).
  HierarchyClass classification() const { return plan_->classification(); }
  // Whether the query lies inside the aggregate's tractability frontier.
  bool inside_frontier() const { return plan_->inside_frontier(); }
  // Applicable engine providers, in preference order.
  const std::vector<const EngineProvider*>& engines() const {
    return plan_->engines();
  }
  // Name of the exact engine tried first, if any.
  StatusOr<std::string> ExactAlgorithmName() const {
    return plan_->ExactAlgorithmName();
  }

  // The shared homomorphism-support structure (built on first use).
  const SupportEvaluator& support_evaluator();

  // Score of one endogenous fact. Under kExactOnly, total failure returns
  // a structured UNSUPPORTED status naming the player count (and whether
  // it exceeds the brute-force limit), the engines consulted, and the
  // first engine failure — so a query stranded outside every exact engine
  // is diagnosable instead of a bare per-engine message.
  StatusOr<SolveResult> Compute(FactId fact, const SolverOptions& options = {});

  // Scores of all endogenous facts, ascending by FactId. The fast path:
  // batched engines, shared fallbacks, thread-pool fan-out. kExactOnly
  // failures carry the same structured status as Compute. When
  // options.cancelled fires (a serving deadline), the call returns a
  // structured kDeadlineExceeded status instead of starting the next
  // engine or fallback phase — callers degrade to a bounded
  // method=kMonteCarlo run (serve/server.h does exactly that).
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> ComputeAll(
      const SolverOptions& options = {});

  // The raw sum_k series of the aggregate query over the database, from the
  // first applicable exact engine (brute force as last resort).
  StatusOr<SumKSeries> ComputeSumKSeries(
      const SolverOptions& options = {}) const;

 private:
  const AggregateQuery& a() const { return plan_->aggregate_query(); }

  StatusOr<SolveResult> ComputeExact(FactId fact, const SolverOptions& options,
                                     Status* first_failure) const;
  // Walks the engine chain over `facts`: each fact keeps the first engine
  // that scores it and only failing facts move on. Solved facts land in
  // (*results)[i]; the returned indices (into `facts`, ascending) are the
  // facts no engine could solve. `first_failure` records the first genuine
  // engine error.
  std::vector<size_t> ExactSweep(const std::vector<FactId>& facts,
                                 const SolverOptions& options,
                                 std::vector<SolveResult>* results,
                                 Status* first_failure) const;
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> BruteForceAll(
      const SolverOptions& options) const;
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> MonteCarloAll(
      const SolverOptions& options);
  // Monte Carlo estimates for facts[i], i in `indices`, written to
  // (*results)[i]. Per-fact seeding through the shared support evaluator —
  // identical to per-fact kMonteCarlo calls — fanned out over the pool.
  Status MonteCarloFor(const std::vector<FactId>& facts,
                       const std::vector<size_t>& indices,
                       const SolverOptions& options,
                       std::vector<SolveResult>* results);

  std::shared_ptr<const AttributionPlan> plan_;
  const Database& db_;
  std::unique_ptr<SupportEvaluator> support_evaluator_;
};

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_SESSION_H_
