#include "shapcq/shapley/has_duplicates.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "shapcq/agg/value_function.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/shapley/answer_counts.h"
#include "shapcq/shapley/dp_util.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

namespace {

// P0[k] / P1[k] / m extracted from an answer-count distribution.
struct ZeroOneCounts {
  std::vector<BigInt> zero;  // exactly 0 answers
  std::vector<BigInt> one;   // exactly 1 answer
  int num_endogenous = 0;
};

ZeroOneCounts ExtractZeroOne(const ConjunctiveQuery& q,
                             const FactSubset& facts, Combinatorics* comb) {
  ZeroOneCounts out;
  out.num_endogenous = facts.CountEndogenous();
  size_t width = static_cast<size_t>(out.num_endogenous) + 1;
  out.zero.assign(width, BigInt(0));
  out.one.assign(width, BigInt(0));
  for (const auto& [key, count] : AnswerCountDistribution(q, facts, comb)) {
    if (key.second == 0) out.zero[static_cast<size_t>(key.first)] = count;
    if (key.second == 1) out.one[static_cast<size_t>(key.first)] = count;
  }
  return out;
}

class DupSolver {
 public:
  DupSolver(const AggregateQuery& a, int r_atom, Combinatorics* comb)
      : a_(a), r_atom_(r_atom), comb_(comb) {}

  // sum_k(Dup ∘ τ ∘ q, facts) over the endogenous facts of `facts`.
  std::vector<BigInt> DupCounts(const ConjunctiveQuery& q,
                                const FactSubset& facts) {
    std::vector<std::vector<int>> components = ConnectedComponents(q);
    if (components.size() == 1) return DupConnected(q, facts);
    // Identify the component holding the localization atom of the ORIGINAL
    // query; map it through: components are given by atom indices of `q`,
    // which here is always the original query.
    std::vector<int> r_component;
    std::vector<int> other_atoms;
    for (const std::vector<int>& component : components) {
      if (std::find(component.begin(), component.end(), r_atom_) !=
          component.end()) {
        r_component = component;
      } else {
        other_atoms.insert(other_atoms.end(), component.begin(),
                           component.end());
      }
    }
    SHAPCQ_CHECK(!r_component.empty());
    ConjunctiveQuery q1 = q.Project(r_component, nullptr);
    ConjunctiveQuery q2 = q.Project(other_atoms, nullptr);
    FactSubset d1 = FactsOfQueryRelations(q1, facts);
    FactSubset d2 = FactsOfQueryRelations(q2, facts);
    ZeroOneCounts p1_side = ExtractZeroOne(q1, d1, comb_);
    ZeroOneCounts p2_side = ExtractZeroOne(q2, d2, comb_);
    std::vector<BigInt> dup1 = DupConnected(q1, d1);
    int m1 = p1_side.num_endogenous;
    int m2 = p2_side.num_endogenous;
    SHAPCQ_CHECK(m1 + m2 == facts.CountEndogenous());
    std::vector<BigInt> out(static_cast<size_t>(m1 + m2) + 1, BigInt(0));
    for (int l = 0; l <= m1; ++l) {
      // Case 1: Q1 nonempty (any bag) and Q2 has at least two answers;
      // every bag element is then replicated.
      BigInt q1_nonempty =
          comb_->Binomial(m1, l) - p1_side.zero[static_cast<size_t>(l)];
      // Case 2: Q1's own bag has duplicates and Q2 has exactly one answer.
      for (int k2 = 0; k2 <= m2; ++k2) {
        BigInt q2_at_least_two = comb_->Binomial(m2, k2) -
                                 p2_side.zero[static_cast<size_t>(k2)] -
                                 p2_side.one[static_cast<size_t>(k2)];
        BigInt contribution = q1_nonempty * q2_at_least_two +
                              dup1[static_cast<size_t>(l)] *
                                  p2_side.one[static_cast<size_t>(k2)];
        if (!contribution.is_zero()) {
          out[static_cast<size_t>(l + k2)] += contribution;
        }
      }
    }
    return out;
  }

  // Figure 5: connected case. Requires every τ-relevant head variable to
  // occur in every atom of q (validated by the caller).
  std::vector<BigInt> DupConnected(const ConjunctiveQuery& q,
                                   const FactSubset& facts) {
    int m = facts.CountEndogenous();
    // Partition facts by the τ-value they pin down.
    std::map<Rational, FactSubset> groups;
    for (FactId id : facts.facts) {
      const Fact& fact = facts.db->fact(id);
      int atom_index = AtomIndexOf(q, fact.relation);
      SHAPCQ_CHECK(atom_index >= 0);
      Rational value =
          EvaluateTauOnFact(q, atom_index, *a_.tau, fact.args);
      auto [it, inserted] = groups.emplace(value, FactSubset{});
      if (inserted) it->second.db = facts.db;
      it->second.facts.push_back(id);
    }
    // No duplicates iff every value group contributes at most one answer.
    std::vector<BigInt> no_dup = {BigInt(1)};
    for (const auto& [value, group] : groups) {
      ZeroOneCounts zo = ExtractZeroOne(q, group, comb_);
      std::vector<BigInt> at_most_one(zo.zero.size());
      for (size_t k = 0; k < zo.zero.size(); ++k) {
        at_most_one[k] = zo.zero[k] + zo.one[k];
      }
      no_dup = Convolve(no_dup, at_most_one);
    }
    SHAPCQ_CHECK(static_cast<int>(no_dup.size()) == m + 1);
    std::vector<BigInt> out(static_cast<size_t>(m) + 1);
    for (int k = 0; k <= m; ++k) {
      out[static_cast<size_t>(k)] =
          comb_->Binomial(m, k) - no_dup[static_cast<size_t>(k)];
    }
    return out;
  }

 private:
  const AggregateQuery& a_;
  int r_atom_;
  Combinatorics* comb_;
};

}  // namespace

StatusOr<SumKSeries> HasDuplicatesSumK(const AggregateQuery& a,
                                       const Database& db,
                                       const SolverOptions& /*options*/) {
  if (a.alpha.kind() != AggKind::kHasDuplicates) {
    return UnsupportedError("HasDuplicatesSumK handles Dup only");
  }
  if (a.query.HasSelfJoin()) {
    return UnsupportedError("Dup requires a self-join-free CQ");
  }
  if (!IsQHierarchical(a.query)) {
    return UnsupportedError(
        "Dup requires (at least) a q-hierarchical CQ: " + a.query.ToString());
  }
  // Find a localization atom whose connected component contains every
  // τ-relevant head variable in every atom.
  std::vector<int> localization = LocalizationAtoms(a.query, *a.tau);
  if (localization.empty()) {
    return UnsupportedError("value function is not localized on any atom of " +
                            a.query.ToString());
  }
  std::vector<std::vector<int>> components = ConnectedComponents(a.query);
  int chosen_atom = -1;
  for (int candidate : localization) {
    const std::vector<int>* component = nullptr;
    for (const std::vector<int>& c : components) {
      if (std::find(c.begin(), c.end(), candidate) != c.end()) {
        component = &c;
        break;
      }
    }
    SHAPCQ_CHECK(component != nullptr);
    bool ok = true;
    for (int position : a.tau->DependsOn()) {
      const std::string& head_var =
          a.query.head()[static_cast<size_t>(position)];
      for (int atom_index : *component) {
        if (!a.query.atoms()[static_cast<size_t>(atom_index)]
                 .ContainsVariable(head_var)) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
    if (ok) {
      chosen_atom = candidate;
      break;
    }
  }
  if (chosen_atom < 0) {
    return UnsupportedError(
        "Dup requires every tau-relevant head variable in every atom of the "
        "localization component (guaranteed for sq-hierarchical CQs): " +
        a.query.ToString());
  }
  Combinatorics comb;
  int n = db.num_endogenous();
  RelevanceSplit split = SplitRelevant(a.query, AllFacts(db));
  DupSolver solver(a, chosen_atom, &comb);
  std::vector<BigInt> counts = solver.DupCounts(a.query, split.relevant);
  counts = PadCounts(counts, split.irrelevant_endogenous, &comb);
  SHAPCQ_CHECK(static_cast<int>(counts.size()) == n + 1);
  SumKSeries series;
  series.reserve(counts.size());
  for (const BigInt& count : counts) series.push_back(Rational(count));
  return series;
}

void RegisterHasDuplicatesEngine(EngineRegistry& registry) {
  EngineProvider provider;
  provider.name = "has-duplicates/sq-hierarchical-dp";
  provider.priority = 10;
  provider.applies = [](const AggregateQuery& a) {
    return a.alpha.kind() == AggKind::kHasDuplicates;
  };
  provider.sum_k = HasDuplicatesSumK;
  registry.Register(std::move(provider));
}

}  // namespace shapcq
