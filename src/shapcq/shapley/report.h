// Human-readable attribution reports.
//
// Formats solver results as aligned text tables (sorted by score, grouped
// by relation, with share-of-total columns), so example programs and the
// CLI render consistent output. Pure formatting: no computation here.

#ifndef SHAPCQ_SHAPLEY_REPORT_H_
#define SHAPCQ_SHAPLEY_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "shapcq/data/database.h"
#include "shapcq/lineage/stats.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/solver.h"
#include "shapcq/shapley/solver_options.h"

namespace shapcq {

struct ReportOptions {
  // Sort rows by descending score (otherwise fact-id order).
  bool sort_by_score = true;
  // Append a share column (score / Σ scores) when the total is nonzero.
  bool show_share = true;
  // Append a per-relation subtotal section.
  bool show_relation_totals = false;
  int max_rows = 0;  // 0 = unlimited
};

// Renders a table of attribution results. Exact results print both the
// rational and its decimal approximation.
std::string FormatAttributionReport(
    const Database& db,
    const std::vector<std::pair<FactId, SolveResult>>& results,
    const ReportOptions& options = {});

// One-line summary: "n facts, total score X, top: R(1,2) (42%)".
std::string SummarizeAttribution(
    const Database& db,
    const std::vector<std::pair<FactId, SolveResult>>& results);

// Provenance footer making attribution output auditable: which compiled
// plan produced the results (canonical fingerprint, hierarchy class,
// frontier verdict), whether the plan came from the PlanCache, and the
// engines that actually scored facts with their per-engine fact counts.
// When any result is sampled, a Monte Carlo line reports the CLT-based
// 95% confidence half-width (±1.96·σ̂, maximum over the sampled facts)
// and the sample budget instead of leaving bare point estimates —
// `options`, if given, contributes the seed. `lineage`, if given and
// non-empty, adds the circuit telemetry line (circuits, nodes, compiler
// cache hits, budget fallbacks).
std::string FormatPlanProvenance(
    const AttributionPlan& plan,
    const std::vector<std::pair<FactId, SolveResult>>& results,
    bool cache_hit, const SolverOptions* options = nullptr,
    const LineageStatsSnapshot* lineage = nullptr);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_REPORT_H_
