#include "shapcq/shapley/membership.h"

#include <string>

#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/shapley/dp_util.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

namespace {

// Recursive satisfaction-count solver. `facts` contains only facts that
// match their atom in `q` under the bindings accumulated so far. Returns a
// vector of length (#endogenous facts in `facts`) + 1.
class MembershipSolver {
 public:
  explicit MembershipSolver(Combinatorics* comb) : comb_(comb) {}

  std::vector<BigInt> Solve(const ConjunctiveQuery& q,
                            const FactSubset& facts) {
    if (IsGround(q)) return SolveGround(q, facts);
    std::vector<std::string> roots = RootVariables(q);
    if (!roots.empty()) return SolveRoot(q, roots[0], facts);
    std::vector<std::vector<int>> components = ConnectedComponents(q);
    SHAPCQ_CHECK(components.size() > 1 &&
                 "connected non-ground hierarchical CQ must have a root "
                 "variable");
    return SolveCrossProduct(q, components, facts);
  }

 private:
  // All atoms ground: Q is true iff every atom's fact is present.
  std::vector<BigInt> SolveGround(const ConjunctiveQuery& q,
                                  const FactSubset& facts) {
    int m = facts.CountEndogenous();
    std::vector<BigInt> counts(static_cast<size_t>(m) + 1, BigInt(0));
    int required_endogenous = 0;
    for (const Atom& atom : q.atoms()) {
      Tuple args;
      args.reserve(atom.terms.size());
      for (const Term& term : atom.terms) args.push_back(term.constant());
      // Find the fact within the subset.
      bool found = false;
      bool endogenous = false;
      for (FactId id : facts.facts) {
        const Fact& fact = facts.db->fact(id);
        if (fact.relation == atom.relation && fact.args == args) {
          found = true;
          endogenous = fact.endogenous;
          break;
        }
      }
      if (!found) return counts;  // never satisfiable: all zero
      if (endogenous) ++required_endogenous;
    }
    for (int k = required_endogenous; k <= m; ++k) {
      counts[static_cast<size_t>(k)] =
          comb_->Binomial(m - required_endogenous, k - required_endogenous);
    }
    return counts;
  }

  // Root variable: split by the value of x; satisfaction is a disjunction
  // over disjoint sub-databases, so unsatisfying counts multiply.
  std::vector<BigInt> SolveRoot(const ConjunctiveQuery& q,
                                const std::string& x,
                                const FactSubset& facts) {
    int total_endogenous = facts.CountEndogenous();
    std::vector<Value> values = CandidateValues(q, x, facts);
    std::vector<BigInt> unsat = {BigInt(1)};
    int covered_endogenous = 0;
    for (const Value& a : values) {
      FactSubset sub;
      sub.db = facts.db;
      sub.facts = FactsConsistentWith(q, x, a, facts);
      int sub_endogenous = sub.CountEndogenous();
      covered_endogenous += sub_endogenous;
      std::vector<BigInt> sat = Solve(q.Bind(x, a), sub);
      std::vector<BigInt> sub_unsat =
          SubtractCounts(comb_->BinomialRow(sub_endogenous), sat);
      unsat = Convolve(unsat, sub_unsat);
    }
    // Facts not consistent with any candidate value can never participate:
    // they pad the unsatisfying counts.
    int pad = total_endogenous - covered_endogenous;
    SHAPCQ_CHECK(pad >= 0);
    unsat = PadCounts(unsat, pad, comb_);
    SHAPCQ_CHECK(static_cast<int>(unsat.size()) == total_endogenous + 1);
    return SubtractCounts(comb_->BinomialRow(total_endogenous), unsat);
  }

  // Cross product: satisfaction is a conjunction over components with
  // disjoint relations, so satisfying counts multiply.
  std::vector<BigInt> SolveCrossProduct(
      const ConjunctiveQuery& q, const std::vector<std::vector<int>>& components,
      const FactSubset& facts) {
    std::vector<BigInt> counts = {BigInt(1)};
    int covered_endogenous = 0;
    for (const std::vector<int>& component : components) {
      ConjunctiveQuery sub_q = q.Project(component, nullptr);
      FactSubset sub = FactsOfQueryRelations(sub_q, facts);
      covered_endogenous += sub.CountEndogenous();
      counts = Convolve(counts, Solve(sub_q, sub));
    }
    // Components cover all atoms, hence all facts of q's relations.
    SHAPCQ_CHECK(covered_endogenous == facts.CountEndogenous());
    return counts;
  }

  Combinatorics* comb_;
};

}  // namespace

std::vector<BigInt> SatisfactionCountsOnSubset(const ConjunctiveQuery& q,
                                               const FactSubset& facts,
                                               Combinatorics* comb) {
  MembershipSolver solver(comb);
  return solver.Solve(q.is_boolean() ? q : q.AsBoolean(), facts);
}

StatusOr<std::vector<BigInt>> SatisfactionCounts(const ConjunctiveQuery& q,
                                                 const Database& db) {
  if (q.HasSelfJoin()) {
    return UnsupportedError("satisfaction counts require a self-join-free CQ");
  }
  // The DP treats all variables as existential; hierarchy w.r.t. all
  // variables is exactly what the recursion needs.
  if (!IsAllHierarchical(q)) {
    return UnsupportedError("satisfaction counts require a hierarchical CQ: " +
                            q.ToString());
  }
  Combinatorics comb;
  ConjunctiveQuery q_bool = q.is_boolean() ? q : q.AsBoolean();
  RelevanceSplit split = SplitRelevant(q_bool, AllFacts(db));
  MembershipSolver solver(&comb);
  std::vector<BigInt> counts = solver.Solve(q_bool, split.relevant);
  counts = PadCounts(counts, split.irrelevant_endogenous, &comb);
  SHAPCQ_CHECK(static_cast<int>(counts.size()) == db.num_endogenous() + 1);
  return counts;
}

StatusOr<Rational> AnswerMembershipScore(const ConjunctiveQuery& q,
                                         const Database& db,
                                         const Tuple& answer, FactId fact,
                                         ScoreKind kind) {
  if (static_cast<int>(answer.size()) != q.arity()) {
    return InvalidArgumentError("answer arity does not match the query head");
  }
  // Bind the head to the answer; repeated head variables must agree.
  ConjunctiveQuery bound = q;
  for (size_t i = 0; i < answer.size(); ++i) {
    const std::string& head_var = q.head()[i];
    if (bound.IsFreeVariable(head_var)) {
      bound = bound.Bind(head_var, answer[i]);
    } else if (!bound.HasVariable(head_var)) {
      // Already bound earlier: verify consistency against the original head.
      for (size_t j = 0; j < i; ++j) {
        if (q.head()[j] == head_var && answer[j] != answer[i]) {
          return InvalidArgumentError(
              "answer disagrees on a repeated head variable");
        }
      }
    }
  }
  SHAPCQ_CHECK(bound.is_boolean());
  return MembershipScore(bound, db, fact, kind);
}

StatusOr<Rational> MembershipScore(const ConjunctiveQuery& q,
                                   const Database& db, FactId fact,
                                   ScoreKind kind) {
  SHAPCQ_CHECK(db.fact(fact).endogenous);
  Database with_f_exogenous = db.WithFactExogenous(fact);
  Database without_f = db.WithoutFact(fact, /*old_to_new=*/nullptr);
  StatusOr<std::vector<BigInt>> counts_f =
      SatisfactionCounts(q, with_f_exogenous);
  if (!counts_f.ok()) return counts_f.status();
  StatusOr<std::vector<BigInt>> counts_g = SatisfactionCounts(q, without_f);
  if (!counts_g.ok()) return counts_g.status();
  SumKSeries series_f(counts_f->begin(), counts_f->end());
  SumKSeries series_g(counts_g->begin(), counts_g->end());
  return ScoreFromSumK(series_f, series_g, kind);
}

}  // namespace shapcq
