// Registry of exact Shapley engine providers.
//
// Each provider wraps one exact algorithm (a sum_k engine in the sense of
// Section 3.2, and/or direct per-fact scorers) together with a cheap,
// database-independent applicability gate and a preference priority. The
// solver façade asks the registry for the candidates applicable to an
// aggregate query instead of hard-coding the dispatch table, so new engines
// (new aggregates, new special cases, closed forms) plug in by registering
// a provider — without touching the solver.
//
// Providers may still return UNSUPPORTED from their entry points: `applies`
// is a shape gate over the aggregate query, not a completeness promise
// (e.g. the q-hierarchy of the query or the localization of τ is checked by
// the engine itself, and some providers also inspect the database).
//
// Compiled AttributionPlans (plan.h) snapshot CandidatesFor at compile
// time: a provider registered afterwards is picked up by new compilations
// but not retrofitted into already-cached plans — call
// PlanCache::Global().Clear() to recompile against the grown registry.
// Provider pointers stay valid forever (the registry never removes), so
// cached chains never dangle.

#ifndef SHAPCQ_SHAPLEY_ENGINE_REGISTRY_H_
#define SHAPCQ_SHAPLEY_ENGINE_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Direct per-fact score (e.g. a closed form that never goes through
// sum_k). Receives the session's SolverOptions — options.score selects the
// score kind, and resource-budgeted engines (lineage-circuit) read their
// budgets from it, so the per-fact and batched paths obey the same caps.
// Per-fact calls are already fanned out by the session, so engines must
// not spawn their own workers here.
using ScoreOneFn = std::function<StatusOr<Rational>(
    const AggregateQuery&, const Database&, FactId, const SolverOptions&)>;

// Batched all-facts scorer: shares per-(query, database) work — answer
// enumeration, relevance splits, DP scaffolding — across every endogenous
// fact. Must return one entry per endogenous fact, ascending by FactId,
// with exactly the values the per-fact path would produce. Receives the
// session's SolverOptions so it can shard internally over
// options.num_threads (ScoreKind comes from options.score); sharding must
// not change any value — exact engines stay bitwise-identical for every
// thread count.
using ScoreAllFn = std::function<StatusOr<std::vector<std::pair<FactId, Rational>>>(
    const AggregateQuery&, const Database&, const SolverOptions&)>;

struct EngineProvider {
  std::string name;
  // Preference order: lower priorities are tried first; ties keep
  // registration order.
  int priority = 100;
  // Database-independent applicability gate over the aggregate query.
  std::function<bool(const AggregateQuery&)> applies;
  // sum_k(A, D') series (Section 3.2); null for providers that only score
  // directly (closed forms).
  SumKEngine sum_k;
  // Optional direct per-fact scorer; used instead of sum_k when present.
  ScoreOneFn score_one;
  // Optional batched scorer; SolverSession::ComputeAll prefers it.
  ScoreAllFn score_all;
  // True when score_one is implemented as a rerun of the batched scorer
  // (lineage-circuit): once score_all failed for a database, a per-fact
  // sweep would repeat the identical failing computation once per fact,
  // so the executor skips it — the engine cannot save individual facts
  // the batch lost.
  bool score_one_reruns_batch = false;
};

class EngineRegistry {
 public:
  // The process-wide registry, pre-populated with the built-in engines
  // (sum/count, min/max, count-distinct + injective rewrite, avg/quantile,
  // gated product, has-duplicates, closed forms). Registration of custom
  // providers is not thread-safe against concurrent solves.
  static EngineRegistry& Global();

  EngineRegistry() = default;

  void Register(EngineProvider provider);

  // Providers applicable to `a`, ordered by (priority, registration order).
  // Pointers stay valid for the registry's lifetime.
  std::vector<const EngineProvider*> CandidatesFor(
      const AggregateQuery& a) const;

 private:
  std::vector<std::unique_ptr<EngineProvider>> providers_;
};

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_ENGINE_REGISTRY_H_
