#include "shapcq/shapley/answer_counts.h"

#include <string>
#include <vector>

#include "shapcq/shapley/dp_util.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/util/check.h"

namespace shapcq {

namespace {

// Free root variables of q (roots that are also head variables).
std::vector<std::string> FreeRootVariables(const ConjunctiveQuery& q) {
  std::vector<std::string> out;
  for (const std::string& root : RootVariables(q)) {
    if (q.IsFreeVariable(root)) out.push_back(root);
  }
  return out;
}

// combine_∪ at a free root variable: disjoint answer sets, sizes add.
AnswerCountMap CombineUnion(const AnswerCountMap& lhs,
                            const AnswerCountMap& rhs) {
  AnswerCountMap out;
  for (const auto& [lk, lcount] : lhs) {
    for (const auto& [rk, rcount] : rhs) {
      out[{lk.first + rk.first, lk.second + rk.second}] += lcount * rcount;
    }
  }
  return out;
}

// combine_×: answer counts multiply.
AnswerCountMap CombineCross(const AnswerCountMap& lhs,
                            const AnswerCountMap& rhs) {
  AnswerCountMap out;
  for (const auto& [lk, lcount] : lhs) {
    for (const auto& [rk, rcount] : rhs) {
      out[{lk.first + rk.first, lk.second * rk.second}] += lcount * rcount;
    }
  }
  return out;
}

}  // namespace

AnswerCountMap AnswerCountDistribution(const ConjunctiveQuery& q,
                                       const FactSubset& facts,
                                       Combinatorics* comb) {
  int total_endogenous = facts.CountEndogenous();
  if (q.is_boolean()) {
    std::vector<BigInt> sat = SatisfactionCountsOnSubset(q, facts, comb);
    AnswerCountMap out;
    for (int k = 0; k <= total_endogenous; ++k) {
      const BigInt& yes = sat[static_cast<size_t>(k)];
      BigInt no = comb->Binomial(total_endogenous, k) - yes;
      if (!yes.is_zero()) out[{k, 1}] = yes;
      if (!no.is_zero()) out[{k, 0}] = no;
    }
    return out;
  }
  std::vector<std::string> free_roots = FreeRootVariables(q);
  if (!free_roots.empty()) {
    const std::string& x = free_roots[0];
    AnswerCountMap acc = {{{0, 0}, BigInt(1)}};
    int covered_endogenous = 0;
    for (const Value& a : CandidateValues(q, x, facts)) {
      FactSubset sub;
      sub.db = facts.db;
      sub.facts = FactsConsistentWith(q, x, a, facts);
      covered_endogenous += sub.CountEndogenous();
      acc = CombineUnion(acc, AnswerCountDistribution(q.Bind(x, a), sub, comb));
    }
    return PadAnswerCounts(acc, total_endogenous - covered_endogenous, comb);
  }
  std::vector<std::vector<int>> components = ConnectedComponents(q);
  SHAPCQ_CHECK(components.size() > 1 &&
               "a connected non-Boolean q-hierarchical CQ must have a free "
               "root variable");
  AnswerCountMap acc = {{{0, 1}, BigInt(1)}};
  int covered_endogenous = 0;
  for (const std::vector<int>& component : components) {
    ConjunctiveQuery sub_q = q.Project(component, nullptr);
    FactSubset sub = FactsOfQueryRelations(sub_q, facts);
    covered_endogenous += sub.CountEndogenous();
    acc = CombineCross(acc, AnswerCountDistribution(sub_q, sub, comb));
  }
  SHAPCQ_CHECK(covered_endogenous == total_endogenous);
  return acc;
}

AnswerCountMap PadAnswerCounts(const AnswerCountMap& counts, int pad,
                               Combinatorics* comb) {
  if (pad == 0) return counts;
  AnswerCountMap out;
  for (const auto& [key, count] : counts) {
    for (int extra = 0; extra <= pad; ++extra) {
      out[{key.first + extra, key.second}] +=
          count * comb->Binomial(pad, extra);
    }
  }
  return out;
}

}  // namespace shapcq
