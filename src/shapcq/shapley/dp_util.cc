#include "shapcq/shapley/dp_util.h"

#include "shapcq/util/check.h"

namespace shapcq {

std::vector<BigInt> Convolve(const std::vector<BigInt>& a,
                             const std::vector<BigInt>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<BigInt> out(a.size() + b.size() - 1);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_zero()) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      if (b[j].is_zero()) continue;
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

std::vector<BigInt> BinomialVector(int m, Combinatorics* comb) {
  SHAPCQ_CHECK(m >= 0);
  return comb->BinomialRow(m);
}

std::vector<BigInt> PadCounts(const std::vector<BigInt>& counts, int pad,
                              Combinatorics* comb) {
  if (pad == 0) return counts;
  return Convolve(counts, comb->BinomialRow(pad));
}

std::vector<BigInt> SubtractCounts(const std::vector<BigInt>& a,
                                   const std::vector<BigInt>& b) {
  SHAPCQ_CHECK(a.size() == b.size());
  std::vector<BigInt> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace shapcq
