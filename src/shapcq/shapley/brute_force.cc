#include "shapcq/shapley/brute_force.h"

#include <algorithm>
#include <numeric>

#include "shapcq/query/evaluator.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

namespace {

// Precomputed evaluation context: answers with minimal endogenous supports
// and their τ values.
class MaskAggregator {
 public:
  MaskAggregator(const AggregateQuery& a, const Database& db)
      : evaluator_(a.query, db), alpha_(a.alpha) {
    for (const auto& info : evaluator_.answers()) {
      taus_.push_back(a.tau->Evaluate(info.answer));
    }
  }

  const SubsetEvaluator& evaluator() const { return evaluator_; }
  int num_players() const { return evaluator_.num_players(); }

  // A(E ∪ D_x) for the subset given by `mask`.
  Rational Evaluate(uint64_t mask) const {
    std::vector<Rational> bag;
    const auto& answers = evaluator_.answers();
    for (size_t i = 0; i < answers.size(); ++i) {
      for (uint64_t support : answers[i].supports) {
        if ((support & mask) == support) {
          bag.push_back(taus_[i]);
          break;
        }
      }
    }
    return alpha_.Apply(bag);
  }

 private:
  SubsetEvaluator evaluator_;
  AggregateFunction alpha_;
  std::vector<Rational> taus_;
};

Status CheckSize(const Database& db) {
  if (db.num_endogenous() > kBruteForceMaxPlayers) {
    return UnsupportedError(
        "brute force limited to " + std::to_string(kBruteForceMaxPlayers) +
        " endogenous facts, got " + std::to_string(db.num_endogenous()));
  }
  return Status::Ok();
}

}  // namespace

StatusOr<SumKSeries> BruteForceSumK(const AggregateQuery& a,
                                    const Database& db,
                                    const SolverOptions& /*options*/) {
  Status size_ok = CheckSize(db);
  if (!size_ok.ok()) return size_ok;
  MaskAggregator aggregator(a, db);
  int n = aggregator.num_players();
  SumKSeries series(static_cast<size_t>(n) + 1);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    Rational value = aggregator.Evaluate(mask);
    if (!value.is_zero()) {
      series[static_cast<size_t>(__builtin_popcountll(mask))] += value;
    }
  }
  return series;
}

StatusOr<Rational> BruteForceScore(const AggregateQuery& a, const Database& db,
                                   FactId fact, ScoreKind kind) {
  Status size_ok = CheckSize(db);
  if (!size_ok.ok()) return size_ok;
  SHAPCQ_CHECK(db.fact(fact).endogenous);
  MaskAggregator aggregator(a, db);
  int n = aggregator.num_players();
  int player = aggregator.evaluator().PlayerIndex(fact);
  SHAPCQ_CHECK(player >= 0);
  uint64_t fact_bit = uint64_t{1} << player;
  Combinatorics comb;
  Rational score;
  // Enumerate subsets E of D_n \ {f}: masks without the fact's bit.
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    if (mask & fact_bit) continue;
    Rational delta =
        aggregator.Evaluate(mask | fact_bit) - aggregator.Evaluate(mask);
    if (delta.is_zero()) continue;
    switch (kind) {
      case ScoreKind::kShapley:
        score += comb.ShapleyCoefficient(n, __builtin_popcountll(mask)) *
                 delta;
        break;
      case ScoreKind::kBanzhaf:
        score += delta;
        break;
    }
  }
  if (kind == ScoreKind::kBanzhaf && n > 1) {
    score /= Rational(BigInt::TwoPow(static_cast<uint64_t>(n - 1)));
  }
  return score;
}

StatusOr<std::vector<std::pair<FactId, Rational>>> BruteForceScoreAll(
    const AggregateQuery& a, const Database& db, ScoreKind kind) {
  Status size_ok = CheckSize(db);
  if (!size_ok.ok()) return size_ok;
  MaskAggregator aggregator(a, db);
  int n = aggregator.num_players();
  Combinatorics comb;
  // Cache A over all masks once (each mask evaluated exactly once).
  std::vector<Rational> values(uint64_t{1} << n);
  for (uint64_t mask = 0; mask < values.size(); ++mask) {
    values[mask] = aggregator.Evaluate(mask);
  }
  std::vector<std::pair<FactId, Rational>> scores;
  for (int player = 0; player < n; ++player) {
    uint64_t fact_bit = uint64_t{1} << player;
    Rational score;
    for (uint64_t mask = 0; mask < values.size(); ++mask) {
      if (mask & fact_bit) continue;
      Rational delta = values[mask | fact_bit] - values[mask];
      if (delta.is_zero()) continue;
      switch (kind) {
        case ScoreKind::kShapley:
          score += comb.ShapleyCoefficient(n, __builtin_popcountll(mask)) *
                   delta;
          break;
        case ScoreKind::kBanzhaf:
          score += delta;
          break;
      }
    }
    if (kind == ScoreKind::kBanzhaf && n > 1) {
      score /= Rational(BigInt::TwoPow(static_cast<uint64_t>(n - 1)));
    }
    scores.emplace_back(aggregator.evaluator().PlayerFact(player),
                        std::move(score));
  }
  return scores;
}

StatusOr<Rational> BruteForceShapleyByPermutations(const AggregateQuery& a,
                                                   const Database& db,
                                                   FactId fact) {
  if (db.num_endogenous() > 9) {
    return UnsupportedError("permutation enumeration limited to 9 players");
  }
  SHAPCQ_CHECK(db.fact(fact).endogenous);
  MaskAggregator aggregator(a, db);
  int n = aggregator.num_players();
  int player = aggregator.evaluator().PlayerIndex(fact);
  SHAPCQ_CHECK(player >= 0);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Rational total;
  int64_t permutations = 0;
  do {
    uint64_t mask = 0;
    for (int p : order) {
      if (p == player) break;
      mask |= uint64_t{1} << p;
    }
    total += aggregator.Evaluate(mask | (uint64_t{1} << player)) -
             aggregator.Evaluate(mask);
    ++permutations;
  } while (std::next_permutation(order.begin(), order.end()));
  return total / Rational(permutations);
}

}  // namespace shapcq
