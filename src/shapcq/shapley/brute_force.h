// Exact brute-force Shapley/Banzhaf computation (ground truth).
//
// Works for ANY aggregate query (any τ, any α, self-joins allowed) by
// enumerating subsets of the endogenous facts. Exponential in |D_n|;
// intended for testing and for the hardness-side benchmarks. The engine
// precomputes the homomorphism structure once (SubsetEvaluator) so that the
// per-subset evaluation is a cheap mask check.

#ifndef SHAPCQ_SHAPLEY_BRUTE_FORCE_H_
#define SHAPCQ_SHAPLEY_BRUTE_FORCE_H_

#include <utility>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Largest |D_n| the brute-force engines accept. Past this horizon the
// session either solves exactly through the lineage-circuit engine
// (Sum/Count with compilable provenance, lineage/engine.h) or samples;
// under kExactOnly it returns a structured status naming this limit, the
// player count, and the engines consulted (session.h).
inline constexpr int kBruteForceMaxPlayers = 26;

// sum_k(A, D) by subset enumeration.
StatusOr<SumKSeries> BruteForceSumK(const AggregateQuery& a,
                                    const Database& db,
                                    const SolverOptions& options = {});

// Score of one fact by direct subset enumeration of D_n \ {f} (uses a single
// homomorphism precomputation, so cheaper than two BruteForceSumK calls).
StatusOr<Rational> BruteForceScore(const AggregateQuery& a, const Database& db,
                                   FactId fact,
                                   ScoreKind kind = ScoreKind::kShapley);

// Scores of all endogenous facts in one subset sweep.
StatusOr<std::vector<std::pair<FactId, Rational>>> BruteForceScoreAll(
    const AggregateQuery& a, const Database& db,
    ScoreKind kind = ScoreKind::kShapley);

// Shapley value straight from the permutation definition (O(n!)); used to
// cross-validate the subset formula on tiny instances. Requires |D_n| <= 9.
StatusOr<Rational> BruteForceShapleyByPermutations(const AggregateQuery& a,
                                                   const Database& db,
                                                   FactId fact);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_BRUTE_FORCE_H_
