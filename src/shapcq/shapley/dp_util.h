// Shared helpers for the subset-counting dynamic programs.

#ifndef SHAPCQ_SHAPLEY_DP_UTIL_H_
#define SHAPCQ_SHAPLEY_DP_UTIL_H_

#include <vector>

#include "shapcq/util/bigint.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

// Polynomial (convolution) product of two count vectors:
// out[k] = Σ_j a[j]·b[k−j]. Empty inputs are treated as the zero polynomial.
std::vector<BigInt> Convolve(const std::vector<BigInt>& a,
                             const std::vector<BigInt>& b);

// [C(m,0), C(m,1), ..., C(m,m)].
std::vector<BigInt> BinomialVector(int m, Combinatorics* comb);

// Counts after adding `pad` endogenous facts that never affect the query:
// out[k] = Σ_j c[j]·C(pad, k−j).
std::vector<BigInt> PadCounts(const std::vector<BigInt>& counts, int pad,
                              Combinatorics* comb);

// Element-wise difference a − b (same length).
std::vector<BigInt> SubtractCounts(const std::vector<BigInt>& a,
                                   const std::vector<BigInt>& b);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_DP_UTIL_H_
