#include "shapcq/shapley/min_max.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "shapcq/agg/value_function.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/shapley/dp_util.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

namespace {

// The paper's P[Q', D'] for sub-problems containing the localization
// relation: per anchor (τ-value, ascending), the per-size counts of subsets
// whose maximum equals that anchor. Subsets with an empty answer set are
// implicit: C(m, k) − Σ_anchors count.
struct MaxStructure {
  // by_anchor[i][k], every row has length num_endogenous + 1.
  std::vector<std::vector<BigInt>> by_anchor;
  int num_endogenous = 0;
};

class MaxSolver {
 public:
  MaxSolver(const ConjunctiveQuery& original, const ValueFunction& tau,
            const std::string& relation, std::vector<Rational> anchors,
            Combinatorics* comb)
      : tau_(tau), relation_(relation), anchors_(std::move(anchors)),
        comb_(comb), head_arity_(original.arity()) {
    for (int position = 0; position < original.arity(); ++position) {
      positions_of_head_var_[original.head()[static_cast<size_t>(position)]]
          .push_back(position);
    }
    depends_on_ = tau_.DependsOn();
  }

  // Partial original-head assignment; nullopt = not yet bound.
  using PartialHead = std::vector<std::optional<Value>>;

  PartialHead EmptyHead() const {
    return PartialHead(static_cast<size_t>(head_arity_));
  }

  MaxStructure Solve(const ConjunctiveQuery& q, const FactSubset& facts,
                     const PartialHead& head) {
    SHAPCQ_CHECK(AtomIndexOf(q, relation_) >= 0);
    if (AllDependedBound(head)) return SolveValueFixed(q, facts, head);
    std::vector<std::string> roots = RootVariables(q);
    if (!roots.empty()) return SolveRoot(q, roots[0], facts, head);
    std::vector<std::vector<int>> components = ConnectedComponents(q);
    SHAPCQ_CHECK(components.size() > 1);
    return SolveCrossProduct(q, components, facts, head);
  }

  // Zero structure over zero facts (identity for combine_∪).
  MaxStructure Empty() const {
    MaxStructure s;
    s.num_endogenous = 0;
    s.by_anchor.assign(anchors_.size(), {BigInt(0)});
    return s;
  }

  // Adds `pad` endogenous facts that never affect the answers.
  MaxStructure Pad(MaxStructure s, int pad) const {
    if (pad == 0) return s;
    for (auto& row : s.by_anchor) row = PadCounts(row, pad, comb_);
    s.num_endogenous += pad;
    return s;
  }

  // combine_∪ (Appendix C): over disjoint sub-databases, the union's maximum
  // is a iff both sides are ≤ a (or empty) and at least one side equals a.
  MaxStructure CombineUnion(const MaxStructure& lhs,
                            const MaxStructure& rhs) const {
    MaxStructure out;
    out.num_endogenous = lhs.num_endogenous + rhs.num_endogenous;
    size_t num_anchors = anchors_.size();
    out.by_anchor.assign(num_anchors,
                         std::vector<BigInt>(
                             static_cast<size_t>(out.num_endogenous) + 1));
    // N_le[i][k] = #subsets with max ≤ anchor i or empty; N_lt strict.
    std::vector<std::vector<BigInt>> lhs_le = AtMostCounts(lhs);
    std::vector<std::vector<BigInt>> rhs_le = AtMostCounts(rhs);
    for (size_t i = 0; i < num_anchors; ++i) {
      const std::vector<BigInt>& lhs_eq = lhs.by_anchor[i];
      const std::vector<BigInt>& rhs_eq = rhs.by_anchor[i];
      std::vector<BigInt> lhs_lt = lhs_le[i];
      for (size_t k = 0; k < lhs_lt.size(); ++k) lhs_lt[k] -= lhs_eq[k];
      // max = a: (lhs = a, rhs ≤ a or empty) or (lhs < a or empty, rhs = a).
      std::vector<BigInt> part1 = Convolve(lhs_eq, rhs_le[i]);
      std::vector<BigInt> part2 = Convolve(lhs_lt, rhs_eq);
      for (size_t k = 0; k < out.by_anchor[i].size(); ++k) {
        out.by_anchor[i][k] = part1[k] + part2[k];
      }
    }
    return out;
  }

 private:
  bool AllDependedBound(const PartialHead& head) const {
    for (int position : depends_on_) {
      if (!head[static_cast<size_t>(position)].has_value()) return false;
    }
    return true;
  }

  int AnchorIndexOf(const Rational& value) const {
    auto it = std::lower_bound(anchors_.begin(), anchors_.end(), value);
    if (it == anchors_.end() || *it != value) return -1;
    return static_cast<int>(it - anchors_.begin());
  }

  // All τ-relevant head positions are bound: every answer of this
  // sub-problem has the same τ-value, so the structure collapses to
  // satisfaction counts tagged with one anchor.
  MaxStructure SolveValueFixed(const ConjunctiveQuery& q,
                               const FactSubset& facts,
                               const PartialHead& head) {
    Tuple answer(static_cast<size_t>(head_arity_), Value(0));
    for (int position : depends_on_) {
      answer[static_cast<size_t>(position)] =
          *head[static_cast<size_t>(position)];
    }
    Rational value = tau_.Evaluate(answer);
    std::vector<BigInt> sat = SatisfactionCountsOnSubset(q, facts, comb_);
    MaxStructure out;
    out.num_endogenous = static_cast<int>(sat.size()) - 1;
    out.by_anchor.assign(anchors_.size(),
                         std::vector<BigInt>(sat.size()));
    int anchor = AnchorIndexOf(value);
    if (anchor >= 0) {
      out.by_anchor[static_cast<size_t>(anchor)] = std::move(sat);
    } else {
      // A value outside the anchor set can never be realized by an answer
      // of the full database, so no subset may satisfy the query here.
      for (const BigInt& count : sat) SHAPCQ_CHECK(count.is_zero());
    }
    return out;
  }

  MaxStructure SolveRoot(const ConjunctiveQuery& q, const std::string& x,
                         const FactSubset& facts, const PartialHead& head) {
    int total_endogenous = facts.CountEndogenous();
    MaxStructure acc = Empty();
    int covered_endogenous = 0;
    for (const Value& a : CandidateValues(q, x, facts)) {
      FactSubset sub;
      sub.db = facts.db;
      sub.facts = FactsConsistentWith(q, x, a, facts);
      covered_endogenous += sub.CountEndogenous();
      PartialHead sub_head = head;
      auto it = positions_of_head_var_.find(x);
      if (it != positions_of_head_var_.end()) {
        for (int position : it->second) {
          sub_head[static_cast<size_t>(position)] = a;
        }
      }
      acc = CombineUnion(acc, Solve(q.Bind(x, a), sub, sub_head));
    }
    return Pad(std::move(acc), total_endogenous - covered_endogenous);
  }

  // combine_× (Appendix C): the factor holding the localization relation
  // carries the value structure; all other factors gate by non-emptiness.
  MaxStructure SolveCrossProduct(const ConjunctiveQuery& q,
                                 const std::vector<std::vector<int>>& components,
                                 const FactSubset& facts,
                                 const PartialHead& head) {
    int r_atom = AtomIndexOf(q, relation_);
    MaxStructure value_side;
    std::vector<BigInt> other_sat = {BigInt(1)};
    int covered_endogenous = 0;
    bool found = false;
    for (const std::vector<int>& component : components) {
      ConjunctiveQuery sub_q = q.Project(component, nullptr);
      FactSubset sub = FactsOfQueryRelations(sub_q, facts);
      covered_endogenous += sub.CountEndogenous();
      bool holds_r = std::find(component.begin(), component.end(), r_atom) !=
                     component.end();
      if (holds_r) {
        found = true;
        value_side = Solve(sub_q, sub, head);
      } else {
        other_sat = Convolve(other_sat,
                             SatisfactionCountsOnSubset(sub_q, sub, comb_));
      }
    }
    SHAPCQ_CHECK(found);
    SHAPCQ_CHECK(covered_endogenous == facts.CountEndogenous());
    MaxStructure out;
    out.num_endogenous = facts.CountEndogenous();
    out.by_anchor.reserve(anchors_.size());
    for (const std::vector<BigInt>& row : value_side.by_anchor) {
      std::vector<BigInt> combined = Convolve(row, other_sat);
      combined.resize(static_cast<size_t>(out.num_endogenous) + 1);
      out.by_anchor.push_back(std::move(combined));
    }
    return out;
  }

  // Per anchor i: counts of subsets with max ≤ anchor i or empty answers.
  std::vector<std::vector<BigInt>> AtMostCounts(const MaxStructure& s) const {
    size_t width = static_cast<size_t>(s.num_endogenous) + 1;
    std::vector<std::vector<BigInt>> result(anchors_.size(),
                                            std::vector<BigInt>(width));
    // Running prefix over anchors.
    std::vector<BigInt> prefix(width);
    std::vector<BigInt> total(width);
    for (size_t i = 0; i < anchors_.size(); ++i) {
      for (size_t k = 0; k < width; ++k) total[k] += s.by_anchor[i][k];
    }
    for (size_t i = 0; i < anchors_.size(); ++i) {
      for (size_t k = 0; k < width; ++k) {
        prefix[k] += s.by_anchor[i][k];
        // empty-answer subsets: C(m,k) − total.
        result[i][k] = prefix[k] + comb_->Binomial(s.num_endogenous,
                                                   static_cast<int64_t>(k)) -
                       total[k];
      }
    }
    return result;
  }

  const ValueFunction& tau_;
  const std::string& relation_;
  std::vector<Rational> anchors_;  // ascending
  Combinatorics* comb_;
  int head_arity_;
  std::vector<int> depends_on_;
  std::unordered_map<std::string, std::vector<int>> positions_of_head_var_;
};

StatusOr<SumKSeries> MaxSumK(const AggregateQuery& a, const Database& db) {
  std::vector<int> localization = LocalizationAtoms(a.query, *a.tau);
  if (localization.empty()) {
    return UnsupportedError("value function is not localized on any atom of " +
                            a.query.ToString());
  }
  const std::string relation =
      a.query.atoms()[static_cast<size_t>(localization[0])].relation;
  // Anchors: distinct τ-values over the answers of the full database.
  std::set<Rational> anchor_set;
  for (const Tuple& answer : Evaluate(a.query, db)) {
    anchor_set.insert(a.tau->Evaluate(answer));
  }
  int n = db.num_endogenous();
  SumKSeries series(static_cast<size_t>(n) + 1);
  if (anchor_set.empty()) return series;  // no answers ever: sum_k = 0
  std::vector<Rational> anchors(anchor_set.begin(), anchor_set.end());
  Combinatorics comb;
  MaxSolver solver(a.query, *a.tau, relation, anchors, &comb);
  RelevanceSplit split = SplitRelevant(a.query, AllFacts(db));
  MaxStructure top =
      solver.Solve(a.query, split.relevant, solver.EmptyHead());
  top = solver.Pad(std::move(top), split.irrelevant_endogenous);
  SHAPCQ_CHECK(top.num_endogenous == n);
  for (size_t i = 0; i < anchors.size(); ++i) {
    for (int k = 0; k <= n; ++k) {
      const BigInt& count = top.by_anchor[i][static_cast<size_t>(k)];
      if (!count.is_zero()) {
        series[static_cast<size_t>(k)] += anchors[i] * Rational(count);
      }
    }
  }
  return series;
}

}  // namespace

StatusOr<SumKSeries> MinMaxSumK(const AggregateQuery& a, const Database& db) {
  if (a.alpha.kind() != AggKind::kMin && a.alpha.kind() != AggKind::kMax) {
    return UnsupportedError("MinMaxSumK handles Min and Max only");
  }
  if (a.query.HasSelfJoin()) {
    return UnsupportedError("Min/Max requires a self-join-free CQ");
  }
  if (!IsAllHierarchical(a.query)) {
    return UnsupportedError("Min/Max requires an all-hierarchical CQ: " +
                            a.query.ToString());
  }
  if (a.alpha.kind() == AggKind::kMax) return MaxSumK(a, db);
  // Min(B) = −Max(−B), and both send ∅ to 0.
  AggregateQuery negated{
      a.query,
      MakeComposedTau([](const Rational& v) { return -v; }, a.tau, "negate"),
      AggregateFunction::Max()};
  StatusOr<SumKSeries> series = MaxSumK(negated, db);
  if (!series.ok()) return series.status();
  for (Rational& value : *series) value = -value;
  return series;
}

void RegisterMinMaxEngine(EngineRegistry& registry) {
  EngineProvider provider;
  provider.name = "min-max/all-hierarchical-dp";
  provider.priority = 10;
  provider.applies = [](const AggregateQuery& a) {
    return a.alpha.kind() == AggKind::kMin || a.alpha.kind() == AggKind::kMax;
  };
  provider.sum_k = MinMaxSumK;
  registry.Register(std::move(provider));
}

}  // namespace shapcq
