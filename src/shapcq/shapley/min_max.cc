#include "shapcq/shapley/min_max.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "shapcq/agg/value_function.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/decomposition.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/shapley/dp_util.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/util/parallel.h"

namespace shapcq {

namespace {

// The paper's P[Q', D'] for sub-problems containing the localization
// relation: per anchor (τ-value, ascending), the per-size counts of subsets
// whose maximum equals that anchor. Subsets with an empty answer set are
// implicit: C(m, k) − Σ_anchors count.
struct MaxStructure {
  // by_anchor[i][k], every row has length num_endogenous + 1.
  std::vector<std::vector<BigInt>> by_anchor;
  int num_endogenous = 0;
};

// The leave-one-out bundle of one sub-problem: the structure of the full
// fact subset plus, for every endogenous fact f in it, the structure with
// f exogenous (the paper's derived database F_f, one row narrower). Built
// in one recursive pass: at each combine node the variants reuse the
// prefix/suffix-combined siblings, so a fact's variant costs one combine
// per ancestor instead of a full re-solve — this is what makes the
// batched all-facts scorer asymptotically cheaper than the per-fact
// sweep. Combines count subsets with exact integers, so any combine
// grouping yields the identical structure. The trade-off is memory: all
// n variants are resident at once (O(n² · anchors) BigInts at the top
// node); streaming scores out as variants complete would cap that if
// instances outgrow it.
struct MaxLOO {
  MaxStructure full;
  std::unordered_map<FactId, MaxStructure> minus;
};

class MaxSolver {
 public:
  MaxSolver(const ConjunctiveQuery& original, const ValueFunction& tau,
            const std::string& relation, std::vector<Rational> anchors,
            Combinatorics* comb)
      : tau_(tau), relation_(relation), anchors_(std::move(anchors)),
        comb_(comb), head_arity_(original.arity()) {
    for (int position = 0; position < original.arity(); ++position) {
      positions_of_head_var_[original.head()[static_cast<size_t>(position)]]
          .push_back(position);
    }
    depends_on_ = tau_.DependsOn();
  }

  // Partial original-head assignment; nullopt = not yet bound.
  using PartialHead = std::vector<std::optional<Value>>;

  PartialHead EmptyHead() const {
    return PartialHead(static_cast<size_t>(head_arity_));
  }

  MaxStructure Solve(const ConjunctiveQuery& q, const FactSubset& facts,
                     const PartialHead& head) {
    SHAPCQ_CHECK(AtomIndexOf(q, relation_) >= 0);
    if (AllDependedBound(head)) return SolveValueFixed(q, facts, head);
    std::vector<std::string> roots = RootVariables(q);
    if (!roots.empty()) return SolveRoot(q, roots[0], facts, head);
    std::vector<std::vector<int>> components = ConnectedComponents(q);
    SHAPCQ_CHECK(components.size() > 1);
    return SolveCrossProduct(q, components, facts, head);
  }

  // One pass computing the full structure and every endogenous fact's
  // F-variant. `work` must be the (mutable) database all fact subsets
  // point into; leaf variants are realized as transient flag flips on it.
  // Every flag is restored before returning.
  MaxLOO SolveLeaveOneOut(const ConjunctiveQuery& q, const FactSubset& facts,
                          const PartialHead& head, Database* work) {
    loo_db_ = work;
    MaxLOO out = SolveLOO(q, facts, head);
    loo_db_ = nullptr;
    return out;
  }

  // Zero structure over zero facts (identity for combine_∪).
  MaxStructure Empty() const {
    MaxStructure s;
    s.num_endogenous = 0;
    s.by_anchor.assign(anchors_.size(), {BigInt(0)});
    return s;
  }

  // Adds `pad` endogenous facts that never affect the answers.
  MaxStructure Pad(MaxStructure s, int pad) const {
    if (pad == 0) return s;
    for (auto& row : s.by_anchor) row = PadCounts(row, pad, comb_);
    s.num_endogenous += pad;
    return s;
  }

  // combine_∪ (Appendix C): over disjoint sub-databases, the union's maximum
  // is a iff both sides are ≤ a (or empty) and at least one side equals a.
  MaxStructure CombineUnion(const MaxStructure& lhs,
                            const MaxStructure& rhs) const {
    MaxStructure out;
    out.num_endogenous = lhs.num_endogenous + rhs.num_endogenous;
    size_t num_anchors = anchors_.size();
    out.by_anchor.assign(num_anchors,
                         std::vector<BigInt>(
                             static_cast<size_t>(out.num_endogenous) + 1));
    // N_le[i][k] = #subsets with max ≤ anchor i or empty; N_lt strict.
    std::vector<std::vector<BigInt>> lhs_le = AtMostCounts(lhs);
    std::vector<std::vector<BigInt>> rhs_le = AtMostCounts(rhs);
    for (size_t i = 0; i < num_anchors; ++i) {
      const std::vector<BigInt>& lhs_eq = lhs.by_anchor[i];
      const std::vector<BigInt>& rhs_eq = rhs.by_anchor[i];
      std::vector<BigInt> lhs_lt = lhs_le[i];
      for (size_t k = 0; k < lhs_lt.size(); ++k) lhs_lt[k] -= lhs_eq[k];
      // max = a: (lhs = a, rhs ≤ a or empty) or (lhs < a or empty, rhs = a).
      std::vector<BigInt> part1 = Convolve(lhs_eq, rhs_le[i]);
      std::vector<BigInt> part2 = Convolve(lhs_lt, rhs_eq);
      for (size_t k = 0; k < out.by_anchor[i].size(); ++k) {
        out.by_anchor[i][k] = part1[k] + part2[k];
      }
    }
    return out;
  }

 private:
  bool AllDependedBound(const PartialHead& head) const {
    for (int position : depends_on_) {
      if (!head[static_cast<size_t>(position)].has_value()) return false;
    }
    return true;
  }

  int AnchorIndexOf(const Rational& value) const {
    auto it = std::lower_bound(anchors_.begin(), anchors_.end(), value);
    if (it == anchors_.end() || *it != value) return -1;
    return static_cast<int>(it - anchors_.begin());
  }

  // All τ-relevant head positions are bound: every answer of this
  // sub-problem has the same τ-value, so the structure collapses to
  // satisfaction counts tagged with one anchor.
  MaxStructure SolveValueFixed(const ConjunctiveQuery& q,
                               const FactSubset& facts,
                               const PartialHead& head) {
    Tuple answer(static_cast<size_t>(head_arity_), Value(0));
    for (int position : depends_on_) {
      answer[static_cast<size_t>(position)] =
          *head[static_cast<size_t>(position)];
    }
    Rational value = tau_.Evaluate(answer);
    std::vector<BigInt> sat = SatisfactionCountsOnSubset(q, facts, comb_);
    MaxStructure out;
    out.num_endogenous = static_cast<int>(sat.size()) - 1;
    out.by_anchor.assign(anchors_.size(),
                         std::vector<BigInt>(sat.size()));
    int anchor = AnchorIndexOf(value);
    if (anchor >= 0) {
      out.by_anchor[static_cast<size_t>(anchor)] = std::move(sat);
    } else {
      // A value outside the anchor set can never be realized by an answer
      // of the full database, so no subset may satisfy the query here.
      for (const BigInt& count : sat) SHAPCQ_CHECK(count.is_zero());
    }
    return out;
  }

  MaxStructure SolveRoot(const ConjunctiveQuery& q, const std::string& x,
                         const FactSubset& facts, const PartialHead& head) {
    int total_endogenous = facts.CountEndogenous();
    MaxStructure acc = Empty();
    int covered_endogenous = 0;
    for (const Value& a : CandidateValues(q, x, facts)) {
      FactSubset sub;
      sub.db = facts.db;
      sub.facts = FactsConsistentWith(q, x, a, facts);
      covered_endogenous += sub.CountEndogenous();
      PartialHead sub_head = head;
      auto it = positions_of_head_var_.find(x);
      if (it != positions_of_head_var_.end()) {
        for (int position : it->second) {
          sub_head[static_cast<size_t>(position)] = a;
        }
      }
      acc = CombineUnion(acc, Solve(q.Bind(x, a), sub, sub_head));
    }
    return Pad(std::move(acc), total_endogenous - covered_endogenous);
  }

  // combine_× (Appendix C): the factor holding the localization relation
  // carries the value structure; all other factors gate by non-emptiness.
  MaxStructure SolveCrossProduct(const ConjunctiveQuery& q,
                                 const std::vector<std::vector<int>>& components,
                                 const FactSubset& facts,
                                 const PartialHead& head) {
    int r_atom = AtomIndexOf(q, relation_);
    MaxStructure value_side;
    std::vector<BigInt> other_sat = {BigInt(1)};
    int covered_endogenous = 0;
    bool found = false;
    for (const std::vector<int>& component : components) {
      ConjunctiveQuery sub_q = q.Project(component, nullptr);
      FactSubset sub = FactsOfQueryRelations(sub_q, facts);
      covered_endogenous += sub.CountEndogenous();
      bool holds_r = std::find(component.begin(), component.end(), r_atom) !=
                     component.end();
      if (holds_r) {
        found = true;
        value_side = Solve(sub_q, sub, head);
      } else {
        other_sat = Convolve(other_sat,
                             SatisfactionCountsOnSubset(sub_q, sub, comb_));
      }
    }
    SHAPCQ_CHECK(found);
    SHAPCQ_CHECK(covered_endogenous == facts.CountEndogenous());
    MaxStructure out;
    out.num_endogenous = facts.CountEndogenous();
    out.by_anchor.reserve(anchors_.size());
    for (const std::vector<BigInt>& row : value_side.by_anchor) {
      std::vector<BigInt> combined = Convolve(row, other_sat);
      combined.resize(static_cast<size_t>(out.num_endogenous) + 1);
      out.by_anchor.push_back(std::move(combined));
    }
    return out;
  }

  MaxLOO SolveLOO(const ConjunctiveQuery& q, const FactSubset& facts,
                  const PartialHead& head) {
    SHAPCQ_CHECK(AtomIndexOf(q, relation_) >= 0);
    if (AllDependedBound(head)) return SolveValueFixedLOO(q, facts, head);
    std::vector<std::string> roots = RootVariables(q);
    if (!roots.empty()) return SolveRootLOO(q, roots[0], facts, head);
    std::vector<std::vector<int>> components = ConnectedComponents(q);
    SHAPCQ_CHECK(components.size() > 1);
    return SolveCrossProductLOO(q, components, facts, head);
  }

  // Leaf: the variant of each fact is a direct re-count with its flag
  // flipped — the one place the leave-one-out pass still recomputes.
  MaxLOO SolveValueFixedLOO(const ConjunctiveQuery& q, const FactSubset& facts,
                            const PartialHead& head) {
    MaxLOO out;
    out.full = SolveValueFixed(q, facts, head);
    for (FactId f : facts.EndogenousFacts()) {
      loo_db_->SetEndogenous(f, false);
      out.minus.emplace(f, SolveValueFixed(q, facts, head));
      loo_db_->SetEndogenous(f, true);
    }
    return out;
  }

  // Root split: each fact lives in exactly one branch (self-join-free
  // consistency is a partition), so its variant is
  // prefix ∪ variant-branch ∪ suffix — one CombineUnion pair per fact
  // instead of re-folding every branch. Uncovered endogenous facts are
  // pure padding: their variant is the same combined structure with one
  // padding row fewer.
  MaxLOO SolveRootLOO(const ConjunctiveQuery& q, const std::string& x,
                      const FactSubset& facts, const PartialHead& head) {
    int total_endogenous = facts.CountEndogenous();
    std::vector<MaxLOO> branches;
    int covered_endogenous = 0;
    std::unordered_set<FactId> covered_endo;
    for (const Value& a : CandidateValues(q, x, facts)) {
      FactSubset sub;
      sub.db = facts.db;
      sub.facts = FactsConsistentWith(q, x, a, facts);
      covered_endogenous += sub.CountEndogenous();
      for (FactId f : sub.EndogenousFacts()) covered_endo.insert(f);
      PartialHead sub_head = head;
      auto it = positions_of_head_var_.find(x);
      if (it != positions_of_head_var_.end()) {
        for (int position : it->second) {
          sub_head[static_cast<size_t>(position)] = a;
        }
      }
      branches.push_back(SolveLOO(q.Bind(x, a), sub, sub_head));
    }
    const int pad = total_endogenous - covered_endogenous;
    const size_t num_branches = branches.size();
    // prefix[i] = branches[0..i) folded left (prefix[0] = Empty), exactly
    // the running accumulator of SolveRoot; suffix[i] = branches(i..B).
    std::vector<MaxStructure> prefix(num_branches + 1);
    prefix[0] = Empty();
    for (size_t i = 0; i < num_branches; ++i) {
      prefix[i + 1] = CombineUnion(prefix[i], branches[i].full);
    }
    std::vector<MaxStructure> suffix(num_branches + 1);
    suffix[num_branches] = Empty();
    for (size_t i = num_branches; i-- > 0;) {
      suffix[i] = CombineUnion(branches[i].full, suffix[i + 1]);
    }
    MaxLOO out;
    out.full = Pad(prefix[num_branches], pad);
    for (size_t i = 0; i < num_branches; ++i) {
      for (auto& [f, variant] : branches[i].minus) {
        out.minus.emplace(
            f, Pad(CombineUnion(CombineUnion(prefix[i], variant),
                                suffix[i + 1]),
                   pad));
      }
    }
    if (pad > 0) {
      for (FactId f : facts.EndogenousFacts()) {
        if (covered_endo.count(f) == 0) {
          out.minus.emplace(f, Pad(prefix[num_branches], pad - 1));
        }
      }
    }
    return out;
  }

  // Cross product: the value-bearing component recurses; the other
  // components gate by satisfaction counts. A fact in a gating component
  // re-counts only that component and re-convolves.
  MaxLOO SolveCrossProductLOO(const ConjunctiveQuery& q,
                              const std::vector<std::vector<int>>& components,
                              const FactSubset& facts,
                              const PartialHead& head) {
    int r_atom = AtomIndexOf(q, relation_);
    MaxLOO value_side;
    // Gating components: full counts plus per-endogenous-fact variants.
    struct GateComponent {
      std::vector<BigInt> sat;
      std::unordered_map<FactId, std::vector<BigInt>> sat_minus;
    };
    std::vector<GateComponent> gates;
    int covered_endogenous = 0;
    bool found = false;
    for (const std::vector<int>& component : components) {
      ConjunctiveQuery sub_q = q.Project(component, nullptr);
      FactSubset sub = FactsOfQueryRelations(sub_q, facts);
      covered_endogenous += sub.CountEndogenous();
      bool holds_r = std::find(component.begin(), component.end(), r_atom) !=
                     component.end();
      if (holds_r) {
        found = true;
        value_side = SolveLOO(sub_q, sub, head);
      } else {
        GateComponent gate;
        gate.sat = SatisfactionCountsOnSubset(sub_q, sub, comb_);
        for (FactId f : sub.EndogenousFacts()) {
          loo_db_->SetEndogenous(f, false);
          gate.sat_minus.emplace(
              f, SatisfactionCountsOnSubset(sub_q, sub, comb_));
          loo_db_->SetEndogenous(f, true);
        }
        gates.push_back(std::move(gate));
      }
    }
    SHAPCQ_CHECK(found);
    SHAPCQ_CHECK(covered_endogenous == facts.CountEndogenous());
    const int num_endogenous = facts.CountEndogenous();
    // Convolved gate counts with prefix/suffix so a gating fact's variant
    // re-convolves one component, not all of them.
    const size_t num_gates = gates.size();
    std::vector<std::vector<BigInt>> gate_prefix(num_gates + 1);
    gate_prefix[0] = {BigInt(1)};
    for (size_t i = 0; i < num_gates; ++i) {
      gate_prefix[i + 1] = Convolve(gate_prefix[i], gates[i].sat);
    }
    std::vector<std::vector<BigInt>> gate_suffix(num_gates + 1);
    gate_suffix[num_gates] = {BigInt(1)};
    for (size_t i = num_gates; i-- > 0;) {
      gate_suffix[i] = Convolve(gates[i].sat, gate_suffix[i + 1]);
    }
    auto combine = [&](const MaxStructure& value,
                       const std::vector<BigInt>& other_sat,
                       int endogenous) {
      MaxStructure s;
      s.num_endogenous = endogenous;
      s.by_anchor.reserve(anchors_.size());
      for (const std::vector<BigInt>& row : value.by_anchor) {
        std::vector<BigInt> combined = Convolve(row, other_sat);
        combined.resize(static_cast<size_t>(endogenous) + 1);
        s.by_anchor.push_back(std::move(combined));
      }
      return s;
    };
    MaxLOO out;
    out.full = combine(value_side.full, gate_prefix[num_gates],
                       num_endogenous);
    for (auto& [f, variant] : value_side.minus) {
      out.minus.emplace(
          f, combine(variant, gate_prefix[num_gates], num_endogenous - 1));
    }
    for (size_t i = 0; i < num_gates; ++i) {
      for (auto& [f, sat_variant] : gates[i].sat_minus) {
        std::vector<BigInt> other =
            Convolve(Convolve(gate_prefix[i], sat_variant),
                     gate_suffix[i + 1]);
        out.minus.emplace(f,
                          combine(value_side.full, other, num_endogenous - 1));
      }
    }
    return out;
  }

  // Per anchor i: counts of subsets with max ≤ anchor i or empty answers.
  std::vector<std::vector<BigInt>> AtMostCounts(const MaxStructure& s) const {
    size_t width = static_cast<size_t>(s.num_endogenous) + 1;
    std::vector<std::vector<BigInt>> result(anchors_.size(),
                                            std::vector<BigInt>(width));
    // Running prefix over anchors.
    std::vector<BigInt> prefix(width);
    std::vector<BigInt> total(width);
    for (size_t i = 0; i < anchors_.size(); ++i) {
      for (size_t k = 0; k < width; ++k) total[k] += s.by_anchor[i][k];
    }
    for (size_t i = 0; i < anchors_.size(); ++i) {
      for (size_t k = 0; k < width; ++k) {
        prefix[k] += s.by_anchor[i][k];
        // empty-answer subsets: C(m,k) − total.
        result[i][k] = prefix[k] + comb_->Binomial(s.num_endogenous,
                                                   static_cast<int64_t>(k)) -
                       total[k];
      }
    }
    return result;
  }

  const ValueFunction& tau_;
  const std::string& relation_;
  std::vector<Rational> anchors_;  // ascending
  Combinatorics* comb_;
  int head_arity_;
  std::vector<int> depends_on_;
  std::unordered_map<std::string, std::vector<int>> positions_of_head_var_;
  // Set only during SolveLeaveOneOut: the mutable database the fact
  // subsets point into, used for transient leaf flag flips.
  Database* loo_db_ = nullptr;
};

StatusOr<SumKSeries> MaxSumK(const AggregateQuery& a, const Database& db) {
  std::vector<int> localization = LocalizationAtoms(a.query, *a.tau);
  if (localization.empty()) {
    return UnsupportedError("value function is not localized on any atom of " +
                            a.query.ToString());
  }
  const std::string relation =
      a.query.atoms()[static_cast<size_t>(localization[0])].relation;
  // Anchors: distinct τ-values over the answers of the full database.
  std::set<Rational> anchor_set;
  for (const Tuple& answer : Evaluate(a.query, db)) {
    anchor_set.insert(a.tau->Evaluate(answer));
  }
  int n = db.num_endogenous();
  SumKSeries series(static_cast<size_t>(n) + 1);
  if (anchor_set.empty()) return series;  // no answers ever: sum_k = 0
  std::vector<Rational> anchors(anchor_set.begin(), anchor_set.end());
  Combinatorics comb;
  MaxSolver solver(a.query, *a.tau, relation, anchors, &comb);
  RelevanceSplit split = SplitRelevant(a.query, AllFacts(db));
  MaxStructure top =
      solver.Solve(a.query, split.relevant, solver.EmptyHead());
  top = solver.Pad(std::move(top), split.irrelevant_endogenous);
  SHAPCQ_CHECK(top.num_endogenous == n);
  for (size_t i = 0; i < anchors.size(); ++i) {
    for (int k = 0; k <= n; ++k) {
      const BigInt& count = top.by_anchor[i][static_cast<size_t>(k)];
      if (!count.is_zero()) {
        series[static_cast<size_t>(k)] += anchors[i] * Rational(count);
      }
    }
  }
  return series;
}

// sum_k series of a padded MaxStructure: Σ_anchors a · count, ascending
// anchors — the exact accumulation order of MaxSumK's tail, so the batched
// path reproduces its values bit for bit.
SumKSeries SeriesFromMaxStructure(const MaxStructure& top,
                                  const std::vector<Rational>& anchors) {
  SumKSeries series(static_cast<size_t>(top.num_endogenous) + 1);
  for (size_t i = 0; i < anchors.size(); ++i) {
    for (size_t k = 0; k < series.size(); ++k) {
      const BigInt& count = top.by_anchor[i][k];
      if (!count.is_zero()) series[k] += anchors[i] * Rational(count);
    }
  }
  return series;
}

// Batched Max scorer. Equivalence with per-fact ScoreViaSumK(MaxSumK):
//  * F_f (f exogenous) has exactly the facts of D, so its answers, anchor
//    set, and relevance split coincide with D's. All F-structures come
//    from one leave-one-out DP pass (SolveLeaveOneOut) over the relevant
//    subset — exact subset counting, so the variants carry exactly the
//    integers a from-scratch solve of F_f would produce.
//  * G_f (f removed) follows from the partition identity
//      sum_k(A, D) = sum_k(A, G_f) + sum_{k−1}(A, F_f)
//    (split the k-subsets of D_n by membership of f), so no G solve runs
//    at all. The subtraction is exact rational arithmetic on canonical
//    forms, hence value- and representation-identical to solving G_f.
//  * Facts irrelevant to Q leave every answer set unchanged, so F and G
//    series coincide and the score is an exact 0 — emitted without
//    running the DP (the per-fact path computes the same 0 the long way).
StatusOr<std::vector<std::pair<FactId, Rational>>> MaxScoreAll(
    const AggregateQuery& a, const Database& db, const SolverOptions& options) {
  std::vector<int> localization = LocalizationAtoms(a.query, *a.tau);
  if (localization.empty()) {
    return UnsupportedError("value function is not localized on any atom of " +
                            a.query.ToString());
  }
  const std::string relation =
      a.query.atoms()[static_cast<size_t>(localization[0])].relation;
  const std::vector<FactId> endo = db.EndogenousFacts();
  const int n = db.num_endogenous();
  if (n == 0) return std::vector<std::pair<FactId, Rational>>{};
  // Anchors: distinct τ-values over the answers of the full database —
  // computed once and shared by every per-fact variant.
  std::set<Rational> anchor_set;
  for (const Tuple& answer : Evaluate(a.query, db)) {
    anchor_set.insert(a.tau->Evaluate(answer));
  }
  std::vector<std::pair<FactId, Rational>> scores(endo.size());
  if (anchor_set.empty()) {
    // No answers over the full database: every F/G series is zero.
    for (size_t i = 0; i < endo.size(); ++i) scores[i] = {endo[i], Rational()};
    return scores;
  }
  const std::vector<Rational> anchors(anchor_set.begin(), anchor_set.end());
  // Relevance split, shared: relevance is independent of endogenous flags,
  // and every scored fact is itself relevant (irrelevant ones short-circuit
  // to 0), so the irrelevant counts hold for each derived database too.
  RelevanceSplit split = SplitRelevantIndexed(a.query, db);
  std::vector<char> is_relevant(static_cast<size_t>(db.num_facts()), 0);
  for (FactId id : split.relevant.facts) {
    is_relevant[static_cast<size_t>(id)] = 1;
  }
  // One leave-one-out pass over the relevant subset: the full structure
  // plus every relevant endogenous fact's F-variant.
  Database work = db;
  Combinatorics comb;
  MaxSolver solver(a.query, *a.tau, relation, anchors, &comb);
  FactSubset relevant;
  relevant.db = &work;
  relevant.facts = split.relevant.facts;
  MaxLOO loo =
      solver.SolveLeaveOneOut(a.query, relevant, solver.EmptyHead(), &work);
  MaxStructure full =
      solver.Pad(std::move(loo.full), split.irrelevant_endogenous);
  SHAPCQ_CHECK(full.num_endogenous == n);
  const SumKSeries full_series = SeriesFromMaxStructure(full, anchors);
  // Per-fact assembly shards over contiguous fact chunks (worker-private
  // binomial caches; slot i holds fact endo[i], so the fan-out is
  // deterministic and thread-count invariant).
  const int num_chunks =
      EffectiveThreadCount(options.num_threads, static_cast<int64_t>(n));
  ParallelFor(
      num_chunks,
      [&](int64_t c) {
        const auto [chunk_begin, chunk_end] =
            ChunkBounds(static_cast<int64_t>(endo.size()), num_chunks, c);
        const size_t begin = static_cast<size_t>(chunk_begin);
        const size_t end = static_cast<size_t>(chunk_end);
        Combinatorics worker_comb;
        for (size_t i = begin; i < end; ++i) {
          const FactId f = endo[i];
          if (!is_relevant[static_cast<size_t>(f)]) {
            scores[i] = {f, Rational()};
            continue;
          }
          auto it = loo.minus.find(f);
          SHAPCQ_CHECK(it != loo.minus.end());
          MaxStructure padded;
          padded.num_endogenous =
              it->second.num_endogenous + split.irrelevant_endogenous;
          padded.by_anchor.reserve(it->second.by_anchor.size());
          for (const std::vector<BigInt>& row : it->second.by_anchor) {
            padded.by_anchor.push_back(
                split.irrelevant_endogenous == 0
                    ? row
                    : PadCounts(row, split.irrelevant_endogenous,
                                &worker_comb));
          }
          SHAPCQ_CHECK(padded.num_endogenous == n - 1);
          SumKSeries series_f = SeriesFromMaxStructure(padded, anchors);
          SumKSeries series_g =
              RemovedSeriesFromIdentity(full_series, series_f);
          scores[i] = {f, ScoreFromSumK(series_f, series_g, options.score)};
        }
      },
      num_chunks);
  return scores;
}

}  // namespace

StatusOr<SumKSeries> MinMaxSumK(const AggregateQuery& a, const Database& db,
                                const SolverOptions& /*options*/) {
  if (a.alpha.kind() != AggKind::kMin && a.alpha.kind() != AggKind::kMax) {
    return UnsupportedError("MinMaxSumK handles Min and Max only");
  }
  if (a.query.HasSelfJoin()) {
    return UnsupportedError("Min/Max requires a self-join-free CQ");
  }
  if (!IsAllHierarchical(a.query)) {
    return UnsupportedError("Min/Max requires an all-hierarchical CQ: " +
                            a.query.ToString());
  }
  if (a.alpha.kind() == AggKind::kMax) return MaxSumK(a, db);
  // Min(B) = −Max(−B), and both send ∅ to 0.
  AggregateQuery negated{
      a.query,
      MakeComposedTau([](const Rational& v) { return -v; }, a.tau, "negate"),
      AggregateFunction::Max()};
  StatusOr<SumKSeries> series = MaxSumK(negated, db);
  if (!series.ok()) return series.status();
  for (Rational& value : *series) value = -value;
  return series;
}

StatusOr<std::vector<std::pair<FactId, Rational>>> MinMaxScoreAll(
    const AggregateQuery& a, const Database& db,
    const SolverOptions& options) {
  // The gates of MinMaxSumK, in the same order, so the batch fails exactly
  // where the per-fact path would.
  if (a.alpha.kind() != AggKind::kMin && a.alpha.kind() != AggKind::kMax) {
    return UnsupportedError("MinMaxSumK handles Min and Max only");
  }
  if (a.query.HasSelfJoin()) {
    return UnsupportedError("Min/Max requires a self-join-free CQ");
  }
  if (!IsAllHierarchical(a.query)) {
    return UnsupportedError("Min/Max requires an all-hierarchical CQ: " +
                            a.query.ToString());
  }
  if (a.alpha.kind() == AggKind::kMax) return MaxScoreAll(a, db, options);
  // Min(B) = −Max(−B): the negation commutes with the (linear) score
  // combination, so negating each fact's Max score under −τ reproduces the
  // per-fact Min values exactly.
  AggregateQuery negated{
      a.query,
      MakeComposedTau([](const Rational& v) { return -v; }, a.tau, "negate"),
      AggregateFunction::Max()};
  StatusOr<std::vector<std::pair<FactId, Rational>>> scores =
      MaxScoreAll(negated, db, options);
  if (!scores.ok()) return scores.status();
  for (auto& [fact, score] : *scores) score = -score;
  return scores;
}

void RegisterMinMaxEngine(EngineRegistry& registry) {
  EngineProvider provider;
  provider.name = "min-max/all-hierarchical-dp";
  provider.priority = 10;
  provider.applies = [](const AggregateQuery& a) {
    return a.alpha.kind() == AggKind::kMin || a.alpha.kind() == AggKind::kMax;
  };
  provider.sum_k = MinMaxSumK;
  provider.score_all = MinMaxScoreAll;
  registry.Register(std::move(provider));
}

}  // namespace shapcq
