// Localization-sensitive tractable special cases (Proposition 7.3).
//
// Avg ∘ τ²_ReLU ∘ Q_xyyz and Med ∘ τ²_>0 ∘ Q_xyyz are FP^#P-hard when the
// value function reads the *first* head component (localized on R), but
// polynomial when it reads the *last* one (localized on T): the query then
// factors as Q = Q1 × Q2 with τ localized in Q1, and because Avg and Median
// are invariant under uniform bag replication,
//
//   A(E) = (α ∘ τ ∘ Q1)(E ∩ D1) · [ Q2(E ∩ D2) ≠ ∅ ],
//
// so sum_k(A, D) = Σ_ℓ sum_ℓ(α ∘ τ ∘ Q1, D1) · c_{k−ℓ}(Q2_bool, D2).
// Q1 is solved by the q-hierarchical Avg/Qnt engine; the gate needs only
// Boolean satisfaction counts of Q2 (∃-hierarchy of Q2 suffices) — which is
// why the full query may lie OUTSIDE the q-hierarchical frontier and still
// be tractable for this τ.
//
// (The third case of Proposition 7.3, Dup ∘ τ²_id ∘ Q^full_xyy, is already
// handled by HasDuplicatesSumK; see has_duplicates.h.)

#ifndef SHAPCQ_SHAPLEY_SPECIAL_CASES_H_
#define SHAPCQ_SHAPLEY_SPECIAL_CASES_H_

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

// sum_k series for A = α ∘ τ ∘ (Q1 × Q2) with α ∈ {Avg, Median}, τ
// localized inside a connected component Q1 that is q-hierarchical on its
// own, and Q2_bool hierarchical. Returns UNSUPPORTED when the shape does
// not apply (callers fall back to other engines).
StatusOr<SumKSeries> GatedProductSumK(const AggregateQuery& a,
                                      const Database& db,
                                      const SolverOptions& options = {});

class EngineRegistry;

// Registers the "gated-product/prop-7.3" provider (after the primary
// Avg/Qnt engine in preference order).
void RegisterGatedProductEngine(EngineRegistry& registry);

}  // namespace shapcq

#endif  // SHAPCQ_SHAPLEY_SPECIAL_CASES_H_
