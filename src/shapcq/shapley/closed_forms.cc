#include "shapcq/shapley/closed_forms.h"

#include <map>
#include <set>

#include "shapcq/agg/value_function.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

namespace {

Status CheckShape(const AggregateQuery& a, const Database& db) {
  if (!ClosedFormApplies(a, db)) {
    return UnsupportedError(
        "closed form requires Q(x...) <- R(x...) with all facts endogenous");
  }
  return Status::Ok();
}

// τ-values of all live facts, dense by fact id (tombstoned ids keep a
// default Rational that no live-guarded loop reads).
std::vector<Rational> FactValues(const AggregateQuery& a, const Database& db) {
  std::vector<Rational> values(static_cast<size_t>(db.num_facts()));
  for (FactId id = 0; id < db.num_facts(); ++id) {
    if (!db.live(id)) continue;
    values[static_cast<size_t>(id)] = a.tau->Evaluate(db.fact(id).args);
  }
  return values;
}

}  // namespace

bool ClosedFormQueryShape(const ConjunctiveQuery& q) {
  if (q.atoms().size() != 1) return false;
  const Atom& atom = q.atoms()[0];
  // All terms are distinct variables and the head repeats them verbatim.
  std::set<std::string> seen;
  std::vector<std::string> atom_vars;
  for (const Term& term : atom.terms) {
    if (!term.is_variable()) return false;
    if (!seen.insert(term.variable()).second) return false;
    atom_vars.push_back(term.variable());
  }
  return q.head() == atom_vars;
}

bool ClosedFormApplies(const AggregateQuery& a, const Database& db) {
  const ConjunctiveQuery& q = a.query;
  if (!ClosedFormQueryShape(q)) return false;
  // All live facts endogenous and of that relation.
  if (db.num_endogenous() != db.num_live()) return false;
  for (FactId id = 0; id < db.num_facts(); ++id) {
    if (!db.live(id)) continue;
    if (db.fact(id).relation != q.atoms()[0].relation) return false;
  }
  return db.num_live() > 0;
}

StatusOr<Rational> ClosedFormCountDistinct(const AggregateQuery& a,
                                           const Database& db, FactId fact) {
  Status shape = CheckShape(a, db);
  if (!shape.ok()) return shape;
  std::vector<Rational> values = FactValues(a, db);
  const Rational& mine = values[static_cast<size_t>(fact)];
  int64_t same = 0;
  for (FactId id = 0; id < db.num_facts(); ++id) {
    if (db.live(id) && values[static_cast<size_t>(id)] == mine) ++same;
  }
  return Rational(BigInt(1), BigInt(same));
}

StatusOr<Rational> ClosedFormMax(const AggregateQuery& a, const Database& db,
                                 FactId fact) {
  Status shape = CheckShape(a, db);
  if (!shape.ok()) return shape;
  std::vector<Rational> values = FactValues(a, db);
  const Rational& mine = values[static_cast<size_t>(fact)];
  int64_t n = db.num_live();
  Combinatorics comb;
  // Distinct values below τ(t) with their cumulative fact counts.
  std::map<Rational, int64_t> multiplicity;
  for (FactId id = 0; id < db.num_facts(); ++id) {
    if (db.live(id)) ++multiplicity[values[static_cast<size_t>(id)]];
  }
  Rational result = mine / Rational(n);
  int64_t below = 0;  // #facts with τ < a, maintained over ascending a
  for (const auto& [value, count] : multiplicity) {
    if (value >= mine) break;
    int64_t le = below + count;  // m[≤ a]
    Rational weight;
    for (int64_t k = 1; k <= n - 1; ++k) {
      BigInt delta = comb.Binomial(le, k) - comb.Binomial(below, k);
      if (!delta.is_zero()) {
        weight += comb.ShapleyCoefficient(n, k) * Rational(delta);
      }
    }
    result += (mine - value) * weight;
    below = le;
  }
  return result;
}

StatusOr<Rational> ClosedFormMin(const AggregateQuery& a, const Database& db,
                                 FactId fact) {
  // Min(B) = −Max(−B): negate the value function, reuse Prop. 4.4.
  AggregateQuery negated{
      a.query,
      MakeComposedTau([](const Rational& v) { return -v; }, a.tau, "negate"),
      AggregateFunction::Max()};
  StatusOr<Rational> result = ClosedFormMax(negated, db, fact);
  if (!result.ok()) return result.status();
  return -*result;
}

StatusOr<Rational> ClosedFormAvg(const AggregateQuery& a, const Database& db,
                                 FactId fact) {
  Status shape = CheckShape(a, db);
  if (!shape.ok()) return shape;
  std::vector<Rational> values = FactValues(a, db);
  int64_t n = db.num_live();
  Combinatorics comb;
  Rational harmonic = comb.Harmonic(n);
  Rational result =
      harmonic / Rational(n) * values[static_cast<size_t>(fact)];
  if (n > 1) {
    Rational others;
    for (FactId id = 0; id < db.num_facts(); ++id) {
      if (id != fact && db.live(id)) others += values[static_cast<size_t>(id)];
    }
    result -= (harmonic - Rational(1)) / Rational(n * (n - 1)) * others;
  }
  return result;
}

namespace {

StatusOr<Rational> ClosedFormScoreOne(const AggregateQuery& a,
                                      const Database& db, FactId fact,
                                      const SolverOptions& options) {
  if (options.score != ScoreKind::kShapley) {
    return UnsupportedError("closed forms cover the Shapley value only");
  }
  switch (a.alpha.kind()) {
    case AggKind::kCountDistinct:
      return ClosedFormCountDistinct(a, db, fact);
    case AggKind::kMax:
      return ClosedFormMax(a, db, fact);
    case AggKind::kMin:
      return ClosedFormMin(a, db, fact);
    case AggKind::kAvg:
      return ClosedFormAvg(a, db, fact);
    default:
      return UnsupportedError("no closed form for this aggregate");
  }
}

}  // namespace

void RegisterClosedFormEngines(EngineRegistry& registry) {
  EngineProvider provider;
  provider.name = "closed-form/single-relation";
  provider.priority = 5;  // fast path: tried before the dynamic programs
  provider.applies = [](const AggregateQuery& a) {
    switch (a.alpha.kind()) {
      case AggKind::kCountDistinct:
      case AggKind::kMax:
      case AggKind::kMin:
      case AggKind::kAvg:
        return ClosedFormQueryShape(a.query);
      default:
        return false;
    }
  };
  // No score_all: the session's threaded per-fact sweep over score_one is
  // already the right batch shape for these O(n)-per-fact formulas.
  provider.score_one = ClosedFormScoreOne;
  registry.Register(std::move(provider));
}

}  // namespace shapcq
