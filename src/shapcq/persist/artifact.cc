#include "shapcq/persist/artifact.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "shapcq/agg/value_function.h"
#include "shapcq/query/parser.h"
#include "shapcq/util/rational.h"

namespace shapcq {

namespace {

// ---------------------------------------------------------------------------
// Wire primitives. All integers little-endian; strings length-prefixed.

constexpr char kPlanMagic[8] = {'S', 'H', 'A', 'P', 'C', 'Q', 'P', 'L'};
constexpr char kCircuitMagic[8] = {'S', 'H', 'A', 'P', 'C', 'Q', 'C', 'C'};
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 8;  // magic, version, len, sum

uint64_t Fnv1a64(const char* data, size_t len) {
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI32(std::string* out, int32_t v) { PutU32(out, static_cast<uint32_t>(v)); }
void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

void PutBigInt(std::string* out, const BigInt& v) {
  PutU8(out, static_cast<uint8_t>(v.sign() + 1));  // 0, 1, 2
  PutU32(out, static_cast<uint32_t>(v.num_limbs32()));
  for (int i = 0; i < v.num_limbs32(); ++i) PutU32(out, v.limb32(i));
}

// Cursor over a checksum-verified payload. Every read is bounds-checked:
// running dry marks the cursor failed and poisons all further reads, so a
// decode mismatch surfaces as one clean error instead of misaligned
// garbage.
class Cursor {
 public:
  explicit Cursor(const std::string& data) : data_(data) {}

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

  uint8_t U8() {
    if (!Need(1)) return 0;
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }

  std::string String() {
    uint64_t len = U64();
    if (!Need(len)) return std::string();
    std::string s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  // A count-prefixed vector of i32, with the count validated against the
  // bytes actually remaining (4 bytes per element) before allocating.
  std::vector<int> VecI32() {
    uint64_t count = U64();
    // Guard the 4x multiply against wraparound before the bounds check.
    if (count > data_.size() || !Need(count * 4)) {
      ok_ = false;
      return {};
    }
    std::vector<int> v(count);
    for (uint64_t i = 0; i < count; ++i) v[i] = I32();
    return v;
  }

  BigInt Big() {
    uint8_t sign_byte = U8();
    uint32_t nlimbs = U32();
    if (sign_byte > 2 || !Need(uint64_t{nlimbs} * 4)) {
      ok_ = false;
      return BigInt();
    }
    std::vector<uint64_t> words((nlimbs + 1) / 2, 0);
    for (uint32_t i = 0; i < nlimbs; ++i) {
      words[i / 2] |= uint64_t{U32()} << (32 * (i % 2));
    }
    return BigInt::FromMagnitude64(words.data(), static_cast<int>(words.size()),
                                   static_cast<int>(sign_byte) - 1);
  }

 private:
  bool Need(uint64_t n) {
    if (!ok_ || n > data_.size() - pos_) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::string& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// File framing.

Status WriteArtifactFile(const std::string& dir, const char* name,
                         const char magic[8], const std::string& payload,
                         uint64_t* bytes_written) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return InternalError("cannot create artifact dir " + dir + ": " +
                         std::strerror(errno));
  }
  const std::string path = dir + "/" + name;
  const std::string tmp = path + ".tmp";
  std::string header;
  header.append(magic, 8);
  PutU32(&header, kArtifactFormatVersion);
  PutU64(&header, payload.size());
  PutU64(&header, Fnv1a64(payload.data(), payload.size()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return InternalError("cannot open " + tmp + " for writing");
    out.write(header.data(), static_cast<std::streamsize>(header.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) return InternalError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return InternalError("cannot rename " + tmp + " into place: " +
                         std::strerror(errno));
  }
  if (bytes_written != nullptr) {
    *bytes_written = header.size() + payload.size();
  }
  return Status::Ok();
}

// Reads and frame-checks an artifact file. Missing file: ok() with
// found=false and an empty payload. Anything structurally wrong — short
// header, bad magic, version skew, length or checksum mismatch — is an
// error the caller must treat as "no artifact" (plus a metric).
struct FramedFile {
  bool found = false;
  uint64_t bytes = 0;
  std::string payload;
};

StatusOr<FramedFile> ReadArtifactFile(const std::string& dir, const char* name,
                                      const char magic[8]) {
  const std::string path = dir + "/" + name;
  std::ifstream in(path, std::ios::binary);
  if (!in) return FramedFile{};  // clean first boot
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.size() < kHeaderBytes) {
    return InvalidArgumentError(path + ": truncated header");
  }
  if (std::memcmp(data.data(), magic, 8) != 0) {
    return InvalidArgumentError(path + ": bad magic");
  }
  Cursor header(data);
  for (int i = 0; i < 8; ++i) header.U8();  // skip magic
  uint32_t version = header.U32();
  if (version != kArtifactFormatVersion) {
    return InvalidArgumentError(path + ": format version " +
                                std::to_string(version) + ", expected " +
                                std::to_string(kArtifactFormatVersion));
  }
  uint64_t payload_len = header.U64();
  uint64_t checksum = header.U64();
  if (payload_len != data.size() - kHeaderBytes) {
    return InvalidArgumentError(path + ": payload length mismatch");
  }
  if (Fnv1a64(data.data() + kHeaderBytes, payload_len) != checksum) {
    return InvalidArgumentError(path + ": checksum mismatch");
  }
  FramedFile file;
  file.found = true;
  file.bytes = data.size();
  file.payload = data.substr(kHeaderBytes);
  return file;
}

// ---------------------------------------------------------------------------
// Circuit entry encoding.

void PutCircuitEntry(std::string* out, const CircuitCacheEntry& entry) {
  PutU64(out, CanonicalClauseHash(entry.clauses));
  PutU32(out, static_cast<uint32_t>(entry.num_vars));
  PutU64(out, entry.clauses.size());
  for (const std::vector<int>& clause : entry.clauses) {
    PutU64(out, clause.size());
    for (int lit : clause) PutI32(out, lit);
  }
  const LineageCircuit& c = entry.circuit;
  PutU64(out, c.nodes.size());
  for (const LineageCircuit::Node& n : c.nodes) {
    PutU8(out, static_cast<uint8_t>(n.kind));
    PutI32(out, n.var);
    PutI32(out, n.hi);
    PutI32(out, n.lo);
    PutI32(out, n.vars_offset);
    PutI32(out, n.vars_len);
    PutI32(out, n.children_offset);
    PutI32(out, n.children_len);
  }
  PutU64(out, c.var_pool.size());
  for (int v : c.var_pool) PutI32(out, v);
  PutU64(out, c.child_pool.size());
  for (int v : c.child_pool) PutI32(out, v);
  PutI32(out, c.root);
  PutI32(out, c.num_vars);
  PutI64(out, c.cache_lookups);
  PutI64(out, c.cache_hits);
  PutU64(out, entry.counts.by_size.size());
  for (const BigInt& v : entry.counts.by_size) PutBigInt(out, v);
  PutU64(out, entry.counts.containing.size());
  for (const std::vector<BigInt>& row : entry.counts.containing) {
    PutU64(out, row.size());
    for (const BigInt& v : row) PutBigInt(out, v);
  }
}

// Structural invariants of a decoded circuit: node kinds in range, children
// strictly preceding parents (the topological guarantee the counting passes
// rely on), span bounds inside the pools, variable indices in range, and
// the root in range. Returns false on any violation.
bool ValidateCircuit(const LineageCircuit& c) {
  const int64_t num_nodes = static_cast<int64_t>(c.nodes.size());
  if (num_nodes < 1 || c.num_vars < 0) return false;
  if (c.root < 0 || c.root >= num_nodes) return false;
  const int64_t var_pool_size = static_cast<int64_t>(c.var_pool.size());
  const int64_t child_pool_size = static_cast<int64_t>(c.child_pool.size());
  for (int64_t i = 0; i < num_nodes; ++i) {
    const LineageCircuit::Node& n = c.nodes[static_cast<size_t>(i)];
    if (n.vars_offset < 0 || n.vars_len < 0 ||
        int64_t{n.vars_offset} + n.vars_len > var_pool_size) {
      return false;
    }
    for (int32_t j = 0; j < n.vars_len; ++j) {
      int v = c.var_pool[static_cast<size_t>(n.vars_offset + j)];
      if (v < 0 || v >= c.num_vars) return false;
      if (j > 0 && c.var_pool[static_cast<size_t>(n.vars_offset + j - 1)] >= v) {
        return false;  // variable sets are sorted strictly ascending
      }
    }
    switch (n.kind) {
      case LineageCircuit::NodeKind::kFalse:
      case LineageCircuit::NodeKind::kTrue:
        break;
      case LineageCircuit::NodeKind::kDecision:
        if (n.var < 0 || n.var >= c.num_vars) return false;
        if (n.hi < 0 || n.hi >= i || n.lo < 0 || n.lo >= i) return false;
        break;
      case LineageCircuit::NodeKind::kAnd: {
        if (n.children_offset < 0 || n.children_len < 0 ||
            int64_t{n.children_offset} + n.children_len > child_pool_size) {
          return false;
        }
        for (int32_t j = 0; j < n.children_len; ++j) {
          int child = c.child_pool[static_cast<size_t>(n.children_offset + j)];
          if (child < 0 || child >= i) return false;
        }
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

// Decodes one circuit entry. A cursor failure is a framing bug (reported
// by the caller as a file-level error); a semantic failure returns null
// with the cursor still aligned, so the caller skips just this entry.
std::shared_ptr<CircuitCacheEntry> ReadCircuitEntry(Cursor* in) {
  auto entry = std::make_shared<CircuitCacheEntry>();
  const uint64_t recorded_hash = in->U64();
  entry->num_vars = static_cast<int>(in->U32());
  const uint64_t num_clauses = in->U64();
  entry->clauses.reserve(
      static_cast<size_t>(num_clauses < 4096 ? num_clauses : 4096));
  for (uint64_t i = 0; i < num_clauses && in->ok(); ++i) {
    entry->clauses.push_back(in->VecI32());
  }
  LineageCircuit& c = entry->circuit;
  const uint64_t num_nodes = in->U64();
  c.nodes.reserve(static_cast<size_t>(num_nodes < 65536 ? num_nodes : 65536));
  for (uint64_t i = 0; i < num_nodes && in->ok(); ++i) {
    LineageCircuit::Node n;
    uint8_t kind = in->U8();
    n.var = in->I32();
    n.hi = in->I32();
    n.lo = in->I32();
    n.vars_offset = in->I32();
    n.vars_len = in->I32();
    n.children_offset = in->I32();
    n.children_len = in->I32();
    if (kind > static_cast<uint8_t>(LineageCircuit::NodeKind::kAnd)) {
      return nullptr;
    }
    n.kind = static_cast<LineageCircuit::NodeKind>(kind);
    c.nodes.push_back(n);
  }
  c.var_pool = in->VecI32();
  c.child_pool = in->VecI32();
  c.root = in->I32();
  c.num_vars = in->I32();
  c.cache_lookups = in->I64();
  c.cache_hits = in->I64();
  const uint64_t by_size_len = in->U64();
  for (uint64_t i = 0; i < by_size_len && in->ok(); ++i) {
    entry->counts.by_size.push_back(in->Big());
  }
  const uint64_t containing_len = in->U64();
  for (uint64_t i = 0; i < containing_len && in->ok(); ++i) {
    std::vector<BigInt> row;
    const uint64_t row_len = in->U64();
    for (uint64_t j = 0; j < row_len && in->ok(); ++j) {
      row.push_back(in->Big());
    }
    entry->counts.containing.push_back(std::move(row));
  }
  if (!in->ok()) return nullptr;

  // Semantic validation: the clause set must be its own canonical form
  // with the recorded hash (otherwise lookups could never find it, or a
  // stale writer produced it), the circuit must satisfy its structural
  // invariants over the same variable count, and the stratified counts
  // must have exactly the dimensions the scorer indexes.
  if (entry->num_vars < 0) return nullptr;
  if (CanonicalClauseHash(entry->clauses) != recorded_hash) return nullptr;
  CanonicalClauseForm canonical = CanonicalizeClauses(entry->clauses);
  if (canonical.clauses != entry->clauses ||
      canonical.num_vars != entry->num_vars) {
    return nullptr;
  }
  if (c.num_vars != entry->num_vars) return nullptr;
  if (!ValidateCircuit(c)) return nullptr;
  const size_t expect = static_cast<size_t>(entry->num_vars);
  if (entry->counts.by_size.size() != expect + 1) return nullptr;
  if (entry->counts.containing.size() != expect) return nullptr;
  for (const std::vector<BigInt>& row : entry->counts.containing) {
    if (row.size() != expect + 1) return nullptr;
  }
  return entry;
}

// ---------------------------------------------------------------------------
// Plan entry encoding.

void PutPlanEntry(std::string* out, const AttributionPlan& plan) {
  const AggregateQuery& a = plan.aggregate_query();
  PutString(out, plan.fingerprint());
  PutU8(out, static_cast<uint8_t>(plan.score_kind()));
  PutString(out, a.query.ToString());
  PutU8(out, static_cast<uint8_t>(a.alpha.kind()));
  PutString(out, a.alpha.kind() == AggKind::kQuantile
                     ? a.alpha.quantile().ToString()
                     : std::string());
  PutString(out, a.tau->FingerprintToken());
}

StatusOr<AggregateFunction> AlphaFromWire(uint8_t kind,
                                          const std::string& quantile) {
  switch (static_cast<AggKind>(kind)) {
    case AggKind::kSum:
      return AggregateFunction::Sum();
    case AggKind::kCount:
      return AggregateFunction::Count();
    case AggKind::kCountDistinct:
      return AggregateFunction::CountDistinct();
    case AggKind::kMin:
      return AggregateFunction::Min();
    case AggKind::kMax:
      return AggregateFunction::Max();
    case AggKind::kAvg:
      return AggregateFunction::Avg();
    case AggKind::kQuantile: {
      StatusOr<Rational> q = Rational::FromString(quantile);
      if (!q.ok()) return q.status();
      if (!(Rational(0) < *q) || !(*q < Rational(1))) {
        return InvalidArgumentError("quantile parameter out of range");
      }
      return AggregateFunction::Quantile(std::move(q).value());
    }
    case AggKind::kHasDuplicates:
      return AggregateFunction::HasDuplicates();
  }
  return InvalidArgumentError("unknown aggregate kind " +
                              std::to_string(kind));
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer.

StatusOr<ArtifactWriteStats> ArtifactWriter::WritePlans(
    const std::vector<std::shared_ptr<const AttributionPlan>>& plans) {
  std::string payload;
  uint64_t written = 0;
  std::string entries;
  for (const auto& plan : plans) {
    if (plan == nullptr) continue;
    // A τ without a canonical token cannot be reconstructed from text;
    // such plans are never cache-resident, but guard anyway.
    if (!plan->aggregate_query().tau->HasCanonicalFingerprint()) continue;
    PutPlanEntry(&entries, *plan);
    ++written;
  }
  PutU64(&payload, written);
  payload += entries;
  ArtifactWriteStats stats;
  stats.plans = written;
  Status status =
      WriteArtifactFile(dir_, kPlanArtifactFile, kPlanMagic, payload,
                        &stats.bytes);
  if (!status.ok()) return status;
  return stats;
}

StatusOr<ArtifactWriteStats> ArtifactWriter::WriteCircuits(
    const std::vector<std::shared_ptr<const CircuitCacheEntry>>& entries) {
  std::string payload;
  uint64_t written = 0;
  std::string body;
  for (const auto& entry : entries) {
    if (entry == nullptr) continue;
    PutCircuitEntry(&body, *entry);
    ++written;
  }
  PutU64(&payload, written);
  payload += body;
  ArtifactWriteStats stats;
  stats.circuits = written;
  Status status =
      WriteArtifactFile(dir_, kCircuitArtifactFile, kCircuitMagic, payload,
                        &stats.bytes);
  if (!status.ok()) return status;
  return stats;
}

// ---------------------------------------------------------------------------
// Reader.

StatusOr<ArtifactLoadStats> ArtifactReader::ReadPlans(PlanCache* cache) {
  StatusOr<FramedFile> file =
      ReadArtifactFile(dir_, kPlanArtifactFile, kPlanMagic);
  if (!file.ok()) return file.status();
  ArtifactLoadStats stats;
  stats.found = file->found;
  stats.bytes = file->bytes;
  if (!file->found) return stats;
  Cursor in(file->payload);
  const uint64_t count = in.U64();
  for (uint64_t i = 0; i < count; ++i) {
    std::string fingerprint = in.String();
    uint8_t score_byte = in.U8();
    std::string query_text = in.String();
    uint8_t alpha_kind = in.U8();
    std::string quantile = in.String();
    std::string tau_token = in.String();
    if (!in.ok()) {
      return InvalidArgumentError(std::string(kPlanArtifactFile) +
                                  ": payload exhausted mid-entry");
    }
    if (score_byte > static_cast<uint8_t>(ScoreKind::kBanzhaf)) {
      ++stats.skipped;
      continue;
    }
    StatusOr<ConjunctiveQuery> query = ParseQuery(query_text);
    StatusOr<ValueFunctionPtr> tau = ParseCanonicalTauToken(tau_token);
    StatusOr<AggregateFunction> alpha = AlphaFromWire(alpha_kind, quantile);
    if (!query.ok() || !tau.ok() || !alpha.ok()) {
      ++stats.skipped;
      continue;
    }
    AggregateQuery a{std::move(query).value(), std::move(tau).value(),
                     std::move(alpha).value()};
    const ScoreKind score = static_cast<ScoreKind>(score_byte);
    // The recorded fingerprint must survive the text round trip; a
    // mismatch means the artifact predates a canonicalization or parser
    // change and this plan would be keyed wrong — skip it.
    if (PlanFingerprint(a, score) != fingerprint) {
      ++stats.skipped;
      continue;
    }
    cache->GetOrCompile(a, score);
    ++stats.plans;
  }
  if (!in.AtEnd()) {
    return InvalidArgumentError(std::string(kPlanArtifactFile) +
                                ": trailing bytes after last entry");
  }
  return stats;
}

StatusOr<ArtifactLoadStats> ArtifactReader::ReadCircuits(CircuitCache* cache) {
  StatusOr<FramedFile> file =
      ReadArtifactFile(dir_, kCircuitArtifactFile, kCircuitMagic);
  if (!file.ok()) return file.status();
  ArtifactLoadStats stats;
  stats.found = file->found;
  stats.bytes = file->bytes;
  if (!file->found) return stats;
  Cursor in(file->payload);
  const uint64_t count = in.U64();
  for (uint64_t i = 0; i < count; ++i) {
    std::shared_ptr<CircuitCacheEntry> entry = ReadCircuitEntry(&in);
    if (!in.ok()) {
      return InvalidArgumentError(std::string(kCircuitArtifactFile) +
                                  ": payload exhausted mid-entry");
    }
    if (entry == nullptr) {
      ++stats.skipped;
      continue;
    }
    cache->Insert(std::move(entry));
    ++stats.circuits;
  }
  if (!in.AtEnd()) {
    return InvalidArgumentError(std::string(kCircuitArtifactFile) +
                                ": trailing bytes after last entry");
  }
  return stats;
}

}  // namespace shapcq
