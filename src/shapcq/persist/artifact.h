// Persistent compiled-artifact store: versioned, checksummed snapshots of
// the plan cache (shapley/plan.h) and the cross-tenant circuit cache
// (lineage/circuit_cache.h), so a restarted server warm-starts instead of
// recompiling its working set from scratch.
//
// Layout: two independent files inside an artifact directory,
//
//   <dir>/plans.shapcq      — plan-cache snapshot
//   <dir>/circuits.shapcq   — circuit-cache snapshot
//
// each with an 8-byte magic, a u32 format version (kArtifactFormatVersion),
// a u64 payload length, and a u64 FNV-1a checksum of the payload, followed
// by the payload (all integers little-endian). Writes go through a
// temporary file renamed into place, so a crash mid-snapshot leaves the
// previous artifact intact, never a torn one.
//
// Loading is strictly fail-safe: a missing file is a clean first boot
// (zero loads, no error); a wrong magic, wrong version, short file, or
// checksum mismatch fails with a Status the caller counts and ignores —
// the server degrades to cold compilation, never crashes, never serves a
// wrong answer. Per-entry validation continues after the checksum:
//
//   * plans record their fingerprint plus enough to rebuild the aggregate
//     query (query text, α kind + quantile, canonical τ token); the loader
//     re-parses, recompiles through PlanCache::GetOrCompile, and *verifies
//     the recomputed fingerprint equals the recorded one* — a mismatch
//     (renamed relation, changed canonicalization, stale artifact) skips
//     the entry;
//   * circuits record their canonical clause set, the compiled arena
//     circuit, and the stratified model counts; the loader checks every
//     structural invariant (node kinds, child/topological order, pool
//     spans, count dimensions) and that the clauses are a fixpoint of
//     CanonicalizeClauses with the recorded hash — anything off skips the
//     entry.
//
// Scores computed from loaded entries are bitwise-identical to cold
// compilation: the persisted counts are exact BigInts and semantic
// invariants of the formula (see circuit_cache.h); tests/artifact_test.cc
// enforces the round trip differentially.

#ifndef SHAPCQ_PERSIST_ARTIFACT_H_
#define SHAPCQ_PERSIST_ARTIFACT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "shapcq/lineage/circuit_cache.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Bumped on any incompatible change to the payload encodings below; a
// reader rejects files written under a different version outright.
inline constexpr uint32_t kArtifactFormatVersion = 1;

// File names inside the artifact directory.
inline constexpr const char* kPlanArtifactFile = "plans.shapcq";
inline constexpr const char* kCircuitArtifactFile = "circuits.shapcq";

struct ArtifactWriteStats {
  uint64_t plans = 0;     // plan entries written
  uint64_t circuits = 0;  // circuit entries written
  uint64_t bytes = 0;     // file bytes written (header + payload)
};

struct ArtifactLoadStats {
  bool found = false;     // the artifact file existed
  uint64_t plans = 0;     // plan entries loaded into the cache
  uint64_t circuits = 0;  // circuit entries loaded into the cache
  uint64_t skipped = 0;   // entries rejected by per-entry validation
  uint64_t bytes = 0;     // file bytes read
};

// Serializes cache snapshots into an artifact directory (created if
// absent). Each Write* replaces the corresponding file atomically.
class ArtifactWriter {
 public:
  explicit ArtifactWriter(std::string dir) : dir_(std::move(dir)) {}

  // Writes <dir>/plans.shapcq from a PlanCache::Snapshot(). Plans whose τ
  // has no canonical fingerprint cannot be rebuilt from text and are
  // not written (they can never be cache-resident anyway).
  StatusOr<ArtifactWriteStats> WritePlans(
      const std::vector<std::shared_ptr<const AttributionPlan>>& plans);

  // Writes <dir>/circuits.shapcq from a CircuitCache::Snapshot().
  StatusOr<ArtifactWriteStats> WriteCircuits(
      const std::vector<std::shared_ptr<const CircuitCacheEntry>>& entries);

 private:
  std::string dir_;
};

// Loads artifact files back into caches. See the fail-safe contract above:
// corruption is reported, never propagated into answers.
class ArtifactReader {
 public:
  explicit ArtifactReader(std::string dir) : dir_(std::move(dir)) {}

  // Loads <dir>/plans.shapcq into `cache` (recompiling through
  // GetOrCompile; fingerprint-verified). Missing file: ok, found=false.
  StatusOr<ArtifactLoadStats> ReadPlans(PlanCache* cache);

  // Loads <dir>/circuits.shapcq into `cache` (structurally validated).
  // Missing file: ok, found=false.
  StatusOr<ArtifactLoadStats> ReadCircuits(CircuitCache* cache);

 private:
  std::string dir_;
};

}  // namespace shapcq

#endif  // SHAPCQ_PERSIST_ARTIFACT_H_
