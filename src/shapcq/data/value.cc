#include "shapcq/data/value.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "shapcq/util/check.h"

namespace shapcq {

int64_t Value::AsInt() const {
  SHAPCQ_CHECK(kind() == Kind::kInt);
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  SHAPCQ_CHECK(kind() == Kind::kDouble);
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  SHAPCQ_CHECK(kind() == Kind::kString);
  return std::get<std::string>(data_);
}

Rational Value::AsRational() const {
  switch (kind()) {
    case Kind::kInt:
      return Rational(std::get<int64_t>(data_));
    case Kind::kDouble:
      return Rational::FromDouble(std::get<double>(data_));
    case Kind::kString:
      SHAPCQ_CHECK(false && "AsRational on a string value");
  }
  SHAPCQ_UNREACHABLE();
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kInt:
      return std::to_string(std::get<int64_t>(data_));
    case Kind::kDouble: {
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%.17g",
                    std::get<double>(data_));
      return buffer;
    }
    case Kind::kString:
      return "'" + std::get<std::string>(data_) + "'";
  }
  SHAPCQ_UNREACHABLE();
}

int Value::Compare(const Value& lhs, const Value& rhs) {
  bool lhs_numeric = lhs.is_numeric();
  bool rhs_numeric = rhs.is_numeric();
  if (lhs_numeric != rhs_numeric) return lhs_numeric ? -1 : 1;
  if (!lhs_numeric) {
    const std::string& a = lhs.AsString();
    const std::string& b = rhs.AsString();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  // Numeric comparison. int-vs-int stays exact; mixed goes through double,
  // which is exact for the magnitudes used in this library's databases.
  if (lhs.kind() == Kind::kInt && rhs.kind() == Kind::kInt) {
    int64_t a = std::get<int64_t>(lhs.data_);
    int64_t b = std::get<int64_t>(rhs.data_);
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  double a = lhs.kind() == Kind::kInt
                 ? static_cast<double>(std::get<int64_t>(lhs.data_))
                 : std::get<double>(lhs.data_);
  double b = rhs.kind() == Kind::kInt
                 ? static_cast<double>(std::get<int64_t>(rhs.data_))
                 : std::get<double>(rhs.data_);
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

size_t Value::Hash() const {
  switch (kind()) {
    case Kind::kInt:
      return std::hash<int64_t>{}(std::get<int64_t>(data_));
    case Kind::kDouble: {
      double d = std::get<double>(data_);
      // Hash doubles that hold integral values like the equal int, so that
      // Hash is compatible with Compare-equality across kinds.
      if (d >= -9.2e18 && d <= 9.2e18 && d == std::floor(d)) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case Kind::kString:
      return std::hash<std::string>{}(std::get<std::string>(data_)) ^
             0x9e3779b97f4a7c15ull;
  }
  SHAPCQ_UNREACHABLE();
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

std::string TupleToString(const Tuple& tuple) {
  std::string out = "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuple[i].ToString();
  }
  out += ")";
  return out;
}

size_t TupleHash::operator()(const Tuple& tuple) const {
  size_t seed = 0x12345678u + tuple.size();
  for (const Value& value : tuple) {
    seed ^= value.Hash() + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  }
  return seed;
}

}  // namespace shapcq
