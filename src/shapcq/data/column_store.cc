#include "shapcq/data/column_store.h"

#include <algorithm>

#include "shapcq/util/check.h"

// Instruction-set detection for the SIMD intersection kernel. SSE2 is part
// of the x86-64 baseline and NEON of the AArch64 baseline, so neither needs
// -march flags; anything else falls back to the scalar galloping path.
#if defined(SHAPCQ_SIMD)
#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define SHAPCQ_SIMD_SSE2 1
#include <emmintrin.h>
// AVX2 widens the block kernel to 8 lanes. It needs no -march flag: the
// kernel is compiled with a per-function target attribute and selected at
// runtime via cpuid, so the same binary runs on pre-AVX2 machines (GCC and
// Clang only; other compilers keep the SSE2 kernel).
#if defined(__GNUC__) || defined(__clang__)
#define SHAPCQ_SIMD_AVX2_DISPATCH 1
#include <immintrin.h>
#endif
#elif defined(__aarch64__) || defined(__ARM_NEON)
#define SHAPCQ_SIMD_NEON 1
#include <arm_neon.h>
#endif
#endif

namespace shapcq {

namespace {
const std::vector<FactId> kEmptyPostings;
}  // namespace

RelationId ColumnStore::AddRelation(int arity) {
  SHAPCQ_CHECK(arity >= 0);
  Relation relation;
  relation.arity = arity;
  relation.columns.resize(static_cast<size_t>(arity));
  relation.postings.resize(static_cast<size_t>(arity));
  relations_.push_back(std::move(relation));
  return static_cast<RelationId>(relations_.size() - 1);
}

int ColumnStore::arity(RelationId relation) const {
  SHAPCQ_CHECK(relation >= 0 && relation < num_relations());
  return relations_[static_cast<size_t>(relation)].arity;
}

void ColumnStore::AddFact(RelationId relation, FactId fact,
                          const ValueId* args, int arity) {
  SHAPCQ_CHECK(relation >= 0 && relation < num_relations());
  Relation& rel = relations_[static_cast<size_t>(relation)];
  SHAPCQ_CHECK(arity == rel.arity);
  SHAPCQ_CHECK(rel.facts.empty() || rel.facts.back() < fact);
  rel.facts.push_back(fact);
  for (int position = 0; position < arity; ++position) {
    const ValueId value = args[position];
    rel.columns[static_cast<size_t>(position)].push_back(value);
    auto& by_value = rel.postings[static_cast<size_t>(position)];
    if (by_value.size() <= value) by_value.resize(value + 1);
    by_value[value].push_back(fact);
  }
}

const std::vector<FactId>& ColumnStore::Facts(RelationId relation) const {
  SHAPCQ_CHECK(relation >= 0 && relation < num_relations());
  return relations_[static_cast<size_t>(relation)].facts;
}

const std::vector<FactId>& ColumnStore::Postings(RelationId relation,
                                                 int position,
                                                 ValueId value) const {
  SHAPCQ_CHECK(relation >= 0 && relation < num_relations());
  const Relation& rel = relations_[static_cast<size_t>(relation)];
  SHAPCQ_CHECK(position >= 0 && position < rel.arity);
  const auto& by_value = rel.postings[static_cast<size_t>(position)];
  if (value >= by_value.size()) return kEmptyPostings;
  return by_value[value];
}

const std::vector<ValueId>& ColumnStore::Column(RelationId relation,
                                                int position) const {
  SHAPCQ_CHECK(relation >= 0 && relation < num_relations());
  const Relation& rel = relations_[static_cast<size_t>(relation)];
  SHAPCQ_CHECK(position >= 0 && position < rel.arity);
  return rel.columns[static_cast<size_t>(position)];
}

int ColumnStore::num_delta_rows(RelationId relation) const {
  SHAPCQ_CHECK(relation >= 0 && relation < num_relations());
  const Relation& rel = relations_[static_cast<size_t>(relation)];
  return static_cast<int>(rel.facts.size() - rel.sealed_rows);
}

void ColumnStore::Seal() {
  for (Relation& rel : relations_) {
    rel.sealed_rows = rel.facts.size();
  }
}

namespace {

bool IsDead(const std::vector<char>& dead, FactId fact) {
  return static_cast<size_t>(fact) < dead.size() &&
         dead[static_cast<size_t>(fact)] != 0;
}

}  // namespace

void ColumnStore::Compact(const std::vector<char>& dead,
                          std::vector<int32_t>* fact_row) {
  for (Relation& rel : relations_) {
    size_t write = 0;
    for (size_t row = 0; row < rel.facts.size(); ++row) {
      const FactId fact = rel.facts[row];
      if (IsDead(dead, fact)) continue;
      rel.facts[write] = fact;
      for (int position = 0; position < rel.arity; ++position) {
        auto& column = rel.columns[static_cast<size_t>(position)];
        column[write] = column[row];
      }
      if (fact_row != nullptr) {
        (*fact_row)[static_cast<size_t>(fact)] =
            static_cast<int32_t>(write);
      }
      ++write;
    }
    rel.facts.resize(write);
    for (int position = 0; position < rel.arity; ++position) {
      rel.columns[static_cast<size_t>(position)].resize(write);
    }
    for (auto& by_value : rel.postings) {
      for (std::vector<FactId>& list : by_value) {
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&dead](FactId fact) {
                                    return IsDead(dead, fact);
                                  }),
                   list.end());
      }
    }
    rel.sealed_rows = rel.facts.size();
  }
  if (fact_row != nullptr) {
    for (size_t fact = 0; fact < dead.size(); ++fact) {
      if (dead[fact] != 0) (*fact_row)[fact] = -1;
    }
  }
}

namespace {

// First index in [lo, list.size()) with list[index] >= target, found by
// galloping from `lo` then binary-searching the bracketed range.
size_t GallopTo(const std::vector<FactId>& list, size_t lo, FactId target) {
  size_t stride = 1;
  size_t hi = lo;
  while (hi < list.size() && list[hi] < target) {
    lo = hi + 1;
    hi += stride;
    stride *= 2;
  }
  hi = std::min(hi, list.size());
  return static_cast<size_t>(
      std::lower_bound(list.begin() + static_cast<long>(lo),
                       list.begin() + static_cast<long>(hi), target) -
      list.begin());
}

// Pairwise a ∩ b by galloping, a the smaller (driving) list.
std::vector<FactId> IntersectPairGallop(const std::vector<FactId>& a,
                                        const std::vector<FactId>& b) {
  std::vector<FactId> out;
  out.reserve(a.size());
  size_t cursor = 0;
  for (FactId candidate : a) {
    const size_t at = GallopTo(b, cursor, candidate);
    cursor = at;
    if (at == b.size()) break;
    if (b[at] == candidate) out.push_back(candidate);
  }
  return out;
}

#if defined(SHAPCQ_SIMD_SSE2) || defined(SHAPCQ_SIMD_NEON)

// Length skew beyond which galloping beats the block compare even with
// SIMD: the block kernel is linear in |b|, galloping is |a|·log|b|.
constexpr size_t kSimdSkewLimit = 32;

// Pairwise a ∩ b for comparable lengths: broadcast the next candidate of
// `a` against a block of four elements of `b`. The inner step is
// branch-light — one compare + movemask per block — and both streams
// advance monotonically. Correctness of the block advance: ib += 4 only
// when b[ib+3] < x, so a candidate x present in b at position >= ib is
// never skipped; when b[ib+3] >= x and x is not in the block, x is not in
// b at all (b ascending), so the candidate advances instead.
std::vector<FactId> IntersectPairSimd(const std::vector<FactId>& a,
                                      const std::vector<FactId>& b) {
  static_assert(sizeof(FactId) == 4, "block kernel assumes 32-bit FactId");
  std::vector<FactId> out;
  out.reserve(std::min(a.size(), b.size()));
  size_t ia = 0;
  size_t ib = 0;
  const size_t na = a.size();
  const size_t nb = b.size();
  while (ia < na && ib + 4 <= nb) {
    const FactId x = a[ia];
#if defined(SHAPCQ_SIMD_SSE2)
    const __m128i xv = _mm_set1_epi32(x);
    const __m128i bv =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.data() + ib));
    const int mask = _mm_movemask_epi8(_mm_cmpeq_epi32(xv, bv));
    const bool hit = mask != 0;
#else  // SHAPCQ_SIMD_NEON
    const int32x4_t xv = vdupq_n_s32(x);
    const int32x4_t bv = vld1q_s32(b.data() + ib);
    const bool hit = vmaxvq_u32(vceqq_s32(xv, bv)) != 0;
#endif
    if (hit) {
      out.push_back(x);
      // Matches are rare relative to block steps; a short scalar scan
      // finds the lane and advances past it.
      while (b[ib] != x) ++ib;
      ++ib;
      ++ia;
    } else if (b[ib + 3] < x) {
      ib += 4;
    } else {
      ++ia;
    }
  }
  // Scalar merge tail for the last < 4 elements of b.
  while (ia < na && ib < nb) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      out.push_back(a[ia]);
      ++ia;
      ++ib;
    }
  }
  return out;
}

#if defined(SHAPCQ_SIMD_AVX2_DISPATCH)

// 8-lane widening of IntersectPairSimd. Same advance argument with block
// width 8: ib += 8 only when b[ib+7] < x, so no candidate present at a
// position >= ib is ever skipped.
__attribute__((target("avx2"))) std::vector<FactId> IntersectPairAvx2(
    const std::vector<FactId>& a, const std::vector<FactId>& b) {
  static_assert(sizeof(FactId) == 4, "block kernel assumes 32-bit FactId");
  std::vector<FactId> out;
  out.reserve(std::min(a.size(), b.size()));
  size_t ia = 0;
  size_t ib = 0;
  const size_t na = a.size();
  const size_t nb = b.size();
  while (ia < na && ib + 8 <= nb) {
    const FactId x = a[ia];
    const __m256i xv = _mm256_set1_epi32(x);
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b.data() + ib));
    const int mask = _mm256_movemask_epi8(_mm256_cmpeq_epi32(xv, bv));
    if (mask != 0) {
      out.push_back(x);
      while (b[ib] != x) ++ib;
      ++ib;
      ++ia;
    } else if (b[ib + 7] < x) {
      ib += 8;
    } else {
      ++ia;
    }
  }
  // Scalar merge tail for the last < 8 elements of b.
  while (ia < na && ib < nb) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      out.push_back(a[ia]);
      ++ia;
      ++ib;
    }
  }
  return out;
}

#endif  // SHAPCQ_SIMD_AVX2_DISPATCH

// The block-kernel entry point: the widest kernel this machine supports.
// The cpuid probe is cached in a function-local static, so the per-call
// cost is one predictable branch.
std::vector<FactId> IntersectPairBlock(const std::vector<FactId>& a,
                                       const std::vector<FactId>& b) {
#if defined(SHAPCQ_SIMD_AVX2_DISPATCH)
  static const bool use_avx2 = __builtin_cpu_supports("avx2");
  if (use_avx2) return IntersectPairAvx2(a, b);
#endif
  return IntersectPairSimd(a, b);
}

#endif  // SHAPCQ_SIMD_SSE2 || SHAPCQ_SIMD_NEON

}  // namespace

std::vector<FactId> IntersectPostingsScalar(
    std::vector<const std::vector<FactId>*> lists) {
  SHAPCQ_CHECK(!lists.empty());
  // Smallest list first: it drives the galloping probes into the others.
  std::sort(lists.begin(), lists.end(),
            [](const std::vector<FactId>* a, const std::vector<FactId>* b) {
              return a->size() < b->size();
            });
  std::vector<FactId> result;
  const std::vector<FactId>& smallest = *lists.front();
  result.reserve(smallest.size());
  std::vector<size_t> cursors(lists.size(), 0);
  for (FactId candidate : smallest) {
    bool in_all = true;
    for (size_t i = 1; i < lists.size(); ++i) {
      const std::vector<FactId>& list = *lists[i];
      size_t at = GallopTo(list, cursors[i], candidate);
      cursors[i] = at;
      if (at == list.size() || list[at] != candidate) {
        in_all = false;
        break;
      }
    }
    if (in_all) result.push_back(candidate);
  }
  return result;
}

bool SimdIntersectionAvailable() {
#if defined(SHAPCQ_SIMD_SSE2) || defined(SHAPCQ_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

const char* SimdIntersectionKernelName() {
#if defined(SHAPCQ_SIMD_AVX2_DISPATCH)
  if (__builtin_cpu_supports("avx2")) return "avx2";
  return "sse2";
#elif defined(SHAPCQ_SIMD_SSE2)
  return "sse2";
#elif defined(SHAPCQ_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

std::vector<FactId> IntersectPostingsLive(
    std::vector<const std::vector<FactId>*> lists,
    const std::vector<char>& dead) {
  std::vector<FactId> result = IntersectPostings(std::move(lists));
  if (!dead.empty()) {
    result.erase(std::remove_if(result.begin(), result.end(),
                                [&dead](FactId fact) {
                                  return IsDead(dead, fact);
                                }),
                 result.end());
  }
  return result;
}

std::vector<FactId> IntersectPostings(
    std::vector<const std::vector<FactId>*> lists) {
#if defined(SHAPCQ_SIMD_SSE2) || defined(SHAPCQ_SIMD_NEON)
  SHAPCQ_CHECK(!lists.empty());
  if (lists.size() == 1) return *lists.front();
  // Smallest-first pairwise reduction; intersection is associative and
  // each kernel produces the ascending set intersection, so the result is
  // identical to the multiway scalar path.
  std::sort(lists.begin(), lists.end(),
            [](const std::vector<FactId>* a, const std::vector<FactId>* b) {
              return a->size() < b->size();
            });
  std::vector<FactId> current = [&] {
    const std::vector<FactId>& a = *lists[0];
    const std::vector<FactId>& b = *lists[1];
    if (a.empty() || b.size() / std::max<size_t>(a.size(), 1) >=
                         kSimdSkewLimit) {
      return IntersectPairGallop(a, b);
    }
    return IntersectPairBlock(a, b);
  }();
  for (size_t i = 2; i < lists.size() && !current.empty(); ++i) {
    const std::vector<FactId>& next = *lists[i];
    if (next.size() / current.size() >= kSimdSkewLimit) {
      current = IntersectPairGallop(current, next);
    } else {
      current = IntersectPairBlock(current, next);
    }
  }
  return current;
#else
  return IntersectPostingsScalar(std::move(lists));
#endif
}

}  // namespace shapcq
