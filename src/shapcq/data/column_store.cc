#include "shapcq/data/column_store.h"

#include <algorithm>

#include "shapcq/util/check.h"

namespace shapcq {

namespace {
const std::vector<FactId> kEmptyPostings;
}  // namespace

RelationId ColumnStore::AddRelation(int arity) {
  SHAPCQ_CHECK(arity >= 0);
  Relation relation;
  relation.arity = arity;
  relation.columns.resize(static_cast<size_t>(arity));
  relation.postings.resize(static_cast<size_t>(arity));
  relations_.push_back(std::move(relation));
  return static_cast<RelationId>(relations_.size() - 1);
}

int ColumnStore::arity(RelationId relation) const {
  SHAPCQ_CHECK(relation >= 0 && relation < num_relations());
  return relations_[static_cast<size_t>(relation)].arity;
}

void ColumnStore::AddFact(RelationId relation, FactId fact,
                          const ValueId* args, int arity) {
  SHAPCQ_CHECK(relation >= 0 && relation < num_relations());
  Relation& rel = relations_[static_cast<size_t>(relation)];
  SHAPCQ_CHECK(arity == rel.arity);
  SHAPCQ_CHECK(rel.facts.empty() || rel.facts.back() < fact);
  rel.facts.push_back(fact);
  for (int position = 0; position < arity; ++position) {
    const ValueId value = args[position];
    rel.columns[static_cast<size_t>(position)].push_back(value);
    auto& by_value = rel.postings[static_cast<size_t>(position)];
    if (by_value.size() <= value) by_value.resize(value + 1);
    by_value[value].push_back(fact);
  }
}

const std::vector<FactId>& ColumnStore::Facts(RelationId relation) const {
  SHAPCQ_CHECK(relation >= 0 && relation < num_relations());
  return relations_[static_cast<size_t>(relation)].facts;
}

const std::vector<FactId>& ColumnStore::Postings(RelationId relation,
                                                 int position,
                                                 ValueId value) const {
  SHAPCQ_CHECK(relation >= 0 && relation < num_relations());
  const Relation& rel = relations_[static_cast<size_t>(relation)];
  SHAPCQ_CHECK(position >= 0 && position < rel.arity);
  const auto& by_value = rel.postings[static_cast<size_t>(position)];
  if (value >= by_value.size()) return kEmptyPostings;
  return by_value[value];
}

const std::vector<ValueId>& ColumnStore::Column(RelationId relation,
                                                int position) const {
  SHAPCQ_CHECK(relation >= 0 && relation < num_relations());
  const Relation& rel = relations_[static_cast<size_t>(relation)];
  SHAPCQ_CHECK(position >= 0 && position < rel.arity);
  return rel.columns[static_cast<size_t>(position)];
}

namespace {

// First index in [lo, list.size()) with list[index] >= target, found by
// galloping from `lo` then binary-searching the bracketed range.
size_t GallopTo(const std::vector<FactId>& list, size_t lo, FactId target) {
  size_t stride = 1;
  size_t hi = lo;
  while (hi < list.size() && list[hi] < target) {
    lo = hi + 1;
    hi += stride;
    stride *= 2;
  }
  hi = std::min(hi, list.size());
  return static_cast<size_t>(
      std::lower_bound(list.begin() + static_cast<long>(lo),
                       list.begin() + static_cast<long>(hi), target) -
      list.begin());
}

}  // namespace

std::vector<FactId> IntersectPostings(
    std::vector<const std::vector<FactId>*> lists) {
  SHAPCQ_CHECK(!lists.empty());
  // Smallest list first: it drives the galloping probes into the others.
  std::sort(lists.begin(), lists.end(),
            [](const std::vector<FactId>* a, const std::vector<FactId>* b) {
              return a->size() < b->size();
            });
  std::vector<FactId> result;
  const std::vector<FactId>& smallest = *lists.front();
  result.reserve(smallest.size());
  std::vector<size_t> cursors(lists.size(), 0);
  for (FactId candidate : smallest) {
    bool in_all = true;
    for (size_t i = 1; i < lists.size(); ++i) {
      const std::vector<FactId>& list = *lists[i];
      size_t at = GallopTo(list, cursors[i], candidate);
      cursors[i] = at;
      if (at == list.size() || list[at] != candidate) {
        in_all = false;
        break;
      }
    }
    if (in_all) result.push_back(candidate);
  }
  return result;
}

}  // namespace shapcq
