// ColumnStore: position-major interned columns plus dense posting lists.
//
// Each relation's facts are stored as arity many columns of ValueIds (one
// vector per argument position), and every (position, value id) pair keeps
// a posting list: the ascending FactIds whose argument at that position is
// that value. Posting lists are indexed densely by ValueId — a probe is one
// array lookup, no hashing — and replace the former per-(relation,
// position, value) hash indexes of Database.
//
// The store is append-friendly: facts arrive with ascending FactIds, so
// every list (facts, columns, postings) stays sorted by construction and
// const lookups are thread-safe. Deletion is a Database-level tombstone —
// the store keeps the dead ids in place until Compact() rebuilds the lists
// without them (FactIds are preserved; only rows move). Each relation also
// carries a sealed-row watermark: rows at index < sealed_rows are the
// compacted "base" segment, rows past it are the "delta" segment appended
// since the last Compact/Seal. Because ids ascend and are never reused,
// base ++ delta is one sorted vector, so the galloping/SIMD intersection
// kernels consume the merged base+delta view with zero merge cost — the
// watermark only tracks how much unsealed churn has accumulated.

#ifndef SHAPCQ_DATA_COLUMN_STORE_H_
#define SHAPCQ_DATA_COLUMN_STORE_H_

#include <cstdint>
#include <vector>

#include "shapcq/data/value_pool.h"

namespace shapcq {

// Index of a fact within its Database (mirrors database.h; kept here so the
// store does not depend on the full Database header).
using FactId = int32_t;

// Dense id of a relation within its Database, in first-insertion order.
using RelationId = int32_t;
inline constexpr RelationId kNoRelationId = -1;

class ColumnStore {
 public:
  ColumnStore() = default;

  // Registers a relation of the given arity; returns its dense id.
  RelationId AddRelation(int arity);

  int num_relations() const { return static_cast<int>(relations_.size()); }
  int arity(RelationId relation) const;

  // Appends a fact (its args already interned) to `relation`. Fact ids must
  // be appended in ascending order so posting lists stay sorted.
  void AddFact(RelationId relation, FactId fact, const ValueId* args,
               int arity);

  // All facts of `relation`, ascending by FactId.
  const std::vector<FactId>& Facts(RelationId relation) const;

  // Posting list: facts of `relation` whose argument at `position` equals
  // `value`, ascending. O(1) dense lookup; empty when nothing matches.
  const std::vector<FactId>& Postings(RelationId relation, int position,
                                      ValueId value) const;

  // The value id at `position` of the `row`-th fact of `relation` (row
  // indexes Facts(relation)).
  ValueId At(RelationId relation, int position, int row) const {
    return relations_[static_cast<size_t>(relation)]
        .columns[static_cast<size_t>(position)][static_cast<size_t>(row)];
  }

  // Whole column, position-major: one ValueId per row of Facts(relation).
  const std::vector<ValueId>& Column(RelationId relation, int position) const;

  // Rows of `relation` appended since the last Compact/Seal (the delta
  // segment; see the header comment).
  int num_delta_rows(RelationId relation) const;
  // Seals every relation's delta segment: subsequent appends start a new
  // delta. Compact() seals implicitly.
  void Seal();

  // Rebuilds every relation's lists without the facts marked in `dead`
  // (indexed by FactId; ids at or past dead.size() are live). FactIds are
  // preserved — only row indexes change. When `fact_row` is non-null it is
  // updated in place (indexed by FactId) to the surviving facts' new rows;
  // dead facts get row -1. Seals all relations.
  void Compact(const std::vector<char>& dead, std::vector<int32_t>* fact_row);

 private:
  struct Relation {
    int arity = 0;
    std::vector<FactId> facts;                    // row -> FactId
    std::vector<std::vector<ValueId>> columns;    // [position][row]
    // [position][value id] -> ascending FactIds; grown on demand.
    std::vector<std::vector<std::vector<FactId>>> postings;
    // Rows < sealed_rows form the compacted base segment.
    size_t sealed_rows = 0;
  };
  std::vector<Relation> relations_;
};

// Intersects ascending posting lists; `lists` must be non-empty and the
// result is ascending. Dispatches per pair of lists: comparable lengths go
// through a branch-light SIMD block-compare kernel (SSE2 on x86-64, NEON
// on AArch64 — both baseline, no -march flags) when the build enables
// SHAPCQ_SIMD; heavily skewed pairs and non-SIMD builds use galloping
// (exponential) search, which costs O(small · log(large)).
std::vector<FactId> IntersectPostings(
    std::vector<const std::vector<FactId>*> lists);

// The scalar galloping implementation, always compiled: the differential
// oracle for the SIMD kernel and the fallback on every platform.
std::vector<FactId> IntersectPostingsScalar(
    std::vector<const std::vector<FactId>*> lists);

// True when IntersectPostings can take the SIMD path in this build
// (SHAPCQ_SIMD enabled and a supported instruction set detected).
bool SimdIntersectionAvailable();

// The block kernel IntersectPostings actually runs on this machine:
// "avx2" (runtime-dispatched 8-lane), "sse2", "neon", or "scalar".
const char* SimdIntersectionKernelName();

// Tombstone-aware intersection: IntersectPostings, then ids marked in
// `dead` (indexed by FactId; ids at or past dead.size() are live) are
// dropped from the result. Callers pass the Database's tombstone bitset so
// posting lists that still carry deleted ids (before compaction) never
// surface them to the join.
std::vector<FactId> IntersectPostingsLive(
    std::vector<const std::vector<FactId>*> lists,
    const std::vector<char>& dead);

}  // namespace shapcq

#endif  // SHAPCQ_DATA_COLUMN_STORE_H_
