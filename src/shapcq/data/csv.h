// CSV ingestion for example programs.
//
// Minimal CSV dialect: comma-separated, optional double-quoted fields with
// "" escapes, '#' comment lines, blank lines skipped. Unquoted fields that
// parse as integers/doubles become numeric Values; everything else is a
// string Value (quoted fields are always strings).

#ifndef SHAPCQ_DATA_CSV_H_
#define SHAPCQ_DATA_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "shapcq/data/database.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Parses CSV text into tuples. All rows must have the same width.
StatusOr<std::vector<Tuple>> ParseCsv(std::string_view text);

// Parses one CSV line (no newline handling) into a tuple.
StatusOr<Tuple> ParseCsvLine(std::string_view line);

// Loads `text` as facts of `relation` into `db`.
Status LoadCsvIntoDatabase(Database* db, const std::string& relation,
                           std::string_view text, bool endogenous);

// Reads `path` and loads it as facts of `relation`.
Status LoadCsvFileIntoDatabase(Database* db, const std::string& relation,
                               const std::string& path, bool endogenous);

}  // namespace shapcq

#endif  // SHAPCQ_DATA_CSV_H_
