// Relational database with endogenous/exogenous facts.
//
// A Database is a set of facts over named relations. Each fact is marked
// endogenous (a Shapley player) or exogenous (taken for granted), following
// the model of Livshits et al. and the paper. Facts get stable FactIds; the
// Shapley engines identify players by FactId.

#ifndef SHAPCQ_DATA_DATABASE_H_
#define SHAPCQ_DATA_DATABASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "shapcq/data/value.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Index of a fact within its Database; stable across the database's lifetime.
using FactId = int32_t;

struct Fact {
  std::string relation;
  Tuple args;
  bool endogenous = true;

  // Renders "R(1, 'a')".
  std::string ToString() const;
};

// Schema of one relation.
struct RelationSchema {
  std::string name;
  int arity = 0;
};

// A database schema: relation name -> arity.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<RelationSchema> relations);

  // Adds a relation; aborts if the name is already present.
  void AddRelation(const std::string& name, int arity);

  bool HasRelation(const std::string& name) const;
  // Returns the arity; aborts if unknown.
  int Arity(const std::string& name) const;
  const std::vector<RelationSchema>& relations() const { return relations_; }

 private:
  std::vector<RelationSchema> relations_;
  std::unordered_map<std::string, int> arity_by_name_;
};

class Database {
 public:
  Database() = default;

  // Adds a fact; aborts if an identical (relation, args) fact exists or if
  // the arity conflicts with earlier facts of the same relation.
  FactId AddFact(const std::string& relation, Tuple args,
                 bool endogenous = true);
  // Convenience for endogenous/exogenous insertion.
  FactId AddEndogenous(const std::string& relation, Tuple args) {
    return AddFact(relation, std::move(args), /*endogenous=*/true);
  }
  FactId AddExogenous(const std::string& relation, Tuple args) {
    return AddFact(relation, std::move(args), /*endogenous=*/false);
  }

  int num_facts() const { return static_cast<int>(facts_.size()); }
  const Fact& fact(FactId id) const;
  // Looks up a fact id; returns kNotFound if absent.
  StatusOr<FactId> FindFact(const std::string& relation,
                            const Tuple& args) const;
  bool Contains(const std::string& relation, const Tuple& args) const;

  // All fact ids of one relation (empty vector for unknown relations).
  const std::vector<FactId>& FactsOf(const std::string& relation) const;
  // Facts of `relation` whose argument at `position` equals `value`
  // (hash-index probe; empty vector when nothing matches). Ascending ids.
  const std::vector<FactId>& FactsWith(const std::string& relation,
                                       int position, const Value& value) const;
  // All relation names present, in first-insertion order.
  const std::vector<std::string>& relation_names() const {
    return relation_names_;
  }
  // Arity of a relation as observed from its facts; aborts if unknown.
  int Arity(const std::string& relation) const;

  // Endogenous fact ids, ascending.
  std::vector<FactId> EndogenousFacts() const;
  // Exogenous fact ids, ascending.
  std::vector<FactId> ExogenousFacts() const;
  int num_endogenous() const { return num_endogenous_; }

  // Flips the endogenous flag of `id` in place. Unlike WithFactExogenous
  // this is O(1): batched engines use it to realize the paper's derived
  // databases F (fact exogenous) without copying the database per fact.
  void SetEndogenous(FactId id, bool endogenous);

  // Returns a copy where fact `id` is exogenous (the database F of the
  // paper's Section 3.2). Fact ids are preserved.
  Database WithFactExogenous(FactId id) const;
  // Returns a copy without fact `id` (the database G). Fact ids are NOT
  // preserved; use the returned mapping old->new (-1 for the removed fact).
  Database WithoutFact(FactId id, std::vector<FactId>* old_to_new) const;

  // Renders the whole database, one fact per line, endogenous first.
  std::string ToString() const;

 private:
  std::vector<Fact> facts_;
  std::vector<std::string> relation_names_;
  std::unordered_map<std::string, std::vector<FactId>> facts_by_relation_;
  std::unordered_map<std::string, int> arity_by_relation_;
  // Key: relation + '\0' + hash-friendly encoding handled via nested map.
  std::unordered_map<std::string,
                     std::unordered_map<Tuple, FactId, TupleHash>>
      fact_index_;
  // Per relation, per argument position: value -> fact ids (ascending).
  // Maintained eagerly by AddFact so const lookups stay thread-safe.
  std::unordered_map<
      std::string,
      std::vector<std::unordered_map<Value, std::vector<FactId>, ValueHash>>>
      value_index_;
  int num_endogenous_ = 0;
};

}  // namespace shapcq

#endif  // SHAPCQ_DATA_DATABASE_H_
