// Relational database with endogenous/exogenous facts.
//
// A Database is a set of facts over named relations. Each fact is marked
// endogenous (a Shapley player) or exogenous (taken for granted), following
// the model of Livshits et al. and the paper. Facts get stable FactIds; the
// Shapley engines identify players by FactId.
//
// Storage is interned + columnar: every constant is interned once into a
// ValuePool (dense uint32_t ValueIds), relations get dense RelationIds, and
// each relation's facts live in a ColumnStore as position-major ValueId
// columns with dense posting lists per (position, value). The hot join and
// DP paths work entirely over ids; the Value-based accessors (FactsWith by
// Value, fact().args) remain as thin shims over the id layer.

#ifndef SHAPCQ_DATA_DATABASE_H_
#define SHAPCQ_DATA_DATABASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "shapcq/data/column_store.h"
#include "shapcq/data/value.h"
#include "shapcq/data/value_pool.h"
#include "shapcq/util/status.h"

namespace shapcq {

struct Fact {
  std::string relation;
  Tuple args;
  bool endogenous = true;

  // Renders "R(1, 'a')".
  std::string ToString() const;
};

// Schema of one relation.
struct RelationSchema {
  std::string name;
  int arity = 0;
};

// A database schema: relation name -> arity.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<RelationSchema> relations);

  // Adds a relation; aborts if the name is already present.
  void AddRelation(const std::string& name, int arity);

  bool HasRelation(const std::string& name) const;
  // Returns the arity; aborts if unknown.
  int Arity(const std::string& name) const;
  const std::vector<RelationSchema>& relations() const { return relations_; }

 private:
  std::vector<RelationSchema> relations_;
  std::unordered_map<std::string, int> arity_by_name_;
};

class Database {
 public:
  Database() = default;

  // Adds a fact; aborts if an identical (relation, args) fact exists or if
  // the arity conflicts with earlier facts of the same relation. Arguments
  // are interned into the value pool on insertion.
  FactId AddFact(const std::string& relation, Tuple args,
                 bool endogenous = true);
  // Convenience for endogenous/exogenous insertion.
  FactId AddEndogenous(const std::string& relation, Tuple args) {
    return AddFact(relation, std::move(args), /*endogenous=*/true);
  }
  FactId AddExogenous(const std::string& relation, Tuple args) {
    return AddFact(relation, std::move(args), /*endogenous=*/false);
  }

  // --- Streaming mutation API ---------------------------------------------
  //
  // FactIds are assigned in ascending order and NEVER reused: an insert
  // always appends past every id ever issued, so posting lists stay sorted
  // and a deleted id stays dead forever (live(id) == false survives
  // compaction). Deletion is a tombstone — the columnar lists keep the dead
  // id until CompactTombstones() rebuilds them — so deletes are O(1) and
  // the id space may contain holes (num_live() <= num_facts()). Every
  // successful mutation (and compaction) bumps epoch(), a monotonic
  // change counter that caches key their snapshots on.

  // Validating AddFact: kInvalidArgument on an arity conflict,
  // kFailedPrecondition on a duplicate live fact. Bumps epoch.
  StatusOr<FactId> InsertFact(const std::string& relation, Tuple args,
                              bool endogenous = true);
  // Tombstones a live fact: kNotFound when out of range or already dead.
  // The (relation, args) key is freed for re-insertion (under a fresh id).
  // Bumps epoch.
  Status DeleteFact(FactId id);
  // Rebuilds the columnar lists without tombstoned facts (FactIds are
  // preserved; dead ids remain dead) and seals the per-relation delta
  // segments. Bumps epoch.
  void CompactTombstones();

  // Monotonic mutation counter: bumped by AddFact/InsertFact/DeleteFact/
  // CompactTombstones, and by SetEndogenous when it actually flips a flag
  // (the endogenous partition is part of the semantic state a
  // StreamingSolver keys its cached contributions on). Equal epochs on
  // the same object imply identical contents.
  uint64_t epoch() const { return epoch_; }
  // False for tombstoned ids (forever, even after compaction).
  bool live(FactId id) const {
    return id >= 0 && id < num_facts() && dead_[static_cast<size_t>(id)] == 0;
  }
  bool has_tombstones() const { return num_dead_ > 0; }
  // The tombstone bitset, dense by FactId (1 = dead): what the
  // live-filtering intersection kernels consume.
  const std::vector<char>& dead() const { return dead_; }
  // Live facts (the id space minus tombstones).
  int num_live() const { return num_facts() - num_dead_; }

  // Size of the id space, holes included; live(id) distinguishes.
  int num_facts() const { return static_cast<int>(facts_.size()); }
  const Fact& fact(FactId id) const;
  // Looks up a fact id; returns kNotFound if absent.
  StatusOr<FactId> FindFact(const std::string& relation,
                            const Tuple& args) const;
  bool Contains(const std::string& relation, const Tuple& args) const;

  // --- Interned (id-based) access: the hot-path API -----------------------

  // The pool of interned constants.
  const ValuePool& pool() const { return pool_; }
  // The columnar fact storage.
  const ColumnStore& columns() const { return columns_; }

  int num_relations() const { return columns_.num_relations(); }
  // Dense relation id; kNoRelationId for unknown names.
  RelationId relation_id(const std::string& name) const;
  // Name of a relation id (insertion order matches relation_names()).
  const std::string& relation_name(RelationId relation) const {
    return relation_names_[static_cast<size_t>(relation)];
  }
  // Relation of a fact, as a dense id.
  RelationId fact_relation(FactId id) const {
    return fact_relation_[static_cast<size_t>(id)];
  }
  // Interned argument of a fact at `position` (O(1) columnar lookup).
  ValueId ArgId(FactId id, int position) const {
    return columns_.At(fact_relation_[static_cast<size_t>(id)], position,
                       fact_row_[static_cast<size_t>(id)]);
  }
  // All fact ids of a relation, ascending.
  const std::vector<FactId>& FactsOf(RelationId relation) const {
    return columns_.Facts(relation);
  }
  // Dense posting-list probe: facts of `relation` whose argument at
  // `position` is the interned `value`, ascending.
  const std::vector<FactId>& FactsWith(RelationId relation, int position,
                                       ValueId value) const {
    return columns_.Postings(relation, position, value);
  }

  // --- Value-based shims (interned lookup underneath) ---------------------

  // All fact ids of one relation (empty vector for unknown relations).
  const std::vector<FactId>& FactsOf(const std::string& relation) const;
  // Facts of `relation` whose argument at `position` equals `value`
  // (posting-list probe through the value pool; empty vector when nothing
  // matches). Ascending ids.
  const std::vector<FactId>& FactsWith(const std::string& relation,
                                       int position, const Value& value) const;
  // All relation names present, in first-insertion order.
  const std::vector<std::string>& relation_names() const {
    return relation_names_;
  }
  // Arity of a relation as observed from its facts; aborts if unknown.
  int Arity(const std::string& relation) const;

  // Live endogenous fact ids, ascending.
  std::vector<FactId> EndogenousFacts() const;
  // Live exogenous fact ids, ascending.
  std::vector<FactId> ExogenousFacts() const;
  // Live endogenous facts (tombstones excluded).
  int num_endogenous() const { return num_endogenous_; }

  // Flips the endogenous flag of `id` in place. Unlike WithFactExogenous
  // this is O(1): batched engines use it to realize the paper's derived
  // databases F (fact exogenous) without copying the database per fact —
  // always on their own local copies. Bumps epoch when the flag actually
  // changes (a no-op flip does not).
  void SetEndogenous(FactId id, bool endogenous);

  // Returns a copy where fact `id` is exogenous (the database F of the
  // paper's Section 3.2). Fact ids are preserved.
  Database WithFactExogenous(FactId id) const;
  // Returns a copy without fact `id` (the database G). Fact ids are NOT
  // preserved; use the returned mapping old->new (-1 for the removed fact).
  Database WithoutFact(FactId id, std::vector<FactId>* old_to_new) const;

  // Renders the whole database, one fact per line, endogenous first.
  std::string ToString() const;

 private:
  std::vector<Fact> facts_;
  std::vector<std::string> relation_names_;  // dense by RelationId
  std::unordered_map<std::string, RelationId> relation_ids_;
  ValuePool pool_;
  ColumnStore columns_;
  std::vector<RelationId> fact_relation_;  // by FactId
  std::vector<int32_t> fact_row_;          // by FactId: row within relation
  // Exact-fact lookup (duplicate detection, FindFact).
  std::unordered_map<std::string,
                     std::unordered_map<Tuple, FactId, TupleHash>>
      fact_index_;
  int num_endogenous_ = 0;
  std::vector<char> dead_;  // by FactId: 1 = tombstoned
  int num_dead_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace shapcq

#endif  // SHAPCQ_DATA_DATABASE_H_
