// ValuePool: dense interning of the constant domain.
//
// Every distinct Value that enters a Database is interned once into a
// ValuePool and identified afterwards by a dense uint32_t ValueId. The hot
// paths (join candidate probes, relevance splits, the hierarchical dynamic
// programs) then compare and hash plain integers instead of variant
// Values — a Value comparison costs a variant dispatch and possibly a
// string compare; a ValueId comparison is one instruction.
//
// Interning respects Value equality exactly: int 2 and double 2.0 compare
// equal (Value::Compare) and hash alike (Value::Hash), so they share one
// id. Hence id equality <=> Value equality, and distinct ids materialize to
// distinct Values.

#ifndef SHAPCQ_DATA_VALUE_POOL_H_
#define SHAPCQ_DATA_VALUE_POOL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "shapcq/data/value.h"

namespace shapcq {

// Dense id of an interned Value within its ValuePool.
using ValueId = uint32_t;

// Sentinel: "no value" (unbound variable slot, value absent from the pool).
inline constexpr ValueId kNoValueId = 0xffffffffu;

class ValuePool {
 public:
  ValuePool() = default;

  // Returns the id of `value`, interning it first if absent. Ids are
  // assigned densely in first-intern order and stay stable forever.
  ValueId Intern(const Value& value);

  // Returns the id of `value`, or kNoValueId if it was never interned.
  ValueId Find(const Value& value) const;

  // The interned Value of an id; aborts on out-of-range ids.
  const Value& value(ValueId id) const;

  uint32_t size() const { return static_cast<uint32_t>(values_.size()); }

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, ValueId, ValueHash> ids_;
};

}  // namespace shapcq

#endif  // SHAPCQ_DATA_VALUE_POOL_H_
