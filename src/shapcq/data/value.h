// Value: the constant domain of shapcq databases.
//
// The paper assumes an abstract infinite domain Const. We support 64-bit
// integers, doubles, and strings, with a deterministic total order across
// kinds (int64 and double compare numerically; numbers sort before strings).
// Value functions convert numeric values to exact Rationals.

#ifndef SHAPCQ_DATA_VALUE_H_
#define SHAPCQ_DATA_VALUE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "shapcq/util/rational.h"

namespace shapcq {

class Value {
 public:
  enum class Kind { kInt, kDouble, kString };

  // Default: integer 0.
  Value() : data_(int64_t{0}) {}
  // Intentionally implicit: literals should work wherever Value is expected.
  Value(int64_t v) : data_(v) {}                       // NOLINT
  Value(int v) : data_(static_cast<int64_t>(v)) {}     // NOLINT
  Value(double v) : data_(v) {}                        // NOLINT
  Value(std::string v) : data_(std::move(v)) {}        // NOLINT
  Value(const char* v) : data_(std::string(v)) {}      // NOLINT

  Kind kind() const { return static_cast<Kind>(data_.index()); }
  bool is_numeric() const { return kind() != Kind::kString; }

  int64_t AsInt() const;          // requires kind() == kInt
  double AsDouble() const;        // requires kind() == kDouble
  const std::string& AsString() const;  // requires kind() == kString

  // Numeric value as an exact rational; requires is_numeric() and, for
  // doubles, finiteness.
  Rational AsRational() const;

  // Rendering: integers as-is, doubles via shortest round-trip-ish format,
  // strings single-quoted (matching the CQ parser's constant syntax).
  std::string ToString() const;

  // Total order: numerics compare by numeric value (int 2 == double 2.0),
  // all numerics sort before all strings, strings lexicographically.
  static int Compare(const Value& lhs, const Value& rhs);

  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const Value& a, const Value& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const Value& a, const Value& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const Value& a, const Value& b) {
    return Compare(a, b) >= 0;
  }

  friend std::ostream& operator<<(std::ostream& os, const Value& value);

 private:
  std::variant<int64_t, double, std::string> data_;
};

// A database/query-answer tuple.
using Tuple = std::vector<Value>;

// Renders "(v1, v2, ...)".
std::string TupleToString(const Tuple& tuple);

struct TupleHash {
  size_t operator()(const Tuple& tuple) const;
};

struct ValueHash {
  size_t operator()(const Value& value) const { return value.Hash(); }
};

}  // namespace shapcq

#endif  // SHAPCQ_DATA_VALUE_H_
