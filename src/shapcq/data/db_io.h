// Plain-text database serialization.
//
// Format: one fact per line, '+' prefix for endogenous facts, '-' for
// exogenous, followed by the fact in the CQ constant syntax:
//
//   +Earns('ann', 95000)
//   -Took('ann', 101)
//   # comments and blank lines are skipped
//
// Round-trips through Database exactly (fact order preserved, so FactIds
// are stable across save/load).

#ifndef SHAPCQ_DATA_DB_IO_H_
#define SHAPCQ_DATA_DB_IO_H_

#include <string>
#include <string_view>

#include "shapcq/data/database.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Serializes `db` in the line format above (live facts in FactId order;
// tombstoned facts are omitted).
std::string SerializeDatabase(const Database& db);

// One fact in the line format above, without having to build a Database:
// the daemon's insert_fact/delete_fact ops carry facts as single lines.
// The +/- marker is optional here — a bare fact parses as endogenous
// (delete_fact names facts by content, where the marker is irrelevant).
struct ParsedFact {
  std::string relation;
  Tuple args;
  bool endogenous = true;
};
StatusOr<ParsedFact> ParseFactLine(std::string_view line);

// Parses the line format; returns INVALID_ARGUMENT with a line number on
// malformed input.
StatusOr<Database> ParseDatabase(std::string_view text);

// File variants.
Status SaveDatabaseToFile(const Database& db, const std::string& path);
StatusOr<Database> LoadDatabaseFromFile(const std::string& path);

}  // namespace shapcq

#endif  // SHAPCQ_DATA_DB_IO_H_
