#include "shapcq/data/value_pool.h"

#include "shapcq/util/check.h"

namespace shapcq {

ValueId ValuePool::Intern(const Value& value) {
  auto [it, inserted] =
      ids_.emplace(value, static_cast<ValueId>(values_.size()));
  if (inserted) {
    SHAPCQ_CHECK(values_.size() < kNoValueId && "value pool exhausted");
    values_.push_back(value);
  }
  return it->second;
}

ValueId ValuePool::Find(const Value& value) const {
  auto it = ids_.find(value);
  return it == ids_.end() ? kNoValueId : it->second;
}

const Value& ValuePool::value(ValueId id) const {
  SHAPCQ_CHECK(id < values_.size());
  return values_[id];
}

}  // namespace shapcq
