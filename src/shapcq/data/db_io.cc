#include "shapcq/data/db_io.h"

#include <fstream>
#include <sstream>

#include "shapcq/query/parser.h"

namespace shapcq {

std::string SerializeDatabase(const Database& db) {
  std::string out;
  for (FactId id = 0; id < db.num_facts(); ++id) {
    if (!db.live(id)) continue;  // tombstoned facts are not content
    const Fact& fact = db.fact(id);
    out += fact.endogenous ? '+' : '-';
    out += fact.ToString();
    out += '\n';
  }
  return out;
}

StatusOr<ParsedFact> ParseFactLine(std::string_view line) {
  // Trim whitespace.
  while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                           line.front() == '\r')) {
    line.remove_prefix(1);
  }
  while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  if (line.empty()) {
    return InvalidArgumentError("empty fact line");
  }
  ParsedFact fact;
  // Optional endogeneity marker; a bare fact is endogenous. (delete_fact
  // names facts by content, so the daemon and the journal carry them
  // markerless.)
  if (line[0] == '+' || line[0] == '-') {
    fact.endogenous = line[0] == '+';
    line.remove_prefix(1);
  }
  // Reuse the CQ parser: a fact is a ground atom.
  std::string as_query = "Q() <- " + std::string(line);
  StatusOr<ConjunctiveQuery> parsed = ParseQuery(as_query);
  if (!parsed.ok()) return parsed.status();
  const Atom& atom = parsed->atoms()[0];
  if (parsed->atoms().size() != 1 || !atom.is_ground()) {
    return InvalidArgumentError("expected one ground fact");
  }
  fact.relation = atom.relation;
  fact.args.reserve(atom.terms.size());
  for (const Term& term : atom.terms) fact.args.push_back(term.constant());
  return fact;
}

StatusOr<Database> ParseDatabase(std::string_view text) {
  Database db;
  size_t start = 0;
  int line_number = 0;
  while (start <= text.size()) {
    size_t newline = text.find('\n', start);
    size_t end = newline == std::string_view::npos ? text.size() : newline;
    std::string_view line = text.substr(start, end - start);
    ++line_number;
    // Trim whitespace.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t' ||
                             line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (!line.empty() && line[0] != '#') {
      StatusOr<ParsedFact> parsed = ParseFactLine(line);
      if (!parsed.ok()) {
        return InvalidArgumentError("line " + std::to_string(line_number) +
                                    ": " + parsed.status().message());
      }
      if (db.Contains(parsed->relation, parsed->args)) {
        return InvalidArgumentError("line " + std::to_string(line_number) +
                                    ": duplicate fact");
      }
      db.AddFact(parsed->relation, std::move(parsed->args),
                 parsed->endogenous);
    }
    if (newline == std::string_view::npos) break;
    start = newline + 1;
  }
  return db;
}

Status SaveDatabaseToFile(const Database& db, const std::string& path) {
  std::ofstream file(path);
  if (!file) return NotFoundError("cannot open file for writing: " + path);
  file << SerializeDatabase(db);
  return file.good() ? Status::Ok()
                     : InternalError("write failed: " + path);
}

StatusOr<Database> LoadDatabaseFromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError("cannot open file: " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseDatabase(contents.str());
}

}  // namespace shapcq
