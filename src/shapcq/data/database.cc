#include "shapcq/data/database.h"

#include <algorithm>

#include "shapcq/util/check.h"

namespace shapcq {

std::string Fact::ToString() const {
  std::string out = relation + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

Schema::Schema(std::vector<RelationSchema> relations) {
  for (RelationSchema& r : relations) {
    AddRelation(r.name, r.arity);
  }
}

void Schema::AddRelation(const std::string& name, int arity) {
  SHAPCQ_CHECK(arity >= 0);
  auto [it, inserted] = arity_by_name_.emplace(name, arity);
  SHAPCQ_CHECK(inserted && "duplicate relation name in schema");
  (void)it;
  relations_.push_back(RelationSchema{name, arity});
}

bool Schema::HasRelation(const std::string& name) const {
  return arity_by_name_.count(name) > 0;
}

int Schema::Arity(const std::string& name) const {
  auto it = arity_by_name_.find(name);
  SHAPCQ_CHECK(it != arity_by_name_.end());
  return it->second;
}

FactId Database::AddFact(const std::string& relation, Tuple args,
                         bool endogenous) {
  StatusOr<FactId> id = InsertFact(relation, std::move(args), endogenous);
  SHAPCQ_CHECK(id.ok() && "duplicate fact or arity conflict");
  return *id;
}

StatusOr<FactId> Database::InsertFact(const std::string& relation, Tuple args,
                                      bool endogenous) {
  RelationId relation_id;
  auto rel_it = relation_ids_.find(relation);
  if (rel_it == relation_ids_.end()) {
    relation_id = columns_.AddRelation(static_cast<int>(args.size()));
    relation_ids_.emplace(relation, relation_id);
    relation_names_.push_back(relation);
  } else {
    relation_id = rel_it->second;
    if (columns_.arity(relation_id) != static_cast<int>(args.size())) {
      return InvalidArgumentError("fact arity conflicts with relation " +
                                  relation);
    }
  }
  auto& index = fact_index_[relation];
  if (index.find(args) != index.end()) {
    return FailedPreconditionError("duplicate fact: " + relation +
                                   TupleToString(args));
  }
  FactId id = static_cast<FactId>(facts_.size());
  index.emplace(args, id);
  // Intern the arguments and append to the columnar store.
  ValueId interned[16];
  std::vector<ValueId> interned_overflow;
  ValueId* arg_ids = interned;
  if (args.size() > 16) {
    interned_overflow.resize(args.size());
    arg_ids = interned_overflow.data();
  }
  for (size_t position = 0; position < args.size(); ++position) {
    arg_ids[position] = pool_.Intern(args[position]);
  }
  fact_relation_.push_back(relation_id);
  fact_row_.push_back(
      static_cast<int32_t>(columns_.Facts(relation_id).size()));
  columns_.AddFact(relation_id, id, arg_ids, static_cast<int>(args.size()));
  if (endogenous) ++num_endogenous_;
  facts_.push_back(Fact{relation, std::move(args), endogenous});
  dead_.push_back(0);
  ++epoch_;
  return id;
}

Status Database::DeleteFact(FactId id) {
  if (id < 0 || id >= num_facts() || dead_[static_cast<size_t>(id)] != 0) {
    return NotFoundError("no live fact with id " + std::to_string(id));
  }
  const Fact& f = facts_[static_cast<size_t>(id)];
  dead_[static_cast<size_t>(id)] = 1;
  ++num_dead_;
  if (f.endogenous) --num_endogenous_;
  // Free the (relation, args) key: the same fact may be re-inserted later
  // under a fresh id.
  auto rel_it = fact_index_.find(f.relation);
  SHAPCQ_CHECK(rel_it != fact_index_.end());
  rel_it->second.erase(f.args);
  ++epoch_;
  return Status::Ok();
}

void Database::CompactTombstones() {
  columns_.Compact(dead_, &fact_row_);
  ++epoch_;
}

void Database::SetEndogenous(FactId id, bool endogenous) {
  SHAPCQ_CHECK(id >= 0 && id < num_facts());
  SHAPCQ_CHECK(live(id));
  Fact& f = facts_[static_cast<size_t>(id)];
  if (f.endogenous == endogenous) return;
  f.endogenous = endogenous;
  num_endogenous_ += endogenous ? 1 : -1;
  // The partition change is a semantic change: a StreamingSolver watching
  // this database via epoch() must see its cached contributions (keyed on
  // the endogenous player set) as stale. A no-op flip above returns
  // without bumping.
  ++epoch_;
}

const Fact& Database::fact(FactId id) const {
  SHAPCQ_CHECK(id >= 0 && id < static_cast<FactId>(facts_.size()));
  return facts_[static_cast<size_t>(id)];
}

StatusOr<FactId> Database::FindFact(const std::string& relation,
                                    const Tuple& args) const {
  auto rel_it = fact_index_.find(relation);
  if (rel_it == fact_index_.end()) {
    return NotFoundError("unknown relation: " + relation);
  }
  auto fact_it = rel_it->second.find(args);
  if (fact_it == rel_it->second.end()) {
    return NotFoundError("fact not present: " + relation +
                         TupleToString(args));
  }
  return fact_it->second;
}

bool Database::Contains(const std::string& relation, const Tuple& args) const {
  return FindFact(relation, args).ok();
}

RelationId Database::relation_id(const std::string& name) const {
  auto it = relation_ids_.find(name);
  return it == relation_ids_.end() ? kNoRelationId : it->second;
}

const std::vector<FactId>& Database::FactsOf(
    const std::string& relation) const {
  static const std::vector<FactId> kEmpty;
  RelationId id = relation_id(relation);
  return id == kNoRelationId ? kEmpty : columns_.Facts(id);
}

const std::vector<FactId>& Database::FactsWith(const std::string& relation,
                                               int position,
                                               const Value& value) const {
  static const std::vector<FactId> kEmpty;
  RelationId id = relation_id(relation);
  if (id == kNoRelationId) return kEmpty;
  SHAPCQ_CHECK(position >= 0 && position < columns_.arity(id));
  ValueId value_id = pool_.Find(value);
  if (value_id == kNoValueId) return kEmpty;
  return columns_.Postings(id, position, value_id);
}

int Database::Arity(const std::string& relation) const {
  RelationId id = relation_id(relation);
  SHAPCQ_CHECK(id != kNoRelationId);
  return columns_.arity(id);
}

std::vector<FactId> Database::EndogenousFacts() const {
  std::vector<FactId> out;
  out.reserve(static_cast<size_t>(num_endogenous_));
  for (FactId id = 0; id < num_facts(); ++id) {
    if (!live(id)) continue;
    if (facts_[static_cast<size_t>(id)].endogenous) out.push_back(id);
  }
  return out;
}

std::vector<FactId> Database::ExogenousFacts() const {
  std::vector<FactId> out;
  for (FactId id = 0; id < num_facts(); ++id) {
    if (!live(id)) continue;
    if (!facts_[static_cast<size_t>(id)].endogenous) out.push_back(id);
  }
  return out;
}

Database Database::WithFactExogenous(FactId id) const {
  SHAPCQ_CHECK(live(id));
  SHAPCQ_CHECK(fact(id).endogenous);
  Database copy = *this;
  copy.facts_[static_cast<size_t>(id)].endogenous = false;
  --copy.num_endogenous_;
  return copy;
}

Database Database::WithoutFact(FactId id, std::vector<FactId>* old_to_new) const {
  SHAPCQ_CHECK(id >= 0 && id < num_facts());
  Database result;
  if (old_to_new != nullptr) {
    old_to_new->assign(static_cast<size_t>(num_facts()), -1);
  }
  for (FactId old_id = 0; old_id < num_facts(); ++old_id) {
    if (old_id == id || !live(old_id)) continue;
    const Fact& f = facts_[static_cast<size_t>(old_id)];
    FactId new_id = result.AddFact(f.relation, f.args, f.endogenous);
    if (old_to_new != nullptr) {
      (*old_to_new)[static_cast<size_t>(old_id)] = new_id;
    }
  }
  return result;
}

std::string Database::ToString() const {
  std::string out;
  for (bool endogenous : {true, false}) {
    for (FactId id = 0; id < num_facts(); ++id) {
      if (!live(id)) continue;
      const Fact& f = facts_[static_cast<size_t>(id)];
      if (f.endogenous != endogenous) continue;
      out += f.ToString();
      out += endogenous ? "  [endo]\n" : "  [exo]\n";
    }
  }
  return out;
}

}  // namespace shapcq
