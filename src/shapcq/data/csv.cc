#include "shapcq/data/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace shapcq {

namespace {

// Converts an unquoted CSV field to a Value: int64 if it parses fully as a
// decimal integer, double if it parses fully as a float, else string.
Value FieldToValue(const std::string& field) {
  if (field.empty()) return Value(std::string());
  errno = 0;
  char* end = nullptr;
  long long as_int = std::strtoll(field.c_str(), &end, 10);
  if (errno == 0 && end != nullptr && *end == '\0') {
    return Value(static_cast<int64_t>(as_int));
  }
  errno = 0;
  end = nullptr;
  double as_double = std::strtod(field.c_str(), &end);
  if (errno == 0 && end != nullptr && *end == '\0') {
    return Value(as_double);
  }
  return Value(field);
}

}  // namespace

StatusOr<Tuple> ParseCsvLine(std::string_view line) {
  Tuple tuple;
  size_t pos = 0;
  bool expecting_field = true;
  while (expecting_field) {
    // Skip leading spaces.
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos < line.size() && line[pos] == '"') {
      // Quoted field.
      ++pos;
      std::string field;
      bool closed = false;
      while (pos < line.size()) {
        if (line[pos] == '"') {
          if (pos + 1 < line.size() && line[pos + 1] == '"') {
            field.push_back('"');
            pos += 2;
          } else {
            ++pos;
            closed = true;
            break;
          }
        } else {
          field.push_back(line[pos]);
          ++pos;
        }
      }
      if (!closed) return InvalidArgumentError("unterminated quoted field");
      while (pos < line.size() && line[pos] == ' ') ++pos;
      if (pos < line.size() && line[pos] != ',') {
        return InvalidArgumentError("garbage after quoted field");
      }
      tuple.push_back(Value(std::move(field)));
    } else {
      size_t comma = line.find(',', pos);
      size_t end = comma == std::string_view::npos ? line.size() : comma;
      std::string field(line.substr(pos, end - pos));
      // Trim trailing spaces.
      while (!field.empty() && field.back() == ' ') field.pop_back();
      tuple.push_back(FieldToValue(field));
      pos = end;
    }
    if (pos < line.size() && line[pos] == ',') {
      ++pos;
      expecting_field = true;
    } else {
      expecting_field = false;
    }
  }
  return tuple;
}

StatusOr<std::vector<Tuple>> ParseCsv(std::string_view text) {
  std::vector<Tuple> rows;
  size_t start = 0;
  int line_number = 0;
  while (start <= text.size()) {
    size_t newline = text.find('\n', start);
    size_t end = newline == std::string_view::npos ? text.size() : newline;
    std::string_view line = text.substr(start, end - start);
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty() && line[0] != '#') {
      StatusOr<Tuple> tuple = ParseCsvLine(line);
      if (!tuple.ok()) {
        return InvalidArgumentError("line " + std::to_string(line_number) +
                                    ": " + tuple.status().message());
      }
      if (!rows.empty() && rows.front().size() != tuple->size()) {
        return InvalidArgumentError("line " + std::to_string(line_number) +
                                    ": inconsistent column count");
      }
      rows.push_back(std::move(tuple).value());
    }
    if (newline == std::string_view::npos) break;
    start = newline + 1;
  }
  return rows;
}

Status LoadCsvIntoDatabase(Database* db, const std::string& relation,
                           std::string_view text, bool endogenous) {
  StatusOr<std::vector<Tuple>> rows = ParseCsv(text);
  if (!rows.ok()) return rows.status();
  for (Tuple& row : *rows) {
    db->AddFact(relation, std::move(row), endogenous);
  }
  return Status::Ok();
}

Status LoadCsvFileIntoDatabase(Database* db, const std::string& relation,
                               const std::string& path, bool endogenous) {
  std::ifstream file(path);
  if (!file) return NotFoundError("cannot open file: " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  return LoadCsvIntoDatabase(db, relation, contents.str(), endogenous);
}

}  // namespace shapcq
