#include "shapcq/data/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace shapcq {

namespace {

// [+-]? digits — the only form routed to int64 parsing.
bool IsDecimalIntLiteral(const std::string& field) {
  size_t i = (field[0] == '+' || field[0] == '-') ? 1 : 0;
  if (i == field.size()) return false;
  for (; i < field.size(); ++i) {
    if (field[i] < '0' || field[i] > '9') return false;
  }
  return true;
}

// [+-]? (digits [. digits?] | . digits) ([eE] [+-]? digits)? — plain
// decimal floats only. Rejects what strtod would also accept: "nan",
// "inf"/"infinity", hex floats like "0x10", and trailing garbage.
bool IsDecimalFloatLiteral(const std::string& field) {
  size_t i = (field[0] == '+' || field[0] == '-') ? 1 : 0;
  size_t integer_digits = 0;
  while (i < field.size() && field[i] >= '0' && field[i] <= '9') {
    ++i;
    ++integer_digits;
  }
  size_t fraction_digits = 0;
  if (i < field.size() && field[i] == '.') {
    ++i;
    while (i < field.size() && field[i] >= '0' && field[i] <= '9') {
      ++i;
      ++fraction_digits;
    }
  }
  if (integer_digits + fraction_digits == 0) return false;
  if (i < field.size() && (field[i] == 'e' || field[i] == 'E')) {
    ++i;
    if (i < field.size() && (field[i] == '+' || field[i] == '-')) ++i;
    size_t exponent_digits = 0;
    while (i < field.size() && field[i] >= '0' && field[i] <= '9') {
      ++i;
      ++exponent_digits;
    }
    if (exponent_digits == 0) return false;
  }
  return i == field.size();
}

// Converts an unquoted CSV field to a Value: int64 if it is a decimal
// integer literal in range, double if it is a decimal float literal whose
// value is finite, else string. Restricting to finite decimal forms keeps
// NaN out of the Value domain (NaN breaks Value equality and therefore
// ValuePool interning) and keeps strtod extensions — "nan", "inf", hex
// floats — as strings. Out-of-range literals stay strings too, in both
// directions ("1e999" overflows, "1e-999" underflows); integer literals
// beyond int64 fall back to the (finite) double they denote.
Value FieldToValue(const std::string& field) {
  if (field.empty()) return Value(std::string());
  if (IsDecimalIntLiteral(field)) {
    errno = 0;
    char* end = nullptr;
    long long as_int = std::strtoll(field.c_str(), &end, 10);
    if (errno == 0 && end != nullptr && *end == '\0') {
      return Value(static_cast<int64_t>(as_int));
    }
  }
  if (IsDecimalFloatLiteral(field)) {
    errno = 0;
    char* end = nullptr;
    double as_double = std::strtod(field.c_str(), &end);
    // errno: ERANGE flags overflow AND underflow ("1e-999" → 0.0), both
    // of which must stay strings — silently interning an underflow as
    // 0.0 would alias it with genuine zeros.
    if (errno == 0 && end != nullptr && *end == '\0' &&
        std::isfinite(as_double)) {
      return Value(as_double);
    }
  }
  return Value(field);
}

}  // namespace

StatusOr<Tuple> ParseCsvLine(std::string_view line) {
  Tuple tuple;
  size_t pos = 0;
  bool expecting_field = true;
  while (expecting_field) {
    // Skip leading spaces.
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos < line.size() && line[pos] == '"') {
      // Quoted field.
      ++pos;
      std::string field;
      bool closed = false;
      while (pos < line.size()) {
        if (line[pos] == '"') {
          if (pos + 1 < line.size() && line[pos + 1] == '"') {
            field.push_back('"');
            pos += 2;
          } else {
            ++pos;
            closed = true;
            break;
          }
        } else {
          field.push_back(line[pos]);
          ++pos;
        }
      }
      if (!closed) return InvalidArgumentError("unterminated quoted field");
      while (pos < line.size() && line[pos] == ' ') ++pos;
      if (pos < line.size() && line[pos] != ',') {
        return InvalidArgumentError("garbage after quoted field");
      }
      tuple.push_back(Value(std::move(field)));
    } else {
      size_t comma = line.find(',', pos);
      size_t end = comma == std::string_view::npos ? line.size() : comma;
      std::string field(line.substr(pos, end - pos));
      // Trim trailing spaces.
      while (!field.empty() && field.back() == ' ') field.pop_back();
      tuple.push_back(FieldToValue(field));
      pos = end;
    }
    if (pos < line.size() && line[pos] == ',') {
      ++pos;
      expecting_field = true;
    } else {
      expecting_field = false;
    }
  }
  return tuple;
}

StatusOr<std::vector<Tuple>> ParseCsv(std::string_view text) {
  std::vector<Tuple> rows;
  size_t start = 0;
  int line_number = 0;
  while (start <= text.size()) {
    size_t newline = text.find('\n', start);
    size_t end = newline == std::string_view::npos ? text.size() : newline;
    std::string_view line = text.substr(start, end - start);
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty() && line[0] != '#') {
      StatusOr<Tuple> tuple = ParseCsvLine(line);
      if (!tuple.ok()) {
        return InvalidArgumentError("line " + std::to_string(line_number) +
                                    ": " + tuple.status().message());
      }
      if (!rows.empty() && rows.front().size() != tuple->size()) {
        return InvalidArgumentError("line " + std::to_string(line_number) +
                                    ": inconsistent column count");
      }
      rows.push_back(std::move(tuple).value());
    }
    if (newline == std::string_view::npos) break;
    start = newline + 1;
  }
  return rows;
}

Status LoadCsvIntoDatabase(Database* db, const std::string& relation,
                           std::string_view text, bool endogenous) {
  StatusOr<std::vector<Tuple>> rows = ParseCsv(text);
  if (!rows.ok()) return rows.status();
  for (Tuple& row : *rows) {
    db->AddFact(relation, std::move(row), endogenous);
  }
  return Status::Ok();
}

Status LoadCsvFileIntoDatabase(Database* db, const std::string& relation,
                               const std::string& path, bool endogenous) {
  std::ifstream file(path);
  if (!file) return NotFoundError("cannot open file: " + path);
  std::ostringstream contents;
  contents << file.rdbuf();
  return LoadCsvIntoDatabase(db, relation, contents.str(), endogenous);
}

}  // namespace shapcq
