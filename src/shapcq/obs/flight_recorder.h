// Fixed-capacity flight recorder for completed request traces.
//
// Two bounded pools, both fed at the end of the daemon's RunJob when
// tracing is on:
//   - "slowest": the N slowest successful requests seen so far (min-heap
//     by total latency — a new trace evicts the fastest retained one);
//   - "incidents": a ring of the most recent degraded-or-errored
//     requests (every one is retained until the ring wraps).
// Memory is bounded by capacity × rendered-trace size regardless of
// traffic volume. The daemon serves RenderJson() at GET /debug/traces
// on the metrics port and dumps it to stderr on SIGUSR1.

#ifndef SHAPCQ_OBS_FLIGHT_RECORDER_H_
#define SHAPCQ_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace shapcq {

// A completed request's trace, flattened for retention (the live
// TraceContext dies with the request; the recorder keeps copies).
struct TraceRecord {
  uint64_t trace_id = 0;
  std::string tenant;
  uint64_t request_id = 0;
  std::string outcome;  // "ok" | "degraded" | "error"
  uint64_t total_micros = 0;
  std::string json;  // TraceContext::RenderJson() output
};

class FlightRecorder {
 public:
  FlightRecorder(size_t slowest_capacity, size_t incident_capacity)
      : slowest_capacity_(slowest_capacity),
        incident_capacity_(incident_capacity) {}

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Routes by outcome: "ok" competes for a slowest slot; anything else
  // is an incident. Thread-safe.
  void Record(TraceRecord record);

  // {"slowest":[...],"incidents":[...]} — each entry carries trace_id,
  // tenant, request id, outcome, total_us, and the full span dump as a
  // nested "trace" string (same JSON-quoted transport the protocol uses
  // for /metrics text). Incidents are listed oldest first.
  std::string RenderJson() const;

  size_t slowest_size() const;
  size_t incident_size() const;

 private:
  const size_t slowest_capacity_;
  const size_t incident_capacity_;

  mutable std::mutex mu_;
  std::vector<TraceRecord> slowest_;    // unordered; linear min scan
  std::vector<TraceRecord> incidents_;  // ring once full
  size_t incident_next_ = 0;            // ring write cursor once full
};

}  // namespace shapcq

#endif  // SHAPCQ_OBS_FLIGHT_RECORDER_H_
