#include "shapcq/obs/log.h"

#include <atomic>
#include <cstdio>
#include <ctime>

namespace shapcq {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

}  // namespace

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  if (text == "debug") {
    *level = LogLevel::kDebug;
  } else if (text == "info") {
    *level = LogLevel::kInfo;
  } else if (text == "warn") {
    *level = LogLevel::kWarn;
  } else if (text == "error") {
    *level = LogLevel::kError;
  } else if (text == "off") {
    *level = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "off";
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return level != LogLevel::kOff &&
         static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

void LogLine(LogLevel level, const std::string& message) {
  if (!LogEnabled(level)) return;
  char stamp[32];
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc;
  gmtime_r(&now, &tm_utc);
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  std::string line;
  line.reserve(message.size() + 48);
  line += stamp;
  line += " level=";
  line += LogLevelName(level);
  line += " ";
  line += message;
  for (char& c : line) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  line += "\n";
  // One fwrite per line: stderr is unbuffered but fwrite of a single
  // buffer is atomic enough that concurrent workers don't interleave.
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace shapcq
