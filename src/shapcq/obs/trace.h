// Low-overhead per-request tracing for the attribution stack.
//
// A TraceContext is a per-request arena of spans: each span records a
// stage name, wall-clock bounds (util/clock.h MonotonicNanos), and a
// small list of typed annotations — the vocabulary is documented in
// docs/TRACING.md (engine chosen, player count, circuit nodes, cache
// hit/miss, budget consumed, cancel/degrade reason). The daemon creates
// one context per admitted request and threads a borrowed pointer down
// through SolverOptions::trace; shapcq_replay attaches one per record to
// build engine-decision explanations.
//
// Concurrency contract: a TraceContext is NOT thread-safe. It is owned
// by exactly one thread at a time and handed off with happens-before
// ordering (the daemon's reader thread builds it, the work queue's mutex
// publishes it to one worker). Span sites below the session layer record
// on the CALLING thread only, never inside a ParallelFor shard — the
// session strips the trace pointer before fanning per-fact work out —
// so tracing can never perturb scheduling or results: solver output is
// bitwise-identical with tracing off, on, or at full verbosity.
//
// Cost model: a null TraceContext* makes every Span constructor a single
// pointer test (no allocation, no clock read). Ids are generated even
// when span collection is off — the journal stamps every record with one
// (serve/journal.h v3) — via one relaxed atomic increment and a splitmix
// hash.

#ifndef SHAPCQ_OBS_TRACE_H_
#define SHAPCQ_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace shapcq {

// How much the serving layer traces (ServerOptions::trace_level).
//   kOff  — no span collection; requests still get trace ids.
//   kOn   — spans feed the per-stage histograms, the flight recorder,
//           and the per-request log line; responses carry the trace id.
//   kFull — kOn, plus every response carries the span dump + explanation
//           (otherwise only requests with "trace":true get them).
enum class TraceLevel { kOff = 0, kOn = 1, kFull = 2 };

// Parses "off" | "on" | "full"; false on anything else.
bool ParseTraceLevel(const std::string& text, TraceLevel* level);
const char* TraceLevelName(TraceLevel level);

// Process-unique 64-bit trace id: never zero (zero means "no id" — e.g.
// a record read from a v2 journal), seeded per process so two daemon
// runs do not reuse ids.
uint64_t NextTraceId();

// A trace id as the fixed-width lowercase hex the wire and logs use.
std::string TraceIdHex(uint64_t trace_id);

// One typed key-value annotation. Keys are static-duration strings (the
// annotation vocabulary); values are an integer or a short text.
struct TraceAnnotation {
  const char* key = "";
  bool is_text = false;
  int64_t number = 0;
  std::string text;
};

struct TraceSpan {
  std::string stage;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;  // 0 while open
  std::vector<TraceAnnotation> annotations;

  uint64_t duration_micros() const {
    return end_ns > start_ns ? (end_ns - start_ns) / 1000 : 0;
  }
};

class TraceContext {
 public:
  explicit TraceContext(uint64_t trace_id) : trace_id_(trace_id) {}

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  uint64_t trace_id() const { return trace_id_; }

  // Opens a span starting now; returns its index (stable — spans are
  // append-only). Prefer the RAII Span wrapper below.
  size_t BeginSpan(std::string stage);
  void EndSpan(size_t span);
  // Adds a pre-timed span (e.g. queue wait, whose start predates the
  // context reaching the worker thread).
  void AddSpan(std::string stage, uint64_t start_ns, uint64_t end_ns);

  void Annotate(size_t span, const char* key, int64_t value);
  void Annotate(size_t span, const char* key, std::string text);

  const std::vector<TraceSpan>& spans() const { return spans_; }

  // The span dump as one JSON object:
  //   {"trace_id":"....","spans":[{"stage":...,"us":...,...},...]}
  // Annotation keys land directly in each span object. Open spans render
  // with "us":0.
  std::string RenderJson() const;

 private:
  uint64_t trace_id_;
  std::vector<TraceSpan> spans_;
};

// RAII span: records [construction, destruction) into `trace`, or does
// nothing at all when `trace` is null (one pointer test per call).
class Span {
 public:
  Span(TraceContext* trace, std::string stage) : trace_(trace) {
    if (trace_ != nullptr) index_ = trace_->BeginSpan(std::move(stage));
  }
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Ends the span now (idempotent; the destructor is then a no-op).
  void End() {
    if (trace_ != nullptr) trace_->EndSpan(index_);
    trace_ = nullptr;
  }

  void Annotate(const char* key, int64_t value) {
    if (trace_ != nullptr) trace_->Annotate(index_, key, value);
  }
  void Annotate(const char* key, std::string text) {
    if (trace_ != nullptr) trace_->Annotate(index_, key, std::move(text));
  }

 private:
  TraceContext* trace_;
  size_t index_ = 0;
};

// The engine-decision explanation: one human-readable line naming the
// solve context (players, hierarchy class, method) and what happened at
// each engine/fallback span — which engines were considered, why each
// was rejected (shape, player count, node budget), and which one scored
// how many facts. Built purely from the recorded spans, so the daemon
// (serve/server.h) and shapcq_replay --explain produce the same text
// for the same solve.
std::string BuildEngineExplanation(const TraceContext& trace);

}  // namespace shapcq

#endif  // SHAPCQ_OBS_TRACE_H_
