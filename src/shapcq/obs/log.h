// Structured stderr logging for the serving stack.
//
// One global severity threshold (atomic; default kWarn so in-process
// tests and benches stay quiet), one line per event:
//
//   2026-08-09T12:34:56Z level=info msg="..."
//
// The message is pre-formatted by the caller — the daemon's per-request
// line packs trace id, tenant, outcome, and timings as key=value pairs.
// Lines are written with a single fwrite so concurrent workers never
// interleave mid-line. This replaces the ad-hoc printf/fprintf scattered
// through tools/shapcqd.cc.

#ifndef SHAPCQ_OBS_LOG_H_
#define SHAPCQ_OBS_LOG_H_

#include <string>

namespace shapcq {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Parses "debug" | "info" | "warn" | "error" | "off"; false otherwise.
bool ParseLogLevel(const std::string& text, LogLevel* level);
const char* LogLevelName(LogLevel level);

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// True when a LogLine at `level` would actually be written — lets callers
// skip building expensive messages.
bool LogEnabled(LogLevel level);

// Writes one structured line to stderr if `level` clears the threshold.
// `message` should be key=value pairs; embedded newlines are replaced
// with spaces so one event is always one line.
void LogLine(LogLevel level, const std::string& message);

}  // namespace shapcq

#endif  // SHAPCQ_OBS_LOG_H_
