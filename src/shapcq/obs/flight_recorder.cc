#include "shapcq/obs/flight_recorder.h"

#include <utility>

#include "shapcq/obs/trace.h"
#include "shapcq/serve/json.h"

namespace shapcq {

void FlightRecorder::Record(TraceRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record.outcome == "ok") {
    if (slowest_capacity_ == 0) return;
    if (slowest_.size() < slowest_capacity_) {
      slowest_.push_back(std::move(record));
      return;
    }
    // Capacities are small (tens); a linear scan for the fastest retained
    // trace beats maintaining a heap over move-heavy records.
    size_t fastest = 0;
    for (size_t i = 1; i < slowest_.size(); ++i) {
      if (slowest_[i].total_micros < slowest_[fastest].total_micros) {
        fastest = i;
      }
    }
    if (record.total_micros > slowest_[fastest].total_micros) {
      slowest_[fastest] = std::move(record);
    }
    return;
  }
  if (incident_capacity_ == 0) return;
  if (incidents_.size() < incident_capacity_) {
    incidents_.push_back(std::move(record));
    return;
  }
  incidents_[incident_next_] = std::move(record);
  incident_next_ = (incident_next_ + 1) % incident_capacity_;
}

namespace {

void WriteRecord(JsonWriter* w, const TraceRecord& r) {
  w->BeginObjectInArray();
  w->Str("trace_id", TraceIdHex(r.trace_id));
  w->Str("tenant", r.tenant);
  w->Uint("id", r.request_id);
  w->Str("outcome", r.outcome);
  w->Uint("total_us", r.total_micros);
  w->Str("trace", r.json);
  w->EndObject();
}

}  // namespace

std::string FlightRecorder::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.BeginArray("slowest");
  // Slowest first for the reader; the pool itself is unordered.
  std::vector<const TraceRecord*> ordered;
  ordered.reserve(slowest_.size());
  for (const TraceRecord& r : slowest_) ordered.push_back(&r);
  for (size_t i = 0; i < ordered.size(); ++i) {
    for (size_t j = i + 1; j < ordered.size(); ++j) {
      if (ordered[j]->total_micros > ordered[i]->total_micros) {
        std::swap(ordered[i], ordered[j]);
      }
    }
  }
  for (const TraceRecord* r : ordered) WriteRecord(&w, *r);
  w.EndArray();
  w.BeginArray("incidents");
  // Once the ring is full the oldest entry sits at the write cursor
  // (incident_next_ is 0 until the first overwrite, so this also covers
  // the just-filled case); before that, insertion order is age order.
  for (size_t i = 0; i < incidents_.size(); ++i) {
    WriteRecord(&w, incidents_[(incident_next_ + i) % incidents_.size()]);
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

size_t FlightRecorder::slowest_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slowest_.size();
}

size_t FlightRecorder::incident_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return incidents_.size();
}

}  // namespace shapcq
