#include "shapcq/obs/trace.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "shapcq/serve/json.h"
#include "shapcq/util/clock.h"

namespace shapcq {
namespace {

// splitmix64 finalizer: bijective, so distinct counter values can never
// collide, but sequential ids don't look sequential on the wire.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t ProcessSeed() {
  static const uint64_t seed =
      Mix64(MonotonicNanos() ^ (static_cast<uint64_t>(::getpid()) << 32));
  return seed;
}

}  // namespace

bool ParseTraceLevel(const std::string& text, TraceLevel* level) {
  if (text == "off") {
    *level = TraceLevel::kOff;
  } else if (text == "on") {
    *level = TraceLevel::kOn;
  } else if (text == "full") {
    *level = TraceLevel::kFull;
  } else {
    return false;
  }
  return true;
}

const char* TraceLevelName(TraceLevel level) {
  switch (level) {
    case TraceLevel::kOff:
      return "off";
    case TraceLevel::kOn:
      return "on";
    case TraceLevel::kFull:
      return "full";
  }
  return "off";
}

uint64_t NextTraceId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  // | 1 keeps zero reserved for "no trace id" (v1/v2 journal records).
  return Mix64(ProcessSeed() + n) | 1;
}

std::string TraceIdHex(uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf, 16);
}

size_t TraceContext::BeginSpan(std::string stage) {
  TraceSpan span;
  span.stage = std::move(stage);
  span.start_ns = MonotonicNanos();
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void TraceContext::EndSpan(size_t span) {
  if (span >= spans_.size()) return;
  if (spans_[span].end_ns == 0) spans_[span].end_ns = MonotonicNanos();
}

void TraceContext::AddSpan(std::string stage, uint64_t start_ns,
                           uint64_t end_ns) {
  TraceSpan span;
  span.stage = std::move(stage);
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  spans_.push_back(std::move(span));
}

void TraceContext::Annotate(size_t span, const char* key, int64_t value) {
  if (span >= spans_.size()) return;
  TraceAnnotation a;
  a.key = key;
  a.is_text = false;
  a.number = value;
  spans_[span].annotations.push_back(std::move(a));
}

void TraceContext::Annotate(size_t span, const char* key, std::string text) {
  if (span >= spans_.size()) return;
  TraceAnnotation a;
  a.key = key;
  a.is_text = true;
  a.text = std::move(text);
  spans_[span].annotations.push_back(std::move(a));
}

std::string TraceContext::RenderJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Str("trace_id", TraceIdHex(trace_id_));
  w.BeginArray("spans");
  for (const TraceSpan& span : spans_) {
    w.BeginObjectInArray();
    w.Str("stage", span.stage);
    w.Uint("us", span.duration_micros());
    for (const TraceAnnotation& a : span.annotations) {
      if (a.is_text) {
        w.Str(a.key, a.text);
      } else {
        w.Int(a.key, a.number);
      }
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

namespace {

const TraceAnnotation* FindAnnotation(const TraceSpan& span, const char* key) {
  for (const TraceAnnotation& a : span.annotations) {
    if (std::string_view(a.key) == key) return &a;
  }
  return nullptr;
}

void AppendCount(std::string* out, const char* what, int64_t n) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld %s", static_cast<long long>(n), what);
  *out += buf;
}

}  // namespace

std::string BuildEngineExplanation(const TraceContext& trace) {
  std::string out;
  // Context line from the solve span, if present.
  for (const TraceSpan& span : trace.spans()) {
    if (span.stage != "solve") continue;
    out += "solve:";
    if (const auto* a = FindAnnotation(span, "players")) {
      out += " ";
      AppendCount(&out, "players", a->number);
    }
    if (const auto* a = FindAnnotation(span, "hierarchy")) {
      out += " class=" + a->text;
    }
    if (const auto* a = FindAnnotation(span, "method")) {
      out += " method=" + a->text;
    }
    if (const auto* a = FindAnnotation(span, "degrade_reason")) {
      out += " degraded(" + a->text + ")";
    }
    break;
  }
  // One clause per engine / fallback span, in attempt order.
  for (const TraceSpan& span : trace.spans()) {
    const bool is_engine = span.stage.rfind("engine:", 0) == 0;
    const bool is_fallback =
        span.stage == "brute_force" || span.stage == "monte_carlo";
    if (!is_engine && !is_fallback) continue;
    if (!out.empty()) out += "; ";
    out += is_engine ? span.stage.substr(7) : span.stage;
    const auto* solved = FindAnnotation(span, "facts_solved");
    const auto* facts = FindAnnotation(span, "facts");
    const auto* reject = FindAnnotation(span, "reject");
    if (solved != nullptr && solved->number > 0) {
      out += " scored ";
      AppendCount(&out, "facts", solved->number);
    } else if (facts != nullptr) {
      out += " scored ";
      AppendCount(&out, "facts", facts->number);
    }
    if (const auto* a = FindAnnotation(span, "samples")) {
      out += " (";
      AppendCount(&out, "samples/fact", a->number);
      out += ")";
    }
    if (const auto* a = FindAnnotation(span, "circuit_nodes")) {
      out += " (";
      AppendCount(&out, "circuit nodes", a->number);
      if (const auto* b = FindAnnotation(span, "budget_fallbacks")) {
        if (b->number > 0) {
          out += ", ";
          AppendCount(&out, "budget fallbacks", b->number);
        }
      }
      out += ")";
    }
    if (reject != nullptr) {
      if ((solved == nullptr || solved->number == 0) && facts == nullptr) {
        out += " rejected: " + reject->text;
      } else {
        out += "; remainder rejected: " + reject->text;
      }
    }
    if (const auto* a = FindAnnotation(span, "facts_open")) {
      if (a->number > 0) {
        out += " (";
        AppendCount(&out, "facts left", a->number);
        out += ")";
      }
    }
  }
  if (out.empty()) out = "no solve recorded";
  return out;
}

}  // namespace shapcq
